
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ac_noise.cpp" "tests/CMakeFiles/rfic_tests.dir/test_ac_noise.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_ac_noise.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/rfic_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_dc.cpp" "tests/CMakeFiles/rfic_tests.dir/test_dc.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_dc.cpp.o.d"
  "/root/repo/tests/test_dense.cpp" "tests/CMakeFiles/rfic_tests.dir/test_dense.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_dense.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/rfic_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extraction.cpp" "tests/CMakeFiles/rfic_tests.dir/test_extraction.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_extraction.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/rfic_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_hb.cpp" "tests/CMakeFiles/rfic_tests.dir/test_hb.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_hb.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rfic_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_mpde.cpp" "tests/CMakeFiles/rfic_tests.dir/test_mpde.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_mpde.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/rfic_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_phasenoise.cpp" "tests/CMakeFiles/rfic_tests.dir/test_phasenoise.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_phasenoise.cpp.o.d"
  "/root/repo/tests/test_rf_measures.cpp" "tests/CMakeFiles/rfic_tests.dir/test_rf_measures.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_rf_measures.cpp.o.d"
  "/root/repo/tests/test_rom.cpp" "tests/CMakeFiles/rfic_tests.dir/test_rom.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_rom.cpp.o.d"
  "/root/repo/tests/test_shooting.cpp" "tests/CMakeFiles/rfic_tests.dir/test_shooting.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_shooting.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/rfic_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/rfic_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/rfic_tests.dir/test_transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
