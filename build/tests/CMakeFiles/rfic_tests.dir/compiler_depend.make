# Empty compiler generated dependencies file for rfic_tests.
# This may be replaced when dependencies are built.
