file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_rom.dir/bench_sec5_rom.cpp.o"
  "CMakeFiles/bench_sec5_rom.dir/bench_sec5_rom.cpp.o.d"
  "bench_sec5_rom"
  "bench_sec5_rom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_rom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
