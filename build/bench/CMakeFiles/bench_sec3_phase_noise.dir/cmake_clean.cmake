file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_phase_noise.dir/bench_sec3_phase_noise.cpp.o"
  "CMakeFiles/bench_sec3_phase_noise.dir/bench_sec3_phase_noise.cpp.o.d"
  "bench_sec3_phase_noise"
  "bench_sec3_phase_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_phase_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
