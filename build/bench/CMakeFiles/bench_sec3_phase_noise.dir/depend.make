# Empty dependencies file for bench_sec3_phase_noise.
# This may be replaced when dependencies are built.
