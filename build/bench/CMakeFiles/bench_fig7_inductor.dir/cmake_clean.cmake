file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_inductor.dir/bench_fig7_inductor.cpp.o"
  "CMakeFiles/bench_fig7_inductor.dir/bench_fig7_inductor.cpp.o.d"
  "bench_fig7_inductor"
  "bench_fig7_inductor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_inductor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
