# Empty dependencies file for bench_fig7_inductor.
# This may be replaced when dependencies are built.
