file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mmft_mixer.dir/bench_fig4_mmft_mixer.cpp.o"
  "CMakeFiles/bench_fig4_mmft_mixer.dir/bench_fig4_mmft_mixer.cpp.o.d"
  "bench_fig4_mmft_mixer"
  "bench_fig4_mmft_mixer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mmft_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
