# Empty dependencies file for bench_fig4_mmft_mixer.
# This may be replaced when dependencies are built.
