# Empty dependencies file for bench_table1_extraction_classes.
# This may be replaced when dependencies are built.
