file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_extraction_classes.dir/bench_table1_extraction_classes.cpp.o"
  "CMakeFiles/bench_table1_extraction_classes.dir/bench_table1_extraction_classes.cpp.o.d"
  "bench_table1_extraction_classes"
  "bench_table1_extraction_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_extraction_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
