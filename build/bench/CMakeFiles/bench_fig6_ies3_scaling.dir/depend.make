# Empty dependencies file for bench_fig6_ies3_scaling.
# This may be replaced when dependencies are built.
