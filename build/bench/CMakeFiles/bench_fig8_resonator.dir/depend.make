# Empty dependencies file for bench_fig8_resonator.
# This may be replaced when dependencies are built.
