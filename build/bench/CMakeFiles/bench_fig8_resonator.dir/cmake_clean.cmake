file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_resonator.dir/bench_fig8_resonator.cpp.o"
  "CMakeFiles/bench_fig8_resonator.dir/bench_fig8_resonator.cpp.o.d"
  "bench_fig8_resonator"
  "bench_fig8_resonator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_resonator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
