# Empty dependencies file for bench_fig5_univariate_shooting.
# This may be replaced when dependencies are built.
