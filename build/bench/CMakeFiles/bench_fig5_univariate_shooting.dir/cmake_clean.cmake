file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_univariate_shooting.dir/bench_fig5_univariate_shooting.cpp.o"
  "CMakeFiles/bench_fig5_univariate_shooting.dir/bench_fig5_univariate_shooting.cpp.o.d"
  "bench_fig5_univariate_shooting"
  "bench_fig5_univariate_shooting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_univariate_shooting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
