# Empty dependencies file for bench_sec21_hb_cost.
# This may be replaced when dependencies are built.
