file(REMOVE_RECURSE
  "CMakeFiles/bench_sec21_hb_cost.dir/bench_sec21_hb_cost.cpp.o"
  "CMakeFiles/bench_sec21_hb_cost.dir/bench_sec21_hb_cost.cpp.o.d"
  "bench_sec21_hb_cost"
  "bench_sec21_hb_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec21_hb_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
