file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_bivariate_repr.dir/bench_fig23_bivariate_repr.cpp.o"
  "CMakeFiles/bench_fig23_bivariate_repr.dir/bench_fig23_bivariate_repr.cpp.o.d"
  "bench_fig23_bivariate_repr"
  "bench_fig23_bivariate_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_bivariate_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
