# Empty dependencies file for bench_fig23_bivariate_repr.
# This may be replaced when dependencies are built.
