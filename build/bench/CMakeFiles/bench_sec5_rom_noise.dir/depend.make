# Empty dependencies file for bench_sec5_rom_noise.
# This may be replaced when dependencies are built.
