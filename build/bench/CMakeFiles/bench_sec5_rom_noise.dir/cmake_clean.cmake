file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_rom_noise.dir/bench_sec5_rom_noise.cpp.o"
  "CMakeFiles/bench_sec5_rom_noise.dir/bench_sec5_rom_noise.cpp.o.d"
  "bench_sec5_rom_noise"
  "bench_sec5_rom_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_rom_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
