file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_mpde_methods.dir/bench_sec22_mpde_methods.cpp.o"
  "CMakeFiles/bench_sec22_mpde_methods.dir/bench_sec22_mpde_methods.cpp.o.d"
  "bench_sec22_mpde_methods"
  "bench_sec22_mpde_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_mpde_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
