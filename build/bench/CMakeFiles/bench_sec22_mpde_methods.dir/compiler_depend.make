# Empty compiler generated dependencies file for bench_sec22_mpde_methods.
# This may be replaced when dependencies are built.
