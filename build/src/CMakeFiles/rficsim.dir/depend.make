# Empty dependencies file for rficsim.
# This may be replaced when dependencies are built.
