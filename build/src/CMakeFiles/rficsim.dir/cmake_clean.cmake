file(REMOVE_RECURSE
  "CMakeFiles/rficsim.dir/cli/rficsim.cpp.o"
  "CMakeFiles/rficsim.dir/cli/rficsim.cpp.o.d"
  "rficsim"
  "rficsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rficsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
