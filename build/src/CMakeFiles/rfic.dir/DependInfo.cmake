
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ac.cpp" "src/CMakeFiles/rfic.dir/analysis/ac.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/ac.cpp.o.d"
  "/root/repo/src/analysis/dc.cpp" "src/CMakeFiles/rfic.dir/analysis/dc.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/dc.cpp.o.d"
  "/root/repo/src/analysis/noise.cpp" "src/CMakeFiles/rfic.dir/analysis/noise.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/noise.cpp.o.d"
  "/root/repo/src/analysis/shooting.cpp" "src/CMakeFiles/rfic.dir/analysis/shooting.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/shooting.cpp.o.d"
  "/root/repo/src/analysis/sparams.cpp" "src/CMakeFiles/rfic.dir/analysis/sparams.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/sparams.cpp.o.d"
  "/root/repo/src/analysis/transient.cpp" "src/CMakeFiles/rfic.dir/analysis/transient.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/analysis/transient.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/rfic.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/devices.cpp" "src/CMakeFiles/rfic.dir/circuit/devices.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/devices.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/rfic.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/rfic.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/semiconductors.cpp" "src/CMakeFiles/rfic.dir/circuit/semiconductors.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/semiconductors.cpp.o.d"
  "/root/repo/src/circuit/sources.cpp" "src/CMakeFiles/rfic.dir/circuit/sources.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/circuit/sources.cpp.o.d"
  "/root/repo/src/extraction/geometry.cpp" "src/CMakeFiles/rfic.dir/extraction/geometry.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/geometry.cpp.o.d"
  "/root/repo/src/extraction/ies3.cpp" "src/CMakeFiles/rfic.dir/extraction/ies3.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/ies3.cpp.o.d"
  "/root/repo/src/extraction/mom.cpp" "src/CMakeFiles/rfic.dir/extraction/mom.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/mom.cpp.o.d"
  "/root/repo/src/extraction/panel_kernel.cpp" "src/CMakeFiles/rfic.dir/extraction/panel_kernel.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/panel_kernel.cpp.o.d"
  "/root/repo/src/extraction/peec.cpp" "src/CMakeFiles/rfic.dir/extraction/peec.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/peec.cpp.o.d"
  "/root/repo/src/extraction/spiral.cpp" "src/CMakeFiles/rfic.dir/extraction/spiral.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/extraction/spiral.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/rfic.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/fft/fft.cpp.o.d"
  "/root/repo/src/hb/harmonic_balance.cpp" "src/CMakeFiles/rfic.dir/hb/harmonic_balance.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/hb/harmonic_balance.cpp.o.d"
  "/root/repo/src/hb/hb_jacobian.cpp" "src/CMakeFiles/rfic.dir/hb/hb_jacobian.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/hb/hb_jacobian.cpp.o.d"
  "/root/repo/src/hb/rf_measures.cpp" "src/CMakeFiles/rfic.dir/hb/rf_measures.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/hb/rf_measures.cpp.o.d"
  "/root/repo/src/hb/spectrum.cpp" "src/CMakeFiles/rfic.dir/hb/spectrum.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/hb/spectrum.cpp.o.d"
  "/root/repo/src/mpde/bivariate.cpp" "src/CMakeFiles/rfic.dir/mpde/bivariate.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/bivariate.cpp.o.d"
  "/root/repo/src/mpde/envelope.cpp" "src/CMakeFiles/rfic.dir/mpde/envelope.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/envelope.cpp.o.d"
  "/root/repo/src/mpde/fast_system.cpp" "src/CMakeFiles/rfic.dir/mpde/fast_system.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/fast_system.cpp.o.d"
  "/root/repo/src/mpde/hier_shooting.cpp" "src/CMakeFiles/rfic.dir/mpde/hier_shooting.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/hier_shooting.cpp.o.d"
  "/root/repo/src/mpde/mfdtd.cpp" "src/CMakeFiles/rfic.dir/mpde/mfdtd.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/mfdtd.cpp.o.d"
  "/root/repo/src/mpde/mmft.cpp" "src/CMakeFiles/rfic.dir/mpde/mmft.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/mpde/mmft.cpp.o.d"
  "/root/repo/src/numeric/dense.cpp" "src/CMakeFiles/rfic.dir/numeric/dense.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/eig.cpp" "src/CMakeFiles/rfic.dir/numeric/eig.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/numeric/eig.cpp.o.d"
  "/root/repo/src/numeric/lu.cpp" "src/CMakeFiles/rfic.dir/numeric/lu.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/numeric/lu.cpp.o.d"
  "/root/repo/src/numeric/qr.cpp" "src/CMakeFiles/rfic.dir/numeric/qr.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/numeric/qr.cpp.o.d"
  "/root/repo/src/numeric/svd.cpp" "src/CMakeFiles/rfic.dir/numeric/svd.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/numeric/svd.cpp.o.d"
  "/root/repo/src/phasenoise/floquet.cpp" "src/CMakeFiles/rfic.dir/phasenoise/floquet.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/phasenoise/floquet.cpp.o.d"
  "/root/repo/src/phasenoise/jitter_mc.cpp" "src/CMakeFiles/rfic.dir/phasenoise/jitter_mc.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/phasenoise/jitter_mc.cpp.o.d"
  "/root/repo/src/phasenoise/phase_noise.cpp" "src/CMakeFiles/rfic.dir/phasenoise/phase_noise.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/phasenoise/phase_noise.cpp.o.d"
  "/root/repo/src/rom/arnoldi_rom.cpp" "src/CMakeFiles/rfic.dir/rom/arnoldi_rom.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/rom/arnoldi_rom.cpp.o.d"
  "/root/repo/src/rom/linear_system.cpp" "src/CMakeFiles/rfic.dir/rom/linear_system.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/rom/linear_system.cpp.o.d"
  "/root/repo/src/rom/prima.cpp" "src/CMakeFiles/rfic.dir/rom/prima.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/rom/prima.cpp.o.d"
  "/root/repo/src/rom/pvl.cpp" "src/CMakeFiles/rfic.dir/rom/pvl.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/rom/pvl.cpp.o.d"
  "/root/repo/src/rom/rom_noise.cpp" "src/CMakeFiles/rfic.dir/rom/rom_noise.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/rom/rom_noise.cpp.o.d"
  "/root/repo/src/sparse/krylov.cpp" "src/CMakeFiles/rfic.dir/sparse/krylov.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/sparse/krylov.cpp.o.d"
  "/root/repo/src/sparse/sparse_lu.cpp" "src/CMakeFiles/rfic.dir/sparse/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/sparse/sparse_lu.cpp.o.d"
  "/root/repo/src/sparse/sparse_matrix.cpp" "src/CMakeFiles/rfic.dir/sparse/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/rfic.dir/sparse/sparse_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
