file(REMOVE_RECURSE
  "librfic.a"
)
