# Empty compiler generated dependencies file for rfic.
# This may be replaced when dependencies are built.
