file(REMOVE_RECURSE
  "CMakeFiles/am_envelope.dir/am_envelope.cpp.o"
  "CMakeFiles/am_envelope.dir/am_envelope.cpp.o.d"
  "am_envelope"
  "am_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
