# Empty dependencies file for am_envelope.
# This may be replaced when dependencies are built.
