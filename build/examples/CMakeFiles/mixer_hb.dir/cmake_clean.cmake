file(REMOVE_RECURSE
  "CMakeFiles/mixer_hb.dir/mixer_hb.cpp.o"
  "CMakeFiles/mixer_hb.dir/mixer_hb.cpp.o.d"
  "mixer_hb"
  "mixer_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixer_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
