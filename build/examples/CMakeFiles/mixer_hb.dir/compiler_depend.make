# Empty compiler generated dependencies file for mixer_hb.
# This may be replaced when dependencies are built.
