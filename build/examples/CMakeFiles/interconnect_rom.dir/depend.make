# Empty dependencies file for interconnect_rom.
# This may be replaced when dependencies are built.
