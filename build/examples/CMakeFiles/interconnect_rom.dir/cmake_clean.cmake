file(REMOVE_RECURSE
  "CMakeFiles/interconnect_rom.dir/interconnect_rom.cpp.o"
  "CMakeFiles/interconnect_rom.dir/interconnect_rom.cpp.o.d"
  "interconnect_rom"
  "interconnect_rom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_rom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
