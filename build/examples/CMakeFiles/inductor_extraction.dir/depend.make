# Empty dependencies file for inductor_extraction.
# This may be replaced when dependencies are built.
