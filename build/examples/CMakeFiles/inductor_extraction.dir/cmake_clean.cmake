file(REMOVE_RECURSE
  "CMakeFiles/inductor_extraction.dir/inductor_extraction.cpp.o"
  "CMakeFiles/inductor_extraction.dir/inductor_extraction.cpp.o.d"
  "inductor_extraction"
  "inductor_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inductor_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
