# Empty compiler generated dependencies file for oscillator_phase_noise.
# This may be replaced when dependencies are built.
