file(REMOVE_RECURSE
  "CMakeFiles/oscillator_phase_noise.dir/oscillator_phase_noise.cpp.o"
  "CMakeFiles/oscillator_phase_noise.dir/oscillator_phase_noise.cpp.o.d"
  "oscillator_phase_noise"
  "oscillator_phase_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillator_phase_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
