#!/usr/bin/env python3
"""Command-line client for rficd, the simulation daemon.

Speaks the newline-delimited JSON protocol over a unix-domain socket
(one flat object per line in both directions; see DESIGN.md section 10).

  rficd_client.py --socket /tmp/rfic.sock submit lpf.cir --wait
  rficd_client.py --socket /tmp/rfic.sock submit lpf.cir --label lpf \
      --timeout 10 --threads 1 --priority batch --max-bytes 67108864
  rficd_client.py --socket /tmp/rfic.sock status
  rficd_client.py --socket /tmp/rfic.sock cancel 7
  rficd_client.py --socket /tmp/rfic.sock stats
  rficd_client.py --socket /tmp/rfic.sock shutdown

`submit --wait` streams the job's stdout to this terminal as it arrives
and exits with the job's exit code, so it is a drop-in remote rficsim.

Overload handling: when the daemon sheds a batch job or reports a full
queue ("reason": "shed" / "queue-full"), submit retries with exponential
backoff plus jitter (--retries, --backoff); the delay doubles again while
the daemon reports itself degraded. A "spec-invalid" rejection is a bad
netlist, never retried, and exits 2 like a local rficsim parse error.
"""

import argparse
import json
import random
import socket
import sys
import time


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.buf = b""

    def send(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")

    def recv(self):
        """Read one NDJSON object (blocking)."""
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)


def cmd_submit(cli, args):
    with open(args.netlist) as f:
        netlist = f.read()
    req = {"cmd": "submit", "netlist": netlist}
    if args.label:
        req["label"] = args.label
    if args.timeout is not None:
        req["timeout"] = args.timeout
    if args.newton is not None:
        req["newton"] = args.newton
    if args.krylov is not None:
        req["krylov"] = args.krylov
    if args.threads is not None:
        req["threads"] = args.threads
    if args.priority:
        req["priority"] = args.priority
    if args.max_bytes is not None:
        req["maxbytes"] = args.max_bytes

    # Transient rejections (shed, queue-full) are retried with exponential
    # backoff + jitter so a fleet of clients doesn't hammer a degraded
    # daemon in lockstep; permanent ones (spec-invalid) are not.
    delay = args.backoff
    attempt = 0
    while True:
        cli.send(req)
        msg = cli.recv()
        if msg.get("event") == "accepted":
            break
        reason = msg.get("reason", "")
        detail = msg.get("detail", "")
        if reason == "spec-invalid":
            print(f"rejected: {reason}: {detail}", file=sys.stderr)
            return 2
        if reason not in ("shed", "queue-full") or attempt >= args.retries:
            print(f"rejected: {reason}: {detail}", file=sys.stderr)
            return 1
        sleep = delay * (1.0 + random.random())
        if msg.get("degraded"):
            sleep *= 2.0
        print(f"rejected ({reason}), retrying in {sleep:.2f}s "
              f"[{attempt + 1}/{args.retries}]", file=sys.stderr)
        time.sleep(sleep)
        delay *= 2.0
        attempt += 1

    job = msg["job"]
    if not args.wait:
        print(job)
        return 0
    # Stream this job's events until it finishes.
    while True:
        msg = cli.recv()
        if msg.get("job") != job:
            continue
        ev = msg.get("event")
        if ev == "stdout":
            sys.stdout.write(msg.get("text", ""))
        elif ev == "stderr":
            sys.stderr.write(msg.get("text", ""))
        elif ev == "finished":
            return int(msg.get("exit", 1))


def cmd_status(cli, args):
    cli.send({"cmd": "status"})
    while True:
        msg = cli.recv()
        if msg.get("event") == "status-end":
            print(f"{msg.get('jobs', 0)} job(s)")
            return 0
        if msg.get("event") == "job":
            print(f"job {msg['job']:>4}  {msg.get('state', '?'):<10} "
                  f"exit={msg.get('exit', '')} {msg.get('label', '')}")


def cmd_cancel(cli, args):
    cli.send({"cmd": "cancel", "job": args.job})
    msg = cli.recv()
    ok = msg.get("ok")
    print("cancelled" if ok else "not cancellable (unknown or finished)")
    return 0 if ok else 1


def cmd_result(cli, args):
    cli.send({"cmd": "result", "job": args.job})
    while True:
        msg = cli.recv()
        if msg.get("event") == "result" and msg.get("job") == args.job:
            print(json.dumps(msg, indent=2))
            return int(msg.get("exit", 1))
        if msg.get("event") == "error":
            print(msg.get("error"), file=sys.stderr)
            return 1


def cmd_stats(cli, args):
    cli.send({"cmd": "stats"})
    while True:
        msg = cli.recv()
        if msg.get("event") == "stats":
            gauges = {k: v for k, v in msg.items()
                      if k not in ("event", "text")}
            print(json.dumps(gauges, indent=2))
            sys.stdout.write(msg.get("text", ""))
            return 0


def cmd_shutdown(cli, args):
    cli.send({"cmd": "shutdown"})
    msg = cli.recv()
    print("daemon shutting down" if msg.get("event") == "bye" else msg)
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--socket", required=True, help="daemon socket path")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="submit a netlist")
    p.add_argument("netlist")
    p.add_argument("--label", default="")
    p.add_argument("--timeout", type=float)
    p.add_argument("--newton", type=int)
    p.add_argument("--krylov", type=int)
    p.add_argument("--threads", type=int)
    p.add_argument("--priority", choices=["high", "normal", "batch"],
                   help="scheduling class (default: normal)")
    p.add_argument("--max-bytes", type=int,
                   help="per-job workspace byte budget (exit 6 on breach)")
    p.add_argument("--retries", type=int, default=5,
                   help="retry attempts for shed/queue-full rejections")
    p.add_argument("--backoff", type=float, default=0.25,
                   help="initial backoff seconds (doubles per retry)")
    p.add_argument("--wait", action="store_true",
                   help="stream output and exit with the job's exit code")
    p.set_defaults(fn=cmd_submit)

    sub.add_parser("status", help="list jobs").set_defaults(fn=cmd_status)

    p = sub.add_parser("cancel", help="cancel a job")
    p.add_argument("job", type=int)
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("result", help="wait for a job's result")
    p.add_argument("job", type=int)
    p.set_defaults(fn=cmd_result)

    sub.add_parser("stats", help="scheduler gauges + perf counters"
                   ).set_defaults(fn=cmd_stats)
    sub.add_parser("shutdown", help="stop the daemon").set_defaults(
        fn=cmd_shutdown)

    args = ap.parse_args()
    cli = Client(args.socket)
    return args.fn(cli, args)


if __name__ == "__main__":
    sys.exit(main())
