#!/usr/bin/env python3
"""Compare fresh bench JSON artifacts against the committed baselines.

Usage:
    python3 tools/bench_compare.py [--fresh DIR] [--baseline DIR]
                                   [--threshold PCT]

Each BENCH_<name>.json in the baseline directory (default bench/baseline/)
is matched against the file of the same name in the fresh directory
(default: the current working directory, where the benches write their
artifacts). Numeric keys are diffed; wall-clock keys (ending in `_s` or
`_ns`) get a ratio column and are flagged when they regress by more than
the threshold (default 25%).

The report is INFORMATIONAL: the exit code is always 0 unless the inputs
are unreadable. Bench machines differ — CI uses this as a trend signal
next to the uploaded artifacts, not as a gate. Refresh a baseline by
copying a representative BENCH_*.json over bench/baseline/ and committing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    with open(path) as f:
        return json.load(f)


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def compare_file(base_path: Path, fresh_path: Path, threshold: float) -> int:
    base = load(base_path)
    fresh = load(fresh_path)
    regressions = 0
    print(f"\n== {base_path.name} ==")
    if base.get("quick") != fresh.get("quick"):
        print(f"  note: quick-mode mismatch (baseline quick={base.get('quick')}, "
              f"fresh quick={fresh.get('quick')}) — ratios are not comparable")
    rows = []
    for key, bval in base.items():
        if key in ("bench", "quick"):
            continue
        fval = fresh.get(key)
        if fval is None:
            rows.append((key, bval, "(missing)", ""))
            continue
        if not (is_number(bval) and is_number(fval)):
            mark = "" if bval == fval else "changed"
            rows.append((key, bval, fval, mark))
            continue
        timed = key.endswith("_s") or key.endswith("_ns")
        if timed and bval > 0:
            ratio = fval / bval
            mark = f"{ratio:6.2f}x"
            if ratio > 1.0 + threshold / 100.0:
                mark += f"  REGRESSION (> {threshold:g}%)"
                regressions += 1
            elif ratio < 1.0 - threshold / 100.0:
                mark += "  improved"
            rows.append((key, f"{bval:.6g}", f"{fval:.6g}", mark))
        else:
            mark = "" if bval == fval else "changed"
            rows.append((key, bval, fval, mark))
    new_keys = sorted(set(fresh) - set(base) - {"bench", "quick"})
    for key in new_keys:
        rows.append((key, "(new)", fresh[key], ""))
    width = max((len(r[0]) for r in rows), default=10)
    for key, bval, fval, mark in rows:
        print(f"  {key:<{width}}  {str(bval):>14}  {str(fval):>14}  {mark}")
    return regressions


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", default=".",
                    help="directory holding fresh BENCH_*.json (default: cwd)")
    ap.add_argument("--baseline", default="bench/baseline",
                    help="directory holding committed baselines")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="wall-clock regression flag threshold in percent")
    args = ap.parse_args()

    base_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    baselines = sorted(base_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {base_dir}", file=sys.stderr)
        return 1

    total = 0
    compared = 0
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            print(f"\n== {base_path.name} ==\n  fresh artifact not found "
                  f"in {fresh_dir} — run the bench first")
            continue
        try:
            total += compare_file(base_path, fresh_path, args.threshold)
            compared += 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"cannot compare {base_path.name}: {e}", file=sys.stderr)
            return 1

    print(f"\n{compared}/{len(baselines)} benches compared; "
          f"{total} wall-clock regression(s) over {args.threshold:g}% "
          f"(informational, non-gating)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
