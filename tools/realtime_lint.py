#!/usr/bin/env python3
"""Real-time / allocation-discipline lint for the rfic library.

Functions marked RFIC_REALTIME (the HB matrix-vector apply and
preconditioner solve, the IES3 matvec, SymbolicLU::refactor and the
allocation-free solve, fft::Plan execution and the batched transforms, the
transient Newton inner step) are the per-iteration hot loops the
performance PRs fought to make allocation-free. This lint keeps them that
way: it walks the static call graph from every marked *definition* and
rejects, in any reachable repo function:

  rt-alloc   heap allocation: new / malloc / make_unique / make_shared,
             allocating container calls (push_back, emplace_back, resize,
             reserve, assign, insert, emplace), std::function construction,
             string building, and container/matrix locals constructed with
             a size or initializer.
  rt-lock    blocking synchronization: diag::LockGuard / diag::UniqueLock,
             std::lock_guard / unique_lock / scoped_lock, raw .lock() /
             .try_lock(), and condition-variable .wait().
  rt-throw   explicit `throw` / std::rethrow_exception. (RFIC_REQUIRE and
             the diag::fail* helpers are exempt: they are the sanctioned
             abort path for broken invariants, cold by definition.)
  rt-io      stream / stdio I/O: std::cout / cerr / clog, printf family,
             fstream / stringstream construction, fopen / fwrite / fread,
             and std::getline.

Suppression — every intentional exception must be auditable in review:

    code();  // rt: allow(<rule>) <justification>

or on its own line immediately above the flagged statement. The
justification is mandatory; an empty one is itself a violation
(rt-suppression). Suppressing a *call* line also prunes the walk into that
callee (the suppression vouches for the whole cold subtree, e.g. the
Repivoted refactor fallback).

Honest limits (documented, not hidden): calls are resolved textually —
by unqualified name, then disambiguated by trailing qualifier and argument
count. Virtual dispatch (device stamps), operator overloads, and calls
that stay ambiguous after disambiguation are not walked; --verbose lists
every skipped callee so the residue is reviewable.

Usage: realtime_lint.py [repo_root] [--report FILE] [--verbose]
       (exit 0 = clean, 1 = violations)
When repo_root has no src/ directory the tree is scanned as-is — this is
how the seeded-violation fixture under tests/static/ lints itself.
"""

import re
import sys
from pathlib import Path

LINT_DIRS = ("src",)
CPP_EXTS = {".cpp", ".hpp", ".h", ".cc"}
MARKER = "RFIC_REALTIME"
RULES = ("rt-alloc", "rt-lock", "rt-throw", "rt-io")

# The sanctioned contract-abort machinery: reachable calls to these are the
# approved way for a hot loop to bail out on a broken invariant.
EXEMPT_CALLS = {
    "RFIC_REQUIRE", "RFIC_CHECK", "failNumerical", "failInvalid",
    "failUnsupported", "failConvergence",
}

# Control-flow keywords that look like calls to the extractor.
NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "alignof", "alignas", "decltype", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "static_assert", "defined",
    "noexcept", "operator", "assert",
}

ALLOC_RES = [
    (re.compile(r"(?<![\w.])new\s+[A-Za-z_:<(]"), "raw `new`"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("), "C allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "smart-pointer allocation"),
    (re.compile(r"[.>]\s*(?:push_back|emplace_back|resize|reserve|assign|"
                r"insert|emplace|append)\s*\("),
     "allocating container call"),
    (re.compile(r"\bstd::function\s*<"), "std::function construction"),
    (re.compile(r"\bstd::to_string\s*\(|\bstd::(?:o|i)?stringstream\b"),
     "string building"),
    # Container/matrix local constructed with a size or initializer (a bare
    # `RVec r;` declaration is fine — it allocates nothing until used).
    (re.compile(r"^\s*(?:const\s+)?"
                r"(?:std::vector\s*<[^;&=]*>|std::string|"
                r"(?:numeric::)?[RC](?:Vec|Mat)|Vec<[^;&=]*>)"
                r"\s+\w+\s*(?:\(|\{|=[^=])"),
     "container local constructed with contents"),
]
LOCK_RES = [
    (re.compile(r"\bdiag::(?:LockGuard|UniqueLock)\b|"
                r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
     "scoped lock acquisition"),
    (re.compile(r"[.>]\s*(?:lock|try_lock)\s*\(\s*\)"), "explicit lock"),
    (re.compile(r"[.>]\s*wait(?:_for|_until)?\s*\("),
     "condition-variable wait"),
]
THROW_RES = [
    (re.compile(r"(?<![\w.])throw\b(?!\s*;|\s*\()"), "explicit throw"),
    (re.compile(r"\bstd::rethrow_exception\b"), "rethrow"),
]
IO_RES = [
    (re.compile(r"\bstd::c(?:out|err|log)\b"), "stream I/O"),
    (re.compile(r"\b(?:printf|fprintf|sprintf|snprintf|puts|fputs)\s*\("),
     "stdio I/O"),
    (re.compile(r"\bstd::[io]?fstream\b|\bfopen\s*\(|\bfwrite\s*\(|"
                r"\bfread\s*\(|\bstd::getline\s*\("),
     "file I/O"),
]
RULE_TABLE = [("rt-alloc", ALLOC_RES), ("rt-lock", LOCK_RES),
              ("rt-throw", THROW_RES), ("rt-io", IO_RES)]

ALLOW_RE = re.compile(r"//\s*rt:\s*allow\(([\w-]+)\)\s*(.*)$")
CALL_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*\(")
CTOR_RE = re.compile(r"\b((?:\w+\s*::\s*)*[A-Z]\w*)\s+\w+\s*\(")


def strip_comments_and_strings(text):
    """Blank comments and string/char literals, preserving line structure.
    Directives are collected separately from the raw text, so nothing needs
    to survive the stripping here."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append(re.sub(r"[^\n]", " ", text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * max(0, j - i - 1) + (q if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def top_level_args(argtext):
    """Number of top-level comma-separated arguments in `argtext` (the text
    between a call's parentheses)."""
    if not argtext.strip():
        return 0
    depth = 0
    count = 1
    for c in argtext:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == "," and depth == 0:
            count += 1
    return count


class Function:
    def __init__(self, path, qname, start_line, sig_text, body, body_line):
        self.path = path
        self.qname = qname          # e.g. "SymbolicLU::solve" (templates cut)
        self.name = qname.split("::")[-1]
        self.start_line = start_line
        self.body = body            # stripped text incl. outer braces
        self.body_line = body_line  # line number of the opening brace
        params = top_level_args(sig_text)
        defaults = sig_text.count("=")
        self.max_args = params
        self.min_args = max(0, params - defaults)
        self.marked = False


def extract_functions(path, text):
    """Heuristic definition extractor: for every block-opening `{`, walk back
    over const/noexcept/override/ctor-initializers to the parameter list and
    take the qualified token before it as the function name."""
    funcs = []
    n = len(text)
    line_of = [0] * (n + 1)
    ln = 1
    for i, c in enumerate(text):
        line_of[i] = ln
        if c == "\n":
            ln += 1
    line_of[n] = ln

    name_re = re.compile(
        r"([A-Za-z_~]\w*(?:\s*<[^<>]*>)?(?:\s*::\s*~?[A-Za-z_]\w*"
        r"(?:\s*<[^<>]*>)?)*)\s*$")

    for m in re.finditer(r"\{", text):
        brace = m.start()
        j = brace - 1
        while j >= 0 and text[j] in " \t\n":
            j -= 1
        # Walk back over trailing qualifiers and the whole ctor initializer
        # list (entries look like `name(args)` preceded by ':' or ',') until
        # the parameter list's ')' is reached.
        nm = None
        k = -1
        guard = 0
        while j >= 0 and guard < 200:
            guard += 1
            tail = text[max(0, j - 20):j + 1]
            tm = re.search(r"(const|noexcept|override|final|mutable)\s*$",
                           tail)
            if tm:
                j -= len(tm.group(1))
                while j >= 0 and text[j] in " \t\n":
                    j -= 1
                continue
            if text[j] != ")":
                nm = None
                break
            # Match this ')' back to its '(' and read the name before it.
            depth = 0
            k = j
            while k >= 0:
                if text[k] == ")":
                    depth += 1
                elif text[k] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                nm = None
                break
            nm = name_re.search(text[:k])
            if not nm:
                break
            p = nm.start(1) - 1
            while p >= 0 and text[p] in " \t\n":
                p -= 1
            if p >= 0 and (text[p] == "," or
                           (text[p] == ":" and
                            (p == 0 or text[p - 1] != ":"))):
                # `name(args)` was a member initializer — keep walking.
                j = p - 1
                while j >= 0 and text[j] in " \t\n":
                    j -= 1
                nm = None
                continue
            break
        if not nm or k < 0:
            continue
        sig_text = text[k + 1:j]
        qname = re.sub(r"<[^<>]*>", "", nm.group(1))
        qname = re.sub(r"\s+", "", qname)
        last = qname.split("::")[-1]
        if last in NOT_CALLS or not last or last.startswith("~"):
            continue
        # Find the matching closing brace of the body.
        depth = 0
        end = brace
        while end < n:
            if text[end] == "{":
                depth += 1
            elif text[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        if end >= n:
            continue
        f = Function(path, qname, line_of[nm.start(1)], sig_text,
                     text[brace:end + 1], line_of[brace])
        # A definition is a seed if RFIC_REALTIME appears between the end of
        # the previous statement and the function name.
        head = text[:nm.start(1)]
        decl_start = max(head.rfind(";"), head.rfind("}"), head.rfind("{"))
        if MARKER in head[decl_start + 1:]:
            f.marked = True
        funcs.append(f)
    return funcs


class Suppressions:
    """Per-file map of line -> (rule, justification). A directive on its own
    line covers the next non-blank code line; an inline directive covers its
    own line. Continuation comment lines extend the justification."""

    def __init__(self, raw_lines):
        self.by_line = {}
        self.bad = []  # (lineno, rule) with empty justification
        pending = None
        for num, raw in enumerate(raw_lines, 1):
            m = ALLOW_RE.search(raw)
            code = raw[:m.start()].strip() if m else raw.strip()
            if m:
                rule = m.group(1)
                just = m.group(2).strip()
                if not just:
                    # Justification may continue on the next comment line.
                    self.bad.append((num, rule))
                if code:
                    self.by_line[num] = rule
                    pending = None
                else:
                    pending = (rule, num)
            elif pending is not None:
                if code.startswith("//") or not code:
                    continue  # comment continuation / blank line
                self.by_line[num] = pending[0]
                pending = None

    def covers(self, lineno, rule):
        return self.by_line.get(lineno) == rule

    def covers_any(self, lineno):
        return lineno in self.by_line


class RealtimeLint:
    def __init__(self, root, verbose=False):
        self.root = Path(root)
        self.verbose = verbose
        self.functions = []       # all repo Function defs
        self.by_name = {}         # last name -> [Function]
        self.suppressions = {}    # path -> Suppressions
        self.findings = []
        self.skipped = []         # (qname, callee) ambiguous/virtual calls
        self.walked = set()

    def load(self):
        dirs = [self.root / d for d in LINT_DIRS if (self.root / d).is_dir()]
        if not dirs:
            dirs = [self.root]  # fixture mode: lint the tree as given
        for base in dirs:
            for path in sorted(base.rglob("*")):
                if path.suffix not in CPP_EXTS or not path.is_file():
                    continue
                raw = path.read_text()
                self.suppressions[path] = Suppressions(raw.splitlines())
                stripped = strip_comments_and_strings(raw)
                for f in extract_functions(path, stripped):
                    self.functions.append(f)
                    self.by_name.setdefault(f.name, []).append(f)

    def resolve(self, callee_qname, nargs):
        """Resolve a textual call to repo definitions: unqualified-name
        lookup, longest-trailing-qualifier match, then an arity filter.
        Returns [] when nothing matches (an external/std call — the textual
        rules still see the call site), None when irreducibly ambiguous."""
        parts = callee_qname.split("::")
        cands = self.by_name.get(parts[-1], [])
        if not cands:
            return []
        if len(parts) > 1:
            best, best_len = [], 0
            for f in cands:
                fp = f.qname.split("::")
                overlap = 0
                if fp == parts[-len(fp):] or parts == fp[-len(parts):]:
                    overlap = min(len(fp), len(parts))
                if overlap > best_len:
                    best, best_len = [f], overlap
                elif overlap == best_len and overlap > 0:
                    best.append(f)
            if not best:
                return []
            cands = best
        by_arity = [f for f in cands
                    if f.min_args <= nargs <= f.max_args]
        # Defaults often live only in the header declaration, so an arity
        # miss against a *unique* name still resolves to it.
        if not by_arity:
            by_arity = cands if len(cands) == 1 else []
        uniq = {(f.path, f.body_line): f for f in by_arity}
        cands = list(uniq.values())
        if len(cands) == 1:
            return cands
        return None if cands else []

    def check_function(self, func, chain):
        key = (func.path, func.body_line)
        if key in self.walked:
            return
        self.walked.add(key)
        sup = self.suppressions[func.path]
        body_lines = func.body.splitlines()
        for off, line in enumerate(body_lines):
            lineno = func.body_line + off
            if func.name in EXEMPT_CALLS:
                continue
            for rule, patterns in RULE_TABLE:
                for rx, what in patterns:
                    if rx.search(line) and not sup.covers(lineno, rule):
                        self.findings.append(
                            (func.path, lineno, rule,
                             f"{what} in real-time path "
                             f"[{' -> '.join(chain + [func.qname])}]"))
        # Walk callees: plain calls plus `Type var(...)` constructor locals.
        self.walk_calls(func, chain, body_lines)

    def walk_calls(self, func, chain, body_lines):
        sup = self.suppressions[func.path]
        text = func.body
        for m in list(CALL_RE.finditer(text)) + list(CTOR_RE.finditer(text)):
            name = re.sub(r"\s+", "", m.group(1))
            last = name.split("::")[-1]
            if last in NOT_CALLS or last in EXEMPT_CALLS:
                continue
            lineno = func.body_line + text[:m.start()].count("\n")
            # A suppressed call line vouches for the whole callee subtree.
            if sup.covers_any(lineno):
                continue
            # Count arguments of this call.
            op = text.find("(", m.end() - 1)
            depth, q = 0, op
            while q < len(text):
                if text[q] == "(":
                    depth += 1
                elif text[q] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                q += 1
            nargs = top_level_args(text[op + 1:q]) if q < len(text) else 0
            resolved = self.resolve(name, nargs)
            if resolved is None:
                self.skipped.append((func.qname, name))
                continue
            for callee in resolved:
                if callee is func:
                    continue
                self.check_function(callee, chain + [func.qname])

    def run(self):
        self.load()
        for path, sup in sorted(self.suppressions.items()):
            for lineno, rule in sup.bad:
                # A justification that wraps to the next comment line is
                # fine; truly empty ones are flagged.
                raw = path.read_text().splitlines()
                nxt = raw[lineno].strip() if lineno < len(raw) else ""
                if not (nxt.startswith("//") and
                        len(nxt.lstrip("/ ").strip()) > 0):
                    self.findings.append(
                        (path, lineno, "rt-suppression",
                         f"rt: allow({rule}) without a justification — "
                         "say why the exception is safe"))
        seeds = [f for f in self.functions if f.marked]
        for f in seeds:
            self.check_function(f, [])
        return seeds


def main():
    argv = sys.argv[1:]
    verbose = "--verbose" in argv
    report_path = None
    if "--report" in argv:
        i = argv.index("--report")
        report_path = argv[i + 1]
        del argv[i:i + 2]
    argv = [a for a in argv if a != "--verbose"]
    root = argv[0] if argv else "."

    lint = RealtimeLint(root, verbose)
    seeds = lint.run()

    lines = []
    lines.append(f"realtime_lint: {len(seeds)} RFIC_REALTIME root(s), "
                 f"{len(lint.walked)} function(s) walked, "
                 f"{len(lint.findings)} finding(s)")
    for path, lineno, rule, msg in sorted(lint.findings):
        rel = path.relative_to(lint.root) if path.is_relative_to(lint.root) \
            else path
        lines.append(f"  {rel}:{lineno}: [{rule}] {msg}")
    if verbose and lint.skipped:
        lines.append(f"  not walked (ambiguous/virtual): "
                     f"{len(set(lint.skipped))} distinct callee(s)")
        for caller, callee in sorted(set(lint.skipped)):
            lines.append(f"    {caller} -> {callee}")
    out = "\n".join(lines)
    print(out)
    if report_path:
        Path(report_path).write_text(out + "\n")
    if not seeds:
        print("realtime_lint: error: no RFIC_REALTIME definitions found")
        return 1
    return 1 if lint.findings else 0


if __name__ == "__main__":
    sys.exit(main())
