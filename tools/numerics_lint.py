#!/usr/bin/env python3
"""Repo-specific numerics lint for the rfic library.

Statically enforces the project's numerics contracts — the rules that keep
the delicate kernels (matrix-implicit HB, Floquet/phase-noise, IES3) from
drifting into silent-wrong-answer territory:

  float-eq      No == / != between floating-point expressions in solver
                code. Exact-zero guards must go through
                rfic::diag::exactlyZero() so the intent is auditable;
                tolerance tests must use an explicit threshold.
  raw-new       No raw new / delete. The library owns memory through
                containers and smart pointers only.
  data-alias    No pointer captured from X.data() may be used after a
                subsequent X.resize()/push_back()/assign() in the same
                function — the classic invalidated-alias UB.
  entry-check   Every registered public solver entry point must validate
                its input dimensions (RFIC_REQUIRE / diag::check*) near the
                top of its body.
  status        Iterative-solver translation units must report structured
                convergence statuses (diag::SolverStatus), not bare bools.
  detached-thread
                Library code must not create std::thread directly — all
                parallelism goes through perf::ThreadPool (fixed workers,
                joined in the destructor, nested-inline safe). src/perf is
                the one sanctioned exception. `.detach()` is rejected
                everywhere, tests included: a detached thread outlives the
                state it captured.
  mutable-capture
                A `mutable` by-value lambda handed to a pool dispatch
                (parallelFor) gets copied per dispatch and mutates its own
                private copy — workspace handles silently diverge across
                workers. Capture workspaces by reference (the pool joins
                before the dispatch returns) or keep the lambda immutable.
  scalar-exp    No std::exp/std::expm1 in src/circuit device-evaluation
                code outside junction_kernels.hpp. The batched SoA engine
                and the scalar stamp walk are bitwise-identical only
                because both evaluate junction exponentials through the
                same shared inline kernels; a stray scalar exponential in a
                device file forks the implementations and silently breaks
                the --no-batch-eval golden-reference contract.

Escape hatch: append  // lint: allow-<rule>  to a flagged line when the
pattern is intentional (used sparingly; each use is visible in review).

Usage: numerics_lint.py [repo_root]   (exit 0 = clean, 1 = violations)
"""

import re
import sys
from pathlib import Path

LINT_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTS = {".cpp", ".hpp", ".h", ".cc"}

# Solver translation units held to the strictest rules (float-eq applies
# only here; raw-new and data-alias apply everywhere).
SOLVER_DIRS = (
    "src/numeric",
    "src/sparse",
    "src/fft",
    "src/analysis",
    "src/hb",
    "src/mpde",
    "src/phasenoise",
    "src/rom",
    "src/extraction",
)

# (file, function signature regex) pairs: the function body must contain a
# dimension/argument validation within its first VALIDATION_WINDOW lines.
ENTRY_POINTS = [
    ("src/sparse/krylov.cpp", r"IterativeResult gmres\("),
    ("src/sparse/krylov.cpp", r"IterativeResult bicgstab\("),
    ("src/sparse/krylov.cpp", r"IterativeResult conjugateGradient\("),
    ("src/analysis/shooting.cpp", r"PSSResult shootingPSS\("),
    ("src/analysis/shooting.cpp", r"PSSResult shootingOscillatorPSS\("),
    ("src/analysis/dc.cpp", r"DCResult dcOperatingPoint\("),
    ("src/hb/harmonic_balance.cpp", r"HBSolution HarmonicBalance::solve\("),
    ("src/fft/fft.cpp", r"std::vector<Complex> rfft\("),
    ("src/fft/fft.cpp", r"std::vector<Real> irfft\("),
    ("src/fft/fft.cpp", r"void fft2\("),
    ("src/fft/fft.cpp", r"void ifft2\("),
    ("src/phasenoise/phase_noise.cpp",
     r"PhaseNoiseResult analyzeOscillatorPhaseNoise\("),
]
VALIDATION_RE = re.compile(r"RFIC_REQUIRE|RFIC_CHECK|diag::check")
VALIDATION_WINDOW = 12  # lines of body searched for the first validation

# Translation units that implement iterative solvers: each must mention the
# structured status type, and its matching header must carry a status field.
STATUS_UNITS = [
    ("src/sparse/krylov.cpp", "src/sparse/krylov.hpp"),
    ("src/analysis/shooting.cpp", "src/analysis/shooting.hpp"),
    ("src/analysis/dc.cpp", "src/analysis/dc.hpp"),
    ("src/hb/harmonic_balance.cpp", "src/hb/harmonic_balance.hpp"),
]

FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
# A comparison where at least one side is an unambiguous float literal
# (contains a decimal point or an exponent). Integer literals are excluded:
# `n == 0` on a size_t is fine and ubiquitous.
FLOAT_ONLY_LIT = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)"
FLOAT_EQ_RE = re.compile(
    r"(?:" + FLOAT_ONLY_LIT + r"\s*[=!]=)|(?:[=!]=\s*" + FLOAT_ONLY_LIT + r")"
)
# Calls whose result is always floating point; comparing them with == / !=
# against anything is flagged.
FLOAT_CALL_EQ_RE = re.compile(
    r"(?:norm2|normInf|std::abs|std::norm|std::sqrt)\s*\([^()]*\)\s*[=!]=")

THREAD_RE = re.compile(r"\bstd::thread\b")
DETACH_RE = re.compile(r"[.>]\s*detach\s*\(\s*\)")
# A lambda whose capture list takes anything by value (capture-default `=`
# or a bare identifier) and whose body is marked `mutable`.
MUTABLE_LAMBDA_RE = re.compile(
    r"\[([^\]]*)\]\s*(?:\([^)]*\)\s*)?mutable\b")
POOL_DISPATCH_RE = re.compile(r"\bparallelFor\s*\(")
BY_VALUE_CAPTURE_RE = re.compile(r"(?:^|,)\s*(?:=|\w+\s*(?:,|$))")

SCALAR_EXP_RE = re.compile(r"\bstd::(?:exp|expm1)\s*\(")

NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:<]")
DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_(*]")
DATA_CAPTURE_RE = re.compile(r"[*&]?\s*(\w+)\s*=\s*(\w+)\.data\(\)")
MUTATOR_RE = r"\.(?:resize|push_back|emplace_back|assign|clear|shrink_to_fit)\("


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure
    and any `lint: allow-...` directives (kept so per-line opt-outs work)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment = text[i:j]
            m = re.search(r"lint:\s*allow-[\w-]+", comment)
            out.append(" " * 2 + (m.group(0) if m else "") )
            out.append(" " * max(0, (j - i) - len(out[-1]) - 2))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            block = text[i:j + 2]
            out.append(re.sub(r"[^\n]", " ", block))
            i = j + 2
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * max(0, j - i - 1) + (q if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed(line, rule):
    return f"allow-{rule}" in line


class Linter:
    def __init__(self, root):
        self.root = Path(root)
        self.violations = []

    def flag(self, path, lineno, rule, msg):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def lint_file(self, path):
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        lines = clean.splitlines()
        rel = str(path.relative_to(self.root))
        in_solver = any(rel.startswith(d) for d in SOLVER_DIRS)
        in_library = rel.startswith("src/")
        in_pool_impl = rel.startswith("src/perf")
        in_device_eval = (rel.startswith("src/circuit/")
                          and not rel.endswith("junction_kernels.hpp"))

        self.lint_pool_dispatches(path, clean, lines)

        data_aliases = []  # (ptr, container, lineno), reset at function end
        for num, line in enumerate(lines, 1):
            if re.match(r"^[})]", line):
                data_aliases = []

            # raw-new: applies everywhere.
            if not allowed(line, "raw-new"):
                if "operator new" not in line and NEW_RE.search(line):
                    self.flag(path, num, "raw-new",
                              "raw `new` — use containers or make_unique/"
                              "make_shared")
                if ("operator delete" not in line and "= delete" not in line
                        and DELETE_RE.search(line)):
                    self.flag(path, num, "raw-new",
                              "raw `delete` — ownership must be automatic")

            # data-alias: pointer from .data() used across a reallocation.
            m = DATA_CAPTURE_RE.search(line)
            if m:
                data_aliases.append((m.group(1), m.group(2), num))
            for ptr, cont, where in data_aliases:
                if re.search(r"\b" + re.escape(cont) + MUTATOR_RE, line) \
                        and not allowed(line, "data-alias"):
                    self.flag(path, num, "data-alias",
                              f"`{cont}` reallocated while `{ptr}` (from "
                              f"{cont}.data() at line {where}) may still "
                              "alias its old buffer")

            # float-eq: solver code only.
            if in_solver and not allowed(line, "float-eq") \
                    and "operator==" not in line and "operator!=" not in line:
                if FLOAT_EQ_RE.search(line) or FLOAT_CALL_EQ_RE.search(line):
                    self.flag(path, num, "float-eq",
                              "floating-point == / != — use an explicit "
                              "tolerance or diag::exactlyZero()")

            # scalar-exp: junction exponentials belong in the shared
            # kernels header, where both evaluation paths inline them.
            if in_device_eval and not allowed(line, "scalar-exp") \
                    and SCALAR_EXP_RE.search(line):
                self.flag(path, num, "scalar-exp",
                          "scalar std::exp in device-eval code — move the "
                          "expression into junction_kernels.hpp so the "
                          "batched and scalar paths share one bitwise "
                          "implementation")

            # detached-thread: raw std::thread in library code (src/perf is
            # the sanctioned owner); .detach() everywhere.
            if not allowed(line, "detached-thread"):
                if in_library and not in_pool_impl and THREAD_RE.search(line):
                    self.flag(path, num, "detached-thread",
                              "raw std::thread in library code — use "
                              "perf::ThreadPool (fixed workers, joined in "
                              "the destructor)")
                if DETACH_RE.search(line):
                    self.flag(path, num, "detached-thread",
                              "detached thread — it outlives the state it "
                              "captured; join instead")

    def lint_pool_dispatches(self, path, clean, lines):
        """mutable-capture: scan the argument window of every parallelFor
        call for a `mutable` lambda with by-value captures. Whole-text scan
        because the lambda usually starts a line or two below the call."""
        for m in POOL_DISPATCH_RE.finditer(clean):
            window = clean[m.end():m.end() + 600]
            lm = MUTABLE_LAMBDA_RE.search(window)
            if not lm:
                continue
            captures = lm.group(1)
            if not BY_VALUE_CAPTURE_RE.search(captures):
                continue  # reference-only captures: mutable is harmless
            lineno = clean[:m.end() + lm.start()].count("\n") + 1
            if allowed(lines[lineno - 1], "mutable-capture"):
                continue
            self.flag(path, lineno, "mutable-capture",
                      "mutable by-value lambda dispatched to the pool — "
                      "each worker mutates a private copy, so workspace "
                      "state diverges; capture by reference or drop "
                      "`mutable`")

    def lint_entry_points(self):
        for rel, sig in ENTRY_POINTS:
            path = self.root / rel
            if not path.exists():
                self.flag(path if path.is_absolute() else self.root / rel, 1,
                          "entry-check", f"registered entry point file "
                          f"{rel} is missing")
                continue
            text = strip_comments_and_strings(path.read_text())
            lines = text.splitlines()
            found_sig = False
            for i, line in enumerate(lines):
                if re.search(sig, line):
                    found_sig = True
                    body = "\n".join(lines[i:i + VALIDATION_WINDOW])
                    if not VALIDATION_RE.search(body):
                        self.flag(path, i + 1, "entry-check",
                                  f"solver entry point `{sig}` does not "
                                  "validate its inputs (RFIC_REQUIRE / "
                                  "diag::check*) near the top of its body")
                    break
            if not found_sig:
                self.flag(path, 1, "entry-check",
                          f"expected entry point matching `{sig}` not found "
                          "(update ENTRY_POINTS if it moved)")

    def lint_status(self):
        for cpp_rel, hpp_rel in STATUS_UNITS:
            cpp, hpp = self.root / cpp_rel, self.root / hpp_rel
            if cpp.exists() and "SolverStatus" not in cpp.read_text():
                self.flag(cpp, 1, "status",
                          "iterative solver does not set a structured "
                          "diag::SolverStatus")
            if hpp.exists() and not re.search(
                    r"SolverStatus\s+status", hpp.read_text()):
                self.flag(hpp, 1, "status",
                          "solver result struct lacks a "
                          "`diag::SolverStatus status` field")

    def run(self):
        for d in LINT_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CPP_EXTS and path.is_file():
                    self.lint_file(path)
        self.lint_entry_points()
        self.lint_status()
        return self.violations


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    violations = Linter(root).run()
    if violations:
        print(f"numerics_lint: {len(violations)} violation(s)")
        for v in violations:
            print("  " + v)
        return 1
    print("numerics_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
