// Example: the Section 4 extraction workflow — capacitance extraction of a
// multi-conductor structure with the IES³-compressed MoM solver, and a
// spiral-inductor macromodel (PEEC inductance + substrate network).
#include <cstdio>

#include "extraction/ies3.hpp"
#include "extraction/mom.hpp"
#include "extraction/spiral.hpp"

using namespace rfic;
using namespace rfic::extraction;

int main() {
  // --- 1. Capacitance of a 4x4 bus crossing (two metal layers). ---------
  const auto mesh = makeBusCrossing(/*count=*/6, /*width=*/1e-6,
                                    /*pitch=*/3e-6, /*length=*/18e-6,
                                    /*layerGap=*/1e-6, /*panelsAlong=*/64);
  std::printf("bus crossing: %zu conductors, %zu panels\n",
              mesh.numConductors(), mesh.panels.size());
  const auto cap = extractCapacitanceIES3(mesh);
  std::printf("IES3: %zu stored entries (%.0f%% of dense), %zu GMRES its\n",
              cap.storedEntries,
              100.0 * cap.storedEntries /
                  (static_cast<double>(cap.panelCount) * cap.panelCount),
              cap.gmresIterations);
  std::printf("\ncoupling of wire mx0 to each crossing wire (aF):\n");
  for (std::size_t j = 6; j < 12; ++j)
    std::printf("  mx0-%s: %8.3f\n", mesh.conductorNames[j].c_str(),
                -cap.matrix(0, j) * 1e18);

  // --- 2. Spiral inductor macromodel. ------------------------------------
  SpiralParams p;
  p.turns = 5;
  p.outerSize = 250e-6;
  p.width = 8e-6;
  p.spacing = 2e-6;
  const auto model = buildSpiralModel(p);
  std::printf("\nspiral inductor (%zu turns, %.0f um):\n", p.turns,
              p.outerSize * 1e6);
  std::printf("  L = %.3f nH, Rdc = %.2f ohm, Cox = %.1f fF\n",
              model.seriesL * 1e9, model.seriesRdc, model.cox * 1e15);
  std::printf("  %-10s %-12s %-8s\n", "f (GHz)", "Leff (nH)", "Q");
  for (double f = 0.5e9; f <= 8e9; f *= 2.0)
    std::printf("  %-10.1f %-12.3f %-8.2f\n", f * 1e-9,
                model.effectiveInductance(f) * 1e9, model.qualityFactor(f));
  return 0;
}
