// Example: the full Section 3 oscillator workflow — start-up transient,
// autonomous shooting PSS, Floquet/PPV phase-noise characterization, and a
// phase-noise report of the kind an RF designer reads off a spectrum
// analyzer.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/shooting.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "phasenoise/phase_noise.hpp"

using namespace rfic;
using namespace rfic::circuit;
using namespace rfic::analysis;

int main() {
  // Negative-resistance LC oscillator: 50 MHz tank with a cubic
  // active element (a van der Pol core — the idealization of a
  // cross-coupled pair).
  Circuit c;
  const int v = c.node("tank");
  const int br = c.allocBranch("L1");
  c.add<Capacitor>("C1", v, -1, 100e-12);
  c.add<Inductor>("L1", v, -1, br, 101.3e-9);  // f0 ≈ 50 MHz
  c.add<Resistor>("Rtank", v, -1, 1000.0);     // tank loss (and noise)
  c.add<CubicConductance>("Gact", v, -1, -2.5e-3, 1.2e-3);
  MnaSystem sys(c);

  // 1. Kick the oscillator and let the limit cycle form.
  TransientOptions to;
  to.tstop = 2e-6;
  to.dt = 0.1e-9;
  to.method = IntegrationMethod::trapezoidal;
  numeric::RVec x0(sys.dim(), 0.0);
  x0[static_cast<std::size_t>(v)] = 0.1;
  const auto tr = runTransient(sys, x0, to);
  const Real tGuess = estimatePeriod(tr, static_cast<std::size_t>(v), 0.0);
  Real vmax = 0;
  for (const auto& xs : tr.x)
    vmax = std::max(vmax, xs[static_cast<std::size_t>(v)]);
  std::printf("start-up transient: period estimate %.4f ns (f ~ %.2f MHz), "
              "swing %.2f V\n", tGuess * 1e9, 1e-6 / tGuess, vmax);

  // 2. Autonomous shooting: period refined as a Newton unknown. The phase
  // anchor pins v(tank) mid-swing — a value the equilibrium cannot satisfy,
  // so Newton cannot collapse onto the DC fixed point. All unknowns here
  // are dynamic states, so the (more accurate) trapezoidal rule is safe.
  // Take the Newton guess from an actual trajectory sample at the anchor
  // crossing, so the initial (v, iL) pair is consistent with the orbit.
  numeric::RVec guess = tr.x.back();
  Real anchorValue = 0.5 * vmax;
  for (std::size_t k = tr.x.size() - 1; k > 1; --k) {
    const Real a = tr.x[k - 1][static_cast<std::size_t>(v)];
    const Real b = tr.x[k][static_cast<std::size_t>(v)];
    if (a < anchorValue && b >= anchorValue) {
      guess = tr.x[k];
      anchorValue = b;
      break;
    }
  }
  ShootingOptions so;
  so.stepsPerPeriod = 1000;
  so.method = IntegrationMethod::trapezoidal;
  const auto pss = shootingOscillatorPSS(sys, tGuess, guess,
                                         static_cast<std::size_t>(v),
                                         anchorValue, so);
  if (!pss.converged) {
    std::printf("PSS did not converge\n");
    return 1;
  }
  Real amp = 0;
  for (const auto& x : pss.trajectory)
    amp = std::max(amp, std::abs(x[static_cast<std::size_t>(v)]));
  std::printf("PSS: f0 = %.6f MHz, tank amplitude %.3f V "
              "(%zu Newton iterations)\n",
              1e-6 / pss.period, amp, pss.newtonIterations);

  // 3. Phase-noise characterization from the PPV.
  const auto pn = phasenoise::analyzeOscillatorPhaseNoise(sys, pss);
  std::printf("\nphase-noise summary:\n");
  std::printf("  c = %.3e s   (oscillator linewidth %.3e Hz)\n", pn.c,
              pn.linewidthHz());
  std::printf("  period jitter (1 cycle): %.3f fs rms\n",
              std::sqrt(pn.jitterVariance(pss.period)) * 1e15);
  std::printf("  accumulated jitter (1 us): %.3f ps rms\n",
              std::sqrt(pn.jitterVariance(1e-6)) * 1e12);
  std::printf("\n  L(offset), the datasheet numbers:\n");
  for (const Real off : {1e3, 1e4, 1e5, 1e6, 1e7})
    std::printf("    L(%7.0f Hz) = %7.1f dBc/Hz\n", off,
                pn.ssbPhaseNoiseDbc(off));
  std::printf("\n  noise budget:\n");
  for (const auto& [label, cc] : pn.perSource)
    std::printf("    %-18s %5.1f%%\n", label.c_str(), 100.0 * cc / pn.c);
  return 0;
}
