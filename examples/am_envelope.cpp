// Example: TD-ENV envelope following (Section 2.2, method 3) on an
// AM-modulated carrier through a detector — the class of problem ("slow
// modulation riding on a fast carrier") that motivates envelope methods.
//
// A brute-force transient would resolve every one of the 200 carrier
// cycles per modulation period; the envelope method takes a handful of
// slow steps, each a small periodic solve, and reports the modulation
// directly as the time-varying carrier harmonic.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "mpde/envelope.hpp"

using namespace rfic;
using namespace rfic::circuit;

int main() {
  const Real fc = 20e6;   // carrier
  const Real fm = 100e3;  // modulation

  // AM generator: carrier × (1 + 0.5·cos(2π·fm·t)) via an ideal multiplier,
  // then a diode envelope detector.
  Circuit c;
  const int car = c.node("car"), mod = c.node("mod"), am = c.node("am");
  const int det = c.node("det");
  const int b1 = c.allocBranch("Vc"), b2 = c.allocBranch("Vm");
  c.add<VSource>("Vc", car, -1, b1, std::make_shared<SineWave>(1.0, fc),
                 TimeAxis::fast);
  c.add<VSource>("Vm", mod, -1, b2,
                 std::make_shared<SineWave>(0.5, fm, 0.0, 1.0),
                 TimeAxis::slow);
  c.add<Multiplier>("MX", am, -1, car, -1, mod, -1, 2e-3);
  c.add<Resistor>("Rmix", am, -1, 1000.0);
  Diode::Params dp;
  dp.is = 1e-12;
  c.add<Diode>("Ddet", am, det, dp);
  c.add<Resistor>("Rdet", det, -1, 20000.0);
  c.add<Capacitor>("Cdet", det, -1, 200e-12);  // smooths the carrier

  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);

  mpde::EnvelopeOptions eo;
  eo.slowSpan = 2.0 / fm;  // two modulation periods
  eo.slowSteps = 40;
  eo.fastSteps = 120;
  const auto env = mpde::runEnvelope(sys, fc, dc.x, eo);
  if (!env.converged) {
    std::printf("envelope run failed\n");
    return 1;
  }

  const auto amIdx = static_cast<std::size_t>(c.findNode("am"));
  const auto detIdx = static_cast<std::size_t>(c.findNode("det"));
  const auto carrierEnv = env.harmonicEnvelope(amIdx, 1);
  const auto detected = env.harmonicEnvelope(detIdx, 0);  // DC of fast var

  std::printf("slow steps: %zu, fast steps per solve: %u\n",
              env.slowTimes.size() - 1, 120u);
  std::printf("%-12s %-16s %-16s %-16s\n", "t1 (us)", "carrier env (V)",
              "unloaded (V)", "detector (V)");
  for (std::size_t i = 0; i < env.slowTimes.size(); i += 2) {
    const Real t1 = env.slowTimes[i];
    // Unloaded mixer output amplitude: k·Ac·Rmix·(1 + m·sin(2π·fm·t1));
    // the diode detector loads it somewhat.
    const Real ideal =
        2e-3 * 1000.0 * (1.0 + 0.5 * std::sin(kTwoPi * fm * t1));
    std::printf("%-12.2f %-16.4f %-16.4f %-16.4f\n", t1 * 1e6,
                2.0 * std::abs(carrierEnv[i]), ideal,
                detected[i].real());
  }
  std::printf("\nthe detector output tracks the modulation at 1/%0.0f of the\n"
              "cost of resolving every carrier cycle.\n",
              fc / fm / 40.0 * 120.0);
  return 0;
}
