// Example: two-tone harmonic balance of a diode ring downconverter —
// the Section 2.1 workflow on a classic RF scenario. RF at 910 MHz mixes
// with a 900 MHz LO; the IF product appears at 10 MHz, and the HB spectrum
// shows every retained mix product with full numerical dynamic range.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"

using namespace rfic;
using namespace rfic::circuit;

int main() {
  const Real fLO = 900e6, fRF = 910e6;

  Circuit c;
  const int rf = c.node("rf"), lo = c.node("lo"), mid = c.node("mid");
  const int ifn = c.node("if");
  const int b1 = c.allocBranch("Vrf"), b2 = c.allocBranch("Vlo");
  // Small RF signal (slow axis carries tone 1 = the 10 MHz-offset RF).
  c.add<VSource>("Vrf", rf, -1, b1, std::make_shared<SineWave>(0.05, fRF),
                 TimeAxis::slow);
  // Large LO pump.
  c.add<VSource>("Vlo", lo, -1, b2, std::make_shared<SineWave>(0.8, fLO),
                 TimeAxis::fast);
  c.add<Resistor>("Rrf", rf, mid, 50.0);
  c.add<Resistor>("Rlo", lo, mid, 50.0);
  // Single-diode mixer core (an anti-parallel pair would be odd-symmetric
  // and suppress the fundamental f_RF − f_LO product — that topology is a
  // *sub*harmonic mixer).
  Diode::Params dp;
  dp.is = 1e-12;
  c.add<Diode>("D1", mid, ifn, dp);
  c.add<Resistor>("Rif", ifn, -1, 200.0);
  c.add<Capacitor>("Cif", ifn, -1, 20e-12);

  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);

  hb::HBOptions opts;
  opts.continuationSteps = 3;  // ramp the pump for robust convergence
  hb::HarmonicBalance eng(sys, {{fRF, 3}, {fLO, 5}}, opts);
  const auto sol = eng.solve(dc.x);
  std::printf("HB converged=%d, %zu unknowns, %zu Newton its, %zu GMRES its\n",
              sol.converged ? 1 : 0, sol.realUnknowns, sol.newtonIterations,
              sol.gmresIterations);
  if (!sol.converged) return 1;

  std::printf("\nIF-port spectrum (every line above -120 dBc):\n");
  std::printf("%-14s %-8s %-8s %-12s %-8s\n", "freq (MHz)", "k_rf", "k_lo",
              "amp (V)", "dBc");
  const auto lines = hb::spectrumOf(sol, static_cast<std::size_t>(ifn));
  for (const auto& l : lines) {
    if (l.dbc < -120.0 || l.amplitude <= 0) continue;
    std::printf("%-14.1f %-8d %-8d %-12.3e %-8.1f\n", l.freq * 1e-6, l.k1,
                l.k2, l.amplitude, l.dbc);
  }
  const Real ifAmp =
      hb::lineAmplitude(sol, static_cast<std::size_t>(ifn), 1, -1);
  std::printf("\ndownconverted IF (fRF - fLO = %.0f MHz): %.3f mV\n",
              (fRF - fLO) * 1e-6, ifAmp * 1e3);
  std::printf("conversion gain: %.1f dB\n", hb::toDb(ifAmp, 0.05));
  return 0;
}
