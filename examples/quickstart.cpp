// Quickstart: parse a SPICE-style netlist, solve its DC operating point,
// run a transient, and sweep the small-signal AC response.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "analysis/ac.hpp"
#include "analysis/dc.hpp"
#include "analysis/transient.hpp"
#include "circuit/netlist.hpp"

using namespace rfic;

int main() {
  // A diode clamp driven through an RC network, written as a netlist.
  const char* netlist = R"(
* diode clamp demo
.model dfast d (is=1e-14 n=1.05 cjo=1p tt=2n)
V1 in 0 SIN(0 3 100k)
R1 in a 1k
C1 a 0 2n
D1 a out dfast
R2 out 0 10k
C2 out 0 10n
)";
  circuit::Circuit ckt;
  circuit::parseNetlist(netlist, ckt);
  analysis::MnaSystem sys(ckt);
  std::printf("parsed netlist: %zu unknowns, %zu devices\n", sys.dim(),
              ckt.devices().size());

  // 1. DC operating point (sources at t = 0).
  const auto dc = analysis::dcOperatingPoint(sys);
  std::printf("\nDC operating point (%s, %zu iterations):\n",
              dc.strategy.c_str(), dc.iterations);
  for (std::size_t i = 0; i < sys.dim(); ++i)
    std::printf("  %-10s %12.6f\n", ckt.unknownName(i).c_str(), dc.x[i]);

  // 2. Transient: three periods of the 100 kHz drive.
  analysis::TransientOptions to;
  to.tstop = 30e-6;
  to.dt = 20e-9;
  const auto tran = analysis::runTransient(sys, dc.x, to);
  const auto out = static_cast<std::size_t>(ckt.findNode("out"));
  std::printf("\ntransient: %zu steps; v(out) sampled every 2 us:\n",
              tran.steps);
  for (std::size_t k = 0; k < tran.time.size(); k += 100)
    std::printf("  t=%8.2f us   v(out)=%8.4f V\n", tran.time[k] * 1e6,
                tran.x[k][out]);

  // 3. AC sweep of the linearized circuit, driven through V1.
  const auto* vsrc = dynamic_cast<const circuit::VSource*>(
      ckt.devices().front().get());
  const auto stim = analysis::acStimulusVSource(sys, *vsrc);
  const auto freqs = analysis::logspace(1e3, 1e8, 11);
  const auto ac = analysis::acSweep(sys, dc.x, freqs, stim);
  std::printf("\nAC transfer |v(out)/v(in)|:\n");
  for (std::size_t k = 0; k < freqs.size(); ++k)
    std::printf("  f=%10.3e Hz   |H|=%10.3e\n", freqs[k],
                std::abs(ac.x[k][out]));
  return 0;
}
