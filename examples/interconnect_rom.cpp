// Example: the Section 5 reduced-order-modeling workflow — compress a
// 1500-node extracted interconnect into a 10th-order PVL macromodel, check
// it against the full system, and read off its dominant poles.
#include <cmath>
#include <cstdio>

#include "rom/prima.hpp"
#include "rom/pvl.hpp"

using namespace rfic;
using namespace rfic::rom;

int main() {
  // Stand-in for a layout-extracted net: 1500-segment distributed RC line.
  const auto sys = makeRCLine(/*segments=*/1500, /*rTotal=*/800.0,
                              /*cTotal=*/3e-12);
  std::printf("full system: %zu unknowns\n", sys.n);

  const std::size_t q = 10;
  const auto reduced = pvl(sys, /*s0=*/0.0, q);
  std::printf("PVL reduction to order %zu (breakdown=%d)\n",
              reduced.achievedOrder, reduced.breakdown ? 1 : 0);

  std::printf("\n%-12s %-14s %-14s %-10s\n", "f (GHz)", "|H| full",
              "|H| ROM", "rel err");
  for (Real f = 1e7; f <= 3e10; f *= 3.1623) {
    const Complex s(0.0, kTwoPi * f);
    const Complex hf = sys.transferFunction(s);
    const Complex hr = reduced.rom.transfer(s);
    std::printf("%-12.3f %-14.4e %-14.4e %-10.2e\n", f * 1e-9, std::abs(hf),
                std::abs(hr), std::abs(hr - hf) / std::abs(hf));
  }

  std::printf("\ndominant poles of the macromodel (GHz):\n");
  auto poles = reduced.rom.poles();
  std::sort(poles.begin(), poles.end(), [](const Complex& a, const Complex& b) {
    return std::abs(a) < std::abs(b);
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, poles.size()); ++i)
    std::printf("  %.4f %+.4fj\n", poles[i].real() / kTwoPi * 1e-9,
                poles[i].imag() / kTwoPi * 1e-9);

  // PRIMA alternative when guaranteed passivity matters.
  const auto prima = primaReduce(sys, 0.0, q);
  std::printf("\nPRIMA(q=%zu): stable poles = %s\n", q,
              prima.polesStable() ? "yes" : "no");
  return 0;
}
