// DC operating point: Newton, continuation strategies, and bias points of
// the semiconductor devices against hand analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::analysis {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

TEST(DC, VoltageDivider) {
  Circuit c;
  const int in = c.node("in"), mid = c.node("mid");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(10.0));
  c.add<Resistor>("R1", in, mid, 3000.0);
  c.add<Resistor>("R2", mid, -1, 1000.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  EXPECT_EQ(dc.strategy, "newton");
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(mid)], 2.5, 1e-10);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(br)], -10.0 / 4000.0, 1e-12);
}

TEST(DC, CurrentSourceConvention) {
  // SPICE convention: I n+ n− pushes current from n+ to n−, so ISource
  // (gnd → a) raises v(a) = I·R.
  Circuit c;
  const int a = c.node("a");
  c.add<ISource>("I1", -1, a, std::make_shared<DCWave>(2e-3));
  c.add<Resistor>("R1", a, -1, 1000.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(a)], 2.0, 1e-10);
}

TEST(DC, SeriesDiodeOperatingPoint) {
  Circuit c;
  const int in = c.node("in"), a = c.node("a");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(5.0));
  c.add<Resistor>("R1", in, a, 1000.0);
  c.add<Diode>("D1", a, -1, Diode::Params{});
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vd = dc.x[static_cast<std::size_t>(a)];
  // KCL closure: (5 − vd)/R = Id(vd) to high accuracy.
  const Real ir = (5.0 - vd) / 1000.0;
  const Real id = Diode("ref", 0, 1, Diode::Params{}).current(vd);
  EXPECT_NEAR(ir, id, 1e-9);
  EXPECT_GT(vd, 0.6);
  EXPECT_LT(vd, 0.75);
}

TEST(DC, DiodeBridgeRectifier) {
  // Full bridge with DC excitation: output ≈ |Vin| − 2·Vdiode.
  Circuit c;
  const int inp = c.node("inp"), inm = c.node("inm");
  const int op = c.node("op"), om = c.node("om");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", inp, inm, br, std::make_shared<DCWave>(5.0));
  const Diode::Params dp;
  c.add<Diode>("D1", inp, op, dp);
  c.add<Diode>("D2", om, inp, dp);
  c.add<Diode>("D3", inm, op, dp);
  c.add<Diode>("D4", om, inm, dp);
  c.add<Resistor>("RL", op, om, 10000.0);
  c.add<Resistor>("Rgnd", om, -1, 1e6);  // reference
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vout = dc.x[static_cast<std::size_t>(op)] -
                    dc.x[static_cast<std::size_t>(om)];
  EXPECT_NEAR(vout, 5.0 - 2.0 * 0.62, 0.1);
}

TEST(DC, BJTCommonEmitterBias) {
  // Classic emitter-degenerated bias: Vth ≈ 2.1 V, so Ve ≈ 1.3 V,
  // Ie ≈ 1.3 mA, and the collector sits near 12 − 2.2k·1.3mA ≈ 9.1 V.
  Circuit c;
  const int vcc = c.node("vcc"), b = c.node("b"), col = c.node("c"),
            e = c.node("e");
  const int br = c.allocBranch("VCC");
  c.add<VSource>("VCC", vcc, -1, br, std::make_shared<DCWave>(12.0));
  c.add<Resistor>("Rb1", vcc, b, 47000.0);
  c.add<Resistor>("Rb2", b, -1, 10000.0);
  c.add<Resistor>("Rc", vcc, col, 2200.0);
  c.add<Resistor>("Re", e, -1, 1000.0);
  BJT::Params p;
  p.bf = 150.0;
  c.add<BJT>("Q1", col, b, e, p);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vb = dc.x[static_cast<std::size_t>(b)];
  const Real vc = dc.x[static_cast<std::size_t>(col)];
  const Real ve = dc.x[static_cast<std::size_t>(e)];
  EXPECT_NEAR(vb, 2.0, 0.25);
  EXPECT_NEAR(vb - ve, 0.75, 0.12);  // one junction drop
  EXPECT_GT(vc, 5.0);                // forward active
  EXPECT_LT(vc, 11.0);
}

TEST(DC, MOSFETDiodeConnected) {
  // Diode-connected NMOS fed by a current source: vgs from the square law.
  Circuit c;
  const int d = c.node("d");
  c.add<ISource>("Ib", -1, d, std::make_shared<DCWave>(1e-3));
  MOSFET::Params p;
  p.vt0 = 0.7;
  p.kp = 2e-3;
  p.lambda = 0.0;
  c.add<MOSFET>("M1", d, d, -1, p);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  // id = kp/2 (vgs−vt)² → vgs = vt + sqrt(2·id/kp) = 0.7 + 1.0
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(d)], 1.7, 1e-3);
}

TEST(DC, GminSteppingRescuesHardStart) {
  // Two stacked diodes with a large supply and tiny series resistance make
  // plain Newton from zero hopeless without limiting/continuation.
  Circuit c;
  const int in = c.node("in"), a = c.node("a"), b = c.node("b");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(100.0));
  c.add<Resistor>("R1", in, a, 10.0);
  Diode::Params dp;
  dp.is = 1e-16;
  c.add<Diode>("D1", a, b, dp);
  c.add<Diode>("D2", b, -1, dp);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vd = dc.x[static_cast<std::size_t>(a)];
  // Nearly 10 A through the stack: each junction sits near
  // n·Vt·ln(I/Is) ≈ 0.0259·ln(9.8/1e-16) ≈ 1.01 V.
  EXPECT_NEAR(vd, 2.02, 0.15);
}

TEST(DC, CubicBistableSolvesToAStableState) {
  // i(v) = g1·v − g3·v³ load line: the origin plus symmetric states; any
  // KCL-consistent solution is acceptable.
  Circuit c;
  const int a = c.node("a");
  c.add<CubicConductance>("GN", a, -1, 1e-3, 1e-3);
  c.add<ISource>("I1", -1, a, std::make_shared<DCWave>(1e-3));
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real v = dc.x[0];
  EXPECT_NEAR(1e-3 * v + 1e-3 * v * v * v, 1e-3, 1e-9);
}

TEST(DC, FloatingDrivenIslandFailsCleanly) {
  // A driven island with no ground reference: KCL is solvable only up to a
  // common-mode offset, so the MNA matrix is singular and every
  // continuation strategy must fail loudly.
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  c.add<Resistor>("R1", a, b, 1000.0);
  c.add<ISource>("I1", a, b, std::make_shared<DCWave>(1e-3));
  MnaSystem sys(c);
  EXPECT_THROW(dcOperatingPoint(sys), NumericalError);
}

}  // namespace
}  // namespace rfic::analysis
