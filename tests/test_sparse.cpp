// Sparse storage, Markowitz LU, and Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numeric/lu.hpp"
#include "sparse/krylov.hpp"
#include "sparse/sparse_lu.hpp"
#include "sparse/sparse_matrix.hpp"
#include "sparse/symbolic_lu.hpp"

namespace rfic::sparse {
namespace {

using numeric::RMat;
using numeric::RVec;

RTriplets randomSparse(std::size_t n, Real density, std::uint64_t seed,
                       Real diagBoost) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::uniform_real_distribution<Real> coin(0, 1);
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      if (coin(rng) < density) t.add(i, j, u(rng));
    t.add(i, i, diagBoost + u(rng));
  }
  return t;
}

RVec randomVec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1, 1);
  RVec v(n);
  for (auto& x : v) x = u(rng);
  return v;
}

TEST(Triplets, DuplicatesSumInCSRAndDense) {
  RTriplets t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 0, -1.0);
  const RCSR a(t);
  EXPECT_EQ(a.nnz(), 2u);
  const RMat d = a.toDense();
  EXPECT_DOUBLE_EQ(d(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(t.toDense()(0, 0), 3.5);
}

TEST(Triplets, OutOfRangeThrows) {
  RTriplets t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), InvalidArgument);
}

TEST(CSR, MatVecMatchesDense) {
  const auto t = randomSparse(20, 0.2, 42, 2.0);
  const RCSR a(t);
  const RMat d = t.toDense();
  const RVec x = randomVec(20, 43);
  const RVec y1 = a * x;
  const RVec y2 = d * x;
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(CSR, TransposeMultiplyMatchesDense) {
  const auto t = randomSparse(15, 0.3, 44, 2.0);
  const RCSR a(t);
  const RVec x = randomVec(15, 45);
  const RVec y1 = a.transposeMultiply(x);
  const RVec y2 = numeric::transposeMatvec(t.toDense(), x);
  for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

class SparseLUCases
    : public ::testing::TestWithParam<std::tuple<std::size_t, Real>> {};

TEST_P(SparseLUCases, SolvesRandomSystems) {
  const auto [n, density] = GetParam();
  const auto t = randomSparse(n, density, 50 + n, 4.0);
  const RVec xref = randomVec(n, 60 + n);
  const RVec b = RCSR(t) * xref;
  RSparseLU lu(t);
  const RVec x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SparseLUCases,
    ::testing::Values(std::tuple<std::size_t, Real>{5, 0.5},
                      std::tuple<std::size_t, Real>{30, 0.15},
                      std::tuple<std::size_t, Real>{100, 0.05},
                      std::tuple<std::size_t, Real>{300, 0.02}));

TEST(SparseLU, MatchesDenseOnSmallSystem) {
  const auto t = randomSparse(12, 0.4, 70, 3.0);
  const RVec b = randomVec(12, 71);
  const RVec xs = RSparseLU(t).solve(b);
  const RVec xd = numeric::solveDense(t.toDense(), b);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLU, ComplexSystem) {
  const std::size_t n = 25;
  CTriplets t(n, n);
  std::mt19937_64 rng(80);
  std::uniform_real_distribution<Real> u(-1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, Complex(3.0 + u(rng), u(rng)));
    t.add(i, (i + 3) % n, Complex(u(rng), u(rng)));
  }
  numeric::CVec xref(n);
  for (auto& v : xref) v = Complex(u(rng), u(rng));
  const numeric::CVec b = CCSR(t) * xref;
  const numeric::CVec x = CSparseLU(t).solve(b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[i] - xref[i]), 0.0, 1e-10);
}

TEST(SparseLU, SingularMatrixThrows) {
  RTriplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);  // row/col 2 empty
  EXPECT_THROW(RSparseLU{t}, NumericalError);
}

TEST(SparseLU, TridiagonalHasNoFill) {
  const std::size_t n = 50;
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  RSparseLU lu(t);
  // Perfect elimination order: factor nnz stays O(n).
  EXPECT_LE(lu.factorNnz(), 3 * n);
}

TEST(SparseLU, ArrowMatrixMarkowitzAvoidsFill) {
  // Arrow matrix: dense first row/col. Natural-order elimination fills the
  // whole matrix; Markowitz should defer the hub and keep the factor O(n).
  const std::size_t n = 60;
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) t.add(i, i, 4.0);
  for (std::size_t i = 1; i < n; ++i) {
    t.add(0, i, 1.0);
    t.add(i, 0, 1.0);
  }
  RSparseLU lu(t);
  EXPECT_LE(lu.factorNnz(), 4 * n);
  const RVec xref = randomVec(n, 90);
  const RVec b = RCSR(t) * xref;
  const RVec x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(SparseLU, ZeroDiagonalRequiresOffDiagonalPivot) {
  // [0 1; 1 0] — diagonal pivots impossible.
  RTriplets t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  RSparseLU lu(t);
  RVec b{3.0, 5.0};
  const RVec x = lu.solve(b);
  EXPECT_NEAR(x[0], 5.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

// ------------------------------------------------------- Krylov solvers

TEST(GMRES, SolvesNonsymmetricSystem) {
  const std::size_t n = 80;
  const auto t = randomSparse(n, 0.08, 100, 5.0);
  const RCSR a(t);
  const RVec xref = randomVec(n, 101);
  const RVec b = a * xref;
  CSROperator<Real> op(a);
  RVec x(n);
  const auto st = gmres(op, b, x, {1e-12, 500, 60});
  EXPECT_TRUE(st.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(GMRES, PreconditionerCutsIterations) {
  const std::size_t n = 120;
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    // Widely varying diagonal — hard without, trivial with Jacobi.
    t.add(i, i, std::pow(10.0, static_cast<Real>(i % 7)));
    if (i + 1 < n) t.add(i, i + 1, 0.3);
  }
  const RCSR a(t);
  const RVec b = randomVec(n, 102);
  CSROperator<Real> op(a);
  RVec x1(n), x2(n);
  const auto plain = gmres(op, b, x1, {1e-10, 400, 50});
  JacobiPreconditioner<Real> prec(a);
  const auto precd = gmres(op, b, x2, &prec, {1e-10, 400, 50});
  EXPECT_TRUE(precd.converged);
  EXPECT_LT(precd.iterations, plain.iterations);
}

TEST(GMRES, ComplexSystem) {
  const std::size_t n = 40;
  CTriplets t(n, n);
  std::mt19937_64 rng(103);
  std::uniform_real_distribution<Real> u(-1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, Complex(4.0, 1.0 + u(rng)));
    t.add(i, (i + 1) % n, Complex(u(rng), u(rng)));
  }
  const CCSR a(t);
  numeric::CVec xref(n);
  for (auto& v : xref) v = Complex(u(rng), u(rng));
  const numeric::CVec b = a * xref;
  CSROperator<Complex> op(a);
  numeric::CVec x(n);
  const auto st = gmres(op, b, x, {1e-12, 400, 50});
  EXPECT_TRUE(st.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[i] - xref[i]), 0.0, 1e-8);
}

TEST(GMRES, ZeroRhsReturnsZero) {
  const auto t = randomSparse(10, 0.3, 104, 3.0);
  const RCSR a(t);
  CSROperator<Real> op(a);
  RVec x = randomVec(10, 105);
  const auto st = gmres(op, RVec(10), x, IterativeOptions{});
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR(numeric::norm2(x), 0.0, 1e-300);
}

TEST(BiCGSTAB, SolvesNonsymmetricSystem) {
  const std::size_t n = 60;
  const auto t = randomSparse(n, 0.1, 110, 5.0);
  const RCSR a(t);
  const RVec xref = randomVec(n, 111);
  const RVec b = a * xref;
  CSROperator<Real> op(a);
  RVec x(n);
  const auto st = bicgstab(op, b, x, {1e-12, 600, 60});
  EXPECT_TRUE(st.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(CG, SolvesSPDLaplacian) {
  const std::size_t n = 100;
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  const RCSR a(t);
  const RVec xref = randomVec(n, 120);
  const RVec b = a * xref;
  CSROperator<Real> op(a);
  RVec x(n);
  const auto st = conjugateGradient(op, b, x, {1e-12, 2000, 0});
  EXPECT_TRUE(st.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(SymbolicLU, RefactorMatchesFreshFactorization) {
  // The replay is the same arithmetic a fresh factorization with the same
  // pivot order performs, so solutions agree to roundoff on random patterns.
  for (const std::uint64_t seed : {200u, 201u, 202u}) {
    const std::size_t n = 40;
    const auto t = randomSparse(n, 0.12, seed, 4.0);
    RCSR a(t);
    RSymbolicLU lu(a);
    ASSERT_TRUE(lu.analyzed());

    // New values on the identical pattern: bounded perturbation that keeps
    // the diagonal dominant, so the recorded pivots stay acceptable.
    std::mt19937_64 rng(seed + 7);
    std::uniform_real_distribution<Real> u(0.7, 1.3);
    RCSR aNew = a;
    for (auto& v : aNew.values()) v *= u(rng);

    const auto st = lu.refactor(aNew.values());
    EXPECT_EQ(st, diag::SolverStatus::Converged);

    RSymbolicLU fresh(aNew);
    const RVec b = randomVec(n, seed + 13);
    const RVec xr = lu.solve(b);
    const RVec xf = fresh.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xr[i], xf[i], 1e-12);
    // Both are true solutions of aNew x = b.
    RVec r(n);
    aNew.multiply(xr, r);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
  }
}

TEST(SymbolicLU, PivotGrowthTriggersRepivotFallback) {
  // Factor with a healthy diagonal, then hand refactor values whose
  // recorded pivot has collapsed: the replay must abort, refactor from
  // scratch with new pivots, report Repivoted — and still solve correctly.
  RTriplets t(3, 3);
  t.add(0, 0, 4.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 4.0);
  t.add(1, 2, 1.0);
  t.add(2, 1, 1.0);
  t.add(2, 2, 4.0);
  RCSR a(t);
  RSymbolicLU lu(a);

  RCSR bad = a;
  bad.values()[0] = 1e-30;  // a(0,0): below pivotFloor · max|A|
  const auto st = lu.refactor(bad.values());
  EXPECT_EQ(st, diag::SolverStatus::Repivoted);
  EXPECT_TRUE(lu.analyzed());

  const RVec b{1.0, 2.0, 3.0};
  const RVec x = lu.solve(b);
  RVec r(3);
  bad.multiply(x, r);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);

  // Healthy values afterwards replay cheaply again on the new pivot order.
  const auto st2 = lu.refactor(bad.values());
  EXPECT_EQ(st2, diag::SolverStatus::Converged);
}

TEST(SymbolicLU, SingularRefactorThrowsAndClearsAnalysis) {
  // If the repivot fallback itself hits a singular matrix, the factorization
  // must throw and report !analyzed() so callers route the next attempt to a
  // full factor() instead of replaying a half-built program.
  RTriplets t(2, 2);
  t.add(0, 0, 2.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 2.0);
  RCSR a(t);
  RSymbolicLU lu(a);
  ASSERT_TRUE(lu.analyzed());

  const std::vector<Real> singular{1.0, 1.0, 1.0, 1.0};  // rank 1
  EXPECT_THROW(lu.refactor(singular), NumericalError);
  EXPECT_FALSE(lu.analyzed());

  // Recovery: a full factor() restores a usable program.
  lu.factor(a);
  EXPECT_TRUE(lu.analyzed());
  const auto st = lu.refactor(a.values());
  EXPECT_EQ(st, diag::SolverStatus::Converged);
}

TEST(SymbolicLU, RefactorBeforeFactorThrows) {
  RSymbolicLU lu;
  EXPECT_THROW(lu.refactor(std::vector<Real>{1.0}), InvalidArgument);
}

TEST(Krylov, MatrixFreeOperatorWorks) {
  // Operator defined purely as a function: scaled shift  y = 2x + S x.
  const std::size_t n = 30;
  FunctionOperator<Real> op(n, [n](const RVec& x, RVec& y) {
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = 2.0 * x[i] + (i + 1 < n ? 0.5 * x[i + 1] : 0.0);
  });
  const RVec b = randomVec(n, 130);
  RVec x(n);
  const auto st = gmres(op, b, x, {1e-12, 200, 40});
  EXPECT_TRUE(st.converged);
  RVec y(n);
  op.apply(x, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], b[i], 1e-9);
}

}  // namespace
}  // namespace rfic::sparse
