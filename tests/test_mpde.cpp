// Multi-time (MPDE) methods: the bivariate representation itself
// (Figs. 2/3), the spectral machinery, and all four solvers — MFDTD, MMFT,
// hierarchical shooting, TD-ENV — cross-validated against two-tone HB.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"
#include "mpde/bivariate.hpp"
#include "mpde/envelope.hpp"
#include "mpde/fast_system.hpp"
#include "mpde/hier_shooting.hpp"
#include "mpde/mfdtd.hpp"
#include "mpde/mmft.hpp"

namespace rfic::mpde {
namespace {

using namespace rfic::circuit;
using analysis::dcOperatingPoint;
using numeric::RVec;

// Mildly nonlinear two-tone testbench shared by the cross-validation tests.
void buildTwoTone(Circuit& c) {
  const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
  const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
  c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.1, 1.0e6),
                 TimeAxis::slow);
  c.add<VSource>("V2", s2, a, br2, std::make_shared<SineWave>(0.1, 1.37e6),
                 TimeAxis::fast);
  c.add<Resistor>("Rs", s2, b, 1000.0);
  c.add<CubicConductance>("GN", b, -1, 1e-3, 1e-2);
  c.add<Capacitor>("Cb", b, -1, 1e-11);
}

struct Reference {
  Complex x10, x01, im3;
};

Reference hbReference() {
  Circuit c;
  buildTwoTone(c);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  hb::HarmonicBalance eng(sys, {{1.0e6, 3}, {1.37e6, 3}});
  const auto sol = eng.solve(dc.x);
  EXPECT_TRUE(sol.converged);
  const auto b = static_cast<std::size_t>(c.findNode("b"));
  return {sol.at(b, 1, 0), sol.at(b, 0, 1), sol.at(b, -1, 2)};
}

TEST(Bivariate, GridAccessorsAndStates) {
  BivariateGrid g(2, 4, 8, 1e-3, 1e-6);
  g.at(0, 1, 2) = 5.0;
  g.at(1, 3, 7) = -2.0;
  EXPECT_DOUBLE_EQ(g.state(1, 2)[0], 5.0);
  EXPECT_DOUBLE_EQ(g.state(3, 7)[1], -2.0);
  EXPECT_DOUBLE_EQ(g.t1(1), 0.25e-3);
  EXPECT_DOUBLE_EQ(g.t2(4), 0.5e-6);
}

TEST(Bivariate, MixCoefficientOfSyntheticGrid) {
  // x̂(t1,t2) = 3 + 2·cos(2πt1/T1) + 0.5·sin(2π(t1/T1 + 2·t2/T2))
  const std::size_t m1 = 16, m2 = 16;
  BivariateGrid g(1, m1, m2, 1.0, 1.0);
  for (std::size_t i = 0; i < m1; ++i) {
    for (std::size_t j = 0; j < m2; ++j) {
      const Real p1 = kTwoPi * g.t1(i), p2 = kTwoPi * g.t2(j);
      g.at(0, i, j) = 3.0 + 2.0 * std::cos(p1) + 0.5 * std::sin(p1 + 2 * p2);
    }
  }
  EXPECT_NEAR(std::abs(g.mixCoefficient(0, 0, 0)), 3.0, 1e-12);
  EXPECT_NEAR(2.0 * std::abs(g.mixCoefficient(0, 1, 0)), 2.0, 1e-12);
  EXPECT_NEAR(2.0 * std::abs(g.mixCoefficient(0, 1, 2)), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(g.mixCoefficient(0, 2, 1)), 0.0, 1e-12);
}

TEST(Bivariate, SlowHarmonicVsFastMatchesMixCoefficients) {
  const std::size_t m1 = 8, m2 = 12;
  BivariateGrid g(1, m1, m2, 1.0, 1.0);
  for (std::size_t i = 0; i < m1; ++i)
    for (std::size_t j = 0; j < m2; ++j)
      g.at(0, i, j) = std::cos(kTwoPi * g.t1(i)) *
                      (1.0 + 0.3 * std::cos(kTwoPi * g.t2(j)));
  const auto h1 = g.slowHarmonicVsFast(0, 1);
  ASSERT_EQ(h1.size(), m2);
  // X_1(t2) = 0.5·(1 + 0.3·cos(2πt2)) — real and positive.
  for (std::size_t j = 0; j < m2; ++j) {
    EXPECT_NEAR(h1[j].real(), 0.5 * (1.0 + 0.3 * std::cos(kTwoPi * g.t2(j))),
                1e-12);
    EXPECT_NEAR(h1[j].imag(), 0.0, 1e-12);
  }
}

TEST(Bivariate, UnivariateEvaluationReconstructsDiagonal) {
  const Real sep = 64.0;  // T1/T2
  const Real err = bivariateReconstructionError(sep, 64, 256);
  EXPECT_LT(err, 0.01);
}

TEST(Fig23, UnivariateCostGrowsWithSeparationBivariateDoesNot) {
  const Real tol = 0.02;
  const std::size_t u100 = univariateSamplesNeeded(100.0, tol);
  const std::size_t u1000 = univariateSamplesNeeded(1000.0, tol);
  const std::size_t b = bivariateSamplesNeeded(tol);
  // Univariate cost scales ~linearly with the separation…
  EXPECT_GT(u1000, 8 * u100);
  // …while the bivariate cost is independent of it and already smaller at
  // separation 100.
  EXPECT_LT(b, u100);
  EXPECT_LT(b, u1000);
}

TEST(SpectralDifferentiation, ExactOnTrigPolynomials) {
  const std::size_t m = 9;
  const Real period = 2e-3;
  const auto d = spectralDifferentiation(m, period);
  const Real w = kTwoPi / period;
  for (int k = 1; k <= 4; ++k) {  // up to (m−1)/2 harmonics
    numeric::RVec u(m), duRef(m);
    for (std::size_t i = 0; i < m; ++i) {
      const Real t = period * static_cast<Real>(i) / static_cast<Real>(m);
      u[i] = std::sin(w * k * t + 0.2);
      duRef[i] = w * k * std::cos(w * k * t + 0.2);
    }
    const numeric::RVec du = d * u;
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(du[i], duRef[i], 1e-6 * w * k) << "harmonic " << k;
  }
}

TEST(SpectralDifferentiation, RequiresOddSize) {
  EXPECT_THROW(spectralDifferentiation(8, 1.0), InvalidArgument);
}

TEST(FastPeriodic, LinearRCForcedResponse) {
  // Plain periodic solve at frozen slow time reproduces the AC answer.
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e6),
                 TimeAxis::fast);
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-9);
  MnaSystem sys(c);
  const auto res = solveEnvelopeStep(sys, 0.0, 1e6, 400, 0.0, nullptr,
                                     RVec(sys.dim(), 0.0), {});
  ASSERT_TRUE(res.converged);
  Real amp = 0;
  for (const auto& y : res.waveform)
    amp = std::max(amp, std::abs(y[static_cast<std::size_t>(out)]));
  const Real wrc = kTwoPi * 1e6 * 1e-6;
  EXPECT_NEAR(amp, 1.0 / std::sqrt(1.0 + wrc * wrc), 3e-3);
}

TEST(MMFT, MatchesTwoToneHB) {
  const Reference ref = hbReference();
  Circuit c;
  buildTwoTone(c);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  MMFTOptions mo;
  mo.slowHarmonics = 3;
  mo.fastSteps = 300;
  const auto r = runMMFT(sys, 1.0e6, 1.37e6, dc.x, mo);
  ASSERT_TRUE(r.converged);
  const auto b = static_cast<std::size_t>(c.findNode("b"));
  EXPECT_NEAR(std::abs(r.grid.mixCoefficient(b, 1, 0)), std::abs(ref.x10),
              0.01 * std::abs(ref.x10));
  EXPECT_NEAR(std::abs(r.grid.mixCoefficient(b, -1, 2)), std::abs(ref.im3),
              0.05 * std::abs(ref.im3));
}

TEST(HierarchicalShooting, MatchesTwoToneHB) {
  const Reference ref = hbReference();
  Circuit c;
  buildTwoTone(c);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HSOptions ho;
  ho.slowSteps = 48;
  ho.fastSteps = 150;
  const auto r = runHierarchicalShooting(sys, 1.0e6, 1.37e6, dc.x, ho);
  ASSERT_TRUE(r.converged);
  const auto b = static_cast<std::size_t>(c.findNode("b"));
  // BE in the slow axis is first order — allow a few percent.
  EXPECT_NEAR(std::abs(r.grid.mixCoefficient(b, 1, 0)), std::abs(ref.x10),
              0.05 * std::abs(ref.x10));
}

TEST(MFDTD, MatchesTwoToneHB) {
  const Reference ref = hbReference();
  Circuit c;
  buildTwoTone(c);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  MFDTDOptions fo;
  fo.m1 = 32;
  fo.m2 = 32;
  const auto r = runMFDTD(sys, 1.0e6, 1.37e6, dc.x, fo);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.jacobianNnz, 0u);
  const auto b = static_cast<std::size_t>(c.findNode("b"));
  EXPECT_NEAR(std::abs(r.grid.mixCoefficient(b, 1, 0)), std::abs(ref.x10),
              0.05 * std::abs(ref.x10));
}

TEST(MFDTD, IterativeSolverAgreesWithDirect) {
  Circuit c;
  buildTwoTone(c);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  MFDTDOptions direct;
  direct.m1 = 16;
  direct.m2 = 16;
  MFDTDOptions iter = direct;
  iter.useIterativeSolver = true;
  const auto rd = runMFDTD(sys, 1.0e6, 1.37e6, dc.x, direct);
  const auto ri = runMFDTD(sys, 1.0e6, 1.37e6, dc.x, iter);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(ri.converged);
  const auto b = static_cast<std::size_t>(c.findNode("b"));
  EXPECT_NEAR(std::abs(rd.grid.mixCoefficient(b, 1, 0)),
              std::abs(ri.grid.mixCoefficient(b, 1, 0)), 1e-8);
}

TEST(Envelope, ConstantSlowDriveSettlesToPSS) {
  // With a DC "slow" drive the envelope must be flat: every slow step
  // reproduces the same fast steady state.
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e6),
                 TimeAxis::fast);
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-9);
  MnaSystem sys(c);
  EnvelopeOptions eo;
  eo.slowSpan = 1e-4;
  eo.slowSteps = 8;
  eo.fastSteps = 200;
  const auto r = runEnvelope(sys, 1e6, RVec(sys.dim(), 0.0), eo);
  ASSERT_TRUE(r.converged);
  const auto env = r.harmonicEnvelope(static_cast<std::size_t>(out), 1);
  ASSERT_EQ(env.size(), 9u);
  for (std::size_t i = 1; i < env.size(); ++i)
    EXPECT_NEAR(std::abs(env[i] - env[0]), 0.0, 1e-9);
}

TEST(Envelope, TracksAmplitudeModulation) {
  // Fast carrier through a resistive divider, slow PWL ramp of the carrier
  // amplitude imposed via a slow-axis multiplying source is not available
  // directly; instead drive amplitude steps through a slow sine and verify
  // the envelope follows it qualitatively.
  Circuit c;
  const int in = c.node("in"), mix = c.node("mix"), out = c.node("out");
  const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
  c.add<VSource>("V1", in, -1, br1, std::make_shared<SineWave>(0.5, 1e6),
                 TimeAxis::fast);
  c.add<VSource>("V2", mix, in, br2,
                 std::make_shared<SineWave>(0.25, 1e3), TimeAxis::slow);
  c.add<Resistor>("R1", mix, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-10);
  MnaSystem sys(c);
  EnvelopeOptions eo;
  eo.slowSpan = 1e-3;  // one slow period
  eo.slowSteps = 20;
  eo.fastSteps = 150;
  const auto r = runEnvelope(sys, 1e6, RVec(sys.dim(), 0.0), eo);
  ASSERT_TRUE(r.converged);
  // The slow tone appears in the DC (k = 0) envelope of the output.
  const auto env0 = r.harmonicEnvelope(static_cast<std::size_t>(out), 0);
  Real lo = 1e30, hi = -1e30;
  for (const auto& v : env0) {
    lo = std::min(lo, v.real());
    hi = std::max(hi, v.real());
  }
  EXPECT_GT(hi - lo, 0.3);  // tracks the ±0.25 V slow swing
}

}  // namespace
}  // namespace rfic::mpde
