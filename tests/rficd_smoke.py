#!/usr/bin/env python3
"""End-to-end smoke test for the rficd daemon.

Starts rficd on a temporary unix socket, then over real connections:
submits the example netlists (one with --wait streaming, checking the
streamed bytes against a direct rficsim-equivalent run), exercises
status / cancel / result / stats, checks that a repeat-topology job
reports a context-cache hit, and finally shuts the daemon down cleanly.

Usage: rficd_smoke.py <rficd> <examples_dir>
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time


class Client:
    def __init__(self, path, retries=100):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        for i in range(retries):
            try:
                self.sock.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                if i == retries - 1:
                    raise
                time.sleep(0.05)
        self.buf = b""

    def send(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")

    def recv(self, timeout=120):
        self.sock.settimeout(timeout)
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def submit(self, netlist, **extra):
        self.send({"cmd": "submit", "netlist": netlist, **extra})
        msg = self.recv()
        assert msg.get("event") == "accepted", f"submit not accepted: {msg}"
        return msg["job"]

    def wait_finished(self, job):
        out, err, events = "", "", []
        while True:
            msg = self.recv()
            if msg.get("job") != job:
                continue
            events.append(msg["event"])
            if msg["event"] == "stdout":
                out += msg.get("text", "")
            elif msg["event"] == "stderr":
                err += msg.get("text", "")
            elif msg["event"] == "finished":
                return msg, out, err, events


def main():
    rficd, examples = sys.argv[1], sys.argv[2]
    tmpdir = tempfile.mkdtemp(prefix="rficd_smoke_")
    sock_path = os.path.join(tmpdir, "rfic.sock")

    daemon = subprocess.Popen(
        [rficd, "--socket", sock_path, "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        cli = Client(sock_path)

        with open(os.path.join(examples, "divider.cir")) as f:
            divider = f.read()
        with open(os.path.join(examples, "lpf.cir")) as f:
            lpf = f.read()

        # 1. Submit + full event stream with well-formed ordering.
        job = cli.submit(divider, label="divider")
        fin, out, err, events = cli.wait_finished(job)
        assert fin["exit"] == 0, fin
        assert not fin["cancelled"]
        assert events[0] == "started" and events[-1] == "finished", events
        assert "analysis" in events, events
        assert "* .op" in out, out[:200]
        assert err == "", err
        print(f"ok   submit/stream: job {job} exit 0, "
              f"{len(out)} stdout bytes")

        # 2. Repeat topology on a fresh connection: the shared engine's
        # context pool must serve a cache hit across connections.
        cli2 = Client(sock_path)
        job2 = cli2.submit(divider, label="divider-again")
        fin2, out2, _, _ = cli2.wait_finished(job2)
        assert fin2["exit"] == 0, fin2
        assert fin2.get("ctxHits", 0) >= 1, fin2
        assert out2 == out, "warm-context output differs from cold"
        print(f"ok   cross-connection cache hit: ctxHits="
              f"{fin2['ctxHits']}, bytes identical")

        # 3. Cancel a long-running job; daemon must stay healthy.
        heavy = ("V1 in 0 SIN(0 1 1k)\nR1 in out 1k\nC1 out 0 1u\n"
                 ".print out\n.tran 5e-8 1e-1\n")
        job3 = cli.submit(heavy, label="heavy")
        cli.send({"cmd": "cancel", "job": job3})
        # The cancel ack (connection thread) and the finished event
        # (worker thread) may land on the wire in either order; wait for
        # both so no stray ack leaks into the next command's replies.
        acked, fin3 = False, None
        while fin3 is None or not acked:
            msg = cli.recv()
            if msg.get("event") == "cancel":
                assert msg["ok"] is True, msg
                acked = True
            elif msg.get("job") == job3 and msg["event"] == "finished":
                fin3 = msg
        assert fin3["exit"] == 5 and fin3["cancelled"], fin3
        print("ok   cancel: exit 5, cancelled=true")

        # 4. status lists all jobs; result replays a finished one.
        cli.send({"cmd": "status"})
        seen = 0
        while True:
            msg = cli.recv()
            if msg.get("event") == "status-end":
                assert msg["jobs"] >= 2, msg  # this connection's jobs
                break
            assert msg.get("event") == "job", msg
            seen += 1
        assert seen >= 2, seen
        cli.send({"cmd": "result", "job": job})
        while True:
            msg = cli.recv()
            if msg.get("event") == "result":
                assert msg["job"] == job and msg["exit"] == 0, msg
                break
        print(f"ok   status ({seen} jobs) + result replay")

        # 5. Rejected submissions (empty netlist) get a reason, not a drop.
        cli.send({"cmd": "submit", "netlist": ""})
        msg = cli.recv()
        assert msg.get("event") == "rejected", msg
        cli.send({"cmd": "bogus"})
        msg = cli.recv()
        assert msg.get("event") == "error", msg
        print("ok   rejected/error paths answer instead of dropping")

        # 6. stats works; then submit a multi-analysis netlist to prove the
        # daemon survives everything above and still simulates correctly.
        cli.send({"cmd": "stats"})
        while True:
            msg = cli.recv()
            if msg.get("event") == "stats":
                assert msg.get("text"), msg
                break
        job4 = cli.submit(lpf, label="lpf")
        fin4, out4, _, _ = cli.wait_finished(job4)
        assert fin4["exit"] == 0 and ".tran" in out4, fin4
        print("ok   stats + post-abuse lpf run exit 0")

        # 7. Clean shutdown: bye, process exit 0, socket unlinked.
        cli.send({"cmd": "shutdown"})
        assert cli.recv().get("event") == "bye"
        rc = daemon.wait(timeout=60)
        assert rc == 0, f"daemon exit {rc}: {daemon.stderr.read()[:400]}"
        assert not os.path.exists(sock_path), "socket not unlinked"
        print("ok   shutdown: exit 0, socket unlinked")
        print("rficd_smoke: all checks passed")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
