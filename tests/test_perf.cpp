// Perf layer: counters/snapshots and the fixed-size thread pool behind the
// parallel fan-out paths (HB preconditioner blocks, jitter MC, MoM fill).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::perf {
namespace {

TEST(PerfCounters, AccumulateAndSnapshot) {
  Counters c;
  c.addEval(10);
  c.addEval(5);
  c.addFactorization(100);
  c.addRefactorization(7);
  c.addSolve(3);
  c.addSolve(4);
  const Snapshot s = c.snapshot();
  EXPECT_EQ(s.evals, 2u);
  EXPECT_EQ(s.evalNs, 15u);
  EXPECT_EQ(s.factorizations, 1u);
  EXPECT_EQ(s.factorNs, 100u);
  EXPECT_EQ(s.refactorizations, 1u);
  EXPECT_EQ(s.solves, 2u);
  EXPECT_EQ(s.solveNs, 7u);

  c.reset();
  const Snapshot z = c.snapshot();
  EXPECT_EQ(z.evals, 0u);
  EXPECT_EQ(z.solveNs, 0u);
}

TEST(PerfCounters, SnapshotPlusEquals) {
  Snapshot a, b;
  a.evals = 3;
  a.factorNs = 10;
  b.evals = 4;
  b.factorNs = 32;
  b.refactorizations = 2;
  a += b;
  EXPECT_EQ(a.evals, 7u);
  EXPECT_EQ(a.factorNs, 42u);
  EXPECT_EQ(a.refactorizations, 2u);
}

TEST(PerfCounters, ConcurrentIncrementsAreExact) {
  Counters c;
  constexpr std::size_t kPer = 2000;
  ThreadPool::global().parallelFor(8, [&](std::size_t) {
    for (std::size_t i = 0; i < kPer; ++i) c.addSolve(1);
  });
  const Snapshot s = c.snapshot();
  EXPECT_EQ(s.solves, 8u * kPer);
  EXPECT_EQ(s.solveNs, 8u * kPer);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroAndSingleIterationWork) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallelFor issued from inside a worker must not deadlock; it runs
  // serially on the issuing lane.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallelFor(4, [&](std::size_t) {
    pool.parallelFor(5, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 20u);
}

TEST(FunctionRef, InvokesTheReferredCallableWithoutCopying) {
  // parallelFor takes FunctionRef so capture-heavy hot-loop lambdas are
  // never boxed into a std::function heap allocation per dispatch. The
  // ref must call the ORIGINAL callable, not a copy: mutations made by the
  // callable must be visible after the call.
  std::size_t calls = 0;
  auto counter = [&calls](std::size_t i) { calls += i; };
  FunctionRef<void(std::size_t)> ref(counter);
  ref(3);
  ref(4);
  EXPECT_EQ(calls, 7u);

  // Large capture state (beyond any small-buffer optimization) stays by
  // reference — the sum reflects the live array, not a snapshot.
  std::vector<double> weights(1024, 0.5);
  double sum = 0;
  auto weigh = [&](std::size_t i) { sum += weights[i]; };
  FunctionRef<void(std::size_t)> wref(weigh);
  weights[7] = 2.0;  // mutate after constructing the ref
  wref(7);
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

TEST(ThreadPool, TripCountAtOrBelowGrainRunsInline) {
  // n <= grain is the dispatch-free fast path: every index runs on the
  // calling thread, in order, with no worker wake-up.
  ThreadPool pool(3);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallelFor(
      16,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // safe: single-threaded by construction
      },
      /*grain=*/16);
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, CoarseGrainStillCoversEveryIndexOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(
      n,
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SetGlobalThreadsRejectsLateOverride) {
  ThreadPool::global();  // force creation
  EXPECT_THROW(ThreadPool::setGlobalThreads(4), InvalidArgument);
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallelFor(64, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 17) throw std::runtime_error("chunk failure");
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failure");
  }
  // The pool stays usable after a throwing batch.
  std::atomic<int> after{0};
  pool.parallelFor(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  auto& pool = ThreadPool::global();
  EXPECT_GE(pool.concurrency(), 1u);
  std::vector<int> out(100, 0);
  pool.parallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i);  // disjoint writes need no atomics
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 4950);
}

TEST(PerfFormat, MentionsEveryStage) {
  Snapshot s;
  s.evals = 12;
  s.factorizations = 1;
  s.refactorizations = 11;
  s.solves = 12;
  s.evalNs = 1'000'000;
  s.fftCount = 7;
  s.planCacheHits = 5;
  s.planCacheMisses = 2;
  const std::string r = format(s);
  EXPECT_NE(r.find("eval"), std::string::npos);
  EXPECT_NE(r.find("factor"), std::string::npos);
  EXPECT_NE(r.find("refactor"), std::string::npos);
  EXPECT_NE(r.find("solve"), std::string::npos);
  EXPECT_NE(r.find("fft"), std::string::npos);
  EXPECT_NE(r.find("plan cache"), std::string::npos);
  EXPECT_NE(r.find("12"), std::string::npos);
}

}  // namespace
}  // namespace rfic::perf
