// Batched SoA device evaluation engine: the bitwise contract against the
// scalar virtual-stamp walk (single evals, multi-sample sweeps across
// thread counts, end-to-end DC/transient/HB), the zero-steady-state-
// allocation contract, overflow self-healing, the MOSFET Newton limiting,
// and the eval counters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/dc.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/junction_kernels.hpp"
#include "circuit/mna_workspace.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::circuit {
namespace {

using numeric::RMat;
using numeric::RVec;

/// Scoped override of the process-wide batched-eval default (what the
/// `--no-batch-eval` CLI flag sets); restores the prior value on exit so
/// tests cannot leak a disabled engine into the rest of the suite.
struct BatchDefaultGuard {
  bool saved;
  explicit BatchDefaultGuard(bool v) : saved(MnaWorkspace::batchedEvalDefault()) {
    MnaWorkspace::setBatchedEvalDefault(v);
  }
  ~BatchDefaultGuard() { MnaWorkspace::setBatchedEvalDefault(saved); }
};

/// One of every compiled device kind plus a generic (VCVS) in the middle of
/// the device list, so the batch walk has to interleave a virtual stamp at
/// its original position.
struct Menagerie {
  Circuit c;
  std::unique_ptr<MnaSystem> sys;

  Menagerie() {
    const int in = c.node("in");
    const int a = c.node("a");
    const int b = c.node("b");
    const int d = c.node("d");
    const int g = c.node("g");
    const int br1 = c.allocBranch("V1");
    const int brL = c.allocBranch("L1");
    const int brE = c.allocBranch("E1");
    c.add<VSource>("V1", in, -1, br1, std::make_shared<SineWave>(1.0, 1e3),
                   TimeAxis::slow);
    c.add<ISource>("I1", in, a, std::make_shared<SineWave>(1e-3, 1.7e3),
                   TimeAxis::fast);
    c.add<Resistor>("R1", in, a, 1e3);
    c.add<Capacitor>("C1", a, -1, 1e-9);
    c.add<Inductor>("L1", a, b, brL, 1e-6);
    c.add<VCVS>("E1", g, -1, a, b, brE, 2.0);  // generic, mid-walk
    c.add<VCCS>("G1", b, -1, in, a, 1e-3);
    c.add<CubicConductance>("N1", b, -1, 1e-4, 1e-5);
    Diode::Params dp;
    dp.cj0 = 1e-12;
    dp.tt = 1e-9;
    c.add<Diode>("D1", b, -1, dp);
    BJT::Params bp;
    bp.cje = 1e-13;
    bp.cjc = 5e-14;
    c.add<BJT>("Q1", d, b, -1, bp);
    MOSFET::Params mp;
    mp.cgs = 1e-12;
    mp.cgd = 5e-13;
    c.add<MOSFET>("M1", d, g, -1, mp);
    c.add<Resistor>("R2", d, -1, 1e4);
    sys = std::make_unique<MnaSystem>(c);
  }

  RVec state(Real phase) const {
    RVec x(sys->dim());
    for (std::size_t u = 0; u < x.size(); ++u)
      x[u] = 0.35 * std::sin(0.9 * static_cast<Real>(u) + phase);
    return x;
  }
};

void expectSameEval(MnaWorkspace& ref, MnaWorkspace& bat, const RVec& x,
                    Real t1, Real t2, bool wantMat, const RVec* xPrev) {
  ref.evalBivariate(x, t1, t2, wantMat, xPrev);
  bat.evalBivariate(x, t1, t2, wantMat, xPrev);
  for (std::size_t u = 0; u < ref.dim(); ++u) {
    EXPECT_EQ(ref.f()[u], bat.f()[u]) << "f[" << u << "]";
    EXPECT_EQ(ref.q()[u], bat.q()[u]) << "q[" << u << "]";
    EXPECT_EQ(ref.b()[u], bat.b()[u]) << "b[" << u << "]";
  }
  if (wantMat) {
    ASSERT_EQ(ref.pattern().nnz(), bat.pattern().nnz());
    for (std::size_t p = 0; p < ref.pattern().nnz(); ++p) {
      EXPECT_EQ(ref.gValues()[p], bat.gValues()[p]) << "G[" << p << "]";
      EXPECT_EQ(ref.cValues()[p], bat.cValues()[p]) << "C[" << p << "]";
    }
  }
}

TEST(DeviceBatch, ToggleBitwiseAcrossDeviceKinds) {
  Menagerie m;
  MnaWorkspace ref(*m.sys);
  ref.setBatchedEval(false);
  MnaWorkspace bat(*m.sys);
  bat.setBatchedEval(true);
  ASSERT_FALSE(ref.batchedEval());
  ASSERT_TRUE(bat.batchedEval());

  for (int k = 0; k < 4; ++k) {
    const Real phase = 0.6 * static_cast<Real>(k);
    const RVec x = m.state(phase);
    const RVec xp = m.state(phase - 0.3);
    const Real t1 = 1e-4 * static_cast<Real>(k + 1);
    const Real t2 = 7e-5 * static_cast<Real>(k + 1);
    expectSameEval(ref, bat, x, t1, t2, true, nullptr);
    expectSameEval(ref, bat, x, t1, t2, true, &xp);   // junction limiting on
    expectSameEval(ref, bat, x, t1, t2, false, nullptr);
  }
}

TEST(DeviceBatch, EvalSamplesBitwiseAcrossThreadCounts) {
  Menagerie m;
  const std::size_t n = m.sys->dim();
  const std::size_t S = 13;  // not a multiple of any chunk size
  RMat xs(n, S);
  std::vector<Real> t1(S), t2(S);
  for (std::size_t s = 0; s < S; ++s) {
    t1[s] = 1e-5 * static_cast<Real>(s);
    t2[s] = 7e-6 * static_cast<Real>(s);
    const RVec x = m.state(0.37 * static_cast<Real>(s));
    for (std::size_t u = 0; u < n; ++u) xs(u, s) = x[u];
  }

  // Reference: per-sample scalar evaluations.
  MnaWorkspace ref(*m.sys);
  ref.setBatchedEval(false);
  RMat fR(n, S), qR(n, S), bR(n, S);
  std::vector<std::vector<Real>> gR(S), cR(S);
  for (std::size_t s = 0; s < S; ++s) {
    RVec x(n);
    for (std::size_t u = 0; u < n; ++u) x[u] = xs(u, s);
    ref.evalBivariate(x, t1[s], t2[s], true, nullptr);
    for (std::size_t u = 0; u < n; ++u) {
      fR(u, s) = ref.f()[u];
      qR(u, s) = ref.q()[u];
      bR(u, s) = ref.b()[u];
    }
    gR[s] = ref.gValues();
    cR[s] = ref.cValues();
  }

  perf::ThreadPool pool(4);
  for (const bool batched : {false, true}) {
    for (perf::ThreadPool* p : {static_cast<perf::ThreadPool*>(nullptr),
                                &pool}) {
      MnaWorkspace ws(*m.sys);
      ws.setBatchedEval(batched);
      ws.setSweepPool(p);
      RMat fS(n, S), qS(n, S), bS(n, S);
      std::vector<std::vector<Real>> gS(S), cS(S);
      for (int round = 0; round < 2; ++round) {  // round 2: warm wave cache
        ws.evalSamples(xs, t1.data(), t2.data(), true, fS, qS, bS, &gS, &cS);
        for (std::size_t s = 0; s < S; ++s) {
          for (std::size_t u = 0; u < n; ++u) {
            EXPECT_EQ(fR(u, s), fS(u, s));
            EXPECT_EQ(qR(u, s), qS(u, s));
            EXPECT_EQ(bR(u, s), bS(u, s));
          }
          ASSERT_EQ(gR[s].size(), gS[s].size());
          for (std::size_t pp = 0; pp < gR[s].size(); ++pp) {
            EXPECT_EQ(gR[s][pp], gS[s][pp]);
            EXPECT_EQ(cR[s][pp], cS[s][pp]);
          }
        }
      }
      // Vector-only sweep (the HB Newton fast path) against the same
      // reference, then with shifted sample times — the waveform cache must
      // detect the change and rebuild.
      ws.evalSamples(xs, t1.data(), t2.data(), false, fS, qS, bS, nullptr,
                     nullptr);
      for (std::size_t s = 0; s < S; ++s)
        for (std::size_t u = 0; u < n; ++u) {
          EXPECT_EQ(fR(u, s), fS(u, s));
          EXPECT_EQ(bR(u, s), bS(u, s));
        }
      std::vector<Real> t1b(t1), t2b(t2);
      for (std::size_t s = 0; s < S; ++s) t1b[s] += 2.5e-4;
      ws.evalSamples(xs, t1b.data(), t2b.data(), false, fS, qS, bS, nullptr,
                     nullptr);
      for (std::size_t s = 0; s < S; ++s) {
        RVec x(n);
        for (std::size_t u = 0; u < n; ++u) x[u] = xs(u, s);
        ref.evalBivariate(x, t1b[s], t2b[s], false, nullptr);
        for (std::size_t u = 0; u < n; ++u) EXPECT_EQ(ref.b()[u], bS(u, s));
      }
    }
  }
}

TEST(DeviceBatch, DcTransientHbBitwiseToggle) {
  // Diode rectifier vehicle: nonlinear enough to exercise limiting, charge
  // stamps, and the HB sweep path end to end.
  const auto build = [](Circuit& c) {
    const int in = c.node("in");
    const int out = c.node("out");
    const int br = c.allocBranch("V1");
    c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e3));
    c.add<Resistor>("R1", in, out, 1e3);
    Diode::Params dp;
    dp.cj0 = 2e-12;
    c.add<Diode>("D1", out, -1, dp);
    c.add<Capacitor>("C1", out, -1, 1e-9);
    c.add<Resistor>("RL", out, -1, 1e4);
  };

  const auto runAll = [&](bool batched) {
    BatchDefaultGuard guard(batched);
    Circuit c;
    build(c);
    MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    EXPECT_TRUE(dc.converged);
    analysis::TransientOptions to;
    to.tstop = 1e-3;
    to.dt = 1e-5;
    const auto tr = analysis::runTransient(sys, dc.x, to);
    EXPECT_TRUE(tr.ok);
    const auto hb = hb::HarmonicBalance(sys, {{1e3, 5}}).solve(dc.x);
    EXPECT_TRUE(hb.converged);
    return std::tuple{dc.x, tr.x.back(), hb.coeffs};
  };

  const auto [dcS, trS, hbS] = runAll(false);
  const auto [dcB, trB, hbB] = runAll(true);
  for (std::size_t u = 0; u < dcS.size(); ++u) {
    EXPECT_EQ(dcS[u], dcB[u]) << "dc[" << u << "]";
    EXPECT_EQ(trS[u], trB[u]) << "tran[" << u << "]";
  }
  ASSERT_EQ(hbS.rows(), hbB.rows());
  ASSERT_EQ(hbS.cols(), hbB.cols());
  for (std::size_t u = 0; u < hbS.rows(); ++u)
    for (std::size_t k = 0; k < hbS.cols(); ++k) {
      EXPECT_EQ(hbS(u, k).real(), hbB(u, k).real());
      EXPECT_EQ(hbS(u, k).imag(), hbB(u, k).imag());
    }
}

TEST(DeviceBatch, SteadyStateDoesNotGrowWorkspace) {
  Menagerie m;
  MnaWorkspace ws(*m.sys);
  ws.setBatchedEval(true);
  const RVec x = m.state(0.2);

  ws.eval(x, 1e-4, true, &x);  // discovery + compile
  ws.eval(x, 1e-4, true, &x);
  const std::uint64_t warm = ws.workspaceGrowth();
  EXPECT_GT(warm, 0u);
  for (int k = 0; k < 50; ++k) ws.eval(x, 1e-4 + 1e-6 * k, true, &x);
  EXPECT_EQ(ws.workspaceGrowth(), warm) << "single-eval path allocated";

  const std::size_t n = m.sys->dim(), S = 8;
  RMat xs(n, S), fS(n, S), qS(n, S), bS(n, S);
  std::vector<Real> t1(S), t2(S);
  for (std::size_t s = 0; s < S; ++s) {
    t1[s] = 1e-5 * static_cast<Real>(s);
    t2[s] = t1[s];
    for (std::size_t u = 0; u < n; ++u) xs(u, s) = x[u];
  }
  std::vector<std::vector<Real>> gS(S), cS(S);
  ws.evalSamples(xs, t1.data(), t2.data(), true, fS, qS, bS, &gS, &cS);
  const std::uint64_t sweepWarm = ws.workspaceGrowth();
  for (int k = 0; k < 10; ++k) {
    ws.evalSamples(xs, t1.data(), t2.data(), true, fS, qS, bS, &gS, &cS);
    ws.evalSamples(xs, t1.data(), t2.data(), false, fS, qS, bS, nullptr,
                   nullptr);
  }
  EXPECT_EQ(ws.workspaceGrowth(), sweepWarm) << "sweep path allocated";
}

/// Conductance that only stamps above a threshold — its off-diagonal G
/// entries are invisible to pattern discovery at an inactive operating
/// point, so activating it must overflow and self-heal identically in both
/// evaluation modes.
class SwitchedConductance final : public Device {
 public:
  SwitchedConductance(std::string name, int n1, int n2, Real g, Real vth)
      : Device(std::move(name)), n1_(n1), n2_(n2), g_(g), vth_(vth) {}
  void stamp(const RVec& x, const RVec*, Stamp& s) const override {
    const Real v = nodeVoltage(x, n1_) - nodeVoltage(x, n2_);
    if (v <= vth_) return;
    const Real i = g_ * (v - vth_);
    s.addF(n1_, i);
    s.addF(n2_, -i);
    if (s.wantMatrices()) {
      s.addG(n1_, n1_, g_);
      s.addG(n1_, n2_, -g_);
      s.addG(n2_, n1_, -g_);
      s.addG(n2_, n2_, g_);
    }
  }

 private:
  int n1_, n2_;
  Real g_, vth_;
};

TEST(DeviceBatch, OverflowSelfHealsIdentically) {
  Circuit c;
  const int p = c.node("p");
  const int q = c.node("q");
  c.add<Resistor>("R1", p, -1, 1e3);
  c.add<SwitchedConductance>("S1", p, q, 1e-3, 0.5);
  c.add<Resistor>("R2", q, -1, 2e3);
  MnaSystem sys(c);

  MnaWorkspace ref(sys);
  ref.setBatchedEval(false);
  MnaWorkspace bat(sys);
  bat.setBatchedEval(true);

  RVec off(sys.dim(), 0.0);
  expectSameEval(ref, bat, off, 0, 0, true, nullptr);  // discovery: inactive
  const std::size_t nnzBefore = bat.pattern().nnz();

  RVec on(sys.dim(), 0.0);
  on[static_cast<std::size_t>(p)] = 2.0;  // activates → overflow → regrow
  expectSameEval(ref, bat, on, 0, 0, true, nullptr);
  EXPECT_GT(bat.pattern().nnz(), nnzBefore);
  EXPECT_EQ(ref.pattern().nnz(), bat.pattern().nnz());
  expectSameEval(ref, bat, on, 0, 0, true, nullptr);  // healed, stable

  // Same self-heal mid-sweep: half the samples active.
  const std::size_t n = sys.dim(), S = 6;
  MnaWorkspace sweepRef(sys), sweepBat(sys);
  sweepRef.setBatchedEval(false);
  sweepBat.setBatchedEval(true);
  RMat xs(n, S);
  std::vector<Real> ts(S, 0.0);
  for (std::size_t s = 0; s < S; ++s)
    xs(static_cast<std::size_t>(p), s) = s % 2 == 0 ? 0.0 : 2.0;
  RMat fA(n, S), qA(n, S), bA(n, S), fB(n, S), qB(n, S), bB(n, S);
  std::vector<std::vector<Real>> gA(S), cA(S), gB(S), cB(S);
  sweepRef.evalSamples(xs, ts.data(), ts.data(), true, fA, qA, bA, &gA, &cA);
  sweepBat.evalSamples(xs, ts.data(), ts.data(), true, fB, qB, bB, &gB, &cB);
  ASSERT_EQ(sweepRef.pattern().nnz(), sweepBat.pattern().nnz());
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t u = 0; u < n; ++u) EXPECT_EQ(fA(u, s), fB(u, s));
    for (std::size_t pp = 0; pp < gA[s].size(); ++pp)
      EXPECT_EQ(gA[s][pp], gB[s][pp]);
  }
}

TEST(DeviceBatch, MosfetHardTurnOnConverges) {
  // Regression for the shared SPICE-style fetLimit/vdsLimit damping: a
  // stiff common-source stage driven far past threshold from a cold start.
  Circuit c;
  const int vdd = c.node("vdd");
  const int g = c.node("g");
  const int d = c.node("d");
  const int brV = c.allocBranch("VDD");
  const int brG = c.allocBranch("VG");
  c.add<VSource>("VDD", vdd, -1, brV, std::make_shared<DCWave>(5.0));
  c.add<VSource>("VG", g, -1, brG, std::make_shared<DCWave>(5.0));
  MOSFET::Params mp;
  mp.vt0 = 0.7;
  mp.kp = 0.5;  // very stiff square law: unlimited Newton overshoots hard
  mp.lambda = 0.0;
  c.add<MOSFET>("M1", d, g, -1, mp);
  c.add<Resistor>("RD", vdd, d, 50.0);
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  ASSERT_TRUE(dc.converged);
  // Triode sanity: id = kp·((vgs−vt)·vds − vds²/2) must balance the 50 Ω
  // pull-up within Newton tolerance.
  const Real vds = dc.x[static_cast<std::size_t>(d)];
  const Real id = mp.kp * ((5.0 - mp.vt0) * vds - 0.5 * vds * vds);
  EXPECT_NEAR(id, (5.0 - vds) / 50.0, 1e-6);

  // Unit behaviour of the limiters themselves: big steps are damped, small
  // steps pass through untouched.
  EXPECT_LT(kernels::fetLimit(20.0, 1.0, 0.7), 20.0);
  EXPECT_EQ(kernels::fetLimit(1.05, 1.0, 0.7), 1.05);
  EXPECT_EQ(kernels::vdsLimit(20.0, 0.1), 4.0);
  EXPECT_EQ(kernels::vdsLimit(0.2, 0.1), 0.2);
  EXPECT_EQ(kernels::vdsLimit(20.0, 4.0), 3.0 * 4.0 + 2.0);
}

TEST(DeviceBatch, CountersTrackBatchedSubset) {
  Menagerie m;
  const RVec x = m.state(0.1);

  MnaWorkspace bat(*m.sys);
  bat.setBatchedEval(true);
  for (int k = 0; k < 5; ++k) bat.eval(x, 1e-4, true, &x);
  const perf::Snapshot sb = bat.counters();
  EXPECT_EQ(sb.evals, 5u);
  EXPECT_EQ(sb.evalBatched, 5u);
  EXPECT_LE(sb.evalBatchNs, sb.evalNs);

  MnaWorkspace ref(*m.sys);
  ref.setBatchedEval(false);
  for (int k = 0; k < 5; ++k) ref.eval(x, 1e-4, true, &x);
  const perf::Snapshot ss = ref.counters();
  EXPECT_EQ(ss.evals, 5u);
  EXPECT_EQ(ss.evalBatched, 0u);

  // A sweep counts every sample as one evaluation.
  const std::size_t n = m.sys->dim(), S = 8;
  RMat xs(n, S), fS(n, S), qS(n, S), bS(n, S);
  std::vector<Real> ts(S, 1e-4);
  for (std::size_t s = 0; s < S; ++s)
    for (std::size_t u = 0; u < n; ++u) xs(u, s) = x[u];
  bat.evalSamples(xs, ts.data(), ts.data(), false, fS, qS, bS, nullptr,
                  nullptr);
  const perf::Snapshot sb2 = bat.counters();
  EXPECT_EQ(sb2.evals, 5u + S);
  EXPECT_EQ(sb2.evalBatched, 5u + S);
}

}  // namespace
}  // namespace rfic::circuit
