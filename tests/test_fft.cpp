// FFT kernels: roundtrips, reference DFT comparison, Parseval, real packs,
// and the 2-D transform used by two-tone HB.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fft/fft.hpp"

namespace rfic::fft {
namespace {

std::vector<Complex> randomSignal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1.0, 1.0);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {u(rng), u(rng)};
  return x;
}

std::vector<Complex> referenceDFT(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s = 0;
    for (std::size_t m = 0; m < n; ++m) {
      const Real ang = -kTwoPi * static_cast<Real>(k * m) / static_cast<Real>(n);
      s += x[m] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

class FFTLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FFTLengths, MatchesReferenceDFT) {
  const std::size_t n = GetParam();
  auto x = randomSignal(n, 10 + n);
  const auto ref = referenceDFT(x);
  fft(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-9 * static_cast<Real>(n))
        << "bin " << k << " length " << n;
}

TEST_P(FFTLengths, RoundTripIdentity) {
  const std::size_t n = GetParam();
  const auto orig = randomSignal(n, 20 + n);
  auto x = orig;
  fft(x);
  ifft(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - orig[k]), 0.0, 1e-11);
}

TEST_P(FFTLengths, Parseval) {
  const std::size_t n = GetParam();
  auto x = randomSignal(n, 30 + n);
  Real timeEnergy = 0;
  for (const auto& v : x) timeEnergy += std::norm(v);
  fft(x);
  Real freqEnergy = 0;
  for (const auto& v : x) freqEnergy += std::norm(v);
  EXPECT_NEAR(freqEnergy / static_cast<Real>(n), timeEnergy,
              1e-9 * timeEnergy);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FFTLengths,
                         ::testing::Values(1, 2, 4, 8, 64, 256,  // pow2
                                           3, 5, 7, 12, 15, 100, 127,
                                           243));  // Bluestein

TEST(FFT, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  for (std::size_t m = 0; m < n; ++m)
    x[m] = std::exp(Complex(0, kTwoPi * 5.0 * static_cast<Real>(m) /
                                   static_cast<Real>(n)));
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5)
      EXPECT_NEAR(std::abs(x[k]), static_cast<Real>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
  }
}

TEST(FFT, LinearityHolds) {
  const std::size_t n = 48;
  auto a = randomSignal(n, 1);
  auto b = randomSignal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-10);
}

TEST(RFFT, MatchesComplexTransform) {
  const std::size_t n = 32;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::vector<Real> x(n);
  for (auto& v : x) v = u(rng);
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), n / 2 + 1);
  std::vector<Complex> full(x.begin(), x.end());
  fft(full);
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-11);
}

TEST(RFFT, RoundTripThroughIrfft) {
  const std::size_t n = 40;
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::vector<Real> x(n);
  for (auto& v : x) v = u(rng);
  const auto back = irfft(rfft(x), n);
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(back[k], x[k], 1e-11);
}

TEST(RFFT, WrongHalfSizeThrows) {
  std::vector<Complex> half(4);
  EXPECT_THROW(irfft(half, 10), InvalidArgument);
}

TEST(FFT2, SeparableToneInOneBin) {
  const std::size_t rows = 8, cols = 16;
  std::vector<Complex> x(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      x[r * cols + c] =
          std::exp(Complex(0, kTwoPi * (2.0 * static_cast<Real>(r) /
                                            static_cast<Real>(rows) +
                                        3.0 * static_cast<Real>(c) /
                                            static_cast<Real>(cols))));
  fft2(x, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const Real expected = (r == 2 && c == 3)
                                ? static_cast<Real>(rows * cols)
                                : 0.0;
      EXPECT_NEAR(std::abs(x[r * cols + c]), expected, 1e-8);
    }
  }
}

TEST(FFT2, RoundTrip) {
  const std::size_t rows = 12, cols = 10;  // non-pow2 both dims
  auto x = randomSignal(rows * cols, 7);
  const auto orig = x;
  fft2(x, rows, cols);
  ifft2(x, rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
}

TEST(FFTUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(12));
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(17), 32u);
  EXPECT_EQ(nextPowerOfTwo(64), 64u);
}

}  // namespace
}  // namespace rfic::fft
