// FFT kernels: roundtrips, reference DFT comparison, Parseval, real packs,
// the 2-D transform used by two-tone HB, and the Plan/PlanCache layer the
// hot loops replay.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <thread>

#include "fft/fft.hpp"
#include "fft/plan.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::fft {
namespace {

std::vector<Complex> randomSignal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1.0, 1.0);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {u(rng), u(rng)};
  return x;
}

std::vector<Complex> referenceDFT(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s = 0;
    for (std::size_t m = 0; m < n; ++m) {
      const Real ang = -kTwoPi * static_cast<Real>(k * m) / static_cast<Real>(n);
      s += x[m] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

class FFTLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FFTLengths, MatchesReferenceDFT) {
  const std::size_t n = GetParam();
  auto x = randomSignal(n, 10 + n);
  const auto ref = referenceDFT(x);
  fft(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-9 * static_cast<Real>(n))
        << "bin " << k << " length " << n;
}

TEST_P(FFTLengths, RoundTripIdentity) {
  const std::size_t n = GetParam();
  const auto orig = randomSignal(n, 20 + n);
  auto x = orig;
  fft(x);
  ifft(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - orig[k]), 0.0, 1e-11);
}

TEST_P(FFTLengths, Parseval) {
  const std::size_t n = GetParam();
  auto x = randomSignal(n, 30 + n);
  Real timeEnergy = 0;
  for (const auto& v : x) timeEnergy += std::norm(v);
  fft(x);
  Real freqEnergy = 0;
  for (const auto& v : x) freqEnergy += std::norm(v);
  EXPECT_NEAR(freqEnergy / static_cast<Real>(n), timeEnergy,
              1e-9 * timeEnergy);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FFTLengths,
                         ::testing::Values(1, 2, 4, 8, 64, 256,  // pow2
                                           3, 5, 7, 12, 15, 100, 127,
                                           243));  // Bluestein

TEST(FFT, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  for (std::size_t m = 0; m < n; ++m)
    x[m] = std::exp(Complex(0, kTwoPi * 5.0 * static_cast<Real>(m) /
                                   static_cast<Real>(n)));
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5)
      EXPECT_NEAR(std::abs(x[k]), static_cast<Real>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
  }
}

TEST(FFT, LinearityHolds) {
  const std::size_t n = 48;
  auto a = randomSignal(n, 1);
  auto b = randomSignal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-10);
}

TEST(RFFT, MatchesComplexTransform) {
  const std::size_t n = 32;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::vector<Real> x(n);
  for (auto& v : x) v = u(rng);
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), n / 2 + 1);
  std::vector<Complex> full(x.begin(), x.end());
  fft(full);
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-11);
}

TEST(RFFT, RoundTripThroughIrfft) {
  const std::size_t n = 40;
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::vector<Real> x(n);
  for (auto& v : x) v = u(rng);
  const auto back = irfft(rfft(x), n);
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(back[k], x[k], 1e-11);
}

TEST(RFFT, WrongHalfSizeThrows) {
  std::vector<Complex> half(4);
  EXPECT_THROW(irfft(half, 10), InvalidArgument);
}

TEST(FFT2, SeparableToneInOneBin) {
  const std::size_t rows = 8, cols = 16;
  std::vector<Complex> x(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      x[r * cols + c] =
          std::exp(Complex(0, kTwoPi * (2.0 * static_cast<Real>(r) /
                                            static_cast<Real>(rows) +
                                        3.0 * static_cast<Real>(c) /
                                            static_cast<Real>(cols))));
  fft2(x, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const Real expected = (r == 2 && c == 3)
                                ? static_cast<Real>(rows * cols)
                                : 0.0;
      EXPECT_NEAR(std::abs(x[r * cols + c]), expected, 1e-8);
    }
  }
}

TEST(FFT2, RoundTrip) {
  const std::size_t rows = 12, cols = 10;  // non-pow2 both dims
  auto x = randomSignal(rows * cols, 7);
  const auto orig = x;
  fft2(x, rows, cols);
  ifft2(x, rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
}

class PlanLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanLengths, ForwardMatchesReferenceDFT) {
  const std::size_t n = GetParam();
  const Plan plan(n);
  EXPECT_EQ(plan.size(), n);
  EXPECT_EQ(plan.usesBluestein(), !isPowerOfTwo(n));
  auto x = randomSignal(n, 40 + n);
  const auto ref = referenceDFT(x);
  std::vector<Complex> scratch(plan.scratchSize());
  plan.forward(x.data(), scratch.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-9 * static_cast<Real>(n))
        << "bin " << k << " length " << n;
}

TEST_P(PlanLengths, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const Plan plan(n);
  const auto orig = randomSignal(n, 50 + n);
  auto x = orig;
  std::vector<Complex> scratch(plan.scratchSize());
  plan.forward(x.data(), scratch.data());
  plan.inverse(x.data(), scratch.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - orig[k]), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PlanLengths,
                         ::testing::Values(1, 2, 4, 8, 64, 256,  // pow2
                                           3, 5, 7, 12, 15, 100, 127,
                                           243));  // Bluestein

TEST(Plan, LargePrimeBluesteinToneLandsInOneBin) {
  // Exercises the incremental k²-mod-2n chirp indexing far past where a
  // naive k*k would overflow intermediate arithmetic carelessly written in
  // 32 bits; the overflow guard admits any n ≤ SIZE_MAX/4.
  const std::size_t n = 104729;  // the 10000th prime
  const Plan plan(n);
  ASSERT_TRUE(plan.usesBluestein());
  const std::size_t bin = 4211;
  std::vector<Complex> x(n);
  for (std::size_t m = 0; m < n; ++m)
    x[m] = std::exp(Complex(0, kTwoPi * static_cast<Real>(bin) *
                                   static_cast<Real>(m) /
                                   static_cast<Real>(n)));
  std::vector<Complex> scratch(plan.scratchSize());
  plan.forward(x.data(), scratch.data());
  EXPECT_NEAR(std::abs(x[bin]), static_cast<Real>(n), 1e-5 * n);
  // Every other bin is numerically empty relative to the tone.
  Real worst = 0;
  for (std::size_t k = 0; k < n; ++k)
    if (k != bin) worst = std::max(worst, std::abs(x[k]));
  EXPECT_LT(worst, 1e-6 * static_cast<Real>(n));
}

TEST(Plan, TransformColumnsMatchesPerColumnFFT) {
  const std::size_t n = 24, cols = 7;
  const Plan plan(n);
  std::vector<Complex> batch(n * cols);
  std::vector<std::vector<Complex>> separate(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    separate[c] = randomSignal(n, 60 + c);
    std::copy(separate[c].begin(), separate[c].end(),
              batch.begin() + static_cast<std::ptrdiff_t>(c * n));
  }
  transformColumns(plan, batch.data(), cols, /*inverse=*/false);
  for (auto& col : separate) fft(col);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(batch[c * n + k] - separate[c][k]), 0.0, 1e-10);
  // And the inverse restores the batch through the same entry point.
  transformColumns(plan, batch.data(), cols, /*inverse=*/true);
  for (auto& col : separate) ifft(col);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(batch[c * n + k] - separate[c][k]), 0.0, 1e-10);
}

TEST(Plan, BatchedTransformsNestInsidePoolTasks) {
  // Reentrancy audit for the thread_local scratch (DESIGN.md §9): the
  // batched entry points run their lambdas on pool workers, and a
  // parallelFor issued from such a worker executes inline on it. A user
  // pipeline that calls transformColumns from inside its own pool task
  // therefore runs the whole transform — including the ScratchLease claim
  // of tlScratch — on a worker thread, nested below another dispatch.
  // Distinct Bluestein lengths per task force scratch buffers of different
  // sizes to be claimed on whichever worker picks the task up; every
  // result must still match the serial reference.
  const std::size_t kTasks = 6;
  const std::size_t lengths[kTasks] = {23, 31, 37, 41, 43, 47};  // Bluestein
  const std::size_t cols = 5;

  std::vector<std::vector<Complex>> batches(kTasks);
  std::vector<std::vector<Complex>> expected(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    const std::size_t n = lengths[t];
    batches[t].resize(n * cols);
    expected[t].resize(n * cols);
    for (std::size_t c = 0; c < cols; ++c) {
      auto col = randomSignal(n, 900 + t * cols + c);
      std::copy(col.begin(), col.end(),
                batches[t].begin() + static_cast<std::ptrdiff_t>(c * n));
      fft(col);  // serial reference, computed before any pool activity
      std::copy(col.begin(), col.end(),
                expected[t].begin() + static_cast<std::ptrdiff_t>(c * n));
    }
  }

  perf::ThreadPool::global().parallelFor(kTasks, [&](std::size_t t) {
    const Plan plan(lengths[t]);
    transformColumns(plan, batches[t].data(), cols, /*inverse=*/false);
  });

  for (std::size_t t = 0; t < kTasks; ++t)
    for (std::size_t i = 0; i < batches[t].size(); ++i)
      EXPECT_NEAR(std::abs(batches[t][i] - expected[t][i]), 0.0, 1e-9)
          << "task " << t << " index " << i;
}

TEST(Plan, Grid2DNestsInsidePoolTasks) {
  // Same audit for transformGrid2D, whose column pass holds TWO leases at
  // once (tlColumn for the gather/scatter and tlScratch for Bluestein).
  const std::size_t rows = 6, colsN = 10;
  std::vector<Complex> grid = randomSignal(rows * colsN, 1234);
  std::vector<Complex> expected = grid;
  {
    const Plan rowPlan(colsN), colPlan(rows);
    transformGrid2D(rowPlan, colPlan, expected.data(), rows, colsN,
                    /*inverse=*/false);
  }
  // Two tasks so that (with workers available) at least one grid transform
  // runs nested-inline on a pool worker rather than on the caller.
  std::vector<Complex> nested[2] = {grid, grid};
  perf::ThreadPool::global().parallelFor(2, [&](std::size_t t) {
    const Plan rowPlan(colsN), colPlan(rows);
    transformGrid2D(rowPlan, colPlan, nested[t].data(), rows, colsN,
                    /*inverse=*/false);
  });
  for (std::size_t t = 0; t < 2; ++t)
    for (std::size_t i = 0; i < grid.size(); ++i)
      EXPECT_NEAR(std::abs(nested[t][i] - expected[i]), 0.0, 1e-9)
          << "task " << t << " index " << i;
}

TEST(PlanCache, SecondRequestIsASharedHit) {
  auto& cache = PlanCache::global();
  cache.clear();
  const std::uint64_t h0 = cache.hits(), m0 = cache.misses();
  const auto a = cache.get(97);
  const auto b = cache.get(97);
  EXPECT_EQ(a.get(), b.get());  // one immutable plan, shared
  EXPECT_EQ(cache.misses(), m0 + 1);
  EXPECT_GE(cache.hits(), h0 + 1);
}

TEST(PlanCache, ConcurrentGetsYieldOnePlanPerLength) {
  // Hammer the cache from many threads over a few lengths: every caller
  // must receive a working plan and all callers of one length must agree
  // on the same instance once the cache settles. Run under
  // RFIC_SANITIZE=thread this validates the lock discipline.
  auto& cache = PlanCache::global();
  cache.clear();
  constexpr std::size_t kThreads = 8, kLengths = 4;
  const std::size_t lengths[kLengths] = {33, 64, 101, 128};
  std::vector<std::shared_ptr<const Plan>> got(kThreads * kLengths);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t j = 0; j < kLengths; ++j)
        got[t * kLengths + j] = cache.get(lengths[(t + j) % kLengths]);
    });
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NE(got[i], nullptr);
    EXPECT_GT(got[i]->size(), 0u);
  }
  // After the race settles, the cache serves one canonical plan per length.
  for (const std::size_t n : lengths) {
    const auto canonical = cache.get(n);
    EXPECT_EQ(cache.get(n).get(), canonical.get());
    EXPECT_EQ(canonical->size(), n);
  }
}

TEST(FFTUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(12));
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(17), 32u);
  EXPECT_EQ(nextPowerOfTwo(64), 64u);
}

}  // namespace
}  // namespace rfic::fft
