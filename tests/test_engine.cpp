// Engine / Scheduler lifecycle tests: the ISSUE's satellite 3 checklist —
// submit/cancel races, budget expiry mid-queue, concurrent jobs matching
// serial runs byte-for-byte, context-cache hit counters — plus the
// .print unknown-node regression and NetlistError structured diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/netlist.hpp"
#include "engine/engine.hpp"
#include "engine/json.hpp"
#include "engine/scheduler.hpp"

namespace {

using namespace rfic;
using engine::Event;
using engine::JobId;

const char* kRcNetlist =
    "* RC low-pass\n"
    "V1 in 0 SIN(0 1 1k)\n"
    "R1 in out 1k\n"
    "C1 out 0 1u\n"
    ".print out\n"
    ".op\n"
    ".tran 10u 2m\n";

const char* kDiodeNetlist =
    "V1 vdd 0 DC 5\n"
    "R1 vdd mid 2k\n"
    "R2 mid 0 3k\n"
    "D1 mid 0 DM\n"
    ".model DM D (IS=1e-14 N=1.6)\n"
    ".print mid\n"
    ".op\n";

// A transient heavy enough (~200k BE steps) to still be running when the
// test thread gets around to cancelling it or queueing behind it.
const char* kHeavyNetlist =
    "V1 in 0 SIN(0 1 1k)\n"
    "R1 in out 1k\n"
    "C1 out 0 1u\n"
    ".print out\n"
    ".tran 5e-8 1e-2\n";

std::string rcVariant(int rOhms) {
  return std::string("V1 in 0 SIN(0 1 1k)\nR1 in out ") +
         std::to_string(rOhms) + "\nC1 out 0 1u\n.print out\n.op\n.tran 10u 1m\n";
}

/// Collects one or many jobs' event streams; thread-safe like a real sink.
class CollectSink : public engine::EventSink {
 public:
  void onEvent(const Event& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (e.kind == Event::Kind::Stdout) stdoutText_[e.job] += e.text;
    if (e.kind == Event::Kind::Stderr) stderrText_[e.job] += e.text;
    kinds_[e.job].push_back(e.kind);
    if (e.kind == Event::Kind::Finished) results_[e.job] = e.result;
  }

  std::string out(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return stdoutText_[j];
  }
  std::string err(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return stderrText_[j];
  }
  std::vector<Event::Kind> kinds(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return kinds_[j];
  }
  engine::JobResult result(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return results_[j];
  }

 private:
  std::mutex mu_;
  std::map<JobId, std::string> stdoutText_, stderrText_;
  std::map<JobId, std::vector<Event::Kind>> kinds_;
  std::map<JobId, engine::JobResult> results_;
};

engine::JobSpec spec(const std::string& netlist) {
  engine::JobSpec s;
  s.netlist = netlist;
  return s;
}

// ------------------------------------------------------------ topology key

TEST(TopologyKey, StripsAnalysisCardsAndComments) {
  const std::string a =
      "* comment\nR1 a 0 1k\n.print a\n.op\n.tran 1u 1m\n";
  const std::string b = "R1 a 0 1k\n.hb 1meg 5\n.print a\n";
  EXPECT_EQ(engine::topologyKey(a), engine::topologyKey(b));
  EXPECT_EQ(engine::topologyKey(a), "R1 a 0 1k\n");
  const std::string c = "R1 a 0 2k\n.op\n";
  EXPECT_NE(engine::topologyHash(engine::topologyKey(a)),
            engine::topologyHash(engine::topologyKey(c)));
}

TEST(TopologyKey, KeepsModelCards) {
  const std::string a = "D1 a 0 DM\n.model DM D (IS=1e-14)\n.op\n";
  const std::string b = "D1 a 0 DM\n.model DM D (IS=2e-14)\n.op\n";
  EXPECT_NE(engine::topologyKey(a), engine::topologyKey(b));
}

// ------------------------------------------- .print / .noise node checking

TEST(EngineValidation, UnknownPrintNodeIsExit2) {
  engine::Engine eng;
  CollectSink sink;
  const auto res = eng.run(spec("R1 a 0 1k\n.print nosuch\n.op\n"), sink);
  EXPECT_EQ(res.exitCode, 2);
  EXPECT_NE(sink.err(0).find(".print: unknown node 'nosuch'"),
            std::string::npos);
}

TEST(EngineValidation, GroundPrintNodeIsExit2) {
  engine::Engine eng;
  CollectSink sink;
  const auto res = eng.run(spec("R1 a 0 1k\n.print 0\n.op\n"), sink);
  EXPECT_EQ(res.exitCode, 2);
  EXPECT_NE(sink.err(0).find("ground"), std::string::npos);
}

TEST(EngineValidation, UnknownNoiseNodeIsExit2) {
  engine::Engine eng;
  CollectSink sink;
  const auto res = eng.run(
      spec("V1 in 0 DC 1\nR1 in out 1k\n.noise bogus dec 5 1e2 1e6\n"), sink);
  EXPECT_EQ(res.exitCode, 2);
  EXPECT_NE(sink.err(0).find(".noise"), std::string::npos);
}

TEST(EngineValidation, NoAnalysisCardsIsExit2) {
  engine::Engine eng;
  CollectSink sink;
  EXPECT_EQ(eng.run(spec("R1 a 0 1k\n"), sink).exitCode, 2);
}

// ------------------------------------------------- structured parse errors

TEST(NetlistError, CarriesLineAndCard) {
  circuit::Circuit ckt;
  try {
    circuit::parseNetlist("V1 in 0 DC 5\nR1 in out notanumber\n", ckt);
    FAIL() << "expected NetlistError";
  } catch (const circuit::NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.card(), "R1 in out notanumber");
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistError, EngineSurvivesParseError) {
  engine::Engine eng;
  CollectSink sink;
  const auto res = eng.run(spec("R1 in out notanumber\n.op\n"), sink);
  EXPECT_EQ(res.exitCode, 1);
  EXPECT_NE(sink.err(0).find("error: "), std::string::npos);
  EXPECT_NE(sink.err(0).find("line 1"), std::string::npos);
  // The engine is still usable afterwards (a daemon must survive bad jobs).
  CollectSink sink2;
  EXPECT_EQ(eng.run(spec(kDiodeNetlist), sink2).exitCode, 0);
}

// ----------------------------------------------------- context cache reuse

TEST(EngineCache, RepeatTopologyHitsAndMatchesBytes) {
  engine::Engine eng;
  CollectSink s1, s2;
  const auto r1 = eng.run(spec(kRcNetlist), s1);
  ASSERT_EQ(r1.exitCode, 0);
  EXPECT_EQ(r1.perf.ctxMisses, 1u);
  EXPECT_EQ(r1.perf.ctxHits, 0u);
  EXPECT_EQ(eng.pooledContexts(), 1u);

  const auto r2 = eng.run(spec(kRcNetlist), s2);
  ASSERT_EQ(r2.exitCode, 0);
  EXPECT_EQ(r2.perf.ctxHits, 1u);
  EXPECT_EQ(r2.perf.ctxMisses, 0u);
  // Warm context (cached pattern + recorded pivots) must not change the
  // rendered results.
  EXPECT_EQ(s1.out(0), s2.out(0));
}

TEST(EngineCache, WarmDiodeContextStillConverges) {
  engine::Engine eng;
  CollectSink s1, s2;
  ASSERT_EQ(eng.run(spec(kDiodeNetlist), s1).exitCode, 0);
  const auto r2 = eng.run(spec(kDiodeNetlist), s2);
  ASSERT_EQ(r2.exitCode, 0);
  EXPECT_EQ(r2.perf.ctxHits, 1u);
  EXPECT_EQ(s1.out(0), s2.out(0));
}

TEST(EngineCache, SchedulerRepeatJobsHitCache) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  const JobId a = sched.submit(spec(kDiodeNetlist), sink);
  ASSERT_NE(a, 0u);
  ASSERT_EQ(sched.wait(a).exitCode, 0);
  const JobId b = sched.submit(spec(kDiodeNetlist), sink);
  ASSERT_NE(b, 0u);
  const auto rb = sched.wait(b);
  EXPECT_EQ(rb.exitCode, 0);
  EXPECT_GE(rb.perf.ctxHits, 1u);
}

// ------------------------------------------------------------ event stream

TEST(EngineEvents, OrderedStreamPerJob) {
  engine::Scheduler sched;
  auto sink = std::make_shared<CollectSink>();
  const JobId id = sched.submit(spec(kDiodeNetlist), sink);
  ASSERT_NE(id, 0u);
  const auto res = sched.wait(id);
  EXPECT_EQ(res.exitCode, 0);
  ASSERT_EQ(res.analyses.size(), 1u);
  EXPECT_EQ(res.analyses[0].card, ".op");
  EXPECT_TRUE(res.analyses[0].ok);
  const auto kinds = sink->kinds(id);
  ASSERT_GE(kinds.size(), 4u);
  EXPECT_EQ(kinds.front(), Event::Kind::Started);
  EXPECT_EQ(kinds.back(), Event::Kind::Finished);
  EXPECT_NE(sink->out(id).find("* .op"), std::string::npos);
}

// --------------------------------------------- concurrent vs serial output

TEST(EngineConcurrency, ConcurrentMixedJobsMatchSerialRuns) {
  // Distinct topologies so every run (serial or concurrent) is a cold
  // context: byte equality then checks scheduling, not cache state.
  std::vector<std::string> netlists;
  for (int r = 1; r <= 6; ++r) netlists.push_back(rcVariant(1000 * r));
  netlists.push_back(kDiodeNetlist);

  std::vector<std::string> serialOut;
  for (const auto& n : netlists) {
    engine::Engine eng;  // fresh engine: no cross-run cache effects
    CollectSink s;
    const auto res = eng.run(spec(n), s);
    ASSERT_EQ(res.exitCode, 0);
    serialOut.push_back(s.out(0));
  }

  engine::Scheduler::Options o;
  o.workers = 4;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  std::vector<JobId> ids;
  for (const auto& n : netlists) {
    // Serialize each job's parallel sections so concurrent jobs exercise
    // scheduler-level (not pool-level) parallelism deterministically.
    engine::JobSpec s = spec(n);
    s.threadShare = 1;
    const JobId id = sched.submit(std::move(s), sink);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto res = sched.wait(ids[k]);
    EXPECT_EQ(res.exitCode, 0) << netlists[k];
    EXPECT_EQ(sink->out(ids[k]), serialOut[k]) << netlists[k];
  }
}

// -------------------------------------------------------- cancel lifecycle

TEST(SchedulerCancel, RunningJobCancelsPromptly) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  const JobId id = sched.submit(spec(kHeavyNetlist), sink);
  ASSERT_NE(id, 0u);
  // Wait for the worker to pick it up.
  for (int i = 0; i < 5000; ++i) {
    const auto info = sched.info(id);
    ASSERT_TRUE(info.has_value());
    if (info->state != engine::JobState::Queued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(sched.cancel(id));
  const auto res = sched.wait(id);
  EXPECT_TRUE(res.cancelled);
  EXPECT_EQ(res.exitCode, 5);
  EXPECT_EQ(sched.info(id)->state, engine::JobState::Cancelled);
  EXPECT_NE(sink->err(id).find("cancelled"), std::string::npos);
  // Cancelling a finished job reports false.
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerCancel, SubmitCancelRaceAlwaysFinalizes) {
  engine::Scheduler::Options o;
  o.workers = 2;
  o.queueDepth = 64;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  std::vector<JobId> ids;
  for (int i = 0; i < 16; ++i) {
    const JobId id = sched.submit(spec(kRcNetlist), sink);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
    sched.cancel(id);  // race against the worker picking it up
  }
  for (const JobId id : ids) {
    const auto res = sched.wait(id);  // must terminate either way
    const auto info = sched.info(id);
    ASSERT_TRUE(info.has_value());
    if (res.cancelled) {
      EXPECT_EQ(res.exitCode, 5);
      EXPECT_EQ(info->state, engine::JobState::Cancelled);
    } else {
      EXPECT_EQ(res.exitCode, 0);  // won the race: completed normally
      EXPECT_EQ(info->state, engine::JobState::Done);
    }
  }
}

// --------------------------------------------------- budgets and admission

TEST(SchedulerBudget, ExpiresMidQueueWithoutRunning) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  const JobId heavy = sched.submit(spec(kHeavyNetlist), sink);
  ASSERT_NE(heavy, 0u);
  engine::JobSpec tiny = spec(kRcNetlist);
  tiny.timeoutSeconds = 1e-4;  // expires long before the heavy job finishes
  const JobId starved = sched.submit(std::move(tiny), sink);
  ASSERT_NE(starved, 0u);
  const auto res = sched.wait(starved);
  EXPECT_EQ(res.exitCode, 4);
  EXPECT_FALSE(res.cancelled);
  EXPECT_EQ(res.perf.evals, 0u);  // never reached a solver
  EXPECT_NE(res.error.find("queued"), std::string::npos);
  sched.cancel(heavy);
  sched.drain();
}

TEST(SchedulerBudget, RunningJobTripsWallClock) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  engine::JobSpec s = spec(kHeavyNetlist);
  s.timeoutSeconds = 0.02;  // well under the ~200ms the job needs
  const JobId id = sched.submit(std::move(s), sink);
  ASSERT_NE(id, 0u);
  const auto res = sched.wait(id);
  EXPECT_EQ(res.exitCode, 4);
  EXPECT_NE(sink->err(id).find("budget exceeded"), std::string::npos);
}

TEST(SchedulerAdmission, QueueDepthRejectsOverflow) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 2;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<CollectSink>();
  const JobId a = sched.submit(spec(kHeavyNetlist), sink);
  const JobId b = sched.submit(spec(kRcNetlist), sink);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(sched.submit(spec(kRcNetlist), sink), 0u);  // over depth
  sched.cancel(a);
  sched.cancel(b);
  sched.drain();
  // Capacity freed: admission works again.
  const JobId c = sched.submit(spec(kDiodeNetlist), sink);
  EXPECT_NE(c, 0u);
  EXPECT_EQ(sched.wait(c).exitCode, 0);
}

TEST(SchedulerShutdown, CancelsQueuedJobs) {
  auto sched = std::make_unique<engine::Scheduler>([] {
    engine::Scheduler::Options o;
    o.workers = 1;
    return o;
  }());
  auto sink = std::make_shared<CollectSink>();
  const JobId heavy = sched->submit(spec(kHeavyNetlist), sink);
  const JobId queued = sched->submit(spec(kRcNetlist), sink);
  ASSERT_NE(heavy, 0u);
  ASSERT_NE(queued, 0u);
  sched->shutdown();  // cancels both, joins workers
  EXPECT_EQ(sched->info(queued)->state, engine::JobState::Cancelled);
  EXPECT_EQ(sched->submit(spec(kRcNetlist), sink), 0u);  // no post-stop admits
  sched.reset();
}

// ------------------------------------------------------------------- JSON

TEST(FlatJson, RoundTripAndErrors) {
  const std::string netlist = "R1 a 0 1k\n.op \"quoted\"\ttab\n";
  const std::string line = "{\"cmd\":\"submit\",\"netlist\":" +
                           engine::jsonString(netlist) +
                           ",\"timeout\":2.5,\"flag\":true,\"nil\":null}";
  std::map<std::string, std::string> obj;
  std::string err;
  ASSERT_TRUE(engine::parseFlatJson(line, obj, &err)) << err;
  EXPECT_EQ(obj["cmd"], "submit");
  EXPECT_EQ(obj["netlist"], netlist);
  EXPECT_EQ(obj["timeout"], "2.5");
  EXPECT_EQ(obj["flag"], "true");
  EXPECT_EQ(obj["nil"], "");

  EXPECT_TRUE(engine::parseFlatJson("{}", obj, &err));
  EXPECT_TRUE(obj.empty());
  EXPECT_TRUE(engine::parseFlatJson("{\"u\":\"\\u0041\\n\"}", obj, &err));
  EXPECT_EQ(obj["u"], "A\n");

  EXPECT_FALSE(engine::parseFlatJson("not json", obj, &err));
  EXPECT_FALSE(engine::parseFlatJson("{\"a\":{\"nested\":1}}", obj, &err));
  EXPECT_FALSE(engine::parseFlatJson("{\"a\":1", obj, &err));
  EXPECT_FALSE(engine::parseFlatJson("{\"a\":1} trailing", obj, &err));
}

}  // namespace
