// Fill-reducing ordering (sparse/ordering.hpp) and the level-scheduled
// parallel refactorization of SymbolicLU.
//
// The contracts under test, in DESIGN.md §13 terms:
//  - amdOrder returns a valid permutation on arbitrary symmetrizable
//    patterns, deterministically;
//  - AMD-ordered factorizations solve the same systems as natural-ordered
//    ones (ordering changes fill and speed, never the answer);
//  - the parallel replay is bitwise identical to the serial replay for
//    every thread count;
//  - the numeric-stability backstops (threshold repivot fallback, singular
//    rejection) behave identically under a pre-ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "perf/thread_pool.hpp"
#include "sparse/ordering.hpp"
#include "sparse/sparse_lu.hpp"
#include "sparse/sparse_matrix.hpp"
#include "sparse/symbolic_lu.hpp"

namespace rfic::sparse {
namespace {

using numeric::RVec;

RTriplets randomSparse(std::size_t n, Real density, std::uint64_t seed,
                       Real diagBoost) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1, 1);
  std::uniform_real_distribution<Real> coin(0, 1);
  RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      if (coin(rng) < density) t.add(i, j, u(rng));
    t.add(i, i, diagBoost + u(rng));
  }
  return t;
}

/// k×k resistive grid with grounded diagonal — the structurally symmetric,
/// diagonally dominant pattern large MNA systems actually have.
RTriplets gridLaplacian(std::size_t k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> g(0.5, 1.5);
  const std::size_t n = k * k;
  RTriplets t(n, n);
  std::vector<Real> diag(n, 0.1);  // ground leak keeps it nonsingular
  const auto couple = [&](std::size_t a, std::size_t b) {
    const Real gv = g(rng);
    t.add(a, b, -gv);
    t.add(b, a, -gv);
    diag[a] += gv;
    diag[b] += gv;
  };
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t u0 = i * k + j;
      if (j + 1 < k) couple(u0, u0 + 1);
      if (i + 1 < k) couple(u0, u0 + k);
    }
  for (std::size_t i = 0; i < n; ++i) t.add(i, i, diag[i]);
  return t;
}

/// CSR stores size_t column indices; amdOrder takes the compact u32 form.
std::vector<std::uint32_t> narrowed(const std::vector<std::size_t>& v) {
  return std::vector<std::uint32_t>(v.begin(), v.end());
}

RVec randomVec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1, 1);
  RVec v(n);
  for (auto& x : v) x = u(rng);
  return v;
}

TEST(Ordering, ParseAndDefaults) {
  Ordering o = Ordering::Auto;
  EXPECT_TRUE(parseOrdering("natural", o));
  EXPECT_EQ(o, Ordering::Natural);
  EXPECT_TRUE(parseOrdering("amd", o));
  EXPECT_EQ(o, Ordering::Amd);
  EXPECT_FALSE(parseOrdering("auto", o));  // internal sentinel, not wire
  EXPECT_FALSE(parseOrdering("AMD", o));
  EXPECT_FALSE(parseOrdering("", o));
  EXPECT_EQ(o, Ordering::Amd);  // failed parses leave `out` untouched

  // Auto resolves through the innermost scoped override, then the default.
  EXPECT_EQ(resolveOrdering(Ordering::Natural), Ordering::Natural);
  const Ordering base = effectiveOrdering();
  {
    ScopedOrderingOverride ov(Ordering::Amd);
    EXPECT_EQ(effectiveOrdering(), Ordering::Amd);
    EXPECT_EQ(resolveOrdering(Ordering::Auto), Ordering::Amd);
    EXPECT_EQ(resolveOrdering(Ordering::Natural), Ordering::Natural);
    {
      ScopedOrderingOverride inner(Ordering::Natural);
      EXPECT_EQ(effectiveOrdering(), Ordering::Natural);
    }
    EXPECT_EQ(effectiveOrdering(), Ordering::Amd);
  }
  EXPECT_EQ(effectiveOrdering(), base);
}

TEST(Ordering, AmdOrderIsValidPermutationAndDeterministic) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const RCSR a(randomSparse(60, 0.08, seed, 3.0));
    const auto p1 = amdOrder(a.rows(), a.rowPtr(), narrowed(a.colIdx()));
    ASSERT_EQ(p1.size(), a.rows());
    std::vector<char> seen(a.rows(), 0);
    for (const std::uint32_t v : p1) {
      ASSERT_LT(v, a.rows());
      EXPECT_EQ(seen[v], 0) << "index " << v << " eliminated twice";
      seen[v] = 1;
    }
    const auto p2 = amdOrder(a.rows(), a.rowPtr(), narrowed(a.colIdx()));
    EXPECT_EQ(p1, p2);
  }
}

TEST(Ordering, AmdOrderHandlesEdgePatterns) {
  EXPECT_TRUE(amdOrder(0, {0}, {}).empty());
  // Diagonal-only (fully decoupled) pattern.
  const RCSR d(randomSparse(5, 0.0, 1, 1.0));
  EXPECT_EQ(amdOrder(5, d.rowPtr(), narrowed(d.colIdx())).size(), 5u);
}

TEST(SymbolicOrdering, AmdMatchesNaturalOnRandomSystems) {
  for (const std::uint64_t seed : {300u, 301u, 302u}) {
    const std::size_t n = 80;
    const RCSR a(randomSparse(n, 0.06, seed, 4.0));

    RSymbolicLU nat(a, {.ordering = Ordering::Natural});
    RSymbolicLU amd(a, {.ordering = Ordering::Amd});
    EXPECT_EQ(nat.orderingUsed(), Ordering::Natural);
    EXPECT_EQ(amd.orderingUsed(), Ordering::Amd);
    EXPECT_GE(amd.fillRatio(), 1.0);

    const RVec b = randomVec(n, seed + 5);
    const RVec xn = nat.solve(b);
    const RVec xa = amd.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xa[i], xn[i], 1e-9);
  }
}

TEST(SymbolicOrdering, AmdMatchesNaturalOnMesh) {
  const std::size_t k = 16;  // 256-node grid
  const RCSR a(gridLaplacian(k, 42));
  RSymbolicLU nat(a, {.ordering = Ordering::Natural});
  RSymbolicLU amd(a, {.ordering = Ordering::Amd});

  const RVec b = randomVec(k * k, 77);
  const RVec xn = nat.solve(b);
  const RVec xa = amd.solve(b);
  for (std::size_t i = 0; i < k * k; ++i)
    EXPECT_NEAR(xa[i], xn[i], 1e-9 * (1.0 + std::abs(xn[i])));

  // Residual check against the matrix itself (independent of pivot order).
  RVec r(k * k);
  a.multiply(xa, r);
  for (std::size_t i = 0; i < k * k; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

TEST(SparseLUOrdering, OneShotAmdMatchesNatural) {
  for (const std::uint64_t seed : {500u, 501u}) {
    const std::size_t n = 70;
    const auto t = randomSparse(n, 0.07, seed, 4.0);
    RSparseLU nat(t, {.ordering = Ordering::Natural});
    RSparseLU amd(t, {.ordering = Ordering::Amd});
    const RVec b = randomVec(n, seed + 9);
    const RVec xn = nat.solve(b);
    const RVec xa = amd.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xa[i], xn[i], 1e-9);
  }
}

TEST(ParallelRefactor, BitwiseIdenticalAcrossThreadCounts) {
  // The level schedule guarantees steps within a level touch disjoint
  // slots, so the replayed factor values — and therefore the solve — must
  // be EXACTLY equal for any pool size, including the serial program.
  const std::size_t k = 24;  // 576 nodes, deep elimination tree
  const RCSR a(gridLaplacian(k, 11));
  const std::size_t n = k * k;

  RSymbolicLU::Options o;
  o.ordering = Ordering::Amd;
  o.parallelMinFlops = 0;  // engage the parallel path regardless of size

  RSymbolicLU serial(a, o), two(a, o), eight(a, o);
  ASSERT_GT(serial.levelCount(), 1u);

  perf::ThreadPool pool2(2), pool8(8);
  two.setPool(&pool2);
  eight.setPool(&pool8);

  // Perturbed values over the same pattern → all three replay.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<Real> u(0.8, 1.2);
  RCSR aNew = a;
  for (auto& v : aNew.values()) v *= u(rng);

  ASSERT_EQ(serial.refactor(aNew.values()), diag::SolverStatus::Converged);
  ASSERT_EQ(two.refactor(aNew.values()), diag::SolverStatus::Converged);
  ASSERT_EQ(eight.refactor(aNew.values()), diag::SolverStatus::Converged);

  const RVec b = randomVec(n, 123);
  const RVec xs = serial.solve(b);
  const RVec x2 = two.solve(b);
  const RVec x8 = eight.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(xs[i], x2[i]) << "serial vs 2 lanes diverge at " << i;
    EXPECT_EQ(xs[i], x8[i]) << "serial vs 8 lanes diverge at " << i;
  }

  // Repeat with a second perturbation: steady-state replays stay bitwise.
  for (auto& v : aNew.values()) v *= u(rng);
  ASSERT_EQ(serial.refactor(aNew.values()), diag::SolverStatus::Converged);
  ASSERT_EQ(eight.refactor(aNew.values()), diag::SolverStatus::Converged);
  const RVec ys = serial.solve(b);
  const RVec y8 = eight.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ys[i], y8[i]);
}

TEST(ParallelRefactor, RepivotFallbackUnderPermutation) {
  // Collapse a recorded pivot: the (parallel) replay must detect it at the
  // level barrier, abort without dividing by the bad pivot, and fall back
  // to a fresh full factorization — same contract as the serial path.
  const std::size_t k = 10;
  RCSR a(gridLaplacian(k, 21));
  const std::size_t n = k * k;

  RSymbolicLU::Options o;
  o.ordering = Ordering::Amd;
  o.parallelMinFlops = 0;
  RSymbolicLU lu(a, o);
  perf::ThreadPool pool(4);
  lu.setPool(&pool);

  RCSR bad = a;
  for (std::size_t p = bad.rowPtr()[0]; p < bad.rowPtr()[1]; ++p)
    if (bad.colIdx()[p] == 0) bad.values()[p] = 1e-30;  // kill diag (0,0)
  EXPECT_EQ(lu.refactor(bad.values()), diag::SolverStatus::Repivoted);
  EXPECT_TRUE(lu.analyzed());

  const RVec b = randomVec(n, 31);
  const RVec x = lu.solve(b);
  RVec r(n);
  bad.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-8);

  // Healthy values replay cheaply again on the repivoted program.
  EXPECT_EQ(lu.refactor(bad.values()), diag::SolverStatus::Converged);
}

TEST(SymbolicOrdering, SingularRejectionUnchangedUnderAmd) {
  RTriplets t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 2.0);
  const RCSR a(t);
  RSymbolicLU lu(a, {.ordering = Ordering::Amd});
  ASSERT_TRUE(lu.analyzed());

  const std::vector<Real> singular{1.0, 1.0, 1.0, 1.0};  // rank 1
  EXPECT_THROW(lu.refactor(singular), NumericalError);
  EXPECT_FALSE(lu.analyzed());

  // And a singular matrix is rejected up front, exactly as in natural order.
  RTriplets s(2, 2);
  s.add(0, 0, 1.0);
  s.add(0, 1, 1.0);
  s.add(1, 0, 1.0);
  s.add(1, 1, 1.0);
  EXPECT_THROW(RSymbolicLU(RCSR(s), {.ordering = Ordering::Amd}),
               NumericalError);
  EXPECT_THROW(RSparseLU(s, {.ordering = Ordering::Amd}), NumericalError);
}

}  // namespace
}  // namespace rfic::sparse
