// Solver resilience layer: RunBudget semantics, the fault-injection
// matrix (engine × fault point ⇒ structured recovery or clean failure),
// checkpoint/restart bit-identity, retry ladders, and the Krylov
// stagnation detectors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>

#include "analysis/dc.hpp"
#include "analysis/shooting.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "diag/resilience.hpp"
#include "hb/harmonic_balance.hpp"
#include "mpde/envelope.hpp"
#include "mpde/mfdtd.hpp"
#include "perf/perf.hpp"
#include "phasenoise/jitter_mc.hpp"
#include "sparse/krylov.hpp"

namespace rfic {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

// Every test that arms the process-global injector clears it on both ends
// so a failing assertion cannot leak armed faults into later tests.
struct InjectorGuard {
  InjectorGuard() { diag::FaultInjector::global().reset(); }
  ~InjectorGuard() { diag::FaultInjector::global().reset(); }
};

std::string tempPath(const char* name) {
  return ::testing::TempDir() + name;
}

// ------------------------------------------------------------- RunBudget

TEST(RunBudget, NewtonLimitTripsAndSticks) {
  diag::RunBudget b;
  b.setNewtonLimit(10);
  for (int i = 0; i < 9; ++i) b.chargeNewton();
  EXPECT_FALSE(b.exceeded());
  b.chargeNewton();
  EXPECT_TRUE(b.exceeded());
  EXPECT_STREQ(b.reason(), "newton-iterations");
  // Sticky: still tripped even though no further work is charged.
  EXPECT_TRUE(b.exceeded());
  EXPECT_TRUE(diag::budgetExceeded(&b));
}

TEST(RunBudget, KrylovLimitTrips) {
  diag::RunBudget b;
  b.setKrylovLimit(3);
  b.chargeKrylov(3);
  EXPECT_TRUE(b.exceeded());
  EXPECT_STREQ(b.reason(), "krylov-iterations");
}

TEST(RunBudget, WallDeadlineTrips) {
  diag::RunBudget b;
  b.setWallLimit(1e-6);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(b.exceeded());
  EXPECT_STREQ(b.reason(), "wall-clock");
}

TEST(RunBudget, DisarmedAndNullNeverTrip) {
  diag::RunBudget b;
  b.chargeNewton(1000000);
  b.chargeKrylov(1000000);
  EXPECT_FALSE(b.exceeded());
  EXPECT_STREQ(b.reason(), "");
  EXPECT_FALSE(diag::budgetExceeded(nullptr));
  EXPECT_FALSE(diag::budgetExceeded(&b));
}

// --------------------------------------------------------- FaultInjector

TEST(FaultInjector, CountdownFiresExactly) {
  InjectorGuard guard;
  auto& inj = diag::FaultInjector::global();
  EXPECT_FALSE(inj.anyArmed());
  EXPECT_FALSE(inj.fire(diag::FaultPoint::KrylovStall));
  inj.arm(diag::FaultPoint::KrylovStall, 2);
  EXPECT_TRUE(inj.anyArmed());
  EXPECT_TRUE(inj.fire(diag::FaultPoint::KrylovStall));
  EXPECT_TRUE(inj.fire(diag::FaultPoint::KrylovStall));
  EXPECT_FALSE(inj.fire(diag::FaultPoint::KrylovStall));
  EXPECT_EQ(inj.firedCount(diag::FaultPoint::KrylovStall), 2u);
  // Arming one point does not arm the others.
  EXPECT_FALSE(inj.fire(diag::FaultPoint::NanInResidual));
}

TEST(FaultInjector, SpecParsing) {
  InjectorGuard guard;
  auto& inj = diag::FaultInjector::global();
  inj.arm("singular-jacobian:3");
  inj.arm("nan-in-residual");
  EXPECT_TRUE(inj.fire(diag::FaultPoint::NanInResidual));
  EXPECT_FALSE(inj.fire(diag::FaultPoint::NanInResidual));
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(inj.fire(diag::FaultPoint::SingularJacobian));
  EXPECT_FALSE(inj.fire(diag::FaultPoint::SingularJacobian));
  EXPECT_THROW(inj.arm("no-such-point"), InvalidArgument);
  EXPECT_THROW(inj.arm("krylov-stall:bogus"), InvalidArgument);
}

TEST(FaultInjector, BudgetExpiryInjectionTripsBudget) {
  InjectorGuard guard;
  diag::RunBudget b;
  EXPECT_FALSE(diag::budgetExceeded(&b));
  diag::FaultInjector::global().arm(diag::FaultPoint::BudgetExpiry, 1);
  EXPECT_TRUE(diag::budgetExceeded(&b));
  // The injected trip is sticky on the budget object.
  EXPECT_TRUE(b.exceeded());
  EXPECT_STREQ(b.reason(), "injected");
}

// ----------------------------------------------------------- Checkpoints

TEST(Checkpoint, TransientRoundtripIsBitExact) {
  diag::TransientCheckpoint ck;
  ck.steps = 123;
  ck.newtonIterations = 456;
  ck.retries = 7;
  ck.t = 1.0 / 3.0;
  ck.h = -0.0;                                       // signed zero preserved
  ck.hPrev = std::numeric_limits<Real>::denorm_min();
  ck.havePrev = true;
  ck.x = {1.0, -2.5e-300, 3.0e300};
  ck.xPrev = {0.1, 0.2, 0.3};
  ck.dynamicMask = {1, 0, 1};

  const std::string path = tempPath("ck_roundtrip.bin");
  ASSERT_TRUE(diag::saveCheckpoint(path, ck));
  diag::TransientCheckpoint out;
  ASSERT_TRUE(diag::loadCheckpoint(path, out));
  EXPECT_EQ(out.steps, ck.steps);
  EXPECT_EQ(out.newtonIterations, ck.newtonIterations);
  EXPECT_EQ(out.retries, ck.retries);
  EXPECT_EQ(out.havePrev, ck.havePrev);
  EXPECT_EQ(out.dynamicMask, ck.dynamicMask);
  // Bit-exact doubles, including -0.0 and the denormal.
  EXPECT_EQ(std::memcmp(&out.t, &ck.t, sizeof(Real)), 0);
  EXPECT_EQ(std::memcmp(&out.h, &ck.h, sizeof(Real)), 0);
  EXPECT_EQ(std::memcmp(&out.hPrev, &ck.hPrev, sizeof(Real)), 0);
  ASSERT_EQ(out.x.size(), ck.x.size());
  EXPECT_EQ(std::memcmp(out.x.data(), ck.x.data(), 3 * sizeof(Real)), 0);
  EXPECT_EQ(std::memcmp(out.xPrev.data(), ck.xPrev.data(), 3 * sizeof(Real)),
            0);
  std::remove(path.c_str());
}

TEST(Checkpoint, JitterRoundtrip) {
  diag::JitterCheckpoint ck;
  ck.totalPaths = 4;
  ck.pathCrossings = {{1.0, 2.0}, {}, {3.5}, {4.0, 5.0, 6.0}};
  const std::string path = tempPath("ck_jitter.bin");
  ASSERT_TRUE(diag::saveCheckpoint(path, ck));
  diag::JitterCheckpoint out;
  ASSERT_TRUE(diag::loadCheckpoint(path, out));
  EXPECT_EQ(out.totalPaths, 4u);
  EXPECT_EQ(out.pathCrossings, ck.pathCrossings);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingCorruptAndWrongKindFail) {
  diag::TransientCheckpoint out;
  EXPECT_FALSE(diag::loadCheckpoint(tempPath("ck_nonexistent.bin"), out));

  const std::string garbage = tempPath("ck_garbage.bin");
  {
    std::ofstream f(garbage, std::ios::binary);
    f << "definitely not a checkpoint";
  }
  EXPECT_FALSE(diag::loadCheckpoint(garbage, out));
  std::remove(garbage.c_str());

  // A jitter checkpoint must not load as a transient one.
  diag::JitterCheckpoint jck;
  jck.totalPaths = 1;
  jck.pathCrossings = {{1.0}};
  const std::string wrong = tempPath("ck_wrongkind.bin");
  ASSERT_TRUE(diag::saveCheckpoint(wrong, jck));
  EXPECT_FALSE(diag::loadCheckpoint(wrong, out));
  std::remove(wrong.c_str());
}

// ------------------------------------------------------------ DC engine

// Nonlinear one-port whose current is finite only inside |v| <= wall: any
// Newton trial beyond the wall evaluates to NaN, exercising the damped-
// update finiteness handling without fault injection.
class NanWall final : public Device {
 public:
  NanWall(std::string name, int node, Real wall)
      : Device(std::move(name)), n_(node), wall_(wall) {}
  void stamp(const RVec& x, const RVec*, Stamp& s) const override {
    const Real v = nodeVoltage(x, n_);
    const Real i =
        std::abs(v) <= wall_ ? v : std::numeric_limits<Real>::quiet_NaN();
    s.addF(n_, i);
    if (s.wantMatrices()) s.addG(n_, n_, 1.0);
  }

 private:
  int n_;
  Real wall_;
};

// Regression for the damping-cap bug: the damp == 8 rung used to accept
// whatever trial was last computed, finite or not, planting a NaN state
// that every later iteration inherited. A non-finite trial at the cap must
// now be a clean Diverged.
TEST(DCResilience, DampingNeverAcceptsNonFiniteTrial) {
  Circuit c;
  const int n = c.node("n");
  c.add<NanWall>("W1", n, 1e-3);
  // 2 A forced in: the full Newton step lands at 2 V; even alpha = 1/256
  // leaves the trial at ~7.8 mV, beyond the 1 mV wall, so every damping
  // rung evaluates to NaN.
  c.add<ISource>("I1", -1, n, std::make_shared<DCWave>(2.0));
  MnaSystem sys(c);
  RVec x(1, 0.0);
  std::size_t iters = 0;
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  analysis::DCOptions opts;
  EXPECT_FALSE(analysis::dcNewton(sys, x, 1.0, 0.0, opts, iters, &status));
  EXPECT_EQ(status, diag::SolverStatus::Diverged);
  // The iterate was never replaced by a NaN trial.
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_EQ(x[0], 0.0);
}

Circuit makeDiodeDC() {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(0.7));
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Resistor>("RL", out, -1, 1e3);
  return c;
}

TEST(DCResilience, NanResidualFaultRecoversViaContinuation) {
  InjectorGuard guard;
  Circuit c = makeDiodeDC();
  MnaSystem sys(c);
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1);
  const auto res = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(res.converged);
  // The poisoned plain-Newton strategy failed structurally and a
  // continuation strategy finished the job.
  EXPECT_NE(res.strategy, "newton");
  EXPECT_EQ(
      diag::FaultInjector::global().firedCount(diag::FaultPoint::NanInResidual),
      1u);
  EXPECT_GE(res.perf.fallbacks, 1u);
}

TEST(DCResilience, SingularJacobianFaultRecoversViaContinuation) {
  InjectorGuard guard;
  Circuit c = makeDiodeDC();
  MnaSystem sys(c);
  diag::FaultInjector::global().arm(diag::FaultPoint::SingularJacobian, 1);
  const auto res = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(res.converged);
  EXPECT_NE(res.strategy, "newton");
}

TEST(DCResilience, PersistentNanFaultFailsCleanly) {
  InjectorGuard guard;
  Circuit c = makeDiodeDC();
  MnaSystem sys(c);
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1000000);
  // Every strategy is poisoned: the clean failure is the documented throw,
  // not a NaN result or a hang.
  EXPECT_THROW(analysis::dcOperatingPoint(sys), NumericalError);
}

TEST(DCResilience, BudgetExceededReturnsPartial) {
  Circuit c = makeDiodeDC();
  MnaSystem sys(c);
  diag::RunBudget b;
  b.setNewtonLimit(2);
  analysis::DCOptions opts;
  opts.budget = &b;
  const auto res = analysis::dcOperatingPoint(sys, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::BudgetExceeded);
  EXPECT_TRUE(b.exceeded());
}

// ------------------------------------------------------ transient engine

struct RCSine {
  Circuit c;
  std::unique_ptr<MnaSystem> sys;
  RCSine() {
    const int in = c.node("in"), out = c.node("out");
    const int br = c.allocBranch("V1");
    c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e4));
    c.add<Resistor>("R1", in, out, 1e3);
    c.add<Capacitor>("C1", out, -1, 1e-7);  // tau = 0.1 ms
    sys = std::make_unique<MnaSystem>(c);
  }
};

TEST(TransientResilience, NanResidualFaultRetriesInFixedStepMode) {
  InjectorGuard guard;
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 2e-4;
  to.dt = 1e-6;
  to.adaptive = false;  // the dt-cut retry must work WITHOUT LTE control
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1);
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_TRUE(tr.ok);
  EXPECT_EQ(tr.status, diag::SolverStatus::Converged);
  EXPECT_GE(tr.retries, 1u);
  for (const Real v : tr.x.back()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TransientResilience, SingularJacobianFaultRetries) {
  InjectorGuard guard;
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 2e-4;
  to.dt = 1e-6;
  diag::FaultInjector::global().arm(diag::FaultPoint::SingularJacobian, 1);
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_TRUE(tr.ok);
  EXPECT_GE(tr.retries, 1u);
}

TEST(TransientResilience, PersistentFailureEndsInStepLimitNotLoop) {
  InjectorGuard guard;
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 1e-3;
  to.dt = 1e-6;  // dtMin defaults to dt/1e6: ~20 halvings to collapse
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1000000);
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_FALSE(tr.ok);
  EXPECT_EQ(tr.status, diag::SolverStatus::StepLimit);
  EXPECT_GE(tr.retries, 10u);
  EXPECT_LE(tr.retries, 64u);  // bounded: log2(dt/dtMin) halvings, not a spin
}

TEST(TransientResilience, AdaptiveDtMinCollapseHasStatus) {
  InjectorGuard guard;
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 1e-3;
  to.dt = 1e-6;
  to.adaptive = true;
  to.dtMin = 1e-9;
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1000000);
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_FALSE(tr.ok);
  EXPECT_EQ(tr.status, diag::SolverStatus::StepLimit);
}

TEST(TransientResilience, LteRejectionStormStillCompletes) {
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 5e-4;
  to.dt = 4e-6;
  to.adaptive = true;
  to.reltol = 1e-7;  // tight enough that the controller keeps rejecting
  to.abstol = 1e-12;
  to.dtMin = 1e-11;
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_TRUE(tr.ok);
  EXPECT_EQ(tr.status, diag::SolverStatus::Converged);
  EXPECT_GE(tr.retries, 1u);  // rejected steps are counted, not hidden
}

TEST(TransientResilience, BudgetTripSavesCheckpointAndReturnsPartial) {
  RCSine f;
  const std::string path = tempPath("ck_budget_tran.bin");
  diag::RunBudget b;
  b.setNewtonLimit(40);
  analysis::TransientOptions to;
  to.tstop = 1e-3;
  to.dt = 1e-6;
  to.budget = &b;
  to.checkpointPath = path;
  const auto tr = analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  EXPECT_FALSE(tr.ok);
  EXPECT_EQ(tr.status, diag::SolverStatus::BudgetExceeded);
  EXPECT_GT(tr.steps, 0u);
  diag::TransientCheckpoint ck;
  ASSERT_TRUE(diag::loadCheckpoint(path, ck));
  EXPECT_EQ(ck.steps, tr.steps);
  EXPECT_LT(ck.t, to.tstop);
  std::remove(path.c_str());
}

TEST(TransientResilience, CheckpointResumeIsBitIdentical) {
  const std::string path = tempPath("ck_resume_tran.bin");
  analysis::TransientOptions to;
  to.tstop = 1e-3;
  to.dt = 2e-6;
  to.adaptive = true;
  to.method = analysis::IntegrationMethod::gear2;
  // The rebuild (non-pattern-cached) pipeline factors each step from
  // scratch, so the resumed run replays exactly the arithmetic the
  // uninterrupted run performs. (The pattern cache picks its pivot order at
  // the first factorization after the start point, which is a different
  // state for the resumed run.)
  to.patternCache = false;

  RCSine a;
  const auto full = analysis::runTransient(*a.sys, RVec(a.sys->dim(), 0.0), to);
  ASSERT_TRUE(full.ok);

  // Interrupt mid-run via a Newton budget; the trip saves the checkpoint.
  RCSine b;
  diag::RunBudget budget;
  budget.setNewtonLimit(200);
  analysis::TransientOptions toStop = to;
  toStop.budget = &budget;
  toStop.checkpointPath = path;
  const auto part =
      analysis::runTransient(*b.sys, RVec(b.sys->dim(), 0.0), toStop);
  ASSERT_EQ(part.status, diag::SolverStatus::BudgetExceeded);
  ASSERT_GT(part.steps, 0u);
  ASSERT_LT(part.steps, full.steps);

  RCSine c;
  analysis::TransientOptions toResume = to;
  toResume.checkpointPath = path;
  toResume.resume = true;
  const auto rest =
      analysis::runTransient(*c.sys, RVec(c.sys->dim(), 0.0), toResume);
  ASSERT_TRUE(rest.ok);

  // Identical step count and bit-identical final state/time.
  EXPECT_EQ(rest.steps, full.steps);
  EXPECT_EQ(rest.newtonIterations, full.newtonIterations);
  EXPECT_EQ(std::memcmp(&rest.time.back(), &full.time.back(), sizeof(Real)),
            0);
  const RVec& xr = rest.x.back();
  const RVec& xf = full.x.back();
  ASSERT_EQ(xr.size(), xf.size());
  for (std::size_t i = 0; i < xr.size(); ++i)
    EXPECT_EQ(std::memcmp(&xr[i], &xf[i], sizeof(Real)), 0) << "unknown " << i;
  std::remove(path.c_str());
}

TEST(TransientResilience, ResumeWithoutFileThrowsInvalid) {
  RCSine f;
  analysis::TransientOptions to;
  to.tstop = 1e-4;
  to.dt = 1e-6;
  to.checkpointPath = tempPath("ck_never_written.bin");
  to.resume = true;
  EXPECT_THROW(analysis::runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to),
               InvalidArgument);
}

// -------------------------------------------------------- Krylov solvers

// Cyclic shift Pₓ[i] = x[(i+1) mod n]: GMRES(m) with m < n cannot reduce
// the residual for b = e₁ at all within a restart cycle, so the
// per-cycle detector must classify the solve as Stagnated instead of
// burning maxIterations.
TEST(KrylovStagnation, GmresDetectsStagnationPerRestartCycle) {
  const std::size_t n = 16;
  sparse::FunctionOperator<Real> shift(
      n, [n](const numeric::RVec& x, numeric::RVec& y) {
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i) y[i] = x[(i + 1) % n];
      });
  numeric::RVec bvec(n, 0.0);
  bvec[0] = 1.0;
  numeric::RVec x(n, 0.0);
  sparse::IterativeOptions opts;
  opts.restart = 4;
  opts.maxIterations = 500;
  const auto res = sparse::gmres<Real>(shift, bvec, x, nullptr, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::Stagnated);
  EXPECT_LT(res.iterations, opts.maxIterations);
}

// Hilbert matrix H(i,j) = 1/(i+j+1): SPD but with κ ≈ 1e28 at n = 20, so
// the attainable residual floors many orders above a 1e-14 target — the
// classic "CG stalls" example. The best-residual window must classify the
// solve as Stagnated instead of burning the iteration cap.
sparse::FunctionOperator<Real> hilbertOperator(std::size_t n) {
  return sparse::FunctionOperator<Real>(
      n, [n](const numeric::RVec& x, numeric::RVec& y) {
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          Real s = 0;
          for (std::size_t j = 0; j < n; ++j)
            s += x[j] / static_cast<Real>(i + j + 1);
          y[i] = s;
        }
      });
}

TEST(KrylovStagnation, BicgstabWindowTripsOnHilbert) {
  const std::size_t n = 20;
  const auto hilb = hilbertOperator(n);
  numeric::RVec bvec(n, 1.0);
  numeric::RVec x(n, 0.0);
  sparse::IterativeOptions opts;
  opts.tolerance = 1e-14;
  opts.maxIterations = 5000;
  opts.stagnationWindow = 25;
  const auto res = sparse::bicgstab<Real>(hilb, bvec, x, nullptr, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::Stagnated) << res.statusName();
  EXPECT_LT(res.iterations, opts.maxIterations);
}

TEST(KrylovStagnation, CgWindowTripsOnHilbert) {
  const std::size_t n = 20;
  const auto hilb = hilbertOperator(n);
  numeric::RVec bvec(n, 1.0);
  numeric::RVec x(n, 0.0);
  sparse::IterativeOptions opts;
  opts.tolerance = 1e-14;
  opts.maxIterations = 5000;
  opts.stagnationWindow = 25;
  const auto res = sparse::conjugateGradient(hilb, bvec, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::Stagnated) << res.statusName();
  EXPECT_LT(res.iterations, opts.maxIterations);
}

TEST(KrylovStagnation, StallInjectionForcesStagnatedStatus) {
  InjectorGuard guard;
  const std::size_t n = 8;
  sparse::FunctionOperator<Real> ident(
      n, [](const numeric::RVec& x, numeric::RVec& y) { y = x; });
  numeric::RVec bvec(n, 1.0), x(n, 0.0);
  diag::FaultInjector::global().arm(diag::FaultPoint::KrylovStall, 3);
  EXPECT_EQ(sparse::gmres<Real>(ident, bvec, x, nullptr, {}).status,
            diag::SolverStatus::Stagnated);
  EXPECT_EQ(sparse::bicgstab<Real>(ident, bvec, x, nullptr, {}).status,
            diag::SolverStatus::Stagnated);
  EXPECT_EQ(sparse::conjugateGradient(ident, bvec, x, {}).status,
            diag::SolverStatus::Stagnated);
  // Charges consumed: a fresh solve converges normally.
  EXPECT_TRUE(sparse::gmres<Real>(ident, bvec, x, nullptr, {}).converged);
}

TEST(KrylovBudget, TrippedBudgetStopsSolve) {
  const std::size_t n = 8;
  sparse::FunctionOperator<Real> ident(
      n, [](const numeric::RVec& x, numeric::RVec& y) { y = x; });
  numeric::RVec bvec(n, 1.0), x(n, 0.0);
  diag::RunBudget b;
  b.setKrylovLimit(3);
  b.chargeKrylov(5);  // pre-tripped
  sparse::IterativeOptions opts;
  opts.budget = &b;
  EXPECT_EQ(sparse::gmres<Real>(ident, bvec, x, nullptr, opts).status,
            diag::SolverStatus::BudgetExceeded);
  EXPECT_EQ(sparse::bicgstab<Real>(ident, bvec, x, nullptr, opts).status,
            diag::SolverStatus::BudgetExceeded);
  EXPECT_EQ(sparse::conjugateGradient(ident, bvec, x, opts).status,
            diag::SolverStatus::BudgetExceeded);
}

// ------------------------------------------------------------ HB engine

Circuit makeRectifier(Real amplitude) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br,
                 std::make_shared<SineWave>(amplitude, 1e4));
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Resistor>("RL", out, -1, 1e4);
  c.add<Capacitor>("CL", out, -1, 1e-8);
  return c;
}

// Acceptance scenario: a drive level the base Newton attempt cannot handle
// converges through the source-amplitude ramp rung, and the solution
// records which rung produced it.
TEST(HBResilience, SourceRampLadderRescuesHardDrive) {
  Circuit c = makeRectifier(40.0);
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  hb::HBOptions ho;
  ho.continuationSteps = 1;  // base attempt: no ramp
  ho.maxNewton = 25;
  hb::HarmonicBalance eng(sys, {{1e4, 12}}, ho);

  // The base configuration alone must fail on this drive (otherwise the
  // scenario is vacuous) ...
  hb::HBOptions noLadder = ho;
  noLadder.maxRetries = 0;
  hb::HarmonicBalance bare(sys, {{1e4, 12}}, noLadder);
  const auto base = bare.solve(dc.x);
  ASSERT_FALSE(base.converged);
  EXPECT_EQ(base.strategy, "base");

  // ... and the ladder must rescue it via the deeper source ramp.
  const auto sol = eng.solve(dc.x);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.strategy, "source-ramp");
  EXPECT_GE(sol.retries, 1u);
  EXPECT_GE(sol.perf.retries, 1u);
  // Rectified output: positive DC at the load.
  EXPECT_GT(sol.at(static_cast<std::size_t>(c.findNode("out")), 0).real(),
            1.0);
}

TEST(HBResilience, NanResidualFaultRecoversViaLadder) {
  InjectorGuard guard;
  Circuit c = makeRectifier(1.0);
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  hb::HBOptions ho;
  ho.continuationSteps = 1;
  diag::FaultInjector::global().arm(diag::FaultPoint::NanInResidual, 1);
  hb::HarmonicBalance eng(sys, {{1e4, 8}}, ho);
  const auto sol = eng.solve(dc.x);
  EXPECT_TRUE(sol.converged);
  EXPECT_NE(sol.strategy, "base");
  EXPECT_GE(sol.retries, 1u);
}

TEST(HBResilience, BudgetExceededSuppressesLadder) {
  Circuit c = makeRectifier(1.0);
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  diag::RunBudget b;
  b.setNewtonLimit(1);
  hb::HBOptions ho;
  ho.budget = &b;
  hb::HarmonicBalance eng(sys, {{1e4, 8}}, ho);
  const auto sol = eng.solve(dc.x);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.status, diag::SolverStatus::BudgetExceeded);
  // The ladder must not keep escalating once the budget is gone.
  EXPECT_EQ(sol.strategy, "base");
  EXPECT_EQ(sol.retries, 0u);
}

// ------------------------------------------------------ shooting engine

TEST(ShootingResilience, SingularJacobianFaultRetriesAndConverges) {
  InjectorGuard guard;
  Circuit c = makeRectifier(1.0);
  MnaSystem sys(c);
  analysis::ShootingOptions so;
  so.stepsPerPeriod = 400;
  diag::FaultInjector::global().arm(diag::FaultPoint::SingularJacobian, 1);
  const auto pss =
      analysis::shootingPSS(sys, 1e-4, RVec(sys.dim(), 0.0), so);
  EXPECT_TRUE(pss.converged);
  EXPECT_EQ(pss.status, diag::SolverStatus::Converged);
  EXPECT_EQ(pss.retries, 1u);
}

TEST(ShootingResilience, BudgetExceededSuppressesRetries) {
  Circuit c = makeRectifier(1.0);
  MnaSystem sys(c);
  diag::RunBudget b;
  b.setNewtonLimit(1);
  analysis::ShootingOptions so;
  so.stepsPerPeriod = 100;
  so.budget = &b;
  const auto pss =
      analysis::shootingPSS(sys, 1e-4, RVec(sys.dim(), 0.0), so);
  EXPECT_FALSE(pss.converged);
  EXPECT_EQ(pss.status, diag::SolverStatus::BudgetExceeded);
  EXPECT_EQ(pss.retries, 0u);
}

// ------------------------------------------- MPDE engines (fast BVP/MFDTD)

// Rectifier whose drive lives on the FAST axis: solveEnvelopeStep freezes
// slow time, so a slow-axis source would leave the fast system undriven
// (y = 0 solves it exactly and the Newton loop never runs).
Circuit makeFastRectifier(Real amplitude) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(amplitude, 1e4),
                 TimeAxis::fast);
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Resistor>("RL", out, -1, 1e4);
  c.add<Capacitor>("CL", out, -1, 1e-8);
  return c;
}

TEST(MpdeResilience, FastPeriodicRetriesInjectedSingularJacobian) {
  InjectorGuard guard;
  Circuit c = makeFastRectifier(0.5);
  MnaSystem sys(c);
  mpde::FastPeriodicOptions fo;
  diag::FaultInjector::global().arm(diag::FaultPoint::SingularJacobian, 1);
  const auto res = mpde::solveEnvelopeStep(sys, 0.0, 1e4, 64, 0.0, nullptr,
                                           RVec(sys.dim(), 0.0), fo);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::Converged);
  EXPECT_EQ(res.retries, 1u);
}

TEST(MpdeResilience, FastPeriodicBudgetExceeded) {
  Circuit c = makeFastRectifier(0.5);
  MnaSystem sys(c);
  diag::RunBudget b;
  b.setNewtonLimit(1);
  mpde::FastPeriodicOptions fo;
  fo.budget = &b;
  const auto res = mpde::solveEnvelopeStep(sys, 0.0, 1e4, 32, 0.0, nullptr,
                                           RVec(sys.dim(), 0.0), fo);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::BudgetExceeded);
  EXPECT_EQ(res.retries, 0u);
}

Circuit makeTwoToneMpde() {
  Circuit c;
  const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
  const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
  c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.1, 1.0e6),
                 TimeAxis::slow);
  c.add<VSource>("V2", s2, a, br2, std::make_shared<SineWave>(0.1, 1.37e6),
                 TimeAxis::fast);
  c.add<Resistor>("Rs", s2, b, 1000.0);
  c.add<CubicConductance>("GN", b, -1, 1e-3, 1e-2);
  c.add<Capacitor>("Cb", b, -1, 1e-11);
  return c;
}

TEST(MpdeResilience, MfdtdBudgetExceededReturnsStructured) {
  Circuit c = makeTwoToneMpde();
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  diag::RunBudget b;
  b.setNewtonLimit(1);
  mpde::MFDTDOptions mo;
  mo.m1 = 4;
  mo.m2 = 8;
  mo.budget = &b;
  const auto res = mpde::runMFDTD(sys, 1.0e6, 1.37e6, dc.x, mo);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::BudgetExceeded);
}

TEST(MpdeResilience, MfdtdKrylovStallRetriesAndConverges) {
  InjectorGuard guard;
  Circuit c = makeTwoToneMpde();
  MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  mpde::MFDTDOptions mo;
  mo.m1 = 4;
  mo.m2 = 8;
  mo.useIterativeSolver = true;
  diag::FaultInjector::global().arm(diag::FaultPoint::KrylovStall, 1);
  const auto res = mpde::runMFDTD(sys, 1.0e6, 1.37e6, dc.x, mo);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.status, diag::SolverStatus::Converged);
  EXPECT_EQ(res.retries, 1u);
}

// ------------------------------------------------------------- jitter MC

struct VdpForJitter {
  Circuit c;
  std::unique_ptr<MnaSystem> sys;
  analysis::PSSResult pss;
  VdpForJitter() {
    const int v = c.node("v");
    const int br = c.allocBranch("L1");
    c.add<Capacitor>("C1", v, -1, 1e-9);
    c.add<Inductor>("L1", v, -1, br, 1e-6);
    c.add<Resistor>("Rl", v, -1, 2000.0);
    c.add<CubicConductance>("GN", v, -1, -2e-3, 1e-3);
    sys = std::make_unique<MnaSystem>(c);
    // monteCarloJitter only reads (converged, period, x0); the paths find
    // the limit cycle themselves, so a synthetic starting point is enough.
    pss.converged = true;
    pss.period = kTwoPi * std::sqrt(1e-9 * 1e-6);
    pss.x0 = RVec(sys->dim(), 0.0);
    pss.x0[0] = 0.5;
  }
};

TEST(JitterResilience, CheckpointResumeSkipsFinishedPaths) {
  VdpForJitter f;
  const std::string path = tempPath("ck_jitter_mc.bin");
  phasenoise::JitterMCOptions jo;
  jo.paths = 10;
  jo.cycles = 8;
  jo.stepsPerCycle = 120;
  jo.noiseScale = 1e6;
  jo.seed = 2024;
  jo.checkpointPath = path;
  const auto first = phasenoise::monteCarloJitter(*f.sys, f.pss, 0, 0.0,
                                                  1e-20, jo);
  ASSERT_EQ(first.status, diag::SolverStatus::Converged);
  ASSERT_GE(first.usedPaths, 8u);
  EXPECT_EQ(first.resumedPaths, 0u);

  jo.resume = true;
  const auto again = phasenoise::monteCarloJitter(*f.sys, f.pss, 0, 0.0,
                                                  1e-20, jo);
  EXPECT_EQ(again.resumedPaths, 10u);  // every path restored, none re-run
  EXPECT_EQ(again.usedPaths, first.usedPaths);
  // Path-granular determinism: identical ensemble ⇒ bit-identical slope.
  EXPECT_EQ(std::memcmp(&again.slopePerCycle, &first.slopePerCycle,
                        sizeof(Real)),
            0);
  std::remove(path.c_str());
}

TEST(JitterResilience, TrippedBudgetReturnsPartialWithoutThrow) {
  VdpForJitter f;
  diag::RunBudget b;
  b.setNewtonLimit(1);
  b.chargeNewton(2);  // pre-tripped: every path is skipped
  phasenoise::JitterMCOptions jo;
  jo.paths = 10;
  jo.cycles = 4;
  jo.stepsPerCycle = 50;
  jo.budget = &b;
  const auto res = phasenoise::monteCarloJitter(*f.sys, f.pss, 0, 0.0,
                                                1e-20, jo);
  EXPECT_EQ(res.status, diag::SolverStatus::BudgetExceeded);
  EXPECT_EQ(res.usedPaths, 0u);
  EXPECT_TRUE(res.cycleIndex.empty());
}

// ---------------------------------------------------------- perf counters

TEST(PerfCounters, RetryAndFallbackCountersFlowToSnapshot) {
  const auto before = perf::global().snapshot();
  perf::global().addRetry();
  perf::global().addFallback();
  const auto after = perf::global().snapshot();
  EXPECT_EQ(after.retries, before.retries + 1);
  EXPECT_EQ(after.fallbacks, before.fallbacks + 1);
  const std::string report = perf::format(after);
  EXPECT_NE(report.find("retries"), std::string::npos);
  EXPECT_NE(report.find("fallbacks"), std::string::npos);
}

}  // namespace
}  // namespace rfic
