// Transient integration: analytic RC/RLC references, method convergence
// orders, adaptive stepping, sensitivity propagation, and the stochastic
// (noisy) integrator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/dc.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::analysis {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

struct RCFixture {
  Circuit c;
  int in = 0, out = 0, br = 0;
  MnaSystem* sys = nullptr;
  std::unique_ptr<MnaSystem> holder;

  explicit RCFixture(std::shared_ptr<const Waveform> w) {
    in = c.node("in");
    out = c.node("out");
    br = c.allocBranch("V1");
    c.add<VSource>("V1", in, -1, br, std::move(w));
    c.add<Resistor>("R1", in, out, 1000.0);
    c.add<Capacitor>("C1", out, -1, 1e-6);  // tau = 1 ms
    holder = std::make_unique<MnaSystem>(c);
    sys = holder.get();
  }
};

TEST(Transient, RCStepResponseMatchesAnalytic) {
  RCFixture f(std::make_shared<DCWave>(1.0));
  TransientOptions to;
  to.tstop = 3e-3;
  to.dt = 5e-6;
  RVec x0(f.sys->dim(), 0.0);
  x0[static_cast<std::size_t>(f.in)] = 1.0;
  const auto tr = runTransient(*f.sys, x0, to);
  ASSERT_TRUE(tr.ok);
  for (std::size_t k = 0; k < tr.time.size(); k += 50) {
    const Real expct = 1.0 - std::exp(-tr.time[k] / 1e-3);
    EXPECT_NEAR(tr.x[k][static_cast<std::size_t>(f.out)], expct, 2e-4);
  }
}

class MethodOrder : public ::testing::TestWithParam<IntegrationMethod> {};

TEST_P(MethodOrder, ErrorDropsWithStep) {
  // Halving dt should reduce the final-time error by ~2× (BE) or ~4×
  // (trap/gear2).
  const auto method = GetParam();
  auto runWith = [&](Real dt) {
    RCFixture f(std::make_shared<DCWave>(1.0));
    TransientOptions to;
    to.tstop = 1e-3;
    to.dt = dt;
    to.method = method;
    RVec x0(f.sys->dim(), 0.0);
    x0[static_cast<std::size_t>(f.in)] = 1.0;
    const auto tr = runTransient(*f.sys, x0, to);
    EXPECT_TRUE(tr.ok);
    return std::abs(tr.x.back()[static_cast<std::size_t>(f.out)] -
                    (1.0 - std::exp(-1.0)));
  };
  const Real e1 = runWith(2e-5);
  const Real e2 = runWith(1e-5);
  const Real order = std::log2(e1 / e2);
  if (method == IntegrationMethod::backwardEuler) {
    EXPECT_NEAR(order, 1.0, 0.35);
  } else {
    EXPECT_GT(order, 1.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodOrder,
                         ::testing::Values(IntegrationMethod::backwardEuler,
                                           IntegrationMethod::trapezoidal,
                                           IntegrationMethod::gear2));

TEST(Transient, RLCRingingMatchesAnalytic) {
  // Series RLC: L = 1 mH, C = 1 uF, R = 20 → underdamped.
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  const int br = c.allocBranch("L1");
  c.add<Resistor>("R1", a, b, 20.0);
  c.add<Inductor>("L1", b, -1, br, 1e-3);
  c.add<Capacitor>("C1", a, -1, 1e-6);
  MnaSystem sys(c);
  // Initial condition: capacitor charged to 1 V.
  RVec x0(sys.dim(), 0.0);
  x0[static_cast<std::size_t>(a)] = 1.0;
  x0[static_cast<std::size_t>(b)] = 1.0;
  TransientOptions to;
  to.tstop = 2e-4;
  to.dt = 5e-8;
  const auto tr = runTransient(sys, x0, to);
  ASSERT_TRUE(tr.ok);
  // v_C(t) = e^{-αt}(cos(ωd t) + α/ωd sin(ωd t)), α = R/2L, ωd = sqrt(1/LC − α²)
  const Real alpha = 20.0 / (2 * 1e-3);
  const Real wd = std::sqrt(1.0 / (1e-3 * 1e-6) - alpha * alpha);
  for (std::size_t k = 100; k < tr.time.size(); k += 400) {
    const Real t = tr.time[k];
    const Real expct = std::exp(-alpha * t) *
                       (std::cos(wd * t) + alpha / wd * std::sin(wd * t));
    EXPECT_NEAR(tr.x[k][static_cast<std::size_t>(a)], expct, 5e-3);
  }
}

TEST(Transient, SineDriveSteadyStateAmplitude) {
  RCFixture f(std::make_shared<SineWave>(1.0, 1000.0));
  TransientOptions to;
  to.tstop = 10e-3;  // 10 tau: transient decayed
  to.dt = 2e-6;
  const auto tr = runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to);
  ASSERT_TRUE(tr.ok);
  Real amp = 0;
  for (std::size_t k = tr.time.size() / 2; k < tr.time.size(); ++k)
    amp = std::max(amp, std::abs(tr.x[k][static_cast<std::size_t>(f.out)]));
  const Real wrc = kTwoPi * 1000.0 * 1e-3;
  EXPECT_NEAR(amp, 1.0 / std::sqrt(1.0 + wrc * wrc), 2e-3);
}

TEST(Transient, AdaptiveUsesFewerStepsOnSmoothProblem) {
  RCFixture fixed(std::make_shared<DCWave>(1.0));
  TransientOptions to;
  to.tstop = 5e-3;
  to.dt = 1e-6;
  RVec x0(fixed.sys->dim(), 0.0);
  x0[static_cast<std::size_t>(fixed.in)] = 1.0;
  const auto trFixed = runTransient(*fixed.sys, x0, to);

  RCFixture adapt(std::make_shared<DCWave>(1.0));
  to.adaptive = true;
  to.reltol = 1e-3;
  const auto trAdapt = runTransient(*adapt.sys, x0, to);
  ASSERT_TRUE(trFixed.ok);
  ASSERT_TRUE(trAdapt.ok);
  // Adaptive never takes MORE steps than fixed at the same base dt cap,
  // and the answer stays accurate.
  EXPECT_LE(trAdapt.steps, trFixed.steps);
  EXPECT_NEAR(trAdapt.x.back()[static_cast<std::size_t>(adapt.out)],
              1.0 - std::exp(-5.0), 5e-3);
}

TEST(Transient, DiodeRectifierChargesCapacitor) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(5.0, 1000.0));
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Capacitor>("CL", out, -1, 1e-6);
  c.add<Resistor>("RL", out, -1, 100000.0);
  MnaSystem sys(c);
  TransientOptions to;
  to.tstop = 5e-3;
  to.dt = 1e-6;
  const auto tr = runTransient(sys, RVec(sys.dim(), 0.0), to);
  ASSERT_TRUE(tr.ok);
  const Real vpk = tr.x.back()[static_cast<std::size_t>(out)];
  EXPECT_GT(vpk, 3.9);  // ≈ 5 − Vdiode with light droop
  EXPECT_LT(vpk, 5.0);
}

TEST(Transient, SensitivityMatchesPerturbation) {
  RCFixture f(std::make_shared<DCWave>(0.0));
  const std::size_t n = f.sys->dim();
  RVec x0(n, 0.0);
  x0[static_cast<std::size_t>(f.out)] = 1.0;  // charged cap, decaying
  numeric::RMat sens = numeric::RMat::identity(n);
  RVec x1;
  const Real h = 1e-5;
  ASSERT_TRUE(integrateStep(*f.sys, IntegrationMethod::backwardEuler, 0.0, h,
                            x0, nullptr, x1, &sens));
  // Perturb the capacitor voltage and re-integrate.
  RVec x0p = x0;
  const Real dv = 1e-6;
  x0p[static_cast<std::size_t>(f.out)] += dv;
  RVec x1p;
  ASSERT_TRUE(integrateStep(*f.sys, IntegrationMethod::backwardEuler, 0.0, h,
                            x0p, nullptr, x1p, nullptr));
  for (std::size_t i = 0; i < n; ++i) {
    const Real fd = (x1p[i] - x1[i]) / dv;
    EXPECT_NEAR(sens(i, static_cast<std::size_t>(f.out)), fd, 1e-5);
  }
}

TEST(Transient, InvalidOptionsThrow) {
  RCFixture f(std::make_shared<DCWave>(1.0));
  TransientOptions to;  // tstop = 0
  EXPECT_THROW(runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to),
               InvalidArgument);
  to.tstop = 1e-3;
  to.dt = 0.0;
  EXPECT_THROW(runTransient(*f.sys, RVec(f.sys->dim(), 0.0), to),
               InvalidArgument);
}

TEST(NoisyTransient, ZeroNoiseMatchesDeterministic) {
  // A purely reactive circuit (no resistor noise sources): the stochastic
  // integrator must reproduce the deterministic BE trajectory.
  Circuit c;
  const int a = c.node("a");
  c.add<Capacitor>("C1", a, -1, 1e-9);
  c.add<ISource>("I1", -1, a, std::make_shared<DCWave>(1e-6));
  MnaSystem sys(c);
  TransientOptions to;
  to.tstop = 1e-6;
  to.dt = 1e-9;
  const auto det = runTransient(sys, RVec(1, 0.0), to);
  TransientOptions tn = to;
  tn.method = IntegrationMethod::backwardEuler;
  const auto sto = runNoisyTransient(sys, RVec(1, 0.0), tn, 99);
  ASSERT_TRUE(det.ok);
  ASSERT_TRUE(sto.ok);
  EXPECT_NEAR(sto.x.back()[0], det.x.back()[0], 1e-9);
}

TEST(NoisyTransient, ResistorNoiseProducesExpectedVariance) {
  // RC driven only by its own thermal noise: stationary variance of the
  // capacitor voltage is kT/C (equipartition).
  Circuit c;
  const int a = c.node("a");
  c.add<Resistor>("R1", a, -1, 1e5);
  c.add<Capacitor>("C1", a, -1, 1e-15);  // tau = 0.1 ns, kT/C = 4.14e-6 V²
  MnaSystem sys(c);
  TransientOptions to;
  to.dt = 5e-12;
  to.tstop = 4e-7;  // thousands of tau
  const auto tr = runNoisyTransient(sys, RVec(1, 0.0), to, 4242);
  ASSERT_TRUE(tr.ok);
  Real var = 0;
  std::size_t count = 0;
  for (std::size_t k = tr.x.size() / 4; k < tr.x.size(); ++k) {
    var += tr.x[k][0] * tr.x[k][0];
    ++count;
  }
  var /= static_cast<Real>(count);
  const Real kTC = 1.380649e-23 * 300.0 / 1e-15;
  EXPECT_GT(var, 0.5 * kTC);
  EXPECT_LT(var, 1.6 * kTC);
}

}  // namespace
}  // namespace rfic::analysis
