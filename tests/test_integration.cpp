// Cross-method integration and property tests: different engines of the
// suite answering the same physical question must agree, and key numerical
// knobs must converge monotonically.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "analysis/ac.hpp"
#include "analysis/dc.hpp"
#include "analysis/shooting.hpp"
#include "analysis/sparams.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "extraction/ies3.hpp"
#include "extraction/mom.hpp"
#include "extraction/peec.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"
#include "mpde/envelope.hpp"
#include "rom/pvl.hpp"

namespace rfic {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

// ---------- HB / AC / transient triple agreement on a linear RLC --------

TEST(CrossMethod, HBAndACAndPSSAgreeOnLinearRLC) {
  auto build = [](Circuit& c) {
    const int in = c.node("in"), m = c.node("m"), out = c.node("out");
    const int brv = c.allocBranch("V1"), brl = c.allocBranch("L1");
    c.add<VSource>("V1", in, -1, brv, std::make_shared<SineWave>(0.5, 4e6));
    c.add<Resistor>("R1", in, m, 25.0);
    c.add<Inductor>("L1", m, out, brl, 1e-6);
    c.add<Capacitor>("C1", out, -1, 1e-9);
  };
  Circuit c;
  build(c);
  analysis::MnaSystem sys(c);
  const auto out = static_cast<std::size_t>(c.findNode("out"));
  const auto dc = analysis::dcOperatingPoint(sys);

  // AC reference.
  const auto* vs = dynamic_cast<const VSource*>(c.devices().front().get());
  const auto y = analysis::acSolve(sys, dc.x, 4e6,
                                   analysis::acStimulusVSource(sys, *vs));
  const Real ampAC = 0.5 * std::abs(y[out]);

  // HB.
  const auto sol = hb::HarmonicBalance(sys, {{4e6, 4}}).solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const Real ampHB = hb::lineAmplitude(sol, out, 1);

  // Shooting PSS.
  analysis::ShootingOptions so;
  so.stepsPerPeriod = 2000;
  const auto pss = analysis::shootingPSS(sys, 1.0 / 4e6,
                                         RVec(sys.dim(), 0.0), so);
  ASSERT_TRUE(pss.converged);
  Real ampPSS = 0;
  for (const auto& x : pss.trajectory)
    ampPSS = std::max(ampPSS, std::abs(x[out]));

  EXPECT_NEAR(ampHB, ampAC, 1e-6 * ampAC);
  EXPECT_NEAR(ampPSS, ampAC, 5e-3 * ampAC);
}

// ---------- HB harmonic-count convergence (property sweep) ---------------

class HBHarmonics : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HBHarmonics, RectifierDCConvergesMonotonically) {
  // With more harmonics the rectifier's DC estimate approaches the
  // shooting reference; error at H must not be worse than at H/2.
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e5));
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Resistor>("RL", out, -1, 1e4);
  c.add<Capacitor>("CL", out, -1, 1e-8);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);

  analysis::ShootingOptions so;
  so.stepsPerPeriod = 4000;
  const auto pss = analysis::shootingPSS(sys, 1e-5, RVec(sys.dim(), 0.0), so);
  ASSERT_TRUE(pss.converged);
  Real ref = 0;
  for (std::size_t k = 0; k + 1 < pss.trajectory.size(); ++k)
    ref += pss.trajectory[k][static_cast<std::size_t>(out)];
  ref /= static_cast<Real>(pss.trajectory.size() - 1);

  hb::HBOptions ho;
  ho.continuationSteps = 3;
  const std::size_t h = GetParam();
  auto errAt = [&](std::size_t hh) {
    const auto sol = hb::HarmonicBalance(sys, {{1e5, hh}}, ho).solve(dc.x);
    EXPECT_TRUE(sol.converged) << "H=" << hh;
    return std::abs(sol.at(static_cast<std::size_t>(out), 0).real() - ref);
  };
  EXPECT_LE(errAt(h), errAt(h / 2) * 1.2 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HBHarmonics, ::testing::Values(8, 12, 16));

// ---------- transient↔envelope consistency on an AM signal ---------------

TEST(CrossMethod, EnvelopeTracksTransientAMDetector) {
  // AM source (carrier × (1+m·cos)) into an RC: the envelope method's
  // fundamental-harmonic magnitude must match a windowed estimate from a
  // brute-force transient.
  const Real fc = 20e6, fm = 100e3;
  auto build = [&](Circuit& c) {
    const int in = c.node("in"), out = c.node("out");
    const int b1 = c.allocBranch("Vc");
    const int mixn = c.node("mixn");
    // carrier on fast axis, modulation on slow axis, multiplied up.
    c.add<VSource>("Vc", in, -1, b1, std::make_shared<SineWave>(1.0, fc),
                   TimeAxis::fast);
    const int b2 = c.allocBranch("Vm");
    c.add<VSource>("Vm", mixn, -1, b2,
                   std::make_shared<SineWave>(0.5, fm, 0, 1.0),
                   TimeAxis::slow);
    c.add<Multiplier>("MX", out, -1, in, -1, mixn, -1, 1e-3);
    c.add<Resistor>("Rl", out, -1, 1000.0);
    c.add<Capacitor>("Cl", out, -1, 1e-12);
  };
  Circuit c;
  build(c);
  analysis::MnaSystem sys(c);
  const auto out = static_cast<std::size_t>(c.findNode("out"));
  const auto dc = analysis::dcOperatingPoint(sys);

  mpde::EnvelopeOptions eo;
  eo.slowSpan = 1.0 / fm;
  eo.slowSteps = 24;
  eo.fastSteps = 120;
  const auto env = mpde::runEnvelope(sys, fc, dc.x, eo);
  ASSERT_TRUE(env.converged);
  const auto h1 = env.harmonicEnvelope(out, 1);
  // Carrier-harmonic magnitude tracks 1 + 0.5·cos(2π·fm·t1) scaled by the
  // multiplier gain and load: peak/trough ratio = 1.5/0.5 = 3.
  Real hi = 0, lo = 1e30;
  for (const auto& v : h1) {
    hi = std::max(hi, std::abs(v));
    lo = std::min(lo, std::abs(v));
  }
  EXPECT_NEAR(hi / lo, 3.0, 0.1);
}

// ---------- S-parameters of a random passive ladder are passive ----------

class RandomLadder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLadder, SParamsPassiveAndReciprocal) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<Real> ur(10.0, 500.0);
  std::uniform_real_distribution<Real> uc(1e-12, 50e-12);
  Circuit c;
  const int p1 = c.node("p1"), p2 = c.node("p2");
  int prev = p1;
  for (int k = 0; k < 4; ++k) {
    const int nxt = (k == 3) ? p2 : c.node("n" + std::to_string(k));
    c.add<Resistor>("R" + std::to_string(k), prev, nxt, ur(rng));
    c.add<Capacitor>("C" + std::to_string(k), nxt, -1, uc(rng));
    prev = nxt;
  }
  analysis::MnaSystem sys(c);
  const std::vector<analysis::Port> ports{{p1, -1, "p1"}, {p2, -1, "p2"}};
  for (const Real f : {1e6, 1e8, 3e9}) {
    const auto sp = analysis::sParameters(sys, RVec(sys.dim(), 0.0), ports, f);
    EXPECT_TRUE(analysis::isPassiveSample(sp)) << "f=" << f;
    EXPECT_NEAR(std::abs(sp.s(0, 1) - sp.s(1, 0)), 0.0, 1e-9) << "f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLadder,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- IES3 tolerance knob: tighter tolerance → smaller error -------

TEST(Knobs, IES3ToleranceControlsAccuracy) {
  const auto mesh = extraction::makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 24);
  const auto dense = extraction::extractCapacitanceDense(mesh);
  Real prevErr = 1e300;
  for (const Real tol : {1e-2, 1e-4, 1e-6}) {
    extraction::IES3Options opts;
    opts.tolerance = tol;
    const auto comp = extraction::extractCapacitanceIES3(mesh, opts);
    Real err = 0;
    for (std::size_t i = 0; i < dense.matrix.rows(); ++i)
      for (std::size_t j = 0; j < dense.matrix.cols(); ++j)
        err = std::max(err, std::abs(comp.matrix(i, j) - dense.matrix(i, j)) /
                                std::abs(dense.matrix(i, i)));
    EXPECT_LE(err, prevErr * 1.5 + 1e-14) << "tol=" << tol;
    prevErr = err;
  }
  EXPECT_LT(prevErr, 1e-5);
}

// ---------- PEEC quadrature order converges -------------------------------

TEST(Knobs, PEECQuadratureConverges) {
  extraction::Segment a;
  a.start = {0, 0, 0};
  a.end = {1e-3, 0, 0};
  a.width = 10e-6;
  a.thickness = 1e-6;
  extraction::Segment b = a;
  b.start = {0.2e-3, 40e-6, 0};
  b.end = {1.2e-3, 40e-6, 0};
  const Real m24 = extraction::partialMutualInductance(a, b, 24);
  const Real m12 = extraction::partialMutualInductance(a, b, 12);
  const Real m6 = extraction::partialMutualInductance(a, b, 6);
  EXPECT_LT(std::abs(m12 - m24), std::abs(m6 - m24) + 1e-18);
  // The integrand is near-singular for closely spaced parallel segments
  // (d/l = 1/25); percent-level agreement at n = 12 is the expectation.
  EXPECT_NEAR(m12, m24, 2e-2 * std::abs(m24));
}

// ---------- ROM expansion point invariance -------------------------------

TEST(Knobs, PVLDifferentExpansionPointsAgreeInOverlap) {
  const auto sys = rom::makeRCLine(400, 1000.0, 1e-9);
  const auto romA = rom::pvl(sys, 0.0, 10).rom;
  const auto romB = rom::pvl(sys, kTwoPi * 2e6, 10).rom;
  const Complex s(0.0, kTwoPi * 1e6);
  const Complex ref = sys.transferFunction(s);
  EXPECT_LT(std::abs(romA.transfer(s) - ref), 1e-5 * std::abs(ref));
  EXPECT_LT(std::abs(romB.transfer(s) - ref), 1e-5 * std::abs(ref));
}

// ---------- BJT Gilbert cell under two-tone HB ----------------------------

TEST(CrossMethod, BJTGilbertCellMixesUnderHB) {
  // A real (transistor-level) Gilbert mixer: differential RF pair under a
  // switching quad, resistive loads. Checks that the strongly nonlinear
  // BJT models converge in two-tone HB and produce the expected
  // downconverted product with suppressed RF/LO feedthrough (the virtue of
  // double balance).
  const Real fRF = 11e6, fLO = 10e6;
  Circuit c;
  const int vcc = c.node("vcc");
  const int lop = c.node("lop"), lom = c.node("lom");
  const int rfp = c.node("rfp"), rfm = c.node("rfm");
  const int outp = c.node("outp"), outm = c.node("outm");
  const int ep = c.node("ep"), em = c.node("em"), tail = c.node("tail");

  const int b0 = c.allocBranch("VCC");
  c.add<VSource>("VCC", vcc, -1, b0, std::make_shared<DCWave>(5.0));
  // LO: differential around a 2.5 V common mode (fast axis).
  const int b1 = c.allocBranch("Vlop");
  const int b2 = c.allocBranch("Vlom");
  c.add<VSource>("Vlop", lop, -1, b1,
                 std::make_shared<SineWave>(0.15, fLO, 0.0, 2.5),
                 TimeAxis::fast);
  c.add<VSource>("Vlom", lom, -1, b2,
                 std::make_shared<SineWave>(0.15, fLO, kPi, 2.5),
                 TimeAxis::fast);
  // RF: small differential drive around 1.2 V (slow axis).
  const int b3 = c.allocBranch("Vrfp");
  const int b4 = c.allocBranch("Vrfm");
  c.add<VSource>("Vrfp", rfp, -1, b3,
                 std::make_shared<SineWave>(0.01, fRF, 0.0, 1.2),
                 TimeAxis::slow);
  c.add<VSource>("Vrfm", rfm, -1, b4,
                 std::make_shared<SineWave>(0.01, fRF, kPi, 1.2),
                 TimeAxis::slow);

  BJT::Params q;
  q.is = 1e-16;
  q.bf = 100.0;
  // Switching quad.
  c.add<BJT>("Q1", outp, lop, ep, q);
  c.add<BJT>("Q2", outm, lom, ep, q);
  c.add<BJT>("Q3", outm, lop, em, q);
  c.add<BJT>("Q4", outp, lom, em, q);
  // RF pair with resistive tail.
  c.add<BJT>("Q5", ep, rfp, tail, q);
  c.add<BJT>("Q6", em, rfm, tail, q);
  c.add<Resistor>("Rtail", tail, -1, 500.0);
  c.add<Resistor>("Rlp", vcc, outp, 1000.0);
  c.add<Resistor>("Rlm", vcc, outm, 1000.0);
  c.add<Capacitor>("Clp", outp, -1, 1e-12);
  c.add<Capacitor>("Clm", outm, -1, 1e-12);

  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  ASSERT_TRUE(dc.converged);

  hb::HBOptions ho;
  ho.continuationSteps = 4;
  hb::HarmonicBalance eng(sys, {{fRF, 2}, {fLO, 4}}, ho);
  const auto sol = eng.solve(dc.x);
  ASSERT_TRUE(sol.converged);

  const auto up = static_cast<std::size_t>(outp);
  const auto um = static_cast<std::size_t>(outm);
  auto diff = [&](int k1, int k2) {
    return 2.0 * std::abs(sol.at(up, k1, k2) - sol.at(um, k1, k2));
  };
  const Real ifProd = diff(1, -1);   // 1 MHz downconversion
  const Real rfLeak = diff(1, 0);    // RF feedthrough
  const Real loLeak = diff(0, 1);    // LO feedthrough
  EXPECT_GT(ifProd, 1e-3);           // real conversion happens
  EXPECT_LT(rfLeak, 0.2 * ifProd);   // double balance suppresses RF
  EXPECT_LT(loLeak, 0.2 * ifProd);   // ... and LO
}

// ---------- Multiplier device: FD Jacobian + mixing identity --------------

TEST(Devices, MultiplierJacobianAndMixing) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b"), o = c.node("o");
  c.add<Multiplier>("MX", o, -1, a, -1, b, -1, 2e-3);
  c.add<Resistor>("Ra", a, -1, 100.0);
  c.add<Resistor>("Rb", b, -1, 100.0);
  c.add<Resistor>("Ro", o, -1, 1000.0);
  analysis::MnaSystem sys(c);
  // FD check of the bilinear Jacobian at a generic point.
  RVec x{0.3, -0.7, 0.1};
  circuit::MnaEval e;
  sys.eval(x, 0.0, e, true);
  const auto g = e.G.toDense();
  const Real h = 1e-7;
  for (std::size_t j = 0; j < 3; ++j) {
    RVec xp = x, xm = x;
    xp[j] += h;
    xm[j] -= h;
    circuit::MnaEval ep, em;
    sys.eval(xp, 0.0, ep, false);
    sys.eval(xm, 0.0, em, false);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(g(i, j), (ep.f[i] - em.f[i]) / (2 * h), 1e-6);
  }
}

}  // namespace
}  // namespace rfic
