// RF performance measures (Section 1's spec list: intercept point, 1 dB
// compression, noise figure) and S-parameters (Section 4's output format).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/dc.hpp"
#include "analysis/noise.hpp"
#include "analysis/sparams.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "hb/rf_measures.hpp"
#include "hb/spectrum.hpp"

namespace rfic {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

// Two-tone testbench: Rs into g1 + g3·v³ — every measure has a closed form.
struct CubicBench {
  Circuit c;
  int b = 0;
  Real g1 = 1e-3, g3 = 2e-2, rs = 1000.0;
  std::unique_ptr<analysis::MnaSystem> sys;

  explicit CubicBench(Real driveAmp, Real f1 = 1e6, Real f2 = 1.3e6) {
    const int a = c.node("a"), s2 = c.node("s2");
    b = c.node("b");
    const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
    c.add<VSource>("V1", a, -1, br1,
                   std::make_shared<SineWave>(driveAmp, f1), TimeAxis::slow);
    c.add<VSource>("V2", s2, a, br2,
                   std::make_shared<SineWave>(driveAmp, f2), TimeAxis::fast);
    c.add<Resistor>("Rs", s2, b, rs);
    c.add<CubicConductance>("GN", b, -1, g1, g3);
    sys = std::make_unique<analysis::MnaSystem>(c);
  }
};

TEST(RFMeasures, IP3MatchesPerturbationTheory) {
  const Real drive = 0.02;
  CubicBench tb(drive);
  const auto dc = analysis::dcOperatingPoint(*tb.sys);
  hb::HarmonicBalance eng(*tb.sys, {{1e6, 3}, {1.3e6, 3}});
  const auto sol = eng.solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const auto ip3 = hb::intercept3(sol, static_cast<std::size_t>(tb.b), drive);

  // Analytic: per-tone node amplitude A = drive·gs/(gs+g1); IM3 node
  // voltage = (3/4)·g3·A³/(gs+g1). A_IP3,in = drive·sqrt(A1/A3).
  const Real gs = 1.0 / tb.rs;
  const Real a1 = drive * gs / (gs + tb.g1);
  const Real a3 = 0.75 * tb.g3 * a1 * a1 * a1 / (gs + tb.g1);
  const Real ip3Ref = drive * std::sqrt(a1 / a3);
  EXPECT_NEAR(ip3.inputIP3, ip3Ref, 0.05 * ip3Ref);
  EXPECT_LT(ip3.im3Dbc, -20.0);
}

TEST(RFMeasures, IP3IndependentOfDriveInWeakRegime) {
  // The defining property of an intercept point: the extrapolation is
  // drive-independent while the device is weakly nonlinear.
  Real prev = 0;
  for (const Real drive : {0.01, 0.02, 0.04}) {
    CubicBench tb(drive);
    const auto dc = analysis::dcOperatingPoint(*tb.sys);
    hb::HarmonicBalance eng(*tb.sys, {{1e6, 3}, {1.3e6, 3}});
    const auto sol = eng.solve(dc.x);
    ASSERT_TRUE(sol.converged);
    const auto ip3 =
        hb::intercept3(sol, static_cast<std::size_t>(tb.b), drive);
    if (prev > 0) {
      EXPECT_NEAR(ip3.inputIP3, prev, 0.1 * prev);
    }
    prev = ip3.inputIP3;
  }
}

TEST(RFMeasures, CompressionPointOfCubicSoftLimiter) {
  // For y = g1·v + g3·v³ with g3 < 0 (compressive), the gain is
  // g1·(1 + (3g3/4g1)·A²); 1 dB compression at A² = (1 − 10^{−1/20})·(4/3)·
  // |g1/g3| ≈ 0.145·|g1/g3|.
  const Real g1 = 1.0, g3 = -0.1;
  auto fundamental = [&](Real a) {
    // Output fundamental of the cubic: g1·a + (3/4)·g3·a³.
    return g1 * a + 0.75 * g3 * a * a * a;
  };
  const auto res = hb::compressionPoint(fundamental, 0.01, 3.0, 60);
  ASSERT_TRUE(res.found);
  const Real ref = std::sqrt((1.0 - std::pow(10.0, -0.05)) * 4.0 / 3.0 *
                              std::abs(g1 / g3));
  EXPECT_NEAR(res.inputP1dB, ref, 0.03 * ref);
  EXPECT_NEAR(res.smallSignalGain, g1, 1e-3);
}

TEST(RFMeasures, CompressionPointViaRealHBSweep) {
  // Drive the cubic bench harder and harder through single-tone HB and
  // find P1dB from actual solutions; compare against the closed form for
  // the node voltage v solving gs·(a−v) = g1·v + g3·v³.
  const Real g1 = 1e-3, g3 = 5e-3, rs = 1000.0;
  auto fundamentalOut = [&](Real amp) {
    Circuit c;
    const int a = c.node("a"), b = c.node("b");
    const int br = c.allocBranch("V1");
    c.add<VSource>("V1", a, -1, br, std::make_shared<SineWave>(amp, 1e6));
    c.add<Resistor>("Rs", a, b, rs);
    c.add<CubicConductance>("GN", b, -1, g1, g3);
    analysis::MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    hb::HBOptions ho;
    ho.continuationSteps = 3;
    const auto sol = hb::HarmonicBalance(sys, {{1e6, 5}}, ho).solve(dc.x);
    EXPECT_TRUE(sol.converged) << "amp=" << amp;
    return hb::lineAmplitude(sol, static_cast<std::size_t>(b), 1);
  };
  const auto res = hb::compressionPoint(fundamentalOut, 0.05, 4.0, 16);
  ASSERT_TRUE(res.found);
  // Small-signal gain is the divider gs/(gs+g1) = 0.5.
  EXPECT_NEAR(res.smallSignalGain, 0.5, 0.02);
  // Sanity bracket for the compression point from the describing function
  // (v_1dB² ≈ 0.145·(4/3)·(gs+g1)/g3 ⇒ a_1dB = v/0.445): ~1 V drive scale.
  EXPECT_GT(res.inputP1dB, 0.3);
  EXPECT_LT(res.inputP1dB, 3.0);
}

TEST(RFMeasures, CompressionNotFoundForLinearSystem) {
  const auto res = hb::compressionPoint([](Real a) { return 2.0 * a; }, 0.01,
                                        1.0, 20);
  EXPECT_FALSE(res.found);
}

TEST(RFMeasures, NoiseFigureOfResistiveAttenuator) {
  // Matched resistive divider: an attenuator's NF equals its attenuation.
  // Rs = R2 = 1k: output sees Rs and R2 equally → F = 2 (3 dB).
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(0.0));
  c.add<Resistor>("Rs", in, out, 1000.0);
  c.add<Resistor>("R2", out, -1, 1000.0);
  analysis::MnaSystem sys(c);
  const auto noise =
      analysis::noiseAnalysis(sys, RVec(sys.dim(), 0.0), out, {1e6});
  const auto nf = hb::noiseFigureDb(noise, "Rs");
  ASSERT_EQ(nf.size(), 1u);
  EXPECT_NEAR(nf[0], 3.0103, 1e-3);
}

TEST(RFMeasures, NoiseFigureRejectsWrongLabel) {
  Circuit c;
  const int out = c.node("out");
  c.add<Resistor>("R2", out, -1, 1000.0);
  analysis::MnaSystem sys(c);
  const auto noise =
      analysis::noiseAnalysis(sys, RVec(sys.dim(), 0.0), out, {1e6});
  EXPECT_THROW(hb::noiseFigureDb(noise, "Rsrc"), InvalidArgument);
}

// ------------------------------------------------------- S-parameters

TEST(SParams, MatchedLoadIsReflectionless) {
  Circuit c;
  const int p = c.node("p");
  c.add<Resistor>("R1", p, -1, 50.0);
  analysis::MnaSystem sys(c);
  const auto sp = analysis::sParameters(sys, RVec(sys.dim(), 0.0),
                                        {{p, -1, "p1"}}, 1e9, 50.0);
  EXPECT_NEAR(std::abs(sp.s(0, 0)), 0.0, 1e-9);  // port gmin regularization
}

TEST(SParams, OpenAndShortReflections) {
  {
    Circuit c;
    const int p = c.node("p");
    c.add<Resistor>("Ropen", p, -1, 50e9);  // ~open
    analysis::MnaSystem sys(c);
    const auto sp = analysis::sParameters(sys, RVec(sys.dim(), 0.0),
                                          {{p, -1, "p1"}}, 1e6, 50.0);
    EXPECT_NEAR(sp.s(0, 0).real(), 1.0, 1e-6);
  }
  {
    Circuit c;
    const int p = c.node("p");
    c.add<Resistor>("Rshort", p, -1, 1e-6);
    analysis::MnaSystem sys(c);
    const auto sp = analysis::sParameters(sys, RVec(sys.dim(), 0.0),
                                          {{p, -1, "p1"}}, 1e6, 50.0);
    EXPECT_NEAR(sp.s(0, 0).real(), -1.0, 1e-6);
  }
}

TEST(SParams, SeriesResistorTwoPort) {
  // Series R between two 50 Ω ports: S21 = 2Z0/(2Z0 + R).
  Circuit c;
  const int p1 = c.node("p1"), p2 = c.node("p2");
  c.add<Resistor>("R1", p1, p2, 100.0);
  analysis::MnaSystem sys(c);
  const auto sp = analysis::sParameters(
      sys, RVec(sys.dim(), 0.0), {{p1, -1, "p1"}, {p2, -1, "p2"}}, 1e8, 50.0);
  const Real s21Ref = 2.0 * 50.0 / (2.0 * 50.0 + 100.0);
  EXPECT_NEAR(std::abs(sp.s(1, 0)), s21Ref, 1e-9);
  EXPECT_NEAR(std::abs(sp.s(0, 1)), s21Ref, 1e-9);  // reciprocity
  EXPECT_NEAR(std::abs(sp.s(0, 0)), 0.5, 1e-9);     // R/(R+2Z0)
  EXPECT_TRUE(analysis::isPassiveSample(sp));
}

TEST(SParams, RCLowpassRollsOffS21) {
  Circuit c;
  const int p1 = c.node("p1"), p2 = c.node("p2");
  c.add<Resistor>("R1", p1, p2, 50.0);
  c.add<Capacitor>("C1", p2, -1, 10e-12);
  analysis::MnaSystem sys(c);
  const std::vector<analysis::Port> ports{{p1, -1, "p1"}, {p2, -1, "p2"}};
  const auto lo = analysis::sParameters(sys, RVec(sys.dim(), 0.0), ports, 1e6);
  const auto hi = analysis::sParameters(sys, RVec(sys.dim(), 0.0), ports, 1e10);
  EXPECT_GT(std::abs(lo.s(1, 0)), std::abs(hi.s(1, 0)) * 10.0);
  EXPECT_TRUE(analysis::isPassiveSample(lo));
  EXPECT_TRUE(analysis::isPassiveSample(hi));
}

TEST(SParams, ActiveNetworkFailsPassivityCheck) {
  // A VCCS-boosted network can have |S21| > 1.
  Circuit c;
  const int p1 = c.node("p1"), p2 = c.node("p2");
  c.add<Resistor>("Rin", p1, -1, 50.0);
  c.add<VCCS>("Gm", -1, p2, p1, -1, 0.2);  // transconductance into port 2
  c.add<Resistor>("Rout", p2, -1, 50.0);
  analysis::MnaSystem sys(c);
  const auto sp = analysis::sParameters(
      sys, RVec(sys.dim(), 0.0), {{p1, -1, "p1"}, {p2, -1, "p2"}}, 1e8, 50.0);
  EXPECT_GT(std::abs(sp.s(1, 0)), 1.0);
  EXPECT_FALSE(analysis::isPassiveSample(sp));
}

TEST(SParams, SweepShapes) {
  Circuit c;
  const int p = c.node("p");
  c.add<Resistor>("R1", p, -1, 75.0);
  analysis::MnaSystem sys(c);
  const auto freqs = analysis::logspace(1e6, 1e9, 4);
  const auto sweep = analysis::sParameterSweep(sys, RVec(sys.dim(), 0.0),
                                               {{p, -1, "p1"}}, freqs);
  ASSERT_EQ(sweep.size(), 4u);
  for (const auto& sp : sweep)
    EXPECT_NEAR(sp.s(0, 0).real(), 0.2, 1e-9);  // (75-50)/(75+50)
}

}  // namespace
}  // namespace rfic
