#!/usr/bin/env python3
"""Golden-output test for the rficsim CLI.

The engine refactor promises that rficsim stays a byte-compatible thin
client: same stdout, same stderr, same exit codes as the monolithic
binary. This runs every example netlist and compares against committed
golden captures, then checks the documented error exit codes.

Usage: cli_golden_test.py <rficsim> <examples_dir> <golden_dir>
"""

import subprocess
import sys
import tempfile
import os

def run(binary, args, stdin_path=None):
    return subprocess.run([binary] + args, capture_output=True, timeout=300)


def main():
    binary, examples, golden = sys.argv[1], sys.argv[2], sys.argv[3]
    failures = []

    for name in ("divider", "lpf", "rc_ac", "diode_hb"):
        cir = os.path.join(examples, name + ".cir")
        with open(os.path.join(golden, name + ".out"), "rb") as f:
            want = f.read()
        p = run(binary, [cir])
        if p.returncode != 0:
            failures.append(f"{name}: exit {p.returncode} (want 0); "
                            f"stderr={p.stderr[:200]!r}")
        elif p.stdout != want:
            failures.append(f"{name}: stdout differs from golden "
                            f"({len(p.stdout)} vs {len(want)} bytes)")
        elif p.stderr != b"":
            failures.append(f"{name}: unexpected stderr {p.stderr[:200]!r}")
        else:
            print(f"ok   {name}: {len(want)} bytes byte-identical, exit 0")

    # Error-path contract: exit 2 for usage-class mistakes, with a
    # diagnostic naming the offending node (the old code walked off the
    # node table instead).
    cases = [
        ("unknown .print node", "R1 a 0 1k\n.print nosuch\n.op\n", 2,
         b"unknown node 'nosuch'"),
        ("ground .print node", "R1 a 0 1k\n.print 0\n.op\n", 2, b"ground"),
        ("no analysis cards", "R1 a 0 1k\n", 2, b"no analysis cards"),
        ("parse error with line info",
         "V1 in 0 DC 5\nR1 in out notanumber\n.op\n", 1, b"line 2"),
    ]
    for label, netlist, wantrc, needle in cases:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cir", delete=False) as f:
            f.write(netlist)
            path = f.name
        try:
            p = run(binary, [path])
            if p.returncode != wantrc:
                failures.append(f"{label}: exit {p.returncode} "
                                f"(want {wantrc})")
            elif needle not in p.stderr:
                failures.append(f"{label}: stderr {p.stderr[:200]!r} "
                                f"missing {needle!r}")
            else:
                print(f"ok   {label}: exit {wantrc}, diagnostic present")
        finally:
            os.unlink(path)

    # Usage text still goes to stderr with exit 1 when no file is given
    # (the seed binary's behavior, kept bit-for-bit).
    p = run(binary, [])
    if p.returncode != 1 or b"usage:" not in p.stderr:
        failures.append(f"no-args usage: exit {p.returncode}, "
                        f"stderr={p.stderr[:120]!r}")
    else:
        print("ok   no-args usage: exit 1")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print("  " + f)
        return 1
    print("cli_golden_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
