// Small-signal AC and stationary noise analyses against closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/ac.hpp"
#include "analysis/dc.hpp"
#include "analysis/noise.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::analysis {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

class RCLowpassFreqs : public ::testing::TestWithParam<Real> {};

TEST_P(RCLowpassFreqs, TransferMatchesAnalytic) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  auto& vs = c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(0.0));
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-9);  // fc = 159 kHz
  MnaSystem sys(c);
  const Real f = GetParam();
  const auto u = acStimulusVSource(sys, vs);
  const auto y = acSolve(sys, RVec(sys.dim(), 0.0), f, u);
  const Complex h = y[static_cast<std::size_t>(out)];
  const Complex href = 1.0 / Complex(1.0, kTwoPi * f * 1e-6);
  EXPECT_NEAR(std::abs(h - href), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Freqs, RCLowpassFreqs,
                         ::testing::Values(1e2, 1e4, 159154.9, 1e6, 1e8));

TEST(AC, RLCResonanceAndQ) {
  // Series RLC driven by a voltage source; voltage across C peaks near f0
  // with magnification ≈ Q.
  Circuit c;
  const int in = c.node("in"), m = c.node("m"), out = c.node("out");
  const int brv = c.allocBranch("V1"), brl = c.allocBranch("L1");
  auto& vs = c.add<VSource>("V1", in, -1, brv, std::make_shared<DCWave>(0.0));
  c.add<Resistor>("R1", in, m, 10.0);
  c.add<Inductor>("L1", m, out, brl, 1e-6);
  c.add<Capacitor>("C1", out, -1, 1e-9);
  MnaSystem sys(c);
  const Real f0 = 1.0 / (kTwoPi * std::sqrt(1e-6 * 1e-9));  // ≈ 5.03 MHz
  const Real q = std::sqrt(1e-6 / 1e-9) / 10.0;              // ≈ 3.16
  const auto u = acStimulusVSource(sys, vs);
  const auto y = acSolve(sys, RVec(sys.dim(), 0.0), f0, u);
  EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(out)]), q, 0.02 * q);
}

TEST(AC, LinearizedDiodeSmallSignalResistance) {
  // Biased diode behaves as rd = nVt/Id in small signal.
  Circuit c;
  const int in = c.node("in"), a = c.node("a");
  const int br = c.allocBranch("V1");
  auto& vs = c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(5.0));
  c.add<Resistor>("R1", in, a, 10000.0);
  c.add<Diode>("D1", a, -1, Diode::Params{});
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  ASSERT_TRUE(dc.converged);
  const Real vd = dc.x[static_cast<std::size_t>(a)];
  const Real id = (5.0 - vd) / 10000.0;
  const Real rd = kVt300 / id;
  const auto u = acStimulusVSource(sys, vs);
  const auto y = acSolve(sys, dc.x, 1.0, u);  // low frequency
  const Real hExp = rd / (rd + 10000.0);
  EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(a)]), hExp, 1e-3 * hExp);
}

TEST(AC, SweepReturnsOnePointPerFrequency) {
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  auto& vs = c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(0.0));
  c.add<Resistor>("R1", in, -1, 50.0);
  MnaSystem sys(c);
  const auto freqs = logspace(1e3, 1e9, 25);
  const auto sweep = acSweep(sys, RVec(sys.dim(), 0.0), freqs,
                             acStimulusVSource(sys, vs));
  EXPECT_EQ(sweep.freq.size(), 25u);
  EXPECT_EQ(sweep.x.size(), 25u);
}

TEST(AC, Logspace) {
  const auto f = logspace(1.0, 1e6, 7);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_NEAR(f.front(), 1.0, 1e-12);
  EXPECT_NEAR(f.back(), 1e6, 1e-6);
  EXPECT_NEAR(f[1] / f[0], 10.0, 1e-9);
  EXPECT_THROW(logspace(0.0, 10.0, 5), InvalidArgument);
  EXPECT_THROW(logspace(1.0, 10.0, 1), InvalidArgument);
}

TEST(Noise, ResistorDividerOutputPSD) {
  // Two resistors to ground at the output: total output noise is
  // 4kT·Re{Zout} = 4kT·(R1 ∥ R2).
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(0.0));
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Resistor>("R2", out, -1, 3000.0);
  MnaSystem sys(c);
  const auto nr = noiseAnalysis(sys, RVec(sys.dim(), 0.0), out, {1e3});
  const Real rpar = 1000.0 * 3000.0 / 4000.0;
  const Real expct = 4.0 * 1.380649e-23 * 300.0 * rpar;
  ASSERT_EQ(nr.totalPsd.size(), 1u);
  EXPECT_NEAR(nr.totalPsd[0], expct, 1e-3 * expct);
}

TEST(Noise, ContributionsSumToTotal) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(5.0));
  c.add<Resistor>("R1", in, out, 2000.0);
  c.add<Diode>("D1", out, -1, Diode::Params{});
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  const auto nr = noiseAnalysis(sys, dc.x, out, {1e3, 1e6});
  for (std::size_t k = 0; k < nr.freq.size(); ++k) {
    Real sum = 0;
    for (const auto& cb : nr.contributions[k]) sum += cb.psd;
    EXPECT_NEAR(sum, nr.totalPsd[k], 1e-12 * nr.totalPsd[k]);
  }
}

TEST(Noise, RCFilterShapesResistorNoise) {
  // Output PSD of R with shunt C rolls off as 1/(1+(2πfRC)²); integrates to
  // kT/C. Check the shape at two points.
  Circuit c;
  const int out = c.node("out");
  c.add<Resistor>("R1", out, -1, 100000.0);
  c.add<Capacitor>("C1", out, -1, 1e-12);
  MnaSystem sys(c);
  const Real fc = 1.0 / (kTwoPi * 1e5 * 1e-12);  // 1.59 MHz
  const auto nr = noiseAnalysis(sys, RVec(sys.dim(), 0.0), out, {1.0, fc});
  const Real flat = 4.0 * 1.380649e-23 * 300.0 * 1e5;
  EXPECT_NEAR(nr.totalPsd[0], flat, 1e-3 * flat);
  EXPECT_NEAR(nr.totalPsd[1], flat / 2.0, 1e-2 * flat);
}

TEST(Noise, FlickerRisesTowardLowFrequency) {
  Circuit c;
  const int in = c.node("in"), a = c.node("a");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<DCWave>(5.0));
  c.add<Resistor>("R1", in, a, 1000.0);
  Diode::Params p;
  p.kf = 1e-12;
  c.add<Diode>("D1", a, -1, p);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  const auto nr = noiseAnalysis(sys, dc.x, a, {10.0, 1e6});
  EXPECT_GT(nr.totalPsd[0], 10.0 * nr.totalPsd[1]);
}

TEST(Noise, GroundOutputRejected) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), -1, 1000.0);
  MnaSystem sys(c);
  EXPECT_THROW(noiseAnalysis(sys, RVec(1, 0.0), -1, {1e3}), InvalidArgument);
}

}  // namespace
}  // namespace rfic::analysis
