#!/usr/bin/env python3
"""Chaos harness for the rficd daemon (DESIGN.md section 11).

Drives real daemon processes over real unix sockets through hostile
client behavior — malformed and oversized requests, mid-stream
disconnects with running jobs, lazy readers, cancel/submit races,
memory-budget-busting submissions, an overload flood against a tiny
queue, and a mem-spike fault-injected instance — and asserts the three
daemon invariants:

  1. the daemon never crashes (every phase ends with a live process that
     still answers a round-trip),
  2. no admitted job leaks (every accepted job reaches a terminal state),
  3. exactly one `finished` event is delivered per admitted job.

Usage: rficd_chaos.py <rficd> <examples_dir>
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time

DIVIDER = None  # loaded from examples in main()

# Long enough to keep a worker busy for the whole overload phase; always
# cancelled, never waited out.
HEAVY = ("V1 in 0 SIN(0 1 1k)\nR1 in out 1k\nC1 out 0 1u\n"
         ".print out\n.tran 5e-8 1e-1\n")


def tiny_op(seed):
    """A fresh-topology .op netlist (unique R value => unique context)."""
    return (f"V1 in 0 1\nR1 in out {1000 + seed}\nR2 out 0 {2000 + seed}\n"
            ".op\n")


class Client:
    def __init__(self, path, retries=100):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        for i in range(retries):
            try:
                self.sock.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                if i == retries - 1:
                    raise
                time.sleep(0.05)
        self.buf = b""
        self.events = []  # job-stream events set aside while matching

    def send(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")

    def send_raw(self, data):
        self.sock.sendall(data)

    def recv(self, timeout=120):
        self.sock.settimeout(timeout)
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def wait_for(self, pred, timeout=120):
        """Next message matching pred; anything else (job-stream events of
        other jobs, cancel acks, ...) is stashed, never dropped — the
        exactly-one-finished-event invariant depends on that."""
        for i, m in enumerate(self.events):
            if pred(m):
                return self.events.pop(i)
        deadline = time.monotonic() + timeout
        while True:
            assert time.monotonic() < deadline, \
                f"timed out; stashed events: {self.events[-5:]}"
            msg = self.recv(timeout=timeout)
            if pred(msg):
                return msg
            self.events.append(msg)

    def submit(self, netlist, **extra):
        """Submit and return (job_id_or_None, reply)."""
        self.send({"cmd": "submit", "netlist": netlist, **extra})
        msg = self.wait_for(
            lambda m: m.get("event") in ("accepted", "rejected"))
        if msg.get("event") == "accepted":
            return msg["job"], msg
        return None, msg

    def wait_started(self, job, timeout=120):
        return self.wait_for(
            lambda m: m.get("event") == "started" and m.get("job") == job,
            timeout)

    def wait_finished(self, job, timeout=120):
        return self.wait_for(
            lambda m: m.get("event") == "finished" and m.get("job") == job,
            timeout)

    def drain_finished(self, jobs, timeout=120):
        """Collect finished events until every job in `jobs` has exactly
        one; assert no job ever gets a second one."""
        counts = {j: 0 for j in jobs}
        finished = {}
        deadline = time.monotonic() + timeout
        while any(c == 0 for c in counts.values()):
            left = deadline - time.monotonic()
            assert left > 0, f"timed out waiting for finished: {counts}"
            msg = self.wait_for(lambda m: m.get("event") == "finished",
                                timeout=left)
            j = msg.get("job")
            if j in counts:
                counts[j] += 1
                assert counts[j] == 1, f"duplicate finished for job {j}"
                finished[j] = msg
        return finished

    def stats(self):
        self.send({"cmd": "stats"})
        return self.wait_for(lambda m: m.get("event") == "stats")

    def settled_stats(self, pred, timeout=30):
        """Poll stats until `pred(st)` holds. The scheduler delivers a
        job's finished event before it settles the gauge counters under
        the lock, so a snapshot taken right after a finished event can
        briefly lag the wire; gauges are eventually consistent."""
        deadline = time.monotonic() + timeout
        while True:
            st = self.stats()
            if pred(st):
                return st
            assert time.monotonic() < deadline, \
                f"stats never settled: {st}"
            time.sleep(0.05)

    def states(self):
        """{job_id: state} via the status command."""
        self.send({"cmd": "status"})
        out = {}
        while True:
            msg = self.wait_for(
                lambda m: m.get("event") in ("job", "status-end"))
            if msg.get("event") == "status-end":
                return out
            out[msg["job"]] = msg.get("state")

    def close(self):
        self.sock.close()


class Daemon:
    def __init__(self, rficd, tmpdir, name, extra_args=(), env_extra=None):
        self.sock_path = os.path.join(tmpdir, f"{name}.sock")
        env = dict(os.environ)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [rficd, "--socket", self.sock_path, *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)

    def alive(self):
        return self.proc.poll() is None

    def shutdown_clean(self):
        cli = Client(self.sock_path)
        cli.send({"cmd": "shutdown"})
        assert cli.recv().get("event") == "bye"
        rc = self.proc.wait(timeout=60)
        assert rc == 0, \
            f"daemon exit {rc}: {self.proc.stderr.read()[:400]}"

    def kill(self):
        if self.alive():
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()


def phase_malformed(d):
    """Garbage, binary, nested JSON, missing fields: structured error or
    rejection every time, connection stays usable."""
    cli = Client(d.sock_path)
    cli.send_raw(b"this is not json\n")
    assert cli.recv().get("event") == "error"
    cli.send_raw(b"\x00\x01\xfe\xff{{{\n")
    assert cli.recv().get("event") == "error"
    cli.send_raw(b'{"cmd":{"nested":"object"}}\n')
    assert cli.recv().get("event") == "error"
    cli.send_raw(b'{"unterminated": "stri\n')
    assert cli.recv().get("event") == "error"
    cli.send_raw(b"\n\n\n")  # blank lines are ignored, not errors
    cli.send({"cmd": "submit"})  # no netlist -> pre-flight rejection
    msg = cli.recv()
    assert msg.get("event") == "rejected", msg
    assert msg.get("reason") == "spec-invalid", msg
    cli.send({"cmd": "submit", "netlist": DIVIDER,
              "priority": "urgent"})  # unknown class -> spec-invalid
    msg = cli.recv()
    assert msg.get("reason") == "spec-invalid", msg
    # Connection is still fully functional after all of the above.
    job, _ = cli.submit(DIVIDER, label="post-garbage")
    fin = cli.wait_finished(job)
    assert fin["exit"] == 0, fin
    cli.close()
    print("ok   malformed requests: structured errors, connection usable")


def phase_oversized(d):
    """A request line over 1 MiB is answered with an error and the
    connection is dropped; the daemon itself stays up."""
    cli = Client(d.sock_path)
    cli.send_raw(b"x" * ((1 << 20) + 8192))  # no newline, > 1 MiB cap
    msg = cli.recv()
    assert msg.get("event") == "error", msg
    assert "exceeds" in msg.get("error", ""), msg
    try:
        # Daemon closed its end; we eventually see EOF.
        while True:
            cli.recv(timeout=30)
    except (ConnectionError, OSError):
        pass
    cli.close()
    assert d.alive(), "daemon died on oversized request"
    # Fresh connection works.
    cli2 = Client(d.sock_path)
    assert "queueDepth" in cli2.stats()
    cli2.close()
    print("ok   oversized line: error + drop, daemon alive")


def phase_disconnect(d):
    """Disconnect with a running job: the job must reach a terminal state
    (cancelled) and the daemon must not leak it."""
    cli = Client(d.sock_path)
    job, _ = cli.submit(HEAVY, label="abandoned")
    # Wait for it to actually start, then vanish without a word.
    cli.wait_started(job)
    cli.sock.close()
    # From a second connection, poll until the abandoned job is terminal.
    cli2 = Client(d.sock_path)
    deadline = time.monotonic() + 60
    while True:
        st = cli2.states().get(job)
        if st in ("cancelled", "done"):
            break
        assert time.monotonic() < deadline, \
            f"abandoned job stuck in state {st!r}"
        time.sleep(0.1)
    assert st == "cancelled", st
    cli2.close()
    print("ok   mid-stream disconnect: running job cancelled, not leaked")


def phase_lazy_reader(d):
    """A client that submits and then stops reading for a while must not
    wedge the daemon; events are waiting when it comes back."""
    cli = Client(d.sock_path)
    job, _ = cli.submit(DIVIDER, label="lazy")
    time.sleep(1.0)  # don't read anything while the job runs
    # Daemon must still serve others during the stall.
    other = Client(d.sock_path)
    job2, _ = other.submit(DIVIDER, label="concurrent-with-lazy")
    fin2 = other.wait_finished(job2)
    assert fin2["exit"] == 0
    other.close()
    fin = cli.wait_finished(job)  # backlog is intact
    assert fin["exit"] == 0, fin
    cli.close()
    print("ok   lazy reader: backlog preserved, daemon not wedged")


def phase_cancel_races(d):
    """Submit/cancel races: every admitted job gets exactly one finished
    event with exit 0 (ran first) or 5 (cancel won)."""
    cli = Client(d.sock_path)
    jobs = []
    for i in range(12):
        job, _ = cli.submit(tiny_op(i), label=f"race-{i}")
        assert job is not None
        cli.send({"cmd": "cancel", "job": job})
        jobs.append(job)
    fins = cli.drain_finished(jobs)
    exits = sorted({f["exit"] for f in fins.values()})
    assert set(exits) <= {0, 5}, exits
    cli.close()
    print(f"ok   cancel/submit races: 12 jobs, one terminal event each, "
          f"exits {exits}")


def phase_memory_budget(d):
    """A budget-busting submission unwinds with exit 6 and reports peak
    bytes; a generous budget leaves the same netlist untouched."""
    cli = Client(d.sock_path)
    # Fresh topology so the cold parse charge hits this job's account.
    job, _ = cli.submit(tiny_op(9001), label="mem-bust", maxbytes=64)
    fin = cli.wait_finished(job)
    assert fin["exit"] == 6, fin
    assert fin.get("peakBytes", 0) > 64, fin
    job2, _ = cli.submit(tiny_op(9002), label="mem-ok",
                         maxbytes=256 * 1024 * 1024)
    fin2 = cli.wait_finished(job2)
    assert fin2["exit"] == 0, fin2
    assert fin2.get("peakBytes", 0) > 0, fin2
    cli.close()
    print(f"ok   memory budget: exit 6 at 64 B (peak "
          f"{fin['peakBytes']} B), exit 0 when generous")


def phase_overload(rficd, tmpdir):
    """Flood a tiny queue: batch shed above high water, queue-full at
    depth, degraded flag set, full recovery after drain."""
    d = Daemon(rficd, tmpdir, "overload",
               ["--workers", "1", "--queue-depth", "4",
                "--high-water", "2", "--aging", "2"])
    try:
        cli = Client(d.sock_path)
        blocker, _ = cli.submit(HEAVY, label="blocker")  # occupancy 1
        admitted = [blocker]
        b1, _ = cli.submit(tiny_op(100), label="b1", priority="batch")
        assert b1 is not None  # occupancy 2 (below high water at admission)
        admitted.append(b1)
        shed_job, msg = cli.submit(tiny_op(101), label="b2",
                                   priority="batch")
        assert shed_job is None and msg["reason"] == "shed", msg
        assert msg.get("degraded") is True, msg
        n1, _ = cli.submit(tiny_op(102), label="n1")  # occupancy 3
        n2, _ = cli.submit(tiny_op(103), label="n2")  # occupancy 4
        assert n1 is not None and n2 is not None
        admitted += [n1, n2]
        full_job, msg = cli.submit(tiny_op(104), label="n3")
        assert full_job is None and msg["reason"] == "queue-full", msg

        # queued/running settle once the worker pops the blocker; the
        # active total (queued + running) is 4 from admission onward.
        st = cli.settled_stats(
            lambda s: s["queued"] == 3 and s["running"] == 1)
        assert st["degraded"] is True, st
        assert st["shed"] >= 1 and st["rejectedFull"] >= 1, st
        assert st["maxQueueAge"] >= 0.0, st

        # Unblock and drain; every admitted job terminates exactly once.
        cli.send({"cmd": "cancel", "job": blocker})
        fins = cli.drain_finished(admitted)
        assert fins[blocker]["exit"] == 5
        for j in (b1, n1, n2):
            assert fins[j]["exit"] == 0, fins[j]

        # Recovery: pressure gone, batch admitted again, not degraded.
        st = cli.settled_stats(
            lambda s: s["queued"] == 0 and s["running"] == 0
            and s["finished"] == len(admitted))
        assert st["degraded"] is False, st
        b3, _ = cli.submit(tiny_op(105), label="b3", priority="batch")
        assert b3 is not None
        assert cli.wait_finished(b3)["exit"] == 0
        cli.close()
        d.shutdown_clean()
        print("ok   overload: shed->queue-full->degraded, clean recovery")
    finally:
        d.kill()


def phase_mem_spike(rficd, tmpdir):
    """A fault-injected memory spike (RFIC_INJECT_FAULT=mem-spike) trips
    the budget of the running job: exit 6, daemon unharmed."""
    d = Daemon(rficd, tmpdir, "memspike",
               ["--workers", "1"],
               env_extra={"RFIC_INJECT_FAULT": "mem-spike:1"})
    try:
        cli = Client(d.sock_path)
        job, _ = cli.submit(DIVIDER, label="spiked")
        fin = cli.wait_finished(job)
        assert fin["exit"] == 6, fin
        # The one-shot injection is spent; the next job runs normally.
        job2, _ = cli.submit(DIVIDER, label="after-spike")
        fin2 = cli.wait_finished(job2)
        assert fin2["exit"] == 0, fin2
        cli.close()
        d.shutdown_clean()
        print("ok   mem-spike injection: exit 6 once, clean after")
    finally:
        d.kill()


def main():
    global DIVIDER
    rficd, examples = sys.argv[1], sys.argv[2]
    with open(os.path.join(examples, "divider.cir")) as f:
        DIVIDER = f.read()
    tmpdir = tempfile.mkdtemp(prefix="rficd_chaos_")

    d = Daemon(rficd, tmpdir, "chaos", ["--workers", "2"])
    try:
        phase_malformed(d)
        phase_oversized(d)
        phase_disconnect(d)
        phase_lazy_reader(d)
        phase_cancel_races(d)
        phase_memory_budget(d)

        # Post-chaos round trip: structured stats are coherent and the
        # daemon still simulates correctly, then exits 0.
        cli = Client(d.sock_path)
        st = cli.settled_stats(
            lambda s: s["queued"] == 0 and s["running"] == 0)
        for key in ("queued", "running", "queueDepth", "highWater",
                    "degraded", "shed", "promoted", "admitted", "finished",
                    "memPeakBytes", "text"):
            assert key in st, f"stats missing {key}: {sorted(st)}"
        assert st["admitted"] >= st["finished"] > 0, st
        assert st["memPeakBytes"] > 0, st
        job, _ = cli.submit(DIVIDER, label="post-chaos")
        assert cli.wait_finished(job)["exit"] == 0
        cli.close()
        d.shutdown_clean()
        print("ok   post-chaos: stats coherent, clean shutdown")
    finally:
        d.kill()

    phase_overload(rficd, tmpdir)
    phase_mem_spike(rficd, tmpdir)
    print("rficd_chaos: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
