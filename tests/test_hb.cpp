// Harmonic balance: exact linear answers, cross-validation against
// shooting, two-tone intermodulation against perturbation theory, solver
// ablation (direct vs matrix-implicit GMRES), and spectrum utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/dc.hpp"
#include "analysis/shooting.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "fft/plan.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"
#include "perf/perf.hpp"

namespace rfic::hb {
namespace {

using namespace rfic::circuit;
using analysis::dcOperatingPoint;
using numeric::RVec;

TEST(HB, LinearRCMatchesAnalytic) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1000.0));
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-6);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HarmonicBalance hb(sys, {{1000.0, 4}});
  const auto sol = hb.solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const Complex h = 1.0 / Complex(1.0, kTwoPi * 1000.0 * 1e-3);
  EXPECT_NEAR(lineAmplitude(sol, static_cast<std::size_t>(out), 1),
              std::abs(h), 1e-8);
  // No spurious harmonics in a linear circuit.
  for (int k = 2; k <= 4; ++k)
    EXPECT_LT(lineAmplitude(sol, static_cast<std::size_t>(out), k), 1e-10);
}

TEST(HB, SingleToneMatchesShootingOnRectifier) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e4));
  Diode::Params dp;
  c.add<Diode>("D1", in, out, dp);
  c.add<Resistor>("RL", out, -1, 1e4);
  c.add<Capacitor>("CL", out, -1, 1e-8);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HBOptions ho;
  ho.continuationSteps = 4;
  HarmonicBalance hb(sys, {{1e4, 12}}, ho);
  const auto sol = hb.solve(dc.x);
  ASSERT_TRUE(sol.converged);

  analysis::ShootingOptions so;
  so.stepsPerPeriod = 3000;
  const auto pss = analysis::shootingPSS(sys, 1e-4, RVec(sys.dim(), 0.0), so);
  ASSERT_TRUE(pss.converged);
  Real avg = 0;
  for (std::size_t k = 0; k + 1 < pss.trajectory.size(); ++k)
    avg += pss.trajectory[k][static_cast<std::size_t>(out)];
  avg /= static_cast<Real>(pss.trajectory.size() - 1);
  EXPECT_NEAR(sol.at(static_cast<std::size_t>(out), 0).real(), avg, 2e-3);
}

TEST(HB, TwoToneIM3MatchesPerturbationTheory) {
  // Series Rs into g1·v + g3·v³: IM3 voltage ≈ (3/4)·g3·A³/(gs + g1) for
  // per-tone amplitude A at the nonlinear node.
  Circuit c;
  const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
  const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
  c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.06, 1.0e6),
                 TimeAxis::slow);
  c.add<VSource>("V2", s2, a, br2, std::make_shared<SineWave>(0.06, 1.3e6),
                 TimeAxis::fast);
  c.add<Resistor>("Rs", s2, b, 1000.0);
  c.add<CubicConductance>("GN", b, -1, 1e-3, 1e-2);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HarmonicBalance hb(sys, {{1.0e6, 3}, {1.3e6, 3}});
  const auto sol = hb.solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const auto bIdx = static_cast<std::size_t>(b);
  const Real aTone = lineAmplitude(sol, bIdx, 1, 0);
  const Real im3 = lineAmplitude(sol, bIdx, -1, 2);  // 2f2 − f1
  const Real predicted = 0.75 * 1e-2 * aTone * aTone * aTone / (2e-3);
  EXPECT_NEAR(im3, predicted, 0.15 * predicted);
  // IM3 on the other side (2f1 − f2) has the same magnitude by symmetry.
  EXPECT_NEAR(lineAmplitude(sol, bIdx, 2, -1), im3, 0.05 * im3);
}

TEST(HB, DirectAndIterativeSolversAgree) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(0.8, 1e5));
  c.add<Resistor>("Rs", in, out, 500.0);
  c.add<Diode>("D1", out, -1, Diode::Params{});
  c.add<Resistor>("RL", out, -1, 2000.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);

  HBOptions direct;
  direct.useDirectSolver = true;
  direct.continuationSteps = 2;
  HBOptions iterative;
  iterative.continuationSteps = 2;

  const auto sd = HarmonicBalance(sys, {{1e5, 8}}, direct).solve(dc.x);
  const auto si = HarmonicBalance(sys, {{1e5, 8}}, iterative).solve(dc.x);
  ASSERT_TRUE(sd.converged);
  ASSERT_TRUE(si.converged);
  for (int k = 0; k <= 8; ++k) {
    const Complex d = sd.at(static_cast<std::size_t>(out), k);
    const Complex i = si.at(static_cast<std::size_t>(out), k);
    EXPECT_NEAR(std::abs(d - i), 0.0, 1e-7) << "harmonic " << k;
  }
  EXPECT_GT(si.gmresIterations, 0u);
  EXPECT_EQ(sd.gmresIterations, 0u);
}

TEST(HB, ConjugateSymmetryAtNegativeIndex) {
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e3));
  c.add<Resistor>("R1", in, -1, 50.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  const auto sol = HarmonicBalance(sys, {{1e3, 3}}).solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const Complex plus = sol.at(0, 1);
  const Complex minus = sol.at(0, -1);
  EXPECT_NEAR(std::abs(minus - std::conj(plus)), 0.0, 1e-15);
  // Outside the truncation box: exactly zero.
  EXPECT_EQ(sol.at(0, 9), Complex(0.0, 0.0));
}

TEST(HB, EvaluateReconstructsWaveform) {
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(2.0, 1e3, 0.3));
  c.add<Resistor>("R1", in, -1, 50.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  const auto sol = HarmonicBalance(sys, {{1e3, 3}}).solve(dc.x);
  ASSERT_TRUE(sol.converged);
  for (Real t : {0.0, 1e-4, 3.7e-4, 9e-4}) {
    EXPECT_NEAR(sol.evaluate(static_cast<std::size_t>(in), t, t),
                2.0 * std::sin(kTwoPi * 1e3 * t + 0.3), 1e-8);
  }
}

TEST(HB, UnknownCountsScaleWithTonesAndHarmonics) {
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e3));
  c.add<Resistor>("R1", in, -1, 50.0);
  MnaSystem sys(c);
  const HarmonicBalance h1(sys, {{1e3, 5}});
  EXPECT_EQ(h1.numRealUnknowns(), 2u * (2 * 5 + 1));
  const HarmonicBalance h2(sys, {{1e3, 5}, {1.7e3, 5}});
  EXPECT_EQ(h2.numRealUnknowns(), 2u * (2 * 5 + 1) * (2 * 5 + 1));
}

TEST(HB, InvalidTonesThrow) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), -1, 50.0);
  MnaSystem sys(c);
  EXPECT_THROW(HarmonicBalance(sys, {}), InvalidArgument);
  EXPECT_THROW(HarmonicBalance(sys, {{0.0, 3}}), InvalidArgument);
  EXPECT_THROW(HarmonicBalance(sys, {{1e3, 0}}), InvalidArgument);
  EXPECT_THROW(HarmonicBalance(sys, {{1e3, 1}, {2e3, 1}, {3e3, 1}}),
               InvalidArgument);
}

TEST(HB, SquareWaveFourierContent) {
  // Square drive into a resistor: HB must reproduce the 4/π odd-harmonic
  // series and vanishing even harmonics.
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br,
                 std::make_shared<SquareWave>(-1.0, 1.0, 1e6, 0.01));
  c.add<Resistor>("R1", in, -1, 50.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HBOptions ho;
  ho.oversample = 8;  // resolve the fast edges
  const auto sol = HarmonicBalance(sys, {{1e6, 9}}, ho).solve(dc.x);
  ASSERT_TRUE(sol.converged);
  const auto u = static_cast<std::size_t>(in);
  const Real a1 = lineAmplitude(sol, u, 1);
  // Finite rise time softens the ideal 4/π slightly.
  EXPECT_NEAR(a1, 4.0 / kPi, 0.02);
  EXPECT_NEAR(lineAmplitude(sol, u, 3) / a1, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(lineAmplitude(sol, u, 5) / a1, 1.0 / 5.0, 0.03);
  EXPECT_LT(lineAmplitude(sol, u, 2), 1e-6);
  EXPECT_LT(lineAmplitude(sol, u, 4), 1e-6);
}

TEST(HB, SteadyStateSolveIsAllocationFree) {
  // The zero-allocation contract of the spectral hot path, checked by
  // counters (ISSUE 4): the engine-owned workspace grows while the first
  // solve warms up, then a second identical solve reuses every buffer
  // (workspaceGrowth flat), replays the cached plans (no new PlanCache
  // misses), and still does real spectral work (fftCount advances).
  Circuit c;
  const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
  const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
  c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.06, 1.0e6),
                 TimeAxis::slow);
  c.add<VSource>("V2", s2, a, br2, std::make_shared<SineWave>(0.06, 1.3e6),
                 TimeAxis::fast);
  c.add<Resistor>("Rs", s2, b, 1000.0);
  c.add<CubicConductance>("GN", b, -1, 1e-3, 1e-2);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  HarmonicBalance eng(sys, {{1.0e6, 4}, {1.3e6, 4}});

  const auto warm = eng.solve(dc.x);
  ASSERT_TRUE(warm.converged);
  const std::uint64_t growsAfterWarmup = eng.workspaceGrowth();
  EXPECT_GT(growsAfterWarmup, 0u);  // the first solve did size the buffers

  const auto missesBefore = fft::PlanCache::global().misses();
  const auto fftsBefore = perf::global().snapshot().fftCount;
  const auto again = eng.solve(dc.x);
  ASSERT_TRUE(again.converged);
  EXPECT_EQ(eng.workspaceGrowth(), growsAfterWarmup);
  EXPECT_EQ(fft::PlanCache::global().misses(), missesBefore);
  EXPECT_GT(perf::global().snapshot().fftCount, fftsBefore);
  // And the per-solution counters saw the spectral work too.
  EXPECT_GT(again.perf.fftCount, 0u);
}

TEST(Spectrum, DbcReferencesStrongestLine) {
  Circuit c;
  const int in = c.node("in");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1e6));
  c.add<Resistor>("Rs", in, -1, 50.0);
  MnaSystem sys(c);
  const auto dc = dcOperatingPoint(sys);
  const auto sol = HarmonicBalance(sys, {{1e6, 3}}).solve(dc.x);
  const auto lines = spectrumOf(sol, static_cast<std::size_t>(in));
  // Find the fundamental: dbc = 0 there.
  bool foundCarrier = false;
  for (const auto& l : lines) {
    if (l.k1 == 1) {
      EXPECT_NEAR(l.dbc, 0.0, 1e-9);
      foundCarrier = true;
    }
  }
  EXPECT_TRUE(foundCarrier);
}

TEST(Spectrum, ToDbHandlesZeros) {
  EXPECT_NEAR(toDb(10.0, 1.0), 20.0, 1e-12);
  EXPECT_EQ(toDb(0.0, 1.0), -400.0);
  EXPECT_EQ(toDb(1.0, 0.0), -400.0);
}

TEST(Spectrum, TransientSpectrumFindsTone) {
  const Real fs = 1e6, f0 = 12e3;
  std::vector<Real> samples(4096);
  for (std::size_t i = 0; i < samples.size(); ++i)
    samples[i] = 0.7 * std::sin(kTwoPi * f0 * static_cast<Real>(i) / fs);
  const auto sp = transientSpectrum(samples, fs);
  EXPECT_NEAR(amplitudeNear(sp, f0), 0.7, 0.02);
  EXPECT_LT(amplitudeNear(sp, 300e3), 1e-3);
}

}  // namespace
}  // namespace rfic::hb
