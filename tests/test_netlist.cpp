// SPICE-netlist parser: numbers, element cards, models, error handling,
// and end-to-end parse → DC.
#include <gtest/gtest.h>

#include "analysis/dc.hpp"
#include "circuit/netlist.hpp"

namespace rfic::circuit {
namespace {

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("-3.5e2"), -350.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1.5E-3"), 1.5e-3);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("100n"), 1e-7);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("3p"), 3e-12);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("5f"), 5e-15);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2u"), 2e-6);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2t"), 2e12);
}

TEST(SpiceNumber, TrailingUnitsIgnored) {
  EXPECT_DOUBLE_EQ(parseSpiceNumber("50ohm"), 50.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("2.2kohm"), 2200.0);
  EXPECT_DOUBLE_EQ(parseSpiceNumber("5v"), 5.0);
}

TEST(SpiceNumber, MalformedThrows) {
  EXPECT_THROW(parseSpiceNumber(""), InvalidArgument);
  EXPECT_THROW(parseSpiceNumber("abc"), InvalidArgument);
}

TEST(Netlist, ParsesPassivesAndSources) {
  Circuit c;
  parseNetlist(R"(* test circuit
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 1k
C1 mid 0 1u
L1 mid out 10n
)",
               c);
  // in, mid, out nodes + V1 branch + L1 branch.
  EXPECT_EQ(c.numUnknowns(), 5u);
  EXPECT_EQ(c.devices().size(), 5u);
}

TEST(Netlist, ParsedDividerSolvesCorrectly) {
  Circuit c;
  parseNetlist("V1 in 0 DC 9\nR1 in mid 2k\nR2 mid 0 1k\n", c);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(c.findNode("mid"))], 3.0, 1e-9);
}

TEST(Netlist, DiodeWithModel) {
  Circuit c;
  parseNetlist(R"(
.model dfast d (is=1e-15 n=1.2 cjo=2p tt=5n)
V1 a 0 DC 5
R1 a b 1k
D1 b 0 dfast
)",
               c);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vd = dc.x[static_cast<std::size_t>(c.findNode("b"))];
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 1.0);
}

TEST(Netlist, BJTInverterBias) {
  Circuit c;
  parseNetlist(R"(
.model qn npn (is=1e-16 bf=100 vaf=60)
VCC vcc 0 DC 5
VIN in 0 DC 0.65
RC vcc c 4.7k
Q1 c in 0 qn
)",
               c);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
  const Real vc = dc.x[static_cast<std::size_t>(c.findNode("c"))];
  EXPECT_LT(vc, 5.0);  // transistor pulls the collector down
  EXPECT_GT(vc, 0.0);
}

TEST(Netlist, ContinuationLinesAndComments) {
  Circuit c;
  parseNetlist("* comment\nR1 a 0 ; trailing comment\n+ 1k\nV1 a 0 DC 1\n", c);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  EXPECT_TRUE(dc.converged);
}

TEST(Netlist, SinSourceAndFastAxisTag) {
  Circuit c;
  parseNetlist("V1 a 0 SIN(0 1 1meg) AXIS=FAST\nR1 a 0 50\n", c);
  analysis::MnaSystem sys(c);
  circuit::MnaEval e;
  numeric::RVec x(2, 0.0);
  // Fast axis at a quarter of the 1 MHz period.
  sys.evalBivariate(x, 0.0, 0.25e-6, e, false);
  EXPECT_NEAR(e.b[1], 1.0, 1e-9);
  // Slow axis alone leaves the source at zero phase.
  sys.evalBivariate(x, 0.25e-6, 0.0, e, false);
  EXPECT_NEAR(e.b[1], 0.0, 1e-9);
}

TEST(Netlist, MutualInductanceCard) {
  Circuit c;
  parseNetlist(R"(
L1 a 0 10n
L2 b 0 10n
K1 L1 L2 0.8
R1 a 0 50
R2 b 0 50
)",
               c);
  EXPECT_EQ(c.devices().size(), 5u);
}

TEST(Netlist, CurrentControlledSourceCards) {
  Circuit c;
  parseNetlist(R"(
V1 in 0 DC 2
Rin in 0 100
F1 o1 0 V1 2.0
Ro1 o1 0 50
H1 o2 0 V1 500
Ro2 o2 0 1k
)",
               c);
  analysis::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  ASSERT_TRUE(dc.converged);
  // iV1 = -2/100 = -20 mA. CCCS: 2·iV1 = -40 mA extracted from o1 → v(o1)
  // = -(-0.04)·50 ... sign: F pushes gain·i out of o1: f[o1] += 2·iV1.
  const Real vo1 = dc.x[static_cast<std::size_t>(c.findNode("o1"))];
  EXPECT_NEAR(vo1, 2.0, 1e-9);  // -(2·(-0.02))·50 = +2 V
  const Real vo2 = dc.x[static_cast<std::size_t>(c.findNode("o2"))];
  EXPECT_NEAR(vo2, 500.0 * -0.02, 1e-9);  // r·iV1 = -10 V
}

TEST(Netlist, CCCSUnknownSourceThrows) {
  Circuit c;
  EXPECT_THROW(parseNetlist("F1 a 0 VX 2.0\nRa a 0 1k\n", c),
               InvalidArgument);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  Circuit c;
  try {
    parseNetlist("R1 a 0 1k\nXBOGUS a b c\n", c);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Netlist, UnknownModelThrows) {
  Circuit c;
  EXPECT_THROW(parseNetlist("D1 a 0 nosuchmodel\n", c), InvalidArgument);
}

TEST(Netlist, MissingNodesThrow) {
  Circuit c;
  EXPECT_THROW(parseNetlist("R1 a\n", c), InvalidArgument);
}

}  // namespace
}  // namespace rfic::circuit
