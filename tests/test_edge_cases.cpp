// Edge cases across the numerical substrates: degenerate sizes, boundary
// parameters, and failure paths that the mainline tests don't reach.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "extraction/panel_kernel.hpp"
#include "fft/fft.hpp"
#include "hb/spectrum.hpp"
#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "numeric/qr.hpp"
#include "numeric/svd.hpp"
#include "rom/pvl.hpp"
#include "sparse/sparse_lu.hpp"

namespace rfic {
namespace {

using numeric::CVec;
using numeric::RMat;
using numeric::RVec;

TEST(Edge, OneByOneEverything) {
  RMat a(1, 1);
  a(0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(numeric::LU<Real>(a).solve(RVec{8.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(numeric::LU<Real>(a).determinant(), 4.0);
  const auto d = numeric::svd(a);
  EXPECT_DOUBLE_EQ(d.s[0], 4.0);
  const CVec e = numeric::eigenvalues(a);
  EXPECT_NEAR(e[0].real(), 4.0, 1e-14);
  const auto qr = numeric::thinQR(a);
  EXPECT_NEAR(std::abs(qr.r(0, 0)), 4.0, 1e-14);
}

TEST(Edge, SVDOfZeroMatrixHasZeroRank) {
  const auto d = numeric::svd(RMat(4, 3));
  EXPECT_EQ(numeric::numericalRank(d, 1e-12), 0u);
  for (std::size_t i = 0; i < d.s.size(); ++i) EXPECT_EQ(d.s[i], 0.0);
}

TEST(Edge, EigOfDefectiveJordanBlock) {
  // [[2 1],[0 2]] — defective; eigenvalues must both come out near 2.
  RMat a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 1) = 2;
  const CVec e = numeric::eigenvalues(a);
  EXPECT_NEAR(std::abs(e[0] - 2.0), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(e[1] - 2.0), 0.0, 1e-6);
}

TEST(Edge, FFTTrivialLengths) {
  std::vector<Complex> one{{3.0, -1.0}};
  fft::fft(one);
  EXPECT_EQ(one[0], Complex(3.0, -1.0));
  std::vector<Complex> empty;
  fft::fft(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(Edge, SparseLUOnePivotChain) {
  // Strictly lower bidiagonal with implicit permutation demands: every
  // pivot must be found off-diagonal.
  const std::size_t n = 6;
  sparse::RTriplets t(n, n);
  for (std::size_t i = 0; i < n; ++i) t.add(i, (i + 1) % n, 1.0 + Real(i));
  sparse::RSparseLU lu(t);
  RVec b(n, 1.0);
  const RVec x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[(i + 1) % n], 1.0 / (1.0 + Real(i)), 1e-12);
}

TEST(Edge, PanelPotentialAtOwnCornerIsFinite) {
  extraction::Panel p;
  p.corner = {0, 0, 0};
  p.edgeA = {1e-3, 0, 0};
  p.edgeB = {0, 1e-3, 0};
  const Real vCorner = extraction::panelPotential(p, {0, 0, 0});
  const Real vEdge = extraction::panelPotential(p, {0.5e-3, 0, 0});
  const Real vCenter = extraction::panelPotential(p, {0.5e-3, 0.5e-3, 0});
  EXPECT_TRUE(std::isfinite(vCorner));
  EXPECT_TRUE(std::isfinite(vEdge));
  // Center is the potential maximum for a uniform charge.
  EXPECT_GT(vCenter, vEdge);
  EXPECT_GT(vEdge, vCorner * 0.99);
}

TEST(Edge, PVLOrderEqualToSystemSizeIsExact) {
  const auto sys = rom::makeRCLine(6, 1.0, 1.0);
  const auto rom = rom::pvl(sys, 0.0, sys.n).rom;
  for (Real w : {0.1, 1.0, 10.0}) {
    const Complex s(0.0, w);
    const Complex ref = sys.transferFunction(s);
    EXPECT_LT(std::abs(rom.transfer(s) - ref), 1e-8 * std::abs(ref));
  }
}

TEST(Edge, TransientZeroSpanRejected) {
  circuit::Circuit c;
  c.add<circuit::Resistor>("R", c.node("a"), -1, 1.0);
  analysis::MnaSystem sys(c);
  analysis::TransientOptions to;
  to.tstart = 1.0;
  to.tstop = 1.0;
  to.dt = 0.1;
  EXPECT_THROW(analysis::runTransient(sys, RVec(1, 0.0), to),
               InvalidArgument);
}

TEST(Edge, SpectrumOfConstantSignal) {
  std::vector<Real> samples(64, 2.5);
  const auto sp = hb::transientSpectrum(samples, 1e3);
  EXPECT_NEAR(sp.amplitude[0], 2.5, 1e-9);
  for (std::size_t k = 2; k < sp.amplitude.size(); ++k)
    EXPECT_NEAR(sp.amplitude[k], 0.0, 1e-9);
}

TEST(Edge, LeastSquaresRankDeficientThrows) {
  RMat a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // columns parallel
  }
  EXPECT_THROW(numeric::leastSquares(a, RVec(4, 1.0)), NumericalError);
}

TEST(Edge, SquareWaveDutyCycleIsHalf) {
  circuit::SquareWave sq(0.0, 1.0, 1.0, 0.02);
  Real sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    sum += sq.value(static_cast<Real>(i) / n);
  EXPECT_NEAR(sum / n, 0.5, 1e-3);
}

TEST(Edge, ConditionEstimateOfNearSingularMatrix) {
  RMat a = RMat::identity(3);
  a(2, 2) = 1e-14;
  EXPECT_GT(numeric::conditionEstimate(a), 1e12);
}

TEST(Edge, ZeroLengthRealFFTRejected) {
  // rfft of an empty signal used to fabricate a one-element spectrum; the
  // inverse direction wrote through an empty buffer (out-of-bounds). Both
  // are now explicit errors.
  EXPECT_THROW(fft::rfft({}), InvalidArgument);
  EXPECT_THROW(fft::irfft({Complex(1.0, 0.0)}, 0), InvalidArgument);
}

TEST(Edge, RealFFTRoundTripSmallestLengths) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<Real> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<Real>(i) + 0.5;
    const auto half = fft::rfft(x);
    ASSERT_EQ(half.size(), n / 2 + 1);
    const auto back = fft::irfft(half, n);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-12);
  }
}

TEST(Edge, FFT2SizeMismatchRejected) {
  std::vector<Complex> x(6);
  EXPECT_THROW(fft::fft2(x, 2, 2), InvalidArgument);
  EXPECT_THROW(fft::ifft2(x, 4, 2), InvalidArgument);
}

TEST(Edge, SingularDenseLUThrowsNumericalError) {
  RMat a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(numeric::LU<Real>{a}, NumericalError);
}

TEST(Edge, SingularSparseSystemRejected) {
  sparse::RTriplets t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 1.0);  // rank 1
  EXPECT_THROW(sparse::RSparseLU lu{t}, NumericalError);
}

}  // namespace
}  // namespace rfic
