// Tests for the numerics-contract layer (src/diag/): finite-value and
// dimension checks, FE-exception trapping, and the structured convergence
// statuses every iterative solver must report.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "diag/contracts.hpp"
#include "diag/convergence.hpp"
#include "diag/fe_trap.hpp"
#include "numeric/dense.hpp"
#include "sparse/krylov.hpp"

namespace rfic {
namespace {

using diag::SolverStatus;
using numeric::RVec;
using sparse::IterativeOptions;
using sparse::IterativeResult;
using sparse::RCSR;

constexpr Real kNaN = std::numeric_limits<Real>::quiet_NaN();
constexpr Real kInf = std::numeric_limits<Real>::infinity();

TEST(Contracts, CheckFiniteScalarAcceptsFiniteValues) {
  EXPECT_NO_THROW(diag::checkFinite(0.0, "x"));
  EXPECT_NO_THROW(diag::checkFinite(-1e308, "x"));
  EXPECT_NO_THROW(diag::checkFinite(Complex(1.0, -2.0), "z"));
}

TEST(Contracts, CheckFiniteScalarThrowsOnNaNAndInf) {
  EXPECT_THROW(diag::checkFinite(kNaN, "x"), NumericalError);
  EXPECT_THROW(diag::checkFinite(kInf, "x"), NumericalError);
  EXPECT_THROW(diag::checkFinite(-kInf, "x"), NumericalError);
  EXPECT_THROW(diag::checkFinite(Complex(0.0, kNaN), "z"), NumericalError);
  EXPECT_THROW(diag::checkFinite(Complex(kInf, 0.0), "z"), NumericalError);
}

TEST(Contracts, CheckFiniteContainerReportsOffendingIndex) {
  RVec v(4, 1.0);
  EXPECT_NO_THROW(diag::checkFinite(v, "v"));
  v[2] = kNaN;
  try {
    diag::checkFinite(v, "v");
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("index 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("v"), std::string::npos);
  }
}

TEST(Contracts, CheckDimsReportsBothSizes) {
  EXPECT_NO_THROW(diag::checkDims(3, 3, "rhs"));
  try {
    diag::checkDims(3, 5, "rhs");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("got 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 5"), std::string::npos) << msg;
  }
}

TEST(Contracts, ExactlyZeroIsExact) {
  EXPECT_TRUE(diag::exactlyZero(0.0));
  EXPECT_TRUE(diag::exactlyZero(-0.0));
  EXPECT_FALSE(diag::exactlyZero(1e-300));
  EXPECT_FALSE(diag::exactlyZero(kNaN));
  EXPECT_TRUE(diag::exactlyZero(Complex(0.0, 0.0)));
  EXPECT_FALSE(diag::exactlyZero(Complex(0.0, 1e-300)));
}

TEST(Contracts, MacrosMatchBuildMode) {
  // In the Diag build type the hot-path macros are live; in every other
  // build they compile to nothing. The test adapts so the suite passes
  // under both configurations.
#ifdef RFIC_DIAG
  EXPECT_THROW(RFIC_CHECK_FINITE(kNaN, "macro"), NumericalError);
  EXPECT_THROW(RFIC_CHECK_DIMS(2, 3, "macro"), InvalidArgument);
  EXPECT_THROW(RFIC_CONTRACT(1 + 1 == 3, "macro"), NumericalError);
#else
  EXPECT_NO_THROW(RFIC_CHECK_FINITE(kNaN, "macro"));
  EXPECT_NO_THROW(RFIC_CHECK_DIMS(2, 3, "macro"));
  EXPECT_NO_THROW(RFIC_CONTRACT(1 + 1 == 3, "macro"));
#endif
}

TEST(FeTrap, ScopedTrapRestoresQuietNaNBehaviour) {
  // Construct and destroy the guard; afterwards quiet-NaN arithmetic must
  // work again (i.e. the trap mask was restored, not left enabled).
  { diag::ScopedFeTrap trap; }
  volatile Real zero = 0.0;
  volatile Real q = zero / (zero + 1.0);  // fine under any mask
  EXPECT_EQ(q, 0.0);
  const Real nan = std::sqrt(-1.0);
  EXPECT_TRUE(std::isnan(nan));
}

// --- structured convergence statuses -------------------------------------

// 3x3 singular system: rank-2 matrix with an inconsistent right-hand side.
// No x satisfies A x = b, so a correct solver must classify its failure
// instead of returning an unconverged result that looks like a timeout.
RCSR singularMatrix() {
  sparse::RTriplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 1.0);  // row 1 duplicates row 0
  t.add(2, 2, 1.0);
  return RCSR(t);
}

TEST(SolverStatus, GmresClassifiesSingularSystem) {
  const RCSR a = singularMatrix();
  const sparse::CSROperator<Real> op(a);
  RVec b{1.0, 0.0, 0.0};  // inconsistent: rows 0 and 1 demand different sums
  RVec x;
  IterativeOptions opts;
  opts.maxIterations = 100;
  const IterativeResult res = sparse::gmres(op, b, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_NE(res.status, SolverStatus::NotRun);
  EXPECT_NE(res.status, SolverStatus::Converged);
  // The Krylov space of this rank-deficient system exhausts after a couple
  // of restarts with no residual reduction: stagnation, not a timeout.
  EXPECT_EQ(res.status, SolverStatus::Stagnated) << res.statusName();
  EXPECT_GT(res.residualNorm, 0.0);
}

TEST(SolverStatus, BicgstabClassifiesSingularSystem) {
  const RCSR a = singularMatrix();
  const sparse::CSROperator<Real> op(a);
  RVec b{1.0, 0.0, 0.0};
  RVec x;
  IterativeOptions opts;
  opts.maxIterations = 100;
  const IterativeResult res = sparse::bicgstab(op, b, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_NE(res.status, SolverStatus::NotRun);
  EXPECT_NE(res.status, SolverStatus::Converged);
  // BiCGSTAB's recurrence breaks down on the singular operator rather than
  // looping to the iteration cap.
  EXPECT_EQ(res.status, SolverStatus::Breakdown) << res.statusName();
}

TEST(SolverStatus, ZeroRhsConvergesImmediately) {
  const RCSR a = singularMatrix();
  const sparse::CSROperator<Real> op(a);
  RVec b(3, 0.0);
  RVec x{5.0, 5.0, 5.0};
  const IterativeResult res = sparse::gmres(op, b, x, IterativeOptions{});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.status, SolverStatus::Converged);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(x[i], 0.0);
}

TEST(SolverStatus, NanOperatorReportsDiverged) {
  // An operator that emits NaN (e.g. an uninitialized device stamp) must be
  // reported as Diverged, not spin until maxIterations.
  const sparse::FunctionOperator<Real> op(
      2, [](const RVec& in, RVec& out) {
        out.resize(in.size());
        for (std::size_t i = 0; i < in.size(); ++i) out[i] = kNaN;
      });
  RVec b{1.0, 1.0};
  RVec x;
  IterativeOptions opts;
  opts.maxIterations = 50;
  const IterativeResult gm = sparse::gmres(op, b, x, opts);
  EXPECT_FALSE(gm.converged);
  EXPECT_EQ(gm.status, SolverStatus::Diverged) << gm.statusName();

  RVec x2;
  const IterativeResult bi = sparse::bicgstab(op, b, x2, opts);
  EXPECT_FALSE(bi.converged);
  // The NaN surfaces either in the residual norm (Diverged) or in the
  // breakdown guards (Breakdown) depending on the recurrence path; both
  // are structured classifications, which is the contract.
  EXPECT_TRUE(bi.status == SolverStatus::Diverged ||
              bi.status == SolverStatus::Breakdown)
      << bi.statusName();
}

TEST(SolverStatus, RhsSizeMismatchThrows) {
  const RCSR a = singularMatrix();
  const sparse::CSROperator<Real> op(a);
  RVec b(2, 1.0);  // operator dim is 3
  RVec x;
  EXPECT_THROW(sparse::gmres(op, b, x, IterativeOptions{}), InvalidArgument);
  EXPECT_THROW(sparse::bicgstab(op, b, x, IterativeOptions{}),
               InvalidArgument);
}

TEST(SolverStatus, StatusNamesAreStable) {
  EXPECT_STREQ(diag::toString(SolverStatus::NotRun), "not-run");
  EXPECT_STREQ(diag::toString(SolverStatus::Converged), "converged");
  EXPECT_STREQ(diag::toString(SolverStatus::MaxIterations), "max-iterations");
  EXPECT_STREQ(diag::toString(SolverStatus::Breakdown), "breakdown");
  EXPECT_STREQ(diag::toString(SolverStatus::Stagnated), "stagnated");
  EXPECT_STREQ(diag::toString(SolverStatus::Diverged), "diverged");
  IterativeResult r;
  EXPECT_STREQ(r.statusName(), "not-run");
}

}  // namespace
}  // namespace rfic
