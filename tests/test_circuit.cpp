// Circuit representation and device models: KCL conservation, analytic
// Jacobians versus finite differences (property test over every device),
// waveforms, and noise-source metadata.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <random>

#include "circuit/devices.hpp"
#include "circuit/mna.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::circuit {
namespace {

using numeric::RVec;

TEST(Circuit, NodeManagement) {
  Circuit c;
  EXPECT_EQ(c.node("0"), -1);
  EXPECT_EQ(c.node("gnd"), -1);
  const int a = c.node("a");
  EXPECT_EQ(c.node("a"), a);  // idempotent
  const int b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.numUnknowns(), 2u);
  const int br = c.allocBranch("L1");
  EXPECT_EQ(br, 2);
  EXPECT_EQ(c.findNode("a"), a);
  EXPECT_THROW(c.findNode("zzz"), InvalidArgument);
  EXPECT_EQ(c.unknownName(static_cast<std::size_t>(br)), "I(L1)");
}

// Build-a-device harness: constructs a circuit with the device under test
// plus enough nodes, evaluates at a given state, and checks the analytic
// G = ∂f/∂x and C = ∂q/∂x against central finite differences.
void checkJacobians(Circuit& c, const RVec& x, Real tol = 1e-5) {
  MnaSystem sys(c);
  MnaEval e;
  sys.eval(x, 0.123e-6, e, true);
  const auto g = e.G.toDense();
  const auto cq = e.C.toDense();
  const std::size_t n = sys.dim();
  const Real h = 1e-7;
  for (std::size_t j = 0; j < n; ++j) {
    RVec xp = x, xm = x;
    xp[j] += h;
    xm[j] -= h;
    MnaEval ep, em;
    sys.eval(xp, 0.123e-6, ep, false);
    sys.eval(xm, 0.123e-6, em, false);
    for (std::size_t i = 0; i < n; ++i) {
      const Real gfd = (ep.f[i] - em.f[i]) / (2 * h);
      const Real cfd = (ep.q[i] - em.q[i]) / (2 * h);
      const Real gscale = 1.0 + std::abs(g(i, j));
      const Real cscale = 1.0 + std::abs(cq(i, j));
      EXPECT_NEAR(g(i, j), gfd, tol * gscale) << "G(" << i << "," << j << ")";
      EXPECT_NEAR(cq(i, j), cfd, tol * cscale) << "C(" << i << "," << j << ")";
    }
  }
}

// KCL: the sum of f over all node rows (not branch rows) must vanish for
// any device network with no external sources, at any state.
void checkChargeCurrentConservation(Circuit& c, const RVec& x,
                                    std::size_t numNodes) {
  MnaSystem sys(c);
  MnaEval e;
  sys.eval(x, 0.0, e, false);
  Real fsum = 0, qsum = 0;
  for (std::size_t i = 0; i < numNodes; ++i) {
    fsum += e.f[i];
    qsum += e.q[i];
  }
  EXPECT_NEAR(fsum, 0.0, 1e-12 * (1.0 + numeric::normInf(e.f)));
  EXPECT_NEAR(qsum, 0.0, 1e-12 * (1.0 + numeric::normInf(e.q)));
}

TEST(Devices, ResistorJacobianAndConservation) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  c.add<Resistor>("R1", a, b, 2200.0);
  RVec x{1.7, -0.4};
  checkJacobians(c, x);
  checkChargeCurrentConservation(c, x, 2);
}

TEST(Devices, ResistorRejectsNonPositive) {
  Circuit c;
  const int a = c.node("a");
  EXPECT_THROW(c.add<Resistor>("R1", a, -1, 0.0), InvalidArgument);
  EXPECT_THROW(c.add<Resistor>("R2", a, -1, -10.0), InvalidArgument);
}

TEST(Devices, CapacitorChargeIsLinear) {
  Circuit c;
  const int a = c.node("a");
  c.add<Capacitor>("C1", a, -1, 1e-9);
  MnaSystem sys(c);
  MnaEval e;
  RVec x{2.5};
  sys.eval(x, 0.0, e, false);
  EXPECT_DOUBLE_EQ(e.q[0], 2.5e-9);
  checkJacobians(c, x);
}

TEST(Devices, InductorBranchEquations) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  const int br = c.allocBranch("L1");
  c.add<Inductor>("L1", a, b, br, 1e-6);
  RVec x{1.0, 0.25, 0.003};  // va, vb, iL
  MnaSystem sys(c);
  MnaEval e;
  sys.eval(x, 0.0, e, false);
  EXPECT_DOUBLE_EQ(e.f[0], 0.003);       // current leaves a
  EXPECT_DOUBLE_EQ(e.f[1], -0.003);
  EXPECT_DOUBLE_EQ(e.q[2], 1e-6 * 0.003);  // flux
  EXPECT_DOUBLE_EQ(e.f[2], -(1.0 - 0.25)); // branch voltage equation
  checkJacobians(c, x);
}

TEST(Devices, MutualInductanceCouplesFluxes) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  const int br1 = c.allocBranch("L1"), br2 = c.allocBranch("L2");
  auto& l1 = c.add<Inductor>("L1", a, -1, br1, 4e-6);
  auto& l2 = c.add<Inductor>("L2", b, -1, br2, 1e-6);
  c.add<MutualInductance>("K1", l1, l2, 0.5);  // M = 0.5*sqrt(4e-6*1e-6) = 1e-6
  MnaSystem sys(c);
  MnaEval e;
  RVec x{0, 0, 2.0, 3.0};  // iL1=2, iL2=3
  sys.eval(x, 0.0, e, false);
  EXPECT_NEAR(e.q[2], 4e-6 * 2.0 + 1e-6 * 3.0, 1e-18);
  EXPECT_NEAR(e.q[3], 1e-6 * 3.0 + 1e-6 * 2.0, 1e-18);
  checkJacobians(c, x);
}

TEST(Devices, MutualInductanceRejectsOverCoupling) {
  Circuit c;
  const int a = c.node("a");
  const int br1 = c.allocBranch("L1"), br2 = c.allocBranch("L2");
  auto& l1 = c.add<Inductor>("L1", a, -1, br1, 1e-6);
  auto& l2 = c.add<Inductor>("L2", a, -1, br2, 1e-6);
  EXPECT_THROW(c.add<MutualInductance>("K1", l1, l2, 1.0), InvalidArgument);
}

TEST(Devices, ControlledSourcesJacobians) {
  Circuit c;
  const int o1 = c.node("o1"), o2 = c.node("o2");
  const int c1 = c.node("c1"), c2 = c.node("c2");
  c.add<VCCS>("G1", o1, o2, c1, c2, 0.02);
  const int br = c.allocBranch("E1");
  c.add<VCVS>("E1", o2, -1, c1, c2, br, 4.0);
  c.add<Resistor>("Rl", o1, -1, 1000.0);  // keep the system grounded
  c.add<Resistor>("Rc", c1, c2, 500.0);
  RVec x{0.3, -0.2, 0.9, 0.1, 0.004};
  checkJacobians(c, x);
}

TEST(Devices, CurrentControlledSources) {
  // CCCS mirrors a V-source branch current; CCVS converts it to a voltage.
  Circuit c;
  const int in = c.node("in"), o1 = c.node("o1"), o2 = c.node("o2");
  const int brv = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, brv, std::make_shared<DCWave>(1.0));
  c.add<Resistor>("Rin", in, -1, 100.0);  // sets iV = -10 mA
  c.add<CCCS>("F1", o1, -1, brv, 2.0);
  c.add<Resistor>("Ro1", o1, -1, 50.0);
  const int brh = c.allocBranch("H1");
  c.add<CCVS>("H1", o2, -1, brv, brh, 500.0);
  c.add<Resistor>("Ro2", o2, -1, 1000.0);
  MnaSystem sys(c);
  RVec x(sys.dim(), 0.25);
  checkJacobians(c, x);
}

TEST(Devices, CubicConductanceCurrentAndDerivative) {
  Circuit c;
  const int a = c.node("a");
  c.add<CubicConductance>("GN", a, -1, 1e-3, 2e-3);
  MnaSystem sys(c);
  MnaEval e;
  RVec x{0.5};
  sys.eval(x, 0.0, e, false);
  EXPECT_NEAR(e.f[0], 1e-3 * 0.5 + 2e-3 * 0.125, 1e-15);
  checkJacobians(c, x);
}

class DiodeBias : public ::testing::TestWithParam<Real> {};

TEST_P(DiodeBias, JacobianMatchesFD) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  Diode::Params p;
  p.cj0 = 2e-12;
  p.tt = 5e-9;
  c.add<Diode>("D1", a, b, p);
  RVec x{GetParam(), 0.0};
  checkJacobians(c, x, 1e-4);
  checkChargeCurrentConservation(c, x, 2);
}

INSTANTIATE_TEST_SUITE_P(Bias, DiodeBias,
                         ::testing::Values(-5.0, -0.5, 0.0, 0.3, 0.55, 0.7));

TEST(Devices, DiodeCurrentMatchesShockley) {
  Diode d("D", 0, 1, Diode::Params{});
  const Real is = 1e-14, vt = kVt300;
  for (Real v : {0.2, 0.4, 0.6}) {
    EXPECT_NEAR(d.current(v), is * (std::exp(v / vt) - 1.0) + 1e-12 * v,
                1e-6 * d.current(v));
  }
  // Reverse: saturates at −Is (plus gmin leakage).
  EXPECT_NEAR(d.current(-1.0), -is - 1e-12, 1e-14);
}

TEST(Devices, DiodeExponentialOverflowIsLinearized) {
  Diode d("D", 0, 1, Diode::Params{});
  const Real i5 = d.current(5.0);
  const Real i6 = d.current(6.0);
  EXPECT_TRUE(std::isfinite(i5));
  EXPECT_TRUE(std::isfinite(i6));
  EXPECT_GT(i6, i5);
}

class BJTBias
    : public ::testing::TestWithParam<std::tuple<Real, Real, BJT::Type>> {};

TEST_P(BJTBias, JacobianMatchesFD) {
  const auto [vb, vc, type] = GetParam();
  Circuit c;
  const int nc = c.node("c"), nb = c.node("b"), ne = c.node("e");
  BJT::Params p;
  p.vaf = 50.0;
  p.cje = 1e-12;
  p.cjc = 0.5e-12;
  p.tf = 10e-12;
  c.add<BJT>("Q1", nc, nb, ne, p, type);
  RVec x{vc, vb, 0.0};
  checkJacobians(c, x, 1e-4);
  checkChargeCurrentConservation(c, x, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Bias, BJTBias,
    ::testing::Values(std::tuple<Real, Real, BJT::Type>{0.65, 3.0, BJT::Type::npn},
                      std::tuple<Real, Real, BJT::Type>{0.3, 1.0, BJT::Type::npn},
                      std::tuple<Real, Real, BJT::Type>{0.7, 0.2, BJT::Type::npn},  // saturation
                      std::tuple<Real, Real, BJT::Type>{-0.65, -3.0, BJT::Type::pnp},
                      std::tuple<Real, Real, BJT::Type>{0.0, 0.0, BJT::Type::npn}));

TEST(Devices, BJTForwardActiveGain) {
  // NPN with Vbe = 0.65, collector well above saturation: Ic/Ib ≈ beta.
  Circuit c;
  const int nc = c.node("c"), nb = c.node("b"), ne = c.node("e");
  BJT::Params p;
  p.bf = 120.0;
  c.add<BJT>("Q1", nc, nb, ne, p);
  MnaSystem sys(c);
  MnaEval e;
  RVec x{3.0, 0.65, 0.0};
  sys.eval(x, 0.0, e, false);
  const Real ic = e.f[0], ib = e.f[1];
  EXPECT_GT(ic, 0.0);
  EXPECT_NEAR(ic / ib, 120.0, 1.0);
}

class MOSBias
    : public ::testing::TestWithParam<std::tuple<Real, Real, MOSFET::Type>> {};

TEST_P(MOSBias, JacobianMatchesFD) {
  const auto [vg, vd, type] = GetParam();
  Circuit c;
  const int nd = c.node("d"), ng = c.node("g"), ns = c.node("s");
  MOSFET::Params p;
  p.cgs = 1e-13;
  p.cgd = 0.5e-13;
  c.add<MOSFET>("M1", nd, ng, ns, p, type);
  RVec x{vd, vg, 0.0};
  checkJacobians(c, x, 1e-4);
  checkChargeCurrentConservation(c, x, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Bias, MOSBias,
    ::testing::Values(
        std::tuple<Real, Real, MOSFET::Type>{1.5, 3.0, MOSFET::Type::nmos},  // saturation
        std::tuple<Real, Real, MOSFET::Type>{1.5, 0.3, MOSFET::Type::nmos},  // triode
        std::tuple<Real, Real, MOSFET::Type>{0.3, 2.0, MOSFET::Type::nmos},  // cutoff
        std::tuple<Real, Real, MOSFET::Type>{1.5, -0.5, MOSFET::Type::nmos},  // swapped
        std::tuple<Real, Real, MOSFET::Type>{-1.5, -3.0, MOSFET::Type::pmos}));

TEST(Devices, MOSFETSquareLawSaturation) {
  Circuit c;
  const int nd = c.node("d"), ng = c.node("g"), ns = c.node("s");
  MOSFET::Params p;
  p.vt0 = 0.7;
  p.kp = 2e-3;
  p.lambda = 0.0;
  c.add<MOSFET>("M1", nd, ng, ns, p);
  MnaSystem sys(c);
  MnaEval e;
  RVec x{3.0, 1.7, 0.0};  // vgs = 1.7, vov = 1.0, saturation
  sys.eval(x, 0.0, e, false);
  EXPECT_NEAR(e.f[0], 0.5 * 2e-3 * 1.0, 1e-11);  // gmin leakage included
}

TEST(Waveforms, SineAndMultiTone) {
  SineWave s(2.0, 1000.0, kPi / 2, 0.5);
  EXPECT_NEAR(s.value(0.0), 2.5, 1e-12);  // offset + amp*sin(pi/2)
  MultiToneWave mt({{1.0, 100.0, 0.0}, {0.5, 300.0, 0.0}});
  EXPECT_NEAR(mt.value(0.0), 0.0, 1e-12);
  EXPECT_NEAR(mt.value(1.0 / 400.0),
              std::sin(kTwoPi * 100.0 / 400.0) +
                  0.5 * std::sin(kTwoPi * 300.0 / 400.0),
              1e-12);
}

TEST(Waveforms, SquareWaveLevelsAndPeriodicity) {
  SquareWave sq(-1.0, 1.0, 1e6, 0.05);
  EXPECT_NEAR(sq.value(0.25e-6), 1.0, 1e-12);   // mid-high
  EXPECT_NEAR(sq.value(0.75e-6), -1.0, 1e-12);  // mid-low
  EXPECT_NEAR(sq.value(0.0), 0.0, 1e-12);       // edge center
  EXPECT_NEAR(sq.value(3.25e-6), sq.value(0.25e-6), 1e-12);
  EXPECT_THROW(SquareWave(-1, 1, 1e6, 0.5), InvalidArgument);
}

TEST(Waveforms, PWLInterpolatesAndClamps) {
  PWLWave w({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
  EXPECT_NEAR(w.value(-1.0), 0.0, 1e-12);
  EXPECT_NEAR(w.value(0.5), 1.0, 1e-12);
  EXPECT_NEAR(w.value(2.0), 0.0, 1e-12);
  EXPECT_NEAR(w.value(10.0), -2.0, 1e-12);
  EXPECT_THROW(PWLWave({{1.0, 0.0}, {0.0, 1.0}}), InvalidArgument);
}

TEST(Waveforms, PulseShape) {
  PulseWave p(0.0, 1.0, 1e-9, 1e-10, 1e-10, 4e-10, 1e-9);
  EXPECT_NEAR(p.value(0.0), 0.0, 1e-12);            // before delay
  EXPECT_NEAR(p.value(1e-9 + 0.5e-10), 0.5, 1e-9);  // mid-rise
  EXPECT_NEAR(p.value(1e-9 + 3e-10), 1.0, 1e-12);   // top
  EXPECT_NEAR(p.value(1e-9 + 8e-10), 0.0, 1e-12);   // after fall
}

TEST(Sources, VSourcePinsVoltageThroughBranch) {
  Circuit c;
  const int a = c.node("a");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", a, -1, br, std::make_shared<DCWave>(3.3));
  c.add<Resistor>("R1", a, -1, 330.0);
  MnaSystem sys(c);
  MnaEval e;
  RVec x{3.3, -0.01};  // at the solution: iR = 10 mA through source
  sys.eval(x, 0.0, e, false);
  EXPECT_NEAR(e.f[0] - e.b[0], 3.3 / 330.0 + x[1], 1e-15);
  EXPECT_NEAR(e.f[1] - e.b[1], 3.3 - 3.3, 1e-15);
}

TEST(Sources, BivariateAxisSelection) {
  Circuit c;
  const int a = c.node("a"), b = c.node("b");
  c.add<ISource>("Islow", -1, a, std::make_shared<SineWave>(1.0, 1.0),
                 TimeAxis::slow);
  c.add<ISource>("Ifast", -1, b, std::make_shared<SineWave>(1.0, 100.0),
                 TimeAxis::fast);
  c.add<Resistor>("Ra", a, -1, 1.0);
  c.add<Resistor>("Rb", b, -1, 1.0);
  MnaSystem sys(c);
  MnaEval e;
  RVec x(2, 0.0);
  // t1 = quarter period of the slow tone, t2 = 0: only the slow source on.
  sys.evalBivariate(x, 0.25, 0.0, e, false);
  EXPECT_NEAR(e.b[0], 1.0, 1e-12);
  EXPECT_NEAR(e.b[1], 0.0, 1e-12);
  // And the other way around.
  sys.evalBivariate(x, 0.0, 0.25 / 100.0, e, false);
  EXPECT_NEAR(e.b[0], 0.0, 1e-12);
  EXPECT_NEAR(e.b[1], 1.0, 1e-12);
}

TEST(Noise, ResistorThermalPSD) {
  Circuit c;
  const int a = c.node("a");
  c.add<Resistor>("R1", a, -1, 1000.0);
  MnaSystem sys(c);
  const auto sources = sys.noiseSources(RVec(1, 0.0));
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_NEAR(sources[0].white, 4.0 * 1.380649e-23 * 300.0 / 1000.0, 1e-28);
  EXPECT_EQ(sources[0].flicker, 0.0);
}

TEST(Noise, DiodeShotAndFlicker) {
  Circuit c;
  const int a = c.node("a");
  Diode::Params p;
  p.kf = 1e-16;
  p.af = 1.0;
  c.add<Diode>("D1", a, -1, p);
  MnaSystem sys(c);
  const auto at06 = sys.noiseSources(RVec(1, 0.6));
  ASSERT_EQ(at06.size(), 1u);
  const Real id = Diode("tmp", 0, 1, p).current(0.6) - 1e-12 * 0.6;
  EXPECT_NEAR(at06[0].white, 2.0 * kQElectron * id, 1e-6 * at06[0].white);
  EXPECT_GT(at06[0].flicker, 0.0);
}

TEST(Noise, BJTReportsCollectorAndBaseShot) {
  Circuit c;
  const int nc = c.node("c"), nb = c.node("b"), ne = c.node("e");
  c.add<BJT>("Q1", nc, nb, ne, BJT::Params{});
  MnaSystem sys(c);
  RVec x{3.0, 0.65, 0.0};
  const auto sources = sys.noiseSources(x);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_GT(sources[0].white, sources[1].white);  // Ic shot > Ib shot
}

}  // namespace
}  // namespace rfic::circuit
