// Field-solver substrate (Section 4): panel kernel exactness, capacitance
// benchmarks with known answers, IES³ compression fidelity, the FD/MoM
// Table 1 pairing, PEEC inductance formulas, and the spiral macromodel.
#include <gtest/gtest.h>

#include <cmath>

#include "extraction/geometry.hpp"
#include "extraction/ies3.hpp"
#include "extraction/mom.hpp"
#include "extraction/panel_kernel.hpp"
#include "extraction/peec.hpp"
#include "extraction/spiral.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::extraction {
namespace {

TEST(PanelKernel, MatchesBruteForceQuadrature) {
  Panel p;
  p.corner = {0, 0, 0};
  p.edgeA = {1e-3, 0, 0};
  p.edgeB = {0, 2e-3, 0};
  auto brute = [&](const Vec3& pt) {
    const int n = 400;
    Real s = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const Vec3 q{(i + 0.5) * 1e-3 / n, (j + 0.5) * 2e-3 / n, 0.0};
        s += 1.0 / (pt - q).norm();
      }
    }
    return s / (n * static_cast<Real>(n)) / (4 * kPi * kEps0);
  };
  for (const Vec3& pt : {Vec3{0.5e-3, 1e-3, 0.5e-3}, Vec3{2e-3, -1e-3, 1e-3},
                         Vec3{0.5e-3, 1e-3, -0.7e-3}}) {
    EXPECT_NEAR(panelPotential(p, pt), brute(pt), 1e-3 * brute(pt));
  }
}

TEST(PanelKernel, EvenInNormalOffset) {
  Panel p;
  p.corner = {0, 0, 0};
  p.edgeA = {1, 0, 0};
  p.edgeB = {0, 1, 0};
  const Real up = panelPotential(p, {0.3, 0.4, 0.25});
  const Real dn = panelPotential(p, {0.3, 0.4, -0.25});
  EXPECT_NEAR(up, dn, 1e-12 * up);
}

TEST(PanelKernel, TranslationAndOrientationInvariance) {
  Panel flat;
  flat.corner = {0, 0, 0};
  flat.edgeA = {1, 0, 0};
  flat.edgeB = {0, 1, 0};
  const Real ref = panelPotential(flat, {0.5, 0.5, 1.0});
  // Same panel stood up in the x-z plane, same relative field point.
  Panel up;
  up.corner = {5, 5, 5};
  up.edgeA = {0, 0, 1};
  up.edgeB = {1, 0, 0};
  const Real rot = panelPotential(up, {5.5, 6.0, 5.5});
  EXPECT_NEAR(rot, ref, 1e-12 * ref);
}

TEST(PanelKernel, FarFieldApproachesPointCharge) {
  Panel p;
  p.corner = {0, 0, 0};
  p.edgeA = {1e-3, 0, 0};
  p.edgeB = {0, 1e-3, 0};
  const Vec3 far{0.5e-3, 0.5e-3, 0.5};  // 500 panel sizes away
  const Real v = panelPotential(p, far);
  const Real point = 1.0 / (4 * kPi * kEps0 * 0.5);
  EXPECT_NEAR(v, point, 1e-5 * point);
}

TEST(Geometry, MeshGenerators) {
  const auto plates = makeParallelPlates(1e-3, 1e-4, 4);
  EXPECT_EQ(plates.panels.size(), 32u);
  EXPECT_EQ(plates.numConductors(), 2u);
  const auto cube = makeCube(1.0, 3);
  EXPECT_EQ(cube.panels.size(), 54u);
  const auto bus = makeBusCrossing(3, 1.0, 3.0, 9.0, 1.0, 6);
  EXPECT_EQ(bus.numConductors(), 6u);
  EXPECT_EQ(bus.panels.size(), 36u);
  Real area = 0;
  for (const auto& p : cube.panels) area += p.area();
  EXPECT_NEAR(area, 6.0, 1e-12);
}

TEST(MoM, UnitSquarePlateCapacitance) {
  // Classic value: C ≈ 0.367·4πε₀ per unit side (converges from below with
  // uniform collocation panels).
  PanelMesh mesh;
  const int c = mesh.addConductor("plate");
  addRectangle(mesh, c, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 16, 16);
  const auto cap = extractCapacitanceDense(mesh);
  const Real ref = 0.367 * 4 * kPi * kEps0;
  EXPECT_NEAR(cap.matrix(0, 0), ref, 0.03 * ref);
}

TEST(MoM, UnitCubeCapacitance) {
  const auto cap = extractCapacitanceDense(makeCube(1.0, 8));
  const Real ref = 0.6607 * 4 * kPi * kEps0;
  EXPECT_NEAR(cap.matrix(0, 0), ref, 0.02 * ref);
}

TEST(MoM, ParallelPlatesFringeAboveIdeal) {
  const Real side = 1e-3, gap = 1e-4;
  const auto cap = extractCapacitanceDense(makeParallelPlates(side, gap, 10));
  const Real ideal = parallelPlateEstimate(side, gap);
  const Real mutual = -cap.matrix(0, 1);
  EXPECT_GT(mutual, ideal);          // fringing adds capacitance
  EXPECT_LT(mutual, 1.5 * ideal);    // but not unboundedly
  // Maxwell matrix structure: symmetric, diagonally dominant.
  EXPECT_NEAR(cap.matrix(0, 1), cap.matrix(1, 0), 1e-3 * std::abs(cap.matrix(0, 1)));
  EXPECT_GT(cap.matrix(0, 0), -cap.matrix(0, 1));
}

TEST(MoM, CapacitanceScalesLinearlyWithSize) {
  // Electrostatics: C scales with linear dimension.
  const auto c1 = extractCapacitanceDense(makeCube(1.0, 5));
  const auto c2 = extractCapacitanceDense(makeCube(2.0, 5));
  EXPECT_NEAR(c2.matrix(0, 0) / c1.matrix(0, 0), 2.0, 1e-6);
}

TEST(IES3, MatchesDenseCapacitance) {
  const auto mesh = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 10);
  const auto dense = extractCapacitanceDense(mesh);
  const auto comp = extractCapacitanceIES3(mesh);
  for (std::size_t i = 0; i < dense.matrix.rows(); ++i)
    for (std::size_t j = 0; j < dense.matrix.cols(); ++j)
      EXPECT_NEAR(comp.matrix(i, j), dense.matrix(i, j),
                  1e-5 * std::abs(dense.matrix(i, i)));
}

TEST(IES3, MatvecMatchesDenseOperator) {
  const auto mesh = makeResonatorAssembly(4);
  const std::size_t n = mesh.panels.size();
  std::vector<Vec3> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = mesh.panels[i].centroid();
  auto kernel = [&mesh](std::size_t i, std::size_t j) {
    return panelPotential(mesh.panels[j], mesh.panels[i].centroid());
  };
  const IES3Matrix a(pos, kernel);
  const numeric::RMat d = assembleMoMMatrix(mesh);
  numeric::RVec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.7 * static_cast<Real>(i));
  numeric::RVec y1(n);
  a.apply(x, y1);
  const numeric::RVec y2 = d * x;
  const Real scale = numeric::normInf(y2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5 * scale);
}

TEST(IES3, CompressionImprovesWithSize) {
  const auto small = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 16);
  const auto large = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 64);
  const auto cs = extractCapacitanceIES3(small);
  const auto cl = extractCapacitanceIES3(large);
  const Real fracSmall =
      static_cast<Real>(cs.storedEntries) /
      (static_cast<Real>(cs.panelCount) * static_cast<Real>(cs.panelCount));
  const Real fracLarge =
      static_cast<Real>(cl.storedEntries) /
      (static_cast<Real>(cl.panelCount) * static_cast<Real>(cl.panelCount));
  EXPECT_LT(fracLarge, fracSmall);
  EXPECT_LT(fracLarge, 0.75);
}

TEST(IES3, ApplyMatchesDenseAcrossKnobSweep) {
  // The engine must agree with the dense operator for every combination of
  // tree / compression knobs — shallow and deep trees, tight and loose
  // admissibility, rank-starved and rank-rich ACA.
  const auto mesh = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 12);
  const std::size_t n = mesh.panels.size();
  const PanelPotentialKernel kernel(mesh);
  std::vector<Vec3> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = kernel.centroid(i);
  const numeric::RMat d = assembleMoMMatrix(mesh);
  numeric::RVec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::cos(0.3 * static_cast<Real>(i));
  const numeric::RVec yRef = d * x;
  const Real scale = numeric::normInf(yRef);

  for (const Real eta : {1.0, 2.0, 4.0}) {
    for (const std::size_t leafSize : {std::size_t{8}, std::size_t{24}}) {
      for (const std::size_t maxRank : {std::size_t{4}, std::size_t{80}}) {
        IES3Options opts;
        opts.eta = eta;
        opts.leafSize = leafSize;
        opts.maxRank = maxRank;
        opts.tolerance = 1e-6;
        const IES3Matrix a(pos, kernel, opts);
        numeric::RVec y(n);
        a.apply(x, y);
        // A hard rank cap leaves truncation error (worst with loose
        // admissibility, where near-touching clusters compress); the ACA
        // tolerance bounds the uncapped cases tightly.
        const Real tol = (maxRank < 80 ? 5e-2 : 1e-4) * scale;
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_NEAR(y[i], yRef[i], tol)
              << "eta=" << eta << " leaf=" << leafSize << " rank=" << maxRank;
      }
    }
  }
}

TEST(IES3, CoincidentCentroidsFallBackToDense) {
  // Degenerate geometry: every point at the origin. No cluster pair is
  // ever admissible (dist == 0), so the engine must store the full dense
  // matrix and still reproduce it exactly.
  const std::size_t n = 37;
  std::vector<Vec3> pos(n, Vec3{0, 0, 0});
  auto entry = [](std::size_t i, std::size_t j) {
    return 1.0 / (1.0 + std::abs(static_cast<double>(i) -
                                 static_cast<double>(j)));
  };
  IES3Options opts;
  opts.leafSize = 8;
  const IES3Matrix a(pos, FunctionKernel(entry), opts);
  EXPECT_EQ(a.storedEntries(), n * n);
  EXPECT_EQ(a.lowRankBlockCount(), 0u);
  numeric::RVec x(n), y(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(1.1 * static_cast<Real>(i));
  a.apply(x, y);
  for (std::size_t i = 0; i < n; ++i) {
    Real ref = 0;
    for (std::size_t j = 0; j < n; ++j) ref += entry(i, j) * x[j];
    EXPECT_NEAR(y[i], ref, 1e-12);
  }
}

TEST(IES3, ExtractionBitwiseIdenticalAcrossThreadCounts) {
  // The contract: block build, matvec accumulation, and the multi-RHS
  // sweep are all scheduled so the arithmetic is identical whatever the
  // pool size. 1-thread vs 4-thread extraction must agree to the bit.
  const auto mesh = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 10);
  perf::ThreadPool p1(1), p4(4);
  IES3Options o1;
  o1.pool = &p1;
  IES3Options o4;
  o4.pool = &p4;
  const auto r1 = extractCapacitanceIES3(mesh, o1);
  const auto r4 = extractCapacitanceIES3(mesh, o4);
  EXPECT_EQ(r1.storedEntries, r4.storedEntries);
  EXPECT_EQ(r1.gmresIterations, r4.gmresIterations);
  for (std::size_t i = 0; i < r1.matrix.rows(); ++i)
    for (std::size_t j = 0; j < r1.matrix.cols(); ++j)
      EXPECT_EQ(r1.matrix(i, j), r4.matrix(i, j)) << i << "," << j;
}

TEST(IES3, SteadyStateApplyIsAllocationFree) {
  // Workspace-growth contract (same discipline as the HB hot loop): the
  // first apply() may allocate its workspace; repeats must recycle it.
  const auto mesh = makeResonatorAssembly(3);
  const PanelPotentialKernel kernel(mesh);
  std::vector<Vec3> pos(kernel.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos[i] = kernel.centroid(i);
  const IES3Matrix a(pos, kernel);
  numeric::RVec x(a.dim(), 1.0), y(a.dim());
  a.apply(x, y);  // warm-up: pool acquires + sizes the workspace
  const std::uint64_t warm = a.workspaceGrowth();
  EXPECT_GE(warm, 1u);
  for (int rep = 0; rep < 10; ++rep) a.apply(x, y);
  EXPECT_EQ(a.workspaceGrowth(), warm);
  EXPECT_GE(a.matvecCount(), 11u);
}

TEST(IES3, BlockJacobiOutlivesMatrix) {
  // The preconditioner copies everything it needs; using it after the
  // matrix is gone must be safe (regression: it used to hold a reference
  // to the matrix's permutation vector).
  const auto mesh = makeBusCrossing(4, 1.0, 3.0, 12.0, 1.0, 8);
  const PanelPotentialKernel kernel(mesh);
  std::vector<Vec3> pos(kernel.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos[i] = kernel.centroid(i);
  numeric::RVec x(kernel.size(), 1.0), y1, y2;
  std::unique_ptr<sparse::LinearOperator<Real>> prec;
  {
    const IES3Matrix a(pos, kernel);
    prec = a.makeBlockJacobi();
    prec->apply(x, y1);
  }  // matrix destroyed
  prec->apply(x, y2);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(MoM, DenseChargesBelongToConductorZero) {
  // charges = the conductor-0 excitation column, so summing it over
  // conductor-0 panels reproduces the Maxwell diagonal C(0,0).
  const auto mesh = makeParallelPlates(1e-3, 1e-4, 6);
  const auto cap = extractCapacitanceDense(mesh);
  ASSERT_EQ(cap.charges.size(), mesh.panels.size());
  Real sum0 = 0;
  for (std::size_t i = 0; i < mesh.panels.size(); ++i)
    if (mesh.panels[i].conductor == 0) sum0 += cap.charges[i];
  EXPECT_NEAR(sum0, cap.matrix(0, 0), 1e-12 * std::abs(cap.matrix(0, 0)));
}

TEST(FDLaplace, AgreesWithMoMParallelPlates) {
  const Real side = 1e-3, gap = 1e-4;
  const auto fd = solveParallelPlatesFD(side, gap, 28);
  const auto mom = extractCapacitanceDense(makeParallelPlates(side, gap, 10));
  const Real cMoM = -mom.matrix(0, 1);
  EXPECT_NEAR(fd.capacitance, cMoM, 0.12 * cMoM);
  // Table 1 structure facts: the FD system is much larger but much sparser.
  EXPECT_GT(fd.unknowns, mom.panelCount);
  EXPECT_LT(fd.nnz, fd.unknowns * 8);
}

TEST(Table1, ConditionNumbers) {
  // Integral-equation matrices are well conditioned; the FD Laplacian is
  // not (κ grows as h⁻²). Check the MoM side quantitatively.
  const auto mesh = makeParallelPlates(1e-3, 1e-4, 8);
  const auto p = assembleMoMMatrix(mesh);
  const Real cond = symmetricConditionEstimate(p);
  EXPECT_LT(cond, 1e4);
  EXPECT_GT(cond, 1.0);
}

TEST(PEEC, SelfInductanceFormulaBasics) {
  Segment s;
  s.start = {0, 0, 0};
  s.end = {1e-3, 0, 0};
  s.width = 10e-6;
  s.thickness = 1e-6;
  const Real l1 = partialSelfInductance(s);
  EXPECT_GT(l1, 0.0);
  // 1 mm of 10 µm trace ≈ 1 nH ballpark (0.5–1.5 nH).
  EXPECT_GT(l1, 0.5e-9);
  EXPECT_LT(l1, 1.5e-9);
  // Longer wire → more than proportionally larger L (log term).
  Segment s2 = s;
  s2.end = {2e-3, 0, 0};
  EXPECT_GT(partialSelfInductance(s2), 2.0 * l1);
}

TEST(PEEC, MutualSignsAndSymmetry) {
  Segment a;
  a.start = {0, 0, 0};
  a.end = {1e-3, 0, 0};
  a.width = 10e-6;
  a.thickness = 1e-6;
  Segment b = a;
  b.start = {0, 50e-6, 0};
  b.end = {1e-3, 50e-6, 0};
  const Real mPar = partialMutualInductance(a, b);
  EXPECT_GT(mPar, 0.0);
  EXPECT_LT(mPar, partialSelfInductance(a));
  // Antiparallel: sign flips.
  Segment br = b;
  std::swap(br.start, br.end);
  EXPECT_NEAR(partialMutualInductance(a, br), -mPar, 1e-18);
  // Symmetry M(a,b) = M(b,a).
  EXPECT_NEAR(partialMutualInductance(b, a), mPar, 1e-6 * mPar);
  // Perpendicular: exactly zero.
  Segment perp;
  perp.start = {0, 0, 0};
  perp.end = {0, 1e-3, 0};
  perp.width = 10e-6;
  perp.thickness = 1e-6;
  EXPECT_EQ(partialMutualInductance(a, perp), 0.0);
  // Mutual decays with distance.
  Segment far = b;
  far.start = {0, 500e-6, 0};
  far.end = {1e-3, 500e-6, 0};
  EXPECT_LT(partialMutualInductance(a, far), mPar);
}

TEST(PEEC, LoopInductanceOfRectangle) {
  // A closed rectangular loop: all partial mutuals between opposite sides
  // are negative (antiparallel currents), shrinking L below the sum of
  // self terms.
  std::vector<Segment> loop;
  const Real w = 10e-6, t = 1e-6, a = 1e-3;
  auto add = [&](Vec3 s, Vec3 e) {
    Segment seg;
    seg.start = s;
    seg.end = e;
    seg.width = w;
    seg.thickness = t;
    loop.push_back(seg);
  };
  add({0, 0, 0}, {a, 0, 0});
  add({a, 0, 0}, {a, a, 0});
  add({a, a, 0}, {0, a, 0});
  add({0, a, 0}, {0, 0, 0});
  const Real lLoop = loopInductance(loop);
  Real lSelfSum = 0;
  for (const auto& s : loop) lSelfSum += partialSelfInductance(s);
  EXPECT_GT(lLoop, 0.0);
  EXPECT_LT(lLoop, lSelfSum);
}

TEST(PEEC, SkinEffectLimits) {
  EXPECT_NEAR(skinEffectFactor(0.0, 1e-6, 2.65e-8), 1.0, 1e-12);
  EXPECT_NEAR(skinEffectFactor(1.0, 1e-6, 2.65e-8), 1.0, 1e-3);
  // At high frequency R grows like sqrt(f): factor(100f)/factor(f) ≈ 10.
  const Real f1 = skinEffectFactor(1e11, 10e-6, 2.65e-8);
  const Real f2 = skinEffectFactor(1e13, 10e-6, 2.65e-8);
  EXPECT_NEAR(f2 / f1, 10.0, 0.5);
}

TEST(Spiral, GeometryWalksInward) {
  SpiralParams p;
  p.turns = 3;
  const auto segs = makeSquareSpiral(p);
  EXPECT_EQ(segs.size(), 12u);
  // Side lengths never grow along the walk.
  Real prev = 1e30;
  for (std::size_t k = 0; k < segs.size(); k += 2) {
    const Real len = (segs[k].end - segs[k].start).norm();
    EXPECT_LE(len, prev + 1e-12);
    prev = len;
  }
  EXPECT_THROW(
      [] {
        SpiralParams bad;
        bad.turns = 40;  // cannot fit
        makeSquareSpiral(bad);
      }(),
      InvalidArgument);
}

TEST(Spiral, InductanceNearModifiedWheeler) {
  SpiralParams p;  // 4 turns, 300 µm
  const auto m = buildSpiralModel(p);
  // Modified Wheeler estimate for square spirals:
  // L = 2.34·µ0·n²·davg/(1+2.75·ρ) with ρ = (dout−din)/(dout+din).
  const Real pitch = p.width + p.spacing;
  const Real din = p.outerSize - 2 * pitch * static_cast<Real>(p.turns);
  const Real davg = 0.5 * (p.outerSize + din);
  const Real rho = (p.outerSize - din) / (p.outerSize + din);
  const Real lw = 2.34 * kMu0 * static_cast<Real>(p.turns * p.turns) * davg /
                  (1.0 + 2.75 * rho);
  EXPECT_NEAR(m.seriesL, lw, 0.25 * lw);
}

TEST(Spiral, QPeaksAndLeffRisesTowardResonance) {
  SpiralParams p;
  const auto m = buildSpiralModel(p);
  // Q rises, peaks, falls.
  const Real q1 = m.qualityFactor(2e8);
  const Real q2 = m.qualityFactor(2e9);
  const Real q3 = m.qualityFactor(2e10);
  EXPECT_GT(q2, q1);
  EXPECT_GT(q2, q3);
  // Low-frequency L_eff ≈ the PEEC series inductance.
  EXPECT_NEAR(m.effectiveInductance(1e7), m.seriesL, 0.05 * m.seriesL);
  // Self-resonance exists: Im(Z) crosses zero somewhere below 1 THz.
  bool crossed = false;
  Real prev = m.inputImpedance(1e8).imag();
  for (Real f = 2e8; f < 1e12; f *= 1.3) {
    const Real cur = m.inputImpedance(f).imag();
    if (prev > 0 && cur < 0) crossed = true;
    prev = cur;
  }
  EXPECT_TRUE(crossed);
}

TEST(Spiral, FinerDiscretizationConverges) {
  SpiralParams coarse;
  SpiralParams fine = coarse;
  fine.segmentsPerSide = 4;
  const Real lc = buildSpiralModel(coarse).seriesL;
  const Real lf = buildSpiralModel(fine).seriesL;
  EXPECT_NEAR(lc, lf, 0.08 * lf);
}

TEST(Resonator, AssemblyCapacitanceMatrixIsPhysical) {
  const auto mesh = makeResonatorAssembly(3);
  const auto cap = extractCapacitanceIES3(mesh);
  const std::size_t nc = mesh.numConductors();
  for (std::size_t i = 0; i < nc; ++i) {
    EXPECT_GT(cap.matrix(i, i), 0.0);
    Real rowSum = 0;
    for (std::size_t j = 0; j < nc; ++j) {
      if (i != j) {
        EXPECT_LT(cap.matrix(i, j), 0.0);
      }
      rowSum += cap.matrix(i, j);
    }
    EXPECT_GT(rowSum, -1e-15);  // capacitance to infinity is non-negative
  }
  // The two resonator plates couple through the line: mutual res1-res2
  // exceeds what bare distance would give... just require nonzero coupling.
  const int r1 = 1, r2 = 2;
  EXPECT_LT(cap.matrix(r1, r2), -1e-16);
}

}  // namespace
}  // namespace rfic::extraction
