// Overload-hardening tests (DESIGN.md §11): priority classes with
// deterministic aging (starvation-freedom), structured admission
// rejections (queue-full / shed / shutting-down / spec-invalid),
// per-job memory budgets (exit 6), pre-flight validation, the mem-spike
// fault point, and the scheduler's stats gauges and counters.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "diag/resilience.hpp"
#include "engine/engine.hpp"
#include "engine/scheduler.hpp"

namespace {

using namespace rfic;
using engine::Event;
using engine::JobId;
using engine::Priority;
using engine::RejectReason;

const char* kRcNetlist =
    "V1 in 0 SIN(0 1 1k)\n"
    "R1 in out 1k\n"
    "C1 out 0 1u\n"
    ".print out\n"
    ".op\n"
    ".tran 10u 2m\n";

// Long enough (~200k BE steps) to hold the single worker while the test
// thread queues everything behind it; always cancelled, never waited out.
const char* kHeavyNetlist =
    "V1 in 0 SIN(0 1 1k)\n"
    "R1 in out 1k\n"
    "C1 out 0 1u\n"
    ".print out\n"
    ".tran 5e-8 1e-2\n";

const char* kOpNetlist =
    "V1 in 0 1\nR1 in out 1k\nR2 out 0 2k\n.print out\n.op\n";

engine::JobSpec spec(const std::string& netlist,
                     Priority pri = Priority::Normal) {
  engine::JobSpec s;
  s.netlist = netlist;
  s.priority = pri;
  return s;
}

/// Records each job's output plus the global order of Started events —
/// with one worker that order IS the scheduler's dispatch order.
class OrderSink : public engine::EventSink {
 public:
  void onEvent(const Event& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (e.kind == Event::Kind::Started) startOrder_.push_back(e.job);
    if (e.kind == Event::Kind::Stdout) stdoutText_[e.job] += e.text;
    if (e.kind == Event::Kind::Stderr) stderrText_[e.job] += e.text;
  }
  std::vector<JobId> startOrder() {
    std::lock_guard<std::mutex> lock(mu_);
    return startOrder_;
  }
  std::string out(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return stdoutText_[j];
  }
  std::string err(JobId j) {
    std::lock_guard<std::mutex> lock(mu_);
    return stderrText_[j];
  }

 private:
  std::mutex mu_;
  std::vector<JobId> startOrder_;
  std::map<JobId, std::string> stdoutText_, stderrText_;
};

/// Submit a heavy job and wait until a worker actually picks it up, so
/// everything submitted afterwards is queued behind it deterministically.
JobId blockWorker(engine::Scheduler& sched,
                  const std::shared_ptr<OrderSink>& sink) {
  const JobId id = sched.submit(spec(kHeavyNetlist), sink);
  EXPECT_NE(id, 0u);
  for (int i = 0; i < 5000; ++i) {
    const auto info = sched.info(id);
    EXPECT_TRUE(info.has_value());
    if (info->state != engine::JobState::Queued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return id;
}

// ---------------------------------------------------------- priority names

TEST(Priority, WireNamesRoundTrip) {
  EXPECT_STREQ(engine::toString(Priority::High), "high");
  EXPECT_STREQ(engine::toString(Priority::Normal), "normal");
  EXPECT_STREQ(engine::toString(Priority::Batch), "batch");
  Priority p = Priority::Normal;
  EXPECT_TRUE(engine::parsePriority("batch", p));
  EXPECT_EQ(p, Priority::Batch);
  EXPECT_TRUE(engine::parsePriority("high", p));
  EXPECT_EQ(p, Priority::High);
  EXPECT_FALSE(engine::parsePriority("urgent", p));
  EXPECT_EQ(p, Priority::High);  // unchanged on failure
}

// ------------------------------------------------------------- preflight

TEST(Preflight, AlwaysOnChecks) {
  const engine::PreflightLimits off;
  EXPECT_EQ(engine::preflightCheck(kOpNetlist, off), "");
  EXPECT_EQ(engine::preflightCheck("", off), "empty netlist");
  EXPECT_EQ(engine::preflightCheck("  \n\t\n", off), "empty netlist");
  const std::string bad = engine::preflightCheck("R1 in\n.op\n", off);
  EXPECT_NE(bad.find("malformed element card at line 1"), std::string::npos);
  // Comments, control cards, and '+' continuations are not element cards.
  EXPECT_EQ(engine::preflightCheck(
                "* comment\nV1 a 0 PWL(0 0\n+ 1m 5)\n.op\n", off),
            "");
}

TEST(Preflight, Caps) {
  engine::PreflightLimits lim;
  // kOpNetlist has exactly 3 element cards — over a cap of 2.
  lim.maxDevices = 2;
  EXPECT_NE(engine::preflightCheck(kOpNetlist, lim).find("too many devices"),
            std::string::npos);
  lim.maxDevices = 3;
  EXPECT_EQ(engine::preflightCheck(kOpNetlist, lim), "");
  lim.maxNodes = 2;  // {in, 0, out} = 3 distinct names
  EXPECT_NE(engine::preflightCheck(kOpNetlist, lim).find("too many nodes"),
            std::string::npos);
  lim.maxNodes = 3;
  EXPECT_EQ(engine::preflightCheck(kOpNetlist, lim), "");
  lim.maxNetlistBytes = 8;
  EXPECT_NE(engine::preflightCheck(kOpNetlist, lim).find("bytes (cap"),
            std::string::npos);
}

// ----------------------------------------------------- structured rejection

TEST(SchedulerRejection, SpecInvalidForBadNetlists) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  engine::Rejection rej;
  EXPECT_EQ(sched.submit(spec(""), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::SpecInvalid);
  EXPECT_NE(rej.detail.find("empty netlist"), std::string::npos);
  EXPECT_EQ(sched.submit(spec("R1 in\n.op\n"), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::SpecInvalid);
  EXPECT_NE(rej.detail.find("malformed"), std::string::npos);
}

TEST(SchedulerRejection, SpecInvalidForPreflightCaps) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.preflight.maxDevices = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  engine::Rejection rej;
  EXPECT_EQ(sched.submit(spec(kOpNetlist), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::SpecInvalid);
  EXPECT_NE(rej.detail.find("too many devices"), std::string::npos);
  const auto st = sched.stats();
  EXPECT_EQ(st.rejectedInvalid, 1u);
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.admitted, 0u);
}

TEST(SchedulerRejection, QueueFullAndShuttingDown) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 2;
  o.highWater = 2;  // disable shedding below the full-queue check
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId a = blockWorker(sched, sink);
  ASSERT_NE(sched.submit(spec(kOpNetlist), sink), 0u);
  engine::Rejection rej;
  EXPECT_EQ(sched.submit(spec(kOpNetlist), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::QueueFull);
  EXPECT_EQ(sched.stats().rejectedFull, 1u);
  sched.cancel(a);
  sched.shutdown();
  EXPECT_EQ(sched.submit(spec(kOpNetlist), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::ShuttingDown);
}

TEST(SchedulerRejection, BatchShedAboveHighWater) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 8;
  o.highWater = 2;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId blocker = blockWorker(sched, sink);  // occupancy 1
  // Below high water a batch job is admitted like anyone else.
  const JobId b1 = sched.submit(spec(kOpNetlist, Priority::Batch), sink);
  ASSERT_NE(b1, 0u);  // occupancy 2
  engine::Rejection rej;
  EXPECT_EQ(sched.submit(spec(kOpNetlist, Priority::Batch), sink, &rej), 0u);
  EXPECT_EQ(rej.reason, RejectReason::Shed);
  EXPECT_NE(rej.detail.find("high-water"), std::string::npos);
  // Interactive classes are NOT shed at the same occupancy.
  const JobId n1 = sched.submit(spec(kOpNetlist, Priority::Normal), sink);
  EXPECT_NE(n1, 0u);
  const JobId h1 = sched.submit(spec(kOpNetlist, Priority::High), sink);
  EXPECT_NE(h1, 0u);

  auto st = sched.stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_GE(st.maxQueueAgeSeconds, 0.0);

  sched.cancel(blocker);
  sched.drain();
  // Pressure gone: not degraded, batch admitted again.
  st = sched.stats();
  EXPECT_FALSE(st.degraded);
  EXPECT_EQ(st.queued, 0u);
  EXPECT_EQ(st.running, 0u);
  const JobId b2 = sched.submit(spec(kOpNetlist, Priority::Batch), sink);
  ASSERT_NE(b2, 0u);
  EXPECT_EQ(sched.wait(b2).exitCode, 0);
}

// -------------------------------------------------- priority dispatch order

TEST(SchedulerPriority, HighPopsBeforeNormalBeforeBatch) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 16;
  o.highWater = 16;  // shedding off: this test is about pop order
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId blocker = blockWorker(sched, sink);
  const JobId b = sched.submit(spec(kOpNetlist, Priority::Batch), sink);
  const JobId n = sched.submit(spec(kOpNetlist, Priority::Normal), sink);
  const JobId h = sched.submit(spec(kOpNetlist, Priority::High), sink);
  ASSERT_NE(b, 0u);
  ASSERT_NE(n, 0u);
  ASSERT_NE(h, 0u);
  sched.cancel(blocker);
  sched.drain();
  const auto order = sink->startOrder();
  // blocker first (it was running), then strictly by class despite the
  // submission order being batch, normal, high.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], blocker);
  EXPECT_EQ(order[1], h);
  EXPECT_EQ(order[2], n);
  EXPECT_EQ(order[3], b);
}

TEST(SchedulerPriority, AgingTraceIsDeterministic) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 16;
  o.highWater = 16;
  o.agingThreshold = 2;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId blocker = blockWorker(sched, sink);
  std::vector<JobId> high;
  for (int i = 0; i < 5; ++i) {
    high.push_back(sched.submit(spec(kOpNetlist, Priority::High), sink));
    ASSERT_NE(high.back(), 0u);
  }
  const JobId batch = sched.submit(spec(kOpNetlist, Priority::Batch), sink);
  ASSERT_NE(batch, 0u);
  sched.cancel(blocker);
  sched.drain();
  // Pure pop counting, threshold 2: the batch job is passed over twice
  // (H1, H2), then promoted ahead of the remaining high jobs. Exactly:
  // H1 H2 B H3 H4 H5 — same trace every run.
  const std::vector<JobId> expected = {blocker, high[0], high[1], batch,
                                       high[2],  high[3], high[4]};
  EXPECT_EQ(sink->startOrder(), expected);
  EXPECT_EQ(sched.stats().promoted, 1u);
}

TEST(SchedulerPriority, BatchNeverStarvesUnderHighStream) {
  engine::Scheduler::Options o;
  o.workers = 1;
  o.queueDepth = 32;
  o.highWater = 32;
  o.agingThreshold = 3;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId blocker = blockWorker(sched, sink);
  const JobId batch = sched.submit(spec(kOpNetlist, Priority::Batch), sink);
  ASSERT_NE(batch, 0u);
  std::vector<JobId> high;
  for (int i = 0; i < 12; ++i) {
    high.push_back(sched.submit(spec(kOpNetlist, Priority::High), sink));
    ASSERT_NE(high.back(), 0u);
  }
  sched.cancel(blocker);
  sched.drain();
  const auto order = sink->startOrder();
  ASSERT_EQ(order.size(), 14u);
  // Starvation-freedom: the batch job ran after at most agingThreshold
  // high-priority pops, not at the tail of the stream.
  std::size_t batchPos = 0;
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == batch) batchPos = i;
  EXPECT_LE(batchPos, 1u + o.agingThreshold);
  EXPECT_GE(sched.stats().promoted, 1u);
}

TEST(SchedulerPriority, OutputBytesIdenticalAcrossClasses) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  const JobId h = sched.submit(spec(kRcNetlist, Priority::High), sink);
  const JobId n = sched.submit(spec(kRcNetlist, Priority::Normal), sink);
  const JobId b = sched.submit(spec(kRcNetlist, Priority::Batch), sink);
  ASSERT_NE(h, 0u);
  ASSERT_NE(n, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(sched.wait(h).exitCode, 0);
  EXPECT_EQ(sched.wait(n).exitCode, 0);
  EXPECT_EQ(sched.wait(b).exitCode, 0);
  // Priority buys placement in the queue, never different numerics.
  EXPECT_EQ(sink->out(h), sink->out(n));
  EXPECT_EQ(sink->out(h), sink->out(b));
}

// ----------------------------------------------------------- memory budget

TEST(MemAccount, ChargePeakAndLimit) {
  diag::MemAccount acct;
  EXPECT_EQ(acct.currentBytes(), 0u);
  EXPECT_FALSE(acct.overLimit());  // no limit armed
  acct.charge(100);
  acct.charge(28);
  EXPECT_EQ(acct.currentBytes(), 128u);
  EXPECT_EQ(acct.peakBytes(), 128u);
  acct.setLimit(64);
  EXPECT_TRUE(acct.overLimit());
}

TEST(MemAccount, ScopeRoutesChargesAndBudgetTrips) {
  diag::RunBudget b;
  b.setMemoryLimit(256);
  {
    diag::MemScope scope(b.memAccount());
    diag::memCharge(300);
  }
  EXPECT_TRUE(diag::budgetExceeded(&b));
  EXPECT_TRUE(b.memoryExceeded());
  EXPECT_STREQ(b.reason(), "memory-bytes");
  EXPECT_FALSE(b.cancelled());
  // Charges outside any scope are dropped, not crashed on.
  diag::memCharge(1 << 20);
}

TEST(MemoryBudget, TinyBudgetUnwindsWithExit6) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);  // fresh engine: the cold parse charge lands
  auto sink = std::make_shared<OrderSink>();
  engine::JobSpec s = spec(kRcNetlist);
  s.maxBytes = 64;  // under even the netlist's own parse footprint
  const JobId id = sched.submit(std::move(s), sink);
  ASSERT_NE(id, 0u);
  const auto res = sched.wait(id);
  EXPECT_EQ(res.exitCode, 6);
  EXPECT_FALSE(res.cancelled);
  EXPECT_GT(res.peakBytes, 64u);
  EXPECT_NE(sink->err(id).find("memory-bytes"), std::string::npos);
}

TEST(MemoryBudget, GenerousBudgetRunsToCompletion) {
  engine::Scheduler::Options o;
  o.workers = 1;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  engine::JobSpec s = spec(kRcNetlist);
  s.maxBytes = 256ull << 20;
  const JobId id = sched.submit(std::move(s), sink);
  ASSERT_NE(id, 0u);
  const auto res = sched.wait(id);
  EXPECT_EQ(res.exitCode, 0);
  EXPECT_GT(res.peakBytes, 0u);
  EXPECT_LE(res.peakBytes, 256ull << 20);
  EXPECT_EQ(res.perf.memPeakBytes, res.peakBytes);
}

TEST(MemoryBudget, MemSpikeInjectionTripsRunningJob) {
  diag::FaultInjector::global().arm(diag::FaultPoint::MemSpike, 1);
  engine::Engine eng;
  OrderSink sink;
  const auto res = eng.run(spec(kOpNetlist), sink);
  EXPECT_EQ(res.exitCode, 6);
  // One-shot: the next run is untouched.
  OrderSink sink2;
  EXPECT_EQ(eng.run(spec(kOpNetlist), sink2).exitCode, 0);
  diag::FaultInjector::global().arm(diag::FaultPoint::MemSpike, 0);
}

// ------------------------------------------------------------------ stats

TEST(SchedulerStats, CountersAddUp) {
  engine::Scheduler::Options o;
  o.workers = 2;
  o.queueDepth = 8;
  o.highWater = 8;
  engine::Scheduler sched(o);
  auto sink = std::make_shared<OrderSink>();
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    const JobId id = sched.submit(spec(kOpNetlist), sink);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  engine::Rejection rej;
  EXPECT_EQ(sched.submit(spec(""), sink, &rej), 0u);  // rejectedInvalid
  sched.drain();
  const auto st = sched.stats();
  EXPECT_EQ(st.submitted, 5u);
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.finished, 4u);
  EXPECT_EQ(st.rejectedInvalid, 1u);
  EXPECT_EQ(st.rejectedFull, 0u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.queued, 0u);
  EXPECT_EQ(st.running, 0u);
  EXPECT_EQ(st.queueDepth, 8u);
  EXPECT_EQ(st.highWater, 8u);
  EXPECT_FALSE(st.degraded);
  for (const JobId id : ids) EXPECT_EQ(sched.wait(id).exitCode, 0);
}

}  // namespace
