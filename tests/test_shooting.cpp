// Shooting periodic steady state: driven circuits versus analytic/transient
// references, monodromy properties, and the autonomous oscillator variant.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/shooting.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "numeric/eig.hpp"

namespace rfic::analysis {
namespace {

using namespace rfic::circuit;
using numeric::RVec;

TEST(Shooting, DrivenRCMatchesAnalytic) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1000.0));
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-6);
  MnaSystem sys(c);
  ShootingOptions so;
  so.stepsPerPeriod = 1000;
  const auto pss = shootingPSS(sys, 1e-3, RVec(sys.dim(), 0.0), so);
  ASSERT_TRUE(pss.converged);
  EXPECT_LE(pss.newtonIterations, 4u);  // linear circuit: 1-2 iterations
  const Real wrc = kTwoPi;  // 2π·1000·1e-3
  const Real ampRef = 1.0 / std::sqrt(1.0 + wrc * wrc);
  Real amp = 0;
  for (const auto& x : pss.trajectory)
    amp = std::max(amp, std::abs(x[static_cast<std::size_t>(out)]));
  EXPECT_NEAR(amp, ampRef, 3e-3 * ampRef);
}

TEST(Shooting, MonodromyOfRCIsContractive) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(1.0, 1000.0));
  c.add<Resistor>("R1", in, out, 1000.0);
  c.add<Capacitor>("C1", out, -1, 1e-6);
  MnaSystem sys(c);
  const auto pss = shootingPSS(sys, 1e-3, RVec(sys.dim(), 0.0));
  ASSERT_TRUE(pss.converged);
  // The only dynamic state decays by e^{-T/tau} = e^{-1} per period.
  const auto mult = numeric::eigenvalues(pss.monodromy);
  Real maxAbs = 0;
  for (std::size_t i = 0; i < mult.size(); ++i)
    maxAbs = std::max(maxAbs, std::abs(mult[i]));
  EXPECT_NEAR(maxAbs, std::exp(-1.0), 0.01);
}

TEST(Shooting, RectifierMatchesLongTransient) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SineWave>(2.0, 1e5));
  c.add<Diode>("D1", in, out, Diode::Params{});
  c.add<Capacitor>("CL", out, -1, 1e-9);
  c.add<Resistor>("RL", out, -1, 1e5);
  MnaSystem sys(c);
  ShootingOptions so;
  so.stepsPerPeriod = 800;
  const auto pss = shootingPSS(sys, 1e-5, RVec(sys.dim(), 0.0), so);
  ASSERT_TRUE(pss.converged);

  TransientOptions to;
  to.tstop = 50e-5;  // 50 periods — transient settled
  to.dt = 1e-5 / 800;
  to.method = IntegrationMethod::backwardEuler;
  const auto tr = runTransient(sys, RVec(sys.dim(), 0.0), to);
  ASSERT_TRUE(tr.ok);
  EXPECT_NEAR(pss.x0[static_cast<std::size_t>(out)],
              tr.x.back()[static_cast<std::size_t>(out)], 2e-3);
}

TEST(Shooting, PeriodicityResidualIsTiny) {
  Circuit c;
  const int in = c.node("in"), out = c.node("out");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", in, -1, br, std::make_shared<SquareWave>(-1, 1, 1e6));
  c.add<Resistor>("R1", in, out, 100.0);
  c.add<Capacitor>("C1", out, -1, 1e-9);
  MnaSystem sys(c);
  const auto pss = shootingPSS(sys, 1e-6, RVec(sys.dim(), 0.0));
  ASSERT_TRUE(pss.converged);
  RVec defect = pss.trajectory.back();
  defect -= pss.trajectory.front();
  EXPECT_LT(numeric::norm2(defect), 1e-8);
}

struct VdpFixture {
  Circuit c;
  int v = 0;
  std::unique_ptr<MnaSystem> sys;

  VdpFixture() {
    v = c.node("v");
    const int br = c.allocBranch("L1");
    c.add<Capacitor>("C1", v, -1, 1e-9);
    c.add<Inductor>("L1", v, -1, br, 1e-6);
    c.add<Resistor>("Rl", v, -1, 2000.0);
    c.add<CubicConductance>("GN", v, -1, -2e-3, 1e-3);
    sys = std::make_unique<MnaSystem>(c);
  }
};

TEST(OscillatorShooting, VanDerPolPeriodAndAmplitude) {
  VdpFixture f;
  TransientOptions to;
  to.tstop = 40e-6;
  to.dt = 2e-9;
  RVec x0(f.sys->dim(), 0.0);
  x0[static_cast<std::size_t>(f.v)] = 0.2;
  const auto tr = runTransient(*f.sys, x0, to);
  ASSERT_TRUE(tr.ok);
  const Real tEst = estimatePeriod(tr, static_cast<std::size_t>(f.v), 0.0);
  EXPECT_NEAR(tEst, kTwoPi * std::sqrt(1e-9 * 1e-6), 0.05 * tEst);

  ShootingOptions so;
  so.stepsPerPeriod = 600;
  // Every unknown of the van der Pol core is dynamic (capacitor voltage and
  // inductor flux), so the trapezoidal sensitivity is safe here and removes
  // BE's first-order amplitude damping.
  so.method = IntegrationMethod::trapezoidal;
  const auto pss = shootingOscillatorPSS(*f.sys, tEst, tr.x.back(),
                                         static_cast<std::size_t>(f.v), 0.0,
                                         so);
  ASSERT_TRUE(pss.converged);
  // Amplitude of the van der Pol limit cycle: 2·sqrt(gNet/(3·g3)).
  const Real gnet = 2e-3 - 1.0 / 2000.0;
  const Real ampRef = 2.0 * std::sqrt(gnet / (3.0 * 1e-3));
  Real amp = 0;
  for (const auto& x : pss.trajectory)
    amp = std::max(amp, std::abs(x[static_cast<std::size_t>(f.v)]));
  EXPECT_NEAR(amp, ampRef, 0.03 * ampRef);
  // The anchor pins the phase exactly.
  EXPECT_NEAR(pss.x0[static_cast<std::size_t>(f.v)], 0.0, 1e-12);
}

TEST(OscillatorShooting, MonodromyHasUnitFloquetMultiplier) {
  VdpFixture f;
  TransientOptions to;
  to.tstop = 30e-6;
  to.dt = 2e-9;
  RVec x0(f.sys->dim(), 0.0);
  x0[static_cast<std::size_t>(f.v)] = 0.3;
  const auto tr = runTransient(*f.sys, x0, to);
  const Real tEst = estimatePeriod(tr, static_cast<std::size_t>(f.v), 0.0);
  ShootingOptions so;
  so.stepsPerPeriod = 800;
  const auto pss = shootingOscillatorPSS(*f.sys, tEst, tr.x.back(),
                                         static_cast<std::size_t>(f.v), 0.0,
                                         so);
  ASSERT_TRUE(pss.converged);
  const auto mult = numeric::eigenvalues(pss.monodromy);
  Real bestDist = 1e9;
  Real otherMag = 0;
  for (std::size_t i = 0; i < mult.size(); ++i) {
    const Real d = std::abs(mult[i] - Complex(1.0, 0.0));
    if (d < bestDist) {
      bestDist = d;
    }
  }
  for (std::size_t i = 0; i < mult.size(); ++i) {
    const Real d = std::abs(mult[i] - Complex(1.0, 0.0));
    if (d > bestDist) otherMag = std::max(otherMag, std::abs(mult[i]));
  }
  EXPECT_LT(bestDist, 5e-3);   // the oscillatory multiplier
  EXPECT_LT(otherMag, 0.95);   // remaining dynamics stable
}

TEST(EstimatePeriod, RequiresEnoughCrossings) {
  TransientResult tr;
  tr.time = {0, 1, 2};
  tr.x = {RVec{0.0}, RVec{1.0}, RVec{0.5}};
  EXPECT_THROW(estimatePeriod(tr, 0, 0.0), InvalidArgument);
}

TEST(Shooting, InvalidArgumentsThrow) {
  VdpFixture f;
  EXPECT_THROW(shootingPSS(*f.sys, -1.0, RVec(f.sys->dim(), 0.0)),
               InvalidArgument);
  EXPECT_THROW(shootingPSS(*f.sys, 1e-6, RVec(5, 0.0)), InvalidArgument);
}

}  // namespace
}  // namespace rfic::analysis
