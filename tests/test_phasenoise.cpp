// Oscillator phase noise (Section 3): Floquet structure, PPV quality, the
// diffusion constant c and its scaling laws, Lorentzian spectrum
// properties, the LTV comparison, and a Monte-Carlo jitter check.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/shooting.hpp"
#include "analysis/transient.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "phasenoise/jitter_mc.hpp"
#include "phasenoise/phase_noise.hpp"

namespace rfic::phasenoise {
namespace {

using namespace rfic::circuit;
using analysis::IntegrationMethod;
using analysis::runTransient;
using analysis::ShootingOptions;
using analysis::shootingOscillatorPSS;
using analysis::TransientOptions;
using numeric::RVec;

// Shared van der Pol fixture; the PSS is computed once (expensive).
class VdpPhaseNoise : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuitPtr = std::make_unique<Circuit>();
    Circuit& c = *circuitPtr;
    const int v = c.node("v");
    const int br = c.allocBranch("L1");
    c.add<Capacitor>("C1", v, -1, 1e-9);
    c.add<Inductor>("L1", v, -1, br, 1e-6);
    c.add<Resistor>("Rl", v, -1, 2000.0);
    c.add<CubicConductance>("GN", v, -1, -2e-3, 1e-3);
    sysPtr = std::make_unique<MnaSystem>(c);

    TransientOptions to;
    to.tstop = 40e-6;
    to.dt = 2e-9;
    to.method = IntegrationMethod::trapezoidal;
    RVec x0(sysPtr->dim(), 0.0);
    x0[0] = 0.2;
    const auto tr = runTransient(*sysPtr, x0, to);
    const Real tEst = analysis::estimatePeriod(tr, 0, 0.0);
    ShootingOptions so;
    so.stepsPerPeriod = 800;
    pssPtr = std::make_unique<analysis::PSSResult>(
        shootingOscillatorPSS(*sysPtr, tEst, tr.x.back(), 0, 0.0, so));
    pnPtr = std::make_unique<PhaseNoiseResult>(
        analyzeOscillatorPhaseNoise(*sysPtr, *pssPtr));
  }
  static void TearDownTestSuite() {
    pnPtr.reset();
    pssPtr.reset();
    sysPtr.reset();
    circuitPtr.reset();
  }

  static std::unique_ptr<Circuit> circuitPtr;
  static std::unique_ptr<MnaSystem> sysPtr;
  static std::unique_ptr<analysis::PSSResult> pssPtr;
  static std::unique_ptr<PhaseNoiseResult> pnPtr;
};

std::unique_ptr<Circuit> VdpPhaseNoise::circuitPtr;
std::unique_ptr<MnaSystem> VdpPhaseNoise::sysPtr;
std::unique_ptr<analysis::PSSResult> VdpPhaseNoise::pssPtr;
std::unique_ptr<PhaseNoiseResult> VdpPhaseNoise::pnPtr;

TEST_F(VdpPhaseNoise, FloquetStructure) {
  ASSERT_TRUE(pssPtr->converged);
  const auto& fl = pnPtr->floquet;
  // One multiplier at 1 (the oscillatory mode), the rest strictly inside.
  const Complex osc = fl.multipliers[fl.oscillatoryIndex];
  EXPECT_NEAR(std::abs(osc - Complex(1.0, 0.0)), 0.0, 5e-3);
  for (std::size_t i = 0; i < fl.multipliers.size(); ++i) {
    if (i == fl.oscillatoryIndex) continue;
    EXPECT_LT(std::abs(fl.multipliers[i]), 0.95);
  }
}

TEST_F(VdpPhaseNoise, PPVBiorthonormalization) {
  EXPECT_LT(pnPtr->floquet.normalizationDefect, 1e-3);
  // PPV is periodic by construction.
  const auto& ppv = pnPtr->floquet.ppv;
  RVec d = ppv.back();
  d -= ppv.front();
  EXPECT_NEAR(numeric::norm2(d), 0.0, 1e-12);
}

TEST_F(VdpPhaseNoise, DiffusionConstantPositiveAndAttributed) {
  EXPECT_GT(pnPtr->c, 0.0);
  // The only white source is the resistor: per-source sum equals c.
  Real sum = 0;
  for (const auto& [label, cc] : pnPtr->perSource) {
    EXPECT_GE(cc, 0.0);
    sum += cc;
  }
  EXPECT_NEAR(sum, pnPtr->c, 1e-12 * pnPtr->c);
  ASSERT_EQ(pnPtr->perSource.size(), 1u);
  EXPECT_NE(pnPtr->perSource[0].first.find("Rl"), std::string::npos);
}

TEST_F(VdpPhaseNoise, JitterGrowsLinearlyWithoutBound) {
  const Real s1 = pnPtr->jitterVariance(1e-6);
  const Real s2 = pnPtr->jitterVariance(2e-6);
  const Real s10 = pnPtr->jitterVariance(10e-6);
  EXPECT_NEAR(s2 / s1, 2.0, 1e-12);
  EXPECT_NEAR(s10 / s1, 10.0, 1e-12);
}

TEST_F(VdpPhaseNoise, LorentzianFiniteAtCarrierAndPowerPreserved) {
  // Finite at zero offset...
  const Real peak = pnPtr->lorentzian(1, 0.0);
  EXPECT_TRUE(std::isfinite(peak));
  EXPECT_GT(peak, 0.0);
  // ...and the normalized Lorentzian integrates to 1 (total carrier power
  // preserved despite the spreading). Integrate numerically.
  const Real halfWidth = pnPtr->linewidthHz();
  Real integral = 0;
  const Real span = 4000.0 * halfWidth;
  const std::size_t steps = 40000;
  const Real df = 2 * span / static_cast<Real>(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const Real f = -span + (static_cast<Real>(i) + 0.5) * df;
    integral += pnPtr->lorentzian(1, f) * df;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST_F(VdpPhaseNoise, LTVMatchesFarFromCarrierDivergesAtCarrier) {
  const Real farOffset = 1e6;
  EXPECT_NEAR(pnPtr->ssbPhaseNoiseDbc(farOffset),
              pnPtr->ltvPhaseNoiseDbc(farOffset), 0.1);
  // Close to the carrier the LTV result blows up; the Lorentzian saturates.
  const Real tiny = pnPtr->linewidthHz() * 1e-3;
  EXPECT_GT(pnPtr->ltvPhaseNoiseDbc(tiny), pnPtr->ssbPhaseNoiseDbc(tiny) + 50);
  EXPECT_THROW(pnPtr->ltvPhaseNoiseDbc(0.0), InvalidArgument);
}

TEST_F(VdpPhaseNoise, PhaseNoiseFallsTwentyDbPerDecade) {
  const Real l1 = pnPtr->ssbPhaseNoiseDbc(1e4);
  const Real l2 = pnPtr->ssbPhaseNoiseDbc(1e5);
  EXPECT_NEAR(l1 - l2, 20.0, 0.5);
}

TEST_F(VdpPhaseNoise, DiffusionScalesLinearlyWithNoisePower) {
  // Doubling the resistor noise (halving R would change the oscillator;
  // instead rerun the analysis with two identical oscillators differing
  // only in noise scale via the MC options is not possible for c itself, so
  // verify the underlying quadrature: c is a linear functional of the PSD).
  // Here: rebuild the same oscillator with R split into two parallel 4 kΩ
  // resistors — identical dynamics, identical total PSD ⇒ identical c.
  Circuit c2;
  const int v = c2.node("v");
  const int br = c2.allocBranch("L1");
  c2.add<Capacitor>("C1", v, -1, 1e-9);
  c2.add<Inductor>("L1", v, -1, br, 1e-6);
  c2.add<Resistor>("Rl1", v, -1, 4000.0);
  c2.add<Resistor>("Rl2", v, -1, 4000.0);
  c2.add<CubicConductance>("GN", v, -1, -2e-3, 1e-3);
  MnaSystem sys2(c2);
  ShootingOptions so;
  so.stepsPerPeriod = 800;
  const auto pss2 =
      shootingOscillatorPSS(sys2, pssPtr->period, pssPtr->x0, 0, 0.0, so);
  ASSERT_TRUE(pss2.converged);
  const auto pn2 = analyzeOscillatorPhaseNoise(sys2, pss2);
  EXPECT_EQ(pn2.perSource.size(), 2u);
  EXPECT_NEAR(pn2.c, pnPtr->c, 0.01 * pnPtr->c);
}

TEST_F(VdpPhaseNoise, MonteCarloJitterMatchesTheory) {
  JitterMCOptions jo;
  jo.paths = 24;
  jo.cycles = 25;
  jo.stepsPerCycle = 250;
  jo.noiseScale = 1e6;  // lift thermal noise to a measurable level
  jo.seed = 777;
  const auto mc = monteCarloJitter(*sysPtr, *pssPtr, 0, 0.0, pnPtr->c, jo);
  ASSERT_GE(mc.usedPaths, 8u);
  EXPECT_GT(mc.slopePerCycle, 0.0);
  // 24 paths → ~30% statistical uncertainty; accept a factor of 2 window.
  EXPECT_GT(mc.slopePerCycle / mc.theoreticalSlope, 0.5);
  EXPECT_LT(mc.slopePerCycle / mc.theoreticalSlope, 2.0);
  // Variance grows with cycle index (bound drift, not flat).
  EXPECT_GT(mc.crossingVar.back(), mc.crossingVar[1]);
}

TEST_F(VdpPhaseNoise, NodeSensitivityConsistentWithPerSource) {
  // A white source of PSD S at node i contributes (S/2)·nodeSensitivity[i]²
  // to c (up to waveform-correlation detail: for a node-to-ground source it
  // is exact). The tank resistor sits at unknown 0.
  const auto& pn = *pnPtr;
  ASSERT_EQ(pn.nodeSensitivity.size(), 2u);
  const Real s = 4.0 * 1.380649e-23 * 300.0 / 2000.0;  // Rl thermal PSD
  const Real predicted =
      0.5 * s * pn.nodeSensitivity[0] * pn.nodeSensitivity[0];
  Real cRl = 0;
  for (const auto& [label, cc] : pn.perSource)
    if (label.rfind("Rl.", 0) == 0) cRl = cc;
  EXPECT_NEAR(predicted, cRl, 1e-3 * cRl);
}

TEST(PeriodogramPsd, SineToneAndParseval) {
  // A·sin(2πf0t) sampled at fs: the one-sided PSD integrates to the total
  // power A²/2 (Parseval through the Welch estimate) and concentrates at f0.
  const Real fs = 65536.0, f0 = 1024.0, A = 0.5;
  const std::size_t n = 16384;
  std::vector<Real> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = A * std::sin(kTwoPi * f0 * static_cast<Real>(i) / fs);
  const auto est = periodogramPsd(x, fs);
  ASSERT_GT(est.segments, 1u);
  ASSERT_EQ(est.freq.size(), est.psd.size());
  const Real df = est.freq[1] - est.freq[0];
  Real power = 0, peakFreq = 0, peak = -1;
  for (std::size_t k = 0; k < est.psd.size(); ++k) {
    power += est.psd[k] * df;
    if (est.psd[k] > peak) {
      peak = est.psd[k];
      peakFreq = est.freq[k];
    }
  }
  EXPECT_NEAR(power, 0.5 * A * A, 0.05 * 0.5 * A * A);
  EXPECT_NEAR(peakFreq, f0, df);
  // Away from the tone the floor is numerically empty.
  Real floorMax = 0;
  for (std::size_t k = 0; k < est.psd.size(); ++k)
    if (std::abs(est.freq[k] - f0) > 8 * df)
      floorMax = std::max(floorMax, est.psd[k]);
  EXPECT_LT(floorMax, 1e-9 * peak);
}

TEST(PeriodogramPsd, ExplicitSegmentLengthAndGuards) {
  std::vector<Real> x(256, 1.0);  // DC record
  const auto est = periodogramPsd(x, 100.0, 64);
  // 64-sample segments with hop 32 over 256 samples → 7 segments.
  EXPECT_EQ(est.segments, 7u);
  EXPECT_EQ(est.freq.size(), 33u);
  // All power lands at DC (Hann sidelobes aside).
  std::size_t arg = 1;
  for (std::size_t k = 1; k < est.psd.size(); ++k)
    if (est.psd[k] > est.psd[arg]) arg = k;
  EXPECT_GT(est.psd[0], est.psd[arg]);

  EXPECT_THROW(periodogramPsd(std::vector<Real>(4, 0.0), 100.0),
               InvalidArgument);
  EXPECT_THROW(periodogramPsd(x, 0.0), InvalidArgument);
  EXPECT_THROW(periodogramPsd(x, 100.0, 4), InvalidArgument);
}

TEST(PhaseNoiseGuards, UnconvergedPSSRejected) {
  Circuit c;
  const int v = c.node("v");
  c.add<Resistor>("R", v, -1, 100.0);
  MnaSystem sys(c);
  analysis::PSSResult bogus;  // converged = false
  EXPECT_THROW(floquetDecompose(sys, bogus), InvalidArgument);
}

}  // namespace
}  // namespace rfic::phasenoise
