// Reduced-order modeling (Section 5): moment matching (PVL 2q vs Arnoldi
// q — the paper's quantitative claim), transfer accuracy, pole locations,
// PRIMA passivity/stability, and the ROM noise evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "rom/arnoldi_rom.hpp"
#include "rom/linear_system.hpp"
#include "rom/prima.hpp"
#include "rom/pvl.hpp"
#include "rom/rom_noise.hpp"

namespace rfic::rom {
namespace {

Real relErr(Real a, Real ref) { return std::abs(a - ref) / (std::abs(ref) + 1e-300); }

TEST(LinearSystem, RCLineTransferAtDC) {
  const auto sys = makeRCLine(100, 1000.0, 1e-9);
  // At DC the caps are open: input current 1 A through the 10 Ω-equivalent
  // source conductance... the far-end voltage equals the input node voltage
  // (no current flows in the chain): H(0) = 1/g_source.
  const Complex h0 = sys.transferFunction({0.0, 0.0});
  EXPECT_NEAR(h0.real(), 1000.0 / 100.0, 1e-9);
  EXPECT_NEAR(h0.imag(), 0.0, 1e-12);
}

TEST(LinearSystem, TransferRollsOff) {
  const auto sys = makeRCLine(200, 1000.0, 1e-9);
  const Real dc = std::abs(sys.transferFunction({0.0, 0.0}));
  const Real hi = std::abs(sys.transferFunction({0.0, kTwoPi * 1e9}));
  EXPECT_LT(hi, 1e-3 * dc);
}

class MomentMatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MomentMatch, PVLMatchesTwiceArnoldi) {
  const std::size_t q = GetParam();
  // Normalized units (R·C ≈ 1) keep high-order moments away from double
  // underflow so the sharpness checks below stay meaningful.
  const auto sys = makeRCLine(400, 1.0, 1.0);
  const Real s0 = 0.0;
  const auto exact = exactMoments(sys, s0, 2 * q + 2);
  const auto pvlM = pvl(sys, s0, q).rom.moments(2 * q + 2);
  const auto arnM = arnoldiReduce(sys, s0, q).rom.moments(2 * q + 2);

  // PVL: first 2q moments match.
  for (std::size_t k = 0; k < 2 * q; ++k)
    EXPECT_LT(relErr(pvlM[k], exact[k]), 1e-6) << "PVL moment " << k;
  // Arnoldi: first q moments match.
  for (std::size_t k = 0; k < q; ++k)
    EXPECT_LT(relErr(arnM[k], exact[k]), 1e-6) << "Arnoldi moment " << k;
}

INSTANTIATE_TEST_SUITE_P(Orders, MomentMatch, ::testing::Values(2, 3, 4, 6));

TEST(MomentMatch, GuaranteesAreSharpAtLowOrder) {
  // At q = 2 the uniform RC line still has several comparable poles, so the
  // first unmatched moment is visibly wrong for both methods. (At larger q
  // the dominant-pole term swamps high-order moments and *any* model that
  // captures it reproduces them to near roundoff — extra accuracy beyond
  // the guarantee, not a violation of it.)
  const std::size_t q = 2;
  const auto sys = makeRCLine(400, 1.0, 1.0);
  const auto exact = exactMoments(sys, 0.0, 2 * q + 2);
  const auto pvlM = pvl(sys, 0.0, q).rom.moments(2 * q + 2);
  const auto arnM = arnoldiReduce(sys, 0.0, q).rom.moments(2 * q + 2);
  EXPECT_GT(relErr(arnM[q + 1], exact[q + 1]), 1e-6);
  EXPECT_GT(relErr(pvlM[2 * q + 1], exact[2 * q + 1]), 1e-7);
}

TEST(PVL, TransferAccuracyBeatsArnoldiAtEqualOrder) {
  const auto sys = makeRCLine(500, 1000.0, 1e-9);
  const auto pv = pvl(sys, 0.0, 5).rom;
  const auto ar = arnoldiReduce(sys, 0.0, 5).rom;
  Real pvlWins = 0, total = 0;
  for (Real f = 1e4; f < 3e7; f *= 3.0) {
    const Complex s(0.0, kTwoPi * f);
    const Complex href = sys.transferFunction(s);
    const Real ep = std::abs(pv.transfer(s) - href);
    const Real ea = std::abs(ar.transfer(s) - href);
    if (ep <= ea) pvlWins += 1;
    total += 1;
  }
  EXPECT_GE(pvlWins / total, 0.7);
}

TEST(PVL, ConvergesToExactWithOrder) {
  const auto sys = makeRCLine(300, 1000.0, 1e-9);
  const Complex s(0.0, kTwoPi * 3e6);
  const Complex href = sys.transferFunction(s);
  Real prevErr = 1e300;
  for (std::size_t q : {2, 4, 8, 12}) {
    const Real err = std::abs(pvl(sys, 0.0, q).rom.transfer(s) - href);
    EXPECT_LT(err, prevErr * 1.1);
    prevErr = err;
  }
  EXPECT_LT(prevErr, 1e-8 * std::abs(href));
}

TEST(PVL, DominantPolesOfRCLineRealAndStable) {
  // The exact poles of an RC network are real and negative. A Padé-type
  // approximant reproduces the dominant (small-|s|) poles faithfully but is
  // free to place non-physical complex pairs at high frequency — exactly
  // the passivity caveat the paper raises for Lanczos-based reduction.
  const auto sys = makeRCLine(200, 1000.0, 1e-9);
  const auto rom = pvl(sys, 0.0, 8).rom;
  auto poles = rom.poles();
  std::sort(poles.begin(), poles.end(),
            [](const Complex& a, const Complex& b) {
              return std::abs(a) < std::abs(b);
            });
  ASSERT_GE(poles.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(poles[i].real(), 0.0);
    EXPECT_NEAR(poles[i].imag(), 0.0, 1e-3 * std::abs(poles[i].real()));
  }
}

TEST(PVL, RLCLineHasComplexPolePairs) {
  const auto sys = makeRLCLine(60, 10.0, 1e-7, 1e-10);
  const auto rom = pvl(sys, 0.0, 8).rom;
  bool complexPair = false;
  for (const Complex& p : rom.poles())
    if (std::abs(p.imag()) > std::abs(p.real())) complexPair = true;
  EXPECT_TRUE(complexPair);
}

TEST(PVL, ExpansionAtNonzeroS0) {
  const auto sys = makeRCLine(150, 1000.0, 1e-9);
  const Real s0 = kTwoPi * 1e6;
  const auto rom = pvl(sys, s0, 6).rom;
  const Complex s(0.0, kTwoPi * 2e6);
  const Complex href = sys.transferFunction(s);
  EXPECT_LT(std::abs(rom.transfer(s) - href), 1e-4 * std::abs(href));
}

TEST(PVL, OrderOneIsSinglePoleFit) {
  const auto sys = makeRCLine(50, 1000.0, 1e-9);
  const auto res = pvl(sys, 0.0, 1);
  EXPECT_EQ(res.achievedOrder, 1u);
  EXPECT_EQ(res.rom.poles().size(), 1u);
}

TEST(Arnoldi, BasisIsOrthonormal) {
  const auto sys = makeRCTree(8, 100.0, 1e-12);
  const auto res = arnoldiReduce(sys, 0.0, 6);
  for (std::size_t i = 0; i < res.basis.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const Real d = numeric::dot(res.basis[i], res.basis[j]);
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Prima, MatchesQMoments) {
  const auto sys = makeRCLine(300, 2000.0, 1e-9);
  const std::size_t q = 5;
  const auto exact = exactMoments(sys, 0.0, q + 2);
  const auto m = primaReduce(sys, 0.0, q).moments(q + 2);
  for (std::size_t k = 0; k < q; ++k)
    EXPECT_LT(relErr(m[k], exact[k]), 1e-6) << "moment " << k;
}

TEST(Prima, StablePolesOnRCAndRLC) {
  EXPECT_TRUE(primaReduce(makeRCLine(200, 1000.0, 1e-9), 0.0, 6).polesStable());
  EXPECT_TRUE(
      primaReduce(makeRLCLine(60, 10.0, 1e-7, 1e-10), 0.0, 8).polesStable());
}

TEST(Prima, TransferTracksExact) {
  const auto sys = makeRCTree(9, 200.0, 5e-13);
  const auto m = primaReduce(sys, 0.0, 10);
  for (Real f = 1e5; f < 1e8; f *= 10.0) {
    const Complex s(0.0, kTwoPi * f);
    const Complex href = sys.transferFunction(s);
    EXPECT_LT(std::abs(m.transfer(s) - href), 0.05 * std::abs(href) + 1e-12)
        << "f = " << f;
  }
}

TEST(RomNoise, ROMSweepAccurateAndFaster) {
  const auto sys = makeRCLine(800, 1000.0, 1e-9);
  std::vector<NoiseInput> sources;
  for (int i = 0; i < 6; ++i) {
    NoiseInput ni;
    ni.injection = numeric::RVec(sys.n);
    ni.injection[static_cast<std::size_t>(100 + i * 120)] = 1.0;
    ni.psd = 1e-24 * (1.0 + i);
    ni.label = "src" + std::to_string(i);
    sources.push_back(ni);
  }
  std::vector<Real> freqs;
  for (int i = 0; i < 80; ++i)
    freqs.push_back(1e3 * std::pow(10.0, 0.05 * i));  // 1 kHz … 10 MHz
  const auto res = noiseViaROM(sys, sources, freqs, 0.0, 10);
  EXPECT_LT(res.maxRelError, 1e-2);
  EXPECT_LT(res.romSeconds, res.directSeconds);
}

TEST(RomNoise, RejectsEmptyInput) {
  const auto sys = makeRCLine(10, 1000.0, 1e-9);
  EXPECT_THROW(noiseViaROM(sys, {}, {1e3}, 0.0, 4), InvalidArgument);
}

TEST(ROM, InvalidOrdersThrow) {
  const auto sys = makeRCLine(20, 1000.0, 1e-9);
  EXPECT_THROW(pvl(sys, 0.0, 0), InvalidArgument);
  EXPECT_THROW(pvl(sys, 0.0, 1000), InvalidArgument);
  EXPECT_THROW(arnoldiReduce(sys, 0.0, 0), InvalidArgument);
}

TEST(ROM, GeneratorsRejectBadArguments) {
  EXPECT_THROW(makeRCLine(0, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(makeRCTree(0, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(makeRCTree(20, 1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace rfic::rom
