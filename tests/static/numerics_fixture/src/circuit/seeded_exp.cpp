// Seeded violation for the numerics-lint scalar-exp selftest: a junction
// exponential written inline in device-eval code instead of through the
// shared kernels in junction_kernels.hpp.
#include <cmath>

namespace fixture {

double deviceEvalBad(double v) {
  return 1e-14 * (std::exp(v / 0.025852) - 1.0);
}

double deviceEvalJustified(double v) {
  // Not a junction law — a decay envelope; suppression is justified.
  return std::exp(-v);  // lint: allow-scalar-exp
}

}  // namespace fixture
