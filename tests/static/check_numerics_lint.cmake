# Selftest driver for the numerics-lint scalar-exp rule: runs the lint on
# the seeded fixture tree and asserts the rule fires on the inline junction
# exponential while honoring the justified suppression. (Entry-check /
# status findings about the fixture's missing solver files are expected
# noise — the assertions below pin only the scalar-exp behaviour.)
#
# Invoked by ctest as:
#   cmake -DPYTHON=... -DLINT=... -DFIXTURE=... -P check_numerics_lint.cmake

execute_process(
  COMMAND "${PYTHON}" "${LINT}" "${FIXTURE}"
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err
  RESULT_VARIABLE lint_rc)
string(APPEND lint_out "${lint_err}")

if(NOT lint_rc EQUAL 1)
  message(FATAL_ERROR
          "numerics_lint selftest: expected exit code 1 on the seeded "
          "fixture, got ${lint_rc}. Output:\n${lint_out}")
endif()

# The seeded inline exponential must be flagged by the scalar-exp rule.
string(FIND "${lint_out}" "seeded_exp.cpp:9: [scalar-exp]" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
          "numerics_lint selftest: expected scalar-exp finding at "
          "seeded_exp.cpp:9. Output:\n${lint_out}")
endif()

# The justified `lint: allow-scalar-exp` suppression must be honored.
string(FIND "${lint_out}" "seeded_exp.cpp:15" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR
          "numerics_lint selftest: the justified suppression at "
          "seeded_exp.cpp:15 must not be flagged. Output:\n${lint_out}")
endif()

message(STATUS "numerics_lint selftest: all assertions passed")
