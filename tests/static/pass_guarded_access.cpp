// Thread-safety-analysis positive fixture: correctly guarded access to an
// RFIC_GUARDED_BY member. Must compile warning-free everywhere — under
// clang with -Wthread-safety -Wthread-safety-beta -Werror (the CI
// static-analysis job) and under GCC, where the annotations are no-ops.
#include <cstddef>

#include "diag/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() RFIC_EXCLUDES(mu_) {
    rfic::diag::LockGuard lock(mu_);
    ++value_;
  }

  std::size_t read() const RFIC_EXCLUDES(mu_) {
    rfic::diag::LockGuard lock(mu_);
    return value_;
  }

 private:
  mutable rfic::diag::Mutex mu_;
  std::size_t value_ RFIC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read() == 1 ? 0 : 1;
}
