# Selftest driver for tools/realtime_lint.py: runs the lint on the
# seeded-violation fixture and asserts the full contract — every rule
# fires, the call graph is walked (hotLoop -> coldHelper), the justified
# suppression is honored, and the bare suppression is itself rejected.
#
# Invoked by ctest as:
#   cmake -DPYTHON=... -DLINT=... -DFIXTURE=... -P check_realtime_lint.cmake

execute_process(
  COMMAND "${PYTHON}" "${LINT}" "${FIXTURE}"
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err
  RESULT_VARIABLE lint_rc)
string(APPEND lint_out "${lint_err}")

if(NOT lint_rc EQUAL 1)
  message(FATAL_ERROR
          "realtime_lint selftest: expected exit code 1 on the seeded "
          "fixture, got ${lint_rc}. Output:\n${lint_out}")
endif()

# Every rule must fire, the walk must reach coldHelper, and the total must
# be exactly the seeded count (a drop means a rule regressed; a rise means
# a false positive crept in).
foreach(marker
        "[rt-alloc]" "[rt-lock]" "[rt-io]" "[rt-throw]" "[rt-suppression]"
        "hotLoop -> coldHelper"
        "7 finding(s)")
  string(FIND "${lint_out}" "${marker}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "realtime_lint selftest: expected '${marker}' in the lint "
            "output. Output:\n${lint_out}")
  endif()
endforeach()

# The clean root and the justified suppression must NOT be reported
# (line 27 is the justified buf.reserve(64)).
foreach(absent "quietPath" "seeded_violations.cpp:27")
  string(FIND "${lint_out}" "${absent}" pos)
  if(NOT pos EQUAL -1)
    message(FATAL_ERROR
            "realtime_lint selftest: '${absent}' must not be flagged. "
            "Output:\n${lint_out}")
  endif()
endforeach()

message(STATUS "realtime_lint selftest: all assertions passed")
