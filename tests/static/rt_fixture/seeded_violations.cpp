// Seeded-violation fixture for the realtime_lint selftest. This file is
// never compiled — the lint is textual — but it is kept valid C++ so it
// reads like the real thing. Every violation below is intentional; the
// selftest asserts the lint reports each rule, walks into coldHelper, and
// honors the one justified suppression while rejecting the bare one.
#define RFIC_REALTIME

#include <cstdio>
#include <mutex>
#include <vector>

namespace fixture {

std::mutex gMu;

void coldHelper(std::vector<double>& v) {
  v.push_back(1.0);  // reachable finding: flagged through the call graph
}

RFIC_REALTIME int hotLoop(std::vector<double>& buf) {
  std::vector<double> tmp(8);               // rt-alloc: sized local
  buf.resize(32);                           // rt-alloc: container call
  std::lock_guard<std::mutex> guard(gMu);   // rt-lock
  std::printf("side effect\n");             // rt-io
  if (buf.empty()) throw 42;                // rt-throw
  coldHelper(buf);                          // walked: coldHelper flagged
  buf.reserve(64);  // rt: allow(rt-alloc) justified suppression — the
                    // selftest asserts this line is NOT reported
  buf.reserve(65);  // rt: allow(rt-alloc)
  return static_cast<int>(tmp.size());      // bare suppression above is an
                                            // rt-suppression finding
}

RFIC_REALTIME double quietPath(const std::vector<double>& buf) {
  double s = 0;  // no findings here: the selftest asserts `quietPath`
  for (double v : buf) s += v;
  return s;
}

}  // namespace fixture
