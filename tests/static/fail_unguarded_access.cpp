// Thread-safety-analysis negative fixture: reads an RFIC_GUARDED_BY member
// without holding its mutex. Under clang with -Wthread-safety
// -Wthread-safety-beta -Werror this MUST fail to compile — the ctest entry
// registering it carries WILL_FAIL. (Under GCC the annotations are no-ops
// and the file compiles, so the test is only registered when clang is
// available.)
#include <cstddef>

#include "diag/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() RFIC_EXCLUDES(mu_) {
    rfic::diag::LockGuard lock(mu_);
    ++value_;
  }

  std::size_t racyRead() const {
    return value_;  // BUG under analysis: no lock held
  }

 private:
  mutable rfic::diag::Mutex mu_;
  std::size_t value_ RFIC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return static_cast<int>(c.racyRead());
}
