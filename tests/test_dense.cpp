// Dense linear algebra: containers, LU, QR, SVD, eigenvalues.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numeric/dense.hpp"
#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "numeric/qr.hpp"
#include "numeric/svd.hpp"

namespace rfic::numeric {
namespace {

RMat randomMatrix(std::size_t n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1.0, 1.0);
  RMat a(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) a(i, j) = u(rng);
  return a;
}

RVec randomVector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> u(-1.0, 1.0);
  RVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = u(rng);
  return v;
}

TEST(Vec, Arithmetic) {
  RVec a{1, 2, 3}, b{4, 5, 6};
  RVec c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5);
  EXPECT_DOUBLE_EQ(c[2], 9);
  c -= a;
  EXPECT_DOUBLE_EQ(c[1], 5);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c[0], 8);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(RVec{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(normInf(RVec{-7, 2}), 7.0);
}

TEST(Vec, SizeMismatchThrows) {
  RVec a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW(dot(a, b), InvalidArgument);
}

TEST(Vec, ComplexDotConjugatesFirstArgument) {
  CVec a{{0, 1}}, b{{0, 1}};
  EXPECT_NEAR(dot(a, b).real(), 1.0, 1e-15);   // conj(i)*i = 1
  EXPECT_NEAR(dotu(a, b).real(), -1.0, 1e-15); // i*i = -1
}

TEST(Mat, MatVecAndMatMul) {
  RMat a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  RVec x{1, 1, 1};
  RVec y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  RMat at = a.transposed();
  RMat p = a * at;  // 2x2
  EXPECT_DOUBLE_EQ(p(0, 0), 14);
  EXPECT_DOUBLE_EQ(p(0, 1), 32);
  EXPECT_DOUBLE_EQ(p(1, 1), 77);
}

TEST(Mat, TransposeMatvecMatchesExplicit) {
  const RMat a = randomMatrix(7, 5, 11);
  const RVec x = randomVector(7, 12);
  const RVec y1 = transposeMatvec(a, x);
  const RVec y2 = a.transposed() * x;
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Mat, IdentityActsTrivially) {
  const RMat i = RMat::identity(4);
  const RVec x = randomVector(4, 3);
  const RVec y = i * x;
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(y[k], x[k]);
}

class LUSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LUSizes, SolveRandomSystem) {
  const std::size_t n = GetParam();
  RMat a = randomMatrix(n, n, 100 + n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
  const RVec xref = randomVector(n, 200 + n);
  const RVec b = a * xref;
  const RVec x = solveDense(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST_P(LUSizes, TransposedSolve) {
  const std::size_t n = GetParam();
  RMat a = randomMatrix(n, n, 300 + n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  const RVec xref = randomVector(n, 400 + n);
  const RVec b = a.transposed() * xref;
  LU<Real> lu(a);
  const RVec x = lu.solveTransposed(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LUSizes,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 50));

TEST(LU, ComplexSolve) {
  CMat a(2, 2);
  a(0, 0) = {1, 1};
  a(0, 1) = {0, -1};
  a(1, 0) = {2, 0};
  a(1, 1) = {3, 1};
  CVec xref{{1, -1}, {2, 0.5}};
  const CVec b = a * xref;
  const CVec x = solveDense(a, b);
  EXPECT_NEAR(std::abs(x[0] - xref[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - xref[1]), 0.0, 1e-12);
}

TEST(LU, SingularThrows) {
  RMat a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LU<Real>{a}, NumericalError);
}

TEST(LU, Determinant) {
  RMat a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_NEAR(LU<Real>(a).determinant(), 10.0, 1e-12);
}

TEST(LU, InverseReconstructs) {
  const std::size_t n = 8;
  RMat a = randomMatrix(n, n, 7);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;
  const RMat ia = inverse(a);
  const RMat prod = a * ia;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(LU, ConditionEstimateIdentityIsOne) {
  EXPECT_NEAR(conditionEstimate(RMat::identity(6)), 1.0, 1e-12);
}

TEST(LU, ConditionEstimateScalesWithDiagonalSpread) {
  RMat a = RMat::identity(4);
  a(3, 3) = 1e-6;
  EXPECT_NEAR(conditionEstimate(a), 1e6, 1.0);
}

class QRSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QRSizes, FactorsReconstructAndQOrthonormal) {
  const auto [m, n] = GetParam();
  const RMat a = randomMatrix(m, n, 31 + m * 7 + n);
  const ThinQR qr = thinQR(a);
  // A = QR
  const RMat rec = qr.q * qr.r;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-12);
  // QᵀQ = I
  const RMat qtq = qr.q.transposed() * qr.q;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-12);
  // R upper triangular
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_NEAR(qr.r(i, j), 0.0, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QRSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{10, 4},
                                           std::pair<std::size_t, std::size_t>{30, 7},
                                           std::pair<std::size_t, std::size_t>{50, 1}));

TEST(QR, LeastSquaresRecoversPolynomialFit) {
  // Fit y = 2 + 3x on noisy-free samples: exact recovery.
  const std::size_t m = 20;
  RMat a(m, 2);
  RVec b(m);
  for (std::size_t i = 0; i < m; ++i) {
    const Real x = static_cast<Real>(i) * 0.1;
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 2.0 + 3.0 * x;
  }
  const RVec c = leastSquares(a, b);
  EXPECT_NEAR(c[0], 2.0, 1e-12);
  EXPECT_NEAR(c[1], 3.0, 1e-12);
}

TEST(QR, LeastSquaresMinimizesResidual) {
  const RMat a = randomMatrix(12, 3, 77);
  const RVec b = randomVector(12, 78);
  const RVec x = leastSquares(a, b);
  // Residual orthogonal to the column space.
  RVec r = a * x;
  r -= b;
  const RVec atr = transposeMatvec(a, r);
  EXPECT_LT(norm2(atr), 1e-10);
}

class SVDSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SVDSizes, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  const RMat a = randomMatrix(m, n, 55 + m + 3 * n);
  const SVD d = svd(a);
  const std::size_t k = std::min(m, n);
  ASSERT_EQ(d.s.size(), k);
  // Singular values non-increasing and non-negative.
  for (std::size_t i = 1; i < k; ++i) EXPECT_LE(d.s[i], d.s[i - 1] + 1e-14);
  EXPECT_GE(d.s[k - 1], -1e-14);
  // A = U S Vᵀ
  RMat us(m, k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) us(i, j) = d.u(i, j) * d.s[j];
  const RMat rec = us * d.v.transposed();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-10);
  // UᵀU = I
  const RMat utu = d.u.transposed() * d.u;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j)
      EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SVDSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{5, 5},
                                           std::pair<std::size_t, std::size_t>{12, 5},
                                           std::pair<std::size_t, std::size_t>{5, 12},
                                           std::pair<std::size_t, std::size_t>{1, 8}));

TEST(SVD, KnownSingularValuesOfDiagonal) {
  RMat a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -2;  // singular value is |−2|
  a(2, 2) = 0.5;
  const SVD d = svd(a);
  EXPECT_NEAR(d.s[0], 3.0, 1e-12);
  EXPECT_NEAR(d.s[1], 2.0, 1e-12);
  EXPECT_NEAR(d.s[2], 0.5, 1e-12);
}

TEST(SVD, NumericalRankOfOuterProduct) {
  // Rank-2 matrix: a = u1 v1ᵀ + u2 v2ᵀ
  const RVec u1 = randomVector(9, 1), v1 = randomVector(6, 2);
  const RVec u2 = randomVector(9, 3), v2 = randomVector(6, 4);
  RMat a(9, 6);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      a(i, j) = u1[i] * v1[j] + u2[i] * v2[j];
  const SVD d = svd(a);
  EXPECT_EQ(numericalRank(d, 1e-10), 2u);
}

TEST(Eig, KnownEigenvaluesOfTriangular) {
  RMat a(3, 3);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 1) = -2;
  a(1, 2) = 1;
  a(2, 2) = 7;
  CVec e = eigenvalues(a);
  std::vector<Real> re;
  for (std::size_t i = 0; i < 3; ++i) re.push_back(e[i].real());
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -2.0, 1e-8);
  EXPECT_NEAR(re[1], 1.0, 1e-8);
  EXPECT_NEAR(re[2], 7.0, 1e-8);
}

TEST(Eig, RotationMatrixHasComplexPair) {
  // 2D rotation by θ: eigenvalues e^{±iθ}.
  const Real th = 0.7;
  RMat a(2, 2);
  a(0, 0) = std::cos(th);
  a(0, 1) = -std::sin(th);
  a(1, 0) = std::sin(th);
  a(1, 1) = std::cos(th);
  CVec e = eigenvalues(a);
  EXPECT_NEAR(std::abs(e[0]), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(e[1]), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(e[0].imag()), std::sin(th), 1e-9);
}

TEST(Eig, TraceAndDeterminantInvariants) {
  const std::size_t n = 10;
  RMat a = randomMatrix(n, n, 99);
  const CVec e = eigenvalues(a);
  Complex sum = 0, prod = 1;
  for (std::size_t i = 0; i < n; ++i) {
    sum += e[i];
    prod *= e[i];
  }
  Real tr = 0;
  for (std::size_t i = 0; i < n; ++i) tr += a(i, i);
  EXPECT_NEAR(sum.real(), tr, 1e-8);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
  EXPECT_NEAR(prod.real(), LU<Real>(a).determinant(), 1e-6);
}

TEST(Eig, EigenvectorNearRecoversEigenpair) {
  RMat a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 5;
  a(2, 2) = -1;
  a(0, 1) = 1;
  a(1, 2) = 1;
  const CVec v = eigenvectorNear(a, Complex(5.0, 0.0));
  // A v ≈ 5 v
  CVec av(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) av[i] += a(i, j) * v[j];
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(std::abs(av[i] - 5.0 * v[i]), 0.0, 1e-6);
}

TEST(Eig, LeftEigenvectorSatisfiesAdjointRelation) {
  RMat a(3, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 0.5;
  a(1, 1) = 3;
  a(2, 2) = -2;
  const CVec e = eigenvalues(a);
  // Pick the eigenvalue with largest magnitude.
  Complex lam = e[0];
  for (std::size_t i = 1; i < 3; ++i)
    if (std::abs(e[i]) > std::abs(lam)) lam = e[i];
  const CVec w = leftEigenvectorNear(a, lam);
  // wᴴ A ≈ λ wᴴ  ⇔  Aᵀ w̄ = λ̄ w̄; check ‖Aᵀw̄ − λ̄w̄‖ small.
  CVec atw(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) atw[j] += a(i, j) * std::conj(w[i]);
  Real err = 0;
  for (std::size_t j = 0; j < 3; ++j)
    err += std::abs(atw[j] - std::conj(lam) * std::conj(w[j]));
  EXPECT_LT(err, 1e-6);
}

}  // namespace
}  // namespace rfic::numeric
