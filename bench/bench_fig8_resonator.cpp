// Fig. 8 reproduction — the multi-component resonator assembly.
//
// The paper shows the structure as an outlook: "these techniques will make
// it possible to simulate critical multi-component assemblies such as the
// resonator shown in Figure 8." This bench extracts the full capacitance
// matrix of a resonator assembly (two plates over ground with a coupling
// line) with the IES³-compressed solver at increasing mesh density,
// demonstrating exactly that feasibility.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "extraction/ies3.hpp"
#include "extraction/mom.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::extraction;

int main() {
  header("Fig. 8 — resonator assembly extraction (IES3)");
  JsonReporter rep("fig8_resonator");
  for (const std::size_t n : {3u, 6u, quickMode() ? 6u : 12u}) {
    const auto mesh = makeResonatorAssembly(n);
    Stopwatch sw;
    const auto cap = extractCapacitanceIES3(mesh);
    const Real secs = sw.seconds();
    std::printf("\nmesh density %zu: %zu panels, %zu stored entries "
                "(%.1f%% of dense), %.2f s, %zu GMRES iters\n",
                n, cap.panelCount, cap.storedEntries,
                100.0 * cap.storedEntries /
                    (static_cast<Real>(cap.panelCount) * cap.panelCount),
                secs, cap.gmresIterations);
    std::printf("Maxwell capacitance matrix (fF), conductors: ");
    for (const auto& name : mesh.conductorNames)
      std::printf("%s ", name.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < mesh.numConductors(); ++i) {
      std::printf("  ");
      for (std::size_t j = 0; j < mesh.numConductors(); ++j)
        std::printf("%10.3f ", cap.matrix(i, j) * 1e15);
      std::printf("\n");
    }
    // The quantity a resonator designer wants: plate-to-plate coupling
    // through the line vs direct plate-ground capacitance.
    const Real c12 = -cap.matrix(1, 2);
    const Real c1g = -cap.matrix(1, 0);
    std::printf("res1-res2 coupling %.3f fF, res1-ground %.3f fF "
                "(coupling ratio %.3f)\n",
                c12 * 1e15, c1g * 1e15, c12 / c1g);
    // The finest mesh's numbers land in the JSON artifact (later densities
    // overwrite earlier keys by design — last write wins in JsonReporter).
    rep.count("panels", cap.panelCount);
    rep.metric("compression_pct",
               100.0 * cap.storedEntries /
                   (static_cast<Real>(cap.panelCount) * cap.panelCount));
    rep.metric("wall_s", secs);
    rep.metric("coupling_fF", c12 * 1e15);
    rep.metric("coupling_ratio", c12 / c1g);
  }
  return 0;
}
