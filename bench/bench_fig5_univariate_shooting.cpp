// Fig. 5 reproduction — univariate shooting on the switching mixer, and
// the MMFT-vs-univariate cost comparison (the paper reports the univariate
// run "took almost 300 times as long as the new algorithm").
//
// Univariate shooting must integrate one full slow period at a resolution
// of the fast LO: the paper's 50 steps per fast period × fLO/fRF fast
// periods. The wall-clock ratio is hardware-dependent; the *scaling* —
// univariate cost proportional to the time-scale separation, MMFT cost
// independent of it — is the reproducible claim, so the bench sweeps the
// separation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/dc.hpp"
#include "analysis/shooting.hpp"
#include "bench_util.hpp"
#include "mixer_circuit.hpp"
#include "mpde/mmft.hpp"

using namespace rfic;
using namespace rfic::bench;

namespace {

struct RunResult {
  Real mix = 0;       // |fRF + fLO| differential amplitude [V]
  Real seconds = 0;
  bool ok = false;
};

RunResult runMMFT(Real fRF, Real fLO) {
  circuit::Circuit ckt;
  const MixerNodes nodes = buildSwitchingMixer(ckt, fRF, fLO, 0.1, 3.0);
  circuit::MnaSystem sys(ckt);
  const auto dc = analysis::dcOperatingPoint(sys);
  mpde::MMFTOptions mo;
  mo.slowHarmonics = 3;
  mo.fastSteps = 160;
  Stopwatch sw;
  const auto res = mpde::runMMFT(sys, fRF, fLO, dc.x, mo);
  RunResult out;
  out.seconds = sw.seconds();
  out.ok = res.converged;
  const auto up = static_cast<std::size_t>(nodes.outp);
  const auto um = static_cast<std::size_t>(nodes.outm);
  out.mix = 2.0 * std::abs(res.grid.mixCoefficient(up, 1, 1) -
                           res.grid.mixCoefficient(um, 1, 1));
  return out;
}

RunResult runUnivariate(Real fRF, Real fLO) {
  circuit::Circuit ckt;
  const MixerNodes nodes = buildSwitchingMixer(ckt, fRF, fLO, 0.1, 3.0);
  circuit::MnaSystem sys(ckt);
  const auto dc = analysis::dcOperatingPoint(sys);

  // Paper's recipe: shooting over one slow period at 50 steps per fast
  // period. For the driven (non-autonomous) mixer a small number of outer
  // Newton iterations suffices.
  const auto stepsTotal = static_cast<std::size_t>(
      std::llround(50.0 * fLO / fRF));
  analysis::ShootingOptions so;
  so.stepsPerPeriod = stepsTotal;
  so.maxIterations = 8;
  so.tolerance = 1e-7;
  Stopwatch sw;
  const auto pss = analysis::shootingPSS(sys, 1.0 / fRF, dc.x, so);
  RunResult out;
  out.seconds = sw.seconds();
  out.ok = pss.converged;
  // Fourier-extract the fRF + fLO product from the stored trajectory.
  const auto up = static_cast<std::size_t>(nodes.outp);
  const auto um = static_cast<std::size_t>(nodes.outm);
  const Real fMix = fRF + fLO;
  Complex acc = 0;
  const std::size_t m = pss.trajectory.size() - 1;
  for (std::size_t k = 0; k < m; ++k) {
    const Real t = pss.times[k];
    const Real v = pss.trajectory[k][up] - pss.trajectory[k][um];
    acc += v * Complex(std::cos(kTwoPi * fMix * t),
                       -std::sin(kTwoPi * fMix * t));
  }
  out.mix = 2.0 * std::abs(acc) / static_cast<Real>(m);
  return out;
}

}  // namespace

int main() {
  header("Fig. 5 — univariate shooting vs MMFT on the switching mixer");
  JsonReporter rep("fig5_univariate_shooting");
  std::printf("%-12s %-12s %-12s %-12s %-12s %-10s\n", "fLO/fRF",
              "mmft mix mV", "univ mix mV", "mmft s", "univ s", "speedup");
  rule();
  const Real fLO = 900e6;  // paper's LO
  // Sweep the separation upward toward the paper's 9000×; univariate cost
  // grows linearly while MMFT stays flat.
  std::vector<Real> seps{50.0, 200.0, 1000.0, 9000.0};
  if (quickMode()) seps = {50.0, 200.0};
  Real lastSep = 0, lastSpeedup = 0, lastMMFT = 0, lastUniv = 0;
  for (const Real sep : seps) {
    const Real fRF = fLO / sep;
    const RunResult mm = runMMFT(fRF, fLO);
    const RunResult un = runUnivariate(fRF, fLO);
    lastSep = sep;
    lastSpeedup = un.seconds / mm.seconds;
    lastMMFT = mm.seconds;
    lastUniv = un.seconds;
    std::printf("%-12.0f %-12.3f %-12.3f %-12.2f %-12.2f %-10.0f%s\n", sep,
                mm.mix * 1e3, un.mix * 1e3, mm.seconds, un.seconds,
                un.seconds / mm.seconds,
                (mm.ok && un.ok) ? "" : "  (!unconverged)");
  }
  rep.metric("max_separation", lastSep);
  rep.metric("mmft_s", lastMMFT);
  rep.metric("univariate_s", lastUniv);
  rep.metric("speedup_at_max_separation", lastSpeedup);
  std::printf("paper: ~300x at separation 9000 (50 steps/fast period)\n");
  return 0;
}
