// Fig. 4 reproduction — MMFT analysis of the double-balanced switching
// mixer (paper Section 2.2).
//
// Paper setup: RF input 100 kHz sinusoid, 100 mV amplitude (mildly
// nonlinear); LO a large 900 MHz square wave switching the mixer. MMFT with
// 3 harmonics in the RF tone, shooting along the LO axis. The paper reports
// the time-varying first and third harmonics X1(t2), X3(t2) (Figs. 4a/4b),
// a 900.1 MHz mix amplitude of ≈ 60 mV, a 900.3 MHz amplitude of ≈ 1.1 mV,
// and ≈ 35 dB of distortion separation.
#include <cmath>
#include <cstdio>

#include "analysis/dc.hpp"
#include "bench_util.hpp"
#include "hb/spectrum.hpp"
#include "mixer_circuit.hpp"
#include "mpde/mmft.hpp"

using namespace rfic;
using namespace rfic::bench;

int main() {
  header("Fig. 4 — MMFT switching mixer: time-varying harmonics");
  JsonReporter rep("fig4_mmft_mixer");
  const Real fRF = 100e3;   // paper's RF tone
  const Real fLO = 900e6;   // paper's LO
  circuit::Circuit ckt;
  const MixerNodes nodes = buildSwitchingMixer(ckt, fRF, fLO, 0.1, 3.0);
  circuit::MnaSystem sys(ckt);
  const auto dc = analysis::dcOperatingPoint(sys);

  mpde::MMFTOptions mo;
  mo.slowHarmonics = 3;  // paper: "3 harmonics were taken in the RF tone"
  mo.fastSteps = 160;
  Stopwatch sw;
  const auto res = mpde::runMMFT(sys, fRF, fLO, dc.x, mo);
  const Real seconds = sw.seconds();
  std::printf("converged=%d  shooting iterations=%zu  wall=%.2f s\n",
              res.converged ? 1 : 0, res.shootingIterations, seconds);
  rep.flag("converged", res.converged);
  rep.count("shooting_iterations", res.shootingIterations);
  rep.metric("wall_s", seconds);
  if (!res.converged) return 1;

  const auto up = static_cast<std::size_t>(nodes.outp);
  const auto um = static_cast<std::size_t>(nodes.outm);

  // Differential time-varying harmonics X_k(t2) over one LO period
  // (Fig. 4a: k = 1; Fig. 4b: k = 3). Printed decimated.
  for (int k : {1, 3}) {
    const auto hp = res.grid.slowHarmonicVsFast(up, k);
    const auto hm = res.grid.slowHarmonicVsFast(um, k);
    std::printf("\nFig. 4%s — harmonic %d of the RF tone vs LO time "
                "(differential, volts):\n",
                k == 1 ? "a" : "b", k);
    std::printf("%-12s %-14s %-14s\n", "t2/T2", "Re", "Im");
    for (std::size_t j = 0; j < hp.size(); j += hp.size() / 16) {
      const Complex v = hp[j] - hm[j];
      std::printf("%-12.4f %-14.6e %-14.6e\n",
                  static_cast<Real>(j) / static_cast<Real>(hp.size()),
                  v.real(), v.imag());
    }
  }

  // Mix-product amplitudes: |k1·fRF + k2·fLO| tones of the differential
  // output; amplitude of a non-DC tone is 2|X|.
  auto mixAmp = [&](int k1, int k2) {
    const Complex d =
        res.grid.mixCoefficient(up, k1, k2) - res.grid.mixCoefficient(um, k1, k2);
    return 2.0 * std::abs(d);
  };
  const Real a11 = mixAmp(1, 1);   // 900.1 MHz
  const Real a31 = mixAmp(3, 1);   // 900.3 MHz
  rule();
  std::printf("mix product     freq (MHz)   amplitude (mV)\n");
  std::printf("fRF + fLO       %10.1f   %10.3f   (paper: ~60 mV)\n",
              (fRF + fLO) * 1e-6, a11 * 1e3);
  std::printf("3 fRF + fLO     %10.1f   %10.3f   (paper: ~1.1 mV)\n",
              (3 * fRF + fLO) * 1e-6, a31 * 1e3);
  std::printf("distortion: %0.1f dB below the desired mix (paper: ~35 dB)\n",
              -hb::toDb(a31, a11));
  rep.metric("mix_911_mV", a11 * 1e3);
  rep.metric("mix_933_mV", a31 * 1e3);
  rep.metric("distortion_db", -hb::toDb(a31, a11));
  return 0;
}
