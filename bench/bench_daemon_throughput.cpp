// Daemon throughput bench — the engine/Scheduler layer under a mixed
// many-job workload, the load profile rficd serves (DESIGN.md §10).
//
// A fixed job list (~102 full mode, ~24 quick) mixing cheap .op sweeps,
// .tran runs on repeated and distinct topologies, and harmonic-balance
// jobs is pushed through one Scheduler twice: workers=1 (serial floor)
// and workers=hardware. Reported: jobs/sec for both, the speedup, the
// cross-job context-cache and FFT plan-cache hit counts that repeat
// topologies must produce, and a zero-failures flag. A cancellation slice
// (every 17th job is cancelled right after submit) checks that
// cancellation under load neither fails jobs nor wedges the queue.
//
// Jobs are spread across the three priority classes cyclically (the
// mixed-priority load rficd serves); the scheduler runs with shedding
// disabled (highWater = queueDepth) and the bench gates on zero shed
// below the high-water mark, plus reports the aging-promotion count and
// the peak per-job workspace bytes.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/scheduler.hpp"
#include "perf/thread_pool.hpp"

using namespace rfic;
using namespace rfic::bench;

namespace {

std::string rcJob(int rOhms) {
  return "V1 in 0 SIN(0 1 1k)\nR1 in out " + std::to_string(rOhms) +
         "\nC1 out 0 1u\n.print out\n.op\n.tran 10u 1m\n";
}

const char* kDividerOp =
    "V1 vdd 0 DC 5\nR1 vdd mid 2k\nR2 mid 0 3k\nD1 mid 0 DM\n"
    ".model DM D (IS=1e-14 N=1.6)\n.print mid\n.op\n";

const char* kDiodeHb =
    "V1 in 0 SIN(0 0.8 1meg)\nR1 in a 50\nD1 a out DM\nR2 out 0 1k\n"
    "C1 out 0 10n\n.model DM D (IS=1e-14 N=1.2)\n.print out\n.op\n"
    ".hb 1meg 7\n";

std::vector<engine::JobSpec> makeWorkload(std::size_t jobs) {
  std::vector<engine::JobSpec> specs;
  specs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    engine::JobSpec s;
    switch (i % 6) {
      case 0:  // repeated topology: must hit the context cache
      case 3:
        s.netlist = kDividerOp;
        s.label = "divider";
        break;
      case 1:  // distinct RC topologies: always a cache miss
        s.netlist = rcJob(1000 + static_cast<int>(i) * 10);
        s.label = "rc-sweep";
        break;
      case 2:  // repeated HB topology: context + FFT plan cache reuse
        s.netlist = kDiodeHb;
        s.label = "hb";
        break;
      case 4:
        s.netlist = rcJob(4700);  // repeated transient topology
        s.label = "rc-repeat";
        break;
      default:
        s.netlist = kDividerOp;
        s.label = "divider";
        break;
    }
    s.threadShare = 1;  // scheduler-level parallelism only: jobs are small
    // Mixed-priority load: every class exercised; output must not depend
    // on class, so done/failed gates are unchanged by this assignment.
    s.priority = static_cast<engine::Priority>(i % 3);
    specs.push_back(std::move(s));
  }
  return specs;
}

struct RunStats {
  Real seconds = 0;
  std::size_t done = 0, cancelled = 0, failed = 0;
  std::size_t ctxHits = 0, ctxMisses = 0, planCacheHits = 0;
  std::uint64_t shed = 0, promoted = 0, memPeakBytes = 0;
};

RunStats runWorkload(std::size_t workers,
                     const std::vector<engine::JobSpec>& specs) {
  engine::Scheduler::Options o;
  o.workers = workers;
  o.queueDepth = specs.size() + 8;  // admission never the bottleneck here
  o.highWater = o.queueDepth;       // shedding off: every job must run
  engine::Scheduler sched(o);
  auto sink = std::make_shared<engine::NullSink>();

  Stopwatch sw;
  std::vector<engine::JobId> ids;
  std::vector<bool> wantCancel;
  ids.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const engine::JobId id = sched.submit(specs[i], sink);
    if (id == 0) continue;  // counted below as failed (should not happen)
    ids.push_back(id);
    // Cancellation slice: cancel every 17th job immediately. It either
    // finalizes as cancelled or — if a worker already finished it — Done;
    // both are healthy outcomes, anything else is a failure.
    const bool cancelled = (i % 17) == 16 && sched.cancel(id);
    wantCancel.push_back(cancelled);
  }

  RunStats st;
  st.failed += specs.size() - ids.size();
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const engine::JobResult r = sched.wait(ids[k]);
    st.ctxHits += r.perf.ctxHits;
    st.ctxMisses += r.perf.ctxMisses;
    st.planCacheHits += r.perf.planCacheHits;
    if (r.peakBytes > st.memPeakBytes) st.memPeakBytes = r.peakBytes;
    if (r.cancelled && wantCancel[k])
      ++st.cancelled;
    else if (r.exitCode == 0)
      ++st.done;
    else
      ++st.failed;
  }
  st.seconds = sw.seconds();
  const engine::SchedulerStats ss = sched.stats();
  st.shed = ss.shed;
  st.promoted = ss.promoted;
  return st;
}

}  // namespace

int main() {
  header("Daemon throughput — mixed jobs through the engine Scheduler");
  JsonReporter rep("daemon_throughput");
  perf::global().reset();

  const std::size_t jobs = quickMode() ? 24 : 102;
  // At least 2 workers even on one core: the point of the wide run is the
  // concurrent scheduling path (shared engine, contended context pool).
  const std::size_t wide =
      std::max<std::size_t>(2, perf::ThreadPool::global().concurrency());
  const auto specs = makeWorkload(jobs);

  std::printf("%-9s %-7s %-9s %-10s %-7s %-9s %-9s %-9s\n", "workers",
              "jobs", "done", "cancelled", "failed", "ctx hits", "plan hits",
              "jobs/s");
  rule();

  const RunStats serial = runWorkload(1, specs);
  const Real serialRate = serial.done / serial.seconds;
  std::printf("%-9zu %-7zu %-9zu %-10zu %-7zu %-9zu %-9zu %-9.1f\n",
              std::size_t{1}, jobs, serial.done, serial.cancelled,
              serial.failed, serial.ctxHits, serial.planCacheHits,
              serialRate);

  const RunStats par = runWorkload(wide, specs);
  const Real parRate = par.done / par.seconds;
  std::printf("%-9zu %-7zu %-9zu %-10zu %-7zu %-9zu %-9zu %-9.1f\n", wide,
              jobs, par.done, par.cancelled, par.failed, par.ctxHits,
              par.planCacheHits, parRate);
  rule();
  std::printf("scheduler speedup: %.2fx with %zu workers\n",
              parRate / serialRate, wide);

  const bool zeroFailures = serial.failed == 0 && par.failed == 0;
  const bool cacheReuse = serial.ctxHits >= 1 && par.ctxHits >= 1 &&
                          serial.planCacheHits >= 1;
  // With highWater == queueDepth nothing may ever be shed: a nonzero
  // count means the load shedder fired below its high-water mark.
  const bool zeroShed = serial.shed == 0 && par.shed == 0;
  if (!zeroFailures)
    std::printf("FAILURE: %zu serial / %zu parallel jobs failed\n",
                serial.failed, par.failed);
  if (!cacheReuse) std::printf("FAILURE: expected cross-job cache hits\n");
  if (!zeroShed)
    std::printf("FAILURE: %llu serial / %llu parallel jobs shed below "
                "high water\n",
                static_cast<unsigned long long>(serial.shed),
                static_cast<unsigned long long>(par.shed));
  std::printf("aging promotions: %llu serial, %llu parallel; "
              "mem peak %llu bytes\n",
              static_cast<unsigned long long>(serial.promoted),
              static_cast<unsigned long long>(par.promoted),
              static_cast<unsigned long long>(
                  std::max(serial.memPeakBytes, par.memPeakBytes)));

  rep.count("jobs", jobs);
  rep.count("workers_wide", wide);
  rep.metric("serial_s", serial.seconds);
  rep.metric("parallel_s", par.seconds);
  rep.metric("serial_jobs_per_s", serialRate);
  rep.metric("parallel_jobs_per_s", parRate);
  rep.metric("speedup", parRate / serialRate);
  rep.count("serial_done", serial.done);
  rep.count("parallel_done", par.done);
  rep.count("serial_cancelled", serial.cancelled);
  rep.count("parallel_cancelled", par.cancelled);
  rep.count("serial_failed", serial.failed);
  rep.count("parallel_failed", par.failed);
  rep.count("ctx_hits_serial", serial.ctxHits);
  rep.count("ctx_hits_parallel", par.ctxHits);
  rep.count("ctx_misses_serial", serial.ctxMisses);
  rep.count("plan_cache_hits_serial", serial.planCacheHits);
  rep.count("shed_serial", static_cast<std::size_t>(serial.shed));
  rep.count("shed_parallel", static_cast<std::size_t>(par.shed));
  rep.count("promoted_serial", static_cast<std::size_t>(serial.promoted));
  rep.count("promoted_parallel", static_cast<std::size_t>(par.promoted));
  rep.count("job_mem_peak_bytes",
            static_cast<std::size_t>(
                std::max(serial.memPeakBytes, par.memPeakBytes)));
  rep.flag("zero_failures", zeroFailures);
  rep.flag("cache_reuse", cacheReuse);
  rep.flag("zero_shed", zeroShed);
  rep.count("threads", perf::ThreadPool::global().concurrency());
  rep.counters("perf", perf::global().snapshot());

  return zeroFailures && cacheReuse && zeroShed ? 0 : 1;
}
