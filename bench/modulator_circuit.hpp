// Quadrature modulator testbench for the Fig. 1 reproduction.
//
// Substitution (DESIGN.md §1.4): the paper's proprietary dual-conversion
// quadrature modulator chip is replaced by a behaviour-equivalent
// single-conversion quadrature upconverter — ideal-multiplier mixer cores
// (Gilbert-cell idealizations), a mildly nonlinear baseband buffer, a
// deliberate I/Q gain imbalance, and a small LO feedthrough path. The
// phenomena Fig. 1 reports are all structural and survive the substitution:
//  * desired single-sideband output at fLO − fBB,
//  * image sideband at fLO + fBB set by the imbalance (paper: −35 dBc),
//  * a weak LO feedthrough spur (paper: −78 dBc, below the transient
//    noise floor),
//  * odd-order baseband distortion products at fLO ± 3·fBB.
#pragma once

#include <memory>

#include "circuit/devices.hpp"
#include "circuit/sources.hpp"

namespace rfic::bench {

struct ModulatorConfig {
  Real fBB = 80e3;          ///< baseband tone (paper: 80 kHz)
  Real fLO = 1.62e9;        ///< carrier (paper: 1.62 GHz)
  Real bbAmp = 0.1;
  Real loAmp = 1.0;
  Real mixerGain = 1e-3;    ///< multiplier k [A/V²]
  Real iqImbalance = 0.0355;  ///< ΔK/K → image at 20·log10(ε/2) ≈ −35 dBc
  Real loLeak = 6.3e-9;     ///< LO feedthrough gm [S] → spur ≈ −78 dBc
  Real bbCubic = 4e-4;      ///< baseband buffer 3rd-order coefficient
};

struct ModulatorNodes {
  int out = 0;
  int bbI = 0, bbQ = 0;
};

inline ModulatorNodes buildQuadratureModulator(circuit::Circuit& c,
                                               const ModulatorConfig& cfg) {
  using namespace rfic::circuit;
  ModulatorNodes n;
  const int bbsI = c.node("bbsI"), bbsQ = c.node("bbsQ");
  n.bbI = c.node("bbI");
  n.bbQ = c.node("bbQ");
  const int loI = c.node("loI"), loQ = c.node("loQ");
  n.out = c.node("out");

  // Baseband I/Q pair (cos / sin), slow axis.
  const int b1 = c.allocBranch("VbbI"), b2 = c.allocBranch("VbbQ");
  c.add<VSource>("VbbI", bbsI, -1, b1,
                 std::make_shared<SineWave>(cfg.bbAmp, cfg.fBB, 0.5 * kPi),
                 TimeAxis::slow);
  c.add<VSource>("VbbQ", bbsQ, -1, b2,
                 std::make_shared<SineWave>(cfg.bbAmp, cfg.fBB),
                 TimeAxis::slow);
  // Mildly nonlinear baseband buffers (source R into a cubic load):
  // generate the odd-order in-band products the paper's spectrum shows.
  c.add<Resistor>("RbI", bbsI, n.bbI, 500.0);
  c.add<Resistor>("RbQ", bbsQ, n.bbQ, 500.0);
  c.add<CubicConductance>("GnI", n.bbI, -1, 2e-3, cfg.bbCubic);
  c.add<CubicConductance>("GnQ", n.bbQ, -1, 2e-3, cfg.bbCubic);

  // Quadrature LO (cos / sin), fast axis.
  const int b3 = c.allocBranch("VloI"), b4 = c.allocBranch("VloQ");
  c.add<VSource>("VloI", loI, -1, b3,
                 std::make_shared<SineWave>(cfg.loAmp, cfg.fLO, 0.5 * kPi),
                 TimeAxis::fast);
  c.add<VSource>("VloQ", loQ, -1, b4,
                 std::make_shared<SineWave>(cfg.loAmp, cfg.fLO),
                 TimeAxis::fast);

  // Mixer cores with the deliberate gain imbalance in the Q path.
  c.add<Multiplier>("MXI", n.out, -1, n.bbI, -1, loI, -1, cfg.mixerGain);
  c.add<Multiplier>("MXQ", n.out, -1, n.bbQ, -1, loQ, -1,
                    cfg.mixerGain * (1.0 + cfg.iqImbalance));
  // LO feedthrough (layout coupling).
  c.add<VCCS>("Gleak", n.out, -1, loI, -1, cfg.loLeak);

  // Output load.
  c.add<Resistor>("Rl", n.out, -1, 1000.0);
  c.add<Capacitor>("Cl", n.out, -1, 1e-14);
  return n;
}

}  // namespace rfic::bench
