// Table 1 reproduction — characteristics of the two field-simulation
// classes (Section 4):
//
//                     | Differential | Integral
//   Matrix type       | sparse       | dense
//   Discretization    | volume       | surface
//   Matrix conditioning| poor         | good
//
// The paper states the table qualitatively; this bench makes each row
// quantitative on the same physical problem (parallel-plate capacitor):
// unknown counts (volume n³ vs surface n²), matrix storage (nnz vs n²),
// condition numbers, and iteration counts of an unpreconditioned Krylov
// solve — plus the agreement of the two extracted capacitances.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "extraction/mom.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::extraction;

int main() {
  header("Table 1 — differential vs integral simulation classes");
  JsonReporter rep("table1_extraction_classes");
  const Real side = 1e-3, gap = 1e-4;

  std::printf("%-22s %-22s %-22s\n", "", "Differential (FD)", "Integral (MoM)");
  rule();

  // Sweep resolution; report the largest case in the table body.
  std::printf("%-6s %-10s %-10s %-12s %-10s %-10s %-12s %-10s %-10s\n", "res",
              "FD unk", "FD nnz", "FD C (fF)", "FD CG its", "MoM unk",
              "MoM C (fF)", "MoM cond", "MoM s");
  rule();
  for (const std::size_t res : {16u, 24u, 32u}) {
    Stopwatch fdSw;
    const auto fd = solveParallelPlatesFD(side, gap, res);
    const Real fdSeconds = fdSw.seconds();
    const std::size_t momN = res / 2;
    const auto mesh = makeParallelPlates(side, gap, momN);
    Stopwatch momSw;
    const auto mom = extractCapacitanceDense(mesh);
    const Real momSeconds = momSw.seconds();
    const Real momCond = symmetricConditionEstimate(assembleMoMMatrix(mesh));
    std::printf(
        "%-6zu %-10zu %-10zu %-12.3f %-10zu %-10zu %-12.3f %-10.1f %-10.3f\n",
        res, fd.unknowns, fd.nnz, fd.capacitance * 1e15, fd.cgIterations,
        mesh.panels.size(), -mom.matrix(0, 1) * 1e15, momCond, momSeconds);
    // Finest resolution wins (JsonReporter keys overwrite).
    rep.count("fd_unknowns", fd.unknowns);
    rep.count("fd_cg_iterations", fd.cgIterations);
    rep.metric("fd_c_fF", fd.capacitance * 1e15);
    rep.metric("fd_solve_s", fdSeconds);
    rep.metric("mom_c_fF", -mom.matrix(0, 1) * 1e15);
    rep.metric("mom_condition", momCond);
    rep.metric("mom_extract_s", momSeconds);
  }
  rule();
  std::printf("\nTable 1 rows, measured:\n");
  std::printf("  matrix type:     FD sparse (~7 nnz/row) | MoM dense (n^2)\n");
  std::printf("  discretization:  FD volume (grows n^3)  | MoM surface "
              "(grows n^2)\n");
  std::printf("  conditioning:    FD kappa ~ h^-2 (CG iterations grow with "
              "refinement) | MoM kappa stays O(10-1e3)\n");
  std::printf("  both extract the same capacitance (parallel plates, "
              "fringing included)\n");
  return 0;
}
