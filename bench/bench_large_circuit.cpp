// Large-circuit scaling bench: fill-reducing ordering plus level-scheduled
// parallel refactorization (DESIGN.md §13) against the natural Markowitz
// reference on synthetic RC interconnect matrices — the 2-D mesh (power
// grid / substrate network) and the 1-D ladder (long RC line), the two
// canonical sparsity shapes parasitic-dominated RF layouts produce. The
// same topologies are available as netlists via tools/gen_mesh.py; the
// bench builds the MNA-shaped matrices directly so it measures exactly the
// factor/refactor/solve pipeline and nothing else.
//
// Reported per case: analysis (ordering + factor) wall time, fill-in ratio
// and factor nnz, level count of the recorded replay program, serial and
// pool-parallel refactor time, solve time, and the headline speedups of
// AMD vs natural for the full factor and for the Newton-loop steady state
// (refactor + solve). Quick mode (RFIC_BENCH_QUICK=1, the CI perf-smoke
// setting) trims the node counts; the full run goes to a ~50k-node mesh
// for the natural/AMD comparison and ~100k nodes AMD-only (the natural
// analysis scan is O(n²) — the very cost the ordering stage removes).
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/sparse_matrix.hpp"
#include "sparse/symbolic_lu.hpp"

using namespace rfic;
using namespace rfic::bench;

namespace {

// k×k resistive grid with capacitive ground leak folded into the diagonal:
// the G + C/dt matrix a transient step factors. Deterministic values.
sparse::RCSR gridMesh(std::size_t k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> g(0.5, 1.5);
  const std::size_t n = k * k;
  sparse::RTriplets t(n, n);
  std::vector<Real> diag(n, 0.1);
  const auto couple = [&](std::size_t a, std::size_t b) {
    const Real gv = g(rng);
    t.add(a, b, -gv);
    t.add(b, a, -gv);
    diag[a] += gv;
    diag[b] += gv;
  };
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t u = i * k + j;
      if (j + 1 < k) couple(u, u + 1);
      if (i + 1 < k) couple(u, u + k);
    }
  for (std::size_t i = 0; i < n; ++i) t.add(i, i, diag[i]);
  return sparse::RCSR(t);
}

// n-node RC ladder (tridiagonal): the other extreme — no fill at all, so
// it isolates the per-step overhead of the replay program.
sparse::RCSR ladder(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Real> g(0.5, 1.5);
  sparse::RTriplets t(n, n);
  std::vector<Real> diag(n, 0.1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Real gv = g(rng);
    t.add(i, i + 1, -gv);
    t.add(i + 1, i, -gv);
    diag[i] += gv;
    diag[i + 1] += gv;
  }
  for (std::size_t i = 0; i < n; ++i) t.add(i, i, diag[i]);
  return sparse::RCSR(t);
}

struct CaseResult {
  std::size_t n = 0;
  std::size_t factorNnz = 0;
  std::size_t levels = 0;
  Real fill = 0;
  Real factorMs = 0;       ///< full analysis (ordering included)
  Real refactorMs = 0;     ///< serial replay, per refactor
  Real refactorParMs = 0;  ///< pool-parallel replay, per refactor
  Real solveMs = 0;        ///< per solve
};

CaseResult runCase(const char* label, const sparse::RCSR& a,
                   sparse::Ordering ord, std::size_t reps) {
  CaseResult res;
  res.n = a.rows();

  sparse::RSymbolicLU::Options o;
  o.ordering = ord;
  o.parallelMinFlops = 0;  // measure the parallel path even on small cases

  Stopwatch sw;
  sparse::RSymbolicLU lu(a, o);
  res.factorMs = sw.seconds() * 1e3;
  res.factorNnz = lu.factorNnz();
  res.fill = lu.fillRatio();
  res.levels = lu.levelCount();

  // Perturbed values over the same pattern — the Newton-loop steady state.
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<Real> u(0.9, 1.1);
  std::vector<Real> vals = a.values();
  for (auto& v : vals) v *= u(rng);

  sw.reset();
  for (std::size_t r = 0; r < reps; ++r) (void)lu.refactor(vals);
  res.refactorMs = sw.seconds() * 1e3 / static_cast<Real>(reps);

  lu.setPool(&perf::ThreadPool::global());
  (void)lu.refactor(vals);  // warm the pool before timing
  sw.reset();
  for (std::size_t r = 0; r < reps; ++r) (void)lu.refactor(vals);
  res.refactorParMs = sw.seconds() * 1e3 / static_cast<Real>(reps);

  numeric::RVec b(res.n), x, y, z;
  std::uniform_real_distribution<Real> ub(-1, 1);
  for (auto& v : b) v = ub(rng);
  sw.reset();
  for (std::size_t r = 0; r < reps; ++r) lu.solve(b, x, y, z);
  res.solveMs = sw.seconds() * 1e3 / static_cast<Real>(reps);

  std::printf("%-14s %8zu %9zu %6.2f %7zu %10.2f %10.3f %10.3f %8.3f\n",
              label, res.n, res.factorNnz, res.fill, res.levels, res.factorMs,
              res.refactorMs, res.refactorParMs, res.solveMs);
  return res;
}

}  // namespace

int main() {
  const bool quick = quickMode();
  JsonReporter json("large_circuit");
  json.count("threads", perf::ThreadPool::global().concurrency());

  header("large-circuit scaling: ordering + level-parallel refactor");
  std::printf("%-14s %8s %9s %6s %7s %10s %10s %10s %8s\n", "case", "n",
              "fnnz", "fill", "levels", "factor_ms", "refac_ms", "refacP_ms",
              "solve_ms");
  rule();

  // Mesh sizes: natural's analysis scan is O(n²), so the head-to-head stops
  // at ~50k nodes and the largest case runs AMD only.
  const std::size_t kCmp = quick ? 48 : 224;     // 2.3k / 50.2k nodes
  const std::size_t kBig = quick ? 80 : 316;     // 6.4k / 99.9k nodes
  const std::size_t reps = quick ? 10 : 5;

  const sparse::RCSR mesh = gridMesh(kCmp, 1);
  const auto nat = runCase("mesh/natural", mesh, sparse::Ordering::Natural,
                           reps);
  const auto amd = runCase("mesh/amd", mesh, sparse::Ordering::Amd, reps);

  const sparse::RCSR big = gridMesh(kBig, 2);
  const auto amdBig = runCase("mesh-big/amd", big, sparse::Ordering::Amd,
                              reps);

  const sparse::RCSR lad = ladder(quick ? 10000 : 100000, 3);
  const auto ladAmd = runCase("ladder/amd", lad, sparse::Ordering::Amd, reps);

  rule();
  const Real natLoop = nat.refactorMs + nat.solveMs;
  const Real amdLoop =
      std::min(amd.refactorMs, amd.refactorParMs) + amd.solveMs;
  const Real speedupLoop = natLoop / amdLoop;
  const Real speedupFactor = nat.factorMs / amd.factorMs;
  const Real speedupPar = amdBig.refactorMs / amdBig.refactorParMs;
  std::printf("mesh %zu nodes: factor speedup %.2fx, refactor+solve speedup "
              "%.2fx (natural %.3f ms vs amd %.3f ms)\n",
              nat.n, speedupFactor, speedupLoop, natLoop, amdLoop);
  std::printf("mesh %zu nodes: parallel refactor speedup %.2fx over serial "
              "replay (%zu lanes)\n",
              amdBig.n, speedupPar,
              perf::ThreadPool::global().concurrency());

  // Wall-clock keys end in _s so tools/bench_compare.py ratio-checks them.
  json.count("mesh.n", nat.n);
  json.metric("mesh.natural.fill", nat.fill);
  json.metric("mesh.natural.factor_s", nat.factorMs * 1e-3);
  json.metric("mesh.natural.refactor_s", nat.refactorMs * 1e-3);
  json.metric("mesh.natural.solve_s", nat.solveMs * 1e-3);
  json.metric("mesh.amd.fill", amd.fill);
  json.count("mesh.amd.levels", amd.levels);
  json.metric("mesh.amd.factor_s", amd.factorMs * 1e-3);
  json.metric("mesh.amd.refactor_s", amd.refactorMs * 1e-3);
  json.metric("mesh.amd.refactor_parallel_s", amd.refactorParMs * 1e-3);
  json.metric("mesh.amd.solve_s", amd.solveMs * 1e-3);
  json.metric("mesh.speedup_factor", speedupFactor);
  json.metric("mesh.speedup_refactor_solve", speedupLoop);
  json.count("mesh_big.n", amdBig.n);
  json.metric("mesh_big.amd.fill", amdBig.fill);
  json.count("mesh_big.amd.levels", amdBig.levels);
  json.metric("mesh_big.amd.factor_s", amdBig.factorMs * 1e-3);
  json.metric("mesh_big.amd.refactor_s", amdBig.refactorMs * 1e-3);
  json.metric("mesh_big.amd.refactor_parallel_s", amdBig.refactorParMs * 1e-3);
  json.metric("mesh_big.speedup_parallel", speedupPar);
  json.count("ladder.n", ladAmd.n);
  json.metric("ladder.amd.fill", ladAmd.fill);
  json.metric("ladder.amd.refactor_s", ladAmd.refactorMs * 1e-3);
  json.metric("ladder.amd.solve_s", ladAmd.solveMs * 1e-3);
  return 0;
}
