// Fig. 6 reproduction — IES³ solver time and memory vs problem size
// (Section 4: "time and memory requirements scale only slightly faster
// than linearly").
//
// Sweep of a multi-conductor bus-crossing extraction: the dense solver's
// O(n²) memory / O(n³) time against the IES³-compressed solver. The fitted
// scaling exponents are the reproducible "shape"; the crossover point is
// hardware-dependent.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "extraction/ies3.hpp"
#include "extraction/mom.hpp"
#include "numeric/qr.hpp"
#include "perf/thread_pool.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::extraction;

namespace {

Real fitExponent(const std::vector<Real>& n, const std::vector<Real>& y) {
  // log y = a + p log n
  numeric::RMat a(n.size(), 2);
  numeric::RVec b(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = std::log(n[i]);
    b[i] = std::log(y[i]);
  }
  return numeric::leastSquares(a, b)[1];
}

}  // namespace

int main() {
  header("Fig. 6 — IES3 electromagnetic-solver scaling");
  JsonReporter rep("fig6_ies3_scaling");
  perf::global().reset();
  std::printf("%-8s %-10s %-10s %-9s %-10s %-9s %-9s %-9s %-7s\n", "panels",
              "dense MB", "ies3 MB", "compr %", "dense s", "build s",
              "solve s", "total s", "gmres");
  rule();

  std::vector<Real> ns, iesMem, iesTime, denseTime;
  std::vector<std::size_t> sweep{16, 32, 64, 128, 256};
  if (quickMode()) sweep = {16, 32, 64};
  IES3Options opts;       // accuracy-relaxed settings for the scaling study
  opts.tolerance = 1e-5;  // (library default 1e-6 trades memory for digits)
  for (const std::size_t m : sweep) {
    const auto mesh = makeBusCrossing(6, 1.0, 3.0, 18.0, 1.0, m);
    const std::size_t n = mesh.panels.size();

    Real denseSeconds = -1.0, denseMB = 8.0 * n * n / 1e6;
    Real c01Dense = 0;
    if (n <= 1600) {  // dense cost explodes beyond this
      Stopwatch sw;
      const auto dense = extractCapacitanceDense(mesh);
      denseSeconds = sw.seconds();
      c01Dense = dense.matrix(0, 1);
    }

    Stopwatch sw;
    const auto comp = extractCapacitanceIES3(mesh, opts);
    const Real iesSeconds = sw.seconds();
    const Real iesMB = 8.0 * comp.storedEntries / 1e6;
    const Real buildSeconds = comp.buildStats.buildNs * 1e-9;
    const Real solveSeconds = comp.solveNs * 1e-9;

    ns.push_back(static_cast<Real>(n));
    iesMem.push_back(iesMB);
    iesTime.push_back(iesSeconds);
    if (denseSeconds > 0) denseTime.push_back(denseSeconds);

    std::printf("%-8zu %-10.2f %-10.2f %-9.1f ", n, denseMB, iesMB,
                100.0 * comp.storedEntries / (static_cast<Real>(n) * n));
    if (denseSeconds > 0)
      std::printf("%-10.2f ", denseSeconds);
    else
      std::printf("%-10s ", "(skipped)");
    std::printf("%-9.2f %-9.2f %-9.2f %-7zu", buildSeconds, solveSeconds,
                iesSeconds, comp.gmresIterations);
    if (denseSeconds > 0) {
      const Real err = std::abs(comp.matrix(0, 1) - c01Dense) /
                       std::abs(c01Dense);
      std::printf("  relerr=%.1e", err);
    }
    std::printf("\n");

    // Per-sweep JSON: last-write-wins keeps the largest point on record.
    rep.metric("ies3_build_s", buildSeconds);
    rep.metric("ies3_solve_s", solveSeconds);
    rep.metric("ies3_total_s", iesSeconds);
    rep.count("gmres_iterations", comp.gmresIterations);
    rep.count("matvecs", static_cast<std::size_t>(comp.matvecs));
    rep.metric("compression_ratio", comp.buildStats.compressionRatio);
    rep.count("rank_max", comp.buildStats.rankMax);
    rep.metric("rank_mean", comp.buildStats.rankMean);
    rep.count("low_rank_blocks", comp.buildStats.lowRankBlockCount);
    rep.count("dense_blocks", comp.buildStats.denseBlockCount);
  }
  rule();
  const Real memExp = fitExponent(ns, iesMem);
  const Real timeExp = fitExponent(ns, iesTime);
  rep.count("max_panels", static_cast<std::size_t>(ns.back()));
  rep.count("threads", perf::ThreadPool::global().concurrency());
  rep.metric("ies3_memory_exponent", memExp);
  rep.metric("ies3_time_exponent", timeExp);
  rep.counters("perf", perf::global().snapshot());
  std::printf("fitted IES3 memory exponent: n^%.2f  (dense: n^2)\n", memExp);
  std::printf("fitted IES3 time exponent:   n^%.2f  (dense LU: n^3)\n",
              timeExp);
  std::printf("paper: both \"scale only slightly faster than linearly\"\n");
  return 0;
}
