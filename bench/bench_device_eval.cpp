// Device-evaluation engine microbench: the SoA batched flat loop against
// the scalar virtual stamp walk, per device class and instance count. The
// batched engine exists to make the Newton inner loop cheap — per-instance
// cost should drop as the population grows (amortized dispatch, contiguous
// parameter tables, prefilled linear template), while the scalar walk pays
// virtual dispatch and per-entry pattern searches per device per eval.
// Also measures the raw junction-exponential kernel throughput (flat-array
// form the vectorizer sees) against a strided std::exp loop.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/dc.hpp"
#include "bench_util.hpp"
#include "circuit/devices.hpp"
#include "circuit/junction_kernels.hpp"
#include "circuit/mna_workspace.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::circuit;

namespace {

enum class Kind { diode, bjt, mosfet };

const char* kindName(Kind k) {
  switch (k) {
    case Kind::diode:
      return "diode";
    case Kind::bjt:
      return "bjt";
    default:
      return "mosfet";
  }
}

// N independent cells hanging off a driven rail: every cell adds one
// nonlinear device plus a series resistor, so the per-instance cost is
// dominated by the device class under test.
void buildPopulation(Circuit& c, Kind kind, std::size_t n) {
  const int rail = c.node("rail");
  const int br = c.allocBranch("V1");
  c.add<VSource>("V1", rail, -1, br, std::make_shared<SineWave>(0.8, 1e6),
                 TimeAxis::slow);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    const int a = c.node("a" + id);
    c.add<Resistor>("R" + id, rail, a, 1e3);
    switch (kind) {
      case Kind::diode: {
        Diode::Params dp;
        c.add<Diode>("D" + id, a, -1, dp);
        break;
      }
      case Kind::bjt: {
        BJT::Params bp;
        c.add<BJT>("Q" + id, rail, a, -1, bp);
        break;
      }
      case Kind::mosfet: {
        MOSFET::Params mp;
        c.add<MOSFET>("M" + id, rail, a, -1, mp);
        break;
      }
    }
  }
}

struct Measurement {
  Real nsPerInstance = 0;
  std::size_t reps = 0;
};

// Time repeated full matrix evaluations at a fixed operating point.
Measurement timeEvals(MnaWorkspace& ws, const RVec& x, std::size_t n) {
  // Warm up: pattern discovery, batch compile, buffer growth.
  ws.eval(x, 0.0, true, &x);
  const std::size_t reps = quickMode() ? 50 : 400;
  Stopwatch sw;
  for (std::size_t r = 0; r < reps; ++r) ws.eval(x, 0.0, true, &x);
  Measurement m;
  m.reps = reps;
  m.nsPerInstance = sw.seconds() * 1e9 /
                    (static_cast<Real>(reps) * static_cast<Real>(n));
  return m;
}

}  // namespace

int main() {
  header("Device evaluation engine — SoA batch vs scalar virtual walk");
  JsonReporter rep("device_eval");

  std::printf("%-8s %-8s %14s %14s %10s\n", "class", "count", "scalar ns/i",
              "batched ns/i", "speedup");
  rule();

  const std::vector<std::size_t> sizes = {10, 100, 10000};
  for (const Kind kind : {Kind::diode, Kind::bjt, Kind::mosfet}) {
    for (const std::size_t n : sizes) {
      Circuit c;
      buildPopulation(c, kind, n);
      MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);

      MnaWorkspace scalarWs(sys);
      scalarWs.setBatchedEval(false);
      MnaWorkspace batchWs(sys);
      batchWs.setBatchedEval(true);

      const Measurement ms = timeEvals(scalarWs, dc.x, n);
      const Measurement mb = timeEvals(batchWs, dc.x, n);
      const Real speedup = ms.nsPerInstance / mb.nsPerInstance;
      std::printf("%-8s %-8zu %14.1f %14.1f %9.2fx\n", kindName(kind), n,
                  ms.nsPerInstance, mb.nsPerInstance, speedup);
      if (n == sizes.back()) {
        const std::string p =
            std::string("device_eval.") + kindName(kind) + "10k";
        rep.metric(p + ".scalar_ns_per_inst", ms.nsPerInstance);
        rep.metric(p + ".batched_ns_per_inst", mb.nsPerInstance);
        rep.metric(p + ".speedup", speedup);
      }
    }
  }

  // Raw junction-kernel throughput: the flat-array form the batched engine
  // feeds the compiler, versus calling std::exp through a strided
  // virtual-ish accessor pattern. Reported in Mevals/s.
  {
    const std::size_t n = 1 << 16;
    std::vector<Real> v(n), out(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = 0.3 + 0.4 * static_cast<Real>(i) / static_cast<Real>(n);
    const std::size_t reps = quickMode() ? 20 : 200;
    const Real is = 1e-14, nvt = 0.025852;

    Stopwatch sw;
    Real sink = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto je = kernels::junctionCurrent(v[i], is, nvt);
        out[i] = je.i + je.gd;
      }
      sink += out[n / 2];
    }
    const Real flatS = sw.seconds();

    sw.reset();
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = is * (std::exp(v[i] / nvt) - 1.0);
      sink += out[n / 3];
    }
    const Real stridedS = sw.seconds();

    const Real flatRate =
        static_cast<Real>(n) * static_cast<Real>(reps) / flatS * 1e-6;
    const Real rawRate =
        static_cast<Real>(n) * static_cast<Real>(reps) / stridedS * 1e-6;
    std::printf("\njunction kernel throughput: %.1f Meval/s "
                "(raw std::exp loop: %.1f Meval/s, sink %.3g)\n",
                flatRate, rawRate, sink);
    rep.metric("device_eval.junction_kernel_meval_s", flatRate);
    rep.metric("device_eval.raw_exp_meval_s", rawRate);
  }
  return 0;
}
