// Section 2.1 cost discussion, reproduced:
//  * "The memory and time required for Harmonic Balance simulation increase
//    rapidly as more tones are added" — HB unknown counts and runtimes vs
//    (#tones, #harmonics).
//  * "…the time and memory requirements of transient simulation are not
//    sensitive to the number of fundamental frequencies" — transient cost
//    for one vs two drive tones.
//  * The iterative-linear-algebra ablation: matrix-implicit GMRES with the
//    block-diagonal preconditioner vs the dense (probed) HB Jacobian — the
//    enabler of RF-IC-scale HB the section is about.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/dc.hpp"
#include "analysis/transient.hpp"
#include "bench_util.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::circuit;

namespace {

// Mildly nonlinear two-input test vehicle: diode-loaded summing network.
void buildVehicle(Circuit& c, Real f1, Real f2, bool twoTone) {
  const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
  const int br1 = c.allocBranch("V1");
  c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.3, f1),
                 TimeAxis::slow);
  if (twoTone) {
    const int br2 = c.allocBranch("V2");
    c.add<VSource>("V2", s2, a, br2, std::make_shared<SineWave>(0.3, f2),
                   TimeAxis::fast);
  } else {
    c.add<Resistor>("Rshort", s2, a, 1e-3);
  }
  c.add<Resistor>("Rs", s2, b, 500.0);
  Diode::Params dp;
  c.add<Diode>("D1", b, -1, dp);
  c.add<Resistor>("RL", b, -1, 2000.0);
  c.add<Capacitor>("CL", b, -1, 1e-12);
}

}  // namespace

int main() {
  header("Section 2.1 — HB cost growth with tones; transient insensitivity");
  JsonReporter rep("sec21_hb_cost");
  const Real f1 = 10e6, f2 = 13e6;

  std::printf("%-22s %-12s %-12s %-10s %-10s\n", "analysis", "unknowns",
              "samples", "newton", "wall (s)");
  rule();
  // HB: one tone with H harmonics, then two tones (box truncation) —
  // unknowns multiply, the paper's "increase rapidly" claim.
  for (const std::size_t h : {4u, 8u}) {
    Circuit c;
    buildVehicle(c, f1, f2, false);
    circuit::MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    hb::HarmonicBalance eng(sys, {{f1, h}});
    Stopwatch sw;
    const auto sol = eng.solve(dc.x);
    std::printf("HB 1 tone, H=%-9zu %-12zu %-12zu %-10zu %-10.3f%s\n", h,
                eng.numRealUnknowns(), eng.numTimeSamples(),
                sol.newtonIterations, sw.seconds(),
                sol.converged ? "" : " (!)");
  }
  for (const std::size_t h : {4u, 8u}) {
    Circuit c;
    buildVehicle(c, f1, f2, true);
    circuit::MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    hb::HarmonicBalance eng(sys, {{f1, h}, {f2, h}});
    Stopwatch sw;
    const auto sol = eng.solve(dc.x);
    std::printf("HB 2 tones, H=%-8zu %-12zu %-12zu %-10zu %-10.3f%s\n", h,
                eng.numRealUnknowns(), eng.numTimeSamples(),
                sol.newtonIterations, sw.seconds(),
                sol.converged ? "" : " (!)");
    if (h == 8) {
      // Counter evidence for the pattern-cached pipeline: after the first
      // Newton iteration, every circuit-level factorization is a numeric
      // refactorization.
      std::printf("  2-tone H=8 pipeline: %llu factorizations, %llu "
                  "refactorizations\n",
                  (unsigned long long)sol.perf.factorizations,
                  (unsigned long long)sol.perf.refactorizations);
      rep.metric("hb2tone_h8.wall_s", sw.seconds());
      rep.count("hb2tone_h8.newton", sol.newtonIterations);
      rep.counters("hb2tone_h8", sol.perf);
    }
  }
  // Transient: cost set by the fastest tone and the longest period — nearly
  // identical for one or two tones. Each case is also run on the legacy
  // rebuild-everything pipeline for the A/B the perf layer is about.
  for (const bool two : {false, true}) {
    Circuit c;
    buildVehicle(c, f1, f2, two);
    circuit::MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    analysis::TransientOptions to;
    to.dt = 1.0 / (64.0 * f2);
    to.tstop = 10.0 / f1;
    to.storeWaveforms = false;
    analysis::TransientOptions toLegacy = to;
    toLegacy.patternCache = false;
    Stopwatch sw;
    const auto trLegacy = analysis::runTransient(sys, dc.x, toLegacy);
    const Real legacyWall = sw.seconds();
    sw.reset();
    const auto tr = analysis::runTransient(sys, dc.x, to);
    const Real cachedWall = sw.seconds();
    std::printf("transient %-12s %-12zu %-12zu %-10zu %-10.3f%s\n",
                two ? "2 tones" : "1 tone", sys.dim(), tr.steps,
                tr.newtonIterations, cachedWall, tr.ok ? "" : " (!)");
    std::printf("  legacy pipeline %.3f s → cached %.3f s (%.2fx); "
                "%llu factorizations vs %llu refactorizations\n",
                legacyWall, cachedWall,
                legacyWall / std::max(cachedWall, Real(1e-9)),
                (unsigned long long)tr.perf.factorizations,
                (unsigned long long)tr.perf.refactorizations);
    const std::string key = two ? "tran2tone" : "tran1tone";
    rep.count(key + ".steps", tr.steps);
    rep.metric(key + ".legacy_wall_s", legacyWall);
    rep.metric(key + ".cached_wall_s", cachedWall);
    rep.metric(key + ".speedup",
               legacyWall / std::max(cachedWall, Real(1e-9)));
    rep.counters(key, tr.perf);
  }

  header("Ablation — matrix-implicit GMRES vs dense HB Jacobian");
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "H", "unknowns",
              "dense (s)", "gmres (s)", "gmres iters");
  rule();
  for (const std::size_t h : {4u, 6u, 8u, 12u}) {
    Circuit c;
    buildVehicle(c, f1, f2, true);
    circuit::MnaSystem sys(c);
    const auto dc = analysis::dcOperatingPoint(sys);
    hb::HBOptions direct;
    direct.useDirectSolver = true;
    hb::HBOptions iter;

    hb::HarmonicBalance ed(sys, {{f1, h}, {f2, h}}, direct);
    Stopwatch sw;
    const auto sd = ed.solve(dc.x);
    const Real td = sw.seconds();

    hb::HarmonicBalance ei(sys, {{f1, h}, {f2, h}}, iter);
    sw.reset();
    const auto si = ei.solve(dc.x);
    const Real ti = sw.seconds();

    std::printf("%-10zu %-12zu %-12.3f %-12.3f %-12zu%s\n", h,
                ed.numRealUnknowns(), td, ti, si.gmresIterations,
                (sd.converged && si.converged) ? "" : " (!)");
  }
  std::printf("the dense Jacobian is O((N·M)^3) per Newton step; the\n"
              "matrix-implicit path is O(M log M) FFTs + block solves —\n"
              "the scaling that makes full-chip HB possible (Section 2.1).\n");

  // Spectral-engine evidence: plan-cache hits dominate misses (each HB grid
  // length is planned once, then replayed for every transform in the run).
  const auto g = perf::global().snapshot();
  std::printf("plan cache: %llu hits / %llu misses, %llu planned FFTs\n",
              (unsigned long long)g.planCacheHits,
              (unsigned long long)g.planCacheMisses,
              (unsigned long long)g.fftCount);
  rep.count("global.fft_count", g.fftCount);
  rep.count("global.plan_cache_hits", g.planCacheHits);
  rep.count("global.plan_cache_misses", g.planCacheMisses);
  return 0;
}
