// The double-balanced switching mixer + RC filter used by the Fig. 4 /
// Fig. 5 reproduction (Section 2.2's MMFT example) and by the Fig. 5
// univariate-shooting baseline.
//
// Four MOSFET switches commutate a differential RF current onto a
// differential RC load under a large square-wave LO — the paper's circuit
// class exactly: the slow RF path is mildly nonlinear, the fast LO action
// is strongly nonlinear (switching).
#pragma once

#include <memory>

#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::bench {

struct MixerNodes {
  int rfp = 0, rfm = 0, outp = 0, outm = 0;
};

inline MixerNodes buildSwitchingMixer(circuit::Circuit& c, Real rfFreq,
                                      Real loFreq, Real rfAmp = 0.1,
                                      Real loHigh = 3.0, Real rfCubic = 0.4) {
  using namespace rfic::circuit;
  MixerNodes n;
  const int rfsp = c.node("rfsp");
  const int rfsm = c.node("rfsm");
  n.rfp = c.node("rfp");
  n.rfm = c.node("rfm");
  n.outp = c.node("outp");
  n.outm = c.node("outm");
  const int lop = c.node("lop");
  const int lom = c.node("lom");

  // Differential RF drive (half amplitude per side), slow axis.
  const int brp = c.allocBranch("Vrfp");
  const int brm = c.allocBranch("Vrfm");
  c.add<VSource>("Vrfp", rfsp, -1, brp,
                 std::make_shared<SineWave>(0.5 * rfAmp, rfFreq),
                 TimeAxis::slow);
  c.add<VSource>("Vrfm", rfsm, -1, brm,
                 std::make_shared<SineWave>(0.5 * rfAmp, rfFreq, kPi),
                 TimeAxis::slow);
  c.add<Resistor>("Rsp", rfsp, n.rfp, 200.0);
  c.add<Resistor>("Rsm", rfsm, n.rfm, 200.0);
  // Small shunt caps keep every internal node dynamic.
  c.add<Capacitor>("Crfp", n.rfp, -1, 2e-13);
  c.add<Capacitor>("Crfm", n.rfm, -1, 2e-13);
  // Mild RF-path compression ("mildly nonlinear regime", paper Sec. 2.2):
  // sized so the 3rd-order product lands ~35 dB below the desired mix at
  // the paper's 100 mV drive.
  if (rfCubic > 0) {
    c.add<CubicConductance>("GnlP", n.rfp, -1, 0.0, rfCubic);
    c.add<CubicConductance>("GnlM", n.rfm, -1, 0.0, rfCubic);
  }

  // Anti-phase LO squares, fast axis.
  const int brl1 = c.allocBranch("Vlop");
  const int brl2 = c.allocBranch("Vlom");
  c.add<VSource>("Vlop", lop, -1, brl1,
                 std::make_shared<SquareWave>(0.0, loHigh, loFreq, 0.08),
                 TimeAxis::fast);
  c.add<VSource>("Vlom", lom, -1, brl2,
                 std::make_shared<SquareWave>(loHigh, 0.0, loFreq, 0.08),
                 TimeAxis::fast);

  // Switch quad.
  MOSFET::Params sw;
  sw.vt0 = 0.7;
  sw.kp = 8e-3;
  sw.lambda = 0.0;
  c.add<MOSFET>("M1", n.outp, lop, n.rfp, sw);
  c.add<MOSFET>("M2", n.outm, lom, n.rfp, sw);
  c.add<MOSFET>("M3", n.outp, lom, n.rfm, sw);
  c.add<MOSFET>("M4", n.outm, lop, n.rfm, sw);

  // Differential RC load/filter.
  c.add<Resistor>("Rlp", n.outp, -1, 1000.0);
  c.add<Resistor>("Rlm", n.outm, -1, 1000.0);
  c.add<Capacitor>("Clp", n.outp, -1, 2e-13);
  c.add<Capacitor>("Clm", n.outm, -1, 2e-13);
  return n;
}

}  // namespace rfic::bench
