// Fig. 1 reproduction — "Modulator in-band spectrum" (Section 2.1).
//
// Two-tone harmonic balance of the quadrature modulator testbench
// (modulator_circuit.hpp), printing the in-band spectrum in dBc around the
// carrier, then the HB-vs-transient comparison the paper makes:
//  * HB resolves the LO feedthrough spur near −78 dBc;
//  * a conventional transient run (paper: with baseband raised to 1 MHz to
//    keep it affordable) buries that spur under its numerical noise floor.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/dc.hpp"
#include "analysis/transient.hpp"
#include "bench_util.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"
#include "modulator_circuit.hpp"

using namespace rfic;
using namespace rfic::bench;

int main() {
  header("Fig. 1 — modulator in-band spectrum via two-tone HB");
  JsonReporter rep("fig1_modulator_spectrum");
  ModulatorConfig cfg;
  circuit::Circuit ckt;
  const ModulatorNodes nodes = buildQuadratureModulator(ckt, cfg);
  circuit::MnaSystem sys(ckt);
  const auto dc = analysis::dcOperatingPoint(sys);

  hb::HBOptions ho;
  ho.continuationSteps = 2;
  hb::HarmonicBalance eng(sys, {{cfg.fBB, 5}, {cfg.fLO, 3}}, ho);
  Stopwatch sw;
  const auto sol = eng.solve(dc.x);
  std::printf("HB: converged=%d, %zu real unknowns, %zu Newton, "
              "%zu GMRES iters, wall=%.2f s\n",
              sol.converged ? 1 : 0, sol.realUnknowns, sol.newtonIterations,
              sol.gmresIterations, sw.seconds());
  std::printf("HB pipeline: %llu circuit factorizations, %llu "
              "refactorizations after the first Newton iteration\n",
              (unsigned long long)sol.perf.factorizations,
              (unsigned long long)sol.perf.refactorizations);
  rep.flag("hb.converged", sol.converged);
  rep.count("hb.newton", sol.newtonIterations);
  rep.count("hb.gmres", sol.gmresIterations);
  rep.metric("hb.wall_s", sw.seconds());
  rep.counters("hb", sol.perf);
  if (!sol.converged) return 1;

  const auto out = static_cast<std::size_t>(nodes.out);
  // In-band lines: k2 = 1 (around the carrier), k1 = −5..5.
  struct Line {
    Real offsetKHz;
    Real amp;
    const char* note;
  };
  std::vector<Line> lines;
  Real carrierAmp = 0;
  for (int k1 = -5; k1 <= 5; ++k1) {
    const Real amp = hb::lineAmplitude(sol, out, k1, 1);
    carrierAmp = std::max(carrierAmp, amp);
    const char* note = "";
    if (k1 == -1) note = "desired sideband (fLO - fBB)";
    if (k1 == +1) note = "image sideband (I/Q imbalance; paper -35 dBc)";
    if (k1 == 0) note = "LO feedthrough spur (paper ~-78 dBc)";
    if (std::abs(k1) == 3) note = "baseband 3rd-order product";
    lines.push_back({static_cast<Real>(k1) * cfg.fBB * 1e-3, amp, note});
  }
  std::printf("\nin-band spectrum around %.2f GHz (offsets in kHz):\n",
              cfg.fLO * 1e-9);
  std::printf("%-12s %-12s %-10s %s\n", "offset kHz", "amp (V)", "dBc", "");
  rule();
  for (const auto& l : lines) {
    if (l.amp < 1e-15) continue;
    std::printf("%-12.1f %-12.3e %-10.1f %s\n", l.offsetKHz, l.amp,
                hb::toDb(l.amp, carrierAmp), l.note);
  }

  const Real image = hb::lineAmplitude(sol, out, +1, 1);
  const Real spur = hb::lineAmplitude(sol, out, 0, 1);
  std::printf("\nimage sideband: %.1f dBc (paper: -35 dBc)\n",
              hb::toDb(image, carrierAmp));
  std::printf("LO spur:        %.1f dBc (paper: ~-78 dBc)\n",
              hb::toDb(spur, carrierAmp));

  // ---- Transient comparison (paper: baseband raised to 1 MHz). --------
  header("Fig. 1(b) — conventional transient on the same modulator");
  ModulatorConfig tcfg = cfg;
  tcfg.fBB = 1e6;  // the paper's concession to transient cost
  circuit::Circuit ckt2;
  const ModulatorNodes n2 = buildQuadratureModulator(ckt2, tcfg);
  circuit::MnaSystem sys2(ckt2);
  const auto dc2 = analysis::dcOperatingPoint(sys2);

  analysis::TransientOptions to;
  const Real fs = 16.0 * tcfg.fLO;          // 16 samples per carrier cycle
  to.dt = 1.0 / fs;
  to.tstop = 5.0 / tcfg.fBB;                // settle + 4 periods of capture
  to.method = analysis::IntegrationMethod::trapezoidal;

  // A/B the assemble→factor→solve pipeline: the legacy path rebuilds the
  // Jacobian triplets and factors symbolically at every Newton iteration,
  // the cached path stamps into the workspace pattern and refactors
  // numerically on the recorded pivot order.
  analysis::TransientOptions toLegacy = to;
  toLegacy.patternCache = false;
  Stopwatch swLegacy;
  const auto trLegacy = analysis::runTransient(sys2, dc2.x, toLegacy);
  const Real legacyWall = swLegacy.seconds();
  std::printf("transient (legacy pipeline): ok=%d, %zu steps, wall=%.2f s\n",
              trLegacy.ok ? 1 : 0, trLegacy.steps, legacyWall);

  Stopwatch sw2;
  const auto tr = analysis::runTransient(sys2, dc2.x, to);
  const Real cachedWall = sw2.seconds();
  std::printf("transient (cached pipeline): ok=%d, %zu steps, wall=%.2f s "
              "(%.2fx)\n",
              tr.ok ? 1 : 0, tr.steps, cachedWall,
              legacyWall / std::max(cachedWall, Real(1e-9)));
  std::printf("  pipeline counters: %llu evals, %llu factorizations, "
              "%llu refactorizations, %llu solves\n",
              (unsigned long long)tr.perf.evals,
              (unsigned long long)tr.perf.factorizations,
              (unsigned long long)tr.perf.refactorizations,
              (unsigned long long)tr.perf.solves);
  rep.count("tran.steps", tr.steps);
  rep.metric("tran.legacy_wall_s", legacyWall);
  rep.metric("tran.cached_wall_s", cachedWall);
  rep.metric("tran.speedup", legacyWall / std::max(cachedWall, Real(1e-9)));
  rep.counters("tran", tr.perf);
  if (!tr.ok) return 1;

  std::vector<Real> vout;
  vout.reserve(tr.x.size());
  // Skip the first baseband period (settling); keep four full periods so
  // the FFT bin spacing is fBB/4 and the image clears the carrier's
  // window skirt.
  const std::size_t skip = tr.x.size() / 5;
  for (std::size_t k = skip; k < tr.x.size(); ++k)
    vout.push_back(tr.x[k][static_cast<std::size_t>(n2.out)]);
  const auto sp = hb::transientSpectrum(vout, fs);

  const Real carrierT = hb::amplitudeNear(sp, tcfg.fLO - tcfg.fBB);
  const Real imageT = hb::amplitudeNear(sp, tcfg.fLO + tcfg.fBB);
  // The LO spur estimate, read at its exact bin (no local peak search —
  // any neighbor is a different intentional tone).
  std::size_t spurBin = 0;
  Real best = 1e300;
  for (std::size_t k = 0; k < sp.freq.size(); ++k) {
    const Real d = std::abs(sp.freq[k] - tcfg.fLO);
    if (d < best) {
      best = d;
      spurBin = k;
    }
  }
  const Real spurT = sp.amplitude[spurBin];
  const Real spurTrueDbc = hb::toDb(spur, carrierAmp);
  const Real spurEstDbc = hb::toDb(spurT, carrierT);
  std::printf("transient-FFT: image %.1f dBc (true %.1f);\n"
              "               LO spur estimate %.1f dBc vs true %.1f dBc "
              "(error %.1f dB)\n",
              hb::toDb(imageT, carrierT), hb::toDb(image, carrierAmp),
              spurEstDbc, spurTrueDbc, std::abs(spurEstDbc - spurTrueDbc));
  std::printf("=> the strong -35 dBc sideband is visible to both methods; "
              "the -78 dBc spur is %s by the transient+FFT path\n",
              std::abs(spurEstDbc - spurTrueDbc) > 6.0 ? "NOT resolved"
                                                       : "resolved");
  std::printf("   (the paper's transient missed both: its run, at equal "
              "cost to HB, had neither the resolution nor the dynamic "
              "range)\n");
  rep.metric("image_dbc", hb::toDb(image, carrierAmp));
  rep.metric("lo_spur_dbc", spurTrueDbc);
  rep.metric("lo_spur_est_dbc", spurEstDbc);

  const auto g = perf::global().snapshot();
  rep.count("global.fft_count", g.fftCount);
  rep.count("global.plan_cache_hits", g.planCacheHits);
  rep.count("global.plan_cache_misses", g.planCacheMisses);
  return 0;
}
