// Section 2.2 ablation — the paper's per-circuit-class guidance for
// choosing among the multi-time methods:
//   "MFDTD and HS are appropriate for circuits with no sinusoidal waveform
//    components … MMFT is often more efficient for switched-capacitor
//    filters and switching mixers."
// All four quasi-periodic engines (plus two-tone HB) solve the same two
// problems — a mildly nonlinear two-tone network (sinusoidal waveforms)
// and the switching mixer (square LO) — and report accuracy vs. cost, so
// the guidance can be read off a table.
#include <cmath>
#include <cstdio>

#include "analysis/dc.hpp"
#include "bench_util.hpp"
#include "circuit/devices.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"
#include "mixer_circuit.hpp"
#include "mpde/hier_shooting.hpp"
#include "mpde/mfdtd.hpp"
#include "mpde/mmft.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::circuit;

namespace {

struct Row {
  const char* method;
  bool ok;
  Real value;  // reference mix magnitude
  Real err;    // vs HB reference
  Real secs;
};

void printRows(const char* title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title);
  std::printf("%-10s %-8s %-14s %-12s %-10s\n", "method", "ok",
              "|mix| (V)", "rel err", "wall (s)");
  rule();
  for (const auto& r : rows)
    std::printf("%-10s %-8d %-14.6e %-12.2e %-10.3f\n", r.method, r.ok ? 1 : 0,
                r.value, r.err, r.secs);
}

}  // namespace

int main() {
  header("Section 2.2 — choosing a multi-time method (ablation)");
  JsonReporter rep("sec22_mpde_methods");
  const auto record = [&rep](const std::string& prefix,
                             const std::vector<Row>& rows) {
    for (const auto& r : rows) {
      const std::string key = prefix + "." + r.method;
      rep.flag(key + ".ok", r.ok);
      rep.metric(key + ".relerr", r.err);
      rep.metric(key + ".wall_s", r.secs);
    }
  };

  // --- Problem A: mildly nonlinear, both tones sinusoidal. ---------------
  {
    auto build = [](Circuit& c) {
      const int a = c.node("a"), s2 = c.node("s2"), b = c.node("b");
      const int br1 = c.allocBranch("V1"), br2 = c.allocBranch("V2");
      c.add<VSource>("V1", a, -1, br1, std::make_shared<SineWave>(0.1, 1e6),
                     TimeAxis::slow);
      c.add<VSource>("V2", s2, a, br2,
                     std::make_shared<SineWave>(0.1, 1.41e6), TimeAxis::fast);
      c.add<Resistor>("Rs", s2, b, 1000.0);
      c.add<CubicConductance>("GN", b, -1, 1e-3, 1e-2);
      c.add<Capacitor>("Cb", b, -1, 1e-11);
    };
    Circuit ch;
    build(ch);
    analysis::MnaSystem sysH(ch);
    const auto dcH = analysis::dcOperatingPoint(sysH);
    const auto bIdx = static_cast<std::size_t>(ch.findNode("b"));

    Stopwatch sw;
    const auto hbSol =
        hb::HarmonicBalance(sysH, {{1e6, 3}, {1.41e6, 3}}).solve(dcH.x);
    const Real tHB = sw.seconds();
    const Real ref = std::abs(hbSol.at(bIdx, 1, 0));

    std::vector<Row> rows;
    rows.push_back({"HB", hbSol.converged, ref, 0.0, tHB});
    {
      Circuit c;
      build(c);
      analysis::MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);
      mpde::MMFTOptions mo;
      mo.slowHarmonics = 3;
      mo.fastSteps = 250;
      sw.reset();
      const auto r = mpde::runMMFT(sys, 1e6, 1.41e6, dc.x, mo);
      const Real v = std::abs(r.grid.mixCoefficient(bIdx, 1, 0));
      rows.push_back({"MMFT", r.converged, v, std::abs(v - ref) / ref,
                      sw.seconds()});
    }
    {
      Circuit c;
      build(c);
      analysis::MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);
      mpde::HSOptions ho;
      ho.slowSteps = 48;
      ho.fastSteps = 150;
      sw.reset();
      const auto r = mpde::runHierarchicalShooting(sys, 1e6, 1.41e6, dc.x, ho);
      const Real v = std::abs(r.grid.mixCoefficient(bIdx, 1, 0));
      rows.push_back({"HS", r.converged, v, std::abs(v - ref) / ref,
                      sw.seconds()});
    }
    {
      Circuit c;
      build(c);
      analysis::MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);
      mpde::MFDTDOptions fo;
      fo.m1 = 32;
      fo.m2 = 32;
      sw.reset();
      const auto r = mpde::runMFDTD(sys, 1e6, 1.41e6, dc.x, fo);
      const Real v = std::abs(r.grid.mixCoefficient(bIdx, 1, 0));
      rows.push_back({"MFDTD", r.converged, v, std::abs(v - ref) / ref,
                      sw.seconds()});
    }
    printRows("Problem A — sinusoidal two-tone (HB's home turf):", rows);
    record("A", rows);
    std::printf("guidance check: HB/MMFT (spectral slow axis) are the "
                "accurate/cheap choices; BE-based MFDTD/HS pay first-order "
                "error on smooth waveforms.\n");
  }

  // --- Problem B: switching mixer (square LO — no sinusoidal fast wave). -
  {
    const Real fRF = 1e6, fLO = 64e6;
    Circuit cref;
    const MixerNodes nref = buildSwitchingMixer(cref, fRF, fLO);
    analysis::MnaSystem sysRef(cref);
    const auto dcRef = analysis::dcOperatingPoint(sysRef);
    const auto up = static_cast<std::size_t>(nref.outp);
    const auto um = static_cast<std::size_t>(nref.outm);

    // MMFT reference (fine fast grid).
    Stopwatch sw;
    mpde::MMFTOptions mo;
    mo.slowHarmonics = 3;
    mo.fastSteps = 400;
    const auto refRun = mpde::runMMFT(sysRef, fRF, fLO, dcRef.x, mo);
    const Real tRef = sw.seconds();
    const Real ref = 2.0 * std::abs(refRun.grid.mixCoefficient(up, 1, 1) -
                                    refRun.grid.mixCoefficient(um, 1, 1));

    std::vector<Row> rows;
    rows.push_back({"MMFT", refRun.converged, ref, 0.0, tRef});
    {
      Circuit c;
      const MixerNodes n = buildSwitchingMixer(c, fRF, fLO);
      analysis::MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);
      hb::HBOptions ho;
      ho.continuationSteps = 2;
      sw.reset();
      // The square LO needs many fast harmonics in HB — the cost the
      // paper's guidance warns about.
      const auto r =
          hb::HarmonicBalance(sys, {{fRF, 3}, {fLO, 15}}, ho).solve(dc.x);
      const Real v =
          2.0 * std::abs(r.at(static_cast<std::size_t>(n.outp), 1, 1) -
                         r.at(static_cast<std::size_t>(n.outm), 1, 1));
      rows.push_back({"HB", r.converged, v, std::abs(v - ref) / ref,
                      sw.seconds()});
    }
    {
      Circuit c;
      const MixerNodes n = buildSwitchingMixer(c, fRF, fLO);
      analysis::MnaSystem sys(c);
      const auto dc = analysis::dcOperatingPoint(sys);
      mpde::HSOptions ho;
      ho.slowSteps = 24;
      ho.fastSteps = 200;
      sw.reset();
      const auto r = mpde::runHierarchicalShooting(sys, fRF, fLO, dc.x, ho);
      const Real v =
          2.0 * std::abs(r.grid.mixCoefficient(
                             static_cast<std::size_t>(n.outp), 1, 1) -
                         r.grid.mixCoefficient(
                             static_cast<std::size_t>(n.outm), 1, 1));
      rows.push_back({"HS", r.converged, v, std::abs(v - ref) / ref,
                      sw.seconds()});
    }
    printRows("Problem B — switching mixer, square LO:", rows);
    record("B", rows);
    std::printf("guidance check: time-domain fast axes (MMFT shooting, HS)\n"
                "handle the switching waveform directly; HB needs a long\n"
                "Fourier tail for the square LO (paper Sec. 2.2).\n");
  }
  return 0;
}
