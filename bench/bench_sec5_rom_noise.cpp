// Section 5 / reference [7] reproduction — ROM-accelerated noise
// evaluation: "a significantly more efficient evaluation of noise power
// over a wide range of frequencies … the entire noise behavior of a
// circuit block is captured in a compact form."
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "rom/rom_noise.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::rom;

int main() {
  header("Section 5 [7] — noise evaluation via Pade-based model reduction");
  JsonReporter rep("sec5_rom_noise");
  const std::size_t segments = quickMode() ? 600 : 2000;
  const auto sys = makeRCLine(segments, 1000.0, 1e-9);

  // Embedded noise sources spread along the line (thermal-like PSDs).
  std::vector<NoiseInput> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    NoiseInput ni;
    ni.injection = numeric::RVec(sys.n);
    ni.injection[(i + 1) * sys.n / 10] = 1.0;
    ni.psd = 1.6e-23 * static_cast<Real>(1 + i);
    ni.label = "src" + std::to_string(i);
    sources.push_back(ni);
  }
  std::vector<Real> freqs;
  for (int i = 0; i < 240; ++i)
    freqs.push_back(1e3 * std::pow(10.0, i / 60.0));  // 1 kHz … 10 MHz

  std::printf("system: %zu unknowns, %zu noise sources, %zu frequencies\n",
              sys.n, sources.size(), freqs.size());
  std::printf("\n%-6s %-14s %-12s %-12s %-10s\n", "q", "max rel err",
              "direct (s)", "ROM (s)", "speedup");
  rule();
  for (const std::size_t q : {4u, 8u, 12u}) {
    const auto res = noiseViaROM(sys, sources, freqs, 0.0, q);
    std::printf("%-6zu %-14.3e %-12.3f %-12.3f %-10.1f\n", q,
                res.maxRelError, res.directSeconds, res.romSeconds,
                res.directSeconds / res.romSeconds);
    if (q == 8) {
      rep.metric("q8.max_rel_err", res.maxRelError);
      rep.metric("q8.direct_s", res.directSeconds);
      rep.metric("q8.rom_s", res.romSeconds);
      rep.metric("q8.speedup", res.directSeconds / res.romSeconds);
    }
  }

  // Show a slice of the spectrum itself (direct vs ROM at q = 8).
  const auto res = noiseViaROM(sys, sources, freqs, 0.0, 8);
  std::printf("\noutput noise PSD [V^2/Hz], direct vs ROM (q=8):\n");
  std::printf("%-12s %-14s %-14s\n", "f (Hz)", "direct", "ROM");
  rule();
  for (std::size_t k = 0; k < freqs.size(); k += 40)
    std::printf("%-12.3e %-14.5e %-14.5e\n", freqs[k], res.directPsd[k],
                res.romPsd[k]);
  return 0;
}
