// Shared helpers for the reproduction benches: wall-clock timing and
// uniform table output. Every bench prints the rows/series of the paper
// artifact it regenerates (see DESIGN.md experiment index); EXPERIMENTS.md
// records the measured numbers against the paper's.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "perf/perf.hpp"

namespace rfic::bench {

class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  Real seconds() const {
    return std::chrono::duration<Real>(std::chrono::steady_clock::now() - t0_)
        .count();
  }
  void reset() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("-----------------------------------------------------------\n");
}

/// Set RFIC_BENCH_QUICK=1 to trim the most expensive sweep points during
/// development; the recorded EXPERIMENTS.md numbers use the full runs.
inline bool quickMode() {
  const char* v = std::getenv("RFIC_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Collects headline metrics and writes them to BENCH_<name>.json in the
/// working directory when destroyed (or on an explicit write()) — the
/// machine-readable artifact next to each bench's human-readable tables;
/// the CI perf-smoke job uploads these files.
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { write(); }

  /// Floating-point metric (non-finite values become JSON null).
  void metric(const std::string& key, Real value) {
    char buf[64];
    if (std::isfinite(value))
      std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(value));
    else
      std::snprintf(buf, sizeof buf, "null");
    add(key, buf);
  }
  void count(const std::string& key, std::size_t value) {
    add(key, std::to_string(value));
  }
  void flag(const std::string& key, bool value) {
    add(key, value ? "true" : "false");
  }
  void text(const std::string& key, const std::string& value) {
    add(key, "\"" + escaped(value) + "\"");
  }
  /// Expands a perf snapshot into <prefix>.evals, <prefix>.factorizations,
  /// <prefix>.refactorizations, <prefix>.solves and the per-stage times.
  void counters(const std::string& prefix, const perf::Snapshot& s) {
    count(prefix + ".evals", s.evals);
    count(prefix + ".eval_batched", s.evalBatched);
    count(prefix + ".factorizations", s.factorizations);
    count(prefix + ".refactorizations", s.refactorizations);
    count(prefix + ".solves", s.solves);
    count(prefix + ".retries", s.retries);
    count(prefix + ".fallbacks", s.fallbacks);
    count(prefix + ".fft_count", s.fftCount);
    count(prefix + ".plan_cache_hits", s.planCacheHits);
    count(prefix + ".plan_cache_misses", s.planCacheMisses);
    count(prefix + ".matvecs", s.matvecs);
    count(prefix + ".extract_builds", s.extractBuilds);
    count(prefix + ".eval_ns", static_cast<std::size_t>(s.evalNs));
    count(prefix + ".eval_batch_ns", static_cast<std::size_t>(s.evalBatchNs));
    count(prefix + ".factor_ns", static_cast<std::size_t>(s.factorNs));
    count(prefix + ".refactor_ns", static_cast<std::size_t>(s.refactorNs));
    count(prefix + ".solve_ns", static_cast<std::size_t>(s.solveNs));
    count(prefix + ".fft_ns", static_cast<std::size_t>(s.fftNs));
    count(prefix + ".matvec_ns", static_cast<std::size_t>(s.matvecNs));
    count(prefix + ".extract_build_ns",
          static_cast<std::size_t>(s.extractBuildNs));
    count(prefix + ".extract_compress_ns",
          static_cast<std::size_t>(s.extractCompressNs));
    count(prefix + ".mem_peak_bytes",
          static_cast<std::size_t>(s.memPeakBytes));
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"quick\": %s",
                 escaped(name_).c_str(), quickMode() ? "true" : "false");
    for (const auto& [key, literal] : entries_)
      std::fprintf(f, ",\n  \"%s\": %s", escaped(key).c_str(),
                   literal.c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s\n", path.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }
  // Last write wins: benches that loop over sweep points can record each
  // iteration and the final (usually finest/largest) one lands in the file.
  void add(const std::string& key, std::string literal) {
    for (auto& [k, v] : entries_)
      if (k == key) {
        v = std::move(literal);
        return;
      }
    entries_.emplace_back(key, std::move(literal));
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
  bool written_ = false;
};

}  // namespace rfic::bench
