// Shared helpers for the reproduction benches: wall-clock timing and
// uniform table output. Every bench prints the rows/series of the paper
// artifact it regenerates (see DESIGN.md experiment index); EXPERIMENTS.md
// records the measured numbers against the paper's.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.hpp"

namespace rfic::bench {

class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  Real seconds() const {
    return std::chrono::duration<Real>(std::chrono::steady_clock::now() - t0_)
        .count();
  }
  void reset() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("-----------------------------------------------------------\n");
}

/// Set RFIC_BENCH_QUICK=1 to trim the most expensive sweep points during
/// development; the recorded EXPERIMENTS.md numbers use the full runs.
inline bool quickMode() {
  const char* v = std::getenv("RFIC_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

}  // namespace rfic::bench
