// Fig. 7 reproduction — "Comparison of inductor simulations and
// measurements": L(f) and Q(f) of an integrated square spiral over a lossy
// substrate.
//
// Substitution (DESIGN.md §1.4): the measured device is replaced by a
// synthetic reference — the same spiral extracted with a 4× finer PEEC
// discretization and finer quadrature, perturbed by 2% "instrument" noise.
// The comparison path (production extraction vs independent reference) and
// the physical shape — flat low-frequency L, substrate-loss Q peak,
// self-resonance — are what Fig. 7 demonstrates.
#include <cmath>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "extraction/spiral.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::extraction;

int main() {
  header("Fig. 7 — spiral inductor: simulation vs (synthetic) measurement");
  JsonReporter rep("fig7_inductor");
  SpiralParams sim;  // production model: 1 segment/side
  SpiralParams ref = sim;
  ref.segmentsPerSide = 4;  // fine reference = "measurement"
  ref.quadraturePoints = 24;

  const SpiralModel mSim = buildSpiralModel(sim);
  const SpiralModel mRef = buildSpiralModel(ref);
  std::printf("geometry: %zu turns, %.0f um outer, w=%.0f um, s=%.0f um\n",
              sim.turns, sim.outerSize * 1e6, sim.width * 1e6,
              sim.spacing * 1e6);
  std::printf("simulated  L = %.3f nH, Rdc = %.2f ohm\n", mSim.seriesL * 1e9,
              mSim.seriesRdc);
  std::printf("reference  L = %.3f nH, Rdc = %.2f ohm\n", mRef.seriesL * 1e9,
              mRef.seriesRdc);

  std::mt19937_64 rng(2026);
  std::normal_distribution<Real> noise(0.0, 0.02);  // 2% instrument noise

  std::printf("\n%-10s %-12s %-12s %-10s %-12s %-12s %-10s\n", "f (GHz)",
              "L sim (nH)", "L meas (nH)", "dL %", "Q sim", "Q meas", "dQ %");
  rule();
  Real maxLErr = 0, maxQErr = 0, qPeakSim = 0, qPeakF = 0;
  for (Real f = 0.1e9; f <= 12.01e9; f *= std::pow(10.0, 0.125)) {
    const Real lSim = mSim.effectiveInductance(f);
    const Real qSim = mSim.qualityFactor(f);
    const Real lMeas = mRef.effectiveInductance(f) * (1.0 + noise(rng));
    const Real qMeas = mRef.qualityFactor(f) * (1.0 + noise(rng));
    const Real dl = 100.0 * (lSim - lMeas) / std::abs(lMeas);
    const Real dq = 100.0 * (qSim - qMeas) / std::abs(qMeas);
    if (qSim > qPeakSim && qSim > 0) {
      qPeakSim = qSim;
      qPeakF = f;
    }
    if (f < 6e9) {  // below self-resonance, where Fig. 7 compares
      maxLErr = std::max(maxLErr, std::abs(dl));
      maxQErr = std::max(maxQErr, std::abs(dq));
    }
    std::printf("%-10.2f %-12.3f %-12.3f %-10.1f %-12.2f %-12.2f %-10.1f\n",
                f * 1e-9, lSim * 1e9, lMeas * 1e9, dl, qSim, qMeas, dq);
  }
  rule();
  std::printf("Q peaks at %.2f GHz (Q = %.2f); substrate loss rolls Q off "
              "beyond the peak\n", qPeakF * 1e-9, qPeakSim);
  std::printf("max |dL| = %.1f%%, max |dQ| = %.1f%% below self-resonance "
              "(paper: close sim/meas agreement)\n", maxLErr, maxQErr);
  rep.metric("series_L_nH", mSim.seriesL * 1e9);
  rep.metric("q_peak", qPeakSim);
  rep.metric("q_peak_ghz", qPeakF * 1e-9);
  rep.metric("max_dL_pct", maxLErr);
  rep.metric("max_dQ_pct", maxQErr);
  return 0;
}
