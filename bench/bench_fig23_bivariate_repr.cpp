// Figs. 2 & 3 reproduction — the cost of representing the quasi-periodic
// demonstration signal y(t) = sin(2πt/T1)·pulse(t/T2) in univariate versus
// bivariate form (Section 2.2).
//
// The paper's point: univariate sampling must resolve every fast pulse over
// a full slow period (cost ∝ T1/T2, 10⁹ in the paper's example), while the
// bivariate form ŷ(t1,t2) needs a separation-independent number of samples
// and recovers y(t) = ŷ(t,t) by interpolation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpde/bivariate.hpp"

using namespace rfic;
using namespace rfic::bench;

int main() {
  header("Figs. 2/3 — univariate vs bivariate representation cost");
  JsonReporter rep("fig23_bivariate_repr");
  const Real tol = 0.02;  // max interpolation error target
  const std::size_t bivar = mpde::bivariateSamplesNeeded(tol);
  rep.count("bivariate_samples", bivar);

  std::printf("accuracy target: max linear-interpolation error <= %.3f\n\n",
              tol);
  std::printf("%-16s %-20s %-20s %-10s\n", "separation T1/T2",
              "univariate samples", "bivariate samples", "ratio");
  rule();
  std::vector<Real> seps{10, 100, 1000, 10000, 100000};
  if (quickMode()) seps = {10, 100, 1000};
  Real maxRatio = 0;
  for (const Real sep : seps) {
    const std::size_t uni = mpde::univariateSamplesNeeded(sep, tol);
    const Real ratio = static_cast<Real>(uni) / static_cast<Real>(bivar);
    maxRatio = std::max(maxRatio, ratio);
    std::printf("%-16.0f %-20zu %-20zu %-10.1f\n", sep, uni, bivar, ratio);
  }
  rep.metric("max_univariate_ratio", maxRatio);
  std::printf("(paper example separation: 1e9 — univariate representation "
              "needs ~1e9 x the samples; bivariate count is constant)\n");

  // Fig. 3's implicit claim: the bivariate samples reconstruct y(t) on the
  // diagonal. Report the reconstruction error for a few grids.
  std::printf("\nreconstruction of y(t) = ŷ(t,t) from the bivariate grid "
              "(separation 1000):\n");
  std::printf("%-14s %-14s %-14s\n", "grid m1 x m2", "samples", "max error");
  rule();
  Real finestErr = 0;
  for (const std::size_t m : {16u, 32u, 64u, 128u}) {
    const Real err = mpde::bivariateReconstructionError(1000.0, m, 2 * m);
    finestErr = err;
    std::printf("%4zu x %-8zu %-14zu %-14.3e\n", m, 2 * m, m * 2 * m, err);
  }
  rep.metric("reconstruction_err_128", finestErr);
  return 0;
}
