// Section 5 reproduction — reduced-order modeling claims:
//  * PVL matches 2q moments per order q; Arnoldi matches q ("For the same
//    order of approximation and computational effort they match twice as
//    many moments as the Arnoldi algorithm").
//  * Transfer-function accuracy vs order for PVL / Arnoldi / PRIMA on a
//    1000+-element extracted-interconnect stand-in.
//  * Lanczos reduction may lose passivity (complex/unstable artifacts);
//    PRIMA's congruence preserves stable poles.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "rom/arnoldi_rom.hpp"
#include "rom/prima.hpp"
#include "rom/pvl.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::rom;

int main() {
  header("Section 5 — PVL vs Arnoldi vs PRIMA on a 1200-segment RC line");
  JsonReporter rep("sec5_rom");
  const auto sys = makeRCLine(1200, 2000.0, 2e-9);

  // --- Moment-matching table.
  const std::size_t q = 4;
  const auto exact = exactMoments(sys, 0.0, 2 * q + 2);
  const auto pvlR = pvl(sys, 0.0, q);
  const auto arnR = arnoldiReduce(sys, 0.0, q);
  const auto pvlM = pvlR.rom.moments(2 * q + 2);
  const auto arnM = arnR.rom.moments(2 * q + 2);
  std::printf("moment-matching at order q = %zu:\n", q);
  std::printf("%-4s %-14s %-14s %-14s\n", "k", "exact", "PVL relerr",
              "Arnoldi relerr");
  rule();
  for (std::size_t k = 0; k < 2 * q + 2; ++k) {
    auto re = [&](Real v) {
      return std::abs(v - exact[k]) / (std::abs(exact[k]) + 1e-300);
    };
    std::printf("%-4zu %-14.4e %-14.2e %-14.2e%s\n", k, exact[k],
                re(pvlM[k]), re(arnM[k]),
                k == q ? "  <- Arnoldi guarantee ends"
                       : (k == 2 * q ? "  <- PVL guarantee ends" : ""));
  }

  // --- Transfer-function error vs order (normalized to the passband gain
  // |H(0)| — at the high end of the sweep |H| itself decays to ~1e-30 and
  // pointwise-relative error is meaningless).
  std::printf("\nmax |H - Hq|/|H(0)| over 1 kHz...30 MHz vs order:\n");
  std::printf("%-6s %-14s %-14s %-14s\n", "q", "PVL", "Arnoldi", "PRIMA");
  rule();
  const Real h0 = std::abs(sys.transferFunction({0.0, 0.0}));
  for (const std::size_t order : {2u, 4u, 6u, 8u, 12u}) {
    const auto pv = pvl(sys, 0.0, order).rom;
    const auto ar = arnoldiReduce(sys, 0.0, order).rom;
    const auto pr = primaReduce(sys, 0.0, order);
    Real ep = 0, ea = 0, epr = 0;
    for (Real f = 1e3; f <= 3e7; f *= 2.0) {
      const Complex s(0.0, kTwoPi * f);
      const Complex href = sys.transferFunction(s);
      ep = std::max(ep, std::abs(pv.transfer(s) - href) / h0);
      ea = std::max(ea, std::abs(ar.transfer(s) - href) / h0);
      epr = std::max(epr, std::abs(pr.transfer(s) - href) / h0);
    }
    std::printf("%-6zu %-14.3e %-14.3e %-14.3e\n", order, ep, ea, epr);
    if (order == 8) {
      rep.metric("q8.pvl_relerr", ep);
      rep.metric("q8.arnoldi_relerr", ea);
      rep.metric("q8.prima_relerr", epr);
    }
  }

  // --- Stability/passivity comparison.
  std::printf("\npole structure at q = 8 (passivity caveat):\n");
  const auto pv8 = pvl(sys, 0.0, 8).rom;
  const auto pr8 = primaReduce(sys, 0.0, 8);
  std::size_t pvlComplex = 0, pvlUnstable = 0;
  for (const auto& p : pv8.poles()) {
    if (std::abs(p.imag()) > 1e-6 * std::abs(p.real())) ++pvlComplex;
    if (p.real() > 0) ++pvlUnstable;
  }
  std::printf("  PVL:   %zu poles, %zu complex (non-physical for RC), "
              "%zu unstable\n",
              pv8.poles().size(), pvlComplex, pvlUnstable);
  std::printf("  PRIMA: stable poles = %s (congruence preserves "
              "definiteness)\n", pr8.polesStable() ? "yes" : "NO");

  // --- Wall-clock for the reduction itself.
  Stopwatch sw;
  (void)pvl(sys, 0.0, 12);
  const Real tp = sw.seconds();
  sw.reset();
  for (Real f = 1e3; f <= 3e7; f *= 1.1) (void)sys.transferFunction(Complex(0.0, kTwoPi * f));
  const Real tf = sw.seconds();
  std::printf("\nbuild PVL(q=12): %.3f s; one full 100-point sweep of the "
              "unreduced system: %.3f s\n", tp, tf);
  rep.flag("prima_poles_stable", pr8.polesStable());
  rep.count("pvl_unstable_poles", pvlUnstable);
  rep.metric("pvl_build_q12_s", tp);
  rep.metric("full_sweep_s", tf);
  return 0;
}
