// Section 3 reproduction — oscillator phase noise by the nonlinear
// perturbation (PPV) theory.
//
// The section has no numbered figure; its claims are quantitative and this
// bench regenerates each one on a van der Pol LC oscillator:
//  * mean-square jitter grows linearly and without bound (slope c),
//    validated against a Monte-Carlo noisy-transient ensemble (the
//    substitution for the paper's measured oscillators),
//  * the output spectrum is Lorentzian: finite at the carrier, total
//    carrier power preserved,
//  * LTI/LTV analysis coincides far from the carrier but diverges
//    non-physically at it,
//  * per-noise-source contributions to c are separable.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/shooting.hpp"
#include "analysis/transient.hpp"
#include "bench_util.hpp"
#include "circuit/devices.hpp"
#include "phasenoise/jitter_mc.hpp"
#include "phasenoise/phase_noise.hpp"

using namespace rfic;
using namespace rfic::bench;
using namespace rfic::circuit;
using namespace rfic::analysis;

int main() {
  header("Section 3 — oscillator phase noise (PPV theory)");
  JsonReporter rep("sec3_phase_noise");
  Circuit c;
  const int v = c.node("v");
  const int br = c.allocBranch("L1");
  c.add<Capacitor>("C1", v, -1, 1e-9);
  c.add<Inductor>("L1", v, -1, br, 1e-6);
  c.add<Resistor>("Rl", v, -1, 2000.0);
  c.add<Resistor>("Rl2", v, -1, 8000.0);  // second source for the breakdown
  c.add<CubicConductance>("GN", v, -1, -2.2e-3, 1e-3);
  MnaSystem sys(c);

  // Start-up transient → period estimate → oscillator shooting.
  TransientOptions to;
  to.tstop = 40e-6;
  to.dt = 2e-9;
  to.method = IntegrationMethod::trapezoidal;
  numeric::RVec x0(sys.dim(), 0.0);
  x0[static_cast<std::size_t>(v)] = 0.2;
  const auto tr = runTransient(sys, x0, to);
  const Real tEst = estimatePeriod(tr, static_cast<std::size_t>(v), 0.0);

  ShootingOptions so;
  so.stepsPerPeriod = 1000;
  Stopwatch sw;
  const auto pss = shootingOscillatorPSS(sys, tEst, tr.x.back(),
                                         static_cast<std::size_t>(v), 0.0, so);
  std::printf("PSS: converged=%d f0=%.4f MHz (%zu Newton, %.2f s)\n",
              pss.converged ? 1 : 0, 1e-6 / pss.period, pss.newtonIterations,
              sw.seconds());
  if (!pss.converged) return 1;

  sw.reset();
  const auto pn = phasenoise::analyzeOscillatorPhaseNoise(sys, pss);
  std::printf("PPV analysis: %.3f s; normalization defect %.2e\n",
              sw.seconds(), pn.floquet.normalizationDefect);
  std::printf("Floquet multipliers:");
  for (const auto& m : pn.floquet.multipliers)
    std::printf(" (%.4f%+.4fj)", m.real(), m.imag());
  std::printf("\nc = %.4e s, linewidth = %.4e Hz\n", pn.c, pn.linewidthHz());
  rep.flag("pss_converged", pss.converged);
  rep.metric("f0_mhz", 1e-6 / pss.period);
  rep.metric("c_s", pn.c);
  rep.metric("linewidth_hz", pn.linewidthHz());

  std::printf("\nper-source contributions to c (separability claim):\n");
  for (const auto& [label, cc] : pn.perSource)
    std::printf("  %-16s %.4e s (%.1f%%)\n", label.c_str(), cc,
                100.0 * cc / pn.c);

  std::printf("\nSSB phase noise L(df) [dBc/Hz] vs LTV prediction:\n");
  std::printf("%-14s %-12s %-12s\n", "offset (Hz)", "Lorentzian", "LTV");
  rule();
  const Real lw = pn.linewidthHz();
  for (const Real mult : {1e-3, 1e-1, 1.0, 1e1, 1e3, 1e6, 1e9}) {
    const Real off = lw * mult;
    std::printf("%-14.3e %-12.1f %-12.1f%s\n", off, pn.ssbPhaseNoiseDbc(off),
                pn.ltvPhaseNoiseDbc(off),
                mult < 1.0 ? "   <- LTV diverges, Lorentzian saturates" : "");
  }
  // Carrier-power preservation: ∫Lorentzian df = 1.
  Real integral = 0;
  const Real span = 5000.0 * lw;
  const std::size_t steps = 200000;
  const Real df = 2 * span / static_cast<Real>(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const Real f = -span + (static_cast<Real>(i) + 0.5) * df;
    integral += pn.lorentzian(1, f) * df;
  }
  std::printf("\nintegral of the normalized Lorentzian = %.4f "
              "(1.0 = total carrier power preserved)\n", integral);

  std::printf("\njitter variance sigma^2(t) = c*t (unbounded linear growth):\n");
  for (const Real tmul : {1.0, 10.0, 100.0})
    std::printf("  t = %6.0f periods: sigma = %.3e s\n", tmul,
                std::sqrt(pn.jitterVariance(tmul * pss.period)));

  // Monte-Carlo validation (substitution for measured hardware).
  header("Monte-Carlo jitter ensemble vs theory");
  phasenoise::JitterMCOptions jo;
  jo.paths = quickMode() ? 16 : 96;
  jo.cycles = quickMode() ? 30 : 50;
  jo.stepsPerCycle = 300;
  jo.noiseScale = 1e6;
  sw.reset();
  const auto mc = phasenoise::monteCarloJitter(sys, pss,
                                               static_cast<std::size_t>(v),
                                               0.0, pn.c, jo);
  std::printf("paths=%zu wall=%.1f s\n", mc.usedPaths, sw.seconds());
  std::printf("%-10s %-16s\n", "cycle k", "var(t_k) [s^2]");
  rule();
  for (std::size_t k = 1; k < mc.cycleIndex.size(); k += 4)
    std::printf("%-10.0f %-16.4e\n", mc.cycleIndex[k], mc.crossingVar[k]);
  std::printf("fitted slope %.4e s^2/cycle vs theory c*T = %.4e "
              "(ratio %.2f)\n",
              mc.slopePerCycle, mc.theoreticalSlope,
              mc.slopePerCycle / mc.theoreticalSlope);
  rep.count("mc_paths", mc.usedPaths);
  rep.metric("mc_wall_s", sw.seconds());
  rep.metric("mc_slope_ratio", mc.slopePerCycle / mc.theoreticalSlope);
  return 0;
}
