// Micro-benchmarks (google-benchmark) of the numerical kernels the
// reproduction rests on: FFT, sparse LU, MoM assembly/kernel, HB
// Jacobian-vector products, and panel-potential evaluation. These are the
// primitives whose costs the figure-level benches aggregate.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "analysis/dc.hpp"
#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"
#include "extraction/mom.hpp"
#include "extraction/panel_kernel.hpp"
#include "fft/fft.hpp"
#include "hb/harmonic_balance.hpp"
#include "sparse/sparse_lu.hpp"

namespace {

using namespace rfic;

void BM_FFT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Complex> x(n);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<Real> u(-1, 1);
  for (auto& v : x) v = {u(rng), u(rng)};
  for (auto _ : state) {
    auto y = x;
    fft::fft(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<long>(n));
}
BENCHMARK(BM_FFT)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_SparseLUFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sparse::RTriplets t(n, n);
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<Real> u(-1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + u(rng));
    t.add(i, (i + 1) % n, u(rng));
    t.add(i, (i + 17) % n, u(rng));
  }
  for (auto _ : state) {
    sparse::RSparseLU lu(t);
    benchmark::DoNotOptimize(lu.factorNnz());
  }
  state.SetComplexityN(static_cast<long>(n));
}
BENCHMARK(BM_SparseLUFactor)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_PanelPotential(benchmark::State& state) {
  extraction::Panel p;
  p.corner = {0, 0, 0};
  p.edgeA = {1e-4, 0, 0};
  p.edgeB = {0, 1e-4, 0};
  const extraction::Vec3 pt{3e-4, 2e-4, 1e-4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extraction::panelPotential(p, pt));
  }
}
BENCHMARK(BM_PanelPotential);

void BM_MoMAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto mesh = extraction::makeParallelPlates(1e-3, 1e-4, n);
  for (auto _ : state) {
    auto m = extraction::assembleMoMMatrix(mesh);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetComplexityN(static_cast<long>(mesh.panels.size()));
}
BENCHMARK(BM_MoMAssembly)->Arg(4)->Arg(8)->Arg(16)->Complexity();

// One matrix-implicit HB residual evaluation on a diode circuit — the
// per-iteration workhorse of Section 2.1.
void BM_HBSolve(benchmark::State& state) {
  const auto h = static_cast<std::size_t>(state.range(0));
  circuit::Circuit c;
  const int a = c.node("a"), b = c.node("b");
  const int br = c.allocBranch("V1");
  c.add<circuit::VSource>("V1", a, -1, br,
                          std::make_shared<circuit::SineWave>(0.4, 1e7));
  c.add<circuit::Resistor>("Rs", a, b, 500.0);
  c.add<circuit::Diode>("D1", b, -1, circuit::Diode::Params{});
  c.add<circuit::Resistor>("RL", b, -1, 2000.0);
  circuit::MnaSystem sys(c);
  const auto dc = analysis::dcOperatingPoint(sys);
  hb::HarmonicBalance eng(sys, {{1e7, h}});
  for (auto _ : state) {
    auto sol = eng.solve(dc.x);
    benchmark::DoNotOptimize(sol.converged);
  }
}
BENCHMARK(BM_HBSolve)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
