#include "circuit/sources.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/device_batch.hpp"

namespace rfic::circuit {

Real SquareWave::value(Real t) const {
  // Phase in [0, 1): high on [0, 0.5), low on [0.5, 1), linear edges of
  // width `rise_` centered on the transitions at 0 and 0.5.
  Real ph = t * f_ - std::floor(t * f_);
  const Real e = rise_;
  const Real mid = 0.5 * (low_ + high_);
  const Real half = 0.5 * (high_ - low_);
  if (ph < e * 0.5) return mid + half * (ph / (e * 0.5));
  if (ph < 0.5 - e * 0.5) return high_;
  if (ph < 0.5 + e * 0.5) return mid - half * ((ph - 0.5) / (e * 0.5));
  if (ph < 1.0 - e * 0.5) return low_;
  return mid + half * ((ph - 1.0) / (e * 0.5));
}

PWLWave::PWLWave(std::vector<std::pair<Real, Real>> points)
    : pts_(std::move(points)) {
  RFIC_REQUIRE(!pts_.empty(), "PWLWave: at least one point required");
  RFIC_REQUIRE(std::is_sorted(pts_.begin(), pts_.end(),
                              [](const auto& a, const auto& b) {
                                return a.first < b.first;
                              }),
               "PWLWave: points must be sorted by time");
}

Real PWLWave::value(Real t) const {
  if (t <= pts_.front().first) return pts_.front().second;
  if (t >= pts_.back().first) return pts_.back().second;
  const auto it = std::upper_bound(
      pts_.begin(), pts_.end(), t,
      [](Real v, const auto& p) { return v < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const Real w = (t - lo.first) / (hi.first - lo.first);
  return lo.second + w * (hi.second - lo.second);
}

PulseWave::PulseWave(Real v1, Real v2, Real delay, Real rise, Real fall,
                     Real width, Real period)
    : v1_(v1),
      v2_(v2),
      delay_(delay),
      rise_(rise),
      fall_(fall),
      width_(width),
      period_(period) {
  RFIC_REQUIRE(period > 0 && rise > 0 && fall > 0,
               "PulseWave: period/rise/fall must be positive");
}

Real PulseWave::value(Real t) const {
  if (t < delay_) return v1_;
  Real ph = std::fmod(t - delay_, period_);
  if (ph < rise_) return v1_ + (v2_ - v1_) * ph / rise_;
  ph -= rise_;
  if (ph < width_) return v2_;
  ph -= width_;
  if (ph < fall_) return v2_ + (v1_ - v2_) * ph / fall_;
  return v1_;
}

VSource::VSource(std::string name, int nPlus, int nMinus, int branch,
                 std::shared_ptr<const Waveform> w, TimeAxis axis)
    : Device(std::move(name)),
      np_(nPlus),
      nm_(nMinus),
      br_(branch),
      w_(std::move(w)),
      axis_(axis) {
  RFIC_REQUIRE(br_ >= 0, "VSource: branch unknown required");
  RFIC_REQUIRE(w_ != nullptr, "VSource: waveform required");
}

void VSource::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real ib = x[static_cast<std::size_t>(br_)];
  const Real v = nodeVoltage(x, np_) - nodeVoltage(x, nm_);
  s.addF(np_, ib);
  s.addF(nm_, -ib);
  s.addF(br_, v);
  s.addB(br_, w_->value(s.time(axis_)));
  if (s.wantMatrices()) {
    s.addG(np_, br_, 1.0);
    s.addG(nm_, br_, -1.0);
    s.addG(br_, np_, 1.0);
    s.addG(br_, nm_, -1.0);
  }
}

void VSource::compileBatch(BatchCompiler& bc) const {
  bc.vsource(np_, nm_, br_, w_.get(), axis_);
}

ISource::ISource(std::string name, int nPlus, int nMinus,
                 std::shared_ptr<const Waveform> w, TimeAxis axis)
    : Device(std::move(name)),
      np_(nPlus),
      nm_(nMinus),
      w_(std::move(w)),
      axis_(axis) {
  RFIC_REQUIRE(w_ != nullptr, "ISource: waveform required");
}

void ISource::stamp(const RVec&, const RVec*, Stamp& s) const {
  const Real i = w_->value(s.time(axis_));
  s.addB(np_, -i);
  s.addB(nm_, i);
}

void ISource::compileBatch(BatchCompiler& bc) const {
  bc.isource(np_, nm_, w_.get(), axis_);
}

}  // namespace rfic::circuit
