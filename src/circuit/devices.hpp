// Passive and controlled linear devices.
#pragma once

#include "circuit/circuit.hpp"

namespace rfic::circuit {

/// Linear resistor between two nodes. Contributes thermal noise 4kT/R.
class Resistor final : public Device {
 public:
  Resistor(std::string name, int n1, int n2, Real ohms);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  void noiseSources(const RVec& x, std::vector<NoiseSource>& out) const override;
  Real resistance() const { return r_; }

 private:
  int n1_, n2_;
  Real r_, g_;
};

/// Linear capacitor between two nodes: q = C·(v1 − v2).
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int n1, int n2, Real farads);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;

 private:
  int n1_, n2_;
  Real c_;
};

/// Linear inductor with a branch-current unknown: flux = L·i, branch
/// equation  d(flux)/dt − (v1 − v2) = 0.
class Inductor final : public Device {
 public:
  Inductor(std::string name, int n1, int n2, int branch, Real henries);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  int branch() const { return br_; }
  Real inductance() const { return l_; }

 private:
  int n1_, n2_, br_;
  Real l_;
};

/// Mutual inductance M = k·√(L1·L2) between two existing inductor branches:
/// adds M·i2 to branch-1 flux and M·i1 to branch-2 flux.
class MutualInductance final : public Device {
 public:
  MutualInductance(std::string name, const Inductor& l1, const Inductor& l2,
                   Real coupling);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;

 private:
  int br1_, br2_;
  Real m_;
};

/// Voltage-controlled current source: i(out+ → out−) = gm·(vc+ − vc−).
class VCCS final : public Device {
 public:
  VCCS(std::string name, int outPlus, int outMinus, int ctrlPlus,
       int ctrlMinus, Real gm);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;

 private:
  int op_, om_, cp_, cm_;
  Real gm_;
};

/// Voltage-controlled voltage source with a branch unknown:
/// v(out+) − v(out−) = gain·(vc+ − vc−).
class VCVS final : public Device {
 public:
  VCVS(std::string name, int outPlus, int outMinus, int ctrlPlus,
       int ctrlMinus, int branch, Real gain);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;

 private:
  int op_, om_, cp_, cm_, br_;
  Real gain_;
};

/// Current-controlled current source: i(out+ → out−) = gain · i(branch),
/// where the controlling current is an existing branch unknown (a V source
/// or inductor branch).
class CCCS final : public Device {
 public:
  CCCS(std::string name, int outPlus, int outMinus, int ctrlBranch, Real gain);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;

 private:
  int op_, om_, cb_;
  Real gain_;
};

/// Current-controlled voltage source with its own branch unknown:
/// v(out+) − v(out−) = r · i(ctrlBranch).
class CCVS final : public Device {
 public:
  CCVS(std::string name, int outPlus, int outMinus, int ctrlBranch,
       int branch, Real transresistance);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;

 private:
  int op_, om_, cb_, br_;
  Real r_;
};

/// Ideal four-quadrant multiplier (behavioural double-balanced mixer):
/// current k·v(a+,a−)·v(b+,b−) pushed from out+ to out−. The idealization
/// of a Gilbert cell — used by the Fig. 1 modulator testbench, where gain
/// imbalance between the I and Q multipliers reproduces the paper's
/// layout-imbalance sideband.
class Multiplier final : public Device {
 public:
  Multiplier(std::string name, int outPlus, int outMinus, int aPlus,
             int aMinus, int bPlus, int bMinus, Real gain);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;

 private:
  int op_, om_, ap_, am_, bp_, bm_;
  Real k_;
};

/// Nonlinear polynomial conductance i = g1·v + g3·v³ between two nodes.
/// A compact stand-in for weakly nonlinear blocks in HB/MPDE tests
/// (two-tone intermodulation has a closed-form answer for this device).
class CubicConductance final : public Device {
 public:
  CubicConductance(std::string name, int n1, int n2, Real g1, Real g3);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;

 private:
  int n1_, n2_;
  Real g1_, g3_;
};

}  // namespace rfic::circuit
