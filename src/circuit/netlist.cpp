#include "circuit/netlist.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "circuit/devices.hpp"
#include "circuit/semiconductors.hpp"
#include "circuit/sources.hpp"

namespace rfic::circuit {

namespace {

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Tokenize a card, treating '(' ')' '=' ',' as separators but keeping
// function-style groups attached: "SIN(0 1 1k)" -> "sin" "(" "0" "1" "1k" ")".
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      toks.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
    } else if (c == '(' || c == ')' || c == '=') {
      flush();
      toks.emplace_back(1, c);
    } else {
      cur += c;
    }
  }
  flush();
  return toks;
}

struct ModelCard {
  std::string type;  // "d", "npn", "pnp", "nmos", "pmos"
  std::map<std::string, Real> params;
};

Real getParam(const ModelCard& m, const std::string& key, Real dflt) {
  const auto it = m.params.find(key);
  return it == m.params.end() ? dflt : it->second;
}

class Parser {
 public:
  Parser(const std::string& text, Circuit& ckt) : ckt_(ckt) {
    std::istringstream in(text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
      // Strip comments before joining so a trailing ';' comment cannot
      // swallow a '+' continuation.
      line = stripComment(line);
      if (!line.empty() && line[0] == '+' && !lines.empty()) {
        lines.back() += " " + line.substr(1);
      } else {
        lines.push_back(line);
      }
    }
    // Two passes: models first so element cards can reference them in any
    // order. Every per-card parse — including nested throws from
    // parseSpiceNumber and device-constructor validation — is converted to
    // a structured NetlistError carrying the line number and card text, so
    // no malformed input can escape as an unlocated exception.
    int num = 0;
    for (const auto& l : lines) {
      ++num;
      const auto toks = tokenize(stripComment(l));
      if (toks.empty()) continue;
      if (lower(toks[0]) == ".model") guarded(num, l, [&] { parseModel(toks, num); });
    }
    num = 0;
    for (const auto& l : lines) {
      ++num;
      const auto toks = tokenize(stripComment(l));
      if (toks.empty()) continue;
      const std::string head = lower(toks[0]);
      if (head[0] == '.' || head[0] == '*') continue;
      guarded(num, l, [&] { parseElement(toks, num); });
    }
  }

 private:
  static std::string stripComment(const std::string& l) {
    if (!l.empty() && (l[0] == '*')) return {};
    const auto pos = l.find(';');
    return pos == std::string::npos ? l : l.substr(0, pos);
  }

  /// Run one card's parse; rethrow anything that is not already a
  /// NetlistError as one, attaching this card's location and text.
  template <class F>
  void guarded(int lineNum, const std::string& cardText, F&& f) {
    curCard_ = &cardText;
    try {
      f();
    } catch (const NetlistError&) {
      curCard_ = nullptr;
      throw;
    } catch (const std::exception& e) {
      curCard_ = nullptr;
      throw NetlistError(lineNum, cardText, e.what());
    }
    curCard_ = nullptr;
  }

  [[noreturn]] void fail(int lineNum, const std::string& msg) const {
    throw NetlistError(lineNum, curCard_ != nullptr ? *curCard_ : std::string(),
                       msg);
  }

  void parseModel(const std::vector<std::string>& toks, int lineNum) {
    if (toks.size() < 3) fail(lineNum, ".model needs a name and a type");
    ModelCard m;
    m.type = lower(toks[2]);
    // Parameters appear as NAME = VALUE triples (with '(' ')' noise).
    for (std::size_t i = 3; i + 2 < toks.size(); ++i) {
      if (toks[i] == "(" || toks[i] == ")") continue;
      if (toks[i + 1] == "=") {
        m.params[lower(toks[i])] = parseSpiceNumber(toks[i + 2]);
        i += 2;
      }
    }
    models_[lower(toks[1])] = std::move(m);
  }

  const ModelCard& findModel(const std::string& name, int lineNum) const {
    const auto it = models_.find(lower(name));
    if (it == models_.end()) fail(lineNum, "unknown model " + name);
    return it->second;
  }

  std::shared_ptr<const Waveform> parseWaveform(
      const std::vector<std::string>& toks, std::size_t first, int lineNum,
      TimeAxis& axis) const {
    axis = TimeAxis::slow;
    // Scan for AXIS=FAST anywhere in the tail.
    for (std::size_t i = first; i + 2 < toks.size(); ++i) {
      if (lower(toks[i]) == "axis" && toks[i + 1] == "=" &&
          lower(toks[i + 2]) == "fast") {
        axis = TimeAxis::fast;
      }
    }
    if (first >= toks.size()) return std::make_shared<DCWave>(0.0);
    const std::string kind = lower(toks[first]);
    auto args = [&](std::size_t count, std::size_t optional) {
      std::vector<Real> vals;
      std::size_t i = first + 1;
      if (i < toks.size() && toks[i] == "(") ++i;
      while (i < toks.size() && toks[i] != ")" && vals.size() < count + optional) {
        if (lower(toks[i]) == "axis") break;
        vals.push_back(parseSpiceNumber(toks[i]));
        ++i;
      }
      if (vals.size() < count)
        fail(lineNum, "waveform " + kind + " needs at least " +
                          std::to_string(count) + " arguments");
      return vals;
    };
    if (kind == "dc") {
      const auto v = args(1, 0);
      return std::make_shared<DCWave>(v[0]);
    }
    if (kind == "sin") {
      const auto v = args(3, 1);  // offset amp freq [phaseDeg]
      const Real ph = v.size() > 3 ? v[3] * kPi / 180.0 : 0.0;
      return std::make_shared<SineWave>(v[1], v[2], ph, v[0]);
    }
    if (kind == "pulse") {
      const auto v = args(7, 0);
      return std::make_shared<PulseWave>(v[0], v[1], v[2], v[3], v[4], v[5],
                                         v[6]);
    }
    if (kind == "square") {
      const auto v = args(3, 1);  // low high freq [riseFrac]
      return std::make_shared<SquareWave>(v[0], v[1], v[2],
                                          v.size() > 3 ? v[3] : 0.05);
    }
    if (kind == "multitone") {
      const auto v = args(2, 64);
      RFIC_REQUIRE(v.size() % 2 == 0,
                   "multitone expects (amp freq) pairs");
      std::vector<MultiToneWave::Tone> tones;
      for (std::size_t i = 0; i < v.size(); i += 2)
        tones.push_back({v[i], v[i + 1], 0.0});
      return std::make_shared<MultiToneWave>(std::move(tones));
    }
    // Bare number => DC.
    return std::make_shared<DCWave>(parseSpiceNumber(toks[first]));
  }

  void parseElement(const std::vector<std::string>& toks, int lineNum) {
    const std::string& name = toks[0];
    const char kind =
        static_cast<char>(std::tolower(static_cast<unsigned char>(name[0])));
    auto node = [&](std::size_t i) -> int {
      if (i >= toks.size()) fail(lineNum, "missing node on " + name);
      return ckt_.node(toks[i]);
    };
    switch (kind) {
      case 'r': {
        if (toks.size() < 4) fail(lineNum, "R needs 2 nodes and a value");
        ckt_.add<Resistor>(name, node(1), node(2), parseSpiceNumber(toks[3]));
        break;
      }
      case 'c': {
        if (toks.size() < 4) fail(lineNum, "C needs 2 nodes and a value");
        ckt_.add<Capacitor>(name, node(1), node(2), parseSpiceNumber(toks[3]));
        break;
      }
      case 'l': {
        if (toks.size() < 4) fail(lineNum, "L needs 2 nodes and a value");
        const int br = ckt_.allocBranch(name);
        auto& ind = ckt_.add<Inductor>(name, node(1), node(2), br,
                                       parseSpiceNumber(toks[3]));
        inductors_[lower(name)] = &ind;
        break;
      }
      case 'k': {
        if (toks.size() < 4) fail(lineNum, "K needs 2 inductors and k");
        const auto l1 = inductors_.find(lower(toks[1]));
        const auto l2 = inductors_.find(lower(toks[2]));
        if (l1 == inductors_.end() || l2 == inductors_.end())
          fail(lineNum, "K references unknown inductor");
        ckt_.add<MutualInductance>(name, *l1->second, *l2->second,
                                   parseSpiceNumber(toks[3]));
        break;
      }
      case 'v': {
        const int np = node(1), nm = node(2);
        TimeAxis axis;
        auto w = parseWaveform(toks, 3, lineNum, axis);
        const int br = ckt_.allocBranch(name);
        vsourceBranches_[lower(name)] = br;
        ckt_.add<VSource>(name, np, nm, br, std::move(w), axis);
        break;
      }
      case 'i': {
        const int np = node(1), nm = node(2);
        TimeAxis axis;
        auto w = parseWaveform(toks, 3, lineNum, axis);
        ckt_.add<ISource>(name, np, nm, std::move(w), axis);
        break;
      }
      case 'f': {
        if (toks.size() < 5) fail(lineNum, "F needs 2 nodes, a Vname, gain");
        const int op = node(1), om = node(2);
        const auto it = vsourceBranches_.find(lower(toks[3]));
        if (it == vsourceBranches_.end())
          fail(lineNum, "F references unknown V source " + toks[3]);
        ckt_.add<CCCS>(name, op, om, it->second,
                       parseSpiceNumber(toks[4]));
        break;
      }
      case 'h': {
        if (toks.size() < 5) fail(lineNum, "H needs 2 nodes, a Vname, ohms");
        const int op = node(1), om = node(2);
        const auto it = vsourceBranches_.find(lower(toks[3]));
        if (it == vsourceBranches_.end())
          fail(lineNum, "H references unknown V source " + toks[3]);
        const int br = ckt_.allocBranch(name);
        ckt_.add<CCVS>(name, op, om, it->second, br,
                       parseSpiceNumber(toks[4]));
        break;
      }
      case 'e': {
        if (toks.size() < 6) fail(lineNum, "E needs 4 nodes and a gain");
        const int op = node(1), om = node(2), cp = node(3), cm = node(4);
        const int br = ckt_.allocBranch(name);
        ckt_.add<VCVS>(name, op, om, cp, cm, br, parseSpiceNumber(toks[5]));
        break;
      }
      case 'g': {
        if (toks.size() < 6) fail(lineNum, "G needs 4 nodes and a gm");
        ckt_.add<VCCS>(name, node(1), node(2), node(3), node(4),
                       parseSpiceNumber(toks[5]));
        break;
      }
      case 'd': {
        if (toks.size() < 4) fail(lineNum, "D needs 2 nodes and a model");
        const ModelCard& m = findModel(toks[3], lineNum);
        Diode::Params p;
        p.is = getParam(m, "is", p.is);
        p.n = getParam(m, "n", p.n);
        p.cj0 = getParam(m, "cjo", getParam(m, "cj0", p.cj0));
        p.vj = getParam(m, "vj", p.vj);
        p.m = getParam(m, "m", p.m);
        p.tt = getParam(m, "tt", p.tt);
        p.kf = getParam(m, "kf", p.kf);
        p.af = getParam(m, "af", p.af);
        ckt_.add<Diode>(name, node(1), node(2), p);
        break;
      }
      case 'q': {
        if (toks.size() < 5) fail(lineNum, "Q needs c b e and a model");
        const ModelCard& m = findModel(toks[4], lineNum);
        BJT::Params p;
        p.is = getParam(m, "is", p.is);
        p.bf = getParam(m, "bf", p.bf);
        p.br = getParam(m, "br", p.br);
        p.vaf = getParam(m, "vaf", p.vaf);
        p.cje = getParam(m, "cje", p.cje);
        p.cjc = getParam(m, "cjc", p.cjc);
        p.tf = getParam(m, "tf", p.tf);
        p.tr = getParam(m, "tr", p.tr);
        p.kf = getParam(m, "kf", p.kf);
        p.af = getParam(m, "af", p.af);
        const auto type = (m.type == "pnp") ? BJT::Type::pnp : BJT::Type::npn;
        ckt_.add<BJT>(name, node(1), node(2), node(3), p, type);
        break;
      }
      case 'm': {
        if (toks.size() < 5) fail(lineNum, "M needs d g s and a model");
        const ModelCard& m = findModel(toks[4], lineNum);
        MOSFET::Params p;
        p.vt0 = getParam(m, "vto", getParam(m, "vt0", p.vt0));
        p.kp = getParam(m, "kp", p.kp);
        p.lambda = getParam(m, "lambda", p.lambda);
        p.cgs = getParam(m, "cgs", p.cgs);
        p.cgd = getParam(m, "cgd", p.cgd);
        p.kf = getParam(m, "kf", p.kf);
        p.af = getParam(m, "af", p.af);
        const auto type =
            (m.type == "pmos") ? MOSFET::Type::pmos : MOSFET::Type::nmos;
        ckt_.add<MOSFET>(name, node(1), node(2), node(3), p, type);
        break;
      }
      default:
        fail(lineNum, "unsupported element " + name);
    }
  }

  Circuit& ckt_;
  const std::string* curCard_ = nullptr;  ///< card under parse (for fail())
  std::map<std::string, ModelCard> models_;
  std::map<std::string, const Inductor*> inductors_;
  std::map<std::string, int> vsourceBranches_;
};

}  // namespace

namespace {
std::string renderNetlistError(int line, const std::string& card,
                               const std::string& detail) {
  std::string msg = "netlist line " + std::to_string(line) + ": " + detail;
  if (!card.empty()) msg += " [card: " + card + "]";
  return msg;
}
}  // namespace

NetlistError::NetlistError(int line, std::string card, std::string detail)
    : InvalidArgument(renderNetlistError(line, card, detail)),
      line_(line),
      card_(std::move(card)),
      detail_(std::move(detail)) {}

Real parseSpiceNumber(const std::string& token) {
  RFIC_REQUIRE(!token.empty(), "parseSpiceNumber: empty token");
  const char* begin = token.c_str();
  char* end = nullptr;
  Real v = std::strtod(begin, &end);
  if (end == begin) failInvalid("parseSpiceNumber: bad number " + token);
  const std::string suffix = lower(end);
  if (suffix.empty()) return v;
  if (suffix.rfind("meg", 0) == 0) return v * 1e6;
  switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default: return v;  // trailing units like "ohm", "v", "hz"
  }
}

void parseNetlist(const std::string& text, Circuit& ckt) {
  Parser parser(text, ckt);
}

}  // namespace rfic::circuit
