#include "circuit/mna_workspace.hpp"

#include <algorithm>

#include "diag/resilience.hpp"

namespace rfic::circuit {

// First-time pattern discovery: one triplet-mode evaluation at the caller's
// point, unioned with the diagonal (analyses add gshunt/gDiag terms there,
// and a structurally present diagonal keeps the factorization robust).
void MnaWorkspace::ensurePattern(const RVec& x, Real t1, Real t2,
                                 const RVec* xPrev) {
  if (pattern_.rows() == n_ && n_ > 0) return;
  MnaEval e;
  sys_.evalBivariate(x, t1, t2, e, true, xPrev);
  sparse::RTriplets u(n_, n_);
  for (const auto& en : e.G.entries()) u.add(en.row, en.col, 0.0);
  for (const auto& en : e.C.entries()) u.add(en.row, en.col, 0.0);
  for (std::size_t i = 0; i < n_; ++i) u.add(i, i, 0.0);
  pattern_ = sparse::RCSR(u);
  ++patternVersion_;
  luPatternCurrent_ = false;

  diagSlot_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto& rp = pattern_.rowPtr();
    const auto& ci = pattern_.colIdx();
    std::size_t lo = rp[i], hi = rp[i + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    diagSlot_[i] = lo;
  }

  gVals_.assign(pattern_.nnz(), 0.0);
  cVals_.assign(pattern_.nnz(), 0.0);
  gOv_.reset(n_, n_);
  cOv_.reset(n_, n_);
  // Memory budget: pattern discovery is this workspace's dominant
  // allocation — charge the CSR index arrays, both value arrays, and the
  // diagonal slot map against the owning job's account (no-op without one).
  diag::memCharge(pattern_.nnz() * (2 * sizeof(Real) + sizeof(std::size_t)) +
                  (2 * n_ + 1) * sizeof(std::size_t));
}

// A device stamped a position outside the cached pattern (conditional
// stamps — e.g. a diode whose junction capacitance was zero during
// discovery). Union the misses into the pattern; the caller re-evaluates.
void MnaWorkspace::growPattern() {
  sparse::RTriplets u(n_, n_);
  const auto& rp = pattern_.rowPtr();
  const auto& ci = pattern_.colIdx();
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) u.add(r, ci[p], 0.0);
  for (const auto& en : gOv_.entries()) u.add(en.row, en.col, 0.0);
  for (const auto& en : cOv_.entries()) u.add(en.row, en.col, 0.0);
  pattern_ = sparse::RCSR(u);
  ++patternVersion_;
  luPatternCurrent_ = false;

  diagSlot_.assign(n_, 0);
  const auto& rp2 = pattern_.rowPtr();
  const auto& ci2 = pattern_.colIdx();
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t lo = rp2[i], hi = rp2[i + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci2[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    diagSlot_[i] = lo;
  }

  gVals_.assign(pattern_.nnz(), 0.0);
  cVals_.assign(pattern_.nnz(), 0.0);
  // Memory budget: a grown pattern is a fresh allocation of the same
  // shape as ensurePattern's — charge it in full (charge-only contract).
  diag::memCharge(pattern_.nnz() * (2 * sizeof(Real) + sizeof(std::size_t)) +
                  (2 * n_ + 1) * sizeof(std::size_t));
}

void MnaWorkspace::evalBivariate(const RVec& x, Real t1, Real t2,
                                 bool wantMatrices, const RVec* xPrev) {
  RFIC_REQUIRE(x.size() == n_, "MnaWorkspace::eval: state size mismatch");
  const perf::Timer timer;

  if (!wantMatrices) {
    // Vector-only evaluation needs no pattern machinery.
    f_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite — the
                         // buffers hold n_ entries after the first call
    q_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    b_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    Stamp s(f_, q_, b_, nullptr, nullptr, t1, t2);
    for (const auto& dev : sys_.circuit().devices()) dev->stamp(x, xPrev, s);
    const auto ns = timer.ns();
    counters_.addEval(ns);
    perf::global().addEval(ns);
    return;
  }

  // rt: allow(rt-alloc) first-call pattern discovery — early-returns once
  // the pattern exists, so steady-state iterations never enter it
  ensurePattern(x, t1, t2, xPrev);
  for (;;) {
    f_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    q_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    b_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    std::fill(gVals_.begin(), gVals_.end(), 0.0);
    std::fill(cVals_.begin(), cVals_.end(), 0.0);
    gOv_.reset(n_, n_);
    cOv_.reset(n_, n_);

    Stamp::PatternTarget pt;
    pt.pattern = &pattern_;
    pt.gVals = &gVals_;
    pt.cVals = &cVals_;
    pt.gOverflow = &gOv_;
    pt.cOverflow = &cOv_;
    Stamp s(f_, q_, b_, pt, t1, t2);
    for (const auto& dev : sys_.circuit().devices()) dev->stamp(x, xPrev, s);

    if (gOv_.entries().empty() && cOv_.entries().empty()) break;
    // rt: allow(rt-alloc) self-healing pattern growth — taken only when a
    // device stamps a position outside the cached pattern (rare, and each
    // growth is permanent, so the path is visited a bounded number of times)
    growPattern();
  }
  const auto ns = timer.ns();
  counters_.addEval(ns);
  perf::global().addEval(ns);
}

diag::SolverStatus MnaWorkspace::factorJacobian(Real cCoeff, Real gCoeff,
                                                Real gDiag) {
  RFIC_REQUIRE(pattern_.rows() == n_,
               "MnaWorkspace::factorJacobian before matrix evaluation");
  const std::size_t nnz = pattern_.nnz();
  if (jVals_.size() < nnz)
    diag::memCharge((nnz - jVals_.size()) * sizeof(Real));
  jVals_.resize(nnz);  // rt: allow(rt-alloc) grow-once — nnz only changes
                       // when the pattern grows
  for (std::size_t p = 0; p < nnz; ++p)
    jVals_[p] = cCoeff * cVals_[p] + gCoeff * gVals_[p];
  if (gDiag != 0.0)  // lint: allow-float-eq (exact sentinel for "no shunt")
    for (std::size_t i = 0; i < n_; ++i) jVals_[diagSlot_[i]] += gDiag;

  const perf::Timer timer;
  // !lu_.analyzed() covers a previous factorization attempt that threw on a
  // singular matrix: the workspace pattern is still current, but the LU
  // holds no usable program to replay.
  if (!luPatternCurrent_ || !lu_.analyzed()) {
    sparse::RCSR j = pattern_;
    j.values() = jVals_;
    lu_.factor(j);
    luPatternCurrent_ = true;
    const auto ns = timer.ns();
    counters_.addFactorization(ns);
    perf::global().addFactorization(ns);
    return diag::SolverStatus::Converged;
  }
  const diag::SolverStatus st = lu_.refactor(jVals_);
  const auto ns = timer.ns();
  if (st == diag::SolverStatus::Converged) {
    counters_.addRefactorization(ns);
    perf::global().addRefactorization(ns);
  } else {
    // Repivoted: a full factorization ran under the hood.
    counters_.addFactorization(ns);
    perf::global().addFactorization(ns);
  }
  return st;
}

RVec MnaWorkspace::solve(const RVec& rhs) {
  const perf::Timer timer;
  RVec x = lu_.solve(rhs);
  const auto ns = timer.ns();
  counters_.addSolve(ns);
  perf::global().addSolve(ns);
  return x;
}

RFIC_REALTIME void MnaWorkspace::solve(const RVec& rhs, RVec& x) {
  const perf::Timer timer;
  lu_.solve(rhs, x, solveY_, solveZ_);
  const auto ns = timer.ns();
  counters_.addSolve(ns);
  perf::global().addSolve(ns);
}

}  // namespace rfic::circuit
