#include "circuit/mna_workspace.hpp"

#include <algorithm>
#include <atomic>

#include "diag/resilience.hpp"

namespace rfic::circuit {

namespace {
// Process-wide default for new workspaces; `rficsim --no-batch-eval` and
// the daemon flip it at startup, tests flip it per-case.
std::atomic<bool> gBatchedDefault{true};
}  // namespace

void MnaWorkspace::setBatchedEvalDefault(bool on) {
  gBatchedDefault.store(on, std::memory_order_relaxed);
}

bool MnaWorkspace::batchedEvalDefault() {
  return gBatchedDefault.load(std::memory_order_relaxed);
}

// First-time pattern discovery: one triplet-mode evaluation at the caller's
// point, unioned with the diagonal (analyses add gshunt/gDiag terms there,
// and a structurally present diagonal keeps the factorization robust).
void MnaWorkspace::ensurePattern(const RVec& x, Real t1, Real t2,
                                 const RVec* xPrev) {
  if (pattern_.rows() == n_ && n_ > 0) return;
  MnaEval e;
  sys_.evalBivariate(x, t1, t2, e, true, xPrev);
  sparse::RTriplets u(n_, n_);
  for (const auto& en : e.G.entries()) u.add(en.row, en.col, 0.0);
  for (const auto& en : e.C.entries()) u.add(en.row, en.col, 0.0);
  for (std::size_t i = 0; i < n_; ++i) u.add(i, i, 0.0);
  pattern_ = sparse::RCSR(u);
  ++patternVersion_;
  luPatternCurrent_ = false;

  diagSlot_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto& rp = pattern_.rowPtr();
    const auto& ci = pattern_.colIdx();
    std::size_t lo = rp[i], hi = rp[i + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    diagSlot_[i] = lo;
  }

  gVals_.assign(pattern_.nnz(), 0.0);
  cVals_.assign(pattern_.nnz(), 0.0);
  gOv_.reset(n_, n_);
  cOv_.reset(n_, n_);
  ++growth_;
  // Memory budget: pattern discovery is this workspace's dominant
  // allocation — charge the CSR index arrays, both value arrays, and the
  // diagonal slot map against the owning job's account (no-op without one).
  diag::memCharge(pattern_.nnz() * (2 * sizeof(Real) + sizeof(std::size_t)) +
                  (2 * n_ + 1) * sizeof(std::size_t));
}

// A device stamped a position outside the cached pattern (conditional
// stamps — e.g. a diode whose junction capacitance was zero during
// discovery). Union the misses into the pattern; the caller re-evaluates.
void MnaWorkspace::growPattern() {
  sparse::RTriplets u(n_, n_);
  const auto& rp = pattern_.rowPtr();
  const auto& ci = pattern_.colIdx();
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) u.add(r, ci[p], 0.0);
  for (const auto& en : gOv_.entries()) u.add(en.row, en.col, 0.0);
  for (const auto& en : cOv_.entries()) u.add(en.row, en.col, 0.0);
  pattern_ = sparse::RCSR(u);
  ++patternVersion_;
  luPatternCurrent_ = false;

  diagSlot_.assign(n_, 0);
  const auto& rp2 = pattern_.rowPtr();
  const auto& ci2 = pattern_.colIdx();
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t lo = rp2[i], hi = rp2[i + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci2[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    diagSlot_[i] = lo;
  }

  gVals_.assign(pattern_.nnz(), 0.0);
  cVals_.assign(pattern_.nnz(), 0.0);
  ++growth_;
  // Memory budget: a grown pattern is a fresh allocation of the same
  // shape as ensurePattern's — charge it in full (charge-only contract).
  diag::memCharge(pattern_.nnz() * (2 * sizeof(Real) + sizeof(std::size_t)) +
                  (2 * n_ + 1) * sizeof(std::size_t));
}

// (Re)compile the SoA device batch against the current pattern. The compile
// is itself an allocation event — it happens once per pattern version, never
// in steady state, and its footprint is charged like the pattern's.
void MnaWorkspace::maybeCompileBatch(const RVec& x, const RVec* xPrev, Real t1,
                                     Real t2) {
  if (!batched_) return;
  if (batch_.compiled() && batchVersion_ == patternVersion_) return;
  // rt: allow(rt-alloc) once-per-pattern-version batch compile
  batch_.compile(sys_.circuit(), pattern_, n_, x, xPrev, t1, t2);
  batchVersion_ = patternVersion_;
  ++growth_;
  diag::memCharge(batch_.bytes());
}

void MnaWorkspace::evalBivariate(const RVec& x, Real t1, Real t2,
                                 bool wantMatrices, const RVec* xPrev) {
  RFIC_REQUIRE(x.size() == n_, "MnaWorkspace::eval: state size mismatch");
  const perf::Timer timer;

  if (!wantMatrices) {
    // Vector-only evaluation needs no pattern machinery. A stale batch (older
    // pattern version) is fine here: f/q/b assembly never touches CSR slots.
    f_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite — the
                         // buffers hold n_ entries after the first call
    q_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    b_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    Stamp s(f_, q_, b_, nullptr, nullptr, t1, t2);
    const bool useBatch = batched_ && batch_.compiled();
    if (useBatch) {
      batch_.eval(x, xPrev, s, nullptr, nullptr, scratch_, nullptr);
    } else {
      for (const auto& dev : sys_.circuit().devices()) dev->stamp(x, xPrev, s);
    }
    const auto ns = timer.ns();
    if (useBatch) {
      counters_.addEvalBatch(1, ns);
      perf::global().addEvalBatch(1, ns);
    } else {
      counters_.addEval(ns);
      perf::global().addEval(ns);
    }
    return;
  }

  // rt: allow(rt-alloc) first-call pattern discovery — early-returns once
  // the pattern exists, so steady-state iterations never enter it
  ensurePattern(x, t1, t2, xPrev);
  maybeCompileBatch(x, xPrev, t1, t2);
  const bool useBatch = batched_ && batch_.compiled();
  for (;;) {
    f_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    q_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    b_.assign(n_, 0.0);  // rt: allow(rt-alloc) same-size overwrite
    gOv_.reset(n_, n_);
    cOv_.reset(n_, n_);

    Stamp::PatternTarget pt;
    pt.pattern = &pattern_;
    pt.gVals = &gVals_;
    pt.cVals = &cVals_;
    pt.gOverflow = &gOv_;
    pt.cOverflow = &cOv_;
    Stamp s(f_, q_, b_, pt, t1, t2);
    if (useBatch) {
      // The batch prefills gVals_/cVals_ with the constant linear template
      // (same-size assign), so the zero-fill is skipped on this path.
      batch_.eval(x, xPrev, s, &gVals_, &cVals_, scratch_, nullptr);
    } else {
      std::fill(gVals_.begin(), gVals_.end(), 0.0);
      std::fill(cVals_.begin(), cVals_.end(), 0.0);
      for (const auto& dev : sys_.circuit().devices()) dev->stamp(x, xPrev, s);
    }

    if (gOv_.entries().empty() && cOv_.entries().empty()) break;
    // rt: allow(rt-alloc) self-healing pattern growth — taken only when a
    // device stamps a position outside the cached pattern (rare, and each
    // growth is permanent, so the path is visited a bounded number of times)
    growPattern();
    maybeCompileBatch(x, xPrev, t1, t2);
  }
  const auto ns = timer.ns();
  if (useBatch) {
    counters_.addEvalBatch(1, ns);
    perf::global().addEvalBatch(1, ns);
  } else {
    counters_.addEval(ns);
    perf::global().addEval(ns);
  }
}

void MnaWorkspace::evalSamples(const numeric::RMat& xs, const Real* t1,
                               const Real* t2, bool wantMatrices,
                               numeric::RMat& fS, numeric::RMat& qS,
                               numeric::RMat& bS,
                               std::vector<std::vector<Real>>* gOut,
                               std::vector<std::vector<Real>>* cOut) {
  const std::size_t S = xs.cols();
  RFIC_REQUIRE(xs.rows() == n_, "MnaWorkspace::evalSamples: state dim");
  RFIC_REQUIRE(fS.rows() == n_ && fS.cols() >= S && qS.rows() == n_ &&
                   qS.cols() >= S && bS.rows() == n_ && bS.cols() >= S,
               "MnaWorkspace::evalSamples: result shape");
  RFIC_REQUIRE(!wantMatrices || (gOut != nullptr && cOut != nullptr &&
                                 gOut->size() >= S && cOut->size() >= S),
               "MnaWorkspace::evalSamples: matrix outputs required");
  if (S == 0) return;
  const perf::Timer timer;

  // Fixed lane count: each lane owns a contiguous chunk of samples, and
  // samples are mutually independent, so the results are bitwise identical
  // whether the chunks run serially or across a pool of any size.
  const std::size_t lanes = std::min<std::size_t>(
      S, sweepPool_ != nullptr ? sweepPool_->concurrency() : 1);
  if (lanes_.size() < lanes) {
    lanes_.resize(lanes);  // rt: allow(rt-alloc) grow-once lane pool
    ++growth_;
  }
  for (std::size_t k = 0; k < lanes; ++k) {
    SweepLane& ln = lanes_[k];
    if (ln.x.size() != n_) {
      ln.x.assign(n_, 0.0);  // rt: allow(rt-alloc) grow-once lane buffers
      ln.f.assign(n_, 0.0);  // rt: allow(rt-alloc) grow-once lane buffers
      ln.q.assign(n_, 0.0);  // rt: allow(rt-alloc) grow-once lane buffers
      ln.b.assign(n_, 0.0);  // rt: allow(rt-alloc) grow-once lane buffers
      ln.gOv.reset(n_, n_);
      ln.cOv.reset(n_, n_);
      ++growth_;
      diag::memCharge(4 * n_ * sizeof(Real));
    }
  }

  const std::size_t colS = xs.cols();
  const auto gather = [&](SweepLane& ln, std::size_t s) {
    const Real* xp = xs.data() + s;
    for (std::size_t u = 0; u < n_; ++u, xp += colS) ln.x[u] = *xp;
  };

  if (wantMatrices) {
    gather(lanes_[0], 0);
    // rt: allow(rt-alloc) first-call pattern discovery
    ensurePattern(lanes_[0].x, t1[0], t2[0], nullptr);
    maybeCompileBatch(lanes_[0].x, nullptr, t1[0], t2[0]);
  }
  const bool useBatch = batched_ && batch_.compiled() &&
                        (!wantMatrices || batchVersion_ == patternVersion_);

  // Waveform-value cache: source evaluations depend only on the sample
  // times, which are fixed for a given HB/shooting grid — compute them once
  // and reuse across every Newton iteration of the pass.
  const std::size_t nw = useBatch ? batch_.numWaveforms() : 0;
  const Real* wv = nullptr;
  if (nw > 0) {
    const bool stale =
        waveVersion_ != batchVersion_ || waveT1_.size() != S ||
        !std::equal(waveT1_.begin(), waveT1_.end(), t1) ||
        !std::equal(waveT2_.begin(), waveT2_.end(), t2);
    if (stale) {
      if (waveVals_.size() != S * nw) {
        ++growth_;
        diag::memCharge((S * nw + 2 * S) * sizeof(Real));
      }
      waveVals_.resize(S * nw);  // rt: allow(rt-alloc) grow-once wave cache
      waveT1_.assign(t1, t1 + S);  // rt: allow(rt-alloc) grow-once wave cache
      waveT2_.assign(t2, t2 + S);  // rt: allow(rt-alloc) grow-once wave cache
      for (std::size_t s = 0; s < S; ++s)
        batch_.evalWaveforms(t1[s], t2[s], waveVals_.data() + s * nw);
      waveVersion_ = batchVersion_;
    }
    wv = waveVals_.data();
  }

  const std::size_t chunk = (S + lanes - 1) / lanes;
  for (;;) {
    const auto runLane = [&](std::size_t k) {
      SweepLane& ln = lanes_[k];
      ln.overflowed = false;
      const std::size_t lo = k * chunk;
      const std::size_t hi = std::min(S, lo + chunk);
      const bool blockVec =
          useBatch && !wantMatrices && !batch_.hasGenericOps();
      for (std::size_t cs = lo; cs < hi; cs += DeviceBatch::kSweepChunk) {
        const std::size_t cn = std::min(DeviceBatch::kSweepChunk, hi - cs);
        // Sample-major kernel phase for the block, then per-sample assembly
        // (blocking is invisible in the results: every (instance, sample)
        // output is an independent kernel call either way).
        if (useBatch) batch_.evalKernelsSweep(xs, cs, cn, wantMatrices, ln.sweep);
        if (blockVec) {
          // Vector-only, all-compiled circuit: assemble the whole block
          // straight into the result rows — no lane buffers, no Stamp.
          batch_.assembleSweepVec(xs, cs, cn, fS, qS, bS, ln.sweep, wv, nw,
                                  t1, t2);
          continue;
        }
        for (std::size_t j = 0; j < cn; ++j) {
          const std::size_t s = cs + j;
          gather(ln, s);
          ln.f.setZero();
          ln.q.setZero();
          ln.b.setZero();
          if (wantMatrices) {
            if (!ln.gOv.entries().empty()) ln.gOv.reset(n_, n_);
            if (!ln.cOv.entries().empty()) ln.cOv.reset(n_, n_);
            Stamp::PatternTarget pt;
            pt.pattern = &pattern_;
            pt.gVals = &(*gOut)[s];
            pt.cVals = &(*cOut)[s];
            pt.gOverflow = &ln.gOv;
            pt.cOverflow = &ln.cOv;
            Stamp st(ln.f, ln.q, ln.b, pt, t1[s], t2[s]);
            if (useBatch) {
              batch_.assemble(ln.x, st, pt.gVals, pt.cVals, ln.sweep, j,
                              wv != nullptr ? wv + s * nw : nullptr);
            } else {
              // rt: allow(rt-alloc) same-size overwrite after first sweep
              (*gOut)[s].assign(pattern_.nnz(), 0.0);
              // rt: allow(rt-alloc) same-size overwrite after first sweep
              (*cOut)[s].assign(pattern_.nnz(), 0.0);
              for (const auto& dev : sys_.circuit().devices())
                dev->stamp(ln.x, nullptr, st);
            }
            if (!ln.gOv.entries().empty() || !ln.cOv.entries().empty())
              ln.overflowed = true;
          } else {
            Stamp st(ln.f, ln.q, ln.b, nullptr, nullptr, t1[s], t2[s]);
            if (useBatch) {
              batch_.assemble(ln.x, st, nullptr, nullptr, ln.sweep, j,
                              wv != nullptr ? wv + s * nw : nullptr);
            } else {
              for (const auto& dev : sys_.circuit().devices())
                dev->stamp(ln.x, nullptr, st);
            }
          }
          Real* fp = fS.data() + s;
          Real* qp = qS.data() + s;
          Real* bp = bS.data() + s;
          const std::size_t fCols = fS.cols(), qCols = qS.cols(),
                            bCols = bS.cols();
          for (std::size_t u = 0; u < n_; ++u) {
            *fp = ln.f[u];
            *qp = ln.q[u];
            *bp = ln.b[u];
            fp += fCols;
            qp += qCols;
            bp += bCols;
          }
        }
      }
    };
    if (sweepPool_ != nullptr && lanes > 1) {
      sweepPool_->parallelFor(lanes, runLane, 1);
    } else {
      for (std::size_t k = 0; k < lanes; ++k) runLane(k);
    }

    bool overflow = false;
    for (std::size_t k = 0; k < lanes; ++k) overflow |= lanes_[k].overflowed;
    if (!overflow) break;

    // rt: allow(rt-alloc) self-healing pattern growth — merge every lane's
    // misses, grow once, recompile the batch, and restart the sweep so all
    // samples see the same (final) pattern
    gOv_.reset(n_, n_);
    cOv_.reset(n_, n_);
    for (std::size_t k = 0; k < lanes; ++k) {
      for (const auto& en : lanes_[k].gOv.entries())
        gOv_.add(en.row, en.col, 0.0);
      for (const auto& en : lanes_[k].cOv.entries())
        cOv_.add(en.row, en.col, 0.0);
    }
    growPattern();
    gather(lanes_[0], 0);
    maybeCompileBatch(lanes_[0].x, nullptr, t1[0], t2[0]);
  }

  const auto ns = timer.ns();
  if (useBatch) {
    counters_.addEvalBatch(S, ns);
    perf::global().addEvalBatch(S, ns);
  } else {
    counters_.addEvals(S, ns);
    perf::global().addEvals(S, ns);
  }
}

diag::SolverStatus MnaWorkspace::factorJacobian(Real cCoeff, Real gCoeff,
                                                Real gDiag) {
  RFIC_REQUIRE(pattern_.rows() == n_,
               "MnaWorkspace::factorJacobian before matrix evaluation");
  const std::size_t nnz = pattern_.nnz();
  if (jVals_.size() < nnz)
    diag::memCharge((nnz - jVals_.size()) * sizeof(Real));
  jVals_.resize(nnz);  // rt: allow(rt-alloc) grow-once — nnz only changes
                       // when the pattern grows
  for (std::size_t p = 0; p < nnz; ++p)
    jVals_[p] = cCoeff * cVals_[p] + gCoeff * gVals_[p];
  if (gDiag != 0.0)  // lint: allow-float-eq (exact sentinel for "no shunt")
    for (std::size_t i = 0; i < n_; ++i) jVals_[diagSlot_[i]] += gDiag;

  lu_.setPool(sweepPool_ != nullptr ? sweepPool_ : &perf::ThreadPool::global());

  const perf::Timer timer;
  // !lu_.analyzed() covers a previous factorization attempt that threw on a
  // singular matrix: the workspace pattern is still current, but the LU
  // holds no usable program to replay.
  if (!luPatternCurrent_ || !lu_.analyzed()) {
    sparse::RCSR j = pattern_;
    j.values() = jVals_;
    sparse::RSymbolicLU::Options o;
    o.ordering = ordering_;
    lu_.factor(j, o);
    luPatternCurrent_ = true;
    const auto ns = timer.ns();
    counters_.addFactorization(ns);
    perf::global().addFactorization(ns);
    return diag::SolverStatus::Converged;
  }
  const diag::SolverStatus st = lu_.refactor(jVals_);
  const auto ns = timer.ns();
  if (st == diag::SolverStatus::Converged) {
    counters_.addRefactorization(ns);
    perf::global().addRefactorization(ns);
  } else {
    // Repivoted: a full factorization ran under the hood.
    counters_.addFactorization(ns);
    perf::global().addFactorization(ns);
  }
  return st;
}

RVec MnaWorkspace::solve(const RVec& rhs) {
  const perf::Timer timer;
  RVec x = lu_.solve(rhs);
  const auto ns = timer.ns();
  counters_.addSolve(ns);
  perf::global().addSolve(ns);
  return x;
}

RFIC_REALTIME void MnaWorkspace::solve(const RVec& rhs, RVec& x) {
  const perf::Timer timer;
  lu_.solve(rhs, x, solveY_, solveZ_);
  const auto ns = timer.ns();
  counters_.addSolve(ns);
  perf::global().addSolve(ns);
}

}  // namespace rfic::circuit
