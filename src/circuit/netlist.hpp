// SPICE-style netlist parser.
//
// Supports the element cards needed by the paper's circuit classes:
//   R/C/L/K       passives and mutual coupling
//   V/I           independent sources with DC / SIN / PULSE / SQUARE /
//                 MULTITONE waveforms; optional AXIS=FAST tag assigns the
//                 source to the fast time axis for MPDE analyses
//   E/G           linear controlled sources (VCVS / VCCS)
//   D/Q/M         diode, BJT, MOSFET — parameters via .model cards
// plus `*` comments and standard engineering suffixes (f p n u m k meg g t).
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace rfic::circuit {

/// Parse a netlist from text into a Circuit. Throws InvalidArgument with a
/// line-numbered message on malformed input.
void parseNetlist(const std::string& text, Circuit& ckt);

/// Parse a numeric field with SPICE engineering suffixes ("2.2k", "1MEG",
/// "100n"). Throws InvalidArgument on malformed numbers.
Real parseSpiceNumber(const std::string& token);

}  // namespace rfic::circuit
