// SPICE-style netlist parser.
//
// Supports the element cards needed by the paper's circuit classes:
//   R/C/L/K       passives and mutual coupling
//   V/I           independent sources with DC / SIN / PULSE / SQUARE /
//                 MULTITONE waveforms; optional AXIS=FAST tag assigns the
//                 source to the fast time axis for MPDE analyses
//   E/G           linear controlled sources (VCVS / VCCS)
//   D/Q/M         diode, BJT, MOSFET — parameters via .model cards
// plus `*` comments and standard engineering suffixes (f p n u m k meg g t).
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace rfic::circuit {

/// Structured netlist diagnostic: every parse failure carries the 1-based
/// source line number and the offending card's text, so a long-lived server
/// (rficd) can reject a bad job per-request with an actionable message
/// instead of a bare string. Derives from InvalidArgument, so existing
/// catch sites keep working; what() renders
/// "netlist line <N>: <detail> [card: <text>]".
class NetlistError : public InvalidArgument {
 public:
  NetlistError(int line, std::string card, std::string detail);

  int line() const { return line_; }
  const std::string& card() const { return card_; }
  const std::string& detail() const { return detail_; }

 private:
  int line_;
  std::string card_;
  std::string detail_;
};

/// Parse a netlist from text into a Circuit. Throws NetlistError (an
/// InvalidArgument) with the line number and card text on malformed input.
/// Never aborts: every malformed card — including nested device-parameter
/// validation failures (e.g. a non-positive resistance) — surfaces as a
/// structured NetlistError a caller can catch per-job.
void parseNetlist(const std::string& text, Circuit& ckt);

/// Parse a numeric field with SPICE engineering suffixes ("2.2k", "1MEG",
/// "100n"). Throws InvalidArgument on malformed numbers.
Real parseSpiceNumber(const std::string& token);

}  // namespace rfic::circuit
