// Shared semiconductor evaluation kernels — the single source of truth for
// the diode / Ebers–Moll BJT / square-law MOSFET math.
//
// Both evaluation paths call these exact inline functions:
//
//   - the scalar golden path (Diode/BJT/MOSFET::stamp virtual dispatch), and
//   - the batched SoA path (circuit/device_batch.*), which runs them in a
//     flat loop over per-class parameter tables.
//
// Routing both paths through one definition is what makes the
// `--no-batch-eval` toggle bitwise-safe: the compiler sees a single body, so
// FP contraction and instruction selection cannot diverge between the two
// copies of "the same" formula. The kernels are written branch-minimal and
// as pure elementwise maps (no cross-instance reductions), so the batch
// loop vectorizes where the hardware allows without changing per-element
// results; std::exp/std::pow stay scalar libm calls, which is exactly what
// the scalar path executes.
//
// The numerics-lint `scalar-exp` rule fences std::exp out of the rest of
// src/circuit — new device math belongs here, next to the limiting helpers.
#pragma once

#include <cmath>

#include "common.hpp"

namespace rfic::circuit::kernels {

/// Beyond this junction voltage the exponential is continued linearly to
/// keep Newton iterates finite.
inline constexpr Real kExpLimit = 80.0;

/// exp(v/nvt) with linear continuation, plus derivative.
struct JunctionExp {
  Real i;   ///< Is*(exp-1)
  Real gd;  ///< dI/dv
};
inline JunctionExp junctionCurrent(Real v, Real is, Real nvt) {
  JunctionExp out;
  const Real arg = v / nvt;
  if (arg > kExpLimit) {
    const Real e = std::exp(kExpLimit);
    out.i = is * (e * (1.0 + (arg - kExpLimit)) - 1.0);
    out.gd = is * e / nvt;
  } else if (arg < -kExpLimit) {
    out.i = -is;
    out.gd = 0.0;
  } else {
    const Real e = std::exp(arg);
    out.i = is * (e - 1.0);
    out.gd = is * e / nvt;
  }
  return out;
}

/// Depletion charge and capacitance of a graded junction with SPICE's
/// linearization above fc*vj.
struct JunctionCharge {
  Real q, c;
};
inline JunctionCharge depletionCharge(Real v, Real cj0, Real vj, Real m,
                                      Real fc) {
  JunctionCharge out{0, 0};
  if (cj0 <= 0) return out;
  const Real vth = fc * vj;
  if (v < vth) {
    const Real u = 1.0 - v / vj;
    const Real um = std::pow(u, -m);
    out.c = cj0 * um;
    out.q = cj0 * vj / (1.0 - m) * (1.0 - u * um);  // = cj0*vj/(1-m)*(1-u^{1-m})
  } else {
    // Linear continuation with matching value and slope at vth.
    const Real u = 1.0 - fc;
    const Real um = std::pow(u, -m);
    const Real cAt = cj0 * um;
    const Real qAt = cj0 * vj / (1.0 - m) * (1.0 - u * um);
    const Real dcdv = cj0 * m / vj * std::pow(u, -m - 1.0);
    const Real dv = v - vth;
    out.c = cAt + dcdv * dv;
    out.q = qAt + cAt * dv + 0.5 * dcdv * dv * dv;
  }
  return out;
}

/// SPICE pnjlim: limit a junction-voltage Newton step to the region where
/// the exponential is well-behaved.
inline Real pnjLimit(Real vNew, Real vOld, Real vt, Real vcrit) {
  if (vNew > vcrit && std::abs(vNew - vOld) > 2.0 * vt) {
    if (vOld > 0) {
      const Real arg = 1.0 + (vNew - vOld) / vt;
      vNew = (arg > 0) ? vOld + vt * std::log(arg) : vcrit;
    } else {
      vNew = vt * std::log(vNew / vt);
    }
  }
  return vNew;
}

/// SPICE DEVfetlim: damp a gate-drive Newton step around the threshold
/// voltage. Far above threshold the square law is locally quadratic and a
/// large step overshoots wildly; near/below threshold steps may move freely
/// so cutoff devices can still turn on in one iteration.
inline Real fetLimit(Real vNew, Real vOld, Real vto) {
  const Real vtsthi = std::abs(2.0 * (vOld - vto)) + 2.0;
  const Real vtstlo = 0.5 * vtsthi + 2.0;
  const Real vtox = vto + 3.5;
  const Real delv = vNew - vOld;
  if (vOld >= vto) {
    if (vOld >= vtox) {
      if (delv <= 0) {
        // Going off.
        if (vNew >= vtox) {
          if (-delv > vtstlo) vNew = vOld - vtstlo;
        } else {
          vNew = std::max(vNew, vto + 2.0);
        }
      } else {
        // Staying on.
        if (delv >= vtsthi) vNew = vOld + vtsthi;
      }
    } else {
      // Middle region.
      if (delv <= 0)
        vNew = std::max(vNew, vto - 0.5);
      else
        vNew = std::min(vNew, vto + 4.0);
    }
  } else {
    // Off.
    if (delv <= 0) {
      if (-delv > vtsthi) vNew = vOld - vtsthi;
    } else {
      const Real vtemp = vto + 0.5;
      if (vNew <= vtemp) {
        if (delv > vtstlo) vNew = vOld + vtstlo;
      } else {
        vNew = vtemp;
      }
    }
  }
  return vNew;
}

/// SPICE limvds: damp a drain-swing Newton step. Large vds steps are cut to
/// a growth factor; steps crossing toward/below zero are clamped so the
/// triode/saturation branch cannot flip across the whole swing at once.
inline Real vdsLimit(Real vNew, Real vOld) {
  if (vOld >= 3.5) {
    if (vNew > vOld) {
      vNew = std::min(vNew, 3.0 * vOld + 2.0);
    } else if (vNew < 3.5) {
      vNew = std::max(vNew, 2.0);
    }
  } else {
    if (vNew > vOld)
      vNew = std::min(vNew, 4.0);
    else
      vNew = std::max(vNew, -0.5);
  }
  return vNew;
}

// ---------------------------------------------------------------- Diode

/// Instance parameters in evaluation form (nvt/vcrit precomputed).
struct DiodeParams {
  Real is, nvt, vcrit, gmin;
  Real cj0, vj, m, fc, tt;
};

/// One diode's stamp values: branch current/conductance and charge/cap.
struct DiodeOut {
  Real i, g, q, c;
};

/// Full diode evaluation at anode-cathode voltage vRaw with SPICE limiting
/// against the previous-iterate voltage vOld (applied only when `limit`).
inline DiodeOut diodeEval(const DiodeParams& p, Real vRaw, Real vOld,
                          bool limit) {
  Real v = vRaw;
  if (limit) v = pnjLimit(v, vOld, p.nvt, p.vcrit);
  // Evaluate at the limited voltage and extend linearly to the raw iterate
  // (SPICE convention): keeps the Newton residual consistent with the
  // Jacobian while the exponential is tamed.
  const JunctionExp je = junctionCurrent(v, p.is, p.nvt);
  const Real idio = je.i + je.gd * (vRaw - v);
  const JunctionCharge jc = depletionCharge(v, p.cj0, p.vj, p.m, p.fc);
  DiodeOut o;
  o.i = idio + p.gmin * vRaw;
  o.g = je.gd + p.gmin;
  o.q = jc.q + p.tt * idio;
  o.c = jc.c + p.tt * je.gd;
  return o;
}

// ------------------------------------------------------------------ BJT

struct BJTParams {
  Real is, bf, br, vaf;
  Real cje, cjc, vje, mje, vjc, mjc, fc, tf, tr;
  Real gmin;
  Real sign;   ///< +1 npn, −1 pnp
  Real vt;     ///< thermal voltage (kVt300)
  Real vcrit;
};

/// One BJT's stamp values. Node currents/charges are the exact addF/addQ
/// arguments; the 3×3 G/C blocks are laid out row-major in the scalar
/// emission order — G rows (collector, base, emitter), C rows (base,
/// emitter, collector), columns (base, emitter, collector) in both.
struct BJTOut {
  Real fC, fB, fE;
  Real qB, qE, qC;
  Real g[9];
  Real c[9];
};

inline BJTOut bjtEval(const BJTParams& p, Real vbRaw, Real veRaw, Real vcRaw,
                      Real vbOld, Real veOld, Real vcOld, bool limit,
                      bool wantMatrices) {
  // PNP handled by polarity reversal of both junction voltages and all
  // resulting currents/charges.
  const Real sign = p.sign;
  const Real vbeRaw = sign * (vbRaw - veRaw);
  const Real vbcRaw = sign * (vbRaw - vcRaw);
  Real vbe = vbeRaw, vbc = vbcRaw;
  if (limit) {
    const Real vbeOld = sign * (vbOld - veOld);
    const Real vbcOld = sign * (vbOld - vcOld);
    vbe = pnjLimit(vbe, vbeOld, p.vt, p.vcrit);
    vbc = pnjLimit(vbc, vbcOld, p.vt, p.vcrit);
  }

  // Junction currents at the limited voltages, extended linearly to the raw
  // iterate (SPICE convention — keeps residual and Jacobian consistent).
  JunctionExp fwd = junctionCurrent(vbe, p.is, p.vt);  // Icc
  JunctionExp rev = junctionCurrent(vbc, p.is, p.vt);  // Iec
  fwd.i += fwd.gd * (vbeRaw - vbe);
  rev.i += rev.gd * (vbcRaw - vbc);

  // Early effect on the transport current only: the SPICE first-order form
  // Ict = (Icc − Iec)·(1 − vbc/vaf); vbc < 0 in forward-active, so the
  // factor exceeds 1 and grows with collector swing.
  Real kq = 1.0, dkq_dvbc = 0.0;
  if (p.vaf > 0) {
    kq = 1.0 - vbc / p.vaf;
    dkq_dvbc = -1.0 / p.vaf;
  }
  const Real ict = kq * (fwd.i - rev.i);
  const Real ib = fwd.i / p.bf + rev.i / p.br + p.gmin * (vbeRaw + vbcRaw);
  const Real icStd = ict - rev.i / p.br - p.gmin * vbcRaw;
  const Real ieStd = -ict - fwd.i / p.bf - p.gmin * vbeRaw;

  BJTOut o;
  o.fC = sign * icStd;
  o.fB = sign * ib;
  o.fE = sign * ieStd;

  const JunctionCharge qbeJ = depletionCharge(vbe, p.cje, p.vje, p.mje, p.fc);
  const JunctionCharge qbcJ = depletionCharge(vbc, p.cjc, p.vjc, p.mjc, p.fc);
  const Real qbe = qbeJ.q + p.tf * fwd.i;
  const Real qbc = qbcJ.q + p.tr * rev.i;
  const Real cbe = qbeJ.c + p.tf * fwd.gd;
  const Real cbc = qbcJ.c + p.tr * rev.gd;
  o.qB = sign * (qbe + qbc);
  o.qE = sign * (-qbe);
  o.qC = sign * (-qbc);

  if (!wantMatrices) {
    for (int k = 0; k < 9; ++k) o.g[k] = o.c[k] = 0.0;
    return o;
  }

  // Derivatives w.r.t. (vbe, vbc); the chain rule to node voltages gives
  // sign² = 1, so the blocks stamp directly in node coordinates. Each row
  // expands (dvbe, dvbc) to columns (base, emitter, collector) as
  // (dvbe+dvbc, −dvbe, −dvbc) — exactly what the scalar stampPair emits.
  const Real dic_dvbe = kq * fwd.gd;
  const Real dic_dvbc =
      dkq_dvbc * (fwd.i - rev.i) - kq * rev.gd - rev.gd / p.br - p.gmin;
  const Real dib_dvbe = fwd.gd / p.bf + p.gmin;
  const Real dib_dvbc = rev.gd / p.br + p.gmin;
  const Real die_dvbe = -kq * fwd.gd - fwd.gd / p.bf - p.gmin;
  const Real die_dvbc = -dkq_dvbc * (fwd.i - rev.i) + kq * rev.gd;

  const auto pair = [](Real* row, Real dvbe, Real dvbc) {
    row[0] = dvbe + dvbc;
    row[1] = -dvbe;
    row[2] = -dvbc;
  };
  pair(o.g + 0, dic_dvbe, dic_dvbc);  // collector row
  pair(o.g + 3, dib_dvbe, dib_dvbc);  // base row
  pair(o.g + 6, die_dvbe, die_dvbc);  // emitter row

  pair(o.c + 0, cbe, cbc);    // base row
  pair(o.c + 3, -cbe, 0.0);   // emitter row
  pair(o.c + 6, 0.0, -cbc);   // collector row
  return o;
}

// --------------------------------------------------------------- MOSFET

struct MOSFETParams {
  Real vt0, kp, lambda, cgs, cgd, gmin;
  Real sign;  ///< +1 nmos, −1 pmos
};

/// Square-law drain current and derivatives for vds >= 0 (type-normalized).
struct MOSFETOpPoint {
  Real id, gm, gds;
};
inline MOSFETOpPoint mosfetCurrent(Real vgs, Real vds, Real kp, Real vt0,
                                   Real lambda) {
  MOSFETOpPoint op{0, 0, 0};
  const Real vov = vgs - vt0;
  if (vov <= 0) return op;  // cutoff
  const Real cl = 1.0 + lambda * vds;
  if (vds < vov) {
    // Triode.
    op.id = kp * (vov * vds - 0.5 * vds * vds) * cl;
    op.gm = kp * vds * cl;
    op.gds = kp * (vov - vds) * cl + kp * (vov * vds - 0.5 * vds * vds) * lambda;
  } else {
    // Saturation.
    op.id = 0.5 * kp * vov * vov * cl;
    op.gm = kp * vov * cl;
    op.gds = 0.5 * kp * vov * vov * lambda;
  }
  return op;
}

/// One MOSFET's stamp values: drain current, overlap charges (valid when
/// cgs/cgd > 0), and the 2×3 conductance block over rows (drain, source) ×
/// columns (gate, drain, source).
struct MOSFETOut {
  Real i;
  Real qGS, qGD;  ///< cgs·vgsRaw, cgd·vgdRaw
  Real g[6];
};

inline MOSFETOut mosfetEval(const MOSFETParams& p, Real vdRaw, Real vgRaw,
                            Real vsRaw, Real vdOld, Real vgOld, Real vsOld,
                            bool limit, bool wantMatrices) {
  const Real sign = p.sign;
  Real vgs = sign * (vgRaw - vsRaw);
  Real vds = sign * (vdRaw - vsRaw);
  if (limit) {
    // SPICE-style step damping on both controlling voltages: fetLimit keeps
    // the gate drive from overshooting the square law, vdsLimit keeps the
    // drain swing from flipping the triode/saturation branch in one step.
    // When the previous iterate ran source/drain-swapped (vds < 0) the
    // controlling junction is gate-drain, so limit that pair mirrored —
    // otherwise a device settling at negative vds could never reach it.
    const Real vgsOld = sign * (vgOld - vsOld);
    const Real vdsOld = sign * (vdOld - vsOld);
    if (vdsOld >= 0) {
      vgs = fetLimit(vgs, vgsOld, p.vt0);
      vds = vdsLimit(vds, vdsOld);
    } else {
      Real vgd = fetLimit(vgs - vds, vgsOld - vdsOld, p.vt0);
      vds = -vdsLimit(-vds, -vdsOld);
      vgs = vgd + vds;
    }
  }

  // Source-drain symmetry: operate on the terminal pair with vds >= 0.
  bool swapped = false;
  Real vgsEff = vgs, vdsEff = vds;
  if (vds < 0) {
    swapped = true;
    vdsEff = -vds;
    vgsEff = vgs - vds;  // gate-to-(effective source = drain terminal)
  }
  const MOSFETOpPoint op = mosfetCurrent(vgsEff, vdsEff, p.kp, p.vt0, p.lambda);
  const Real idFlow = swapped ? -op.id : op.id;  // current drain->source

  MOSFETOut o;
  o.i = sign * idFlow + sign * p.gmin * vds;

  // Fixed overlap capacitances (linear), on the *raw* node voltages.
  o.qGS = p.cgs * (vgRaw - vsRaw);
  o.qGD = p.cgd * (vgRaw - vdRaw);

  if (!wantMatrices) {
    for (int k = 0; k < 6; ++k) o.g[k] = 0.0;
    return o;
  }

  // Map derivatives back to the unswapped terminals.
  Real gm, gds_eff, gmSrc;  // di/dvg, di/dvd, di/dvs with i = drain current
  if (!swapped) {
    gm = op.gm;
    gds_eff = op.gds;
    gmSrc = -(op.gm + op.gds);
  } else {
    // i = -id(vgs', vds') with vgs' = vgs - vds (gate to real drain),
    // vds' = -vds. d i/d vg = -gm'; d i/d vd = gm' + gds'; chain rule:
    gm = -op.gm;
    gds_eff = op.gm + op.gds;
    gmSrc = -op.gds;
  }
  // Type sign: for PMOS both the controlling voltages and the current flip,
  // so conductances stamp positively in node coordinates (sign²).
  const Real gmin = p.gmin;
  o.g[0] = gm;                // (drain, gate)
  o.g[1] = gds_eff + gmin;    // (drain, drain)
  o.g[2] = gmSrc - gmin;      // (drain, source)
  o.g[3] = -gm;               // (source, gate)
  o.g[4] = -gds_eff - gmin;   // (source, drain)
  o.g[5] = -gmSrc + gmin;     // (source, source)
  return o;
}

}  // namespace rfic::circuit::kernels
