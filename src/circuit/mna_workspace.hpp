// MnaWorkspace: the pattern-cached assemble→factor→solve pipeline.
//
// Every Newton-based analysis repeats the same three steps — evaluate the
// circuit, combine C and G into a Jacobian, factor and solve — and before
// this layer each step rebuilt its data structures from scratch: fresh
// triplet lists per evaluation, fresh hashing and Markowitz ordering per
// factorization. The workspace caches what never changes between
// iterations:
//
//  - the union sparsity pattern of G, C, and the diagonal, discovered on
//    the first evaluation and grown on demand (devices may stamp positions
//    conditionally; a stamp that misses the pattern lands in an overflow
//    list, the pattern is re-unioned, and the evaluation repeats);
//  - preallocated value arrays that devices stamp into through cached CSR
//    positions — zero heap churn per iteration;
//  - a SymbolicLU whose pivot order and fill pattern are reused by cheap
//    numeric refactorizations until pivot growth forces a repivot
//    (surfaced as diag::SolverStatus::Repivoted).
//
// The workspace also owns a perf::Counters instance and mirrors every
// event into perf::global(), so analyses and `rficsim --stats` can report
// evals / factorizations / refactorizations / solves and their wall time.
#pragma once

#include <vector>

#include "circuit/device_batch.hpp"
#include "circuit/mna.hpp"
#include "diag/convergence.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/symbolic_lu.hpp"

namespace rfic::circuit {

class MnaWorkspace {
 public:
  explicit MnaWorkspace(const MnaSystem& sys)
      : sys_(sys), n_(sys.dim()), batched_(batchedEvalDefault()) {}

  std::size_t dim() const { return n_; }
  const MnaSystem& system() const { return sys_; }

  /// Univariate evaluation at time t (both axes read t).
  void eval(const RVec& x, Real t, bool wantMatrices,
            const RVec* xPrev = nullptr) {
    evalBivariate(x, t, t, wantMatrices, xPrev);
  }

  /// Bivariate evaluation: slow sources read t1, fast sources read t2.
  /// Fills f()/q()/b() and, when wantMatrices, gValues()/cValues() over
  /// pattern(). Self-healing: a stamped position missing from the cached
  /// pattern grows the pattern and repeats the evaluation.
  void evalBivariate(const RVec& x, Real t1, Real t2, bool wantMatrices,
                     const RVec* xPrev = nullptr);

  /// Multi-sample sweep: evaluate all S = xs.cols() states at their sample
  /// times in one pass — the HB/shooting inner loop. Column s of the n×S
  /// matrices carries sample s: state in `xs`, results in fS/qS/bS; when
  /// wantMatrices, (*gOut)[s]/(*cOut)[s] receive the G/C value arrays over
  /// pattern() (sized here; pass vectors of length ≥ S). Samples are
  /// independent, so the sweep fans out over setSweepPool()'s lanes in
  /// fixed chunks — results are bitwise identical for every thread count,
  /// and identical to S sequential evalBivariate calls. Pattern growth
  /// mid-sweep restarts the sweep internally; on return the pattern is
  /// consistent across all samples. Steady-state calls (same S, same
  /// pattern) perform no allocation.
  void evalSamples(const numeric::RMat& xs, const Real* t1, const Real* t2,
                   bool wantMatrices, numeric::RMat& fS, numeric::RMat& qS,
                   numeric::RMat& bS, std::vector<std::vector<Real>>* gOut,
                   std::vector<std::vector<Real>>* cOut);

  /// Toggle the batched SoA evaluation engine for this workspace (bitwise
  /// identical either way; `rficsim --no-batch-eval` pins the scalar walk).
  void setBatchedEval(bool on) { batched_ = on; }
  bool batchedEval() const { return batched_; }
  /// Process-wide default picked up by new workspaces (CLI flag plumbing).
  static void setBatchedEvalDefault(bool on);
  static bool batchedEvalDefault();

  /// Thread pool used by evalSamples (nullptr = serial). The chunking is
  /// over a fixed lane count, so results do not depend on the pool size.
  /// factorJacobian's level-parallel refactorization shares the same pool
  /// (falling back to the process-global pool when none is installed).
  void setSweepPool(perf::ThreadPool* pool) { sweepPool_ = pool; }

  /// Pivot pre-ordering for factorJacobian (sparse/ordering.hpp). Defaults
  /// to effectiveOrdering() at construction; changing it invalidates the
  /// cached symbolic factorization so the next factor re-analyzes. Auto
  /// re-resolves against the current per-thread/process setting.
  void setOrdering(sparse::Ordering o) {
    const sparse::Ordering r = sparse::resolveOrdering(o);
    if (r != ordering_) luPatternCurrent_ = false;
    ordering_ = r;
  }
  sparse::Ordering ordering() const { return ordering_; }

  /// Buffer-growth events (pattern discovery/growth, batch compiles, sweep
  /// lane pools): stable across steady-state iterations — the counter the
  /// zero-allocation tests pin.
  std::uint64_t workspaceGrowth() const { return growth_; }

  const RVec& f() const { return f_; }
  const RVec& q() const { return q_; }
  const RVec& b() const { return b_; }

  /// Shared G/C sparsity pattern (values are all zero; use gValues()/
  /// cValues()). Valid after the first matrix evaluation.
  const sparse::RCSR& pattern() const { return pattern_; }
  const std::vector<Real>& gValues() const { return gVals_; }
  const std::vector<Real>& cValues() const { return cVals_; }
  /// Bumped every time the pattern grows; lets callers that cache value
  /// arrays (e.g. HB's per-sample Jacobians) detect a mid-sweep change.
  std::size_t patternVersion() const { return patternVersion_; }

  /// Factor J = cCoeff·C + gCoeff·G + gDiag·I from the current values —
  /// the one shared C/G-combination helper for every Newton loop. The
  /// first call (and any call after a pattern change) performs a full
  /// symbolic factorization; subsequent calls are numeric refactorizations.
  /// Returns Converged (cheap replay) or Repivoted (growth-triggered fresh
  /// factorization); see diag::SolverStatus.
  diag::SolverStatus factorJacobian(Real cCoeff, Real gCoeff, Real gDiag = 0);

  /// Solve with the most recent factorization.
  RVec solve(const RVec& rhs);

  /// Allocation-free solve for hot loops (the transient Newton iteration):
  /// writes into `x` through workspace-owned scratch. `x` grows to dim()
  /// on first use and is reused untouched afterwards; `rhs` must not alias
  /// it.
  RFIC_REALTIME void solve(const RVec& rhs, RVec& x);

  /// This workspace's pipeline counters (also mirrored into perf::global()).
  perf::Snapshot counters() const { return counters_.snapshot(); }

  /// Resilience-layer bookkeeping: engines count retry attempts (dt cuts,
  /// Newton re-runs) and strategy escalations (continuation ladder rungs)
  /// here so they show up in result snapshots and `rficsim --stats`.
  void noteRetry() {
    counters_.addRetry();
    perf::global().addRetry();
  }
  void noteFallback() {
    counters_.addFallback();
    perf::global().addFallback();
  }

 private:
  void ensurePattern(const RVec& x, Real t1, Real t2, const RVec* xPrev);
  void growPattern();
  /// (Re)compile the device batch when the pattern changed since the last
  /// compile. Probes generic devices at (x, xPrev, t1, t2).
  void maybeCompileBatch(const RVec& x, const RVec* xPrev, Real t1, Real t2);

  /// Per-lane sweep state: each evalSamples lane evaluates its chunk of
  /// samples through its own buffers, so lanes never share mutable state.
  struct SweepLane {
    RVec x, f, q, b;
    sparse::RTriplets gOv, cOv;
    DeviceBatch::SweepScratch sweep;  ///< kernel outputs per sweep block
    bool overflowed = false;
  };

  const MnaSystem& sys_;
  std::size_t n_;

  RVec f_, q_, b_;
  sparse::RCSR pattern_;                 ///< union pattern, zero values
  std::vector<Real> gVals_, cVals_;      ///< stamped by position
  std::vector<std::size_t> diagSlot_;    ///< CSR position of (i, i)
  sparse::RTriplets gOv_, cOv_;          ///< pattern misses (rare)
  std::size_t patternVersion_ = 0;

  bool batched_;                         ///< this workspace's toggle
  DeviceBatch batch_;
  DeviceBatch::Scratch scratch_;         ///< single-eval kernel outputs
  std::size_t batchVersion_ = 0;         ///< patternVersion_ at last compile
  perf::ThreadPool* sweepPool_ = nullptr;
  std::vector<SweepLane> lanes_;         ///< grow-once sweep lane pool
  std::vector<Real> waveVals_;           ///< cached waveform values, S × nw
  std::vector<Real> waveT1_, waveT2_;    ///< sample times the cache is for
  std::size_t waveVersion_ = 0;          ///< batchVersion_ the cache is for
  std::uint64_t growth_ = 0;             ///< buffer-growth events

  std::vector<Real> jVals_;              ///< combined Jacobian values
  sparse::Ordering ordering_ = sparse::effectiveOrdering();
  sparse::RSymbolicLU lu_;
  bool luPatternCurrent_ = false;        ///< lu_ analyzed this pattern
  RVec solveY_, solveZ_;                 ///< solve(rhs, x) scratch, grow-once

  perf::Counters counters_;
};

}  // namespace rfic::circuit
