// Batched structure-of-arrays device evaluation.
//
// The scalar evaluation path walks the circuit's device list through
// virtual Device::stamp() calls; every matrix entry pays a binary search
// into the cached CSR pattern, every instance an indirect call. For the
// Newton-heavy steady-state analyses (HB evaluates every device at every
// time sample of every iteration) that bookkeeping dominates the actual
// junction math. This layer compiles the circuit once per sparsity
// pattern into a form where the per-evaluation work is just arithmetic:
//
//  - Diode/BJT/MOSFET instances land in per-class structure-of-arrays
//    tables — contiguous parameters, node indices, precomputed vcrit —
//    and are evaluated as flat loops over the shared kernels in
//    junction_kernels.hpp (phase A);
//  - every G/C entry position is resolved to its CSR slot once, at
//    compile time; evaluation scatters through int32 slot arrays with no
//    searches (phase B);
//  - linear devices whose matrix stamps are compile-time constants
//    (R/L/C, VCCS, source ±1 rows) are folded into constant prefill
//    templates copied over gVals/cVals before each scatter — they cost a
//    memcpy, not per-device work;
//  - independent-source waveform values can be computed once per time
//    sample of a multi-sample sweep and reused across Newton iterations
//    (sample times are fixed for a given HB/shooting grid).
//
// Bitwise contract: with the `--no-batch-eval` toggle the scalar walk is
// the golden reference, and this engine reproduces its f/q/b/G/C output
// bit for bit. That works because (a) both paths execute the *same*
// inline kernels, (b) the scatter walk runs in original device order, so
// every f/q/b vector entry and every CSR slot receives its contributions
// in the exact scalar order, and (c) a slot is folded into the constant
// template only when *all* of its contributions are constants — the
// template then carries the same device-order sum the scalar path forms.
// Devices without a compiled form (VCVS, CCCS, CCVS, mutual inductance,
// multiplier, user-defined Device subclasses) keep their virtual stamp(),
// invoked mid-walk at their original position; their matrix footprint is
// probed at compile time so slots they touch are never prefilled.
//
// A compiled instance whose slot cannot be resolved (a conditional stamp
// absent from the discovery pattern) is demoted to the generic walk; its
// eventual overflow triggers MnaWorkspace's usual growPattern + recompile
// self-healing, keeping the pattern — and therefore the factorization —
// identical between the two evaluation modes.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/junction_kernels.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::circuit {

class Waveform;
class DeviceBatch;

/// Registration interface handed to Device::compileBatch(). Each call
/// claims the device for the batch engine; the entry-registration order of
/// each method mirrors the device's scalar stamp() emission order, which is
/// what keeps per-slot accumulation order identical between the paths.
class BatchCompiler {
 public:
  // Linear devices with compile-time-constant matrix stamps.
  void resistor(int n1, int n2, Real g);
  void capacitor(int n1, int n2, Real c);
  void inductor(int n1, int n2, int branch, Real l);
  void vccs(int outPlus, int outMinus, int ctrlPlus, int ctrlMinus, Real gm);
  void vsource(int nPlus, int nMinus, int branch, const Waveform* w,
               TimeAxis axis);
  void isource(int nPlus, int nMinus, const Waveform* w, TimeAxis axis);
  // Nonlinear devices evaluated through the shared kernels.
  void cubicConductance(int n1, int n2, Real g1, Real g3);
  void diode(int anode, int cathode, const kernels::DiodeParams& p);
  void bjt(int collector, int base, int emitter, const kernels::BJTParams& p);
  void mosfet(int drain, int gate, int source, const kernels::MOSFETParams& p);

 private:
  friend class DeviceBatch;
  explicit BatchCompiler(DeviceBatch& b) : b_(b) {}
  DeviceBatch& b_;
};

class DeviceBatch {
 public:
  /// Slot sentinel: ground row/column, dropped (scalar addG/addC semantics).
  static constexpr std::int32_t kDropped = -1;
  /// Slot sentinel: constant entry folded into the prefill template.
  static constexpr std::int32_t kPrefilled = -2;

  /// Per-evaluation kernel outputs. Owned by the caller (one per concurrent
  /// evaluation) so a multi-sample sweep can run samples in parallel over
  /// one compiled DeviceBatch; grown once by eval() to the class counts.
  struct Scratch {
    std::vector<kernels::DiodeOut> diode;
    std::vector<kernels::BJTOut> bjt;
    std::vector<kernels::MOSFETOut> mosfet;
  };

  /// Samples per kernel-sweep block: the nonlinear kernels of a multi-sample
  /// pass are evaluated sample-major over blocks of this size, so the
  /// junction exponentials run as flat loops over contiguous state rows.
  /// Fixed (never derived from thread count) — chunk boundaries must not
  /// change results, and per-sample outputs are independent anyway.
  static constexpr std::size_t kSweepChunk = 32;

  /// Kernel outputs for one sweep block: instance i's output for block
  /// sample j lives at [i * kSweepChunk + j]. One per sweep lane.
  struct SweepScratch {
    std::vector<kernels::DiodeOut> diode;
    std::vector<kernels::BJTOut> bjt;
    std::vector<kernels::MOSFETOut> mosfet;
  };

  /// Compile (or recompile after pattern growth) against a discovered
  /// sparsity pattern. `x`/`xPrev`/`t1`/`t2` form the probe point for the
  /// structural footprint of generic (non-compiled) devices; pass the same
  /// point the pattern itself was discovered at.
  void compile(const Circuit& ckt, const sparse::RCSR& pattern,
               std::size_t dim, const RVec& x, const RVec* xPrev, Real t1,
               Real t2);
  bool compiled() const { return compiled_; }

  /// Approximate bytes held by the compiled tables, slot arrays, and
  /// templates — charged to the owning job's diag::MemAccount by the
  /// workspace after each compile.
  std::size_t bytes() const;

  /// Independent-source waveform count / values at (t1, t2), in compiled
  /// source order. A multi-sample sweep computes these once per sample and
  /// feeds them back through eval()'s waveVals to skip re-evaluating
  /// sin/pwl waveforms every Newton iteration (sample times are fixed).
  std::size_t numWaveforms() const { return waves_.size(); }
  void evalWaveforms(Real t1, Real t2, Real* out) const;

  /// One full circuit evaluation, bitwise-identical to the scalar device
  /// walk. `s` must be a pattern-mode (or vector-only) Stamp whose targets
  /// are `gVals`/`cVals`; when matrices are wanted the arrays are prefilled
  /// here from the constant templates — the caller must NOT zero-fill them.
  /// `waveVals` optionally carries evalWaveforms() output for this sample's
  /// times; nullptr evaluates waveforms inline (scalar-identical either
  /// way).
  void eval(const RVec& x, const RVec* xPrev, Stamp& s,
            std::vector<Real>* gVals, std::vector<Real>* cVals,
            Scratch& scratch, const Real* waveVals) const;

  /// Sample-major kernel phase for a sweep block: evaluate every nonlinear
  /// instance at samples [s0, s0+count) of `xs` (states in columns, count ≤
  /// kSweepChunk) into `sc`. No junction limiting — sweeps evaluate at the
  /// iterate itself (xPrev == nullptr), matching the scalar sweep path.
  /// Each (instance, sample) output is computed by the same inline kernel
  /// call as eval()'s, so results are bitwise independent of blocking.
  void evalKernelsSweep(const numeric::RMat& xs, std::size_t s0,
                        std::size_t count, bool wantMatrices,
                        SweepScratch& sc) const;

  /// Assembly phase for one sample of a sweep block: the constant-template
  /// prefill plus the device-order scatter of eval(), reading instance i's
  /// kernel output from out[i * kSweepChunk + blockIdx] of the SweepScratch
  /// filled by evalKernelsSweep().
  void assemble(const RVec& x, Stamp& s, std::vector<Real>* gVals,
                std::vector<Real>* cVals, const SweepScratch& sc,
                std::size_t blockIdx, const Real* waveVals) const;

  /// True when any device fell back to the generic virtual walk — the
  /// vector-only block assembly below requires an all-compiled circuit.
  bool hasGenericOps() const { return !genericDevs_.empty(); }

  /// Vector-only assembly of a whole sweep block at once: accumulates
  /// f/q/b for samples [s0, s0+count) directly into the row-major result
  /// matrices (columns are samples), op-outer / sample-inner so the linear
  /// ops run as flat loops over contiguous rows. Bitwise-identical to
  /// per-sample assemble() without matrices: each (entry, sample) cell
  /// receives the same contributions, in the same device order, from the
  /// same expressions — only the loop nest is interchanged, and samples
  /// never mix. Requires hasGenericOps() == false. `waveVals` is the full
  /// waveform cache laid out sample-major with `nWave` values per sample;
  /// when nullptr, waveforms are evaluated inline at (t1[s], t2[s]).
  void assembleSweepVec(const numeric::RMat& xs, std::size_t s0,
                        std::size_t count, numeric::RMat& fS,
                        numeric::RMat& qS, numeric::RMat& bS,
                        const SweepScratch& sc, const Real* waveVals,
                        std::size_t nWave, const Real* t1,
                        const Real* t2) const;

 private:
  friend class BatchCompiler;

  enum class OpKind : std::uint8_t {
    generic,
    resistor,
    capacitor,
    inductor,
    vccs,
    vsource,
    isource,
    cubic,
    diode,
    bjt,
    mosfet,
  };

  /// One device in original circuit order. `idx` points into the kind's
  /// table (or genericDevs_); `slotBase`/`nEntries` into slots_/pending_.
  struct Op {
    OpKind kind;
    std::uint32_t idx;
    std::uint32_t slotBase;
    std::uint32_t nEntries;
  };

  /// A registered matrix entry, pre-resolution. Constant entries carry
  /// their value for the prefill-template fold.
  struct PendingEntry {
    std::int32_t row, col;
    bool isC;
    bool isConst;
    Real constVal;
  };

  struct ResistorOp {
    std::int32_t n1, n2;
    Real g;
  };
  struct CapacitorOp {
    std::int32_t n1, n2;
    Real c;
  };
  struct InductorOp {
    std::int32_t n1, n2, br;
    Real l;
  };
  struct VccsOp {
    std::int32_t op, om, cp, cm;
    Real gm;
  };
  struct SourceOp {
    std::int32_t np, nm, br;  ///< br unused (-1) for current sources
    const Waveform* w;
    TimeAxis axis;
    std::uint32_t waveIdx;
  };
  struct CubicOp {
    std::int32_t n1, n2;
    Real g1, g3;
  };
  /// Structure-of-arrays diode table (kernel phase iterates these flat).
  struct DiodeTable {
    std::vector<Real> is, nvt, vcrit, gmin, cj0, vj, m, fc, tt;
    std::vector<std::int32_t> na, nc;
    std::vector<std::uint8_t> hasC;  ///< cj0>0 || tt>0: C stamps possible
    std::size_t size() const { return na.size(); }
  };
  struct BJTTable {
    std::vector<kernels::BJTParams> p;
    std::vector<std::int32_t> nc, nb, ne;
    std::size_t size() const { return nc.size(); }
  };
  struct MOSFETTable {
    std::vector<kernels::MOSFETParams> p;
    std::vector<std::int32_t> nd, ng, ns;
    std::vector<std::uint8_t> hasCgs, hasCgd;
    std::size_t size() const { return nd.size(); }
  };

  struct Wave {
    const Waveform* w;
    TimeAxis axis;
  };

  // --- registration helpers (called via BatchCompiler) ---
  void beginOp(OpKind kind, std::uint32_t idx);
  void entry(bool isC, int row, int col) {
    pending_.push_back({row, col, isC, false, 0.0});
  }
  void constEntry(bool isC, int row, int col, Real v) {
    pending_.push_back({row, col, isC, true, v});
  }
  std::uint32_t addWave(const Waveform* w, TimeAxis axis) {
    waves_.push_back({w, axis});
    return static_cast<std::uint32_t>(waves_.size() - 1);
  }

  void ensureScratch(Scratch& sc) const;
  void ensureSweepScratch(SweepScratch& sc) const;
  /// Shared assembly body: prefill + device-order scatter, with instance
  /// i's kernel output at out[i * stride] (stride 1 for eval()'s Scratch,
  /// kSweepChunk for a SweepScratch block sample).
  void assembleImpl(const RVec& x, const RVec* xPrev, Stamp& s,
                    std::vector<Real>* gVals, std::vector<Real>* cVals,
                    const kernels::DiodeOut* dOut, const kernels::BJTOut* bOut,
                    const kernels::MOSFETOut* mOut, std::size_t stride,
                    const Real* waveVals) const;

  bool compiled_ = false;
  std::vector<Op> ops_;
  std::vector<PendingEntry> pending_;
  std::vector<std::int32_t> slots_;  ///< resolved, parallel to pending_
  std::vector<Real> gTemplate_, cTemplate_;
  std::vector<const Device*> genericDevs_;
  std::vector<Wave> waves_;
  bool took_ = false;  ///< current device registered something

  std::vector<ResistorOp> res_;
  std::vector<CapacitorOp> cap_;
  std::vector<InductorOp> ind_;
  std::vector<VccsOp> vccs_;
  std::vector<SourceOp> vsrc_, isrc_;
  std::vector<CubicOp> cubic_;
  DiodeTable diode_;
  BJTTable bjt_;
  MOSFETTable mos_;
};

}  // namespace rfic::circuit
