// Nonlinear semiconductor devices: diode, bipolar transistor (Ebers–Moll
// with Early effect), and level-1 MOSFET. These are what make RF ICs
// "consisting mainly of nonlinear elements" (paper Section 2.1) — the
// regime where traditional microwave harmonic balance implementations break
// down and the matrix-implicit formulation of this library is required.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/junction_kernels.hpp"

namespace rfic::circuit {

/// Thermal voltage at 300 K.
inline constexpr Real kVt300 = 0.025852;
/// Electron charge.
inline constexpr Real kQElectron = 1.602176634e-19;

/// Junction diode with SPICE level-1 statics, depletion + diffusion charge,
/// shot and flicker noise, and pn-junction Newton limiting.
class Diode final : public Device {
 public:
  struct Params {
    Real is = 1e-14;    ///< saturation current [A]
    Real n = 1.0;       ///< emission coefficient
    Real cj0 = 0.0;     ///< zero-bias junction capacitance [F]
    Real vj = 0.8;      ///< junction potential [V]
    Real m = 0.5;       ///< grading coefficient
    Real fc = 0.5;      ///< depletion-cap linearization point
    Real tt = 0.0;      ///< transit time [s] (diffusion charge)
    Real kf = 0.0;      ///< flicker coefficient
    Real af = 1.0;      ///< flicker exponent
    Real gmin = 1e-12;  ///< junction leakage conductance
  };

  Diode(std::string name, int anode, int cathode, Params p);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  void noiseSources(const RVec& x, std::vector<NoiseSource>& out) const override;

  /// Static current at junction voltage v (exposed for tests).
  Real current(Real v) const;

 private:
  kernels::DiodeParams kparams() const;

  int na_, nc_;
  Params p_;
  Real vcrit_;
};

/// Ebers–Moll bipolar transistor (NPN or PNP) with Early effect, junction
/// and diffusion charges, and shot/flicker noise.
class BJT final : public Device {
 public:
  enum class Type { npn, pnp };
  struct Params {
    Real is = 1e-16;   ///< transport saturation current [A]
    Real bf = 100.0;   ///< forward beta
    Real br = 1.0;     ///< reverse beta
    Real vaf = 0.0;    ///< forward Early voltage [V]; 0 disables
    Real cje = 0.0;    ///< B-E zero-bias junction cap [F]
    Real cjc = 0.0;    ///< B-C zero-bias junction cap [F]
    Real vje = 0.75, mje = 0.33;
    Real vjc = 0.75, mjc = 0.33;
    Real fc = 0.5;
    Real tf = 0.0;     ///< forward transit time [s]
    Real tr = 0.0;     ///< reverse transit time [s]
    Real kf = 0.0, af = 1.0;  ///< flicker noise on base current
    Real gmin = 1e-12;
  };

  BJT(std::string name, int collector, int base, int emitter, Params p,
      Type type = Type::npn);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  void noiseSources(const RVec& x, std::vector<NoiseSource>& out) const override;

 private:
  kernels::BJTParams kparams() const;

  int nc_, nb_, ne_;
  Params p_;
  Type type_;
  Real vcrit_;
};

/// Level-1 (square-law) MOSFET with channel-length modulation, fixed
/// overlap capacitances, channel thermal noise and flicker noise.
class MOSFET final : public Device {
 public:
  enum class Type { nmos, pmos };
  struct Params {
    Real vt0 = 0.7;      ///< threshold voltage [V] (positive for both types)
    Real kp = 2e-3;      ///< transconductance μ·Cox·W/L [A/V²]
    Real lambda = 0.01;  ///< channel-length modulation [1/V]
    Real cgs = 0.0;      ///< gate-source capacitance [F]
    Real cgd = 0.0;      ///< gate-drain capacitance [F]
    Real kf = 0.0, af = 1.0;
    Real gmin = 1e-12;
  };

  MOSFET(std::string name, int drain, int gate, int source, Params p,
         Type type = Type::nmos);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  void noiseSources(const RVec& x, std::vector<NoiseSource>& out) const override;

 private:
  kernels::MOSFETParams kparams() const;

  int nd_, ng_, ns_;
  Params p_;
  Type type_;
};

/// SPICE pnjlim: limit a junction-voltage Newton step to the region where
/// the exponential is well-behaved.
Real pnjLimit(Real vNew, Real vOld, Real vt, Real vcrit);

}  // namespace rfic::circuit
