#include "circuit/devices.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

namespace rfic::circuit {

namespace {
// Boltzmann constant times nominal temperature (300 K).
constexpr Real kKT = 1.380649e-23 * 300.0;
}  // namespace

Resistor::Resistor(std::string name, int n1, int n2, Real ohms)
    : Device(std::move(name)), n1_(n1), n2_(n2), r_(ohms), g_(0) {
  // Validate before dividing: with FE trapping armed, 1/0 in the
  // initializer list would raise SIGFPE before this throw.
  RFIC_REQUIRE(ohms > 0, "Resistor: resistance must be positive");
  g_ = 1.0 / ohms;
}

void Resistor::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real v = nodeVoltage(x, n1_) - nodeVoltage(x, n2_);
  const Real i = g_ * v;
  s.addF(n1_, i);
  s.addF(n2_, -i);
  if (s.wantMatrices()) {
    s.addG(n1_, n1_, g_);
    s.addG(n1_, n2_, -g_);
    s.addG(n2_, n1_, -g_);
    s.addG(n2_, n2_, g_);
  }
}

void Resistor::compileBatch(BatchCompiler& bc) const {
  bc.resistor(n1_, n2_, g_);
}

void Resistor::noiseSources(const RVec&, std::vector<NoiseSource>& out) const {
  NoiseSource n;
  n.nodePlus = n1_;
  n.nodeMinus = n2_;
  n.white = 4.0 * kKT * g_;  // 4kT/R, one-sided
  n.label = name() + ".thermal";
  out.push_back(n);
}

Capacitor::Capacitor(std::string name, int n1, int n2, Real farads)
    : Device(std::move(name)), n1_(n1), n2_(n2), c_(farads) {
  RFIC_REQUIRE(farads > 0, "Capacitor: capacitance must be positive");
}

void Capacitor::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real v = nodeVoltage(x, n1_) - nodeVoltage(x, n2_);
  const Real q = c_ * v;
  s.addQ(n1_, q);
  s.addQ(n2_, -q);
  if (s.wantMatrices()) {
    s.addC(n1_, n1_, c_);
    s.addC(n1_, n2_, -c_);
    s.addC(n2_, n1_, -c_);
    s.addC(n2_, n2_, c_);
  }
}

void Capacitor::compileBatch(BatchCompiler& bc) const {
  bc.capacitor(n1_, n2_, c_);
}

Inductor::Inductor(std::string name, int n1, int n2, int branch, Real henries)
    : Device(std::move(name)), n1_(n1), n2_(n2), br_(branch), l_(henries) {
  RFIC_REQUIRE(henries > 0, "Inductor: inductance must be positive");
  RFIC_REQUIRE(branch >= 0, "Inductor: branch unknown required");
}

void Inductor::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real i = x[static_cast<std::size_t>(br_)];
  const Real v = nodeVoltage(x, n1_) - nodeVoltage(x, n2_);
  s.addF(n1_, i);
  s.addF(n2_, -i);
  s.addQ(br_, l_ * i);  // flux
  s.addF(br_, -v);      // d(flux)/dt = v
  if (s.wantMatrices()) {
    s.addG(n1_, br_, 1.0);
    s.addG(n2_, br_, -1.0);
    s.addC(br_, br_, l_);
    s.addG(br_, n1_, -1.0);
    s.addG(br_, n2_, 1.0);
  }
}

void Inductor::compileBatch(BatchCompiler& bc) const {
  bc.inductor(n1_, n2_, br_, l_);
}

MutualInductance::MutualInductance(std::string name, const Inductor& l1,
                                   const Inductor& l2, Real coupling)
    : Device(std::move(name)),
      br1_(l1.branch()),
      br2_(l2.branch()),
      m_(coupling * std::sqrt(l1.inductance() * l2.inductance())) {
  RFIC_REQUIRE(coupling > -1.0 && coupling < 1.0,
               "MutualInductance: |k| must be < 1");
}

void MutualInductance::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real i1 = x[static_cast<std::size_t>(br1_)];
  const Real i2 = x[static_cast<std::size_t>(br2_)];
  s.addQ(br1_, m_ * i2);
  s.addQ(br2_, m_ * i1);
  if (s.wantMatrices()) {
    s.addC(br1_, br2_, m_);
    s.addC(br2_, br1_, m_);
  }
}

VCCS::VCCS(std::string name, int outPlus, int outMinus, int ctrlPlus,
           int ctrlMinus, Real gm)
    : Device(std::move(name)),
      op_(outPlus),
      om_(outMinus),
      cp_(ctrlPlus),
      cm_(ctrlMinus),
      gm_(gm) {}

void VCCS::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real vc = nodeVoltage(x, cp_) - nodeVoltage(x, cm_);
  const Real i = gm_ * vc;
  s.addF(op_, i);
  s.addF(om_, -i);
  if (s.wantMatrices()) {
    s.addG(op_, cp_, gm_);
    s.addG(op_, cm_, -gm_);
    s.addG(om_, cp_, -gm_);
    s.addG(om_, cm_, gm_);
  }
}

void VCCS::compileBatch(BatchCompiler& bc) const {
  bc.vccs(op_, om_, cp_, cm_, gm_);
}

VCVS::VCVS(std::string name, int outPlus, int outMinus, int ctrlPlus,
           int ctrlMinus, int branch, Real gain)
    : Device(std::move(name)),
      op_(outPlus),
      om_(outMinus),
      cp_(ctrlPlus),
      cm_(ctrlMinus),
      br_(branch),
      gain_(gain) {
  RFIC_REQUIRE(branch >= 0, "VCVS: branch unknown required");
}

void VCVS::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real ib = x[static_cast<std::size_t>(br_)];
  const Real vout = nodeVoltage(x, op_) - nodeVoltage(x, om_);
  const Real vc = nodeVoltage(x, cp_) - nodeVoltage(x, cm_);
  s.addF(op_, ib);
  s.addF(om_, -ib);
  s.addF(br_, vout - gain_ * vc);
  if (s.wantMatrices()) {
    s.addG(op_, br_, 1.0);
    s.addG(om_, br_, -1.0);
    s.addG(br_, op_, 1.0);
    s.addG(br_, om_, -1.0);
    s.addG(br_, cp_, -gain_);
    s.addG(br_, cm_, gain_);
  }
}

CCCS::CCCS(std::string name, int outPlus, int outMinus, int ctrlBranch,
           Real gain)
    : Device(std::move(name)),
      op_(outPlus),
      om_(outMinus),
      cb_(ctrlBranch),
      gain_(gain) {
  RFIC_REQUIRE(ctrlBranch >= 0, "CCCS: controlling branch required");
}

void CCCS::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real i = gain_ * x[static_cast<std::size_t>(cb_)];
  s.addF(op_, i);
  s.addF(om_, -i);
  if (s.wantMatrices()) {
    s.addG(op_, cb_, gain_);
    s.addG(om_, cb_, -gain_);
  }
}

CCVS::CCVS(std::string name, int outPlus, int outMinus, int ctrlBranch,
           int branch, Real transresistance)
    : Device(std::move(name)),
      op_(outPlus),
      om_(outMinus),
      cb_(ctrlBranch),
      br_(branch),
      r_(transresistance) {
  RFIC_REQUIRE(ctrlBranch >= 0 && branch >= 0,
               "CCVS: controlling and output branches required");
}

void CCVS::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real ib = x[static_cast<std::size_t>(br_)];
  const Real vout = nodeVoltage(x, op_) - nodeVoltage(x, om_);
  const Real ic = x[static_cast<std::size_t>(cb_)];
  s.addF(op_, ib);
  s.addF(om_, -ib);
  s.addF(br_, vout - r_ * ic);
  if (s.wantMatrices()) {
    s.addG(op_, br_, 1.0);
    s.addG(om_, br_, -1.0);
    s.addG(br_, op_, 1.0);
    s.addG(br_, om_, -1.0);
    s.addG(br_, cb_, -r_);
  }
}

Multiplier::Multiplier(std::string name, int outPlus, int outMinus, int aPlus,
                       int aMinus, int bPlus, int bMinus, Real gain)
    : Device(std::move(name)),
      op_(outPlus),
      om_(outMinus),
      ap_(aPlus),
      am_(aMinus),
      bp_(bPlus),
      bm_(bMinus),
      k_(gain) {}

void Multiplier::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real va = nodeVoltage(x, ap_) - nodeVoltage(x, am_);
  const Real vb = nodeVoltage(x, bp_) - nodeVoltage(x, bm_);
  const Real i = k_ * va * vb;
  s.addF(op_, i);
  s.addF(om_, -i);
  if (s.wantMatrices()) {
    const Real dia = k_ * vb;  // ∂i/∂va
    const Real dib = k_ * va;  // ∂i/∂vb
    s.addG(op_, ap_, dia);
    s.addG(op_, am_, -dia);
    s.addG(op_, bp_, dib);
    s.addG(op_, bm_, -dib);
    s.addG(om_, ap_, -dia);
    s.addG(om_, am_, dia);
    s.addG(om_, bp_, -dib);
    s.addG(om_, bm_, dib);
  }
}

CubicConductance::CubicConductance(std::string name, int n1, int n2, Real g1,
                                   Real g3)
    : Device(std::move(name)), n1_(n1), n2_(n2), g1_(g1), g3_(g3) {}

void CubicConductance::stamp(const RVec& x, const RVec*, Stamp& s) const {
  const Real v = nodeVoltage(x, n1_) - nodeVoltage(x, n2_);
  const Real i = g1_ * v + g3_ * v * v * v;
  const Real di = g1_ + 3.0 * g3_ * v * v;
  s.addF(n1_, i);
  s.addF(n2_, -i);
  if (s.wantMatrices()) {
    s.addG(n1_, n1_, di);
    s.addG(n1_, n2_, -di);
    s.addG(n2_, n1_, -di);
    s.addG(n2_, n2_, di);
  }
}

void CubicConductance::compileBatch(BatchCompiler& bc) const {
  bc.cubicConductance(n1_, n2_, g1_, g3_);
}

}  // namespace rfic::circuit
