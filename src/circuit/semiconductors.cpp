#include "circuit/semiconductors.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

// The actual junction math lives in circuit/junction_kernels.hpp — shared
// verbatim with the batched evaluation engine so the two paths are bitwise
// identical. This file only adapts device instances to the kernels.

namespace rfic::circuit {

namespace {
constexpr Real kKT = 1.380649e-23 * 300.0;
}  // namespace

Real pnjLimit(Real vNew, Real vOld, Real vt, Real vcrit) {
  return kernels::pnjLimit(vNew, vOld, vt, vcrit);
}

// ---------------------------------------------------------------- Diode

Diode::Diode(std::string name, int anode, int cathode, Params p)
    : Device(std::move(name)), na_(anode), nc_(cathode), p_(p) {
  RFIC_REQUIRE(p_.is > 0, "Diode: is must be positive");
  const Real nvt = p_.n * kVt300;
  vcrit_ = nvt * std::log(nvt / (std::sqrt(2.0) * p_.is));
}

kernels::DiodeParams Diode::kparams() const {
  return {p_.is, p_.n * kVt300, vcrit_, p_.gmin,
          p_.cj0, p_.vj, p_.m, p_.fc, p_.tt};
}

Real Diode::current(Real v) const {
  return kernels::junctionCurrent(v, p_.is, p_.n * kVt300).i + p_.gmin * v;
}

void Diode::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  const Real vRaw = nodeVoltage(x, na_) - nodeVoltage(x, nc_);
  const Real vOld =
      xPrev ? nodeVoltage(*xPrev, na_) - nodeVoltage(*xPrev, nc_) : 0.0;
  const kernels::DiodeOut o =
      kernels::diodeEval(kparams(), vRaw, vOld, xPrev != nullptr);
  s.addF(na_, o.i);
  s.addF(nc_, -o.i);
  if (o.q != 0 || o.c != 0) {
    s.addQ(na_, o.q);
    s.addQ(nc_, -o.q);
  }
  if (s.wantMatrices()) {
    s.addG(na_, na_, o.g);
    s.addG(na_, nc_, -o.g);
    s.addG(nc_, na_, -o.g);
    s.addG(nc_, nc_, o.g);
    if (o.c != 0) {
      s.addC(na_, na_, o.c);
      s.addC(na_, nc_, -o.c);
      s.addC(nc_, na_, -o.c);
      s.addC(nc_, nc_, o.c);
    }
  }
}

void Diode::compileBatch(BatchCompiler& bc) const {
  bc.diode(na_, nc_, kparams());
}

void Diode::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real v = nodeVoltage(x, na_) - nodeVoltage(x, nc_);
  const Real i =
      std::abs(kernels::junctionCurrent(v, p_.is, p_.n * kVt300).i);
  NoiseSource n;
  n.nodePlus = na_;
  n.nodeMinus = nc_;
  n.white = 2.0 * kQElectron * i;
  n.flicker = p_.kf * std::pow(i, p_.af);
  n.label = name() + ".shot";
  out.push_back(n);
}

// ------------------------------------------------------------------ BJT

BJT::BJT(std::string name, int collector, int base, int emitter, Params p,
         Type type)
    : Device(std::move(name)),
      nc_(collector),
      nb_(base),
      ne_(emitter),
      p_(p),
      type_(type) {
  RFIC_REQUIRE(p_.is > 0 && p_.bf > 0 && p_.br > 0, "BJT: bad parameters");
  vcrit_ = kVt300 * std::log(kVt300 / (std::sqrt(2.0) * p_.is));
}

kernels::BJTParams BJT::kparams() const {
  return {p_.is, p_.bf, p_.br, p_.vaf,
          p_.cje, p_.cjc, p_.vje, p_.mje, p_.vjc, p_.mjc, p_.fc, p_.tf,
          p_.tr, p_.gmin,
          (type_ == Type::npn) ? 1.0 : -1.0, kVt300, vcrit_};
}

void BJT::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  const Real vb = nodeVoltage(x, nb_);
  const Real ve = nodeVoltage(x, ne_);
  const Real vc = nodeVoltage(x, nc_);
  Real vbOld = 0, veOld = 0, vcOld = 0;
  if (xPrev) {
    vbOld = nodeVoltage(*xPrev, nb_);
    veOld = nodeVoltage(*xPrev, ne_);
    vcOld = nodeVoltage(*xPrev, nc_);
  }
  const kernels::BJTOut o =
      kernels::bjtEval(kparams(), vb, ve, vc, vbOld, veOld, vcOld,
                       xPrev != nullptr, s.wantMatrices());

  s.addF(nc_, o.fC);
  s.addF(nb_, o.fB);
  s.addF(ne_, o.fE);
  s.addQ(nb_, o.qB);
  s.addQ(ne_, o.qE);
  s.addQ(nc_, o.qC);

  if (!s.wantMatrices()) return;

  // Kernel block layout: G rows (collector, base, emitter), C rows (base,
  // emitter, collector), columns (base, emitter, collector).
  const int gRows[3] = {nc_, nb_, ne_};
  for (int r = 0; r < 3; ++r) {
    s.addG(gRows[r], nb_, o.g[3 * r + 0]);
    s.addG(gRows[r], ne_, o.g[3 * r + 1]);
    s.addG(gRows[r], nc_, o.g[3 * r + 2]);
  }
  const int cRows[3] = {nb_, ne_, nc_};
  for (int r = 0; r < 3; ++r) {
    s.addC(cRows[r], nb_, o.c[3 * r + 0]);
    s.addC(cRows[r], ne_, o.c[3 * r + 1]);
    s.addC(cRows[r], nc_, o.c[3 * r + 2]);
  }
}

void BJT::compileBatch(BatchCompiler& bc) const {
  bc.bjt(nc_, nb_, ne_, kparams());
}

void BJT::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real sign = (type_ == Type::npn) ? 1.0 : -1.0;
  const Real vbe = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, ne_));
  const Real vbc = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, nc_));
  const auto fwd = kernels::junctionCurrent(vbe, p_.is, kVt300);
  const auto rev = kernels::junctionCurrent(vbc, p_.is, kVt300);
  const Real ic = std::abs(fwd.i - rev.i);
  const Real ib = std::abs(fwd.i / p_.bf + rev.i / p_.br);

  NoiseSource nc;
  nc.nodePlus = nc_;
  nc.nodeMinus = ne_;
  nc.white = 2.0 * kQElectron * ic;
  nc.label = name() + ".shot_ic";
  out.push_back(nc);

  NoiseSource nb;
  nb.nodePlus = nb_;
  nb.nodeMinus = ne_;
  nb.white = 2.0 * kQElectron * ib;
  nb.flicker = p_.kf * std::pow(ib, p_.af);
  nb.label = name() + ".shot_ib";
  out.push_back(nb);
}

// --------------------------------------------------------------- MOSFET

MOSFET::MOSFET(std::string name, int drain, int gate, int source, Params p,
               Type type)
    : Device(std::move(name)), nd_(drain), ng_(gate), ns_(source), p_(p),
      type_(type) {
  RFIC_REQUIRE(p_.kp > 0, "MOSFET: kp must be positive");
}

kernels::MOSFETParams MOSFET::kparams() const {
  return {p_.vt0, p_.kp, p_.lambda, p_.cgs, p_.cgd, p_.gmin,
          (type_ == Type::nmos) ? 1.0 : -1.0};
}

void MOSFET::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  const Real vd = nodeVoltage(x, nd_);
  const Real vg = nodeVoltage(x, ng_);
  const Real vs = nodeVoltage(x, ns_);
  Real vdOld = 0, vgOld = 0, vsOld = 0;
  if (xPrev) {
    vdOld = nodeVoltage(*xPrev, nd_);
    vgOld = nodeVoltage(*xPrev, ng_);
    vsOld = nodeVoltage(*xPrev, ns_);
  }
  const kernels::MOSFETOut o =
      kernels::mosfetEval(kparams(), vd, vg, vs, vdOld, vgOld, vsOld,
                          xPrev != nullptr, s.wantMatrices());

  s.addF(nd_, o.i);
  s.addF(ns_, -o.i);

  // Fixed overlap capacitances (linear).
  if (p_.cgs > 0) {
    s.addQ(ng_, o.qGS);
    s.addQ(ns_, -o.qGS);
  }
  if (p_.cgd > 0) {
    s.addQ(ng_, o.qGD);
    s.addQ(nd_, -o.qGD);
  }

  if (!s.wantMatrices()) return;

  s.addG(nd_, ng_, o.g[0]);
  s.addG(nd_, nd_, o.g[1]);
  s.addG(nd_, ns_, o.g[2]);
  s.addG(ns_, ng_, o.g[3]);
  s.addG(ns_, nd_, o.g[4]);
  s.addG(ns_, ns_, o.g[5]);

  if (p_.cgs > 0) {
    s.addC(ng_, ng_, p_.cgs);
    s.addC(ng_, ns_, -p_.cgs);
    s.addC(ns_, ng_, -p_.cgs);
    s.addC(ns_, ns_, p_.cgs);
  }
  if (p_.cgd > 0) {
    s.addC(ng_, ng_, p_.cgd);
    s.addC(ng_, nd_, -p_.cgd);
    s.addC(nd_, ng_, -p_.cgd);
    s.addC(nd_, nd_, p_.cgd);
  }
}

void MOSFET::compileBatch(BatchCompiler& bc) const {
  bc.mosfet(nd_, ng_, ns_, kparams());
}

void MOSFET::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real sign = (type_ == Type::nmos) ? 1.0 : -1.0;
  Real vgs = sign * (nodeVoltage(x, ng_) - nodeVoltage(x, ns_));
  Real vds = sign * (nodeVoltage(x, nd_) - nodeVoltage(x, ns_));
  if (vds < 0) {
    const Real v = vgs - vds;
    vds = -vds;
    vgs = v;
  }
  const kernels::MOSFETOpPoint op =
      kernels::mosfetCurrent(vgs, vds, p_.kp, p_.vt0, p_.lambda);
  NoiseSource n;
  n.nodePlus = nd_;
  n.nodeMinus = ns_;
  n.white = 8.0 / 3.0 * kKT * op.gm;  // channel thermal noise
  n.flicker = p_.kf * std::pow(std::abs(op.id), p_.af);
  n.label = name() + ".channel";
  out.push_back(n);
}

}  // namespace rfic::circuit
