#include "circuit/semiconductors.hpp"

#include <cmath>

namespace rfic::circuit {

namespace {

constexpr Real kKT = 1.380649e-23 * 300.0;
// Beyond this junction voltage the exponential is continued linearly to
// keep Newton iterates finite.
constexpr Real kExpLimit = 80.0;

// exp(v/nvt) with linear continuation, plus derivative.
struct JunctionExp {
  Real i;   // Is*(exp-1)
  Real gd;  // dI/dv
};
JunctionExp junctionCurrent(Real v, Real is, Real nvt) {
  JunctionExp out;
  const Real arg = v / nvt;
  if (arg > kExpLimit) {
    const Real e = std::exp(kExpLimit);
    out.i = is * (e * (1.0 + (arg - kExpLimit)) - 1.0);
    out.gd = is * e / nvt;
  } else if (arg < -kExpLimit) {
    out.i = -is;
    out.gd = 0.0;
  } else {
    const Real e = std::exp(arg);
    out.i = is * (e - 1.0);
    out.gd = is * e / nvt;
  }
  return out;
}

// Depletion charge and capacitance of a graded junction with SPICE's
// linearization above fc*vj.
struct JunctionCharge {
  Real q, c;
};
JunctionCharge depletionCharge(Real v, Real cj0, Real vj, Real m, Real fc) {
  JunctionCharge out{0, 0};
  if (cj0 <= 0) return out;
  const Real vth = fc * vj;
  if (v < vth) {
    const Real u = 1.0 - v / vj;
    const Real um = std::pow(u, -m);
    out.c = cj0 * um;
    out.q = cj0 * vj / (1.0 - m) * (1.0 - u * um);  // = cj0*vj/(1-m)*(1-u^{1-m})
  } else {
    // Linear continuation with matching value and slope at vth.
    const Real u = 1.0 - fc;
    const Real um = std::pow(u, -m);
    const Real cAt = cj0 * um;
    const Real qAt = cj0 * vj / (1.0 - m) * (1.0 - u * um);
    const Real dcdv = cj0 * m / vj * std::pow(u, -m - 1.0);
    const Real dv = v - vth;
    out.c = cAt + dcdv * dv;
    out.q = qAt + cAt * dv + 0.5 * dcdv * dv * dv;
  }
  return out;
}

}  // namespace

Real pnjLimit(Real vNew, Real vOld, Real vt, Real vcrit) {
  if (vNew > vcrit && std::abs(vNew - vOld) > 2.0 * vt) {
    if (vOld > 0) {
      const Real arg = 1.0 + (vNew - vOld) / vt;
      vNew = (arg > 0) ? vOld + vt * std::log(arg) : vcrit;
    } else {
      vNew = vt * std::log(vNew / vt);
    }
  }
  return vNew;
}

// ---------------------------------------------------------------- Diode

Diode::Diode(std::string name, int anode, int cathode, Params p)
    : Device(std::move(name)), na_(anode), nc_(cathode), p_(p) {
  RFIC_REQUIRE(p_.is > 0, "Diode: is must be positive");
  const Real nvt = p_.n * kVt300;
  vcrit_ = nvt * std::log(nvt / (std::sqrt(2.0) * p_.is));
}

Real Diode::current(Real v) const {
  return junctionCurrent(v, p_.is, p_.n * kVt300).i + p_.gmin * v;
}

void Diode::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  const Real vRaw = nodeVoltage(x, na_) - nodeVoltage(x, nc_);
  Real v = vRaw;
  if (xPrev) {
    const Real vOld = nodeVoltage(*xPrev, na_) - nodeVoltage(*xPrev, nc_);
    v = pnjLimit(v, vOld, p_.n * kVt300, vcrit_);
  }
  // Evaluate at the limited voltage and extend linearly to the raw iterate
  // (SPICE convention): keeps the Newton residual consistent with the
  // Jacobian while the exponential is tamed.
  const auto [ilim, gd] = junctionCurrent(v, p_.is, p_.n * kVt300);
  const Real idio = ilim + gd * (vRaw - v);
  const Real i = idio + p_.gmin * vRaw;
  const Real g = gd + p_.gmin;
  s.addF(na_, i);
  s.addF(nc_, -i);

  const auto [qj, cj] = depletionCharge(v, p_.cj0, p_.vj, p_.m, p_.fc);
  const Real q = qj + p_.tt * idio;
  const Real c = cj + p_.tt * gd;
  if (q != 0 || c != 0) {
    s.addQ(na_, q);
    s.addQ(nc_, -q);
  }
  if (s.wantMatrices()) {
    s.addG(na_, na_, g);
    s.addG(na_, nc_, -g);
    s.addG(nc_, na_, -g);
    s.addG(nc_, nc_, g);
    if (c != 0) {
      s.addC(na_, na_, c);
      s.addC(na_, nc_, -c);
      s.addC(nc_, na_, -c);
      s.addC(nc_, nc_, c);
    }
  }
}

void Diode::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real v = nodeVoltage(x, na_) - nodeVoltage(x, nc_);
  const Real i = std::abs(junctionCurrent(v, p_.is, p_.n * kVt300).i);
  NoiseSource n;
  n.nodePlus = na_;
  n.nodeMinus = nc_;
  n.white = 2.0 * kQElectron * i;
  n.flicker = p_.kf * std::pow(i, p_.af);
  n.label = name() + ".shot";
  out.push_back(n);
}

// ------------------------------------------------------------------ BJT

BJT::BJT(std::string name, int collector, int base, int emitter, Params p,
         Type type)
    : Device(std::move(name)),
      nc_(collector),
      nb_(base),
      ne_(emitter),
      p_(p),
      type_(type) {
  RFIC_REQUIRE(p_.is > 0 && p_.bf > 0 && p_.br > 0, "BJT: bad parameters");
  vcrit_ = kVt300 * std::log(kVt300 / (std::sqrt(2.0) * p_.is));
}

void BJT::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  // PNP handled by polarity reversal of both junction voltages and all
  // resulting currents/charges.
  const Real sign = (type_ == Type::npn) ? 1.0 : -1.0;
  const Real vbeRaw = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, ne_));
  const Real vbcRaw = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, nc_));
  Real vbe = vbeRaw, vbc = vbcRaw;
  if (xPrev) {
    const Real vbeOld =
        sign * (nodeVoltage(*xPrev, nb_) - nodeVoltage(*xPrev, ne_));
    const Real vbcOld =
        sign * (nodeVoltage(*xPrev, nb_) - nodeVoltage(*xPrev, nc_));
    vbe = pnjLimit(vbe, vbeOld, kVt300, vcrit_);
    vbc = pnjLimit(vbc, vbcOld, kVt300, vcrit_);
  }

  // Junction currents at the limited voltages, extended linearly to the raw
  // iterate (SPICE convention — keeps residual and Jacobian consistent).
  auto fwd = junctionCurrent(vbe, p_.is, kVt300);  // Icc
  auto rev = junctionCurrent(vbc, p_.is, kVt300);  // Iec
  fwd.i += fwd.gd * (vbeRaw - vbe);
  rev.i += rev.gd * (vbcRaw - vbc);

  // Early effect on the transport current only: the SPICE first-order form
  // Ict = (Icc − Iec)·(1 − vbc/vaf); vbc < 0 in forward-active, so the
  // factor exceeds 1 and grows with collector swing.
  Real kq = 1.0, dkq_dvbc = 0.0;
  if (p_.vaf > 0) {
    kq = 1.0 - vbc / p_.vaf;
    dkq_dvbc = -1.0 / p_.vaf;
  }
  const Real ict = kq * (fwd.i - rev.i);
  const Real ib = fwd.i / p_.bf + rev.i / p_.br + p_.gmin * (vbeRaw + vbcRaw);
  const Real icStd = ict - rev.i / p_.br - p_.gmin * vbcRaw;
  const Real ieStd = -ict - fwd.i / p_.bf - p_.gmin * vbeRaw;

  // Node currents (type-normalized direction).
  s.addF(nc_, sign * icStd);
  s.addF(nb_, sign * ib);
  s.addF(ne_, sign * ieStd);

  // Charges.
  const auto qbeJ = depletionCharge(vbe, p_.cje, p_.vje, p_.mje, p_.fc);
  const auto qbcJ = depletionCharge(vbc, p_.cjc, p_.vjc, p_.mjc, p_.fc);
  const Real qbe = qbeJ.q + p_.tf * fwd.i;
  const Real qbc = qbcJ.q + p_.tr * rev.i;
  const Real cbe = qbeJ.c + p_.tf * fwd.gd;
  const Real cbc = qbcJ.c + p_.tr * rev.gd;
  s.addQ(nb_, sign * (qbe + qbc));
  s.addQ(ne_, sign * (-qbe));
  s.addQ(nc_, sign * (-qbc));

  if (!s.wantMatrices()) return;

  // Derivatives w.r.t. (vbe, vbc); chain rule to node voltages is applied
  // through the helper below. d(vbe)/d(vb,ve) = sign·(+1,−1) etc., and the
  // outer sign on the currents cancels the inner one, so stamps are in
  // terms of the actual node voltages with no residual sign.
  const Real dic_dvbe = kq * fwd.gd;
  const Real dic_dvbc =
      dkq_dvbc * (fwd.i - rev.i) - kq * rev.gd - rev.gd / p_.br - p_.gmin;
  const Real dib_dvbe = fwd.gd / p_.bf + p_.gmin;
  const Real dib_dvbc = rev.gd / p_.br + p_.gmin;
  const Real die_dvbe = -kq * fwd.gd - fwd.gd / p_.bf - p_.gmin;
  const Real die_dvbc = -dkq_dvbc * (fwd.i - rev.i) + kq * rev.gd;

  auto stampPair = [&s, this](int row, Real dvbe, Real dvbc) {
    // v_be = sign(v_b − v_e), v_bc = sign(v_b − v_c); outer current sign
    // multiplies, so total factor is sign² = 1 on node-voltage stamps.
    s.addG(row, nb_, dvbe + dvbc);
    s.addG(row, ne_, -dvbe);
    s.addG(row, nc_, -dvbc);
  };
  stampPair(nc_, dic_dvbe, dic_dvbc);
  stampPair(nb_, dib_dvbe, dib_dvbc);
  stampPair(ne_, die_dvbe, die_dvbc);

  auto stampCapPair = [&s, this](int row, Real dvbe, Real dvbc) {
    s.addC(row, nb_, dvbe + dvbc);
    s.addC(row, ne_, -dvbe);
    s.addC(row, nc_, -dvbc);
  };
  stampCapPair(nb_, cbe, cbc);
  stampCapPair(ne_, -cbe, 0.0);
  stampCapPair(nc_, 0.0, -cbc);
}

void BJT::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real sign = (type_ == Type::npn) ? 1.0 : -1.0;
  const Real vbe = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, ne_));
  const Real vbc = sign * (nodeVoltage(x, nb_) - nodeVoltage(x, nc_));
  const auto fwd = junctionCurrent(vbe, p_.is, kVt300);
  const auto rev = junctionCurrent(vbc, p_.is, kVt300);
  const Real ic = std::abs(fwd.i - rev.i);
  const Real ib = std::abs(fwd.i / p_.bf + rev.i / p_.br);

  NoiseSource nc;
  nc.nodePlus = nc_;
  nc.nodeMinus = ne_;
  nc.white = 2.0 * kQElectron * ic;
  nc.label = name() + ".shot_ic";
  out.push_back(nc);

  NoiseSource nb;
  nb.nodePlus = nb_;
  nb.nodeMinus = ne_;
  nb.white = 2.0 * kQElectron * ib;
  nb.flicker = p_.kf * std::pow(ib, p_.af);
  nb.label = name() + ".shot_ib";
  out.push_back(nb);
}

// --------------------------------------------------------------- MOSFET

MOSFET::MOSFET(std::string name, int drain, int gate, int source, Params p,
               Type type)
    : Device(std::move(name)), nd_(drain), ng_(gate), ns_(source), p_(p),
      type_(type) {
  RFIC_REQUIRE(p_.kp > 0, "MOSFET: kp must be positive");
}

MOSFET::OpPoint MOSFET::evalCurrent(Real vgs, Real vds) const {
  OpPoint op{0, 0, 0};
  const Real vov = vgs - p_.vt0;
  if (vov <= 0) return op;  // cutoff
  const Real cl = 1.0 + p_.lambda * vds;
  if (vds < vov) {
    // Triode.
    op.id = p_.kp * (vov * vds - 0.5 * vds * vds) * cl;
    op.gm = p_.kp * vds * cl;
    op.gds = p_.kp * (vov - vds) * cl +
             p_.kp * (vov * vds - 0.5 * vds * vds) * p_.lambda;
  } else {
    // Saturation.
    op.id = 0.5 * p_.kp * vov * vov * cl;
    op.gm = p_.kp * vov * cl;
    op.gds = 0.5 * p_.kp * vov * vov * p_.lambda;
  }
  return op;
}

void MOSFET::stamp(const RVec& x, const RVec* xPrev, Stamp& s) const {
  const Real sign = (type_ == Type::nmos) ? 1.0 : -1.0;
  Real vgs = sign * (nodeVoltage(x, ng_) - nodeVoltage(x, ns_));
  Real vds = sign * (nodeVoltage(x, nd_) - nodeVoltage(x, ns_));
  if (xPrev) {
    // Simple step limiting: keep the gate drive change bounded so the
    // square law cannot overshoot wildly.
    const Real vgsOld = sign * (nodeVoltage(*xPrev, ng_) - nodeVoltage(*xPrev, ns_));
    const Real dv = vgs - vgsOld;
    const Real maxStep = 1.0;
    if (std::abs(dv) > maxStep) vgs = vgsOld + (dv > 0 ? maxStep : -maxStep);
  }

  // Source-drain symmetry: operate on the terminal pair with vds >= 0.
  bool swapped = false;
  Real vgsEff = vgs, vdsEff = vds;
  if (vds < 0) {
    swapped = true;
    vdsEff = -vds;
    vgsEff = vgs - vds;  // gate-to-(effective source = drain terminal)
  }
  const OpPoint op = evalCurrent(vgsEff, vdsEff);
  const Real idFlow = swapped ? -op.id : op.id;  // current drain->source
  const Real i = sign * idFlow + sign * p_.gmin * vds;

  s.addF(nd_, i);
  s.addF(ns_, -i);

  // Fixed overlap capacitances (linear).
  const Real vgd = nodeVoltage(x, ng_) - nodeVoltage(x, nd_);
  const Real vgsRaw = nodeVoltage(x, ng_) - nodeVoltage(x, ns_);
  if (p_.cgs > 0) {
    s.addQ(ng_, p_.cgs * vgsRaw);
    s.addQ(ns_, -p_.cgs * vgsRaw);
  }
  if (p_.cgd > 0) {
    s.addQ(ng_, p_.cgd * vgd);
    s.addQ(nd_, -p_.cgd * vgd);
  }

  if (!s.wantMatrices()) return;

  // Map derivatives back to the unswapped terminals.
  Real gm, gds_eff, gmSrc;  // di/dvg, di/dvd, di/dvs with i = drain current
  if (!swapped) {
    gm = op.gm;
    gds_eff = op.gds;
    gmSrc = -(op.gm + op.gds);
  } else {
    // i = -id(vgs', vds') with vgs' = vgs - vds (gate to real drain),
    // vds' = -vds. d i/d vg = -gm'; d i/d vd = gm' + gds'; chain rule:
    gm = -op.gm;
    gds_eff = op.gm + op.gds;
    gmSrc = -op.gds;
  }
  // Type sign: for PMOS both the controlling voltages and the current flip,
  // so conductances stamp positively in node coordinates (sign²).
  const Real gmin = p_.gmin;
  s.addG(nd_, ng_, gm);
  s.addG(nd_, nd_, gds_eff + gmin);
  s.addG(nd_, ns_, gmSrc - gmin);
  s.addG(ns_, ng_, -gm);
  s.addG(ns_, nd_, -gds_eff - gmin);
  s.addG(ns_, ns_, -gmSrc + gmin);

  if (p_.cgs > 0) {
    s.addC(ng_, ng_, p_.cgs);
    s.addC(ng_, ns_, -p_.cgs);
    s.addC(ns_, ng_, -p_.cgs);
    s.addC(ns_, ns_, p_.cgs);
  }
  if (p_.cgd > 0) {
    s.addC(ng_, ng_, p_.cgd);
    s.addC(ng_, nd_, -p_.cgd);
    s.addC(nd_, ng_, -p_.cgd);
    s.addC(nd_, nd_, p_.cgd);
  }
}

void MOSFET::noiseSources(const RVec& x, std::vector<NoiseSource>& out) const {
  const Real sign = (type_ == Type::nmos) ? 1.0 : -1.0;
  Real vgs = sign * (nodeVoltage(x, ng_) - nodeVoltage(x, ns_));
  Real vds = sign * (nodeVoltage(x, nd_) - nodeVoltage(x, ns_));
  if (vds < 0) {
    const Real v = vgs - vds;
    vds = -vds;
    vgs = v;
  }
  const OpPoint op = evalCurrent(vgs, vds);
  NoiseSource n;
  n.nodePlus = nd_;
  n.nodeMinus = ns_;
  n.white = 8.0 / 3.0 * kKT * op.gm;  // channel thermal noise
  n.flicker = p_.kf * std::pow(std::abs(op.id), p_.af);
  n.label = name() + ".channel";
  out.push_back(n);
}

}  // namespace rfic::circuit
