#include "circuit/device_batch.hpp"

#include "circuit/sources.hpp"

namespace rfic::circuit {

// ----------------------------------------------------- registration

void DeviceBatch::beginOp(OpKind kind, std::uint32_t idx) {
  ops_.push_back({kind, idx, static_cast<std::uint32_t>(pending_.size()), 0});
  took_ = true;
}

void BatchCompiler::resistor(int n1, int n2, Real g) {
  b_.beginOp(DeviceBatch::OpKind::resistor,
             static_cast<std::uint32_t>(b_.res_.size()));
  b_.res_.push_back({n1, n2, g});
  b_.constEntry(false, n1, n1, g);
  b_.constEntry(false, n1, n2, -g);
  b_.constEntry(false, n2, n1, -g);
  b_.constEntry(false, n2, n2, g);
  b_.ops_.back().nEntries = 4;
}

void BatchCompiler::capacitor(int n1, int n2, Real c) {
  b_.beginOp(DeviceBatch::OpKind::capacitor,
             static_cast<std::uint32_t>(b_.cap_.size()));
  b_.cap_.push_back({n1, n2, c});
  b_.constEntry(true, n1, n1, c);
  b_.constEntry(true, n1, n2, -c);
  b_.constEntry(true, n2, n1, -c);
  b_.constEntry(true, n2, n2, c);
  b_.ops_.back().nEntries = 4;
}

void BatchCompiler::inductor(int n1, int n2, int branch, Real l) {
  b_.beginOp(DeviceBatch::OpKind::inductor,
             static_cast<std::uint32_t>(b_.ind_.size()));
  b_.ind_.push_back({n1, n2, branch, l});
  b_.constEntry(false, n1, branch, 1.0);
  b_.constEntry(false, n2, branch, -1.0);
  b_.constEntry(false, branch, n1, -1.0);
  b_.constEntry(false, branch, n2, 1.0);
  b_.constEntry(true, branch, branch, l);
  b_.ops_.back().nEntries = 5;
}

void BatchCompiler::vccs(int outPlus, int outMinus, int ctrlPlus,
                         int ctrlMinus, Real gm) {
  b_.beginOp(DeviceBatch::OpKind::vccs,
             static_cast<std::uint32_t>(b_.vccs_.size()));
  b_.vccs_.push_back({outPlus, outMinus, ctrlPlus, ctrlMinus, gm});
  b_.constEntry(false, outPlus, ctrlPlus, gm);
  b_.constEntry(false, outPlus, ctrlMinus, -gm);
  b_.constEntry(false, outMinus, ctrlPlus, -gm);
  b_.constEntry(false, outMinus, ctrlMinus, gm);
  b_.ops_.back().nEntries = 4;
}

void BatchCompiler::vsource(int nPlus, int nMinus, int branch,
                            const Waveform* w, TimeAxis axis) {
  b_.beginOp(DeviceBatch::OpKind::vsource,
             static_cast<std::uint32_t>(b_.vsrc_.size()));
  b_.vsrc_.push_back({nPlus, nMinus, branch, w, axis, b_.addWave(w, axis)});
  b_.constEntry(false, nPlus, branch, 1.0);
  b_.constEntry(false, nMinus, branch, -1.0);
  b_.constEntry(false, branch, nPlus, 1.0);
  b_.constEntry(false, branch, nMinus, -1.0);
  b_.ops_.back().nEntries = 4;
}

void BatchCompiler::isource(int nPlus, int nMinus, const Waveform* w,
                            TimeAxis axis) {
  b_.beginOp(DeviceBatch::OpKind::isource,
             static_cast<std::uint32_t>(b_.isrc_.size()));
  b_.isrc_.push_back({nPlus, nMinus, -1, w, axis, b_.addWave(w, axis)});
}

void BatchCompiler::cubicConductance(int n1, int n2, Real g1, Real g3) {
  b_.beginOp(DeviceBatch::OpKind::cubic,
             static_cast<std::uint32_t>(b_.cubic_.size()));
  b_.cubic_.push_back({n1, n2, g1, g3});
  b_.entry(false, n1, n1);
  b_.entry(false, n1, n2);
  b_.entry(false, n2, n1);
  b_.entry(false, n2, n2);
  b_.ops_.back().nEntries = 4;
}

void BatchCompiler::diode(int anode, int cathode,
                          const kernels::DiodeParams& p) {
  b_.beginOp(DeviceBatch::OpKind::diode,
             static_cast<std::uint32_t>(b_.diode_.size()));
  DeviceBatch::DiodeTable& t = b_.diode_;
  t.is.push_back(p.is);
  t.nvt.push_back(p.nvt);
  t.vcrit.push_back(p.vcrit);
  t.gmin.push_back(p.gmin);
  t.cj0.push_back(p.cj0);
  t.vj.push_back(p.vj);
  t.m.push_back(p.m);
  t.fc.push_back(p.fc);
  t.tt.push_back(p.tt);
  t.na.push_back(anode);
  t.nc.push_back(cathode);
  const bool hasC = p.cj0 > 0 || p.tt > 0;
  t.hasC.push_back(hasC ? 1 : 0);
  b_.entry(false, anode, anode);
  b_.entry(false, anode, cathode);
  b_.entry(false, cathode, anode);
  b_.entry(false, cathode, cathode);
  if (hasC) {
    b_.entry(true, anode, anode);
    b_.entry(true, anode, cathode);
    b_.entry(true, cathode, anode);
    b_.entry(true, cathode, cathode);
  }
  b_.ops_.back().nEntries = hasC ? 8 : 4;
}

void BatchCompiler::bjt(int collector, int base, int emitter,
                        const kernels::BJTParams& p) {
  b_.beginOp(DeviceBatch::OpKind::bjt,
             static_cast<std::uint32_t>(b_.bjt_.size()));
  b_.bjt_.p.push_back(p);
  b_.bjt_.nc.push_back(collector);
  b_.bjt_.nb.push_back(base);
  b_.bjt_.ne.push_back(emitter);
  // G rows in scalar emission order (collector, base, emitter), C rows in
  // (base, emitter, collector); columns (base, emitter, collector).
  for (const int row : {collector, base, emitter}) {
    b_.entry(false, row, base);
    b_.entry(false, row, emitter);
    b_.entry(false, row, collector);
  }
  for (const int row : {base, emitter, collector}) {
    b_.entry(true, row, base);
    b_.entry(true, row, emitter);
    b_.entry(true, row, collector);
  }
  b_.ops_.back().nEntries = 18;
}

void BatchCompiler::mosfet(int drain, int gate, int source,
                           const kernels::MOSFETParams& p) {
  b_.beginOp(DeviceBatch::OpKind::mosfet,
             static_cast<std::uint32_t>(b_.mos_.size()));
  b_.mos_.p.push_back(p);
  b_.mos_.nd.push_back(drain);
  b_.mos_.ng.push_back(gate);
  b_.mos_.ns.push_back(source);
  const bool hasCgs = p.cgs > 0;
  const bool hasCgd = p.cgd > 0;
  b_.mos_.hasCgs.push_back(hasCgs ? 1 : 0);
  b_.mos_.hasCgd.push_back(hasCgd ? 1 : 0);
  b_.entry(false, drain, gate);
  b_.entry(false, drain, drain);
  b_.entry(false, drain, source);
  b_.entry(false, source, gate);
  b_.entry(false, source, drain);
  b_.entry(false, source, source);
  std::uint32_t n = 6;
  if (hasCgs) {
    b_.constEntry(true, gate, gate, p.cgs);
    b_.constEntry(true, gate, source, -p.cgs);
    b_.constEntry(true, source, gate, -p.cgs);
    b_.constEntry(true, source, source, p.cgs);
    n += 4;
  }
  if (hasCgd) {
    b_.constEntry(true, gate, gate, p.cgd);
    b_.constEntry(true, gate, drain, -p.cgd);
    b_.constEntry(true, drain, gate, -p.cgd);
    b_.constEntry(true, drain, drain, p.cgd);
    n += 4;
  }
  b_.ops_.back().nEntries = n;
}

// --------------------------------------------------------- compilation

void DeviceBatch::compile(const Circuit& ckt, const sparse::RCSR& pattern,
                          std::size_t dim, const RVec& x, const RVec* xPrev,
                          Real t1, Real t2) {
  ops_.clear();
  pending_.clear();
  slots_.clear();
  genericDevs_.clear();
  waves_.clear();
  res_.clear();
  cap_.clear();
  ind_.clear();
  vccs_.clear();
  vsrc_.clear();
  isrc_.clear();
  cubic_.clear();
  diode_ = DiodeTable{};
  bjt_ = BJTTable{};
  mos_ = MOSFETTable{};

  // Registration pass: every device either claims a compiled op or falls
  // back to the generic walk (including all user-defined Device types).
  BatchCompiler bc(*this);
  std::vector<const Device*> opDevice;
  opDevice.reserve(ckt.devices().size());
  for (const auto& dev : ckt.devices()) {
    took_ = false;
    dev->compileBatch(bc);
    if (!took_) {
      ops_.push_back({OpKind::generic,
                      static_cast<std::uint32_t>(genericDevs_.size()),
                      static_cast<std::uint32_t>(pending_.size()), 0});
      genericDevs_.push_back(dev.get());
    }
    opDevice.push_back(dev.get());
  }
  RFIC_REQUIRE(ops_.size() == ckt.devices().size(),
               "DeviceBatch: compileBatch must register exactly one op");

  // Resolve every registered entry to its CSR slot. An op with an entry the
  // discovery pattern lacks (a conditional stamp that was inactive at the
  // probe point) is demoted to the generic walk: its scalar stamp will
  // overflow when the entry activates, triggering the workspace's usual
  // growPattern + recompile, so both evaluation modes grow the pattern at
  // the same moment and stay bitwise-aligned.
  const auto& rp = pattern.rowPtr();
  const auto& ci = pattern.colIdx();
  constexpr std::int64_t kMissing = -3;
  const auto find = [&](std::int64_t row, std::int64_t col) -> std::int64_t {
    if (row < 0 || col < 0) return kDropped;
    const auto r = static_cast<std::size_t>(row);
    const auto c = static_cast<std::size_t>(col);
    std::size_t lo = rp[r], hi = rp[r + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci[mid] < c)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo < rp[r + 1] && ci[lo] == c) return static_cast<std::int64_t>(lo);
    return kMissing;
  };
  slots_.assign(pending_.size(), kDropped);
  for (std::size_t k = 0; k < ops_.size(); ++k) {
    Op& op = ops_[k];
    if (op.kind == OpKind::generic) continue;
    bool ok = true;
    for (std::uint32_t j = 0; j < op.nEntries && ok; ++j) {
      const PendingEntry& e = pending_[op.slotBase + j];
      const std::int64_t sl = find(e.row, e.col);
      if (sl == kMissing)
        ok = false;
      else
        slots_[op.slotBase + j] = static_cast<std::int32_t>(sl);
    }
    if (!ok) {
      for (std::uint32_t j = 0; j < op.nEntries; ++j)
        slots_[op.slotBase + j] = kDropped;
      op.kind = OpKind::generic;
      op.idx = static_cast<std::uint32_t>(genericDevs_.size());
      op.nEntries = 0;
      genericDevs_.push_back(opDevice[k]);
    }
  }

  // Classify slots: a slot is "dynamic" if any non-constant compiled entry
  // or any generic device touches it. Constant contributions to a dynamic
  // slot must stay in the ordered walk, or the scalar accumulation order
  // (and therefore the bitwise sum) would change.
  const std::size_t nnz = pattern.nnz();
  std::vector<std::uint8_t> gDyn(nnz, 0), cDyn(nnz, 0);
  for (const Op& op : ops_) {
    if (op.kind == OpKind::generic) continue;
    for (std::uint32_t j = 0; j < op.nEntries; ++j) {
      const PendingEntry& e = pending_[op.slotBase + j];
      const std::int32_t sl = slots_[op.slotBase + j];
      if (sl >= 0 && !e.isConst) (e.isC ? cDyn : gDyn)[sl] = 1;
    }
  }
  if (!genericDevs_.empty()) {
    // Probe generic devices' matrix footprint at the pattern's discovery
    // point. Entries missing from the pattern are ignored here — they will
    // overflow at evaluation time and heal through growPattern.
    RVec f(dim), q(dim), b(dim);
    sparse::RTriplets gT(dim, dim), cT(dim, dim);
    Stamp probe(f, q, b, &gT, &cT, t1, t2);
    for (const Device* dev : genericDevs_) dev->stamp(x, xPrev, probe);
    for (const auto& en : gT.entries()) {
      const std::int64_t sl = find(static_cast<std::int64_t>(en.row),
                                   static_cast<std::int64_t>(en.col));
      if (sl >= 0) gDyn[static_cast<std::size_t>(sl)] = 1;
    }
    for (const auto& en : cT.entries()) {
      const std::int64_t sl = find(static_cast<std::int64_t>(en.row),
                                   static_cast<std::int64_t>(en.col));
      if (sl >= 0) cDyn[static_cast<std::size_t>(sl)] = 1;
    }
  }

  // Fold constants into the prefill templates. Walking ops in device order
  // keeps each template slot's summation order identical to the scalar
  // walk's for its (all-constant) contributions.
  gTemplate_.assign(nnz, 0.0);
  cTemplate_.assign(nnz, 0.0);
  for (const Op& op : ops_) {
    if (op.kind == OpKind::generic) continue;
    for (std::uint32_t j = 0; j < op.nEntries; ++j) {
      const PendingEntry& e = pending_[op.slotBase + j];
      std::int32_t& sl = slots_[op.slotBase + j];
      if (sl >= 0 && e.isConst &&
          (e.isC ? cDyn : gDyn)[static_cast<std::size_t>(sl)] == 0) {
        (e.isC ? cTemplate_ : gTemplate_)[static_cast<std::size_t>(sl)] +=
            e.constVal;
        sl = kPrefilled;
      }
    }
  }
  compiled_ = true;
}

std::size_t DeviceBatch::bytes() const {
  std::size_t b = ops_.size() * sizeof(Op) +
                  pending_.size() * sizeof(PendingEntry) +
                  slots_.size() * sizeof(std::int32_t) +
                  (gTemplate_.size() + cTemplate_.size()) * sizeof(Real);
  b += res_.size() * sizeof(ResistorOp) + cap_.size() * sizeof(CapacitorOp) +
       ind_.size() * sizeof(InductorOp) + vccs_.size() * sizeof(VccsOp) +
       (vsrc_.size() + isrc_.size()) * sizeof(SourceOp) +
       cubic_.size() * sizeof(CubicOp);
  b += diode_.size() * (9 * sizeof(Real) + 2 * sizeof(std::int32_t) + 1);
  b += bjt_.size() * (sizeof(kernels::BJTParams) + 3 * sizeof(std::int32_t));
  b += mos_.size() *
       (sizeof(kernels::MOSFETParams) + 3 * sizeof(std::int32_t) + 2);
  return b;
}

void DeviceBatch::evalWaveforms(Real t1, Real t2, Real* out) const {
  for (std::size_t k = 0; k < waves_.size(); ++k)
    out[k] = waves_[k].w->value(waves_[k].axis == TimeAxis::fast ? t2 : t1);
}

// ---------------------------------------------------------- evaluation

void DeviceBatch::ensureScratch(Scratch& sc) const {
  // Grow-once: sizes only change on recompile.
  if (sc.diode.size() != diode_.size())
    sc.diode.resize(diode_.size());  // rt: allow(rt-alloc) grow-once scratch
  if (sc.bjt.size() != bjt_.size())
    sc.bjt.resize(bjt_.size());  // rt: allow(rt-alloc) grow-once scratch
  if (sc.mosfet.size() != mos_.size())
    sc.mosfet.resize(mos_.size());  // rt: allow(rt-alloc) grow-once scratch
}

void DeviceBatch::ensureSweepScratch(SweepScratch& sc) const {
  // Grow-once: sizes only change on recompile.
  if (sc.diode.size() != diode_.size() * kSweepChunk)
    sc.diode.resize(diode_.size() *
                    kSweepChunk);  // rt: allow(rt-alloc) grow-once scratch
  if (sc.bjt.size() != bjt_.size() * kSweepChunk)
    sc.bjt.resize(bjt_.size() *
                  kSweepChunk);  // rt: allow(rt-alloc) grow-once scratch
  if (sc.mosfet.size() != mos_.size() * kSweepChunk)
    sc.mosfet.resize(mos_.size() *
                     kSweepChunk);  // rt: allow(rt-alloc) grow-once scratch
}

void DeviceBatch::eval(const RVec& x, const RVec* xPrev, Stamp& s,
                       std::vector<Real>* gVals, std::vector<Real>* cVals,
                       Scratch& sc, const Real* waveVals) const {
  const bool wantMat = s.wantMatrices();
  const bool limit = xPrev != nullptr;
  ensureScratch(sc);

  // Phase A: flat kernel loops over the SoA tables. Each iteration is an
  // independent elementwise map — no cross-instance state — so per-element
  // results are identical to the scalar path no matter how the compiler
  // schedules or unrolls the loop.
  for (std::size_t i = 0, n = diode_.size(); i < n; ++i) {
    const kernels::DiodeParams p{diode_.is[i], diode_.nvt[i], diode_.vcrit[i],
                                 diode_.gmin[i], diode_.cj0[i], diode_.vj[i],
                                 diode_.m[i],   diode_.fc[i],  diode_.tt[i]};
    const Real v =
        nodeVoltage(x, diode_.na[i]) - nodeVoltage(x, diode_.nc[i]);
    const Real vOld = limit ? nodeVoltage(*xPrev, diode_.na[i]) -
                                  nodeVoltage(*xPrev, diode_.nc[i])
                            : 0.0;
    sc.diode[i] = kernels::diodeEval(p, v, vOld, limit);
  }
  for (std::size_t i = 0, n = bjt_.size(); i < n; ++i) {
    const Real vb = nodeVoltage(x, bjt_.nb[i]);
    const Real ve = nodeVoltage(x, bjt_.ne[i]);
    const Real vc = nodeVoltage(x, bjt_.nc[i]);
    Real vbOld = 0, veOld = 0, vcOld = 0;
    if (limit) {
      vbOld = nodeVoltage(*xPrev, bjt_.nb[i]);
      veOld = nodeVoltage(*xPrev, bjt_.ne[i]);
      vcOld = nodeVoltage(*xPrev, bjt_.nc[i]);
    }
    sc.bjt[i] = kernels::bjtEval(bjt_.p[i], vb, ve, vc, vbOld, veOld, vcOld,
                                 limit, wantMat);
  }
  for (std::size_t i = 0, n = mos_.size(); i < n; ++i) {
    const Real vd = nodeVoltage(x, mos_.nd[i]);
    const Real vg = nodeVoltage(x, mos_.ng[i]);
    const Real vs = nodeVoltage(x, mos_.ns[i]);
    Real vdOld = 0, vgOld = 0, vsOld = 0;
    if (limit) {
      vdOld = nodeVoltage(*xPrev, mos_.nd[i]);
      vgOld = nodeVoltage(*xPrev, mos_.ng[i]);
      vsOld = nodeVoltage(*xPrev, mos_.ns[i]);
    }
    sc.mosfet[i] = kernels::mosfetEval(mos_.p[i], vd, vg, vs, vdOld, vgOld,
                                       vsOld, limit, wantMat);
  }

  assembleImpl(x, xPrev, s, gVals, cVals,
               sc.diode.empty() ? nullptr : sc.diode.data(),
               sc.bjt.empty() ? nullptr : sc.bjt.data(),
               sc.mosfet.empty() ? nullptr : sc.mosfet.data(), 1, waveVals);
}

void DeviceBatch::evalKernelsSweep(const numeric::RMat& xs, std::size_t s0,
                                   std::size_t count, bool wantMatrices,
                                   SweepScratch& sc) const {
  ensureSweepScratch(sc);
  // Sample-major flat loops: for each instance, its controlling-node state
  // rows are contiguous across samples, and the junction kernel runs as a
  // tight loop the compiler can pipeline — the exponential per (instance,
  // sample) is the same inline call the per-sample path makes, so blocking
  // changes nothing numerically.
  const Real* const zero = nullptr;
  const auto row = [&](std::int32_t node) {
    return node >= 0 ? xs.rowPtr(static_cast<std::size_t>(node)) + s0 : zero;
  };
  for (std::size_t i = 0, n = diode_.size(); i < n; ++i) {
    const kernels::DiodeParams p{diode_.is[i], diode_.nvt[i], diode_.vcrit[i],
                                 diode_.gmin[i], diode_.cj0[i], diode_.vj[i],
                                 diode_.m[i],   diode_.fc[i],  diode_.tt[i]};
    const Real* xa = row(diode_.na[i]);
    const Real* xc = row(diode_.nc[i]);
    kernels::DiodeOut* out = sc.diode.data() + i * kSweepChunk;
    for (std::size_t j = 0; j < count; ++j) {
      const Real v = (xa != nullptr ? xa[j] : 0.0) -
                     (xc != nullptr ? xc[j] : 0.0);
      out[j] = kernels::diodeEval(p, v, 0.0, false);
    }
  }
  for (std::size_t i = 0, n = bjt_.size(); i < n; ++i) {
    const kernels::BJTParams& p = bjt_.p[i];
    const Real* xb = row(bjt_.nb[i]);
    const Real* xe = row(bjt_.ne[i]);
    const Real* xc = row(bjt_.nc[i]);
    kernels::BJTOut* out = sc.bjt.data() + i * kSweepChunk;
    for (std::size_t j = 0; j < count; ++j) {
      const Real vb = xb != nullptr ? xb[j] : 0.0;
      const Real ve = xe != nullptr ? xe[j] : 0.0;
      const Real vc = xc != nullptr ? xc[j] : 0.0;
      out[j] = kernels::bjtEval(p, vb, ve, vc, 0, 0, 0, false, wantMatrices);
    }
  }
  for (std::size_t i = 0, n = mos_.size(); i < n; ++i) {
    const kernels::MOSFETParams& p = mos_.p[i];
    const Real* xd = row(mos_.nd[i]);
    const Real* xg = row(mos_.ng[i]);
    const Real* xsr = row(mos_.ns[i]);
    kernels::MOSFETOut* out = sc.mosfet.data() + i * kSweepChunk;
    for (std::size_t j = 0; j < count; ++j) {
      const Real vd = xd != nullptr ? xd[j] : 0.0;
      const Real vg = xg != nullptr ? xg[j] : 0.0;
      const Real vs = xsr != nullptr ? xsr[j] : 0.0;
      out[j] =
          kernels::mosfetEval(p, vd, vg, vs, 0, 0, 0, false, wantMatrices);
    }
  }
}

void DeviceBatch::assemble(const RVec& x, Stamp& s, std::vector<Real>* gVals,
                           std::vector<Real>* cVals, const SweepScratch& sc,
                           std::size_t blockIdx, const Real* waveVals) const {
  assembleImpl(x, nullptr, s, gVals, cVals,
               sc.diode.empty() ? nullptr : sc.diode.data() + blockIdx,
               sc.bjt.empty() ? nullptr : sc.bjt.data() + blockIdx,
               sc.mosfet.empty() ? nullptr : sc.mosfet.data() + blockIdx,
               kSweepChunk, waveVals);
}

void DeviceBatch::assembleSweepVec(const numeric::RMat& xs, std::size_t s0,
                                   std::size_t count, numeric::RMat& fS,
                                   numeric::RMat& qS, numeric::RMat& bS,
                                   const SweepScratch& sc,
                                   const Real* waveVals, std::size_t nWave,
                                   const Real* t1, const Real* t2) const {
  const auto xRow = [&](std::int32_t node) -> const Real* {
    return node >= 0 ? xs.rowPtr(static_cast<std::size_t>(node)) + s0
                     : nullptr;
  };
  const auto outRow = [&](numeric::RMat& m, std::int32_t node) -> Real* {
    return node >= 0 ? m.rowPtr(static_cast<std::size_t>(node)) + s0 : nullptr;
  };

  // Zero the block's columns of every row (contiguous runs — the per-sample
  // path zeros lane vectors and overwrites the columns instead).
  for (std::size_t u = 0, n = fS.rows(); u < n; ++u) {
    Real* f = fS.rowPtr(u) + s0;
    Real* q = qS.rowPtr(u) + s0;
    Real* b = bS.rowPtr(u) + s0;
    for (std::size_t j = 0; j < count; ++j) f[j] = 0.0;
    for (std::size_t j = 0; j < count; ++j) q[j] = 0.0;
    for (std::size_t j = 0; j < count; ++j) b[j] = 0.0;
  }

  // Device-order walk, whole block per op. Ground rows (nullptr) drop their
  // adds exactly like Stamp::addF/addQ/addB; `a -= v` is IEEE-identical to
  // `a += -v`, so signs match the scalar emission.
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::generic:
        RFIC_REQUIRE(false, "assembleSweepVec: generic op in compiled batch");
        break;
      case OpKind::resistor: {
        const ResistorOp& r = res_[op.idx];
        const Real* x1 = xRow(r.n1);
        const Real* x2 = xRow(r.n2);
        Real* f1 = outRow(fS, r.n1);
        Real* f2 = outRow(fS, r.n2);
        for (std::size_t j = 0; j < count; ++j) {
          const Real v =
              (x1 != nullptr ? x1[j] : 0.0) - (x2 != nullptr ? x2[j] : 0.0);
          const Real i = r.g * v;
          if (f1 != nullptr) f1[j] += i;
          if (f2 != nullptr) f2[j] -= i;
        }
        break;
      }
      case OpKind::capacitor: {
        const CapacitorOp& c = cap_[op.idx];
        const Real* x1 = xRow(c.n1);
        const Real* x2 = xRow(c.n2);
        Real* q1 = outRow(qS, c.n1);
        Real* q2 = outRow(qS, c.n2);
        for (std::size_t j = 0; j < count; ++j) {
          const Real v =
              (x1 != nullptr ? x1[j] : 0.0) - (x2 != nullptr ? x2[j] : 0.0);
          const Real qv = c.c * v;
          if (q1 != nullptr) q1[j] += qv;
          if (q2 != nullptr) q2[j] -= qv;
        }
        break;
      }
      case OpKind::inductor: {
        const InductorOp& l = ind_[op.idx];
        const Real* xbr = xRow(l.br);
        const Real* x1 = xRow(l.n1);
        const Real* x2 = xRow(l.n2);
        Real* f1 = outRow(fS, l.n1);
        Real* f2 = outRow(fS, l.n2);
        Real* qbr = outRow(qS, l.br);
        Real* fbr = outRow(fS, l.br);
        for (std::size_t j = 0; j < count; ++j) {
          const Real i = xbr[j];
          const Real v =
              (x1 != nullptr ? x1[j] : 0.0) - (x2 != nullptr ? x2[j] : 0.0);
          if (f1 != nullptr) f1[j] += i;
          if (f2 != nullptr) f2[j] -= i;
          qbr[j] += l.l * i;
          fbr[j] -= v;
        }
        break;
      }
      case OpKind::vccs: {
        const VccsOp& v = vccs_[op.idx];
        const Real* xp = xRow(v.cp);
        const Real* xm = xRow(v.cm);
        Real* fo = outRow(fS, v.op);
        Real* fm = outRow(fS, v.om);
        for (std::size_t j = 0; j < count; ++j) {
          const Real vc =
              (xp != nullptr ? xp[j] : 0.0) - (xm != nullptr ? xm[j] : 0.0);
          const Real i = v.gm * vc;
          if (fo != nullptr) fo[j] += i;
          if (fm != nullptr) fm[j] -= i;
        }
        break;
      }
      case OpKind::vsource: {
        const SourceOp& so = vsrc_[op.idx];
        const Real* xbr = xRow(so.br);
        const Real* xp = xRow(so.np);
        const Real* xm = xRow(so.nm);
        Real* fp = outRow(fS, so.np);
        Real* fm = outRow(fS, so.nm);
        Real* fbr = outRow(fS, so.br);
        Real* bbr = outRow(bS, so.br);
        for (std::size_t j = 0; j < count; ++j) {
          const Real ib = xbr[j];
          const Real v =
              (xp != nullptr ? xp[j] : 0.0) - (xm != nullptr ? xm[j] : 0.0);
          if (fp != nullptr) fp[j] += ib;
          if (fm != nullptr) fm[j] -= ib;
          fbr[j] += v;
          const std::size_t smp = s0 + j;
          bbr[j] += waveVals != nullptr
                        ? waveVals[smp * nWave + so.waveIdx]
                        : so.w->value(so.axis == TimeAxis::fast ? t2[smp]
                                                                : t1[smp]);
        }
        break;
      }
      case OpKind::isource: {
        const SourceOp& so = isrc_[op.idx];
        Real* bp = outRow(bS, so.np);
        Real* bm = outRow(bS, so.nm);
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t smp = s0 + j;
          const Real i = waveVals != nullptr
                             ? waveVals[smp * nWave + so.waveIdx]
                             : so.w->value(so.axis == TimeAxis::fast
                                               ? t2[smp]
                                               : t1[smp]);
          if (bp != nullptr) bp[j] -= i;
          if (bm != nullptr) bm[j] += i;
        }
        break;
      }
      case OpKind::cubic: {
        const CubicOp& c = cubic_[op.idx];
        const Real* x1 = xRow(c.n1);
        const Real* x2 = xRow(c.n2);
        Real* f1 = outRow(fS, c.n1);
        Real* f2 = outRow(fS, c.n2);
        for (std::size_t j = 0; j < count; ++j) {
          const Real v =
              (x1 != nullptr ? x1[j] : 0.0) - (x2 != nullptr ? x2[j] : 0.0);
          const Real i = c.g1 * v + c.g3 * v * v * v;
          if (f1 != nullptr) f1[j] += i;
          if (f2 != nullptr) f2[j] -= i;
        }
        break;
      }
      case OpKind::diode: {
        const kernels::DiodeOut* o = sc.diode.data() + op.idx * kSweepChunk;
        Real* fa = outRow(fS, diode_.na[op.idx]);
        Real* fc = outRow(fS, diode_.nc[op.idx]);
        Real* qa = outRow(qS, diode_.na[op.idx]);
        Real* qc = outRow(qS, diode_.nc[op.idx]);
        for (std::size_t j = 0; j < count; ++j) {
          if (fa != nullptr) fa[j] += o[j].i;
          if (fc != nullptr) fc[j] -= o[j].i;
          // Exact-zero gate mirrors the scalar stamp's conditional adds.
          if (o[j].q != 0 || o[j].c != 0) {  // lint: allow-float-eq
            if (qa != nullptr) qa[j] += o[j].q;
            if (qc != nullptr) qc[j] -= o[j].q;
          }
        }
        break;
      }
      case OpKind::bjt: {
        const kernels::BJTOut* o = sc.bjt.data() + op.idx * kSweepChunk;
        Real* fc = outRow(fS, bjt_.nc[op.idx]);
        Real* fb = outRow(fS, bjt_.nb[op.idx]);
        Real* fe = outRow(fS, bjt_.ne[op.idx]);
        Real* qb = outRow(qS, bjt_.nb[op.idx]);
        Real* qe = outRow(qS, bjt_.ne[op.idx]);
        Real* qc = outRow(qS, bjt_.nc[op.idx]);
        for (std::size_t j = 0; j < count; ++j) {
          if (fc != nullptr) fc[j] += o[j].fC;
          if (fb != nullptr) fb[j] += o[j].fB;
          if (fe != nullptr) fe[j] += o[j].fE;
          if (qb != nullptr) qb[j] += o[j].qB;
          if (qe != nullptr) qe[j] += o[j].qE;
          if (qc != nullptr) qc[j] += o[j].qC;
        }
        break;
      }
      case OpKind::mosfet: {
        const kernels::MOSFETOut* o = sc.mosfet.data() + op.idx * kSweepChunk;
        const bool hasCgs = mos_.hasCgs[op.idx] != 0;
        const bool hasCgd = mos_.hasCgd[op.idx] != 0;
        Real* fd = outRow(fS, mos_.nd[op.idx]);
        Real* fs = outRow(fS, mos_.ns[op.idx]);
        Real* qg = outRow(qS, mos_.ng[op.idx]);
        Real* qs = outRow(qS, mos_.ns[op.idx]);
        Real* qd = outRow(qS, mos_.nd[op.idx]);
        for (std::size_t j = 0; j < count; ++j) {
          if (fd != nullptr) fd[j] += o[j].i;
          if (fs != nullptr) fs[j] -= o[j].i;
          if (hasCgs) {
            if (qg != nullptr) qg[j] += o[j].qGS;
            if (qs != nullptr) qs[j] -= o[j].qGS;
          }
          if (hasCgd) {
            if (qg != nullptr) qg[j] += o[j].qGD;
            if (qd != nullptr) qd[j] -= o[j].qGD;
          }
        }
        break;
      }
    }
  }
}

void DeviceBatch::assembleImpl(const RVec& x, const RVec* xPrev, Stamp& s,
                               std::vector<Real>* gVals,
                               std::vector<Real>* cVals,
                               const kernels::DiodeOut* dOut,
                               const kernels::BJTOut* bOut,
                               const kernels::MOSFETOut* mOut,
                               std::size_t stride,
                               const Real* waveVals) const {
  const bool wantMat = s.wantMatrices();
  // Constant prefill: replaces the caller's zero fill of the value arrays.
  // Same-size assign — no allocation in steady state.
  if (wantMat && gVals != nullptr) {
    // rt: allow(rt-alloc) same-size overwrite — templates match pattern nnz
    gVals->assign(gTemplate_.begin(), gTemplate_.end());
    // rt: allow(rt-alloc) same-size overwrite — templates match pattern nnz
    cVals->assign(cTemplate_.begin(), cTemplate_.end());
  }

  const auto addSlot = [](std::vector<Real>* vals, std::int32_t slot, Real v) {
    if (slot >= 0) (*vals)[static_cast<std::size_t>(slot)] += v;
  };

  // Phase B: scatter in original device order — every f/q/b entry and every
  // CSR slot receives its contributions in the exact scalar-walk order.
  for (const Op& op : ops_) {
    const std::int32_t* sl = slots_.data() + op.slotBase;
    switch (op.kind) {
      case OpKind::generic:
        genericDevs_[op.idx]->stamp(x, xPrev, s);
        break;
      case OpKind::resistor: {
        const ResistorOp& r = res_[op.idx];
        const Real v = nodeVoltage(x, r.n1) - nodeVoltage(x, r.n2);
        const Real i = r.g * v;
        s.addF(r.n1, i);
        s.addF(r.n2, -i);
        if (wantMat) {
          addSlot(gVals, sl[0], r.g);
          addSlot(gVals, sl[1], -r.g);
          addSlot(gVals, sl[2], -r.g);
          addSlot(gVals, sl[3], r.g);
        }
        break;
      }
      case OpKind::capacitor: {
        const CapacitorOp& c = cap_[op.idx];
        const Real v = nodeVoltage(x, c.n1) - nodeVoltage(x, c.n2);
        const Real qv = c.c * v;
        s.addQ(c.n1, qv);
        s.addQ(c.n2, -qv);
        if (wantMat) {
          addSlot(cVals, sl[0], c.c);
          addSlot(cVals, sl[1], -c.c);
          addSlot(cVals, sl[2], -c.c);
          addSlot(cVals, sl[3], c.c);
        }
        break;
      }
      case OpKind::inductor: {
        const InductorOp& l = ind_[op.idx];
        const Real i = x[static_cast<std::size_t>(l.br)];
        const Real v = nodeVoltage(x, l.n1) - nodeVoltage(x, l.n2);
        s.addF(l.n1, i);
        s.addF(l.n2, -i);
        s.addQ(l.br, l.l * i);
        s.addF(l.br, -v);
        if (wantMat) {
          addSlot(gVals, sl[0], 1.0);
          addSlot(gVals, sl[1], -1.0);
          addSlot(gVals, sl[2], -1.0);
          addSlot(gVals, sl[3], 1.0);
          addSlot(cVals, sl[4], l.l);
        }
        break;
      }
      case OpKind::vccs: {
        const VccsOp& v = vccs_[op.idx];
        const Real vc = nodeVoltage(x, v.cp) - nodeVoltage(x, v.cm);
        const Real i = v.gm * vc;
        s.addF(v.op, i);
        s.addF(v.om, -i);
        if (wantMat) {
          addSlot(gVals, sl[0], v.gm);
          addSlot(gVals, sl[1], -v.gm);
          addSlot(gVals, sl[2], -v.gm);
          addSlot(gVals, sl[3], v.gm);
        }
        break;
      }
      case OpKind::vsource: {
        const SourceOp& so = vsrc_[op.idx];
        const Real ib = x[static_cast<std::size_t>(so.br)];
        const Real v = nodeVoltage(x, so.np) - nodeVoltage(x, so.nm);
        s.addF(so.np, ib);
        s.addF(so.nm, -ib);
        s.addF(so.br, v);
        s.addB(so.br, waveVals != nullptr ? waveVals[so.waveIdx]
                                          : so.w->value(s.time(so.axis)));
        if (wantMat) {
          addSlot(gVals, sl[0], 1.0);
          addSlot(gVals, sl[1], -1.0);
          addSlot(gVals, sl[2], 1.0);
          addSlot(gVals, sl[3], -1.0);
        }
        break;
      }
      case OpKind::isource: {
        const SourceOp& so = isrc_[op.idx];
        const Real i = waveVals != nullptr ? waveVals[so.waveIdx]
                                           : so.w->value(s.time(so.axis));
        s.addB(so.np, -i);
        s.addB(so.nm, i);
        break;
      }
      case OpKind::cubic: {
        const CubicOp& c = cubic_[op.idx];
        const Real v = nodeVoltage(x, c.n1) - nodeVoltage(x, c.n2);
        const Real i = c.g1 * v + c.g3 * v * v * v;
        s.addF(c.n1, i);
        s.addF(c.n2, -i);
        if (wantMat) {
          const Real di = c.g1 + 3.0 * c.g3 * v * v;
          addSlot(gVals, sl[0], di);
          addSlot(gVals, sl[1], -di);
          addSlot(gVals, sl[2], -di);
          addSlot(gVals, sl[3], di);
        }
        break;
      }
      case OpKind::diode: {
        const kernels::DiodeOut& o = dOut[op.idx * stride];
        const std::int32_t na = diode_.na[op.idx];
        const std::int32_t nc = diode_.nc[op.idx];
        s.addF(na, o.i);
        s.addF(nc, -o.i);
        // Exact-zero gates mirror the scalar stamp's conditional adds.
        if (o.q != 0 || o.c != 0) {  // lint: allow-float-eq
          s.addQ(na, o.q);
          s.addQ(nc, -o.q);
        }
        if (wantMat) {
          addSlot(gVals, sl[0], o.g);
          addSlot(gVals, sl[1], -o.g);
          addSlot(gVals, sl[2], -o.g);
          addSlot(gVals, sl[3], o.g);
          if (diode_.hasC[op.idx] != 0 && o.c != 0) {  // lint: allow-float-eq
            addSlot(cVals, sl[4], o.c);
            addSlot(cVals, sl[5], -o.c);
            addSlot(cVals, sl[6], -o.c);
            addSlot(cVals, sl[7], o.c);
          }
        }
        break;
      }
      case OpKind::bjt: {
        const kernels::BJTOut& o = bOut[op.idx * stride];
        const std::int32_t nc = bjt_.nc[op.idx];
        const std::int32_t nb = bjt_.nb[op.idx];
        const std::int32_t ne = bjt_.ne[op.idx];
        s.addF(nc, o.fC);
        s.addF(nb, o.fB);
        s.addF(ne, o.fE);
        s.addQ(nb, o.qB);
        s.addQ(ne, o.qE);
        s.addQ(nc, o.qC);
        if (wantMat) {
          for (int k = 0; k < 9; ++k) addSlot(gVals, sl[k], o.g[k]);
          for (int k = 0; k < 9; ++k) addSlot(cVals, sl[9 + k], o.c[k]);
        }
        break;
      }
      case OpKind::mosfet: {
        const kernels::MOSFETOut& o = mOut[op.idx * stride];
        const std::int32_t nd = mos_.nd[op.idx];
        const std::int32_t ng = mos_.ng[op.idx];
        const std::int32_t ns = mos_.ns[op.idx];
        const bool hasCgs = mos_.hasCgs[op.idx] != 0;
        const bool hasCgd = mos_.hasCgd[op.idx] != 0;
        s.addF(nd, o.i);
        s.addF(ns, -o.i);
        if (hasCgs) {
          s.addQ(ng, o.qGS);
          s.addQ(ns, -o.qGS);
        }
        if (hasCgd) {
          s.addQ(ng, o.qGD);
          s.addQ(nd, -o.qGD);
        }
        if (wantMat) {
          for (int k = 0; k < 6; ++k) addSlot(gVals, sl[k], o.g[k]);
          int base = 6;
          if (hasCgs) {
            const Real cgs = mos_.p[op.idx].cgs;
            addSlot(cVals, sl[base + 0], cgs);
            addSlot(cVals, sl[base + 1], -cgs);
            addSlot(cVals, sl[base + 2], -cgs);
            addSlot(cVals, sl[base + 3], cgs);
            base += 4;
          }
          if (hasCgd) {
            const Real cgd = mos_.p[op.idx].cgd;
            addSlot(cVals, sl[base + 0], cgd);
            addSlot(cVals, sl[base + 1], -cgd);
            addSlot(cVals, sl[base + 2], -cgd);
            addSlot(cVals, sl[base + 3], cgd);
          }
        }
        break;
      }
    }
  }
}

}  // namespace rfic::circuit
