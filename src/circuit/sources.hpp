// Independent sources and their waveforms.
//
// A source owns a Waveform and is tagged with the TimeAxis it lives on —
// the slow (t1) or fast (t2) axis of the bivariate MPDE formulation of
// Section 2.2. In ordinary univariate analyses both axes carry the same
// time and the tag is inert. The harmonic-balance and MPDE engines never
// need an analytic spectrum of a source: they sample value() on their time
// grids and transform numerically.
#pragma once

#include <memory>
#include <vector>

#include "circuit/circuit.hpp"

namespace rfic::circuit {

/// Scalar waveform of time.
class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual Real value(Real t) const = 0;
};

/// Constant value.
class DCWave final : public Waveform {
 public:
  explicit DCWave(Real v) : v_(v) {}
  Real value(Real) const override { return v_; }

 private:
  Real v_;
};

/// offset + amp·sin(2πf·t + phase)
class SineWave final : public Waveform {
 public:
  SineWave(Real amplitude, Real freqHz, Real phaseRad = 0, Real offset = 0)
      : amp_(amplitude), f_(freqHz), ph_(phaseRad), off_(offset) {}
  Real value(Real t) const override {
    return off_ + amp_ * std::sin(kTwoPi * f_ * t + ph_);
  }
  Real frequency() const { return f_; }

 private:
  Real amp_, f_, ph_, off_;
};

/// Sum of sinusoids — multi-tone drives for intermodulation studies.
class MultiToneWave final : public Waveform {
 public:
  struct Tone {
    Real amplitude, freqHz, phaseRad;
  };
  MultiToneWave(std::vector<Tone> tones, Real offset = 0)
      : tones_(std::move(tones)), off_(offset) {}
  Real value(Real t) const override {
    Real v = off_;
    for (const auto& tone : tones_)
      v += tone.amplitude * std::sin(kTwoPi * tone.freqHz * t + tone.phaseRad);
    return v;
  }

 private:
  std::vector<Tone> tones_;
  Real off_;
};

/// Periodic trapezoidal square wave between `low` and `high`: useful as the
/// large LO drive of the switching mixer (Section 2.2's example). Edges are
/// smoothed over riseFrac·T to keep Newton well-behaved.
class SquareWave final : public Waveform {
 public:
  SquareWave(Real low, Real high, Real freqHz, Real riseFrac = 0.05)
      : low_(low), high_(high), f_(freqHz), rise_(riseFrac) {
    RFIC_REQUIRE(riseFrac > 0 && riseFrac < 0.25,
                 "SquareWave: riseFrac in (0, 0.25) required");
  }
  Real value(Real t) const override;
  Real frequency() const { return f_; }

 private:
  Real low_, high_, f_, rise_;
};

/// Piecewise-linear waveform; flat extrapolation outside the point range.
class PWLWave final : public Waveform {
 public:
  explicit PWLWave(std::vector<std::pair<Real, Real>> points);
  Real value(Real t) const override;

 private:
  std::vector<std::pair<Real, Real>> pts_;
};

/// SPICE-style PULSE(v1 v2 delay rise fall width period).
class PulseWave final : public Waveform {
 public:
  PulseWave(Real v1, Real v2, Real delay, Real rise, Real fall, Real width,
            Real period);
  Real value(Real t) const override;

 private:
  Real v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// Independent voltage source v(n+) − v(n−) = w(t), with a branch current
/// unknown.
class VSource final : public Device {
 public:
  VSource(std::string name, int nPlus, int nMinus, int branch,
          std::shared_ptr<const Waveform> w, TimeAxis axis = TimeAxis::slow);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;
  int branch() const { return br_; }

 private:
  int np_, nm_, br_;
  std::shared_ptr<const Waveform> w_;
  TimeAxis axis_;
};

/// Independent current source; positive current flows from n+ through the
/// source to n− (SPICE convention), i.e. it is extracted from n+ and
/// injected into n−.
class ISource final : public Device {
 public:
  ISource(std::string name, int nPlus, int nMinus,
          std::shared_ptr<const Waveform> w, TimeAxis axis = TimeAxis::slow);
  void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const override;
  void compileBatch(BatchCompiler& bc) const override;

 private:
  int np_, nm_;
  std::shared_ptr<const Waveform> w_;
  TimeAxis axis_;
};

}  // namespace rfic::circuit
