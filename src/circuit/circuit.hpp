// Circuit representation: nodes, extra branch unknowns, and the device
// interface used by every analysis in the library.
//
// The library represents a circuit by the charge-oriented MNA
// differential-algebraic equation of the paper's Section 2:
//
//     d/dt q(x) + f(x) = b(t)                                   (3)
//
// where x collects node voltages and branch currents, q the charge/flux
// terms, f the resistive terms, and b the independent excitations. Every
// analysis — DC, transient, AC, noise, shooting, harmonic balance, and the
// multi-time MPDE methods — is built on evaluations of (f, q, b) and the
// Jacobians G = ∂f/∂x and C = ∂q/∂x supplied by the devices.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "numeric/dense.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::circuit {

using numeric::RVec;

/// Which time axis a source belongs to when a circuit is analyzed in the
/// bivariate (multi-time) setting of Section 2.2. Slow sources read t1,
/// fast sources read t2; in ordinary univariate analyses t1 == t2 == t and
/// the distinction disappears.
enum class TimeAxis { slow, fast };

/// Accumulation target handed to Device::stamp(). Rows/columns < 0 denote
/// the ground node and are silently dropped.
///
/// Two matrix modes exist. The original triplet mode appends (row, col,
/// value) records — simple, but it allocates and re-sorts every evaluation.
/// The pattern mode (used by MnaWorkspace) accumulates directly into
/// preallocated value arrays over a cached CSR sparsity pattern; a stamp at
/// a position absent from the pattern is diverted to an overflow triplet
/// list so the caller can grow the pattern and re-evaluate (devices like
/// the diode stamp some positions conditionally, so the first discovery
/// pass is not guaranteed to see every position).
class Stamp {
 public:
  /// Pattern-mode target: G and C share one CSR pattern; values land in
  /// gVals/cVals by CSR position, misses in the overflow triplets.
  struct PatternTarget {
    const sparse::RCSR* pattern = nullptr;
    std::vector<Real>* gVals = nullptr;
    std::vector<Real>* cVals = nullptr;
    sparse::RTriplets* gOverflow = nullptr;
    sparse::RTriplets* cOverflow = nullptr;
  };

  Stamp(RVec& f, RVec& q, RVec& b, sparse::RTriplets* g, sparse::RTriplets* c,
        Real t1, Real t2)
      : f_(f), q_(q), b_(b), g_(g), c_(c), t1_(t1), t2_(t2) {}

  Stamp(RVec& f, RVec& q, RVec& b, const PatternTarget& pt, Real t1, Real t2)
      : f_(f), q_(q), b_(b), pt_(&pt), t1_(t1), t2_(t2) {}

  /// Time seen by sources on the given axis.
  Real time(TimeAxis axis) const { return axis == TimeAxis::fast ? t2_ : t1_; }
  Real slowTime() const { return t1_; }
  Real fastTime() const { return t2_; }
  bool wantMatrices() const { return g_ != nullptr || pt_ != nullptr; }

  void addF(int row, Real v) {
    if (row >= 0) f_[static_cast<std::size_t>(row)] += v;
  }
  void addQ(int row, Real v) {
    if (row >= 0) q_[static_cast<std::size_t>(row)] += v;
  }
  void addB(int row, Real v) {
    if (row >= 0) b_[static_cast<std::size_t>(row)] += v;
  }
  /// ∂f/∂x entry.
  void addG(int row, int col, Real v) {
    if (row < 0 || col < 0) return;
    const auto r = static_cast<std::size_t>(row);
    const auto c = static_cast<std::size_t>(col);
    if (g_) {
      g_->add(r, c, v);
    } else if (pt_) {
      patternAdd(*pt_->gVals, *pt_->gOverflow, r, c, v);
    }
  }
  /// ∂q/∂x entry.
  void addC(int row, int col, Real v) {
    if (row < 0 || col < 0) return;
    const auto r = static_cast<std::size_t>(row);
    const auto c = static_cast<std::size_t>(col);
    if (c_) {
      c_->add(r, c, v);
    } else if (pt_) {
      patternAdd(*pt_->cVals, *pt_->cOverflow, r, c, v);
    }
  }

 private:
  void patternAdd(std::vector<Real>& vals, sparse::RTriplets& overflow,
                  std::size_t r, std::size_t c, Real v) {
    const auto& rp = pt_->pattern->rowPtr();
    const auto& ci = pt_->pattern->colIdx();
    // Binary search for c within row r of the sorted pattern.
    std::size_t lo = rp[r], hi = rp[r + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ci[mid] < c)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo < rp[r + 1] && ci[lo] == c)
      vals[lo] += v;
    else
      overflow.add(r, c, v);
  }

  RVec& f_;
  RVec& q_;
  RVec& b_;
  sparse::RTriplets* g_ = nullptr;
  sparse::RTriplets* c_ = nullptr;
  const PatternTarget* pt_ = nullptr;
  Real t1_, t2_;
};

/// One device noise generator: a stochastic current injected between two
/// unknowns, with PSD  S(f) = white + flicker/f  (A²/Hz, one-sided),
/// evaluated at the instantaneous operating point. Along a periodic steady
/// state the operating-point dependence is what makes the noise
/// cyclostationary (Section 3).
struct NoiseSource {
  int nodePlus = -1;
  int nodeMinus = -1;
  Real white = 0;
  Real flicker = 0;
  std::string label;
};

/// Voltage read from the unknown vector, ground mapped to 0.
inline Real nodeVoltage(const RVec& x, int node) {
  return node >= 0 ? x[static_cast<std::size_t>(node)] : 0.0;
}

class BatchCompiler;  // see circuit/device_batch.hpp

/// Base class of all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Accumulate the device's contribution to f, q, b (and G, C when
  /// s.wantMatrices()). `xPrev` is the previous Newton iterate, used by
  /// junction devices for SPICE-style voltage limiting; it may be null.
  virtual void stamp(const RVec& x, const RVec* xPrev, Stamp& s) const = 0;

  /// Register this device with the batched evaluation engine (see
  /// circuit/device_batch.hpp). A device that registers nothing keeps its
  /// virtual stamp() — the batch engine calls it per evaluation in original
  /// device order, so exotic devices stay correct without a compiled form.
  virtual void compileBatch(BatchCompiler& bc) const { (void)bc; }

  /// Append this device's noise generators at operating point x.
  virtual void noiseSources(const RVec& x,
                            std::vector<NoiseSource>& out) const {
    (void)x;
    (void)out;
  }

 private:
  std::string name_;
};

/// A circuit: a set of named nodes, extra branch unknowns, and devices.
/// Unknown indices are assigned in creation order; ground is index -1.
class Circuit {
 public:
  /// Get-or-create a named node. "0", "gnd", and "GND" map to ground (-1).
  int node(const std::string& name);
  /// Allocate an anonymous branch-current unknown (inductors, V-sources).
  int allocBranch(const std::string& label);

  std::size_t numUnknowns() const { return unknownNames_.size(); }
  const std::string& unknownName(std::size_t i) const {
    return unknownNames_[i];
  }
  /// Index of an existing named node; throws if absent.
  int findNode(const std::string& name) const;
  /// Non-throwing lookup: the node's unknown index, kGround (-1) for the
  /// ground aliases, or kNoSuchNode (-2) when absent. Validation layers
  /// (the engine's .print/.noise checks) use this to reject unknown nodes
  /// with a diagnostic instead of an exception or an out-of-bounds index.
  int lookupNode(const std::string& name) const;

  static constexpr int kGround = -1;
  static constexpr int kNoSuchNode = -2;

  /// Construct a device in place and take ownership.
  template <class D, class... Args>
  D& add(Args&&... args) {
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

 private:
  std::vector<std::string> unknownNames_;
  std::vector<std::pair<std::string, int>> nodeIndex_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace rfic::circuit
