// MnaSystem: the evaluation interface between a Circuit and the analyses.
//
// Presents the circuit as the DAE  d/dt q(x) + f(x) = b(t)  (paper eq. 3)
// and, for the multi-time analyses of Section 2.2, as its bivariate
// generalization with sources split across the two time axes (eq. 4).
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "numeric/dense.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::circuit {

using numeric::RMat;
using numeric::RVec;

/// One full evaluation of the circuit equations at a point (x, t).
struct MnaEval {
  RVec f;                ///< resistive currents f(x)
  RVec q;                ///< charges/fluxes q(x)
  RVec b;                ///< excitation b(t)
  sparse::RTriplets G;   ///< ∂f/∂x (only when requested)
  sparse::RTriplets C;   ///< ∂q/∂x (only when requested)
};

class MnaSystem {
 public:
  explicit MnaSystem(const Circuit& ckt) : ckt_(ckt), n_(ckt.numUnknowns()) {}

  std::size_t dim() const { return n_; }
  const Circuit& circuit() const { return ckt_; }

  /// Univariate evaluation at time t (both axes read t).
  void eval(const RVec& x, Real t, MnaEval& e, bool wantMatrices,
            const RVec* xPrev = nullptr) const {
    evalBivariate(x, t, t, e, wantMatrices, xPrev);
  }

  /// Bivariate evaluation: slow sources read t1, fast sources read t2.
  void evalBivariate(const RVec& x, Real t1, Real t2, MnaEval& e,
                     bool wantMatrices, const RVec* xPrev = nullptr) const;

  /// Dense Jacobians at (x, t) — convenience for the dense-path analyses
  /// (shooting, small-circuit Newton, Floquet).
  void denseJacobians(const RVec& x, Real t, RMat& g, RMat& c) const;

  /// Collect all device noise generators at operating point x.
  std::vector<NoiseSource> noiseSources(const RVec& x) const;

 private:
  const Circuit& ckt_;
  std::size_t n_;
};

/// Newton residual for the algebraic (DC) problem: r = f(x) − b.
/// Shared helper used by several analyses.
RVec dcResidual(const MnaEval& e);

}  // namespace rfic::circuit
