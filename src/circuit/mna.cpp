#include "circuit/mna.hpp"

namespace rfic::circuit {

void MnaSystem::evalBivariate(const RVec& x, Real t1, Real t2, MnaEval& e,
                              bool wantMatrices, const RVec* xPrev) const {
  RFIC_REQUIRE(x.size() == n_, "MnaSystem::eval: state size mismatch");
  e.f.assign(n_, 0.0);
  e.q.assign(n_, 0.0);
  e.b.assign(n_, 0.0);
  if (wantMatrices) {
    // reset() keeps the entry buffers' capacity, so a reused MnaEval stops
    // paying for triplet allocation after the first evaluation.
    e.G.reset(n_, n_);
    e.C.reset(n_, n_);
  }
  Stamp s(e.f, e.q, e.b, wantMatrices ? &e.G : nullptr,
          wantMatrices ? &e.C : nullptr, t1, t2);
  for (const auto& dev : ckt_.devices()) dev->stamp(x, xPrev, s);
}

void MnaSystem::denseJacobians(const RVec& x, Real t, RMat& g, RMat& c) const {
  MnaEval e;
  evalBivariate(x, t, t, e, true);
  g = e.G.toDense();
  c = e.C.toDense();
}

std::vector<NoiseSource> MnaSystem::noiseSources(const RVec& x) const {
  std::vector<NoiseSource> out;
  for (const auto& dev : ckt_.devices()) dev->noiseSources(x, out);
  return out;
}

RVec dcResidual(const MnaEval& e) {
  RVec r = e.f;
  r -= e.b;
  return r;
}

}  // namespace rfic::circuit
