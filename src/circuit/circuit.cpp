#include "circuit/circuit.hpp"

#include <algorithm>

namespace rfic::circuit {

int Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return -1;
  const auto it = std::find_if(nodeIndex_.begin(), nodeIndex_.end(),
                               [&](const auto& p) { return p.first == name; });
  if (it != nodeIndex_.end()) return it->second;
  const int idx = static_cast<int>(unknownNames_.size());
  unknownNames_.push_back("V(" + name + ")");
  nodeIndex_.emplace_back(name, idx);
  return idx;
}

int Circuit::allocBranch(const std::string& label) {
  const int idx = static_cast<int>(unknownNames_.size());
  unknownNames_.push_back("I(" + label + ")");
  return idx;
}

int Circuit::findNode(const std::string& name) const {
  const int idx = lookupNode(name);
  RFIC_REQUIRE(idx != kNoSuchNode, "Circuit::findNode: unknown node " + name);
  return idx;
}

int Circuit::lookupNode(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = std::find_if(nodeIndex_.begin(), nodeIndex_.end(),
                               [&](const auto& p) { return p.first == name; });
  return it != nodeIndex_.end() ? it->second : kNoSuchNode;
}

}  // namespace rfic::circuit
