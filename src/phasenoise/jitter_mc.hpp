// Monte-Carlo jitter validation.
//
// Substitution for the paper's comparison against measured oscillators
// (documented in DESIGN.md): an ensemble of noisy transient runs of the
// same oscillator provides the ground truth. The variance of the k-th
// threshold-crossing time across the ensemble should grow linearly with k,
// with slope c·T per cycle — the central quantitative prediction of the
// Section 3 theory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/shooting.hpp"
#include "circuit/mna.hpp"
#include "diag/resilience.hpp"

namespace rfic::phasenoise {

using analysis::PSSResult;
using circuit::MnaSystem;

struct JitterMCOptions {
  std::size_t paths = 64;          ///< ensemble size
  std::size_t cycles = 40;         ///< oscillation periods per path
  std::size_t stepsPerCycle = 400; ///< BE steps per period
  Real noiseScale = 1.0;           ///< multiplies every device PSD
  std::uint64_t seed = 12345;
  /// Optional cooperative budget shared by all paths. A trip stops
  /// launching/continuing paths; completed paths are kept (and
  /// checkpointed), and the result carries SolverStatus::BudgetExceeded.
  diag::RunBudget* budget = nullptr;
  /// When non-empty, finished-path crossing times are checkpointed here
  /// after the ensemble sweep (and on budget expiry). With `resume`,
  /// previously completed paths are loaded and skipped; every path is
  /// seeded as opts.seed + 7919·p, so the resumed ensemble is bit-identical
  /// to an uninterrupted run.
  std::string checkpointPath;
  bool resume = false;
};

struct JitterMCResult {
  /// Converged, or BudgetExceeded (partial ensemble; statistics are only
  /// filled when ≥ 8 paths finished).
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::vector<Real> cycleIndex;     ///< k = 1..K with enough surviving paths
  std::vector<Real> crossingVar;    ///< var over paths of the k-th crossing
  Real slopePerCycle = 0;           ///< least-squares slope of var(k) [s²]
  Real theoreticalSlope = 0;        ///< c·T from the PPV analysis [s²]
  std::size_t usedPaths = 0;
  std::size_t resumedPaths = 0;     ///< paths restored from a checkpoint
};

/// Run the ensemble and compare against cTheory·T (pass the c obtained from
/// analyzeOscillatorPhaseNoise; noiseScale multiplies the device PSDs in
/// the transient AND scales the theoretical slope accordingly).
JitterMCResult monteCarloJitter(const MnaSystem& sys, const PSSResult& pss,
                                std::size_t crossingIndex, Real level,
                                Real cTheory, const JitterMCOptions& opts);

}  // namespace rfic::phasenoise
