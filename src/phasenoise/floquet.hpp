// Floquet decomposition of an oscillator's periodic steady state.
//
// The nonlinear perturbation theory of Section 3 rests on the monodromy
// matrix M of the linearized oscillator: M has an eigenvalue exactly 1
// whose right eigenvector is the orbit tangent u1(0) = ẋs(0); all other
// multipliers lie strictly inside the unit circle for a stable orbit. The
// perturbation projection vector (PPV) v1(t) — the periodic solution of the
// adjoint variational DAE, normalized v1ᵀ(t)·C(t)·u1(t) = 1 — measures how
// a perturbation at time t converts into permanent phase deviation.
#pragma once

#include <vector>

#include "analysis/shooting.hpp"
#include "circuit/mna.hpp"
#include "numeric/dense.hpp"

namespace rfic::phasenoise {

using analysis::PSSResult;
using circuit::MnaSystem;
using numeric::CVec;
using numeric::RMat;
using numeric::RVec;

struct FloquetDecomposition {
  std::vector<Complex> multipliers;  ///< eigenvalues of the monodromy matrix
  std::size_t oscillatoryIndex = 0;  ///< index of the multiplier nearest 1
  /// Orbit tangent u1(t_k) = ẋs(t_k) at every trajectory sample.
  std::vector<RVec> tangent;
  /// PPV v1(t_k) at every trajectory sample, normalized v1ᵀ C u1 = 1.
  std::vector<RVec> ppv;
  /// Max deviation of the biorthogonality product v1ᵀ C u1 from 1 along the
  /// orbit — a numerical quality indicator.
  Real normalizationDefect = 0;
};

/// Compute multipliers, tangent, and PPV from a converged autonomous PSS.
/// Requires C(x) nonsingular along the orbit (every node needs dynamics —
/// the natural situation for oscillator cores).
FloquetDecomposition floquetDecompose(const MnaSystem& sys,
                                      const PSSResult& pss);

}  // namespace rfic::phasenoise
