// Oscillator phase noise characterization (Section 3).
//
// Implements the Demir–Mehrotra–Roychowdhury theory the paper describes:
// the effect of white device noise on a free-running oscillator is a phase
// deviation α(t) that diffuses with variance c·t, producing
//  * mean-square jitter growing linearly (and unboundedly) with time,
//  * a Lorentzian output spectrum with *finite* power density at the
//    carrier and preserved total carrier power,
//  * a stationary output process (no external time reference survives),
// in contrast to LTI/LTV analyses, which predict a non-physical 1/Δf²
// divergence at the carrier and infinite integrated power. The scalar
//    c = (1/T) ∫₀ᵀ v1ᵀ(t) B(t) Bᵀ(t) v1(t) dt
// needs only the unperturbed steady state and the device noise generators —
// exactly the inputs the paper lists.
#pragma once

#include <string>
#include <vector>

#include "phasenoise/floquet.hpp"

namespace rfic::phasenoise {

struct PhaseNoiseResult {
  Real c = 0;        ///< phase diffusion constant [s²/s]
  Real period = 0;   ///< oscillation period T [s]
  Real f0 = 0;       ///< carrier frequency [Hz]
  FloquetDecomposition floquet;
  /// Per-noise-source contribution to c (sums to c) — the "separate
  /// contributions of noise sources" capability highlighted in Section 3.
  std::vector<std::pair<std::string, Real>> perSource;
  /// RMS of the PPV component at each unknown over the period — "the
  /// sensitivity of phase noise to individual circuit … nodes" (Section 3):
  /// a white current of PSD S injected at unknown i contributes
  /// (S/2)·nodeSensitivity[i]² to c.
  RVec nodeSensitivity;

  /// Mean-square phase-deviation (jitter) after elapsed time t:
  /// σ²(t) = c·t [s²]. Grows without bound — the Section 3 claim.
  Real jitterVariance(Real t) const { return c * t; }

  /// Two-sided output PSD density near harmonic k at offset Δf from k·f0,
  /// normalized to the harmonic power (units 1/Hz):
  ///   Λ_k(Δf) = (k²ω0²c) / ((k²ω0²c/2)² + (2πΔf)²).
  /// Finite at Δf = 0 and integrates to 1 — carrier power is preserved.
  Real lorentzian(int k, Real offsetHz) const;

  /// Single-sideband phase noise L(Δf) in dBc/Hz for the fundamental.
  Real ssbPhaseNoiseDbc(Real offsetHz) const;

  /// The LTV prediction k²ω0²c/(2πΔf)² in dBc/Hz — matches the Lorentzian
  /// far from the carrier but diverges at Δf → 0 (the non-physical result
  /// the paper warns about).
  Real ltvPhaseNoiseDbc(Real offsetHz) const;

  /// Corner offset where the Lorentzian flattens: Δf_c = ω0²c/(4π) [Hz].
  Real linewidthHz() const;
};

/// Full phase-noise characterization from a converged autonomous PSS.
/// Only white noise sources enter c (flicker noise requires the colored-
/// noise extension of the theory and is reported separately by the
/// stationary noise analysis).
PhaseNoiseResult analyzeOscillatorPhaseNoise(const MnaSystem& sys,
                                             const PSSResult& pss);

/// One-sided Welch periodogram estimate of a sampled waveform's PSD.
struct PsdEstimate {
  std::vector<Real> freq;     ///< bin frequencies [Hz], DC .. fs/2
  std::vector<Real> psd;      ///< power spectral density [units²/Hz]
  std::size_t segments = 0;   ///< averaged half-overlapping segments
};

/// Welch-averaged, Hann-windowed periodogram: the empirical counterpart to
/// the analytic Lorentzian above, for PSDs of simulated noise/jitter
/// records (e.g. validating lorentzian()/ssbPhaseNoiseDbc against a Monte-
/// Carlo phase walk). Segments of `segmentLength` samples (0 = auto: the
/// largest power of two ≤ n/4, floor 8) overlap by half; all transforms
/// replay one cached fft::Plan and the scratch buffers are reused across
/// segments, so long records cost no per-segment allocation.
PsdEstimate periodogramPsd(const std::vector<Real>& samples, Real sampleRate,
                           std::size_t segmentLength = 0);

}  // namespace rfic::phasenoise
