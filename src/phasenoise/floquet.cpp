#include "phasenoise/floquet.hpp"

#include <cmath>

#include "numeric/eig.hpp"
#include "numeric/lu.hpp"

namespace rfic::phasenoise {

FloquetDecomposition floquetDecompose(const MnaSystem& sys,
                                      const PSSResult& pss) {
  RFIC_REQUIRE(pss.converged, "floquetDecompose: PSS did not converge");
  const std::size_t n = sys.dim();
  const std::size_t m = pss.trajectory.size() - 1;
  RFIC_REQUIRE(m >= 8, "floquetDecompose: trajectory too coarse");
  const Real h = pss.period / static_cast<Real>(m);

  FloquetDecomposition out;
  const CVec mult = numeric::eigenvalues(pss.monodromy);
  out.multipliers.assign(mult.begin(), mult.end());
  Real best = 1e300;
  for (std::size_t i = 0; i < out.multipliers.size(); ++i) {
    const Real d = std::abs(out.multipliers[i] - Complex(1.0, 0.0));
    if (d < best) {
      best = d;
      out.oscillatoryIndex = i;
    }
  }

  // Per-sample Jacobians along the orbit.
  std::vector<RMat> gk(m + 1), ck(m + 1);
  circuit::MnaEval e;
  for (std::size_t k = 0; k <= m; ++k) {
    sys.eval(pss.trajectory[k], pss.times[k], e, true);
    gk[k] = e.G.toDense();
    ck[k] = e.C.toDense();
  }

  // Orbit tangent u1 = ẋs by periodic central differences (avoids
  // inverting C and matches the trajectory's own discretization error).
  out.tangent.resize(m + 1);
  for (std::size_t k = 0; k <= m; ++k) {
    const std::size_t kp = (k + 1) % m;
    const std::size_t km = (k + m - 1) % m;
    RVec d = pss.trajectory[kp];
    d -= pss.trajectory[km];
    d *= 1.0 / (2.0 * h);
    out.tangent[k] = std::move(d);
  }

  // Left eigenvector of M at the oscillatory multiplier: Mᵀ w = w.
  const CVec w0c =
      numeric::eigenvectorNear(pss.monodromy.transposed(), Complex(1.0, 0.0));
  // Rotate the (theoretically real) eigenvector to the real axis.
  std::size_t imax = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (std::abs(w0c[i]) > std::abs(w0c[imax])) imax = i;
  const Complex rot =
      std::abs(w0c[imax]) > 0 ? std::conj(w0c[imax]) / std::abs(w0c[imax])
                              : Complex(1.0, 0.0);
  RVec w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = (w0c[i] * rot).real();

  // Backward adjoint sweep, matched to the integrator that produced the
  // trajectory so that the discrete duality v_kᵀ C_k Φ_k = v_{k+1}ᵀ C_{k+1}
  // holds exactly:
  //   BE:   Φ_k = (C₁ + h·G₁)⁻¹ C₀            →  v_k = (C₁+hG₁)⁻ᵀ w_{k+1},
  //                                              w_k = C_kᵀ v_k.
  //   trap: Φ_k = (C₁ + h/2·G₁)⁻¹(C₀ − h/2·G₀) →  w_k = Φ_kᵀ w_{k+1},
  //                                              v_k = C_k⁻ᵀ w_k
  //         (needs C invertible — true for oscillator cores).
  const bool trap =
      pss.method == analysis::IntegrationMethod::trapezoidal;
  const Real gw = trap ? 0.5 * h : h;
  out.ppv.assign(m + 1, RVec(n));
  for (std::size_t k = m; k-- > 0;) {
    RMat a = ck[k + 1];
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) += gw * gk[k + 1](i, j);
    const numeric::LU<Real> lu(std::move(a));
    const RVec u = lu.solveTransposed(w);
    if (!trap) {
      out.ppv[k] = u;
      w = numeric::transposeMatvec(ck[k], u);
    } else {
      RMat rhs = ck[k];
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) rhs(i, j) -= gw * gk[k](i, j);
      w = numeric::transposeMatvec(rhs, u);
      out.ppv[k] = numeric::LU<Real>(ck[k]).solveTransposed(w);
    }
  }
  out.ppv[m] = out.ppv[0];

  // Normalize v1ᵀ C u1 = 1 (average over the orbit) and record the defect.
  Real mean = 0;
  std::vector<Real> s(m);
  for (std::size_t k = 0; k < m; ++k) {
    const RVec cu = ck[k] * out.tangent[k];
    s[k] = numeric::dot(out.ppv[k], cu);
    mean += s[k];
  }
  mean /= static_cast<Real>(m);
  RFIC_REQUIRE(std::abs(mean) > 0,
               "floquetDecompose: degenerate PPV normalization");
  Real defect = 0;
  for (std::size_t k = 0; k < m; ++k)
    defect = std::max(defect, std::abs(s[k] / mean - 1.0));
  out.normalizationDefect = defect;
  const Real inv = 1.0 / mean;
  for (auto& v : out.ppv) v *= inv;
  return out;
}

}  // namespace rfic::phasenoise
