#include "phasenoise/jitter_mc.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/transient.hpp"
#include "numeric/qr.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::phasenoise {

namespace {

// Rising crossing times of x[idx] through `level` in a stored transient.
std::vector<Real> risingCrossings(const analysis::TransientResult& tr,
                                  std::size_t idx, Real level) {
  std::vector<Real> out;
  for (std::size_t k = 1; k < tr.x.size(); ++k) {
    const Real a = tr.x[k - 1][idx] - level;
    const Real b = tr.x[k][idx] - level;
    if (a < 0 && b >= 0) {
      const Real w = a / (a - b);
      out.push_back(tr.time[k - 1] + w * (tr.time[k] - tr.time[k - 1]));
    }
  }
  return out;
}

}  // namespace

JitterMCResult monteCarloJitter(const MnaSystem& sys, const PSSResult& pss,
                                std::size_t crossingIndex, Real level,
                                Real cTheory, const JitterMCOptions& opts) {
  RFIC_REQUIRE(pss.converged, "monteCarloJitter: PSS did not converge");
  JitterMCResult res;
  res.theoreticalSlope = cTheory * opts.noiseScale * pss.period;

  analysis::TransientOptions to;
  to.tstart = 0;
  to.tstop = pss.period * static_cast<Real>(opts.cycles);
  to.dt = pss.period / static_cast<Real>(opts.stepsPerCycle);
  to.noiseScale = opts.noiseScale;
  to.budget = opts.budget;

  // Sample paths are independent: run them on the process thread pool into
  // per-path slots, then compact serially. Each path keeps its seed
  // (opts.seed + 7919·p), so the ensemble is identical to the serial run —
  // which is also what makes path-granular checkpoint/resume bit-identical:
  // a restored path's crossings are exactly what re-running it would give.
  std::vector<std::vector<Real>> pathCrossings(opts.paths);
  if (opts.resume && !opts.checkpointPath.empty()) {
    diag::JitterCheckpoint ck;
    if (diag::loadCheckpoint(opts.checkpointPath, ck) &&
        ck.totalPaths == opts.paths &&
        ck.pathCrossings.size() == opts.paths) {
      for (std::size_t p = 0; p < opts.paths; ++p) {
        if (ck.pathCrossings[p].empty()) continue;
        pathCrossings[p] = std::move(ck.pathCrossings[p]);
        ++res.resumedPaths;
      }
    }
  }
  perf::ThreadPool::global().parallelFor(opts.paths, [&](std::size_t p) {
    if (!pathCrossings[p].empty()) return;  // restored from checkpoint
    if (diag::budgetExceeded(opts.budget)) return;
    const auto tr = analysis::runNoisyTransient(sys, pss.x0, to,
                                                opts.seed + 7919 * p);
    if (!tr.ok) return;
    auto cr = risingCrossings(tr, crossingIndex, level);
    if (cr.size() < 4) return;
    pathCrossings[p] = std::move(cr);
  });
  const bool tripped = opts.budget != nullptr && opts.budget->exceeded();
  if (!opts.checkpointPath.empty()) {
    diag::JitterCheckpoint ck;
    ck.totalPaths = opts.paths;
    ck.pathCrossings = pathCrossings;
    // A checkpoint write failure must not kill the run it protects.
    (void)diag::saveCheckpoint(opts.checkpointPath, ck);
  }
  std::vector<std::vector<Real>> crossings;
  crossings.reserve(opts.paths);
  std::size_t minCount = SIZE_MAX;
  for (auto& cr : pathCrossings) {
    if (cr.empty()) continue;
    minCount = std::min(minCount, cr.size());
    crossings.push_back(std::move(cr));
  }
  res.usedPaths = crossings.size();
  res.status = tripped ? diag::SolverStatus::BudgetExceeded
                       : diag::SolverStatus::Converged;
  if (tripped && (res.usedPaths < 8 || minCount == SIZE_MAX))
    return res;  // partial ensemble, not enough paths for statistics
  RFIC_REQUIRE(res.usedPaths >= 8 && minCount != SIZE_MAX,
               "monteCarloJitter: too few successful paths");

  // Variance of the k-th crossing time across the ensemble.
  for (std::size_t k = 0; k < minCount; ++k) {
    Real mean = 0;
    for (const auto& cr : crossings) mean += cr[k];
    mean /= static_cast<Real>(crossings.size());
    Real var = 0;
    for (const auto& cr : crossings) var += (cr[k] - mean) * (cr[k] - mean);
    var /= static_cast<Real>(crossings.size() - 1);
    res.cycleIndex.push_back(static_cast<Real>(k));
    res.crossingVar.push_back(var);
  }

  // Least-squares line var ≈ slope·k + b.
  numeric::RMat a(res.cycleIndex.size(), 2);
  numeric::RVec rhs(res.cycleIndex.size());
  for (std::size_t i = 0; i < res.cycleIndex.size(); ++i) {
    a(i, 0) = res.cycleIndex[i];
    a(i, 1) = 1.0;
    rhs[i] = res.crossingVar[i];
  }
  const numeric::RVec fit = numeric::leastSquares(a, rhs);
  res.slopePerCycle = fit[0];
  return res;
}

}  // namespace rfic::phasenoise
