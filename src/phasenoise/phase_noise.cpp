#include "phasenoise/phase_noise.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "diag/contracts.hpp"
#include "fft/fft.hpp"
#include "fft/plan.hpp"

namespace rfic::phasenoise {

Real PhaseNoiseResult::lorentzian(int k, Real offsetHz) const {
  const Real w0 = kTwoPi * f0;
  const Real a = static_cast<Real>(k) * static_cast<Real>(k) * w0 * w0 * c;
  const Real dw = kTwoPi * offsetHz;
  return a / (0.25 * a * a + dw * dw);
}

Real PhaseNoiseResult::ssbPhaseNoiseDbc(Real offsetHz) const {
  return 10.0 * std::log10(lorentzian(1, offsetHz));
}

Real PhaseNoiseResult::ltvPhaseNoiseDbc(Real offsetHz) const {
  const Real w0 = kTwoPi * f0;
  const Real dw = kTwoPi * offsetHz;
  RFIC_REQUIRE(!diag::exactlyZero(offsetHz),
               "ltvPhaseNoiseDbc: diverges at zero offset");
  return 10.0 * std::log10(w0 * w0 * c / (dw * dw));
}

Real PhaseNoiseResult::linewidthHz() const {
  const Real w0 = kTwoPi * f0;
  return w0 * w0 * c / (2.0 * kTwoPi);
}

PhaseNoiseResult analyzeOscillatorPhaseNoise(const MnaSystem& sys,
                                             const PSSResult& pss) {
  // An unconverged or empty PSS would silently produce garbage (and
  // trajectory.size() - 1 below would wrap on an empty trajectory).
  RFIC_REQUIRE(pss.converged, "analyzeOscillatorPhaseNoise: PSS not converged");
  RFIC_REQUIRE(pss.trajectory.size() >= 2 && pss.period > 0,
               "analyzeOscillatorPhaseNoise: empty PSS trajectory");

  PhaseNoiseResult res;
  res.period = pss.period;
  res.f0 = 1.0 / pss.period;
  res.floquet = floquetDecompose(sys, pss);

  const std::size_t m = pss.trajectory.size() - 1;
  const Real h = pss.period / static_cast<Real>(m);

  // c = (1/T) Σ_k h Σ_sources (S_white(x_k)/2) · (v1_k[p] − v1_k[m])².
  // One-sided device PSD S → unit-white-noise intensity √(S/2).
  std::map<std::string, Real> bySource;
  Real c = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const auto sources = sys.noiseSources(pss.trajectory[k]);
    const RVec& v = res.floquet.ppv[k];
    for (const auto& src : sources) {
      const Real vp = src.nodePlus >= 0
                          ? v[static_cast<std::size_t>(src.nodePlus)]
                          : 0.0;
      const Real vm = src.nodeMinus >= 0
                          ? v[static_cast<std::size_t>(src.nodeMinus)]
                          : 0.0;
      const Real contrib =
          0.5 * std::max(0.0, src.white) * (vp - vm) * (vp - vm) * h;
      c += contrib;
      bySource[src.label] += contrib;
    }
  }
  c /= pss.period;
  diag::checkFinite(c, "analyzeOscillatorPhaseNoise: diffusion constant c");
  res.c = c;
  res.perSource.reserve(bySource.size());
  for (auto& [label, val] : bySource)
    res.perSource.emplace_back(label, val / pss.period);

  // Node sensitivity: RMS of v1 per unknown along the orbit.
  const std::size_t n = pss.x0.size();
  res.nodeSensitivity = RVec(n);
  for (std::size_t k = 0; k < m; ++k) {
    const RVec& v = res.floquet.ppv[k];
    for (std::size_t i = 0; i < n; ++i)
      res.nodeSensitivity[i] += v[i] * v[i];
  }
  for (std::size_t i = 0; i < n; ++i)
    res.nodeSensitivity[i] =
        std::sqrt(res.nodeSensitivity[i] / static_cast<Real>(m));
  return res;
}

PsdEstimate periodogramPsd(const std::vector<Real>& samples, Real sampleRate,
                           std::size_t segmentLength) {
  RFIC_REQUIRE(samples.size() >= 8, "periodogramPsd: too few samples");
  RFIC_REQUIRE(sampleRate > 0, "periodogramPsd: bad sample rate");
  RFIC_REQUIRE(segmentLength == 0 || segmentLength >= 8,
               "periodogramPsd: segment length must be 0 (auto) or >= 8");
  const std::size_t n = samples.size();
  std::size_t seg = segmentLength;
  if (seg == 0) {
    // Largest power of two at most n/4 (floor 8): enough segments to
    // average the periodogram variance down, pow2 for the cheapest plan.
    seg = 8;
    while (seg * 2 <= n / 4) seg *= 2;
  }
  seg = std::min(seg, n);
  const std::size_t hop = std::max<std::size_t>(1, seg / 2);

  // Hann window and its power, computed once per call.
  std::vector<Real> win(seg);
  Real winPower = 0;
  for (std::size_t i = 0; i < seg; ++i) {
    win[i] = 0.5 * (1.0 - std::cos(kTwoPi * static_cast<Real>(i) /
                                   static_cast<Real>(seg)));
    winPower += win[i] * win[i];
  }

  // All segments replay one cached plan through one pair of buffers.
  const auto plan = fft::PlanCache::global().get(seg);
  std::vector<Complex> buf(seg);
  std::vector<Complex> scratch(plan->scratchSize());

  const std::size_t half = seg / 2 + 1;
  PsdEstimate est;
  est.freq.resize(half);
  est.psd.assign(half, 0.0);
  for (std::size_t k = 0; k < half; ++k)
    est.freq[k] = sampleRate * static_cast<Real>(k) / static_cast<Real>(seg);

  for (std::size_t start = 0; start + seg <= n; start += hop) {
    for (std::size_t i = 0; i < seg; ++i)
      buf[i] = samples[start + i] * win[i];
    plan->forward(buf.data(), scratch.data());
    for (std::size_t k = 0; k < half; ++k)
      est.psd[k] += std::norm(buf[k]);
    ++est.segments;
  }

  // One-sided normalization: 1/(fs·Σw²) per segment, averaged over
  // segments, interior bins doubled (DC and, for even seg, Nyquist are
  // their own mirror).
  const Real norm =
      1.0 / (sampleRate * winPower * static_cast<Real>(est.segments));
  for (std::size_t k = 0; k < half; ++k) {
    Real v = est.psd[k] * norm;
    const bool mirrored = k != 0 && !(seg % 2 == 0 && k == half - 1);
    est.psd[k] = mirrored ? 2.0 * v : v;
  }
  return est;
}

}  // namespace rfic::phasenoise
