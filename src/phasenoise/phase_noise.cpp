#include "phasenoise/phase_noise.hpp"

#include <cmath>
#include <map>

#include "diag/contracts.hpp"

namespace rfic::phasenoise {

Real PhaseNoiseResult::lorentzian(int k, Real offsetHz) const {
  const Real w0 = kTwoPi * f0;
  const Real a = static_cast<Real>(k) * static_cast<Real>(k) * w0 * w0 * c;
  const Real dw = kTwoPi * offsetHz;
  return a / (0.25 * a * a + dw * dw);
}

Real PhaseNoiseResult::ssbPhaseNoiseDbc(Real offsetHz) const {
  return 10.0 * std::log10(lorentzian(1, offsetHz));
}

Real PhaseNoiseResult::ltvPhaseNoiseDbc(Real offsetHz) const {
  const Real w0 = kTwoPi * f0;
  const Real dw = kTwoPi * offsetHz;
  RFIC_REQUIRE(!diag::exactlyZero(offsetHz),
               "ltvPhaseNoiseDbc: diverges at zero offset");
  return 10.0 * std::log10(w0 * w0 * c / (dw * dw));
}

Real PhaseNoiseResult::linewidthHz() const {
  const Real w0 = kTwoPi * f0;
  return w0 * w0 * c / (2.0 * kTwoPi);
}

PhaseNoiseResult analyzeOscillatorPhaseNoise(const MnaSystem& sys,
                                             const PSSResult& pss) {
  // An unconverged or empty PSS would silently produce garbage (and
  // trajectory.size() - 1 below would wrap on an empty trajectory).
  RFIC_REQUIRE(pss.converged, "analyzeOscillatorPhaseNoise: PSS not converged");
  RFIC_REQUIRE(pss.trajectory.size() >= 2 && pss.period > 0,
               "analyzeOscillatorPhaseNoise: empty PSS trajectory");

  PhaseNoiseResult res;
  res.period = pss.period;
  res.f0 = 1.0 / pss.period;
  res.floquet = floquetDecompose(sys, pss);

  const std::size_t m = pss.trajectory.size() - 1;
  const Real h = pss.period / static_cast<Real>(m);

  // c = (1/T) Σ_k h Σ_sources (S_white(x_k)/2) · (v1_k[p] − v1_k[m])².
  // One-sided device PSD S → unit-white-noise intensity √(S/2).
  std::map<std::string, Real> bySource;
  Real c = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const auto sources = sys.noiseSources(pss.trajectory[k]);
    const RVec& v = res.floquet.ppv[k];
    for (const auto& src : sources) {
      const Real vp = src.nodePlus >= 0
                          ? v[static_cast<std::size_t>(src.nodePlus)]
                          : 0.0;
      const Real vm = src.nodeMinus >= 0
                          ? v[static_cast<std::size_t>(src.nodeMinus)]
                          : 0.0;
      const Real contrib =
          0.5 * std::max(0.0, src.white) * (vp - vm) * (vp - vm) * h;
      c += contrib;
      bySource[src.label] += contrib;
    }
  }
  c /= pss.period;
  diag::checkFinite(c, "analyzeOscillatorPhaseNoise: diffusion constant c");
  res.c = c;
  res.perSource.reserve(bySource.size());
  for (auto& [label, val] : bySource)
    res.perSource.emplace_back(label, val / pss.period);

  // Node sensitivity: RMS of v1 per unknown along the orbit.
  const std::size_t n = pss.x0.size();
  res.nodeSensitivity = RVec(n);
  for (std::size_t k = 0; k < m; ++k) {
    const RVec& v = res.floquet.ppv[k];
    for (std::size_t i = 0; i < n; ++i)
      res.nodeSensitivity[i] += v[i] * v[i];
  }
  for (std::size_t i = 0; i < n; ++i)
    res.nodeSensitivity[i] =
        std::sqrt(res.nodeSensitivity[i] / static_cast<Real>(m));
  return res;
}

}  // namespace rfic::phasenoise
