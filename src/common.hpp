// Common scalar types and error handling for the rfic library.
//
// The library reproduces the RF-IC analysis tool suite described in
// "Tools and Methodology for RF IC Design" (DAC 1998). All numerical code
// works in double precision; complex quantities use std::complex<double>.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>

namespace rfic {

using Real = double;
using Complex = std::complex<double>;

inline constexpr Real kPi = 3.14159265358979323846;
inline constexpr Real kTwoPi = 2.0 * kPi;

/// Thrown for invalid arguments, dimension mismatches, and solver setup
/// errors — conditions a caller can prevent.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an iterative or direct numerical process fails to converge
/// or encounters a singular system — conditions data-dependent at runtime.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void failInvalid(const std::string& msg) {
  throw InvalidArgument(msg);
}
[[noreturn]] inline void failNumerical(const std::string& msg) {
  throw NumericalError(msg);
}

/// Precondition check used at public API boundaries.
#define RFIC_REQUIRE(cond, msg) \
  do {                          \
    if (!(cond)) ::rfic::failInvalid(msg); \
  } while (false)

}  // namespace rfic
