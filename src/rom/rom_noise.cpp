#include "rom/rom_noise.hpp"

#include <chrono>
#include <cmath>

namespace rfic::rom {

namespace {
using Clock = std::chrono::steady_clock;
Real seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<Real>(b - a).count();
}
}  // namespace

RomNoiseResult noiseViaROM(const DescriptorSystem& sys,
                           const std::vector<NoiseInput>& sources,
                           const std::vector<Real>& freqs, Real s0,
                           std::size_t q) {
  RFIC_REQUIRE(!sources.empty() && !freqs.empty(),
               "noiseViaROM: sources and freqs required");
  RomNoiseResult out;
  out.freq = freqs;
  out.order = q;

  // --- Direct: one adjoint factorization per frequency covers all sources.
  const auto t0 = Clock::now();
  out.directPsd.reserve(freqs.size());
  for (const Real f : freqs) {
    const Complex s(0.0, kTwoPi * f);
    sparse::CTriplets ah(sys.n, sys.n);
    for (const auto& e : sys.G.entries())
      ah.add(e.col, e.row, Complex(e.value, 0.0));
    for (const auto& e : sys.C.entries())
      ah.add(e.col, e.row, std::conj(s) * e.value);
    sparse::CSparseLU lu(ah);
    CVec rhs(sys.n);
    for (std::size_t i = 0; i < sys.n; ++i) rhs[i] = sys.l[i];
    const CVec adj = lu.solve(rhs);
    Real total = 0;
    for (const auto& src : sources) {
      Complex h = 0;
      for (std::size_t i = 0; i < sys.n; ++i)
        h += std::conj(adj[i]) * src.injection[i];
      total += std::norm(h) * src.psd;
    }
    out.directPsd.push_back(total);
  }
  const auto t1 = Clock::now();
  out.directSeconds = seconds(t0, t1);

  // --- ROM: one PVL model per source, then cheap sweeps.
  const auto t2 = Clock::now();
  std::vector<ReducedOrderModel> roms;
  roms.reserve(sources.size());
  for (const auto& src : sources) {
    DescriptorSystem per = sys;
    per.b = src.injection;
    roms.push_back(pvl(per, s0, q).rom);
  }
  out.romPsd.assign(freqs.size(), 0.0);
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const Complex s(0.0, kTwoPi * freqs[k]);
    Real total = 0;
    for (std::size_t j = 0; j < roms.size(); ++j)
      total += std::norm(roms[j].transfer(s)) * sources[j].psd;
    out.romPsd[k] = total;
  }
  const auto t3 = Clock::now();
  out.romSeconds = seconds(t2, t3);

  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const Real ref = std::abs(out.directPsd[k]) + 1e-300;
    out.maxRelError = std::max(
        out.maxRelError, std::abs(out.romPsd[k] - out.directPsd[k]) / ref);
  }
  return out;
}

}  // namespace rfic::rom
