#include "rom/linear_system.hpp"

namespace rfic::rom {

Complex DescriptorSystem::transferFunction(Complex s) const {
  sparse::CTriplets a(n, n);
  for (const auto& e : G.entries()) a.add(e.row, e.col, Complex(e.value, 0.0));
  for (const auto& e : C.entries()) a.add(e.row, e.col, s * e.value);
  sparse::CSparseLU lu(a);
  CVec rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = b[i];
  const CVec x = lu.solve(rhs);
  Complex y = 0;
  for (std::size_t i = 0; i < n; ++i) y += l[i] * x[i];
  return y;
}

namespace {

sparse::RTriplets shifted(const DescriptorSystem& sys, Real s0) {
  sparse::RTriplets k(sys.n, sys.n);
  for (const auto& e : sys.G.entries()) k.add(e.row, e.col, e.value);
  for (const auto& e : sys.C.entries()) k.add(e.row, e.col, s0 * e.value);
  return k;
}

sparse::RTriplets transposed(const sparse::RTriplets& a) {
  sparse::RTriplets t(a.cols(), a.rows());
  for (const auto& e : a.entries()) t.add(e.col, e.row, e.value);
  return t;
}

}  // namespace

ExpansionOperator::ExpansionOperator(const DescriptorSystem& sys, Real s0)
    : sys_(sys),
      c_(sys.C),
      k_(shifted(sys, s0)),
      kT_(transposed(shifted(sys, s0))) {
  r_ = k_.solve(sys.b);
}

RVec ExpansionOperator::apply(const RVec& x) const {
  return k_.solve(c_ * x);
}

RVec ExpansionOperator::applyTransposed(const RVec& x) const {
  return c_.transposeMultiply(kT_.solve(x));
}

std::vector<Real> exactMoments(const DescriptorSystem& sys, Real s0,
                               std::size_t count) {
  const ExpansionOperator op(sys, s0);
  std::vector<Real> m;
  m.reserve(count);
  RVec v = op.r();
  for (std::size_t k = 0; k < count; ++k) {
    m.push_back(numeric::dot(sys.l, v));
    if (k + 1 < count) v = op.apply(v);
  }
  return m;
}

DescriptorSystem makeRCLine(std::size_t segments, Real rTotal, Real cTotal) {
  RFIC_REQUIRE(segments >= 1, "makeRCLine: at least one segment");
  DescriptorSystem sys;
  sys.n = segments + 1;
  sys.G = sparse::RTriplets(sys.n, sys.n);
  sys.C = sparse::RTriplets(sys.n, sys.n);
  sys.b = RVec(sys.n);
  sys.l = RVec(sys.n);
  const Real g = static_cast<Real>(segments) / rTotal;
  const Real c = cTotal / static_cast<Real>(segments);
  for (std::size_t k = 0; k < segments; ++k) {
    sys.G.add(k, k, g);
    sys.G.add(k + 1, k + 1, g);
    sys.G.add(k, k + 1, -g);
    sys.G.add(k + 1, k, -g);
    sys.C.add(k + 1, k + 1, c);
  }
  sys.C.add(0, 0, 0.5 * c);  // small input-side load keeps C nonzero there
  sys.G.add(0, 0, g);        // driver source conductance: G nonsingular at DC
  sys.b[0] = 1.0;            // input current at the near end
  sys.l[segments] = 1.0;     // far-end voltage
  return sys;
}

DescriptorSystem makeRLCLine(std::size_t segments, Real rTotal, Real lTotal,
                             Real cTotal) {
  RFIC_REQUIRE(segments >= 1, "makeRLCLine: at least one segment");
  DescriptorSystem sys;
  // Unknowns: node voltages 0..segments, branch currents per segment.
  const std::size_t nv = segments + 1;
  sys.n = nv + segments;
  sys.G = sparse::RTriplets(sys.n, sys.n);
  sys.C = sparse::RTriplets(sys.n, sys.n);
  sys.b = RVec(sys.n);
  sys.l = RVec(sys.n);
  const Real r = rTotal / static_cast<Real>(segments);
  const Real lseg = lTotal / static_cast<Real>(segments);
  const Real c = cTotal / static_cast<Real>(segments);
  for (std::size_t k = 0; k < segments; ++k) {
    const std::size_t br = nv + k;
    // KCL: branch current leaves node k, enters node k+1.
    sys.G.add(k, br, 1.0);
    sys.G.add(k + 1, br, -1.0);
    // Branch: L·di/dt + R·i − (v_k − v_{k+1}) = 0.
    sys.C.add(br, br, lseg);
    sys.G.add(br, br, r);
    sys.G.add(br, k, -1.0);
    sys.G.add(br, k + 1, 1.0);
    sys.C.add(k + 1, k + 1, c);
  }
  sys.C.add(0, 0, 0.5 * c);
  sys.G.add(0, 0, 1.0 / r);  // driver source conductance
  sys.b[0] = 1.0;
  sys.l[segments] = 1.0;
  return sys;
}

DescriptorSystem makeRCTree(std::size_t depth, Real rSeg, Real cSeg) {
  RFIC_REQUIRE(depth >= 1 && depth <= 14, "makeRCTree: depth in [1, 14]");
  // Complete binary tree of RC segments; node 0 is the root (input).
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  DescriptorSystem sys;
  sys.n = n;
  sys.G = sparse::RTriplets(n, n);
  sys.C = sparse::RTriplets(n, n);
  sys.b = RVec(n);
  sys.l = RVec(n);
  const Real g = 1.0 / rSeg;
  sys.G.add(0, 0, g);  // root termination to ground
  sys.C.add(0, 0, cSeg);
  for (std::size_t k = 0; 2 * k + 2 < n; ++k) {
    for (std::size_t child : {2 * k + 1, 2 * k + 2}) {
      // Vary segment values slightly with position to spread the poles.
      const Real scale = 1.0 + 0.3 * static_cast<Real>(child % 5);
      const Real gc = g / scale;
      sys.G.add(k, k, gc);
      sys.G.add(child, child, gc);
      sys.G.add(k, child, -gc);
      sys.G.add(child, k, -gc);
      sys.C.add(child, child, cSeg * scale);
    }
  }
  sys.b[0] = 1.0;
  sys.l[n - 1] = 1.0;  // deepest leaf
  return sys;
}

}  // namespace rfic::rom
