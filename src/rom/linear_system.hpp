// Linear descriptor systems for reduced-order modeling (Section 5).
//
// The large linear sub-blocks of RF ICs — extracted interconnect, package,
// substrate networks — are represented as
//     (G + s·C)·x = b·u,    y = lᵀ·x,
// with transfer function H(s) = lᵀ(G + sC)⁻¹b. Expanded about s0, the
// moments are m_k = lᵀ·A^k·r with A = (G + s0·C)⁻¹C, r = (G + s0·C)⁻¹b:
//     H(s0 + σ) = Σ_k (−σ)^k·m_k.
#pragma once

#include <memory>

#include "numeric/dense.hpp"
#include "sparse/sparse_lu.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::rom {

using numeric::CVec;
using numeric::RVec;

/// SISO descriptor system with sparse G and C.
struct DescriptorSystem {
  std::size_t n = 0;
  sparse::RTriplets G, C;
  RVec b;  ///< input vector
  RVec l;  ///< output vector

  /// Exact transfer function by one sparse complex solve.
  Complex transferFunction(Complex s) const;
};

/// Krylov workhorse shared by PVL/Arnoldi/PRIMA: applies A = K⁻¹C and
/// computes r = K⁻¹b with a single factorization of K = G + s0·C.
class ExpansionOperator {
 public:
  ExpansionOperator(const DescriptorSystem& sys, Real s0);
  std::size_t dim() const { return sys_.n; }
  const RVec& r() const { return r_; }
  /// y = A·x = K⁻¹·C·x
  RVec apply(const RVec& x) const;
  /// y = Aᵀ·x = Cᵀ·K⁻ᵀ·x — required by the two-sided Lanczos process.
  RVec applyTransposed(const RVec& x) const;

 private:
  const DescriptorSystem& sys_;
  sparse::RCSR c_;
  sparse::RSparseLU k_;       // K
  sparse::RSparseLU kT_;      // Kᵀ (separate factorization)
  RVec r_;
};

/// Exact moments m_0..m_{count−1} about s0 (reference for the
/// moment-matching claims: PVL matches 2q, Arnoldi matches q).
std::vector<Real> exactMoments(const DescriptorSystem& sys, Real s0,
                               std::size_t count);

/// --- Benchmark-system generators ----------------------------------------

/// Uniform RC transmission line: `segments` sections of series R and shunt
/// C, driven by a current source at node 0, output voltage at the far end.
DescriptorSystem makeRCLine(std::size_t segments, Real rTotal, Real cTotal);

/// RLC line with series R-L and shunt C per segment (adds resonant poles).
DescriptorSystem makeRLCLine(std::size_t segments, Real rTotal, Real lTotal,
                             Real cTotal);

/// Binary RC tree with side loads — a stand-in for extracted clock or
/// power-grid interconnect with many spread poles.
DescriptorSystem makeRCTree(std::size_t depth, Real rSeg, Real cSeg);

}  // namespace rfic::rom
