// PRIMA-style passive congruence reduction (Section 5, [34]).
//
// Projects G and C themselves with the orthonormal Krylov basis X:
//   Ĝ = XᵀGX, Ĉ = XᵀCX, b̂ = Xᵀb, l̂ = Xᵀl.
// For RC/RLC networks in passive MNA form the congruence preserves the
// definiteness of G and C and hence passivity — the remedy the paper
// mentions for Lanczos occasionally producing non-passive reduced models.
// Costs the same Krylov work as Arnoldi and matches q moments.
#pragma once

#include "rom/arnoldi_rom.hpp"

namespace rfic::rom {

struct PrimaModel {
  Real s0 = 0;
  numeric::RMat gHat, cHat;
  RVec bHat, lHat;

  std::size_t order() const { return gHat.rows(); }
  Complex transfer(Complex s) const;
  /// Poles: eigenvalues of −Ĉ⁻¹Ĝ (requires invertible Ĉ).
  std::vector<Complex> poles() const;
  /// True if every pole has a non-positive real part.
  bool polesStable(Real tol = 1e-9) const;
  std::vector<Real> moments(std::size_t count) const;
};

PrimaModel primaReduce(const DescriptorSystem& sys, Real s0, std::size_t q);

}  // namespace rfic::rom
