#include "rom/pvl.hpp"

#include <cmath>

#include "numeric/eig.hpp"
#include "numeric/lu.hpp"

namespace rfic::rom {

Complex ReducedOrderModel::transfer(Complex s) const {
  const std::size_t q = order();
  const Complex sigma = s - s0;
  numeric::CMat a(q, q);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) a(i, j) = sigma * t(i, j);
    a(i, i) += 1.0;
  }
  numeric::CVec rhs(q);
  for (std::size_t i = 0; i < q; ++i) rhs[i] = inWeight[i];
  const numeric::CVec x = numeric::solveDense(std::move(a), rhs);
  Complex y = 0;
  for (std::size_t i = 0; i < q; ++i) y += outWeight[i] * x[i];
  return y;
}

std::vector<Real> ReducedOrderModel::moments(std::size_t count) const {
  std::vector<Real> m;
  m.reserve(count);
  RVec v = inWeight;
  for (std::size_t k = 0; k < count; ++k) {
    m.push_back(numeric::dot(outWeight, v));
    if (k + 1 < count) v = t * v;
  }
  return m;
}

std::vector<Complex> ReducedOrderModel::poles() const {
  const numeric::CVec eig = numeric::eigenvalues(t);
  std::vector<Complex> p;
  p.reserve(eig.size());
  for (std::size_t i = 0; i < eig.size(); ++i) {
    if (std::abs(eig[i]) < 1e-14) continue;  // pole at infinity
    p.push_back(Complex(s0, 0.0) - 1.0 / eig[i]);
  }
  return p;
}

PVLResult pvl(const DescriptorSystem& sys, Real s0, std::size_t q) {
  RFIC_REQUIRE(q >= 1 && q <= sys.n, "pvl: bad order");
  const ExpansionOperator op(sys, s0);

  PVLResult res;
  const Real rho = numeric::norm2(op.r());
  const Real eta = numeric::norm2(sys.l);
  RFIC_REQUIRE(rho > 0 && eta > 0, "pvl: zero input or output vector");

  std::vector<RVec> v, w;
  std::vector<Real> delta;
  v.push_back(op.r());
  v[0] *= 1.0 / rho;
  w.push_back(sys.l);
  w[0] *= 1.0 / eta;
  delta.push_back(numeric::dot(w[0], v[0]));
  if (std::abs(delta[0]) < 1e-14) {
    res.breakdown = true;
    return res;
  }

  // Build the biorthogonal bases with full rebiorthogonalization. With the
  // full pass the three-term coupling coefficients are redundant; the
  // reduced matrix is computed afterwards as the exact oblique projection
  //   T = D⁻¹·Wᵀ·A·V,  D = diag(w_iᵀ v_i),
  // which is tridiagonal in exact arithmetic (the Lanczos identity) and
  // matches 2q moments regardless of rounding.
  std::vector<RVec> av;  // A·v_j, reused for T
  std::size_t achieved = 1;
  for (std::size_t j = 0; j + 1 < q; ++j) {
    av.push_back(op.apply(v[j]));
    RVec vh = av.back();
    RVec wh = op.applyTransposed(w[j]);
    for (std::size_t i = 0; i <= j; ++i) {
      numeric::axpy(-numeric::dot(w[i], vh) / delta[i], v[i], vh);
      numeric::axpy(-numeric::dot(v[i], wh) / delta[i], w[i], wh);
    }
    const Real gamma = numeric::norm2(vh);
    const Real omega = numeric::norm2(wh);
    if (gamma < 1e-300 || omega < 1e-300) break;  // invariant subspace
    vh *= 1.0 / gamma;
    wh *= 1.0 / omega;
    const Real dNew = numeric::dot(wh, vh);
    if (std::abs(dNew) < 1e-13) {
      res.breakdown = true;  // serious breakdown; no look-ahead
      break;
    }
    v.push_back(std::move(vh));
    w.push_back(std::move(wh));
    delta.push_back(dNew);
    achieved = j + 2;
  }
  av.push_back(op.apply(v[achieved - 1]));

  res.achievedOrder = achieved;
  numeric::RMat tq(achieved, achieved);
  for (std::size_t jj = 0; jj < achieved; ++jj)
    for (std::size_t i = 0; i < achieved; ++i)
      tq(i, jj) = numeric::dot(w[i], av[jj]) / delta[i];

  res.rom.s0 = s0;
  res.rom.t = std::move(tq);
  res.rom.inWeight = RVec(achieved);
  res.rom.outWeight = RVec(achieved);
  res.rom.inWeight[0] = 1.0;
  res.rom.outWeight[0] = rho * eta * delta[0];
  return res;
}

}  // namespace rfic::rom
