#include "rom/prima.hpp"

#include <cmath>

#include "numeric/eig.hpp"
#include "numeric/lu.hpp"

namespace rfic::rom {

Complex PrimaModel::transfer(Complex s) const {
  const std::size_t q = order();
  numeric::CMat a(q, q);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j)
      a(i, j) = Complex(gHat(i, j), 0.0) + s * cHat(i, j);
  numeric::CVec rhs(q);
  for (std::size_t i = 0; i < q; ++i) rhs[i] = bHat[i];
  const numeric::CVec x = numeric::solveDense(std::move(a), rhs);
  Complex y = 0;
  for (std::size_t i = 0; i < q; ++i) y += lHat[i] * x[i];
  return y;
}

std::vector<Complex> PrimaModel::poles() const {
  const numeric::RMat m = numeric::inverse(cHat) * gHat;
  const numeric::CVec eig = numeric::eigenvalues(m);
  std::vector<Complex> p(eig.size());
  for (std::size_t i = 0; i < eig.size(); ++i) p[i] = -eig[i];
  return p;
}

bool PrimaModel::polesStable(Real tol) const {
  for (const Complex& p : poles())
    if (p.real() > tol) return false;
  return true;
}

std::vector<Real> PrimaModel::moments(std::size_t count) const {
  // Moments of the reduced system about s0, computed the same way as the
  // full system's: Â = K̂⁻¹Ĉ, r̂ = K̂⁻¹b̂, m_k = l̂ᵀÂᵏr̂.
  const std::size_t q = order();
  numeric::RMat k = gHat;
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j) k(i, j) += s0 * cHat(i, j);
  const numeric::LU<Real> lu(std::move(k));
  RVec v = lu.solve(bHat);
  std::vector<Real> m;
  m.reserve(count);
  for (std::size_t kk = 0; kk < count; ++kk) {
    m.push_back(numeric::dot(lHat, v));
    if (kk + 1 < count) v = lu.solve(cHat * v);
  }
  return m;
}

PrimaModel primaReduce(const DescriptorSystem& sys, Real s0, std::size_t q) {
  const ArnoldiResult arn = arnoldiReduce(sys, s0, q);
  const auto& x = arn.basis;
  const std::size_t qa = x.size();

  PrimaModel m;
  m.s0 = s0;
  m.gHat = numeric::RMat(qa, qa);
  m.cHat = numeric::RMat(qa, qa);
  m.bHat = RVec(qa);
  m.lHat = RVec(qa);

  // Congruence projections of the sparse G, C.
  std::vector<RVec> gx(qa), cx(qa);
  const sparse::RCSR g(sys.G), c(sys.C);
  for (std::size_t j = 0; j < qa; ++j) {
    gx[j] = g * x[j];
    cx[j] = c * x[j];
  }
  for (std::size_t i = 0; i < qa; ++i) {
    for (std::size_t j = 0; j < qa; ++j) {
      m.gHat(i, j) = numeric::dot(x[i], gx[j]);
      m.cHat(i, j) = numeric::dot(x[i], cx[j]);
    }
    m.bHat[i] = numeric::dot(x[i], sys.b);
    m.lHat[i] = numeric::dot(x[i], sys.l);
  }
  return m;
}

}  // namespace rfic::rom
