// One-sided Arnoldi reduction (Section 5, [2, 6, 34, 42]).
//
// Orthonormal Krylov basis V of K_q(A, r); reduced model
//   H_q(s0 + σ) = (Vᵀl)ᵀ·(I + σ·H_q)⁻¹·(‖r‖·e1),  H_q = Vᵀ·A·V.
// Matches q moments — half of PVL's 2q for the same work, the comparison
// the paper quantifies ("they match twice as many moments as the Arnoldi
// algorithm").
#pragma once

#include "rom/pvl.hpp"

namespace rfic::rom {

struct ArnoldiResult {
  ReducedOrderModel rom;
  std::size_t achievedOrder = 0;
  /// Orthonormal basis (kept for PRIMA-style congruence projection).
  std::vector<RVec> basis;
};

ArnoldiResult arnoldiReduce(const DescriptorSystem& sys, Real s0,
                            std::size_t q);

}  // namespace rfic::rom
