#include "rom/arnoldi_rom.hpp"

#include <cmath>

namespace rfic::rom {

ArnoldiResult arnoldiReduce(const DescriptorSystem& sys, Real s0,
                            std::size_t q) {
  RFIC_REQUIRE(q >= 1 && q <= sys.n, "arnoldiReduce: bad order");
  const ExpansionOperator op(sys, s0);

  ArnoldiResult res;
  const Real rho = numeric::norm2(op.r());
  RFIC_REQUIRE(rho > 0, "arnoldiReduce: zero input vector");

  std::vector<RVec>& v = res.basis;
  v.push_back(op.r());
  v[0] *= 1.0 / rho;

  std::vector<RVec> av;
  std::size_t achieved = 1;
  for (std::size_t j = 0; j + 1 < q; ++j) {
    av.push_back(op.apply(v[j]));
    RVec vh = av.back();
    // Modified Gram-Schmidt, twice for robustness.
    for (int pass = 0; pass < 2; ++pass)
      for (std::size_t i = 0; i <= j; ++i)
        numeric::axpy(-numeric::dot(v[i], vh), v[i], vh);
    const Real h = numeric::norm2(vh);
    if (h < 1e-300) break;  // invariant subspace reached
    vh *= 1.0 / h;
    v.push_back(std::move(vh));
    achieved = j + 2;
  }
  av.push_back(op.apply(v[achieved - 1]));

  res.achievedOrder = achieved;
  res.rom.s0 = s0;
  res.rom.t = numeric::RMat(achieved, achieved);
  for (std::size_t j = 0; j < achieved; ++j)
    for (std::size_t i = 0; i < achieved; ++i)
      res.rom.t(i, j) = numeric::dot(v[i], av[j]);
  res.rom.inWeight = RVec(achieved);
  res.rom.inWeight[0] = rho;
  res.rom.outWeight = RVec(achieved);
  for (std::size_t i = 0; i < achieved; ++i)
    res.rom.outWeight[i] = numeric::dot(v[i], sys.l);
  return res;
}

}  // namespace rfic::rom
