// ROM-accelerated noise evaluation (Section 5, [7] — Feldmann & Freund,
// ICCAD 1997: "Circuit noise evaluation by Padé approximation based model
// reduction").
//
// The output noise PSD of a linear(ized) network with many embedded noise
// current sources is Σᵢ |Hᵢ(j2πf)|²·Sᵢ(f). Evaluating it directly costs one
// sparse factorization per frequency point; reducing each source-to-output
// transfer with PVL first compresses the entire noise behaviour of the
// block into a handful of small models that are practically free to sweep —
// and can be reused hierarchically in system-level simulation.
#pragma once

#include <vector>

#include "rom/pvl.hpp"

namespace rfic::rom {

/// One embedded noise source: injection vector + one-sided white PSD.
struct NoiseInput {
  RVec injection;  ///< b-vector of the source (size n)
  Real psd = 0;    ///< A²/Hz
  std::string label;
};

struct RomNoiseResult {
  std::vector<Real> freq;
  std::vector<Real> directPsd;  ///< exact sweep [V²/Hz]
  std::vector<Real> romPsd;     ///< ROM sweep [V²/Hz]
  Real maxRelError = 0;
  Real directSeconds = 0;
  Real romSeconds = 0;  ///< includes ROM construction
  std::size_t order = 0;
};

/// Compare direct and ROM-based output-noise sweeps on `sys` (the system's
/// own b is ignored; `l` is the output). `q` is the PVL order per source.
RomNoiseResult noiseViaROM(const DescriptorSystem& sys,
                           const std::vector<NoiseInput>& sources,
                           const std::vector<Real>& freqs, Real s0,
                           std::size_t q);

}  // namespace rfic::rom
