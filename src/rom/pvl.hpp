// PVL — Padé via Lanczos (Section 5, [8, 9]).
//
// The nonsymmetric Lanczos process biorthogonalizes Krylov sequences of
// A = (G + s0·C)⁻¹C and Aᵀ, producing a tridiagonal T_q whose Padé-type
// approximant  H_q(s0 + σ) = (lᵀr)·e1ᵀ(I + σ·T_q)⁻¹·e1  matches the first
// **2q** moments of H — twice as many per iteration as one-sided Arnoldi,
// the efficiency claim the paper makes for Lanczos-based reduction. The
// trade-off (also noted in the paper): the reduced model of a passive
// network is not guaranteed passive; see rom/prima.hpp for the congruence
// alternative.
#pragma once

#include "rom/linear_system.hpp"

namespace rfic::rom {

/// Reduced-order model produced by PVL or Arnoldi reduction.
struct ReducedOrderModel {
  Real s0 = 0;        ///< expansion point
  numeric::RMat t;    ///< q×q reduced matrix (tridiagonal for PVL)
  RVec inWeight;      ///< q-vector: reduced input (e1-scaled)
  RVec outWeight;     ///< q-vector: reduced output

  std::size_t order() const { return t.rows(); }

  /// H_q(s) = outᵀ·(I + (s − s0)·T)⁻¹·in
  Complex transfer(Complex s) const;

  /// Approximate moments m_k = outᵀ·T^k·in — compare with exactMoments().
  std::vector<Real> moments(std::size_t count) const;

  /// Poles of the approximant: s = s0 − 1/λ for each eigenvalue λ of T.
  std::vector<Complex> poles() const;
};

struct PVLResult {
  ReducedOrderModel rom;
  bool breakdown = false;    ///< serious Lanczos breakdown before order q
  std::size_t achievedOrder = 0;
};

/// Run q steps of two-sided Lanczos about s0. Uses full
/// rebiorthogonalization (orders are small in practice); exact breakdowns
/// (wᵀv ≈ 0) terminate early with the order achieved so far — look-ahead
/// is not implemented.
PVLResult pvl(const DescriptorSystem& sys, Real s0, std::size_t q);

}  // namespace rfic::rom
