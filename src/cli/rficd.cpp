// rficd — simulation-as-a-service daemon.
//
// Serves the engine::Scheduler over a unix-domain socket speaking
// newline-delimited JSON (one flat object per line, both directions; see
// engine/json.hpp and DESIGN.md §10). Requests:
//
//   {"cmd":"submit","netlist":"...","label":"lna","timeout":5,
//    "newton":0,"krylov":0,"threads":1,"priority":"high|normal|batch",
//    "maxbytes":0,"ordering":"natural|amd"}
//       → {"event":"accepted","job":7}
//         (or {"event":"rejected","reason":"queue-full|shutting-down|
//          spec-invalid|shed","detail":"...","degraded":false})
//       then the job's streamed events on this connection:
//       {"event":"started","job":7}
//       {"event":"stdout","job":7,"text":"* .op (newton, 5 iterations)\n..."}
//       {"event":"analysis","job":7,"card":".op","ok":true,...}
//       {"event":"finished","job":7,"exit":0,"cancelled":false,
//        "peakBytes":18432,"ctxHits":1,"ctxMisses":0,"planCacheHits":42,...}
//   {"cmd":"status"}            → one {"event":"job",...} line per job,
//                                 then {"event":"status-end","jobs":N}
//   {"cmd":"cancel","job":7}    → {"event":"cancel","job":7,"ok":true}
//   {"cmd":"result","job":7}    → blocks, then {"event":"result","job":7,...}
//   {"cmd":"stats"}             → {"event":"stats","queued":0,"running":1,
//                                  "queueDepth":64,"highWater":48,
//                                  "degraded":false,"shed":0,...,"text":"..."}
//   {"cmd":"shutdown"}          → {"event":"bye"}, daemon drains and exits
//
// Overload behavior (DESIGN.md §11): submissions carry a priority class;
// the scheduler dispatches high > normal > batch with deterministic aging
// so no class starves. Above the high-water mark batch submissions are
// shed with a structured rejection and stats reports degraded=true —
// clients are expected to retry with backoff (tools/rficd_client.py does).
// A request line longer than 1 MiB is a protocol violation: the daemon
// replies with a structured error and drops the connection rather than
// buffering without bound.
//
// Closing a connection cancels the jobs it submitted (their events have
// nowhere to go); the daemon itself keeps running. Jobs from different
// connections share one Scheduler, hence one Engine context pool, one
// perf::ThreadPool, and one fft::PlanCache — repeat-topology submissions
// hit the warm caches whichever client sends them.
//
// Usage: rficd --socket <path> [--workers <n>] [--queue-depth <n>]
//              [--threads <n>] [--high-water <n>] [--aging <n>]
//              [--max-devices <n>] [--max-nodes <n>]
//              [--no-batch-eval] [--ordering <natural|amd>]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/mna_workspace.hpp"
#include "diag/thread_annotations.hpp"
#include "engine/json.hpp"
#include "engine/scheduler.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/ordering.hpp"

namespace {

using namespace rfic;

// Shut down by the signal handler (shutdown()/close() are async-signal-safe
// per POSIX.1-2008) to break the accept loop on SIGINT/SIGTERM; also closed
// by the shutdown command. Note close() alone does NOT wake a thread
// blocked in accept() on Linux — shutdown() does.
std::atomic<int> gListenFd{-1};
std::atomic<bool> gStop{false};

extern "C" void onSignal(int) {
  gStop.store(true);
  const int fd = gListenFd.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

/// Per-connection sink: serializes events (from any scheduler worker) and
/// command replies (from the connection thread) onto one socket, one JSON
/// line per write. Owns the fd; it closes only when the last reference —
/// scheduler workers still delivering Finished events included — drops.
class ConnectionSink : public engine::EventSink {
 public:
  explicit ConnectionSink(int fd) : fd_(fd) {
    // Slow-reader protection: a peer that stops draining its socket must
    // not wedge a scheduler worker inside send(). After the timeout the
    // send fails, the sink marks itself closed, and the job's remaining
    // events are dropped — the job itself runs to completion.
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  ~ConnectionSink() override { ::close(fd_); }

  void onEvent(const engine::Event& e) override {
    writeLine(render(e), true);
  }

  /// While held, scheduler events queue up instead of hitting the socket,
  /// so a command reply (e.g. "accepted") always precedes the job's event
  /// stream even though the worker may start the job immediately.
  void holdEvents() {
    diag::LockGuard lock(mu_);
    holding_ = true;
  }
  void releaseEvents() {
    std::vector<std::string> pending;
    {
      diag::LockGuard lock(mu_);
      holding_ = false;
      pending.swap(held_);
    }
    for (const auto& line : pending) writeLine(line);
  }

  void writeLine(const std::string& line) { writeLine(line, false); }

 private:
  void writeLine(const std::string& line, bool isEvent) {
    diag::LockGuard lock(mu_);
    if (closed_) return;
    if (isEvent && holding_) {
      held_.push_back(line);
      return;
    }
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::send(fd_, buf.data() + off, buf.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        closed_ = true;  // peer went away; drop the rest silently
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

 public:
  /// Stop writing and unblock any reader; the fd itself stays allocated
  /// until the destructor so in-flight writers never race a reused fd.
  void markClosed() {
    diag::LockGuard lock(mu_);
    closed_ = true;
    ::shutdown(fd_, SHUT_RDWR);
  }

  int fd() const { return fd_; }

 private:
  static std::string render(const engine::Event& e) {
    using engine::jsonString;
    char head[96];
    std::string s;
    switch (e.kind) {
      case engine::Event::Kind::Started:
        std::snprintf(head, sizeof head,
                      "{\"event\":\"started\",\"job\":%llu}",
                      static_cast<unsigned long long>(e.job));
        return head;
      case engine::Event::Kind::Stdout:
      case engine::Event::Kind::Stderr:
        std::snprintf(head, sizeof head, "{\"event\":\"%s\",\"job\":%llu,",
                      e.kind == engine::Event::Kind::Stdout ? "stdout"
                                                            : "stderr",
                      static_cast<unsigned long long>(e.job));
        s = head;
        s += "\"text\":" + jsonString(e.text) + "}";
        return s;
      case engine::Event::Kind::AnalysisDone:
        std::snprintf(head, sizeof head,
                      "{\"event\":\"analysis\",\"job\":%llu,",
                      static_cast<unsigned long long>(e.job));
        s = head;
        s += "\"card\":" + jsonString(e.analysis.card);
        s += ",\"ok\":";
        s += e.analysis.ok ? "true" : "false";
        s += ",\"status\":" + jsonString(diag::toString(e.analysis.status));
        s += ",\"summary\":" + jsonString(e.analysis.summary) + "}";
        return s;
      case engine::Event::Kind::Finished: {
        const auto& r = e.result;
        std::snprintf(head, sizeof head,
                      "{\"event\":\"finished\",\"job\":%llu,\"exit\":%d,",
                      static_cast<unsigned long long>(e.job), r.exitCode);
        s = head;
        s += "\"cancelled\":";
        s += r.cancelled ? "true" : "false";
        if (!r.error.empty()) s += ",\"error\":" + jsonString(r.error);
        char perf[320];
        std::snprintf(
            perf, sizeof perf,
            ",\"peakBytes\":%llu"
            ",\"ctxHits\":%llu,\"ctxMisses\":%llu,\"planCacheHits\":%llu,"
            "\"factorizations\":%llu,\"refactorizations\":%llu}",
            static_cast<unsigned long long>(r.peakBytes),
            static_cast<unsigned long long>(r.perf.ctxHits),
            static_cast<unsigned long long>(r.perf.ctxMisses),
            static_cast<unsigned long long>(r.perf.planCacheHits),
            static_cast<unsigned long long>(r.perf.factorizations),
            static_cast<unsigned long long>(r.perf.refactorizations));
        s += perf;
        return s;
      }
    }
    return "{\"event\":\"?\"}";
  }

  diag::Mutex mu_;
  const int fd_;
  bool closed_ RFIC_GUARDED_BY(mu_) = false;
  bool holding_ RFIC_GUARDED_BY(mu_) = false;
  std::vector<std::string> held_ RFIC_GUARDED_BY(mu_);
};

std::uint64_t toU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// NDJSON line cap: a request line that exceeds this without a newline is
/// a protocol violation (or an attack) — the daemon refuses to buffer it
/// and drops the connection after a structured error.
constexpr std::size_t kMaxRequestLine = 1u << 20;  // 1 MiB

void handleConnection(engine::Scheduler& sched,
                      std::shared_ptr<ConnectionSink> sink) {
  std::vector<engine::JobId> myJobs;
  std::string buf;
  char tmp[4096];
  bool bye = false;
  while (!bye) {
    const ssize_t n = ::recv(sink->fd(), tmp, sizeof tmp, 0);
    if (n <= 0) break;
    buf.append(tmp, static_cast<std::size_t>(n));
    if (buf.find('\n') == std::string::npos &&
        buf.size() > kMaxRequestLine) {
      char out[128];
      std::snprintf(out, sizeof out,
                    "{\"event\":\"error\",\"error\":\"request line exceeds "
                    "%zu bytes; closing connection\"}",
                    kMaxRequestLine);
      sink->writeLine(out);
      break;
    }
    std::size_t pos;
    while (!bye && (pos = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty()) continue;
      std::map<std::string, std::string> req;
      std::string err;
      if (!engine::parseFlatJson(line, req, &err)) {
        sink->writeLine("{\"event\":\"error\",\"error\":" +
                        engine::jsonString("bad request: " + err) + "}");
        continue;
      }
      const std::string cmd = req.count("cmd") ? req["cmd"] : "";
      if (cmd == "submit") {
        engine::JobSpec spec;
        spec.netlist = req["netlist"];
        spec.label = req.count("label") ? req["label"] : "";
        if (req.count("timeout"))
          spec.timeoutSeconds = std::atof(req["timeout"].c_str());
        if (req.count("newton")) spec.newtonLimit = toU64(req["newton"]);
        if (req.count("krylov")) spec.krylovLimit = toU64(req["krylov"]);
        if (req.count("threads"))
          spec.threadShare = static_cast<std::size_t>(toU64(req["threads"]));
        if (req.count("maxbytes")) spec.maxBytes = toU64(req["maxbytes"]);
        if (req.count("priority") &&
            !engine::parsePriority(req["priority"], spec.priority)) {
          sink->writeLine(
              "{\"event\":\"rejected\",\"reason\":\"spec-invalid\","
              "\"detail\":" +
              engine::jsonString("unknown priority: " + req["priority"]) +
              ",\"degraded\":false}");
          continue;
        }
        if (req.count("ordering")) {
          sparse::Ordering ord;
          if (!sparse::parseOrdering(req["ordering"], ord)) {
            sink->writeLine(
                "{\"event\":\"rejected\",\"reason\":\"spec-invalid\","
                "\"detail\":" +
                engine::jsonString("unknown ordering: " + req["ordering"]) +
                ",\"degraded\":false}");
            continue;
          }
          spec.ordering = req["ordering"];
        }
        // Empty/malformed netlists are refused by the scheduler's
        // pre-flight check and arrive below as a SpecInvalid rejection.
        // Hold job events until the accepted line is on the wire: a worker
        // may pick the job up (and emit Started) before submit() returns.
        sink->holdEvents();
        engine::Rejection rej;
        const engine::JobId id = sched.submit(std::move(spec), sink, &rej);
        if (id == 0) {
          const bool degraded = sched.stats().degraded;
          sink->writeLine(
              std::string("{\"event\":\"rejected\",\"reason\":\"") +
              engine::toString(rej.reason) +
              "\",\"detail\":" + engine::jsonString(rej.detail) +
              ",\"degraded\":" + (degraded ? "true" : "false") + "}");
          sink->releaseEvents();
          continue;
        }
        myJobs.push_back(id);
        char out[64];
        std::snprintf(out, sizeof out, "{\"event\":\"accepted\",\"job\":%llu}",
                      static_cast<unsigned long long>(id));
        sink->writeLine(out);
        sink->releaseEvents();
      } else if (cmd == "status") {
        const auto jobs = sched.list();
        for (const auto& j : jobs) {
          char out[128];
          std::snprintf(out, sizeof out,
                        "{\"event\":\"job\",\"job\":%llu,\"state\":\"%s\","
                        "\"exit\":%d,",
                        static_cast<unsigned long long>(j.id),
                        engine::toString(j.state), j.exitCode);
          sink->writeLine(std::string(out) +
                          "\"label\":" + engine::jsonString(j.label) + "}");
        }
        char out[64];
        std::snprintf(out, sizeof out,
                      "{\"event\":\"status-end\",\"jobs\":%zu}", jobs.size());
        sink->writeLine(out);
      } else if (cmd == "cancel") {
        const engine::JobId id = toU64(req["job"]);
        const bool ok = sched.cancel(id);
        char out[80];
        std::snprintf(out, sizeof out,
                      "{\"event\":\"cancel\",\"job\":%llu,\"ok\":%s}",
                      static_cast<unsigned long long>(id),
                      ok ? "true" : "false");
        sink->writeLine(out);
      } else if (cmd == "result") {
        const engine::JobId id = toU64(req["job"]);
        try {
          const engine::JobResult r = sched.wait(id);
          char out[160];
          std::snprintf(out, sizeof out,
                        "{\"event\":\"result\",\"job\":%llu,\"exit\":%d,"
                        "\"cancelled\":%s,\"analyses\":%zu}",
                        static_cast<unsigned long long>(id), r.exitCode,
                        r.cancelled ? "true" : "false", r.analyses.size());
          sink->writeLine(out);
        } catch (const std::exception& ex) {
          sink->writeLine("{\"event\":\"error\",\"error\":" +
                          engine::jsonString(ex.what()) + "}");
        }
      } else if (cmd == "stats") {
        const engine::SchedulerStats st = sched.stats();
        const perf::Snapshot snap = perf::process().snapshot();
        char head[512];
        std::snprintf(
            head, sizeof head,
            "{\"event\":\"stats\",\"queued\":%zu,\"running\":%zu,"
            "\"queueDepth\":%zu,\"highWater\":%zu,\"degraded\":%s,"
            "\"maxQueueAge\":%.3f,\"submitted\":%llu,\"admitted\":%llu,"
            "\"finished\":%llu,\"shed\":%llu,\"rejectedFull\":%llu,"
            "\"rejectedInvalid\":%llu,\"promoted\":%llu,"
            "\"memPeakBytes\":%llu,",
            st.queued, st.running, st.queueDepth, st.highWater,
            st.degraded ? "true" : "false",
            static_cast<double>(st.maxQueueAgeSeconds),
            static_cast<unsigned long long>(st.submitted),
            static_cast<unsigned long long>(st.admitted),
            static_cast<unsigned long long>(st.finished),
            static_cast<unsigned long long>(st.shed),
            static_cast<unsigned long long>(st.rejectedFull),
            static_cast<unsigned long long>(st.rejectedInvalid),
            static_cast<unsigned long long>(st.promoted),
            static_cast<unsigned long long>(snap.memPeakBytes));
        sink->writeLine(std::string(head) +
                        "\"text\":" + engine::jsonString(perf::format(snap)) +
                        "}");
      } else if (cmd == "shutdown") {
        sink->writeLine("{\"event\":\"bye\"}");
        gStop.store(true);
        const int fd = gListenFd.exchange(-1);
        if (fd >= 0) {
          ::shutdown(fd, SHUT_RDWR);  // wakes the thread blocked in accept
          ::close(fd);
        }
        bye = true;
      } else {
        sink->writeLine("{\"event\":\"error\",\"error\":" +
                        engine::jsonString("unknown cmd: " + cmd) + "}");
      }
    }
  }
  // Connection gone: its event stream has no reader, so cancel whatever it
  // submitted that is still queued or running. Finished jobs are untouched.
  for (const engine::JobId id : myJobs) sched.cancel(id);
  sink->markClosed();
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  engine::Scheduler::Options sopts;
  sopts.workers = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (flag == "--socket") {
      socketPath = value();
    } else if (flag == "--workers") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--workers: positive count required\n");
        return 1;
      }
      sopts.workers = static_cast<std::size_t>(n);
    } else if (flag == "--queue-depth") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--queue-depth: positive count required\n");
        return 1;
      }
      sopts.queueDepth = static_cast<std::size_t>(n);
    } else if (flag == "--threads") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--threads: positive count required\n");
        return 1;
      }
      perf::ThreadPool::setGlobalThreads(static_cast<std::size_t>(n));
    } else if (flag == "--high-water") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--high-water: positive count required\n");
        return 1;
      }
      sopts.highWater = static_cast<std::size_t>(n);
    } else if (flag == "--aging") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--aging: positive pop count required\n");
        return 1;
      }
      sopts.agingThreshold = static_cast<std::size_t>(n);
    } else if (flag == "--max-devices") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--max-devices: positive count required\n");
        return 1;
      }
      sopts.preflight.maxDevices = static_cast<std::size_t>(n);
    } else if (flag == "--max-nodes") {
      const long n = std::atol(value().c_str());
      if (n < 1) {
        std::fprintf(stderr, "--max-nodes: positive count required\n");
        return 1;
      }
      sopts.preflight.maxNodes = static_cast<std::size_t>(n);
    } else if (flag == "--no-batch-eval") {
      // Pin the scalar reference device walk (bitwise identical; debug aid).
      circuit::MnaWorkspace::setBatchedEvalDefault(false);
    } else if (flag == "--ordering") {
      // Process-default pivot pre-ordering; jobs can override per submit.
      const std::string v = value();
      sparse::Ordering ord;
      if (!sparse::parseOrdering(v, ord)) {
        std::fprintf(stderr, "--ordering: expected natural|amd, got '%s'\n",
                     v.c_str());
        return 1;
      }
      sparse::setOrderingDefault(ord);
    } else {
      std::fprintf(stderr,
                   "usage: rficd --socket <path> [--workers <n>] "
                   "[--queue-depth <n>] [--threads <n>] [--high-water <n>] "
                   "[--aging <n>] [--max-devices <n>] [--max-nodes <n>] "
                   "[--no-batch-eval] [--ordering <natural|amd>]\n");
      return 1;
    }
  }
  if (socketPath.empty()) {
    std::fprintf(stderr, "rficd: --socket <path> is required\n");
    return 1;
  }
  sockaddr_un addr{};
  if (socketPath.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "rficd: socket path too long (%zu bytes, max %zu)\n",
                 socketPath.size(), sizeof addr.sun_path - 1);
    return 1;
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::perror("rficd: socket");
    return 1;
  }
  ::unlink(socketPath.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    std::perror("rficd: bind");
    return 1;
  }
  if (::listen(listenFd, 16) != 0) {
    std::perror("rficd: listen");
    return 1;
  }
  gListenFd.store(listenFd);
  std::fprintf(stderr, "rficd: listening on %s (%zu workers, queue %zu)\n",
               socketPath.c_str(), sopts.workers, sopts.queueDepth);

  engine::Scheduler sched(sopts);
  std::vector<std::thread> connThreads;  // lint: allow-detached-thread (joined)
  std::vector<std::weak_ptr<ConnectionSink>> conns;
  while (!gStop.load()) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by signal/shutdown, or error
    auto sink = std::make_shared<ConnectionSink>(fd);
    conns.push_back(sink);
    // lint: allow-detached-thread — joined below before exit.
    connThreads.emplace_back(
        [&sched, sink]() mutable { handleConnection(sched, std::move(sink)); });
  }
  // Listener is gone. Unblock every connection still reading, join them,
  // then drain the scheduler (shutdown cancels queued + running jobs).
  for (auto& w : conns)
    if (auto s = w.lock()) s->markClosed();
  for (auto& t : connThreads) t.join();
  sched.shutdown();
  const int fd = gListenFd.exchange(-1);
  if (fd >= 0) ::close(fd);
  ::unlink(socketPath.c_str());
  std::fprintf(stderr, "rficd: shut down cleanly\n");
  return 0;
}
