// rficsim — netlist-driven command-line front end.
//
// Reads a SPICE-style netlist (see circuit/netlist.hpp for the element
// cards) extended with analysis control cards:
//
//   .op                          DC operating point
//   .tran <dt> <tstop>           transient; prints .print nodes
//   .ac dec <pts> <f0> <f1>      AC sweep driven by the first V source
//   .noise <node> dec <pts> <f0> <f1>   output-referred noise PSD
//   .hb <f1> <h1> [<f2> <h2>]    harmonic balance, 1 or 2 tones
//   .print <node> [<node>...]    selects output nodes (default: all)
//
// Usage: rficsim [--fe-trap] [--stats] [--threads <n>] [--timeout <sec>]
//                [--max-bytes <n>] [--checkpoint <file>] [--resume]
//                [--inject-fault <spec>]
//                <netlist-file>   (or stdin with "-")
// --fe-trap arms floating-point exception trapping (SIGFPE at the first
// invalid operation) for debugging NaN propagation.
// --stats prints the pipeline performance counters (device evaluations,
// symbolic factorizations vs. numeric refactorizations, solves, retries/
// fallbacks, FFTs and plan-cache hits, and time per stage) to stderr after
// all analyses finish.
// --threads pins the worker-pool size for the parallel HB/FFT paths
// (equivalent to RFIC_THREADS=<n>; 1 disables worker threads entirely).
// --timeout arms a wall-clock RunBudget threaded through every analysis;
// on expiry the run stops with partial results and exit code 4.
// --max-bytes arms the workspace byte budget (diag::MemAccount); a run
// whose grow-once workspaces charge past it stops cooperatively with
// partial results and exit code 6.
// --checkpoint and --resume serialize and restore transient integrator state
// (see diag/resilience.hpp); --inject-fault arms a fault point
// ("name" or "name:count", same spec as RFIC_INJECT_FAULT).
// --no-batch-eval pins the scalar virtual-stamp device walk (the golden
// reference path) instead of the batched SoA evaluation engine; outputs
// are bitwise identical either way, so this is a verification/debug aid.
// --ordering selects the sparse-LU pivot pre-ordering: "natural" (the
// default) pins today's full Markowitz search, "amd" enables the
// fill-reducing approximate-minimum-degree pre-order plus level-parallel
// refactorization for large circuits (DESIGN.md §13).
//
// Since the engine refactor this file is a thin client: it parses flags
// into an engine::JobSpec, runs it through engine::Engine, and replays the
// Stdout/Stderr events onto stdio. All analysis dispatch, rendering, and
// resilience plumbing lives in src/engine/ — shared with the rficd daemon.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "circuit/mna_workspace.hpp"
#include "diag/fe_trap.hpp"
#include "diag/resilience.hpp"
#include "engine/engine.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/ordering.hpp"

namespace {

using namespace rfic;

/// Replays the engine's event stream onto stdout/stderr — the bytes are
/// already rendered, so this is write-through.
class StdioSink : public engine::EventSink {
 public:
  void onEvent(const engine::Event& e) override {
    switch (e.kind) {
      case engine::Event::Kind::Stdout:
        std::fwrite(e.text.data(), 1, e.text.size(), stdout);
        break;
      case engine::Event::Kind::Stderr:
        std::fwrite(e.text.data(), 1, e.text.size(), stderr);
        break;
      default:
        break;  // structured events are for queue clients
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --fe-trap: crash (SIGFPE) at the first invalid FP operation instead of
  // letting a NaN propagate through a solve — the debugging mode of the
  // numerics-contract layer.
  std::unique_ptr<diag::ScopedFeTrap> feTrap;
  bool stats = false;
  engine::JobSpec spec;
  // Flags taking a value consume argv[2] as well.
  const auto takeValue = [&argc, &argv](const std::string& flag) {
    if (argc < 3) {
      std::fprintf(stderr, "%s requires a value\n", flag.c_str());
      std::exit(1);
    }
    const std::string v = argv[2];
    --argc;
    ++argv;
    return v;
  };
  while (argc >= 2 && argv[1][0] == '-' && argv[1][1] == '-') {
    const std::string flag = argv[1];
    if (flag == "--fe-trap") {
      feTrap = std::make_unique<diag::ScopedFeTrap>();
    } else if (flag == "--stats") {
      stats = true;
    } else if (flag == "--threads") {
      const long n = std::atol(takeValue(flag).c_str());
      if (n < 1) {
        std::fprintf(stderr, "--threads: positive count required\n");
        return 1;
      }
      perf::ThreadPool::setGlobalThreads(static_cast<std::size_t>(n));
    } else if (flag == "--timeout") {
      const double sec = std::atof(takeValue(flag).c_str());
      if (!(sec > 0)) {
        std::fprintf(stderr, "--timeout: positive seconds required\n");
        return 1;
      }
      spec.timeoutSeconds = sec;
    } else if (flag == "--max-bytes") {
      const long long n = std::atoll(takeValue(flag).c_str());
      if (n < 1) {
        std::fprintf(stderr, "--max-bytes: positive byte count required\n");
        return 1;
      }
      spec.maxBytes = static_cast<std::uint64_t>(n);
    } else if (flag == "--checkpoint") {
      spec.checkpointPath = takeValue(flag);
    } else if (flag == "--resume") {
      spec.resume = true;
    } else if (flag == "--no-batch-eval") {
      circuit::MnaWorkspace::setBatchedEvalDefault(false);
    } else if (flag == "--ordering") {
      const std::string v = takeValue(flag);
      sparse::Ordering ord;
      if (!sparse::parseOrdering(v, ord)) {
        std::fprintf(stderr, "--ordering: expected natural|amd, got '%s'\n",
                     v.c_str());
        return 1;
      }
      sparse::setOrderingDefault(ord);
    } else if (flag == "--inject-fault") {
      try {
        diag::FaultInjector::global().arm(takeValue(flag));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--inject-fault: %s\n", e.what());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
    --argc;
    ++argv;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: rficsim [--fe-trap] [--stats] [--threads <n>] "
                 "[--timeout <sec>] [--max-bytes <n>] "
                 "[--checkpoint <file>] [--resume] [--inject-fault <spec>] "
                 "[--no-batch-eval] [--ordering <natural|amd>] "
                 "<netlist-file | ->\n");
    return 1;
  }
  if (spec.resume && spec.checkpointPath.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint <file>\n");
    return 1;
  }
  if (std::string(argv[1]) == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    spec.netlist = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    spec.netlist = buf.str();
  }
  // Engine::run never throws: parse and solver failures arrive as Stderr
  // events with the same text and exit codes the monolithic CLI produced.
  engine::Engine eng;
  StdioSink sink;
  const engine::JobResult res = eng.run(spec, sink);
  if (stats) {
    const std::string report = perf::format(perf::global().snapshot());
    std::fprintf(stderr, "%s", report.c_str());
  }
  return res.exitCode;
}
