// rficsim — netlist-driven command-line front end.
//
// Reads a SPICE-style netlist (see circuit/netlist.hpp for the element
// cards) extended with analysis control cards:
//
//   .op                          DC operating point
//   .tran <dt> <tstop>           transient; prints .print nodes
//   .ac dec <pts> <f0> <f1>      AC sweep driven by the first V source
//   .noise <node> dec <pts> <f0> <f1>   output-referred noise PSD
//   .hb <f1> <h1> [<f2> <h2>]    harmonic balance, 1 or 2 tones
//   .print <node> [<node>...]    selects output nodes (default: all)
//
// Usage: rficsim [--fe-trap] [--stats] [--threads <n>] [--timeout <sec>]
//                [--checkpoint <file>] [--resume] [--inject-fault <spec>]
//                <netlist-file>   (or stdin with "-")
// --fe-trap arms floating-point exception trapping (SIGFPE at the first
// invalid operation) for debugging NaN propagation.
// --stats prints the pipeline performance counters (device evaluations,
// symbolic factorizations vs. numeric refactorizations, solves, retries/
// fallbacks, FFTs and plan-cache hits, and time per stage) to stderr after
// all analyses finish.
// --threads pins the worker-pool size for the parallel HB/FFT paths
// (equivalent to RFIC_THREADS=<n>; 1 disables worker threads entirely).
// --timeout arms a wall-clock RunBudget threaded through every analysis;
// on expiry the run stops with partial results and exit code 4.
// --checkpoint and --resume serialize and restore transient integrator state
// (see diag/resilience.hpp); --inject-fault arms a fault point
// ("name" or "name:count", same spec as RFIC_INJECT_FAULT).
#include <cmath>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ac.hpp"
#include "analysis/dc.hpp"
#include "analysis/noise.hpp"
#include "analysis/transient.hpp"
#include "circuit/netlist.hpp"
#include "circuit/sources.hpp"
#include "diag/fe_trap.hpp"
#include "diag/resilience.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace {

using namespace rfic;

std::vector<std::string> splitTokens(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> toks;
  std::string t;
  while (in >> t) toks.push_back(t);
  return toks;
}

struct Job {
  std::vector<std::string> tokens;
};

// Resilience settings shared by every analysis card in the run.
struct CliResilience {
  diag::RunBudget* budget = nullptr;  ///< non-null with --timeout
  std::string checkpointPath;         ///< --checkpoint
  bool resume = false;                ///< --resume
};

int runFile(const std::string& text, const CliResilience& rz) {
  circuit::Circuit ckt;
  circuit::parseNetlist(text, ckt);
  analysis::MnaSystem sys(ckt);

  // Collect analysis and print cards (parseNetlist ignores them).
  std::vector<Job> jobs;
  std::vector<std::string> printNodes;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] != '.') continue;
      auto toks = splitTokens(line);
      if (toks.empty()) continue;
      std::string head = toks[0];
      for (auto& ch : head) ch = static_cast<char>(std::tolower(ch));
      if (head == ".model" || head == ".end") continue;
      if (head == ".print") {
        printNodes.assign(toks.begin() + 1, toks.end());
        continue;
      }
      toks[0] = head;
      jobs.push_back({std::move(toks)});
    }
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "no analysis cards (.op/.tran/.ac/.noise/.hb)\n");
    return 2;
  }

  // Output selection.
  std::vector<std::pair<std::string, std::size_t>> outs;
  if (printNodes.empty()) {
    for (std::size_t i = 0; i < sys.dim(); ++i)
      outs.emplace_back(ckt.unknownName(i), i);
  } else {
    for (const auto& name : printNodes)
      outs.emplace_back("V(" + name + ")",
                        static_cast<std::size_t>(ckt.findNode(name)));
  }

  analysis::DCOptions dco;
  dco.budget = rz.budget;
  const auto dc = analysis::dcOperatingPoint(sys, dco);
  if (dc.status == diag::SolverStatus::BudgetExceeded) {
    std::fprintf(stderr, "budget exceeded during .op (%s)\n",
                 rz.budget ? rz.budget->reason() : "");
    return 4;
  }

  for (const auto& job : jobs) {
    const auto& t = job.tokens;
    if (t[0] == ".op") {
      std::printf("* .op (%s, %zu iterations)\n", dc.strategy.c_str(),
                  dc.iterations);
      for (const auto& [name, idx] : outs)
        std::printf("%-14s %16.9e\n", name.c_str(), dc.x[idx]);
    } else if (t[0] == ".tran" && t.size() >= 3) {
      analysis::TransientOptions to;
      to.dt = circuit::parseSpiceNumber(t[1]);
      to.tstop = circuit::parseSpiceNumber(t[2]);
      to.budget = rz.budget;
      to.checkpointPath = rz.checkpointPath;
      if (!rz.checkpointPath.empty()) to.checkpointInterval = 30.0;
      to.resume = rz.resume;
      const auto tr = analysis::runTransient(sys, dc.x, to);
      std::printf("* .tran dt=%g tstop=%g ok=%d status=%s steps=%zu "
                  "retries=%zu\n",
                  to.dt, to.tstop, tr.ok ? 1 : 0, diag::toString(tr.status),
                  tr.steps, tr.retries);
      std::printf("%-16s", "time");
      for (const auto& [name, idx] : outs) std::printf(" %-14s", name.c_str());
      std::printf("\n");
      const std::size_t stride = std::max<std::size_t>(1, tr.time.size() / 50);
      for (std::size_t k = 0; k < tr.time.size(); k += stride) {
        std::printf("%-16.8e", tr.time[k]);
        for (const auto& [name, idx] : outs)
          std::printf(" %-14.6e", tr.x[k][idx]);
        std::printf("\n");
      }
      if (tr.status == diag::SolverStatus::BudgetExceeded) {
        std::fprintf(stderr, "budget exceeded during .tran (%s)%s\n",
                     rz.budget ? rz.budget->reason() : "",
                     rz.checkpointPath.empty() ? ""
                                               : "; checkpoint saved");
        return 4;
      }
    } else if (t[0] == ".ac" && t.size() >= 5) {
      const auto pts = static_cast<std::size_t>(
          circuit::parseSpiceNumber(t[2]));
      const Real f0 = circuit::parseSpiceNumber(t[3]);
      const Real f1 = circuit::parseSpiceNumber(t[4]);
      const Real decades = std::log10(f1 / f0);
      const auto freqs = analysis::logspace(
          f0, f1,
          std::max<std::size_t>(2, static_cast<std::size_t>(
                                       std::lround(pts * decades)) + 1));
      // Drive through the first voltage source in the netlist.
      const circuit::VSource* src = nullptr;
      for (const auto& dev : ckt.devices())
        if ((src = dynamic_cast<const circuit::VSource*>(dev.get()))) break;
      if (!src) {
        std::fprintf(stderr, ".ac: no voltage source to drive\n");
        return 2;
      }
      const auto sweep = analysis::acSweep(sys, dc.x, freqs,
                                           analysis::acStimulusVSource(sys, *src));
      std::printf("* .ac %zu points (driving %s)\n", freqs.size(),
                  src->name().c_str());
      std::printf("%-16s", "freq");
      for (const auto& [name, idx] : outs)
        std::printf(" %-14s %-10s", ("|" + name + "|").c_str(), "phase");
      std::printf("\n");
      for (std::size_t k = 0; k < freqs.size(); ++k) {
        std::printf("%-16.8e", freqs[k]);
        for (const auto& [name, idx] : outs) {
          const Complex v = sweep.x[k][idx];
          std::printf(" %-14.6e %-10.3f", std::abs(v),
                      std::arg(v) * 180.0 / kPi);
        }
        std::printf("\n");
      }
    } else if (t[0] == ".noise" && t.size() >= 6) {
      const int node = ckt.findNode(t[1]);
      const auto pts = static_cast<std::size_t>(
          circuit::parseSpiceNumber(t[3]));
      const Real f0 = circuit::parseSpiceNumber(t[4]);
      const Real f1 = circuit::parseSpiceNumber(t[5]);
      const Real decades = std::log10(f1 / f0);
      const auto freqs = analysis::logspace(
          f0, f1,
          std::max<std::size_t>(2, static_cast<std::size_t>(
                                       std::lround(pts * decades)) + 1));
      const auto nr = analysis::noiseAnalysis(sys, dc.x, node, freqs);
      std::printf("* .noise at V(%s)\n", t[1].c_str());
      std::printf("%-16s %-14s\n", "freq", "PSD (V^2/Hz)");
      for (std::size_t k = 0; k < freqs.size(); ++k)
        std::printf("%-16.8e %-14.6e\n", nr.freq[k], nr.totalPsd[k]);
    } else if (t[0] == ".hb" && t.size() >= 3) {
      std::vector<hb::Tone> tones;
      tones.push_back({circuit::parseSpiceNumber(t[1]),
                       static_cast<std::size_t>(
                           circuit::parseSpiceNumber(t[2]))});
      if (t.size() >= 5)
        tones.push_back({circuit::parseSpiceNumber(t[3]),
                         static_cast<std::size_t>(
                             circuit::parseSpiceNumber(t[4]))});
      hb::HBOptions ho;
      ho.continuationSteps = 3;
      ho.budget = rz.budget;
      hb::HarmonicBalance eng(sys, tones, ho);
      const auto sol = eng.solve(dc.x);
      std::printf("* .hb converged=%d status=%s strategy=%s unknowns=%zu "
                  "newton=%zu gmres=%zu retries=%zu\n",
                  sol.converged ? 1 : 0, diag::toString(sol.status),
                  sol.strategy.c_str(), sol.realUnknowns,
                  sol.newtonIterations, sol.gmresIterations, sol.retries);
      if (sol.status == diag::SolverStatus::BudgetExceeded) {
        std::fprintf(stderr, "budget exceeded during .hb (%s)\n",
                     rz.budget ? rz.budget->reason() : "");
        return 4;
      }
      if (!sol.converged) return 3;
      for (const auto& [name, idx] : outs) {
        std::printf("spectrum of %s:\n", name.c_str());
        std::printf("  %-14s %-6s %-6s %-14s %-8s\n", "freq", "k1", "k2",
                    "amp (V)", "dBc");
        for (const auto& l : hb::spectrumOf(sol, idx)) {
          if (l.amplitude < 1e-15) continue;
          std::printf("  %-14.6e %-6d %-6d %-14.6e %-8.1f\n", l.freq, l.k1,
                      l.k2, l.amplitude, l.dbc);
        }
      }
    } else {
      std::fprintf(stderr, "unrecognized analysis card: %s\n",
                   t[0].c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --fe-trap: crash (SIGFPE) at the first invalid FP operation instead of
  // letting a NaN propagate through a solve — the debugging mode of the
  // numerics-contract layer.
  std::unique_ptr<diag::ScopedFeTrap> feTrap;
  bool stats = false;
  diag::RunBudget budget;
  CliResilience rz;
  // Flags taking a value consume argv[2] as well.
  const auto takeValue = [&argc, &argv](const std::string& flag) {
    if (argc < 3) {
      std::fprintf(stderr, "%s requires a value\n", flag.c_str());
      std::exit(1);
    }
    const std::string v = argv[2];
    --argc;
    ++argv;
    return v;
  };
  while (argc >= 2 && argv[1][0] == '-' && argv[1][1] == '-') {
    const std::string flag = argv[1];
    if (flag == "--fe-trap") {
      feTrap = std::make_unique<diag::ScopedFeTrap>();
    } else if (flag == "--stats") {
      stats = true;
    } else if (flag == "--threads") {
      const long n = std::atol(takeValue(flag).c_str());
      if (n < 1) {
        std::fprintf(stderr, "--threads: positive count required\n");
        return 1;
      }
      perf::ThreadPool::setGlobalThreads(static_cast<std::size_t>(n));
    } else if (flag == "--timeout") {
      const double sec = std::atof(takeValue(flag).c_str());
      if (!(sec > 0)) {
        std::fprintf(stderr, "--timeout: positive seconds required\n");
        return 1;
      }
      budget.setWallLimit(sec);
      rz.budget = &budget;
    } else if (flag == "--checkpoint") {
      rz.checkpointPath = takeValue(flag);
    } else if (flag == "--resume") {
      rz.resume = true;
    } else if (flag == "--inject-fault") {
      try {
        diag::FaultInjector::global().arm(takeValue(flag));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--inject-fault: %s\n", e.what());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
    --argc;
    ++argv;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: rficsim [--fe-trap] [--stats] [--threads <n>] "
                 "[--timeout <sec>] "
                 "[--checkpoint <file>] [--resume] [--inject-fault <spec>] "
                 "<netlist-file | ->\n");
    return 1;
  }
  if (rz.resume && rz.checkpointPath.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint <file>\n");
    return 1;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  try {
    const int rc = runFile(text, rz);
    if (stats) {
      const std::string report = perf::format(perf::global().snapshot());
      std::fprintf(stderr, "%s", report.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
