// Planned FFTs: precompute once, replay with zero allocation.
//
// The matrix-implicit HB/MPDE inner path (Section 2.1) spends its life
// moving waveforms between time and frequency; what makes that path run at
// hardware speed is never recomputing what the transform length alone
// determines. A Plan owns everything a length-n DFT needs — the bit-
// reversal permutation and per-stage twiddle tables for the radix-2 path,
// and for arbitrary lengths the Bluestein chirp together with its forward-
// transformed convolution kernel — so executing a transform is pure data
// movement and butterflies. Plans are immutable after construction and
// shared through a process-wide, thread-safe PlanCache (the same
// "precompute once, replay cheaply" discipline the sparse layer applies
// with SymbolicLU).
//
// Execution never allocates: the radix-2 path is in-place, and the
// Bluestein path writes through caller scratch (scratchSize() complex
// slots). transformColumns()/transformGrid2D() are the batched entry
// points the hot loops use — they run columns on the process ThreadPool
// above a grain threshold, reuse per-thread scratch, and feed the
// fftCount/fftNs/planCache perf counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "diag/thread_annotations.hpp"

namespace rfic::perf {
class Counters;
}  // namespace rfic::perf

namespace rfic::fft {

/// Immutable execution plan for length-n DFTs (forward and inverse).
class Plan {
 public:
  explicit Plan(std::size_t n);

  std::size_t size() const { return n_; }
  /// True when n is not a power of two and execution runs the Bluestein
  /// chirp-z convolution.
  bool usesBluestein() const { return sub_ != nullptr; }
  /// Complex scratch slots execute() needs (0 for the in-place radix-2
  /// path; the Bluestein convolution length otherwise).
  std::size_t scratchSize() const { return sub_ ? sub_->n_ : 0; }

  /// In-place forward DFT of x[0..n). `scratch` must point at
  /// scratchSize() slots (may be null when that is 0). No allocation.
  RFIC_REALTIME void forward(Complex* x, Complex* scratch) const {
    execute(x, scratch, false);
  }
  /// In-place inverse DFT with the 1/n normalization.
  RFIC_REALTIME void inverse(Complex* x, Complex* scratch) const {
    execute(x, scratch, true);
  }

 private:
  RFIC_REALTIME void execute(Complex* x, Complex* scratch, bool inverse) const;
  RFIC_REALTIME void executePow2(Complex* x, bool inverse) const;
  RFIC_REALTIME void executeBluestein(Complex* x, Complex* scratch,
                                      bool inverse) const;

  std::size_t n_ = 0;
  // Radix-2 machinery (n_ a power of two; also the engine under the
  // Bluestein convolution of a parent plan).
  std::vector<std::uint32_t> bitrev_;
  // Per-stage twiddles packed consecutively: stage `len` (2, 4, …, n) owns
  // the len/2 factors exp(∓2πi·k/len) at offset len/2 − 1.
  std::vector<Complex> twFwd_, twInv_;
  // Bluestein machinery (n_ arbitrary): chirp w[k] = exp(-iπk²/n) and the
  // forward transforms of the padded conjugate/plain chirp — the
  // convolution kernels of the forward/inverse transform respectively.
  std::unique_ptr<const Plan> sub_;  ///< radix-2 plan of the padded length
  std::vector<Complex> chirp_;
  std::vector<Complex> kernelFwd_, kernelInv_;
};

/// Process-wide, thread-safe plan cache keyed by transform length. Plans
/// are built on first use and shared (they are immutable); hit/miss
/// counters flow into perf::global() and the --stats / bench JSON outputs.
class PlanCache {
 public:
  static PlanCache& global();

  /// The plan for length n, building and caching it on first request.
  std::shared_ptr<const Plan> get(std::size_t n) RFIC_EXCLUDES(mu_);

  std::uint64_t hits() const RFIC_EXCLUDES(mu_);
  std::uint64_t misses() const RFIC_EXCLUDES(mu_);
  /// Drop every cached plan (tests; outstanding shared_ptrs stay valid).
  void clear() RFIC_EXCLUDES(mu_);

 private:
  mutable diag::Mutex mu_;
  std::unordered_map<std::size_t, std::shared_ptr<const Plan>> plans_
      RFIC_GUARDED_BY(mu_);
  std::uint64_t hits_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ RFIC_GUARDED_BY(mu_) = 0;
};

/// Transform `count` signals, each contiguous of length plan.size(), laid
/// out back to back at `data` (the columns of a column-major matrix).
/// Runs on perf::ThreadPool::global() when the batch is large enough to
/// amortize dispatch, reuses per-thread scratch, and performs no steady-
/// state allocation. Inverse transforms include the 1/n normalization.
/// Counters (fftCount, fftNs) are bumped on perf::global() and, when
/// given, on `extra` — analyses pass their local pipeline counters so the
/// spectral cost lands in their result snapshots.
RFIC_REALTIME void transformColumns(const Plan& plan, Complex* data,
                                    std::size_t count, bool inverse,
                                    perf::Counters* extra = nullptr);

/// 2-D in-place DFT of a rows×cols row-major grid: `rowPlan` must have
/// length cols, `colPlan` length rows. Rows transform contiguously;
/// columns gather/scatter through per-thread scratch. Length-1 axes are
/// skipped. Same counter and normalization conventions as
/// transformColumns.
RFIC_REALTIME void transformGrid2D(const Plan& rowPlan, const Plan& colPlan,
                                   Complex* x, std::size_t rows,
                                   std::size_t cols, bool inverse,
                                   perf::Counters* extra = nullptr);

}  // namespace rfic::fft
