#include "fft/fft.hpp"

#include <cmath>

#include "diag/contracts.hpp"

namespace rfic::fft {

namespace {

// Iterative radix-2 Cooley-Tukey; x.size() must be a power of two.
void fftPow2(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Real ang = (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<Real>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z transform: arbitrary-length DFT via a power-of-two
// convolution.
void fftBluestein(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  const Real sign = inverse ? 1.0 : -1.0;
  // Chirp: w[k] = exp(sign * i*pi*k^2/n). k^2 mod 2n avoids precision loss
  // for large k.
  std::vector<Complex> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const Real ang = sign * kPi * static_cast<Real>(k2) / static_cast<Real>(n);
    w[k] = Complex(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = nextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m), b(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * w[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(w[k]);
    if (k != 0) b[m - k] = std::conj(w[k]);
  }
  fftPow2(a, false);
  fftPow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fftPow2(a, true);
  const Real invm = 1.0 / static_cast<Real>(m);
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * w[k] * invm;
}

void transform(std::vector<Complex>& x, bool inverse) {
  if (x.size() <= 1) return;
  if (isPowerOfTwo(x.size())) {
    fftPow2(x, inverse);
  } else {
    fftBluestein(x, inverse);
  }
  if (inverse) {
    const Real inv = 1.0 / static_cast<Real>(x.size());
    for (auto& v : x) v *= inv;
  }
}

}  // namespace

bool isPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t nextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& x) {
  RFIC_CHECK_FINITE(x, "fft: input");
  transform(x, false);
}
void ifft(std::vector<Complex>& x) {
  RFIC_CHECK_FINITE(x, "ifft: input");
  transform(x, true);
}

std::vector<Complex> rfft(const std::vector<Real>& x) {
  RFIC_REQUIRE(!x.empty(), "rfft: empty input");
  std::vector<Complex> c(x.begin(), x.end());
  fft(c);
  c.resize(x.size() / 2 + 1);
  return c;
}

std::vector<Real> irfft(const std::vector<Complex>& half, std::size_t n) {
  // n == 0 would pass the size check below (0/2 + 1 == 1) and then write
  // half[0] into an empty buffer — reject it explicitly.
  RFIC_REQUIRE(n > 0, "irfft: zero output length");
  RFIC_REQUIRE(half.size() == n / 2 + 1, "irfft: half spectrum size mismatch");
  std::vector<Complex> full(n);
  for (std::size_t k = 0; k < half.size(); ++k) full[k] = half[k];
  for (std::size_t k = half.size(); k < n; ++k) full[k] = std::conj(full[n - k]);
  ifft(full);
  std::vector<Real> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = full[i].real();
  return out;
}

void fft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols) {
  RFIC_REQUIRE(x.size() == rows * cols, "fft2 size mismatch");
  std::vector<Complex> tmp;
  // Rows.
  for (std::size_t r = 0; r < rows; ++r) {
    tmp.assign(x.begin() + static_cast<std::ptrdiff_t>(r * cols),
               x.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    fft(tmp);
    std::copy(tmp.begin(), tmp.end(),
              x.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  // Columns.
  tmp.resize(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) tmp[r] = x[r * cols + c];
    fft(tmp);
    for (std::size_t r = 0; r < rows; ++r) x[r * cols + c] = tmp[r];
  }
}

void ifft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols) {
  RFIC_REQUIRE(x.size() == rows * cols, "ifft2 size mismatch");
  std::vector<Complex> tmp;
  for (std::size_t r = 0; r < rows; ++r) {
    tmp.assign(x.begin() + static_cast<std::ptrdiff_t>(r * cols),
               x.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    ifft(tmp);
    std::copy(tmp.begin(), tmp.end(),
              x.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  tmp.resize(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) tmp[r] = x[r * cols + c];
    ifft(tmp);
    for (std::size_t r = 0; r < rows; ++r) x[r * cols + c] = tmp[r];
  }
}

}  // namespace rfic::fft
