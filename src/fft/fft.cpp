#include "fft/fft.hpp"

#include "diag/contracts.hpp"
#include "fft/plan.hpp"

namespace rfic::fft {

// The free functions are convenience shims over the planned engine: every
// call routes through PlanCache::global(), so twiddle tables, bit-reversal
// permutations, and Bluestein kernels are computed once per length
// process-wide. Hot loops that cannot afford per-call vectors (HB/MPDE
// inner paths) hold their plans and buffers directly; these entry points
// exist for setup code, tests, and one-shot analyses.

bool isPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t nextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& x) {
  RFIC_CHECK_FINITE(x, "fft: input");
  if (x.size() <= 1) return;
  const auto plan = PlanCache::global().get(x.size());
  transformColumns(*plan, x.data(), 1, false);
}

void ifft(std::vector<Complex>& x) {
  RFIC_CHECK_FINITE(x, "ifft: input");
  if (x.size() <= 1) return;
  const auto plan = PlanCache::global().get(x.size());
  transformColumns(*plan, x.data(), 1, true);
}

std::vector<Complex> rfft(const std::vector<Real>& x) {
  RFIC_REQUIRE(!x.empty(), "rfft: empty input");
  std::vector<Complex> c(x.begin(), x.end());
  fft(c);
  c.resize(x.size() / 2 + 1);
  return c;
}

std::vector<Real> irfft(const std::vector<Complex>& half, std::size_t n) {
  // n == 0 would pass the size check below (0/2 + 1 == 1) and then write
  // half[0] into an empty buffer — reject it explicitly.
  RFIC_REQUIRE(n > 0, "irfft: zero output length");
  RFIC_REQUIRE(half.size() == n / 2 + 1, "irfft: half spectrum size mismatch");
  std::vector<Complex> full(n);
  for (std::size_t k = 0; k < half.size(); ++k) full[k] = half[k];
  for (std::size_t k = half.size(); k < n; ++k) full[k] = std::conj(full[n - k]);
  ifft(full);
  std::vector<Real> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = full[i].real();
  return out;
}

void fft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols) {
  RFIC_REQUIRE(x.size() == rows * cols, "fft2 size mismatch");
  if (x.empty()) return;
  auto& cache = PlanCache::global();
  const auto rowPlan = cache.get(cols);
  const auto colPlan = cache.get(rows);
  transformGrid2D(*rowPlan, *colPlan, x.data(), rows, cols, false);
}

void ifft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols) {
  RFIC_REQUIRE(x.size() == rows * cols, "ifft2 size mismatch");
  if (x.empty()) return;
  auto& cache = PlanCache::global();
  const auto rowPlan = cache.get(cols);
  const auto colPlan = cache.get(rows);
  transformGrid2D(*rowPlan, *colPlan, x.data(), rows, cols, true);
}

}  // namespace rfic::fft
