// Fast Fourier transforms.
//
// The harmonic-balance engine (Section 2.1) and the multi-time MPDE methods
// (Section 2.2) move circuit waveforms between the time and frequency
// domains on every residual and Jacobian-vector evaluation; the FFT is what
// makes the matrix-implicit formulation cheap. Radix-2 handles the
// power-of-two oversampled grids used by HB; Bluestein covers arbitrary
// lengths (odd spectral-collocation grids in MMFT); a row-column 2-D
// transform supports two-tone analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "common.hpp"

namespace rfic::fft {

/// In-place forward DFT: X[k] = Σ_n x[n]·exp(-2πi·kn/N). Any length.
void fft(std::vector<Complex>& x);

/// In-place inverse DFT with the 1/N normalization.
void ifft(std::vector<Complex>& x);

/// Forward DFT of real samples; returns the N/2+1 nonredundant coefficients
/// X[0..N/2] of the length-N spectrum (X[0] real; X[N/2] real if N even).
std::vector<Complex> rfft(const std::vector<Real>& x);

/// Inverse of rfft: reconstruct N real samples from the nonredundant half
/// spectrum (size N/2+1).
std::vector<Real> irfft(const std::vector<Complex>& half, std::size_t n);

/// 2-D DFT over a rows×cols grid stored row-major (row r, column c at index
/// r*cols + c). Forward transform.
void fft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols);

/// 2-D inverse DFT with 1/(rows·cols) normalization.
void ifft2(std::vector<Complex>& x, std::size_t rows, std::size_t cols);

/// True if n is a power of two (and nonzero).
bool isPowerOfTwo(std::size_t n);

/// Smallest power of two ≥ n.
std::size_t nextPowerOfTwo(std::size_t n);

}  // namespace rfic::fft
