#include "fft/plan.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "fft/fft.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::fft {

namespace {
// Per-thread Bluestein/column scratch. Grow-only, so repeated transforms
// of the same (or smaller) lengths never touch the allocator.
//
// Reentrancy: the batched entry points below run their lambdas on pool
// workers, and a parallelFor issued from inside a worker executes INLINE
// on that worker (nested-inline path) — so a transform invoked from user
// code that is itself inside a transform lambda would claim the same
// thread_local buffer and trample the outer call's scratch. ScratchLease
// makes that impossible: the outer claim marks the buffer busy, and a
// nested claim falls back to a private heap buffer instead of aliasing.
// The fallback never triggers from this library's own call graph (plan
// execution never calls back into the batched entry points) — it is a
// guard for nested user pipelines, tested in test_fft.cpp.
thread_local std::vector<Complex> tlScratch;
thread_local std::vector<Complex> tlColumn;
thread_local bool tlScratchBusy = false;
thread_local bool tlColumnBusy = false;

class ScratchLease {
 public:
  ScratchLease(std::vector<Complex>& buf, bool& busy, std::size_t need)
      : busy_(busy), owner_(!busy) {
    if (owner_) {
      busy_ = true;
      if (buf.size() < need)
        buf.resize(need);  // rt: allow(rt-alloc) grow-once thread-local
                           // scratch; steady state replays at high-water mark
      ptr_ = buf.data();
    } else {
      // Nested (reentrant) claim: private buffer, correctness over speed.
      fallback_.resize(need);  // rt: allow(rt-alloc) reentrant-claim fallback
                               // only — never taken on the library's own paths
      ptr_ = fallback_.data();
    }
  }
  ~ScratchLease() {
    if (owner_) busy_ = false;
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  Complex* get() { return ptr_; }

 private:
  bool& busy_;
  bool owner_;
  Complex* ptr_ = nullptr;
  std::vector<Complex> fallback_;
};
}  // namespace

Plan::Plan(std::size_t n) : n_(n) {
  RFIC_REQUIRE(n > 0, "fft::Plan: length must be positive");

  if (isPowerOfTwo(n)) {
    // Bit-reversal permutation.
    bitrev_.assign(n, 0);
    std::uint32_t bits = 0;
    while ((std::size_t{1} << bits) < n) ++bits;
    for (std::size_t i = 1; i < n; ++i) {
      std::size_t r = 0;
      for (std::uint32_t b = 0; b < bits; ++b) r |= ((i >> b) & 1u) << (bits - 1 - b);
      bitrev_[i] = static_cast<std::uint32_t>(r);
    }
    // Packed per-stage twiddles: stage `len` owns len/2 factors at offset
    // len/2 - 1, for n - 1 factors total.
    if (n > 1) {
      twFwd_.resize(n - 1);
      twInv_.resize(n - 1);
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        Complex* fw = twFwd_.data() + (half - 1);
        Complex* iv = twInv_.data() + (half - 1);
        for (std::size_t k = 0; k < half; ++k) {
          const Real ang = 2.0 * kPi * static_cast<Real>(k) / static_cast<Real>(len);
          fw[k] = Complex(std::cos(ang), -std::sin(ang));
          iv[k] = Complex(std::cos(ang), std::sin(ang));
        }
      }
    }
    return;
  }

  // Bluestein chirp-z. The chirp phase index is k^2 mod 2n; computed
  // incrementally ((k+1)^2 = k^2 + 2k + 1) both residues stay below 2n and
  // their sum below 4n, so the guard below makes overflow impossible even
  // where k*k itself would wrap std::size_t.
  RFIC_REQUIRE(n <= std::numeric_limits<std::size_t>::max() / 4,
               "fft::Plan: length too large for Bluestein chirp indexing");
  const std::size_t mod = 2 * n;
  chirp_.resize(n);
  std::size_t k2 = 0;    // k^2 mod 2n
  std::size_t step = 1;  // 2k + 1 mod 2n
  for (std::size_t k = 0; k < n; ++k) {
    const Real ang = kPi * static_cast<Real>(k2) / static_cast<Real>(n);
    chirp_[k] = Complex(std::cos(ang), -std::sin(ang));
    k2 += step;
    if (k2 >= mod) k2 -= mod;
    step += 2;
    if (step >= mod) step -= mod;
  }

  const std::size_t m = nextPowerOfTwo(2 * n - 1);
  sub_ = std::make_unique<const Plan>(m);

  // Forward-transformed convolution kernels, one per direction: the
  // forward transform convolves with conj(chirp), the inverse with the
  // chirp itself. Both are symmetric (b[m-k] = b[k]) zero-padded to m.
  kernelFwd_.assign(m, Complex(0, 0));
  kernelInv_.assign(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    const Complex c = std::conj(chirp_[k]);
    kernelFwd_[k] = c;
    kernelInv_[k] = chirp_[k];
    if (k > 0) {
      kernelFwd_[m - k] = c;
      kernelInv_[m - k] = chirp_[k];
    }
  }
  sub_->executePow2(kernelFwd_.data(), false);
  sub_->executePow2(kernelInv_.data(), false);
}

RFIC_REALTIME void Plan::execute(Complex* x, Complex* scratch,
                                 bool inverse) const {
  RFIC_REQUIRE(x != nullptr, "fft::Plan: null signal pointer");
  if (sub_)
    executeBluestein(x, scratch, inverse);
  else
    executePow2(x, inverse);
}

RFIC_REALTIME void Plan::executePow2(Complex* x, bool inverse) const {
  const std::size_t n = n_;
  if (n == 1) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const std::vector<Complex>& tw = inverse ? twInv_ : twFwd_;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const Complex* w = tw.data() + (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      Complex* a = x + i;
      Complex* b = a + half;
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = a[k];
        const Complex v = b[k] * w[k];
        a[k] = u + v;
        b[k] = u - v;
      }
    }
  }
  if (inverse) {
    const Real inv = Real(1) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
  }
}

RFIC_REALTIME void Plan::executeBluestein(Complex* x, Complex* scratch,
                                          bool inverse) const {
  RFIC_REQUIRE(scratch != nullptr, "fft::Plan: Bluestein path needs scratch");
  const std::size_t n = n_;
  const std::size_t m = sub_->n_;
  // Modulate by the chirp (conjugated for the inverse direction) and pad.
  for (std::size_t k = 0; k < n; ++k) {
    const Complex c = inverse ? std::conj(chirp_[k]) : chirp_[k];
    scratch[k] = x[k] * c;
  }
  for (std::size_t k = n; k < m; ++k) scratch[k] = Complex(0, 0);
  // Circular convolution with the pre-transformed kernel. sub_'s inverse
  // carries the 1/m factor, so FFT → pointwise → IFFT is exactly the
  // convolution.
  sub_->executePow2(scratch, false);
  const std::vector<Complex>& kern = inverse ? kernelInv_ : kernelFwd_;
  for (std::size_t k = 0; k < m; ++k) scratch[k] *= kern[k];
  sub_->executePow2(scratch, true);
  // Demodulate; the inverse direction also applies the 1/n normalization.
  if (inverse) {
    const Real inv = Real(1) / static_cast<Real>(n);
    for (std::size_t k = 0; k < n; ++k)
      x[k] = std::conj(chirp_[k]) * scratch[k] * inv;
  } else {
    for (std::size_t k = 0; k < n; ++k) x[k] = chirp_[k] * scratch[k];
  }
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const Plan> PlanCache::get(std::size_t n) {
  RFIC_REQUIRE(n > 0, "fft::PlanCache: length must be positive");
  {
    diag::LockGuard lock(mu_);
    const auto it = plans_.find(n);
    if (it != plans_.end()) {
      ++hits_;
      perf::global().addPlanCacheHit();
      return it->second;
    }
  }
  // Build outside the lock: plan construction is the expensive part, and
  // concurrent first requests for distinct lengths should not serialize.
  // A lost race simply discards the duplicate plan.
  auto built = std::make_shared<const Plan>(n);
  diag::LockGuard lock(mu_);
  const auto [it, inserted] = plans_.try_emplace(n, std::move(built));
  ++misses_;
  perf::global().addPlanCacheMiss();
  return it->second;
}

std::uint64_t PlanCache::hits() const {
  diag::LockGuard lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  diag::LockGuard lock(mu_);
  return misses_;
}

void PlanCache::clear() {
  diag::LockGuard lock(mu_);
  plans_.clear();
}

RFIC_REALTIME void transformColumns(const Plan& plan, Complex* data,
                                    std::size_t count, bool inverse,
                                    perf::Counters* extra) {
  RFIC_REQUIRE(count == 0 || data != nullptr,
               "fft::transformColumns: null data with nonzero count");
  if (count == 0) return;
  const std::size_t n = plan.size();
  perf::Timer t;
  // Chunk so one dispatch round-trip covers ~4096 transformed samples —
  // below that the wake-up overhead beats the butterfly work.
  const std::size_t grain = std::size_t{4096} / n + 1;
  perf::ThreadPool::global().parallelFor(
      count,
      [&](std::size_t i) {
        Complex* col = data + i * n;
        ScratchLease scratch(tlScratch, tlScratchBusy, plan.scratchSize());
        if (inverse)
          plan.inverse(col, scratch.get());
        else
          plan.forward(col, scratch.get());
      },
      grain);
  perf::global().addFfts(count, t.ns());
  if (extra) extra->addFfts(count, t.ns());
}

RFIC_REALTIME void transformGrid2D(const Plan& rowPlan, const Plan& colPlan,
                                   Complex* x, std::size_t rows,
                                   std::size_t cols, bool inverse,
                                   perf::Counters* extra) {
  RFIC_REQUIRE(x != nullptr && rowPlan.size() == cols && colPlan.size() == rows,
               "fft::transformGrid2D: plan lengths must match the grid");
  std::uint64_t nTransforms = 0;
  perf::Timer t;
  auto& pool = perf::ThreadPool::global();
  if (cols > 1) {
    const std::size_t grain = std::size_t{4096} / cols + 1;
    pool.parallelFor(
        rows,
        [&](std::size_t r) {
          Complex* row = x + r * cols;
          ScratchLease scratch(tlScratch, tlScratchBusy,
                               rowPlan.scratchSize());
          if (inverse)
            rowPlan.inverse(row, scratch.get());
          else
            rowPlan.forward(row, scratch.get());
        },
        grain);
    nTransforms += rows;
  }
  if (rows > 1) {
    const std::size_t grain = std::size_t{4096} / rows + 1;
    pool.parallelFor(
        cols,
        [&](std::size_t c) {
          ScratchLease column(tlColumn, tlColumnBusy, rows);
          Complex* col = column.get();
          for (std::size_t r = 0; r < rows; ++r) col[r] = x[r * cols + c];
          ScratchLease scratch(tlScratch, tlScratchBusy,
                               colPlan.scratchSize());
          if (inverse)
            colPlan.inverse(col, scratch.get());
          else
            colPlan.forward(col, scratch.get());
          for (std::size_t r = 0; r < rows; ++r) x[r * cols + c] = col[r];
        },
        grain);
    nTransforms += cols;
  }
  if (nTransforms > 0) {
    perf::global().addFfts(nTransforms, t.ns());
    if (extra) extra->addFfts(nTransforms, t.ns());
  }
}

}  // namespace rfic::fft
