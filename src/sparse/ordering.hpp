// Fill-reducing pivot pre-ordering for the sparse LU factorizers.
//
// The Markowitz/threshold search in SparseLU/SymbolicLU chooses good pivots
// but pays an O(n) candidate scan per elimination step — O(n²) for the whole
// analysis — which is what makes 100k-node MNA systems infeasible even
// though the numeric work itself is nearly linear in the fill. The classic
// fix is to split the decision: compute a fill-reducing *column* order up
// front on the symmetrized pattern (approximate minimum degree, the
// AMD algorithm of Amestoy, Davis & Duff), then let the numeric
// factorization pick the pivot *row* inside each pre-ordered column with
// the same relative-magnitude threshold as before. Ordering quality is a
// pattern property; numerical stability stays a value property — the
// threshold backstop (and the replay repivot fallback) is unchanged.
//
// Selection is plumbed three ways, mirroring the batched-eval toggle:
//  - a process-wide default (CLI `--ordering=natural|amd`),
//  - a per-thread override (the daemon's per-job `ordering` submit field,
//    installed around the job so every workspace the job creates sees it),
//  - an explicit Options::ordering on the factorizers (tests, benches).
// `Natural` pins today's full Markowitz search and is the default — the
// golden byte-equality references all run in natural order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rfic::sparse {

enum class Ordering {
  Auto,     ///< resolve to effectiveOrdering() at factor() time
  Natural,  ///< full Markowitz/threshold pivot search (golden reference)
  Amd,      ///< approximate-minimum-degree column pre-order
};

const char* toString(Ordering o);

/// Parses "natural" or "amd" (the CLI/submit-field vocabulary — Auto is an
/// internal sentinel and not accepted). Returns false on anything else.
bool parseOrdering(const std::string& s, Ordering& out);

/// Process-wide default picked up by new factorizations (CLI flag plumbing;
/// relaxed atomic, same pattern as MnaWorkspace::setBatchedEvalDefault).
Ordering orderingDefault();
void setOrderingDefault(Ordering o);

/// The ordering Auto resolves to on this thread: the innermost
/// ScopedOrderingOverride if one is installed, else the process default.
Ordering effectiveOrdering();
/// Auto → effectiveOrdering(); anything else passes through.
Ordering resolveOrdering(Ordering o);

/// RAII per-thread override — how the engine applies a job's `ordering`
/// submit field without racing concurrent jobs on the process default.
/// Every factorizer the job's thread constructs while the override is
/// alive resolves Auto to this value.
class ScopedOrderingOverride {
 public:
  explicit ScopedOrderingOverride(Ordering o);
  ~ScopedOrderingOverride();
  ScopedOrderingOverride(const ScopedOrderingOverride&) = delete;
  ScopedOrderingOverride& operator=(const ScopedOrderingOverride&) = delete;

 private:
  Ordering prev_;
};

/// Approximate-minimum-degree ordering of the symmetrized pattern of an
/// n×n CSR matrix (G∪C∪Gᵀ∪Cᵀ, diagonal ignored). Returns the elimination
/// order: result[k] is the node (column) to eliminate at step k. Fully
/// deterministic — quotient-graph with element absorption, the
/// Amestoy–Davis–Duff two-pass approximate external degree, aggressive
/// element absorption, and index-order tie-breaking. Duplicate column
/// indices and unsorted rows are tolerated.
std::vector<std::uint32_t> amdOrder(std::size_t n,
                                    const std::vector<std::size_t>& rowPtr,
                                    const std::vector<std::uint32_t>& colIdx);

}  // namespace rfic::sparse
