#include "sparse/ordering.hpp"

#include <algorithm>
#include <atomic>

#include "diag/resilience.hpp"

namespace rfic::sparse {

namespace {
std::atomic<Ordering> gDefault{Ordering::Natural};
// Innermost per-thread override; Auto = none installed.
thread_local Ordering tlOverride = Ordering::Auto;
}  // namespace

const char* toString(Ordering o) {
  switch (o) {
    case Ordering::Auto:
      return "auto";
    case Ordering::Natural:
      return "natural";
    case Ordering::Amd:
      return "amd";
  }
  return "?";
}

bool parseOrdering(const std::string& s, Ordering& out) {
  if (s == "natural") {
    out = Ordering::Natural;
    return true;
  }
  if (s == "amd") {
    out = Ordering::Amd;
    return true;
  }
  return false;
}

Ordering orderingDefault() { return gDefault.load(std::memory_order_relaxed); }

void setOrderingDefault(Ordering o) {
  RFIC_REQUIRE(o != Ordering::Auto,
               "setOrderingDefault: Auto is not a concrete ordering");
  gDefault.store(o, std::memory_order_relaxed);
}

Ordering effectiveOrdering() {
  const Ordering o = tlOverride;
  return o != Ordering::Auto ? o : orderingDefault();
}

Ordering resolveOrdering(Ordering o) {
  return o != Ordering::Auto ? o : effectiveOrdering();
}

ScopedOrderingOverride::ScopedOrderingOverride(Ordering o) : prev_(tlOverride) {
  RFIC_REQUIRE(o != Ordering::Auto,
               "ScopedOrderingOverride: Auto is not a concrete ordering");
  tlOverride = o;
}

ScopedOrderingOverride::~ScopedOrderingOverride() { tlOverride = prev_; }

// Approximate minimum degree on the quotient graph, after Amestoy, Davis &
// Duff. Eliminated pivots become *elements*; a live variable's structure is
// its pruned direct adjacency A_i plus the union of the variable lists L_e
// of its adjacent elements. Eliminating p forms the new element
// L_p = (A_p ∪ ∪_{e∈E_p} L_e) \ {p}; every element adjacent to p is
// absorbed into it, and the external degree of each i ∈ L_p is re-estimated
// as d_i = |A_i| + |L_p \ {i}| + Σ_{e∈E_i} |L_e \ L_p| — the last term via
// the classic two-pass w[e] computation, so one elimination costs time
// proportional to the structure it touches, not to n.
//
// Everything iterates plain vectors in insertion/index order and ties in
// the degree buckets break toward the smaller node index, so the returned
// permutation is deterministic across runs and platforms.
std::vector<std::uint32_t> amdOrder(std::size_t n,
                                    const std::vector<std::size_t>& rowPtr,
                                    const std::vector<std::uint32_t>& colIdx) {
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> perm;
  perm.reserve(n);
  if (n == 0) return perm;
  RFIC_REQUIRE(rowPtr.size() == n + 1, "amdOrder: rowPtr size mismatch");

  // Symmetrized adjacency, diagonal dropped, duplicates removed.
  std::vector<std::vector<std::uint32_t>> varAdj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = rowPtr[r]; p < rowPtr[r + 1]; ++p) {
      const std::uint32_t c = colIdx[p];
      RFIC_REQUIRE(c < n, "amdOrder: column index out of range");
      if (c == r) continue;
      varAdj[r].push_back(c);
      varAdj[c].push_back(static_cast<std::uint32_t>(r));
    }
  }
  for (auto& a : varAdj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  enum : unsigned char { kVar = 0, kElement = 1, kDead = 2 };
  std::vector<unsigned char> state(n, kVar);
  std::vector<std::vector<std::uint32_t>> elAdj(n);
  std::vector<std::size_t> degree(n);

  // Degree buckets: intrusive doubly-linked lists, one per degree value.
  std::vector<std::uint32_t> head(n, kNone), nxt(n, kNone), prv(n, kNone);
  const auto bucketRemove = [&](std::uint32_t i) {
    const std::uint32_t p = prv[i], x = nxt[i];
    if (p != kNone)
      nxt[p] = x;
    else
      head[degree[i]] = x;
    if (x != kNone) prv[x] = p;
    prv[i] = nxt[i] = kNone;
  };
  const auto bucketInsert = [&](std::uint32_t i) {
    const std::size_t d = degree[i];
    prv[i] = kNone;
    nxt[i] = head[d];
    if (head[d] != kNone) prv[head[d]] = i;
    head[d] = i;
  };
  // Insert in descending index order so each bucket lists smaller indices
  // first — the deterministic tie-break.
  for (std::size_t i = n; i-- > 0;) {
    degree[i] = varAdj[i].size();
    bucketInsert(static_cast<std::uint32_t>(i));
  }

  std::vector<std::uint32_t> markv(n, 0);  // L_p ∪ {p} membership stamps
  std::uint32_t stamp = 0;
  std::vector<std::size_t> wval(n, 0);  // two-pass |L_e \ L_p| counters
  std::vector<std::uint32_t> wstamp(n, 0);
  std::vector<std::uint32_t> lp;
  lp.reserve(64);

  std::size_t mindeg = 0;
  for (std::size_t k = 0; k < n; ++k) {
    while (mindeg < n && head[mindeg] == kNone) ++mindeg;
    RFIC_REQUIRE(mindeg < n, "amdOrder: degree lists exhausted early");
    const std::uint32_t piv = head[mindeg];
    bucketRemove(piv);
    perm.push_back(piv);

    // L_piv = (A_piv ∪ ∪ L_e) \ {piv}, live variables only. Adjacent
    // elements are absorbed into the new element as their lists drain.
    ++stamp;
    markv[piv] = stamp;
    lp.clear();
    for (const std::uint32_t c : varAdj[piv]) {
      if (state[c] != kVar || markv[c] == stamp) continue;
      markv[c] = stamp;
      lp.push_back(c);
    }
    for (const std::uint32_t e : elAdj[piv]) {
      if (state[e] != kElement) continue;
      for (const std::uint32_t c : varAdj[e]) {
        if (state[c] != kVar || markv[c] == stamp) continue;
        markv[c] = stamp;
        lp.push_back(c);
      }
      state[e] = kDead;
      std::vector<std::uint32_t>().swap(varAdj[e]);
    }
    std::vector<std::uint32_t>().swap(elAdj[piv]);
    varAdj[piv] = lp;
    state[piv] = lp.empty() ? kDead : kElement;  // isolated nodes just die
    if (lp.empty()) continue;

    // Pass 1: w[e] = |L_e \ L_piv| for every element touching L_piv.
    const std::uint32_t round = static_cast<std::uint32_t>(k + 1);
    for (const std::uint32_t i : lp) {
      for (const std::uint32_t e : elAdj[i]) {
        if (state[e] != kElement) continue;
        if (wstamp[e] != round) {
          wstamp[e] = round;
          wval[e] = varAdj[e].size();
        }
        --wval[e];  // i ∈ L_e ∩ L_piv
      }
    }

    // Pass 2: prune each i ∈ L_piv and re-estimate its external degree.
    for (const std::uint32_t i : lp) {
      // A_i loses piv, everything covered by the new element, and the dead.
      auto& ai = varAdj[i];
      std::size_t keep = 0;
      for (const std::uint32_t c : ai)
        if (state[c] == kVar && markv[c] != stamp) ai[keep++] = c;
      ai.resize(keep);

      // E_i keeps live elements (aggressively absorbing any with
      // L_e ⊆ L_piv) and gains the new element piv.
      auto& ei = elAdj[i];
      std::size_t ekeep = 0;
      std::size_t d = keep + (lp.size() - 1);
      for (const std::uint32_t e : ei) {
        if (state[e] != kElement) continue;
        const std::size_t we =
            wstamp[e] == round ? wval[e] : varAdj[e].size();
        if (we == 0) {  // L_e ⊆ L_piv — redundant next to element piv
          state[e] = kDead;
          std::vector<std::uint32_t>().swap(varAdj[e]);
          continue;
        }
        d += we;
        ei[ekeep++] = e;
      }
      ei.resize(ekeep);
      ei.push_back(piv);

      const std::size_t cap = n - k - 1;  // live variables besides i
      if (d > cap) d = cap;
      bucketRemove(i);
      degree[i] = d;
      bucketInsert(i);
      if (d < mindeg) mindeg = d;
    }
  }

  RFIC_REQUIRE(perm.size() == n, "amdOrder: incomplete permutation");
  return perm;
}

}  // namespace rfic::sparse
