// Symbolic/numeric split of the sparse LU factorization.
//
// SparseLU redoes everything — Markowitz ordering, fill discovery, and the
// numeric elimination — on every call, which is the right trade for one-shot
// users (AC sweeps, S-parameters) but wasteful inside Newton loops where the
// sparsity pattern never changes between iterations. SymbolicLU factors a
// pattern ONCE with the same pivot strategy as SparseLU, and while doing so
// records a flat "update program": a workspace slot for every position the
// elimination ever touches (inputs and fill-in), the pivot/L/U slots per
// step, and the (target, source) slot pairs of every elimination flop.
//
// refactor(values) then replays that program on new numeric values — no
// hashing, no ordering, no allocation — in time proportional to the flop
// count of the original factorization. Because fill depends only on the
// pattern and the pivot order, the replay is bit-for-bit the same arithmetic
// a fresh factorization with the same pivots would perform.
//
// Two scaling features layer on top (see DESIGN.md §13):
//
//  * Options::ordering selects the pivot order. Natural runs the classic
//    full Markowitz/threshold search (the golden reference); Amd computes
//    an approximate-minimum-degree column pre-order on the symmetrized
//    pattern up front (sparse/ordering.hpp) and restricts the numeric
//    search to threshold row pivoting inside each pre-ordered column —
//    O(nnz)-ish analysis instead of O(n²), which is what makes ≥50k-node
//    meshes tractable.
//
//  * factor() partitions the recorded program into elimination-dependency
//    levels. Steps in one level touch pairwise-disjoint workspace slots, so
//    refactor(values) may execute a level's steps concurrently on a
//    perf::ThreadPool (setPool) with bitwise-identical results for every
//    thread count — falling back to the serial program below
//    Options::parallelMinFlops or without a pool.
//
// Replay is guarded: a pivot falling below `pivotFloor · max|A|`, element
// growth beyond `growthLimit · max|A|`, or any non-finite value aborts the
// replay and triggers a fresh full factorization with new pivots (keeping
// the pre-ordered column sequence but re-choosing rows — the numeric-
// stability backstop under any ordering). The caller learns which path ran
// through the returned diag::SolverStatus (Converged = cheap replay,
// Repivoted = fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "diag/convergence.hpp"
#include "diag/thread_annotations.hpp"
#include "sparse/ordering.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::perf {
class ThreadPool;
}

namespace rfic::sparse {

template <class T>
class SymbolicLU {
 public:
  struct Options {
    Real pivotThreshold = 1e-3;  ///< relative threshold vs column max (analysis)
    bool preferDiagonal = true;  ///< MNA matrices nearly always allow it
    Real pivotFloor = 1e-12;     ///< replay aborts if |pivot| ≤ floor·max|A|
    Real growthLimit = 1e10;     ///< replay aborts if max|U| > limit·max|A|
    /// Pivot pre-ordering (Auto resolves to the process default / per-job
    /// override at factor() time; see sparse/ordering.hpp).
    Ordering ordering = Ordering::Auto;
    /// Level-parallel replay engages only when the recorded program has at
    /// least this many flops (and setPool() installed a pool with >1 lane);
    /// below it the serial replay wins on dispatch overhead. Results are
    /// bitwise identical either way.
    std::size_t parallelMinFlops = 32768;
  };

  SymbolicLU() = default;
  explicit SymbolicLU(const CSR<T>& a, const Options& opts = {});

  /// Full analysis: pivot ordering + fill discovery + numeric values, and
  /// records the replay program (and its level schedule). Throws
  /// NumericalError on singularity.
  void factor(const CSR<T>& a, const Options& opts = {});

  /// Cheap numeric pass on new values over the analyzed pattern. `values`
  /// must follow the CSR position order of the matrix passed to factor().
  /// Returns SolverStatus::Converged when the replay succeeded, or
  /// SolverStatus::Repivoted when pivot growth forced a fresh full
  /// factorization (with new pivots) from the same values. The replay path
  /// is allocation-free; only the Repivoted fallback allocates.
  RFIC_REALTIME diag::SolverStatus refactor(const std::vector<T>& values);
  /// Convenience: same-pattern matrix (only its values are read).
  diag::SolverStatus refactor(const CSR<T>& a);

  /// Worker pool for the level-scheduled parallel replay (nullptr = always
  /// serial). Non-owning; the pool must outlive refactor() calls. The
  /// replayed values are bitwise identical for any pool size because steps
  /// within a level touch pairwise-disjoint slots.
  void setPool(perf::ThreadPool* pool) { pool_ = pool; }

  bool analyzed() const { return analyzed_; }
  std::size_t size() const { return n_; }
  std::size_t patternNnz() const { return nnz_; }
  /// Stored factor entries, fill-in included.
  std::size_t factorNnz() const { return n_ + lVal_.size() + uVal_.size(); }
  /// Fill-in ratio: factor entries per input pattern entry (≥ 1 in
  /// practice; the figure of merit the ordering stage minimizes).
  Real fillRatio() const {
    return nnz_ == 0 ? Real(0)
                     : static_cast<Real>(factorNnz()) / static_cast<Real>(nnz_);
  }
  /// Flops replayed per refactor (size of the recorded update program).
  std::size_t programFlops() const { return updTarget_.size(); }
  /// Elimination-dependency levels in the recorded program (the parallel
  /// replay runs one barrier per level).
  std::size_t levelCount() const {
    return levelPtr_.empty() ? 0 : levelPtr_.size() - 1;
  }
  /// The ordering the last factor() resolved to (Natural or Amd).
  Ordering orderingUsed() const { return resolved_; }

  Vec<T> solve(const Vec<T>& b) const;

  /// Allocation-free solve for hot loops: writes the solution into `x` and
  /// uses the caller's scratch vectors (all three grow to size() on first
  /// use and are reused untouched afterwards). `b` must not alias them.
  RFIC_REALTIME void solve(const Vec<T>& b, Vec<T>& x, Vec<T>& scratchY,
                           Vec<T>& scratchZ) const;

 private:
  void analyzeFromValues(const T* vals);
  void buildLevels();
  bool replay(const T* vals, std::size_t nvals);
  bool replayParallel(const T* vals, std::size_t nvals);
  bool wantParallel() const;

  Options opts_;
  Ordering resolved_ = Ordering::Natural;
  bool analyzed_ = false;
  std::size_t n_ = 0;
  std::size_t nnz_ = 0;  ///< input pattern positions (= workspace prefix)

  // Input pattern, kept so the repivot fallback can rebuild rows from a
  // bare value array.
  std::vector<std::size_t> aRowPtr_;
  std::vector<std::uint32_t> aColIdx_;

  // Fill-reducing column pre-order (empty = natural Markowitz search).
  // Survives the repivot fallback: re-analysis keeps the column sequence
  // and re-chooses rows from the new values.
  std::vector<std::uint32_t> colOrder_;

  // Factorization in flat form. Step k owns L entries [lPtr_[k], lPtr_[k+1])
  // and U entries [uPtr_[k], uPtr_[k+1]); pivRow_/pivCol_ are original
  // indices, lRow_/uCol_ likewise.
  std::vector<std::uint32_t> pivRow_, pivCol_;
  std::vector<T> pivVal_;
  std::vector<std::size_t> lPtr_, uPtr_;
  std::vector<std::uint32_t> lRow_, uCol_;
  std::vector<T> lVal_, uVal_;

  // Replay program. Workspace slot of the pivot / each L numerator / each U
  // entry, plus the flattened (target -= m·source) slot pairs in execution
  // order: for step k, for each L entry, one target per U entry of step k.
  std::vector<std::uint32_t> pivSlot_, lSlot_, uSlot_;
  std::vector<std::uint32_t> updTarget_;

  // Level schedule of the program: stepOrder_ lists steps grouped by level,
  // level b spanning [levelPtr_[b], levelPtr_[b+1]); stepUpdBase_[k] is the
  // static updTarget_ cursor base of step k (the serial cursor advances by
  // |U row| per L entry even when the multiplier is zero, so bases are a
  // pattern property).
  std::vector<std::uint32_t> stepOrder_;
  std::vector<std::size_t> levelPtr_;
  std::vector<std::size_t> stepUpdBase_;

  perf::ThreadPool* pool_ = nullptr;  ///< non-owning; null = serial replay
  // Parallel-replay guard state, written through std::atomic_ref so the
  // class stays copyable (HB keeps vectors of per-harmonic factorizations).
  std::uint64_t maxUBits_ = 0;   ///< bit-cast of the running max|U| (≥ 0)
  std::uint32_t replayBad_ = 0;  ///< a step saw a floor-failing pivot

  std::uint64_t levelBytesCharged_ = 0;  ///< diag::memCharge high-water mark

  std::vector<T> w_;  ///< slot workspace (one entry per touched position)
};

using RSymbolicLU = SymbolicLU<Real>;
using CSymbolicLU = SymbolicLU<Complex>;

extern template class SymbolicLU<Real>;
extern template class SymbolicLU<Complex>;

}  // namespace rfic::sparse
