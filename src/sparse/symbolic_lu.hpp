// Symbolic/numeric split of the sparse LU factorization.
//
// SparseLU redoes everything — Markowitz ordering, fill discovery, and the
// numeric elimination — on every call, which is the right trade for one-shot
// users (AC sweeps, S-parameters) but wasteful inside Newton loops where the
// sparsity pattern never changes between iterations. SymbolicLU factors a
// pattern ONCE with the same pivot strategy as SparseLU, and while doing so
// records a flat "update program": a workspace slot for every position the
// elimination ever touches (inputs and fill-in), the pivot/L/U slots per
// step, and the (target, source) slot pairs of every elimination flop.
//
// refactor(values) then replays that program on new numeric values — no
// hashing, no ordering, no allocation — in time proportional to the flop
// count of the original factorization. Because fill depends only on the
// pattern and the pivot order, the replay is bit-for-bit the same arithmetic
// a fresh factorization with the same pivots would perform.
//
// Replay is guarded: a pivot falling below `pivotFloor · max|A|`, element
// growth beyond `growthLimit · max|A|`, or any non-finite value aborts the
// replay and triggers a fresh full factorization with new pivots. The
// caller learns which path ran through the returned diag::SolverStatus
// (Converged = cheap replay, Repivoted = fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "diag/convergence.hpp"
#include "diag/thread_annotations.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::sparse {

template <class T>
class SymbolicLU {
 public:
  struct Options {
    Real pivotThreshold = 1e-3;  ///< relative threshold vs column max (analysis)
    bool preferDiagonal = true;  ///< MNA matrices nearly always allow it
    Real pivotFloor = 1e-12;     ///< replay aborts if |pivot| ≤ floor·max|A|
    Real growthLimit = 1e10;     ///< replay aborts if max|U| > limit·max|A|
  };

  SymbolicLU() = default;
  explicit SymbolicLU(const CSR<T>& a, const Options& opts = {});

  /// Full analysis: pivot ordering + fill discovery + numeric values, and
  /// records the replay program. Throws NumericalError on singularity.
  void factor(const CSR<T>& a, const Options& opts = {});

  /// Cheap numeric pass on new values over the analyzed pattern. `values`
  /// must follow the CSR position order of the matrix passed to factor().
  /// Returns SolverStatus::Converged when the replay succeeded, or
  /// SolverStatus::Repivoted when pivot growth forced a fresh full
  /// factorization (with new pivots) from the same values. The replay path
  /// is allocation-free; only the Repivoted fallback allocates.
  RFIC_REALTIME diag::SolverStatus refactor(const std::vector<T>& values);
  /// Convenience: same-pattern matrix (only its values are read).
  diag::SolverStatus refactor(const CSR<T>& a);

  bool analyzed() const { return analyzed_; }
  std::size_t size() const { return n_; }
  std::size_t patternNnz() const { return nnz_; }
  /// Stored factor entries, fill-in included.
  std::size_t factorNnz() const { return n_ + lVal_.size() + uVal_.size(); }
  /// Flops replayed per refactor (size of the recorded update program).
  std::size_t programFlops() const { return updTarget_.size(); }

  Vec<T> solve(const Vec<T>& b) const;

  /// Allocation-free solve for hot loops: writes the solution into `x` and
  /// uses the caller's scratch vectors (all three grow to size() on first
  /// use and are reused untouched afterwards). `b` must not alias them.
  RFIC_REALTIME void solve(const Vec<T>& b, Vec<T>& x, Vec<T>& scratchY,
                           Vec<T>& scratchZ) const;

 private:
  void analyzeFromValues(const T* vals);
  bool replay(const T* vals, std::size_t nvals);

  Options opts_;
  bool analyzed_ = false;
  std::size_t n_ = 0;
  std::size_t nnz_ = 0;  ///< input pattern positions (= workspace prefix)

  // Input pattern, kept so the repivot fallback can rebuild rows from a
  // bare value array.
  std::vector<std::size_t> aRowPtr_;
  std::vector<std::uint32_t> aColIdx_;

  // Factorization in flat form. Step k owns L entries [lPtr_[k], lPtr_[k+1])
  // and U entries [uPtr_[k], uPtr_[k+1]); pivRow_/pivCol_ are original
  // indices, lRow_/uCol_ likewise.
  std::vector<std::uint32_t> pivRow_, pivCol_;
  std::vector<T> pivVal_;
  std::vector<std::size_t> lPtr_, uPtr_;
  std::vector<std::uint32_t> lRow_, uCol_;
  std::vector<T> lVal_, uVal_;

  // Replay program. Workspace slot of the pivot / each L numerator / each U
  // entry, plus the flattened (target -= m·source) slot pairs in execution
  // order: for step k, for each L entry, one target per U entry of step k.
  std::vector<std::uint32_t> pivSlot_, lSlot_, uSlot_;
  std::vector<std::uint32_t> updTarget_;

  std::vector<T> w_;  ///< slot workspace (one entry per touched position)
};

using RSymbolicLU = SymbolicLU<Real>;
using CSymbolicLU = SymbolicLU<Complex>;

extern template class SymbolicLU<Real>;
extern template class SymbolicLU<Complex>;

}  // namespace rfic::sparse
