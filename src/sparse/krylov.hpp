// Krylov-subspace iterative solvers over a matrix-free operator interface.
//
// These are the "iterative linear algebra techniques" the paper's Section
// 2.1 credits with making harmonic balance viable for full RF ICs: the HB
// Jacobian is never formed — only its action on a vector (computed with
// FFTs) is supplied, and GMRES with a block-diagonal preconditioner solves
// the Newton update. The same machinery serves the IES³-compressed MoM
// systems of Section 4.
#pragma once

#include <cstddef>
#include <functional>

#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "numeric/dense.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::sparse {

using numeric::Vec;

/// Abstract linear operator y = A·x of dimension dim()×dim().
template <class T>
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  virtual std::size_t dim() const = 0;
  virtual void apply(const Vec<T>& x, Vec<T>& y) const = 0;
};

/// Wrap a callable as a LinearOperator.
template <class T>
class FunctionOperator final : public LinearOperator<T> {
 public:
  using Fn = std::function<void(const Vec<T>&, Vec<T>&)>;
  FunctionOperator(std::size_t n, Fn fn) : n_(n), fn_(std::move(fn)) {}
  std::size_t dim() const override { return n_; }
  void apply(const Vec<T>& x, Vec<T>& y) const override { fn_(x, y); }

 private:
  std::size_t n_;
  Fn fn_;
};

/// View a CSR matrix as a LinearOperator (no copy; the matrix must outlive
/// the operator).
template <class T>
class CSROperator final : public LinearOperator<T> {
 public:
  explicit CSROperator(const CSR<T>& a) : a_(a) {}
  std::size_t dim() const override { return a_.rows(); }
  void apply(const Vec<T>& x, Vec<T>& y) const override { a_.multiply(x, y); }

 private:
  const CSR<T>& a_;
};

/// Iteration report shared by all solvers. `status` classifies *why* the
/// solver stopped (converged / iteration cap / breakdown / stagnation /
/// divergence); `converged` is kept as the common fast-path query.
struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  Real residualNorm = 0;
  diag::SolverStatus status = diag::SolverStatus::NotRun;

  /// Stable name of `status` for logs and error messages.
  const char* statusName() const { return diag::toString(status); }
};

struct IterativeOptions {
  Real tolerance = 1e-10;      ///< relative residual target ‖r‖/‖b‖
  std::size_t maxIterations = 500;
  std::size_t restart = 60;    ///< GMRES restart length
  /// BiCGSTAB/CG stagnation window: iterations without any best-residual
  /// improvement before the solver reports SolverStatus::Stagnated instead
  /// of burning the rest of the iteration cap. 0 = auto,
  /// max(50, maxIterations/10). (GMRES detects stagnation per restart
  /// cycle: a cycle with no residual reduction means the reachable Krylov
  /// space is exhausted.)
  std::size_t stagnationWindow = 0;
  /// Optional cooperative budget: every iteration is charged, and the
  /// solver returns SolverStatus::BudgetExceeded with the current partial
  /// iterate when the budget trips.
  diag::RunBudget* budget = nullptr;
};

/// Reusable GMRES state: every buffer a solve needs (Arnoldi basis,
/// Hessenberg factor, Givens rotations, projected rhs, work vectors).
/// Buffers grow to the problem/restart size on first use and are reused
/// verbatim afterwards, so a caller that keeps one workspace across Newton
/// iterations pays no heap allocation in steady state — the discipline the
/// HB matrix-implicit inner loop depends on. Not thread-safe: one
/// workspace per concurrent solve.
template <class T>
struct GmresWorkspace {
  std::vector<Vec<T>> v;        ///< Arnoldi basis (restart+1 vectors)
  numeric::Mat<T> h;            ///< projected Hessenberg factor
  std::vector<T> cs, sn, g, y;  ///< rotations, projected rhs, small solve
  Vec<T> w, tmp, r, du;         ///< length-n work vectors
};

/// Restarted GMRES(m) with optional right preconditioner M⁻¹ (pass nullptr
/// for none): solves A·M⁻¹·u = b, x = M⁻¹·u. Pass a GmresWorkspace kept
/// across calls to make repeated solves allocation-free; with ws == nullptr
/// a transient workspace is used.
template <class T>
IterativeResult gmres(const LinearOperator<T>& a, const Vec<T>& b, Vec<T>& x,
                      const LinearOperator<T>* rightPrec = nullptr,
                      const IterativeOptions& opts = {},
                      GmresWorkspace<T>* ws = nullptr);

/// BiCGSTAB with optional right preconditioner.
template <class T>
IterativeResult bicgstab(const LinearOperator<T>& a, const Vec<T>& b,
                         Vec<T>& x,
                         const LinearOperator<T>* rightPrec = nullptr,
                         const IterativeOptions& opts = {});

/// Unpreconditioned conveniences (avoids nullptr template-deduction
/// friction at call sites).
template <class T>
IterativeResult gmres(const LinearOperator<T>& a, const Vec<T>& b, Vec<T>& x,
                      const IterativeOptions& opts) {
  return gmres<T>(a, b, x, nullptr, opts);
}
template <class T>
IterativeResult bicgstab(const LinearOperator<T>& a, const Vec<T>& b,
                         Vec<T>& x, const IterativeOptions& opts) {
  return bicgstab<T>(a, b, x, nullptr, opts);
}

/// Conjugate gradients for symmetric positive definite A (real only).
IterativeResult conjugateGradient(const LinearOperator<Real>& a,
                                  const Vec<Real>& b, Vec<Real>& x,
                                  const IterativeOptions& opts = {});

/// Jacobi (diagonal) preconditioner built from a CSR matrix.
template <class T>
class JacobiPreconditioner final : public LinearOperator<T> {
 public:
  explicit JacobiPreconditioner(const CSR<T>& a);
  std::size_t dim() const override { return invDiag_.size(); }
  void apply(const Vec<T>& x, Vec<T>& y) const override;

 private:
  Vec<T> invDiag_;
};

extern template IterativeResult gmres<Real>(const LinearOperator<Real>&,
                                            const Vec<Real>&, Vec<Real>&,
                                            const LinearOperator<Real>*,
                                            const IterativeOptions&,
                                            GmresWorkspace<Real>*);
extern template IterativeResult gmres<Complex>(const LinearOperator<Complex>&,
                                               const Vec<Complex>&,
                                               Vec<Complex>&,
                                               const LinearOperator<Complex>*,
                                               const IterativeOptions&,
                                               GmresWorkspace<Complex>*);
extern template IterativeResult bicgstab<Real>(const LinearOperator<Real>&,
                                               const Vec<Real>&, Vec<Real>&,
                                               const LinearOperator<Real>*,
                                               const IterativeOptions&);
extern template IterativeResult bicgstab<Complex>(
    const LinearOperator<Complex>&, const Vec<Complex>&, Vec<Complex>&,
    const LinearOperator<Complex>*, const IterativeOptions&);
extern template class JacobiPreconditioner<Real>;
extern template class JacobiPreconditioner<Complex>;

}  // namespace rfic::sparse
