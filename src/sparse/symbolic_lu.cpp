#include "sparse/symbolic_lu.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "diag/resilience.hpp"

namespace rfic::sparse {

template <class T>
SymbolicLU<T>::SymbolicLU(const CSR<T>& a, const Options& opts) {
  factor(a, opts);
}

template <class T>
void SymbolicLU<T>::factor(const CSR<T>& a, const Options& opts) {
  RFIC_REQUIRE(a.rows() == a.cols(), "SymbolicLU: square matrix required");
  opts_ = opts;
  n_ = a.rows();
  nnz_ = a.nnz();
  aRowPtr_ = a.rowPtr();
  aColIdx_.assign(a.colIdx().begin(), a.colIdx().end());
  analyzeFromValues(a.values().data());
}

// Full elimination with Markowitz/threshold pivoting (mirrors SparseLU),
// additionally assigning every touched (row, col) position a workspace slot
// and recording the slot-level update program for later replay.
template <class T>
void SymbolicLU<T>::analyzeFromValues(const T* vals) {
  analyzed_ = false;

  // Dynamic structure: per-row map col -> workspace slot. Slots [0, nnz_)
  // are the input CSR positions in order; fill-in appends.
  std::vector<std::unordered_map<std::size_t, std::uint32_t>> work(n_);
  std::vector<std::unordered_set<std::size_t>> colRows(n_);
  w_.assign(nnz_, T{});
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t p = aRowPtr_[r]; p < aRowPtr_[r + 1]; ++p) {
      const std::size_t c = aColIdx_[p];
      const auto [it, inserted] =
          work[r].try_emplace(c, static_cast<std::uint32_t>(p));
      RFIC_REQUIRE(inserted, "SymbolicLU: duplicate position in CSR");
      colRows[c].insert(r);
      w_[p] = vals[p];
    }
  }

  std::vector<char> rowActive(n_, 1), colActive(n_, 1);
  pivRow_.resize(n_);
  pivCol_.resize(n_);
  pivVal_.resize(n_);
  pivSlot_.resize(n_);
  lPtr_.assign(n_ + 1, 0);
  uPtr_.assign(n_ + 1, 0);
  lRow_.clear();
  uCol_.clear();
  lVal_.clear();
  uVal_.clear();
  lSlot_.clear();
  uSlot_.clear();
  updTarget_.clear();

  auto columnMax = [&](std::size_t c) {
    Real m = 0;
    for (std::size_t r : colRows[c])
      m = std::max(m, std::abs(w_[work[r].at(c)]));
    return m;
  };

  for (std::size_t k = 0; k < n_; ++k) {
    // --- Pivot selection (same strategy as SparseLU): minimize the
    // Markowitz product among entries passing the relative threshold.
    std::size_t bestR = n_, bestC = n_;
    std::size_t bestMark = std::numeric_limits<std::size_t>::max();
    Real bestMag = 0;

    if (opts_.preferDiagonal) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (!colActive[j] || !rowActive[j]) continue;
        const auto it = work[j].find(j);
        if (it == work[j].end() || w_[it->second] == T{}) continue;
        const std::size_t mark =
            (work[j].size() - 1) * (colRows[j].size() - 1);
        if (mark > bestMark) continue;
        const Real mag = std::abs(w_[it->second]);
        if (mark == bestMark && mag <= bestMag) continue;
        if (mag < opts_.pivotThreshold * columnMax(j)) continue;
        bestR = bestC = j;
        bestMark = mark;
        bestMag = mag;
      }
    }
    if (bestR == n_) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (!colActive[j]) continue;
        const Real cmax = columnMax(j);
        if (cmax == 0) continue;
        for (std::size_t r : colRows[j]) {
          const T v = w_[work[r].at(j)];
          const Real mag = std::abs(v);
          if (mag < opts_.pivotThreshold * cmax) continue;
          const std::size_t mark =
              (work[r].size() - 1) * (colRows[j].size() - 1);
          if (mark < bestMark || (mark == bestMark && mag > bestMag)) {
            bestR = r;
            bestC = j;
            bestMark = mark;
            bestMag = mag;
          }
        }
      }
    }
    if (bestR == n_) failNumerical("SymbolicLU: matrix is singular");

    const std::size_t pr = bestR, pc = bestC;
    const std::uint32_t pslot = work[pr].at(pc);
    const T p = w_[pslot];
    pivRow_[k] = static_cast<std::uint32_t>(pr);
    pivCol_[k] = static_cast<std::uint32_t>(pc);
    pivSlot_[k] = pslot;
    pivVal_[k] = p;

    // Record the U row (pivot entry excluded) and detach the pivot row.
    for (const auto& [c, slot] : work[pr]) {
      colRows[c].erase(pr);
      if (c == pc) continue;
      uCol_.push_back(static_cast<std::uint32_t>(c));
      uSlot_.push_back(slot);
      uVal_.push_back(w_[slot]);
    }
    uPtr_[k + 1] = uVal_.size();

    // Eliminate below the pivot, recording L entries and the flattened
    // (target -= m·source) program. The numeric update runs here too so
    // later pivot choices see the true partial values.
    const std::size_t u0 = uPtr_[k], u1 = uPtr_[k + 1];
    std::vector<std::size_t> below(colRows[pc].begin(), colRows[pc].end());
    for (std::size_t i : below) {
      const std::uint32_t numSlot = work[i].at(pc);
      const T m = w_[numSlot] / p;
      lRow_.push_back(static_cast<std::uint32_t>(i));
      lSlot_.push_back(numSlot);
      lVal_.push_back(m);
      work[i].erase(pc);
      for (std::size_t q = u0; q < u1; ++q) {
        const std::size_t c = uCol_[q];
        auto [it, inserted] =
            work[i].try_emplace(c, static_cast<std::uint32_t>(w_.size()));
        if (inserted) {
          w_.push_back(T{});
          colRows[c].insert(i);
        }
        w_[it->second] -= m * w_[uSlot_[q]];
        updTarget_.push_back(it->second);
      }
    }
    lPtr_[k + 1] = lVal_.size();
    colRows[pc].clear();
    work[pr].clear();
    rowActive[pr] = 0;
    colActive[pc] = 0;
  }

  analyzed_ = true;
}

// Pure numeric pass: zero the workspace, scatter the new values, replay the
// recorded flop sequence. Returns false when the pivots recorded at
// analysis time are no longer numerically acceptable for these values.
template <class T>
bool SymbolicLU<T>::replay(const T* vals, std::size_t nvals) {
  RFIC_REQUIRE(nvals == nnz_, "SymbolicLU::refactor value count mismatch");
  w_.assign(w_.size(), T{});  // rt: allow(rt-alloc) same-size overwrite of
  // the analysis-sized slot workspace — never reallocates
  Real maxIn = 0;
  for (std::size_t p = 0; p < nnz_; ++p) {
    w_[p] = vals[p];
    maxIn = std::max(maxIn, std::abs(vals[p]));
  }
  if (!(maxIn > 0) || !std::isfinite(maxIn)) return false;
  const Real floor = opts_.pivotFloor * maxIn;
  const Real cap = opts_.growthLimit * maxIn;

  Real maxU = 0;
  std::size_t up = 0;  // cursor into updTarget_
  for (std::size_t k = 0; k < n_; ++k) {
    const T p = w_[pivSlot_[k]];
    const Real pm = std::abs(p);
    if (!(pm > floor)) return false;  // tiny, zero, or NaN pivot
    pivVal_[k] = p;
    const std::size_t u0 = uPtr_[k], u1 = uPtr_[k + 1];
    for (std::size_t q = u0; q < u1; ++q) {
      const T u = w_[uSlot_[q]];
      uVal_[q] = u;
      maxU = std::max(maxU, std::abs(u));
    }
    maxU = std::max(maxU, pm);
    if (!(maxU <= cap)) return false;  // growth or non-finite
    const std::size_t ulen = u1 - u0;
    for (std::size_t li = lPtr_[k]; li < lPtr_[k + 1]; ++li) {
      const T m = w_[lSlot_[li]] / p;
      lVal_[li] = m;
      if (m == T{}) {
        up += ulen;
        continue;
      }
      for (std::size_t q = u0; q < u1; ++q)
        w_[updTarget_[up++]] -= m * w_[uSlot_[q]];
    }
  }
  return true;
}

template <class T>
RFIC_REALTIME diag::SolverStatus SymbolicLU<T>::refactor(
    const std::vector<T>& values) {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::refactor before factor");
  // factor-repivot fault point: pretend the replayed pivots went bad so the
  // fresh-analysis fallback below runs (and callers see Repivoted).
  const bool forceRepivot =
      diag::FaultInjector::global().fire(diag::FaultPoint::FactorRepivot);
  if (!forceRepivot && replay(values.data(), values.size()))
    return diag::SolverStatus::Converged;
  // Pivot growth (or a sign/topology change in the values) invalidated the
  // recorded pivot order — redo the full analysis with fresh pivots.
  analyzeFromValues(values.data());  // rt: allow(rt-alloc) cold Repivoted
  // fallback — runs only when the recorded pivots went numerically bad;
  // callers observe it through the returned status and perf counters
  return diag::SolverStatus::Repivoted;
}

template <class T>
diag::SolverStatus SymbolicLU<T>::refactor(const CSR<T>& a) {
  RFIC_REQUIRE(a.nnz() == nnz_ && a.rows() == n_,
               "SymbolicLU::refactor pattern mismatch");
  return refactor(a.values());
}

template <class T>
Vec<T> SymbolicLU<T>::solve(const Vec<T>& b) const {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::solve before factor");
  RFIC_REQUIRE(b.size() == n_, "SymbolicLU::solve size mismatch");
  // Forward: replay the elimination on the right-hand side.
  Vec<T> y = b;
  Vec<T> z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const T zk = y[pivRow_[k]];
    z[k] = zk;
    if (zk == T{}) continue;
    for (std::size_t q = lPtr_[k]; q < lPtr_[k + 1]; ++q)
      y[lRow_[q]] -= lVal_[q] * zk;
  }
  // Backward: solve U in elimination order, scatter by the column perm.
  Vec<T> x(n_);
  for (std::size_t k = n_; k-- > 0;) {
    T s = z[k];
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q)
      s -= uVal_[q] * x[uCol_[q]];
    x[pivCol_[k]] = s / pivVal_[k];
  }
  return x;
}

template <class T>
RFIC_REALTIME void SymbolicLU<T>::solve(const Vec<T>& b, Vec<T>& x,
                                        Vec<T>& scratchY,
                                        Vec<T>& scratchZ) const {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::solve before factor");
  RFIC_REQUIRE(b.size() == n_, "SymbolicLU::solve size mismatch");
  // Zero-allocation variant for hot loops: the scratch vectors (and x)
  // grow on first use and are reused verbatim afterwards.
  scratchY.resize(n_);  // rt: allow(rt-alloc) grow-once caller scratch
  scratchZ.resize(n_);  // rt: allow(rt-alloc) grow-once caller scratch
  x.resize(n_);         // rt: allow(rt-alloc) grow-once caller solution
  Vec<T>& y = scratchY;
  Vec<T>& z = scratchZ;
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[i];
  for (std::size_t k = 0; k < n_; ++k) {
    const T zk = y[pivRow_[k]];
    z[k] = zk;
    if (zk == T{}) continue;
    for (std::size_t q = lPtr_[k]; q < lPtr_[k + 1]; ++q)
      y[lRow_[q]] -= lVal_[q] * zk;
  }
  for (std::size_t k = n_; k-- > 0;) {
    T s = z[k];
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q)
      s -= uVal_[q] * x[uCol_[q]];
    x[pivCol_[k]] = s / pivVal_[k];
  }
}

template class SymbolicLU<Real>;
template class SymbolicLU<Complex>;

}  // namespace rfic::sparse
