#include "sparse/symbolic_lu.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "diag/resilience.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::sparse {

namespace {

constexpr std::uint32_t kNoSlot = 0xffffffffu;

// Lock-free running max of a non-negative Real shared by the parallel
// replay lanes. Non-negative IEEE doubles order the same as their bit
// patterns, so a CAS-max on the bits is a CAS-max on the values (the same
// trick perf::Counters::noteMemPeak uses for its gauge).
void casMaxNonneg(std::uint64_t& bits, Real v) {
  const std::uint64_t nb = std::bit_cast<std::uint64_t>(v);
  std::atomic_ref<std::uint64_t> ref(bits);
  std::uint64_t cur = ref.load(std::memory_order_relaxed);
  while (nb > cur &&
         !ref.compare_exchange_weak(cur, nb, std::memory_order_relaxed)) {
  }
}

}  // namespace

template <class T>
SymbolicLU<T>::SymbolicLU(const CSR<T>& a, const Options& opts) {
  factor(a, opts);
}

template <class T>
void SymbolicLU<T>::factor(const CSR<T>& a, const Options& opts) {
  RFIC_REQUIRE(a.rows() == a.cols(), "SymbolicLU: square matrix required");
  opts_ = opts;
  n_ = a.rows();
  nnz_ = a.nnz();
  aRowPtr_ = a.rowPtr();
  aColIdx_.assign(a.colIdx().begin(), a.colIdx().end());
  colOrder_.clear();
  resolved_ = resolveOrdering(opts.ordering);
  if (resolved_ == Ordering::Amd) {
    const perf::Timer timer;
    colOrder_ = amdOrder(n_, aRowPtr_, aColIdx_);
    perf::global().addOrdering(timer.ns());
  }
  analyzeFromValues(a.values().data());
}

// Full elimination recording the slot-level update program for later
// replay. Pivot choice depends on the ordering: Natural runs the classic
// full Markowitz/threshold search (mirrors SparseLU, bit-for-bit the same
// pivots as before the ordering stage existed); Amd eliminates columns in
// the precomputed fill-reducing sequence and only chooses the pivot *row*
// numerically — threshold first, then the shortest active row (the
// Markowitz count with the column fixed), ties to the larger magnitude.
template <class T>
void SymbolicLU<T>::analyzeFromValues(const T* vals) {
  analyzed_ = false;

  // Dynamic structure: per-row map col -> workspace slot. Slots [0, nnz_)
  // are the input CSR positions in order; fill-in appends.
  std::vector<std::unordered_map<std::size_t, std::uint32_t>> work(n_);
  std::vector<std::unordered_set<std::size_t>> colRows(n_);
  // Slot of each (i, i): turns the natural diagonal scan's per-candidate
  // hash lookup into an array read (same pivot choices — the cache is
  // consulted only while row i and column i are both still active, where
  // it agrees with work[i].find(i) exactly).
  std::vector<std::uint32_t> diagSlot(n_, kNoSlot);
  w_.assign(nnz_, T{});
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t p = aRowPtr_[r]; p < aRowPtr_[r + 1]; ++p) {
      const std::size_t c = aColIdx_[p];
      const auto [it, inserted] =
          work[r].try_emplace(c, static_cast<std::uint32_t>(p));
      RFIC_REQUIRE(inserted, "SymbolicLU: duplicate position in CSR");
      colRows[c].insert(r);
      if (c == r) diagSlot[r] = static_cast<std::uint32_t>(p);
      w_[p] = vals[p];
    }
  }

  std::vector<char> rowActive(n_, 1), colActive(n_, 1);
  pivRow_.resize(n_);
  pivCol_.resize(n_);
  pivVal_.resize(n_);
  pivSlot_.resize(n_);
  lPtr_.assign(n_ + 1, 0);
  uPtr_.assign(n_ + 1, 0);
  stepUpdBase_.assign(n_, 0);
  lRow_.clear();
  uCol_.clear();
  lVal_.clear();
  uVal_.clear();
  lSlot_.clear();
  uSlot_.clear();
  updTarget_.clear();

  auto columnMax = [&](std::size_t c) {
    Real m = 0;
    for (std::size_t r : colRows[c])
      m = std::max(m, std::abs(w_[work[r].at(c)]));
    return m;
  };

  for (std::size_t k = 0; k < n_; ++k) {
    // --- Pivot selection.
    std::size_t bestR = n_, bestC = n_;

    if (!colOrder_.empty()) {
      // Pre-ordered column: only the row is a numeric decision.
      const std::size_t pc = colOrder_[k];
      const Real cmax = columnMax(pc);
      if (cmax > 0) {
        bestC = pc;
        if (opts_.preferDiagonal && rowActive[pc] &&
            diagSlot[pc] != kNoSlot) {
          const Real mag = std::abs(w_[diagSlot[pc]]);
          if (mag > 0 && mag >= opts_.pivotThreshold * cmax) bestR = pc;
        }
        if (bestR == n_) {
          std::size_t bestLen = std::numeric_limits<std::size_t>::max();
          Real bestMag = 0;
          for (std::size_t r : colRows[pc]) {
            const Real mag = std::abs(w_[work[r].at(pc)]);
            if (mag < opts_.pivotThreshold * cmax) continue;
            const std::size_t len = work[r].size();
            if (len < bestLen || (len == bestLen && mag > bestMag)) {
              bestR = r;
              bestLen = len;
              bestMag = mag;
            }
          }
        }
      }
      if (bestR == n_)
        failNumerical("SymbolicLU: matrix is singular");
    } else {
      // Natural: minimize the Markowitz product among entries passing the
      // relative threshold (same strategy as SparseLU).
      std::size_t bestMark = std::numeric_limits<std::size_t>::max();
      Real bestMag = 0;

      if (opts_.preferDiagonal) {
        for (std::size_t j = 0; j < n_; ++j) {
          if (!colActive[j] || !rowActive[j]) continue;
          const std::uint32_t ds = diagSlot[j];
          if (ds == kNoSlot || w_[ds] == T{}) continue;
          const std::size_t mark =
              (work[j].size() - 1) * (colRows[j].size() - 1);
          if (mark > bestMark) continue;
          const Real mag = std::abs(w_[ds]);
          if (mark == bestMark && mag <= bestMag) continue;
          if (mag < opts_.pivotThreshold * columnMax(j)) continue;
          bestR = bestC = j;
          bestMark = mark;
          bestMag = mag;
        }
      }
      if (bestR == n_) {
        for (std::size_t j = 0; j < n_; ++j) {
          if (!colActive[j]) continue;
          const Real cmax = columnMax(j);
          if (cmax == 0) continue;
          for (std::size_t r : colRows[j]) {
            const T v = w_[work[r].at(j)];
            const Real mag = std::abs(v);
            if (mag < opts_.pivotThreshold * cmax) continue;
            const std::size_t mark =
                (work[r].size() - 1) * (colRows[j].size() - 1);
            if (mark < bestMark || (mark == bestMark && mag > bestMag)) {
              bestR = r;
              bestC = j;
              bestMark = mark;
              bestMag = mag;
            }
          }
        }
      }
      if (bestR == n_) failNumerical("SymbolicLU: matrix is singular");
    }

    const std::size_t pr = bestR, pc = bestC;
    const std::uint32_t pslot = work[pr].at(pc);
    const T p = w_[pslot];
    pivRow_[k] = static_cast<std::uint32_t>(pr);
    pivCol_[k] = static_cast<std::uint32_t>(pc);
    pivSlot_[k] = pslot;
    pivVal_[k] = p;

    // Record the U row (pivot entry excluded) and detach the pivot row.
    for (const auto& [c, slot] : work[pr]) {
      colRows[c].erase(pr);
      if (c == pc) continue;
      uCol_.push_back(static_cast<std::uint32_t>(c));
      uSlot_.push_back(slot);
      uVal_.push_back(w_[slot]);
    }
    uPtr_[k + 1] = uVal_.size();
    stepUpdBase_[k] = updTarget_.size();

    // Eliminate below the pivot, recording L entries and the flattened
    // (target -= m·source) program. The numeric update runs here too so
    // later pivot choices see the true partial values.
    const std::size_t u0 = uPtr_[k], u1 = uPtr_[k + 1];
    std::vector<std::size_t> below(colRows[pc].begin(), colRows[pc].end());
    for (std::size_t i : below) {
      const std::uint32_t numSlot = work[i].at(pc);
      const T m = w_[numSlot] / p;
      lRow_.push_back(static_cast<std::uint32_t>(i));
      lSlot_.push_back(numSlot);
      lVal_.push_back(m);
      work[i].erase(pc);
      for (std::size_t q = u0; q < u1; ++q) {
        const std::size_t c = uCol_[q];
        auto [it, inserted] =
            work[i].try_emplace(c, static_cast<std::uint32_t>(w_.size()));
        if (inserted) {
          if (c == i) diagSlot[i] = it->second;  // diagonal fill-in
          w_.push_back(T{});
          colRows[c].insert(i);
        }
        w_[it->second] -= m * w_[uSlot_[q]];
        updTarget_.push_back(it->second);
      }
    }
    lPtr_[k + 1] = lVal_.size();
    colRows[pc].clear();
    work[pr].clear();
    rowActive[pr] = 0;
    colActive[pc] = 0;
  }

  buildLevels();
  analyzed_ = true;
  perf::global().noteFactorFill(factorNnz());
  perf::global().noteRefactorLevels(levelCount());
}

// Partition the recorded program into elimination-dependency levels.
// Greedy in step order: a step's level is one past the deepest level that
// wrote a slot it reads (RAW), or read/wrote a slot it updates (WAR/WAW).
// Two consequences, both load-bearing for the parallel replay:
//  * steps sharing a level touch pairwise-disjoint {written} ∩ {touched}
//    slots, so any execution order — hence any thread count and any
//    chunking — produces bitwise-identical results;
//  * for every slot, the serial step order and the level order agree, so
//    the parallel replay is bitwise identical to the serial one.
template <class T>
void SymbolicLU<T>::buildLevels() {
  const std::size_t nslots = w_.size();
  std::vector<std::uint32_t> readLvl(nslots, 0), writeLvl(nslots, 0);
  std::vector<std::uint32_t> stepLvl(n_, 0);
  std::uint32_t maxLvl = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    std::uint32_t lvl = 0;
    const auto dependRead = [&](std::uint32_t s) {
      if (writeLvl[s] > lvl) lvl = writeLvl[s];
    };
    dependRead(pivSlot_[k]);
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q)
      dependRead(uSlot_[q]);
    for (std::size_t li = lPtr_[k]; li < lPtr_[k + 1]; ++li)
      dependRead(lSlot_[li]);
    const std::size_t ulen = uPtr_[k + 1] - uPtr_[k];
    const std::size_t t0 = stepUpdBase_[k];
    const std::size_t t1 = t0 + ulen * (lPtr_[k + 1] - lPtr_[k]);
    for (std::size_t t = t0; t < t1; ++t) {
      const std::uint32_t s = updTarget_[t];
      if (writeLvl[s] > lvl) lvl = writeLvl[s];
      if (readLvl[s] > lvl) lvl = readLvl[s];
    }
    ++lvl;
    stepLvl[k] = lvl;
    if (lvl > maxLvl) maxLvl = lvl;
    const auto noteRead = [&](std::uint32_t s) {
      if (lvl > readLvl[s]) readLvl[s] = lvl;
    };
    noteRead(pivSlot_[k]);
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q) noteRead(uSlot_[q]);
    for (std::size_t li = lPtr_[k]; li < lPtr_[k + 1]; ++li)
      noteRead(lSlot_[li]);
    for (std::size_t t = t0; t < t1; ++t) {
      const std::uint32_t s = updTarget_[t];
      if (lvl > writeLvl[s]) writeLvl[s] = lvl;
    }
  }

  // Counting sort by level, step order preserved within each level.
  levelPtr_.assign(static_cast<std::size_t>(maxLvl) + 1, 0);
  for (std::size_t k = 0; k < n_; ++k) ++levelPtr_[stepLvl[k]];
  for (std::size_t b = 1; b <= maxLvl; ++b) levelPtr_[b] += levelPtr_[b - 1];
  // levelPtr_[b] is now the *end* of level b (1-based); the exclusive
  // prefix in slot b−1 is its start, so the final layout is the usual
  // [levelPtr_[b], levelPtr_[b+1]) with levelPtr_[0] == 0.
  stepOrder_.resize(n_);
  std::vector<std::size_t> cursor(levelPtr_.begin(), levelPtr_.end() - 1);
  for (std::size_t k = 0; k < n_; ++k)
    stepOrder_[cursor[stepLvl[k] - 1]++] = static_cast<std::uint32_t>(k);

  // Charge the schedule's footprint against the job's byte budget the same
  // grow-once way MnaWorkspace charges its value arrays.
  const std::uint64_t bytes = stepOrder_.size() * sizeof(std::uint32_t) +
                              levelPtr_.size() * sizeof(std::size_t) +
                              stepUpdBase_.size() * sizeof(std::size_t);
  if (bytes > levelBytesCharged_) {
    diag::memCharge(bytes - levelBytesCharged_);
    levelBytesCharged_ = bytes;
  }
}

// Pure numeric pass: zero the workspace, scatter the new values, replay the
// recorded flop sequence. Returns false when the pivots recorded at
// analysis time are no longer numerically acceptable for these values.
template <class T>
bool SymbolicLU<T>::replay(const T* vals, std::size_t nvals) {
  RFIC_REQUIRE(nvals == nnz_, "SymbolicLU::refactor value count mismatch");
  w_.assign(w_.size(), T{});  // rt: allow(rt-alloc) same-size overwrite of
  // the analysis-sized slot workspace — never reallocates
  Real maxIn = 0;
  for (std::size_t p = 0; p < nnz_; ++p) {
    w_[p] = vals[p];
    maxIn = std::max(maxIn, std::abs(vals[p]));
  }
  if (!(maxIn > 0) || !std::isfinite(maxIn)) return false;
  const Real floor = opts_.pivotFloor * maxIn;
  const Real cap = opts_.growthLimit * maxIn;

  Real maxU = 0;
  std::size_t up = 0;  // cursor into updTarget_
  for (std::size_t k = 0; k < n_; ++k) {
    const T p = w_[pivSlot_[k]];
    const Real pm = std::abs(p);
    if (!(pm > floor)) return false;  // tiny, zero, or NaN pivot
    pivVal_[k] = p;
    const std::size_t u0 = uPtr_[k], u1 = uPtr_[k + 1];
    for (std::size_t q = u0; q < u1; ++q) {
      const T u = w_[uSlot_[q]];
      uVal_[q] = u;
      maxU = std::max(maxU, std::abs(u));
    }
    maxU = std::max(maxU, pm);
    if (!(maxU <= cap)) return false;  // growth or non-finite
    const std::size_t ulen = u1 - u0;
    for (std::size_t li = lPtr_[k]; li < lPtr_[k + 1]; ++li) {
      const T m = w_[lSlot_[li]] / p;
      lVal_[li] = m;
      if (m == T{}) {
        up += ulen;
        continue;
      }
      for (std::size_t q = u0; q < u1; ++q)
        w_[updTarget_[up++]] -= m * w_[uSlot_[q]];
    }
  }
  return true;
}

// Level-scheduled parallel form of replay(): one parallelFor per level,
// guard checks at level boundaries. Accept/reject agrees with the serial
// replay — max|U| is monotone over the program, so any prefix exceeding
// the growth cap leaves the final max above it too, and a floor-failing
// pivot has the same value in both replays (its slot's writers all ran in
// earlier levels). On the accept path the results are bitwise identical to
// the serial replay for any pool size (see buildLevels). A failing step
// skips its divisions entirely, so the guard is FE-trap safe.
template <class T>
bool SymbolicLU<T>::replayParallel(const T* vals, std::size_t nvals) {
  RFIC_REQUIRE(nvals == nnz_, "SymbolicLU::refactor value count mismatch");
  w_.assign(w_.size(), T{});  // rt: allow(rt-alloc) same-size overwrite of
  // the analysis-sized slot workspace — never reallocates
  Real maxIn = 0;
  for (std::size_t p = 0; p < nnz_; ++p) {
    w_[p] = vals[p];
    maxIn = std::max(maxIn, std::abs(vals[p]));
  }
  if (!(maxIn > 0) || !std::isfinite(maxIn)) return false;
  const Real floor = opts_.pivotFloor * maxIn;
  const Real cap = opts_.growthLimit * maxIn;

  std::atomic_ref<std::uint64_t>(maxUBits_).store(0, std::memory_order_relaxed);
  std::atomic_ref<std::uint32_t>(replayBad_).store(0, std::memory_order_relaxed);

  const std::size_t lanes = pool_->concurrency();
  const std::size_t levels = levelCount();
  for (std::size_t b = 0; b < levels; ++b) {
    const std::size_t s0 = levelPtr_[b], s1 = levelPtr_[b + 1];
    const std::size_t grain =
        std::max<std::size_t>(1, (s1 - s0) / (4 * lanes));
    const auto runStep = [&](std::size_t idx) {
      const std::size_t k = stepOrder_[s0 + idx];
      const T p = w_[pivSlot_[k]];
      const Real pm = std::abs(p);
      if (!(pm > floor)) {  // tiny, zero, or NaN pivot
        std::atomic_ref<std::uint32_t>(replayBad_)
            .store(1, std::memory_order_relaxed);
        return;  // skip the divisions; the level-end check aborts
      }
      pivVal_[k] = p;
      Real localMax = pm;
      const std::size_t u0 = uPtr_[k], u1 = uPtr_[k + 1];
      for (std::size_t q = u0; q < u1; ++q) {
        const T u = w_[uSlot_[q]];
        uVal_[q] = u;
        localMax = std::max(localMax, std::abs(u));
      }
      casMaxNonneg(maxUBits_, localMax);
      const std::size_t ulen = u1 - u0;
      std::size_t up = stepUpdBase_[k];
      for (std::size_t li = lPtr_[k]; li < lPtr_[k + 1]; ++li) {
        const T m = w_[lSlot_[li]] / p;
        lVal_[li] = m;
        if (m == T{}) {
          up += ulen;
          continue;
        }
        for (std::size_t q = u0; q < u1; ++q)
          w_[updTarget_[up++]] -= m * w_[uSlot_[q]];
      }
    };
    pool_->parallelFor(s1 - s0, runStep, grain);
    if (std::atomic_ref<std::uint32_t>(replayBad_)
            .load(std::memory_order_relaxed) != 0)
      return false;
    const Real maxU =
        std::bit_cast<Real>(std::atomic_ref<std::uint64_t>(maxUBits_)
                                .load(std::memory_order_relaxed));
    if (!(maxU <= cap)) return false;  // growth or non-finite
  }
  return true;
}

template <class T>
bool SymbolicLU<T>::wantParallel() const {
  return pool_ != nullptr && levelCount() > 1 &&
         programFlops() >= opts_.parallelMinFlops && pool_->concurrency() > 1;
}

template <class T>
RFIC_REALTIME diag::SolverStatus SymbolicLU<T>::refactor(
    const std::vector<T>& values) {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::refactor before factor");
  // factor-repivot fault point: pretend the replayed pivots went bad so the
  // fresh-analysis fallback below runs (and callers see Repivoted).
  const bool forceRepivot =
      diag::FaultInjector::global().fire(diag::FaultPoint::FactorRepivot);
  bool ok = false;
  if (!forceRepivot) {
    if (wantParallel()) {
      const perf::Timer timer;
      ok = replayParallel(values.data(), values.size());
      perf::global().addRefactorParallel(timer.ns());
    } else {
      ok = replay(values.data(), values.size());
    }
  }
  if (ok) return diag::SolverStatus::Converged;
  // Pivot growth (or a sign/topology change in the values) invalidated the
  // recorded pivot order — redo the full analysis with fresh pivots.
  analyzeFromValues(values.data());  // rt: allow(rt-alloc) cold Repivoted
  // fallback — runs only when the recorded pivots went numerically bad;
  // callers observe it through the returned status and perf counters
  return diag::SolverStatus::Repivoted;
}

template <class T>
diag::SolverStatus SymbolicLU<T>::refactor(const CSR<T>& a) {
  RFIC_REQUIRE(a.nnz() == nnz_ && a.rows() == n_,
               "SymbolicLU::refactor pattern mismatch");
  return refactor(a.values());
}

template <class T>
Vec<T> SymbolicLU<T>::solve(const Vec<T>& b) const {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::solve before factor");
  RFIC_REQUIRE(b.size() == n_, "SymbolicLU::solve size mismatch");
  // Forward: replay the elimination on the right-hand side.
  Vec<T> y = b;
  Vec<T> z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const T zk = y[pivRow_[k]];
    z[k] = zk;
    if (zk == T{}) continue;
    for (std::size_t q = lPtr_[k]; q < lPtr_[k + 1]; ++q)
      y[lRow_[q]] -= lVal_[q] * zk;
  }
  // Backward: solve U in elimination order, scatter by the column perm.
  Vec<T> x(n_);
  for (std::size_t k = n_; k-- > 0;) {
    T s = z[k];
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q)
      s -= uVal_[q] * x[uCol_[q]];
    x[pivCol_[k]] = s / pivVal_[k];
  }
  return x;
}

template <class T>
RFIC_REALTIME void SymbolicLU<T>::solve(const Vec<T>& b, Vec<T>& x,
                                        Vec<T>& scratchY,
                                        Vec<T>& scratchZ) const {
  RFIC_REQUIRE(analyzed_, "SymbolicLU::solve before factor");
  RFIC_REQUIRE(b.size() == n_, "SymbolicLU::solve size mismatch");
  // Zero-allocation variant for hot loops: the scratch vectors (and x)
  // grow on first use and are reused verbatim afterwards.
  scratchY.resize(n_);  // rt: allow(rt-alloc) grow-once caller scratch
  scratchZ.resize(n_);  // rt: allow(rt-alloc) grow-once caller scratch
  x.resize(n_);         // rt: allow(rt-alloc) grow-once caller solution
  Vec<T>& y = scratchY;
  Vec<T>& z = scratchZ;
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[i];
  for (std::size_t k = 0; k < n_; ++k) {
    const T zk = y[pivRow_[k]];
    z[k] = zk;
    if (zk == T{}) continue;
    for (std::size_t q = lPtr_[k]; q < lPtr_[k + 1]; ++q)
      y[lRow_[q]] -= lVal_[q] * zk;
  }
  for (std::size_t k = n_; k-- > 0;) {
    T s = z[k];
    for (std::size_t q = uPtr_[k]; q < uPtr_[k + 1]; ++q)
      s -= uVal_[q] * x[uCol_[q]];
    x[pivCol_[k]] = s / pivVal_[k];
  }
}

template class SymbolicLU<Real>;
template class SymbolicLU<Complex>;

}  // namespace rfic::sparse
