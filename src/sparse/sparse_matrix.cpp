#include "sparse/sparse_matrix.hpp"

#include <algorithm>
#include <numeric>

namespace rfic::sparse {

template <class T>
CSR<T>::CSR(const Triplets<T>& t) : rows_(t.rows()), cols_(t.cols()) {
  // Count entries per row, prefix-sum, scatter, then merge duplicates
  // within each row after sorting by column.
  const auto& es = t.entries();
  std::vector<std::size_t> count(rows_ + 1, 0);
  for (const auto& e : es) ++count[e.row + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());

  std::vector<std::size_t> cols(es.size());
  std::vector<T> vals(es.size());
  {
    std::vector<std::size_t> next(count.begin(), count.end() - 1);
    for (const auto& e : es) {
      const std::size_t p = next[e.row]++;
      cols[p] = e.col;
      vals[p] = e.value;
    }
  }

  rowPtr_.assign(rows_ + 1, 0);
  colIdx_.reserve(es.size());
  val_.reserve(es.size());
  std::vector<std::size_t> order;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t lo = count[r], hi = count[r + 1];
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return cols[a] < cols[b];
    });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t p = order[k];
      if (rowPtr_[r + 1] > 0 && colIdx_.back() == cols[p]) {
        val_.back() += vals[p];
      } else {
        colIdx_.push_back(cols[p]);
        val_.push_back(vals[p]);
        ++rowPtr_[r + 1];
      }
    }
    rowPtr_[r + 1] += rowPtr_[r];
  }
}

template <class T>
void CSR<T>::multiply(const Vec<T>& x, Vec<T>& y) const {
  RFIC_REQUIRE(x.size() == cols_, "CSR::multiply size mismatch");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    T s{};
    for (std::size_t p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
      s += val_[p] * x[colIdx_[p]];
    y[r] = s;
  }
}

template <class T>
void CSR<T>::multiplyWith(const std::vector<T>& vals, const Vec<T>& x,
                          Vec<T>& y) const {
  RFIC_REQUIRE(vals.size() == val_.size(), "CSR::multiplyWith nnz mismatch");
  RFIC_REQUIRE(x.size() == cols_, "CSR::multiplyWith size mismatch");
  y.resize(rows_);  // rt: allow(rt-alloc) grow-once output sizing — a no-op
                    // when the caller reuses its vector
  for (std::size_t r = 0; r < rows_; ++r) {
    T s{};
    for (std::size_t p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
      s += vals[p] * x[colIdx_[p]];
    y[r] = s;
  }
}

template <class T>
Vec<T> CSR<T>::transposeMultiply(const Vec<T>& x) const {
  RFIC_REQUIRE(x.size() == rows_, "CSR::transposeMultiply size mismatch");
  Vec<T> y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const T xr = x[r];
    if (xr == T{}) continue;
    for (std::size_t p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
      y[colIdx_[p]] += val_[p] * xr;
  }
  return y;
}

template <class T>
Mat<T> CSR<T>::toDense() const {
  Mat<T> m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
      m(r, colIdx_[p]) += val_[p];
  return m;
}

template class CSR<Real>;
template class CSR<Complex>;

}  // namespace rfic::sparse
