#include "sparse/krylov.hpp"

#include <cmath>
#include <vector>

#include "diag/contracts.hpp"

namespace rfic::sparse {

using diag::SolverStatus;

namespace {

inline Real conjIfComplex(Real v) { return v; }
inline Complex conjIfComplex(const Complex& v) { return std::conj(v); }

template <class T>
void applyOrCopy(const LinearOperator<T>* prec, const Vec<T>& x, Vec<T>& y) {
  if (prec) {
    y.resize(x.size());
    prec->apply(x, y);
  } else {
    y = x;
  }
}

std::size_t stagnationWindowOf(const IterativeOptions& opts) {
  if (opts.stagnationWindow != 0) return opts.stagnationWindow;
  return std::max<std::size_t>(50, opts.maxIterations / 10);
}

// Shared entry hook: the krylov-stall fault point makes the next solver
// call report Stagnated without touching x, exercising every caller's
// stall-recovery path deterministically.
bool injectStall(IterativeResult& res) {
  if (diag::FaultInjector::global().fire(diag::FaultPoint::KrylovStall)) {
    res.status = SolverStatus::Stagnated;
    return true;
  }
  return false;
}

}  // namespace

template <class T>
IterativeResult gmres(const LinearOperator<T>& a, const Vec<T>& b, Vec<T>& x,
                      const LinearOperator<T>* rightPrec,
                      const IterativeOptions& opts, GmresWorkspace<T>* ws) {
  const std::size_t n = a.dim();
  RFIC_REQUIRE(b.size() == n, "gmres: rhs size mismatch");
  if (x.size() != n) x = Vec<T>(n);

  const Real bnorm = numeric::norm2(b);
  diag::checkFinite(bnorm, "gmres: rhs norm");
  IterativeResult res;
  if (injectStall(res)) return res;
  if (diag::exactlyZero(bnorm)) {
    x.setZero();
    res.converged = true;
    res.status = SolverStatus::Converged;
    return res;
  }
  const Real target = opts.tolerance * bnorm;

  const std::size_t m = std::max<std::size_t>(1, opts.restart);
  // All state lives in the (possibly caller-owned) workspace; every buffer
  // grows to its high-water mark once and is then reused, so repeated
  // calls with a persistent workspace never touch the allocator.
  GmresWorkspace<T> transient;
  GmresWorkspace<T>& W = ws ? *ws : transient;
  if (W.v.size() < m + 1) W.v.resize(m + 1);
  W.h.resize(m + 1, m);
  W.cs.resize(m);
  W.sn.resize(m);
  W.g.resize(m + 1);
  W.w.resize(n);
  W.tmp.resize(n);
  W.r.resize(n);
  W.du.resize(n);
  std::vector<Vec<T>>& v = W.v;  // Arnoldi basis
  numeric::Mat<T>& h = W.h;
  std::vector<T>& cs = W.cs;
  std::vector<T>& sn = W.sn;
  std::vector<T>& g = W.g;
  Vec<T>& w = W.w;
  Vec<T>& tmp = W.tmp;
  Vec<T>& r = W.r;

  std::size_t totalIt = 0;
  Real lastRestartResidual = -1;  // true residual at the previous restart
  while (totalIt < opts.maxIterations) {
    // r = b - A x  (A applied to the true x; preconditioning is right-sided)
    a.apply(x, w);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
    Real beta = numeric::norm2(r);
    res.residualNorm = beta;
    if (!diag::isFinite(beta)) {
      res.status = SolverStatus::Diverged;
      return res;
    }
    if (beta <= target) {
      res.converged = true;
      res.status = SolverStatus::Converged;
      return res;
    }
    // A restart cycle that produced no residual reduction at all means the
    // Krylov space is exhausted (singular or inconsistent system): x is
    // already the least-squares-optimal point reachable, and further
    // restarts would spin on identical iterates until the iteration cap.
    if (lastRestartResidual >= 0 && beta >= lastRestartResidual) {
      res.status = SolverStatus::Stagnated;
      return res;
    }
    lastRestartResidual = beta;

    v[0].resize(n);
    {
      const T inv = T(1.0 / beta);
      for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] * inv;
    }
    std::fill(g.begin(), g.end(), T{});
    g[0] = beta;
    h.setZero();

    std::size_t j = 0;
    for (; j < m && totalIt < opts.maxIterations; ++j, ++totalIt) {
      if (opts.budget) opts.budget->chargeKrylov();
      if (diag::budgetExceeded(opts.budget)) {
        res.status = SolverStatus::BudgetExceeded;
        return res;  // x holds the last restart's partial iterate
      }
      // w = A M^{-1} v_j
      applyOrCopy(rightPrec, v[j], tmp);
      a.apply(tmp, w);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= j; ++i) {
        const T hij = numeric::dot(v[i], w);
        h(i, j) = hij;
        numeric::axpy(-hij, v[i], w);
      }
      const Real wnorm = numeric::norm2(w);
      RFIC_CHECK_FINITE(wnorm, "gmres: Arnoldi vector norm");
      h(j + 1, j) = wnorm;
      if (wnorm > 0) {
        Vec<T>& vj1 = v[j + 1];
        vj1.resize(n);
        const T inv = T(1.0 / wnorm);
        for (std::size_t i = 0; i < n; ++i) vj1[i] = w[i] * inv;
      }
      // Apply accumulated Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const T t1 = h(i, j), t2 = h(i + 1, j);
        h(i, j) = conjIfComplex(cs[i]) * t1 + conjIfComplex(sn[i]) * t2;
        h(i + 1, j) = -sn[i] * t1 + cs[i] * t2;
      }
      // New rotation to annihilate h(j+1, j).
      const T f = h(j, j), gg = h(j + 1, j);
      const Real denom = std::sqrt(std::norm(Complex(f)) + std::norm(Complex(gg)));
      if (diag::exactlyZero(denom)) {
        cs[j] = T(1);
        sn[j] = T(0);
      } else {
        cs[j] = f / static_cast<T>(denom) ;
        sn[j] = gg / static_cast<T>(denom);
      }
      h(j, j) = conjIfComplex(cs[j]) * f + conjIfComplex(sn[j]) * gg;
      h(j + 1, j) = T(0);
      const T t = g[j];
      g[j] = conjIfComplex(cs[j]) * t;
      g[j + 1] = -sn[j] * t;
      res.residualNorm = std::abs(g[j + 1]);
      ++res.iterations;
      if (res.residualNorm <= target || wnorm == 0) {
        ++j;
        break;
      }
    }

    // Solve the small triangular system and update x. A zero diagonal in
    // the projected triangular factor means the Krylov space hit a
    // singular direction; skip that component rather than dividing by it.
    W.y.resize(j);
    std::vector<T>& y = W.y;
    for (std::size_t i = j; i-- > 0;) {
      T s = g[i];
      for (std::size_t k = i + 1; k < j; ++k) s -= h(i, k) * y[k];
      y[i] = diag::exactlyZero(h(i, i)) ? T(0) : s / h(i, i);
    }
    Vec<T>& du = W.du;
    du.setZero();
    for (std::size_t i = 0; i < j; ++i) numeric::axpy(y[i], v[i], du);
    applyOrCopy(rightPrec, du, tmp);
    x += tmp;

    if (res.residualNorm <= target) {
      // The Givens recurrence estimate |g(j+1)| is unreliable once a zero
      // appears on the projected Hessenberg diagonal (happy breakdown on a
      // singular system drives it to exactly 0 while the true residual is
      // stuck at the least-squares distance). Never declare convergence on
      // the estimate alone — confirm with a true residual.
      a.apply(x, w);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
      const Real trueRes = numeric::norm2(r);
      res.residualNorm = trueRes;
      if (trueRes <= target) {
        res.converged = true;
        res.status = SolverStatus::Converged;
        return res;
      }
      // Otherwise fall through: the restart loop re-enters and the
      // stagnation detector classifies a system that cannot improve.
    }
  }
  res.status = SolverStatus::MaxIterations;
  return res;
}

template <class T>
IterativeResult bicgstab(const LinearOperator<T>& a, const Vec<T>& b,
                         Vec<T>& x, const LinearOperator<T>* rightPrec,
                         const IterativeOptions& opts) {
  const std::size_t n = a.dim();
  RFIC_REQUIRE(b.size() == n, "bicgstab: rhs size mismatch");
  if (x.size() != n) x = Vec<T>(n);

  IterativeResult res;
  if (injectStall(res)) return res;
  const Real bnorm = numeric::norm2(b);
  diag::checkFinite(bnorm, "bicgstab: rhs norm");
  if (diag::exactlyZero(bnorm)) {
    x.setZero();
    res.converged = true;
    res.status = SolverStatus::Converged;
    return res;
  }
  const Real target = opts.tolerance * bnorm;

  Vec<T> r(n), rhat(n), p(n), vv(n), s(n), t(n), phat(n), shat(n);
  a.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  rhat = r;
  T rho = T(1), alpha = T(1), omega = T(1);
  p.setZero();
  vv.setZero();

  // Stagnation detector: the short BiCGSTAB recurrence has no restart
  // boundary to compare against, so track the best residual seen and bail
  // once `window` consecutive iterations fail to improve it.
  const std::size_t window = stagnationWindowOf(opts);
  Real bestRes = numeric::norm2(r);
  std::size_t sinceImprovement = 0;

  for (std::size_t it = 0; it < opts.maxIterations; ++it) {
    if (opts.budget) opts.budget->chargeKrylov();
    if (diag::budgetExceeded(opts.budget)) {
      res.status = SolverStatus::BudgetExceeded;
      return res;  // x holds the partial iterate
    }
    const T rhoNew = numeric::dot(rhat, r);
    if (std::abs(rhoNew) < 1e-300) {
      res.status = SolverStatus::Breakdown;  // rho ≈ 0: Lanczos breakdown
      return res;
    }
    if (it == 0) {
      p = r;
    } else {
      const T beta = (rhoNew / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i)
        p[i] = r[i] + beta * (p[i] - omega * vv[i]);
    }
    rho = rhoNew;
    applyOrCopy(rightPrec, p, phat);
    a.apply(phat, vv);
    const T rhatv = numeric::dot(rhat, vv);
    if (std::abs(rhatv) < 1e-300) {
      res.status = SolverStatus::Breakdown;  // ⟨r̂, A·p̂⟩ ≈ 0
      return res;
    }
    alpha = rho / rhatv;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * vv[i];
    res.residualNorm = numeric::norm2(s);
    ++res.iterations;
    if (!diag::isFinite(res.residualNorm)) {
      res.status = SolverStatus::Diverged;
      return res;
    }
    if (res.residualNorm <= target) {
      numeric::axpy(alpha, phat, x);
      res.converged = true;
      res.status = SolverStatus::Converged;
      return res;
    }
    applyOrCopy(rightPrec, s, shat);
    a.apply(shat, t);
    const Real tn = numeric::norm2(t);
    if (diag::exactlyZero(tn)) {
      res.status = SolverStatus::Breakdown;
      return res;
    }
    omega = numeric::dot(t, s) / static_cast<T>(tn * tn);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += alpha * phat[i] + omega * shat[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    res.residualNorm = numeric::norm2(r);
    if (!diag::isFinite(res.residualNorm)) {
      res.status = SolverStatus::Diverged;
      return res;
    }
    if (res.residualNorm <= target) {
      res.converged = true;
      res.status = SolverStatus::Converged;
      return res;
    }
    if (std::abs(omega) < 1e-300) {
      res.status = SolverStatus::Breakdown;  // omega ≈ 0: stabiliser stalled
      return res;
    }
    if (res.residualNorm < bestRes) {
      bestRes = res.residualNorm;
      sinceImprovement = 0;
    } else if (++sinceImprovement >= window) {
      res.status = SolverStatus::Stagnated;
      return res;
    }
  }
  res.status = SolverStatus::MaxIterations;
  return res;
}

IterativeResult conjugateGradient(const LinearOperator<Real>& a,
                                  const Vec<Real>& b, Vec<Real>& x,
                                  const IterativeOptions& opts) {
  const std::size_t n = a.dim();
  RFIC_REQUIRE(b.size() == n, "cg: rhs size mismatch");
  if (x.size() != n) x = Vec<Real>(n);

  IterativeResult res;
  if (injectStall(res)) return res;
  const Real bnorm = numeric::norm2(b);
  diag::checkFinite(bnorm, "cg: rhs norm");
  if (diag::exactlyZero(bnorm)) {
    x.setZero();
    res.converged = true;
    res.status = SolverStatus::Converged;
    return res;
  }
  const Real target = opts.tolerance * bnorm;

  Vec<Real> r(n), p(n), ap(n);
  a.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  p = r;
  Real rs = numeric::dot(r, r);
  const std::size_t window = stagnationWindowOf(opts);
  Real bestRes = std::sqrt(rs);
  std::size_t sinceImprovement = 0;
  for (std::size_t it = 0; it < opts.maxIterations; ++it) {
    if (opts.budget) opts.budget->chargeKrylov();
    if (diag::budgetExceeded(opts.budget)) {
      res.status = SolverStatus::BudgetExceeded;
      return res;
    }
    a.apply(p, ap);
    const Real pap = numeric::dot(p, ap);
    if (std::abs(pap) < 1e-300) {
      res.status = SolverStatus::Breakdown;  // ⟨p, A·p⟩ ≈ 0: A not SPD
      return res;
    }
    const Real alpha = rs / pap;
    numeric::axpy(alpha, p, x);
    numeric::axpy(-alpha, ap, r);
    const Real rsNew = numeric::dot(r, r);
    res.residualNorm = std::sqrt(rsNew);
    ++res.iterations;
    if (!diag::isFinite(res.residualNorm)) {
      res.status = SolverStatus::Diverged;
      return res;
    }
    if (res.residualNorm <= target) {
      res.converged = true;
      res.status = SolverStatus::Converged;
      return res;
    }
    if (res.residualNorm < bestRes) {
      bestRes = res.residualNorm;
      sinceImprovement = 0;
    } else if (++sinceImprovement >= window) {
      res.status = SolverStatus::Stagnated;
      return res;
    }
    p *= rsNew / rs;
    p += r;
    rs = rsNew;
  }
  res.status = SolverStatus::MaxIterations;
  return res;
}

template <class T>
JacobiPreconditioner<T>::JacobiPreconditioner(const CSR<T>& a)
    : invDiag_(a.rows(), T(1)) {
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t p = a.rowPtr()[r]; p < a.rowPtr()[r + 1]; ++p) {
      if (a.colIdx()[p] == r && !diag::exactlyZero(a.values()[p])) {
        invDiag_[r] = T(1) / a.values()[p];
        break;
      }
    }
  }
}

template <class T>
void JacobiPreconditioner<T>::apply(const Vec<T>& x, Vec<T>& y) const {
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = invDiag_[i] * x[i];
}

template IterativeResult gmres<Real>(const LinearOperator<Real>&,
                                     const Vec<Real>&, Vec<Real>&,
                                     const LinearOperator<Real>*,
                                     const IterativeOptions&,
                                     GmresWorkspace<Real>*);
template IterativeResult gmres<Complex>(const LinearOperator<Complex>&,
                                        const Vec<Complex>&, Vec<Complex>&,
                                        const LinearOperator<Complex>*,
                                        const IterativeOptions&,
                                        GmresWorkspace<Complex>*);
template IterativeResult bicgstab<Real>(const LinearOperator<Real>&,
                                        const Vec<Real>&, Vec<Real>&,
                                        const LinearOperator<Real>*,
                                        const IterativeOptions&);
template IterativeResult bicgstab<Complex>(const LinearOperator<Complex>&,
                                           const Vec<Complex>&, Vec<Complex>&,
                                           const LinearOperator<Complex>*,
                                           const IterativeOptions&);
template class JacobiPreconditioner<Real>;
template class JacobiPreconditioner<Complex>;

}  // namespace rfic::sparse
