#include "sparse/sparse_lu.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "perf/perf.hpp"

namespace rfic::sparse {

namespace {

template <class T>
std::vector<std::vector<std::pair<std::size_t, T>>> gatherRows(
    const Triplets<T>& a) {
  RFIC_REQUIRE(a.rows() == a.cols(), "SparseLU: square matrix required");
  std::vector<std::unordered_map<std::size_t, T>> maps(a.rows());
  for (const auto& e : a.entries()) maps[e.row][e.col] += e.value;
  std::vector<std::vector<std::pair<std::size_t, T>>> rows(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r)
    rows[r].assign(maps[r].begin(), maps[r].end());
  return rows;
}

template <class T>
std::vector<std::vector<std::pair<std::size_t, T>>> gatherRows(
    const CSR<T>& a) {
  RFIC_REQUIRE(a.rows() == a.cols(), "SparseLU: square matrix required");
  std::vector<std::vector<std::pair<std::size_t, T>>> rows(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t p = a.rowPtr()[r]; p < a.rowPtr()[r + 1]; ++p)
      rows[r].emplace_back(a.colIdx()[p], a.values()[p]);
  }
  return rows;
}

}  // namespace

template <class T>
SparseLU<T>::SparseLU(const Triplets<T>& a, const Options& opts) {
  factor(gatherRows(a), opts);
}

template <class T>
SparseLU<T>::SparseLU(const CSR<T>& a, const Options& opts) {
  factor(gatherRows(a), opts);
}

template <class T>
void SparseLU<T>::factor(
    std::vector<std::vector<std::pair<std::size_t, T>>> rowsIn,
    const Options& opts) {
  n_ = rowsIn.size();

  // Fill-reducing column pre-order (same stage the symbolic path uses, so
  // one-shot users — AC sweeps, S-parameters — scale the same way).
  std::vector<std::uint32_t> colOrder;
  if (resolveOrdering(opts.ordering) == Ordering::Amd && n_ > 0) {
    std::vector<std::size_t> rowPtr(n_ + 1, 0);
    std::vector<std::uint32_t> colIdx;
    std::size_t nnz = 0;
    for (const auto& row : rowsIn) nnz += row.size();
    colIdx.reserve(nnz);
    for (std::size_t r = 0; r < n_; ++r) {
      for (const auto& [c, v] : rowsIn[r])
        colIdx.push_back(static_cast<std::uint32_t>(c));
      rowPtr[r + 1] = colIdx.size();
    }
    const perf::Timer timer;
    colOrder = amdOrder(n_, rowPtr, colIdx);
    perf::global().addOrdering(timer.ns());
  }

  std::vector<std::unordered_map<std::size_t, T>> work(n_);
  std::vector<std::unordered_set<std::size_t>> colRows(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (const auto& [c, v] : rowsIn[r]) {
      work[r][c] = v;
      colRows[c].insert(r);
    }
    rowsIn[r].clear();
  }
  rowsIn.clear();

  std::vector<char> rowActive(n_, 1), colActive(n_, 1);
  pivRow_.resize(n_);
  pivCol_.resize(n_);
  pivVal_.resize(n_);
  lcol_.assign(n_, {});
  urow_.assign(n_, {});
  colStep_.assign(n_, 0);

  auto columnMax = [&](std::size_t c) {
    Real m = 0;
    for (std::size_t r : colRows[c])
      m = std::max(m, std::abs(work[r].at(c)));
    return m;
  };

  for (std::size_t k = 0; k < n_; ++k) {
    // --- Pivot selection: minimize Markowitz product among entries whose
    // magnitude passes the relative threshold against their column max.
    std::size_t bestR = n_, bestC = n_;
    std::size_t bestMark = std::numeric_limits<std::size_t>::max();
    Real bestMag = 0;

    if (!colOrder.empty()) {
      // Pre-ordered column: threshold row pivoting inside it, preferring
      // the diagonal, else the shortest acceptable row.
      const std::size_t pc = colOrder[k];
      const Real cmax = columnMax(pc);
      if (cmax == 0) failNumerical("SparseLU: matrix is singular");
      if (opts.preferDiagonal && rowActive[pc]) {
        const auto it = work[pc].find(pc);
        if (it != work[pc].end() && it->second != T{} &&
            std::abs(it->second) >= opts.pivotThreshold * cmax) {
          bestR = bestC = pc;
          bestMag = std::abs(it->second);
        }
      }
      if (bestR == n_) {
        std::size_t bestLen = std::numeric_limits<std::size_t>::max();
        for (std::size_t r : colRows[pc]) {
          const Real mag = std::abs(work[r].at(pc));
          if (mag < opts.pivotThreshold * cmax) continue;
          const std::size_t len = work[r].size();
          if (len < bestLen || (len == bestLen && mag > bestMag)) {
            bestR = r;
            bestC = pc;
            bestLen = len;
            bestMag = mag;
          }
        }
      }
      if (bestR == n_) failNumerical("SparseLU: matrix is singular");
    } else if (opts.preferDiagonal) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (!colActive[j] || !rowActive[j]) continue;
        const auto it = work[j].find(j);
        if (it == work[j].end() || it->second == T{}) continue;
        const std::size_t mark =
            (work[j].size() - 1) * (colRows[j].size() - 1);
        if (mark > bestMark) continue;
        const Real mag = std::abs(it->second);
        if (mark == bestMark && mag <= bestMag) continue;
        // Lazy threshold verification — only for improving candidates.
        if (mag < opts.pivotThreshold * columnMax(j)) continue;
        bestR = bestC = j;
        bestMark = mark;
        bestMag = mag;
      }
    }
    if (bestR == n_) {
      // No acceptable diagonal — full scan (rare for MNA systems).
      for (std::size_t j = 0; j < n_; ++j) {
        if (!colActive[j]) continue;
        const Real cmax = columnMax(j);
        if (cmax == 0) continue;
        for (std::size_t r : colRows[j]) {
          const T v = work[r].at(j);
          const Real mag = std::abs(v);
          if (mag < opts.pivotThreshold * cmax) continue;
          const std::size_t mark =
              (work[r].size() - 1) * (colRows[j].size() - 1);
          if (mark < bestMark || (mark == bestMark && mag > bestMag)) {
            bestR = r;
            bestC = j;
            bestMark = mark;
            bestMag = mag;
          }
        }
      }
    }
    if (bestR == n_) failNumerical("SparseLU: matrix is singular");

    const std::size_t pr = bestR, pc = bestC;
    const T p = work[pr].at(pc);
    pivRow_[k] = pr;
    pivCol_[k] = pc;
    pivVal_[k] = p;
    colStep_[pc] = k;

    // Record U row (excluding the pivot entry) and detach the pivot row.
    auto& urow = urow_[k];
    urow.reserve(work[pr].size() - 1);
    for (const auto& [c, v] : work[pr]) {
      colRows[c].erase(pr);
      if (c != pc) urow.emplace_back(c, v);
    }

    // Eliminate below the pivot.
    auto& lcol = lcol_[k];
    std::vector<std::size_t> below(colRows[pc].begin(), colRows[pc].end());
    lcol.reserve(below.size());
    for (std::size_t i : below) {
      const T m = work[i].at(pc) / p;
      lcol.emplace_back(i, m);
      work[i].erase(pc);
      for (const auto& [c, u] : urow) {
        auto [it, inserted] = work[i].try_emplace(c, T{});
        it->second -= m * u;
        if (inserted) colRows[c].insert(i);
      }
    }
    colRows[pc].clear();
    work[pr].clear();
    rowActive[pr] = 0;
    colActive[pc] = 0;
  }
}

template <class T>
std::size_t SparseLU<T>::factorNnz() const {
  std::size_t n = n_;  // pivots
  for (const auto& v : lcol_) n += v.size();
  for (const auto& v : urow_) n += v.size();
  return n;
}

template <class T>
Vec<T> SparseLU<T>::solve(const Vec<T>& b) const {
  RFIC_REQUIRE(b.size() == n_, "SparseLU::solve size mismatch");
  // Forward: replay the elimination on the right-hand side.
  Vec<T> y = b;
  Vec<T> z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const T zk = y[pivRow_[k]];
    z[k] = zk;
    if (zk == T{}) continue;
    for (const auto& [i, m] : lcol_[k]) y[i] -= m * zk;
  }
  // Backward: solve U (in elimination order) and scatter by column perm.
  Vec<T> x(n_);
  for (std::size_t k = n_; k-- > 0;) {
    T s = z[k];
    for (const auto& [c, u] : urow_[k]) s -= u * x[c];
    x[pivCol_[k]] = s / pivVal_[k];
  }
  return x;
}

template class SparseLU<Real>;
template class SparseLU<Complex>;

}  // namespace rfic::sparse
