// Sparse LU factorization with Markowitz pivoting and threshold partial
// pivoting — the classic SPICE strategy for MNA matrices, which are
// structurally symmetric, extremely sparse, and benefit enormously from
// fill-minimizing pivot order. Works for Real and Complex element types
// (the complex case serves AC analysis and HB preconditioner blocks).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/ordering.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::sparse {

/// Factor once, solve many times. Right-looking elimination on a dynamic
/// sparse structure; pivot choice minimizes the Markowitz product
/// (r−1)(c−1) among candidates passing a relative magnitude threshold.
template <class T>
class SparseLU {
 public:
  struct Options {
    Real pivotThreshold = 1e-3;  ///< relative threshold vs column max
    bool preferDiagonal = true;  ///< MNA matrices nearly always allow it
    /// Pivot pre-ordering: Natural keeps the full Markowitz search; Amd
    /// pre-orders columns (sparse/ordering.hpp) and restricts the numeric
    /// search to threshold row pivoting inside each column. Auto resolves
    /// to the process default / per-job override at factor time.
    Ordering ordering = Ordering::Auto;
  };

  SparseLU() = default;
  explicit SparseLU(const Triplets<T>& a, const Options& opts = {});
  explicit SparseLU(const CSR<T>& a, const Options& opts = {});

  std::size_t size() const { return n_; }
  /// Number of stored factor entries (fill-in included) — reported by the
  /// Table 1 bench.
  std::size_t factorNnz() const;

  Vec<T> solve(const Vec<T>& b) const;

 private:
  void factor(std::vector<std::vector<std::pair<std::size_t, T>>> rows,
              const Options& opts);

  std::size_t n_ = 0;
  // Elimination record, step k: pivot row/col (original indices), pivot
  // value, L multipliers (original row, m), U row entries (original col, u).
  std::vector<std::size_t> pivRow_, pivCol_;
  std::vector<T> pivVal_;
  std::vector<std::vector<std::pair<std::size_t, T>>> lcol_, urow_;
  std::vector<std::size_t> colStep_;  // original col -> elimination step
};

using RSparseLU = SparseLU<Real>;
using CSparseLU = SparseLU<Complex>;

extern template class SparseLU<Real>;
extern template class SparseLU<Complex>;

}  // namespace rfic::sparse
