// Sparse matrix storage: a triplet (COO) builder that accumulates duplicate
// entries — the natural target of MNA device stamping — and a compressed
// sparse row (CSR) form for matrix-vector products in Krylov solvers.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"

namespace rfic::sparse {

using numeric::Vec;
using numeric::Mat;

/// Coordinate-format builder. add() may be called repeatedly for the same
/// (row, col); entries sum on compression, matching MNA stamping semantics.
template <class T>
class Triplets {
 public:
  Triplets() = default;
  Triplets(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void add(std::size_t r, std::size_t c, T v) {
    RFIC_REQUIRE(r < rows_ && c < cols_, "Triplets::add out of range");
    entries_.push_back({r, c, v});
  }
  void clear() { entries_.clear(); }
  /// Re-dimension and empty, keeping the entry buffer's capacity — for
  /// callers that rebuild the same-sized system every iteration.
  void reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    entries_.clear();
  }

  struct Entry {
    std::size_t row, col;
    T value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Dense materialization (small systems, tests).
  Mat<T> toDense() const {
    Mat<T> m(rows_, cols_);
    for (const auto& e : entries_) m(e.row, e.col) += e.value;
    return m;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix with summed duplicates.
template <class T>
class CSR {
 public:
  CSR() = default;
  explicit CSR(const Triplets<T>& t);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  const std::vector<std::size_t>& rowPtr() const { return rowPtr_; }
  const std::vector<std::size_t>& colIdx() const { return colIdx_; }
  const std::vector<T>& values() const { return val_; }
  std::vector<T>& values() { return val_; }

  /// y = A x
  void multiply(const Vec<T>& x, Vec<T>& y) const;
  Vec<T> operator*(const Vec<T>& x) const {
    Vec<T> y(rows_);
    multiply(x, y);
    return y;
  }
  /// y = Aᵀ x (no conjugation)
  Vec<T> transposeMultiply(const Vec<T>& x) const;

  /// y = A x with this pattern but an external value array — lets many
  /// matrices share one CSR structure (e.g. per-sample HB Jacobians that
  /// all stamp the same circuit topology).
  void multiplyWith(const std::vector<T>& vals, const Vec<T>& x,
                    Vec<T>& y) const;

  Mat<T> toDense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> rowPtr_, colIdx_;
  std::vector<T> val_;
};

using RTriplets = Triplets<Real>;
using CTriplets = Triplets<Complex>;
using RCSR = CSR<Real>;
using CCSR = CSR<Complex>;

extern template class CSR<Real>;
extern template class CSR<Complex>;

}  // namespace rfic::sparse
