// RF performance measures computed from harmonic-balance solutions.
//
// The paper's introduction lists the specs a verification flow must
// predict: "noise figure, intercept point, and 1 dB compression point."
// This module derives them from the HB engine:
//  * conversion / voltage gain between harmonics,
//  * IP3 by two-tone intermodulation extrapolation,
//  * 1 dB compression by an amplitude sweep,
// and noise figure from the stationary noise analysis.
#pragma once

#include <functional>
#include <vector>

#include "analysis/noise.hpp"
#include "hb/harmonic_balance.hpp"

namespace rfic::hb {

/// Third-order intercept from one two-tone HB solution: with fundamental
/// amplitude A1 (at k = (1,0)) and IM3 amplitude A3 (at k = (−1,2) or
/// (2,−1)), the input-referred intercept in volts is
///   A_IP3 = A_drive · sqrt(A1 / A3),
/// valid while the IM3 product still rises 3 dB per input dB.
struct IP3Result {
  Real fundamentalAmp = 0;  ///< output fundamental [V]
  Real im3Amp = 0;          ///< output IM3 product [V]
  Real inputIP3 = 0;        ///< input-referred intercept [V amplitude]
  Real im3Dbc = 0;          ///< IM3 relative to the fundamental [dB]
};

IP3Result intercept3(const HBSolution& sol, std::size_t outputUnknown,
                     Real driveAmplitude);

/// 1 dB compression point: sweep the drive amplitude (rerunning HB via the
/// supplied solver callback), track the fundamental gain, and interpolate
/// the input amplitude where it has fallen 1 dB below the small-signal
/// gain. The callback receives the drive amplitude and returns the output
/// fundamental amplitude.
struct CompressionResult {
  bool found = false;
  Real inputP1dB = 0;       ///< input amplitude at 1 dB compression [V]
  Real smallSignalGain = 0; ///< V/V
  std::vector<Real> driveAmps, gains;  ///< the sweep itself
};

CompressionResult compressionPoint(
    const std::function<Real(Real driveAmp)>& fundamentalOut, Real ampStart,
    Real ampStop, std::size_t points);

/// Spot noise figure of a linear(ized) two-port driven from a source
/// resistance Rs at temperature 300 K:
///   F = total output noise PSD / (output noise PSD due to Rs alone).
/// `sourceLabelPrefix` selects the source-resistor contribution by its
/// device name (e.g. "Rs"). Returns NF in dB for each frequency.
std::vector<Real> noiseFigureDb(const analysis::NoiseResult& noise,
                                const std::string& sourceLabelPrefix);

}  // namespace rfic::hb
