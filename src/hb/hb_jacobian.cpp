#include "hb/hb_jacobian.hpp"

#include "hb/harmonic_balance.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::hb {

using numeric::CMat;
using numeric::RVec;

HBOperator::HBOperator(const HarmonicBalance& engine,
                       const sparse::RCSR& pattern,
                       const std::vector<std::vector<Real>>& gSampleVals,
                       const std::vector<std::vector<Real>>& cSampleVals)
    : eng_(engine), pat_(pattern), g_(gSampleVals), c_(cSampleVals) {
  RFIC_REQUIRE(g_.size() == eng_.msamp_ && c_.size() == eng_.msamp_,
               "HBOperator: sample Jacobian count mismatch");
}

std::size_t HBOperator::dim() const { return eng_.n_ * eng_.nc_; }

void HBOperator::apply(const RVec& y, RVec& out) const {
  // J·y = Γ G(t) Γ⁻¹ y + Ω Γ C(t) Γ⁻¹ y, evaluated sample by sample.
  CMat ySpec;
  eng_.unpackReal(y, ySpec);
  numeric::RMat ySamp;
  eng_.spectrumToTime(ySpec, ySamp);

  const std::size_t n = eng_.n_, ms = eng_.msamp_;
  numeric::RMat gy(n, ms), cy(n, ms);
  RVec xs(n), tmp(n);
  for (std::size_t s = 0; s < ms; ++s) {
    for (std::size_t u = 0; u < n; ++u) xs[u] = ySamp(u, s);
    pat_.multiplyWith(g_[s], xs, tmp);
    for (std::size_t u = 0; u < n; ++u) gy(u, s) = tmp[u];
    pat_.multiplyWith(c_[s], xs, tmp);
    for (std::size_t u = 0; u < n; ++u) cy(u, s) = tmp[u];
  }
  CMat gSpec, cSpec;
  eng_.timeToSpectrum(gy, gSpec);
  eng_.timeToSpectrum(cy, cSpec);
  CMat r(n, eng_.indices_.size());
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    const Complex jw(0.0, eng_.omega(j));
    for (std::size_t u = 0; u < n; ++u)
      r(u, j) = gSpec(u, j) + jw * cSpec(u, j);
  }
  eng_.packReal(r, out);
}

HBBlockPreconditioner::HBBlockPreconditioner(const HarmonicBalance& engine)
    : eng_(engine), blocks_(engine.indices_.size()) {}

HBBlockPreconditioner::HBBlockPreconditioner(const HarmonicBalance& engine,
                                             const sparse::RTriplets& gAvg,
                                             const sparse::RTriplets& cAvg)
    : HBBlockPreconditioner(engine) {
  update(gAvg, cAvg);
}

void HBBlockPreconditioner::update(const sparse::RTriplets& gAvg,
                                   const sparse::RTriplets& cAvg) {
  const std::size_t n = eng_.n_;
  // Pack Ḡ and C̄ into one complex CSR over their union pattern: the real
  // part accumulates g, the imaginary part c, so block κ's value array is
  // simply Complex(g_p, ω_κ·c_p).
  sparse::CTriplets packedT(n, n);
  for (const auto& en : gAvg.entries())
    packedT.add(en.row, en.col, Complex(en.value, 0.0));
  for (const auto& en : cAvg.entries())
    packedT.add(en.row, en.col, Complex(0.0, en.value));
  sparse::CCSR packed(packedT);

  const bool samePattern = havePattern_ &&
                           packed.rowPtr() == packed_.rowPtr() &&
                           packed.colIdx() == packed_.colIdx();
  packed_ = std::move(packed);
  if (!samePattern) {
    // A device started (or stopped) stamping a position — the recorded
    // block pivots no longer match; rebuild from scratch.
    blocks_.assign(eng_.indices_.size(), sparse::CSymbolicLU());
    havePattern_ = true;
  }

  const std::size_t nnz = packed_.nnz();
  const auto& pv = packed_.values();
  auto& pool = perf::ThreadPool::global();
  pool.parallelFor(blocks_.size(), [&](std::size_t j) {
    const Real w = eng_.omega(j);
    std::vector<Complex> vals(nnz);
    for (std::size_t p = 0; p < nnz; ++p)
      vals[p] = Complex(pv[p].real(), w * pv[p].imag());
    const perf::Timer timer;
    if (blocks_[j].analyzed()) {
      const auto st = blocks_[j].refactor(vals);
      if (st == diag::SolverStatus::Converged) {
        counters_.addRefactorization(timer.ns());
        perf::global().addRefactorization(timer.ns());
      } else {  // SolverStatus::Repivoted — a full factorization ran
        counters_.addFactorization(timer.ns());
        perf::global().addFactorization(timer.ns());
      }
    } else {
      sparse::CCSR block = packed_;
      block.values() = std::move(vals);
      blocks_[j].factor(block);
      counters_.addFactorization(timer.ns());
      perf::global().addFactorization(timer.ns());
    }
  });
}

std::size_t HBBlockPreconditioner::dim() const { return eng_.n_ * eng_.nc_; }

void HBBlockPreconditioner::apply(const RVec& r, RVec& z) const {
  CMat rSpec;
  eng_.unpackReal(r, rSpec);
  const std::size_t n = eng_.n_;
  CMat zSpec(n, eng_.indices_.size());
  numeric::CVec rhs(n);
  const perf::Timer timer;
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    for (std::size_t u = 0; u < n; ++u) rhs[u] = rSpec(u, j);
    const numeric::CVec sol = blocks_[j].solve(rhs);
    for (std::size_t u = 0; u < n; ++u) zSpec(u, j) = sol[u];
  }
  counters_.addSolve(timer.ns());
  perf::global().addSolve(timer.ns());
  // The DC block solve may produce a residual imaginary part from packing
  // round trips; packReal drops it, which is exactly the projection we want.
  eng_.packReal(zSpec, z);
}

}  // namespace rfic::hb
