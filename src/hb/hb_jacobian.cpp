#include "hb/hb_jacobian.hpp"

#include "hb/harmonic_balance.hpp"

namespace rfic::hb {

using numeric::CMat;
using numeric::RVec;

HBOperator::HBOperator(const HarmonicBalance& engine,
                       std::vector<sparse::RCSR> gSamples,
                       std::vector<sparse::RCSR> cSamples)
    : eng_(engine), g_(std::move(gSamples)), c_(std::move(cSamples)) {
  RFIC_REQUIRE(g_.size() == eng_.msamp_ && c_.size() == eng_.msamp_,
               "HBOperator: sample Jacobian count mismatch");
}

std::size_t HBOperator::dim() const { return eng_.n_ * eng_.nc_; }

void HBOperator::apply(const RVec& y, RVec& out) const {
  // J·y = Γ G(t) Γ⁻¹ y + Ω Γ C(t) Γ⁻¹ y, evaluated sample by sample.
  CMat ySpec;
  eng_.unpackReal(y, ySpec);
  numeric::RMat ySamp;
  eng_.spectrumToTime(ySpec, ySamp);

  const std::size_t n = eng_.n_, ms = eng_.msamp_;
  numeric::RMat gy(n, ms), cy(n, ms);
  RVec xs(n), tmp(n);
  for (std::size_t s = 0; s < ms; ++s) {
    for (std::size_t u = 0; u < n; ++u) xs[u] = ySamp(u, s);
    g_[s].multiply(xs, tmp);
    for (std::size_t u = 0; u < n; ++u) gy(u, s) = tmp[u];
    c_[s].multiply(xs, tmp);
    for (std::size_t u = 0; u < n; ++u) cy(u, s) = tmp[u];
  }
  CMat gSpec, cSpec;
  eng_.timeToSpectrum(gy, gSpec);
  eng_.timeToSpectrum(cy, cSpec);
  CMat r(n, eng_.indices_.size());
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    const Complex jw(0.0, eng_.omega(j));
    for (std::size_t u = 0; u < n; ++u)
      r(u, j) = gSpec(u, j) + jw * cSpec(u, j);
  }
  eng_.packReal(r, out);
}

HBBlockPreconditioner::HBBlockPreconditioner(const HarmonicBalance& engine,
                                             const sparse::RTriplets& gAvg,
                                             const sparse::RTriplets& cAvg)
    : eng_(engine) {
  const std::size_t n = eng_.n_;
  blocks_.reserve(eng_.indices_.size());
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    const Complex jw(0.0, eng_.omega(j));
    sparse::CTriplets a(n, n);
    for (const auto& en : gAvg.entries())
      a.add(en.row, en.col, Complex(en.value, 0.0));
    for (const auto& en : cAvg.entries())
      a.add(en.row, en.col, jw * en.value);
    blocks_.push_back(std::make_unique<sparse::CSparseLU>(a));
  }
}

std::size_t HBBlockPreconditioner::dim() const { return eng_.n_ * eng_.nc_; }

void HBBlockPreconditioner::apply(const RVec& r, RVec& z) const {
  CMat rSpec;
  eng_.unpackReal(r, rSpec);
  const std::size_t n = eng_.n_;
  CMat zSpec(n, eng_.indices_.size());
  numeric::CVec rhs(n);
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    for (std::size_t u = 0; u < n; ++u) rhs[u] = rSpec(u, j);
    const numeric::CVec sol = blocks_[j]->solve(rhs);
    for (std::size_t u = 0; u < n; ++u) zSpec(u, j) = sol[u];
  }
  // The DC block solve may produce a residual imaginary part from packing
  // round trips; packReal drops it, which is exactly the projection we want.
  eng_.packReal(zSpec, z);
}

}  // namespace rfic::hb
