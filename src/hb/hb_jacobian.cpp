#include "hb/hb_jacobian.hpp"

#include "hb/harmonic_balance.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::hb {

using numeric::CMat;
using numeric::RVec;

HBOperator::HBOperator(const HarmonicBalance& engine,
                       const sparse::RCSR& pattern,
                       const std::vector<std::vector<Real>>& gSampleVals,
                       const std::vector<std::vector<Real>>& cSampleVals)
    : eng_(engine), pat_(pattern), g_(gSampleVals), c_(cSampleVals) {
  RFIC_REQUIRE(g_.size() == eng_.msamp_ && c_.size() == eng_.msamp_,
               "HBOperator: sample Jacobian count mismatch");
}

std::size_t HBOperator::dim() const { return eng_.n_ * eng_.nc_; }

RFIC_REALTIME void HBOperator::apply(const RVec& y, RVec& out) const {
  // J·y = Γ G(t) Γ⁻¹ y + Ω Γ C(t) Γ⁻¹ y, evaluated sample by sample.
  // Every buffer lives in the engine workspace and every transform replays
  // a cached plan, so a steady-state application is allocation-free — this
  // is the inner loop of every GMRES iteration.
  auto& W = eng_.work_;
  eng_.unpackReal(y, W.ySpec);
  eng_.spectrumToTime(W.ySpec, W.ySamp);

  const std::size_t n = eng_.n_, ms = eng_.msamp_;
  W.need(W.gy, n, ms);
  W.need(W.cy, n, ms);
  // The per-sample G/C multiplies are independent; fan out over the pool
  // with per-thread gather/scatter scratch. The grain keeps dispatch
  // overhead negligible for small sample counts.
  perf::ThreadPool::global().parallelFor(
      ms,
      [&](std::size_t s) {
        thread_local RVec xs, tmp;
        xs.resize(n);   // rt: allow(rt-alloc) grow-once thread-local gather
                        // scratch; no-op at steady state (same n every call)
        tmp.resize(n);  // rt: allow(rt-alloc) grow-once thread-local scratch
        for (std::size_t u = 0; u < n; ++u) xs[u] = W.ySamp(u, s);
        pat_.multiplyWith(g_[s], xs, tmp);
        for (std::size_t u = 0; u < n; ++u) W.gy(u, s) = tmp[u];
        pat_.multiplyWith(c_[s], xs, tmp);
        for (std::size_t u = 0; u < n; ++u) W.cy(u, s) = tmp[u];
      },
      /*grain=*/64);
  eng_.timeToSpectrum(W.gy, W.gSpec);
  eng_.timeToSpectrum(W.cy, W.cSpec);
  W.need(W.rSpec, n, eng_.indices_.size());
  for (std::size_t j = 0; j < eng_.indices_.size(); ++j) {
    const Complex jw(0.0, eng_.omega(j));
    for (std::size_t u = 0; u < n; ++u)
      W.rSpec(u, j) = W.gSpec(u, j) + jw * W.cSpec(u, j);
  }
  eng_.packReal(W.rSpec, out);
}

HBBlockPreconditioner::HBBlockPreconditioner(const HarmonicBalance& engine)
    : eng_(engine), blocks_(engine.indices_.size()) {}

HBBlockPreconditioner::HBBlockPreconditioner(const HarmonicBalance& engine,
                                             const sparse::RTriplets& gAvg,
                                             const sparse::RTriplets& cAvg)
    : HBBlockPreconditioner(engine) {
  update(gAvg, cAvg);
}

void HBBlockPreconditioner::update(const sparse::RTriplets& gAvg,
                                   const sparse::RTriplets& cAvg) {
  const std::size_t n = eng_.n_;
  // Pack Ḡ and C̄ into one complex CSR over their union pattern: the real
  // part accumulates g, the imaginary part c, so block κ's value array is
  // simply Complex(g_p, ω_κ·c_p).
  sparse::CTriplets packedT(n, n);
  for (const auto& en : gAvg.entries())
    packedT.add(en.row, en.col, Complex(en.value, 0.0));
  for (const auto& en : cAvg.entries())
    packedT.add(en.row, en.col, Complex(0.0, en.value));
  sparse::CCSR packed(packedT);

  const bool samePattern = havePattern_ &&
                           packed.rowPtr() == packed_.rowPtr() &&
                           packed.colIdx() == packed_.colIdx();
  packed_ = std::move(packed);
  if (!samePattern) {
    // A device started (or stopped) stamping a position — the recorded
    // block pivots no longer match; rebuild from scratch.
    blocks_.assign(eng_.indices_.size(), sparse::CSymbolicLU());
    havePattern_ = true;
  }
  if (blockVals_.size() != blocks_.size()) blockVals_.resize(blocks_.size());

  const std::size_t nnz = packed_.nnz();
  const auto& pv = packed_.values();
  // Resolve the ordering on the calling thread: per-job ScopedOrderingOverride
  // is thread-local and would not be visible from the pool's workers.
  sparse::CSymbolicLU::Options luOpts;
  luOpts.ordering = sparse::effectiveOrdering();
  auto& pool = perf::ThreadPool::global();
  pool.parallelFor(blocks_.size(), [&](std::size_t j) {
    const Real w = eng_.omega(j);
    // Persistent per-block value array: after the first Newton iteration
    // this is a plain overwrite, not an allocation.
    std::vector<Complex>& vals = blockVals_[j];
    vals.resize(nnz);
    for (std::size_t p = 0; p < nnz; ++p)
      vals[p] = Complex(pv[p].real(), w * pv[p].imag());
    const perf::Timer timer;
    if (blocks_[j].analyzed()) {
      const auto st = blocks_[j].refactor(vals);
      if (st == diag::SolverStatus::Converged) {
        counters_.addRefactorization(timer.ns());
        perf::global().addRefactorization(timer.ns());
      } else {  // SolverStatus::Repivoted — a full factorization ran
        counters_.addFactorization(timer.ns());
        perf::global().addFactorization(timer.ns());
      }
    } else {
      sparse::CCSR block = packed_;
      block.values() = vals;
      blocks_[j].factor(block, luOpts);
      counters_.addFactorization(timer.ns());
      perf::global().addFactorization(timer.ns());
    }
  });
}

std::size_t HBBlockPreconditioner::dim() const { return eng_.n_ * eng_.nc_; }

RFIC_REALTIME void HBBlockPreconditioner::apply(const RVec& r, RVec& z) const {
  auto& W = eng_.work_;
  eng_.unpackReal(r, W.pcSpec);
  const std::size_t n = eng_.n_;
  const std::size_t nidx = eng_.indices_.size();
  W.need(W.pzSpec, n, nidx);
  const perf::Timer timer;
  // One independent (Ḡ + jω_κ C̄) solve per harmonic; each writes its own
  // pzSpec column. Per-thread scratch makes steady-state applications
  // allocation-free.
  perf::ThreadPool::global().parallelFor(nidx, [&](std::size_t j) {
    thread_local numeric::CVec rhs, sol, scratchY, scratchZ;
    rhs.resize(n);  // rt: allow(rt-alloc) grow-once thread-local rhs gather;
                    // no-op at steady state (same n every call)
    for (std::size_t u = 0; u < n; ++u) rhs[u] = W.pcSpec(u, j);
    blocks_[j].solve(rhs, sol, scratchY, scratchZ);
    for (std::size_t u = 0; u < n; ++u) W.pzSpec(u, j) = sol[u];
  });
  counters_.addSolve(timer.ns());
  perf::global().addSolve(timer.ns());
  // The DC block solve may produce a residual imaginary part from packing
  // round trips; packReal drops it, which is exactly the projection we want.
  eng_.packReal(W.pzSpec, z);
}

}  // namespace rfic::hb
