// Spectrum post-processing: dBc tables from HB solutions and windowed-FFT
// spectrum estimation from transient waveforms. Used to regenerate the
// Fig. 1 modulator spectrum and the HB-vs-transient dynamic-range
// comparison of Section 2.1.
#pragma once

#include <string>
#include <vector>

#include "hb/harmonic_balance.hpp"

namespace rfic::hb {

/// One spectral line of an output.
struct SpectralLine {
  Real freq = 0;       ///< Hz (non-negative)
  Real amplitude = 0;  ///< volts (peak) — DC carries the plain value
  Real dbc = 0;        ///< dB relative to the carrier line
  int k1 = 0, k2 = 0;  ///< harmonic indices
};

/// Extract the spectrum of unknown `u` from an HB solution, sorted by
/// frequency, with dBc referenced to the strongest non-DC line.
std::vector<SpectralLine> spectrumOf(const HBSolution& sol, std::size_t u);

/// Amplitude (volts peak) of unknown u at harmonic (k1, k2): |X| doubled
/// for non-DC lines to account for the conjugate pair.
Real lineAmplitude(const HBSolution& sol, std::size_t u, int k1, int k2 = 0);

/// 20·log10(a / ref), floored at -400 dB for zero amplitudes.
Real toDb(Real a, Real ref = 1.0);

/// Single-sided amplitude spectrum of uniformly sampled data via FFT with a
/// Hann window (amplitude-corrected). Returns (freq, amplitude) pairs up to
/// Nyquist. This is the "conventional transient analysis" measurement path
/// whose numerical noise floor hides the −78 dBc spur in the paper's
/// modulator example.
struct TransientSpectrum {
  std::vector<Real> freq;
  std::vector<Real> amplitude;
};
TransientSpectrum transientSpectrum(const std::vector<Real>& samples,
                                    Real sampleRate);

/// Amplitude of the spectral bin nearest `freq` (helper for comparisons).
Real amplitudeNear(const TransientSpectrum& sp, Real freq);

}  // namespace rfic::hb
