#include "hb/harmonic_balance.hpp"

#include <cmath>
#include <limits>

#include "circuit/mna_workspace.hpp"
#include "diag/contracts.hpp"
#include "fft/fft.hpp"
#include "fft/plan.hpp"
#include "hb/hb_jacobian.hpp"
#include "numeric/lu.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::hb {

using numeric::RMat;

// ------------------------------------------------------------- HBSolution

Complex HBSolution::at(std::size_t u, int k1, int k2) const {
  if (k2 < 0 || (k2 == 0 && k1 < 0)) return std::conj(at(u, -k1, -k2));
  for (std::size_t j = 0; j < indices.size(); ++j) {
    if (indices[j][0] == k1 && indices[j][1] == k2) return coeffs(u, j);
  }
  return {0.0, 0.0};
}

Real HBSolution::evaluate(std::size_t u, Real t1, Real t2) const {
  // indices[0] is DC by construction; all others count twice via conjugate
  // symmetry. Each tone combines with its own time variable — the bivariate
  // form x̂(t1, t2) of Section 2.2; the physical signal is x̂(t, t).
  Real v = coeffs(u, 0).real();
  for (std::size_t j = 1; j < indices.size(); ++j) {
    const Real phase = kTwoPi * (static_cast<Real>(indices[j][0]) * f1_ * t1 +
                                 static_cast<Real>(indices[j][1]) * f2_ * t2);
    const Complex e(std::cos(phase), std::sin(phase));
    v += 2.0 * (coeffs(u, j) * e).real();
  }
  return v;
}

// -------------------------------------------------------- HarmonicBalance

HarmonicBalance::HarmonicBalance(const MnaSystem& sys, std::vector<Tone> tones,
                                 HBOptions opts)
    : sys_(sys), tones_(std::move(tones)), opts_(std::move(opts)) {
  RFIC_REQUIRE(tones_.size() == 1 || tones_.size() == 2,
               "HarmonicBalance: one or two tones supported");
  for (const auto& t : tones_)
    RFIC_REQUIRE(t.freq > 0 && t.harmonics >= 1,
                 "HarmonicBalance: tones need freq > 0 and harmonics >= 1");
  n_ = sys_.dim();

  const std::size_t h1 = tones_[0].harmonics;
  m1_ = fft::nextPowerOfTwo(std::max<std::size_t>(opts_.oversample * h1, 2 * h1 + 2));
  if (dims() == 2) {
    const std::size_t h2 = tones_[1].harmonics;
    m2_ = fft::nextPowerOfTwo(std::max<std::size_t>(opts_.oversample * h2, 2 * h2 + 2));
  }
  msamp_ = m1_ * m2_;

  // Canonical retained set: DC first, then k2 = 0 row with k1 > 0, then all
  // k2 > 0 rows with full k1 range.
  indices_.push_back({0, 0});
  const int ih1 = static_cast<int>(h1);
  for (int k1 = 1; k1 <= ih1; ++k1) indices_.push_back({k1, 0});
  if (dims() == 2) {
    const int ih2 = static_cast<int>(tones_[1].harmonics);
    for (int k2 = 1; k2 <= ih2; ++k2)
      for (int k1 = -ih1; k1 <= ih1; ++k1) indices_.push_back({k1, k2});
  }
  nc_ = 1 + 2 * (indices_.size() - 1);

  // Fetch the spectral plans once: every transform this engine ever runs
  // replays these tables. rowPlan_ covers the m2 (tone-2) axis, colPlan_
  // the m1 (tone-1) axis of the bivariate grid.
  rowPlan_ = fft::PlanCache::global().get(m2_);
  colPlan_ = fft::PlanCache::global().get(m1_);
}

Real HarmonicBalance::omega(std::size_t idx) const {
  const auto& k = indices_[idx];
  Real f = static_cast<Real>(k[0]) * tones_[0].freq;
  if (dims() == 2) f += static_cast<Real>(k[1]) * tones_[1].freq;
  return kTwoPi * f;
}

std::pair<Real, Real> HarmonicBalance::sampleTimes(std::size_t s) const {
  const std::size_t a = s / m2_;
  const std::size_t b = s % m2_;
  const Real t1 = static_cast<Real>(a) /
                  (static_cast<Real>(m1_) * tones_[0].freq);
  const Real t2 = dims() == 2 ? static_cast<Real>(b) /
                                    (static_cast<Real>(m2_) * tones_[1].freq)
                              : t1;
  return {t1, t2};
}

void HarmonicBalance::spectrumToTime(const CMat& coeffs, RMat& samples) const {
  RFIC_CHECK_DIMS(coeffs.rows(), n_, "HB::spectrumToTime coeffs rows");
  RFIC_CHECK_DIMS(coeffs.cols(), indices_.size(),
                  "HB::spectrumToTime coeffs cols");
  RFIC_CHECK_FINITE(coeffs, "HB::spectrumToTime coeffs");
  work_.need(samples, n_, msamp_);
  work_.need(work_.grid, n_ * msamp_);
  const Real scale = static_cast<Real>(msamp_);
  // Each unknown owns a disjoint grid slice, so the per-unknown
  // scatter/transform/gather pipeline fans out across the pool; the grid2D
  // call below detects the nesting and runs its own sweep inline.
  perf::ThreadPool::global().parallelFor(n_, [&](std::size_t u) {
    Complex* grid = work_.grid.data() + u * msamp_;
    std::fill(grid, grid + msamp_, Complex{});
    for (std::size_t j = 0; j < indices_.size(); ++j) {
      const int k1 = indices_[j][0], k2 = indices_[j][1];
      const std::size_t a = static_cast<std::size_t>((k1 % static_cast<int>(m1_) + static_cast<int>(m1_))) % m1_;
      const std::size_t b = static_cast<std::size_t>((k2 % static_cast<int>(m2_) + static_cast<int>(m2_))) % m2_;
      grid[a * m2_ + b] += coeffs(u, j) * scale;
      if (j != 0) {
        const std::size_t am = (m1_ - a) % m1_;
        const std::size_t bm = (m2_ - b) % m2_;
        grid[am * m2_ + bm] += std::conj(coeffs(u, j)) * scale;
      }
    }
    fft::transformGrid2D(*rowPlan_, *colPlan_, grid, m1_, m2_, true,
                         &fftCounters_);
    for (std::size_t s = 0; s < msamp_; ++s) samples(u, s) = grid[s].real();
  });
}

void HarmonicBalance::timeToSpectrum(const RMat& samples, CMat& coeffs) const {
  RFIC_CHECK_DIMS(samples.rows(), n_, "HB::timeToSpectrum samples rows");
  RFIC_CHECK_DIMS(samples.cols(), msamp_, "HB::timeToSpectrum samples cols");
  RFIC_CHECK_FINITE(samples, "HB::timeToSpectrum samples");
  work_.need(coeffs, n_, indices_.size());
  work_.need(work_.grid, n_ * msamp_);
  const Real inv = 1.0 / static_cast<Real>(msamp_);
  perf::ThreadPool::global().parallelFor(n_, [&](std::size_t u) {
    Complex* grid = work_.grid.data() + u * msamp_;
    for (std::size_t s = 0; s < msamp_; ++s) grid[s] = samples(u, s);
    fft::transformGrid2D(*rowPlan_, *colPlan_, grid, m1_, m2_, false,
                         &fftCounters_);
    for (std::size_t j = 0; j < indices_.size(); ++j) {
      const int k1 = indices_[j][0], k2 = indices_[j][1];
      const std::size_t a = static_cast<std::size_t>((k1 % static_cast<int>(m1_) + static_cast<int>(m1_))) % m1_;
      const std::size_t b = static_cast<std::size_t>((k2 % static_cast<int>(m2_) + static_cast<int>(m2_))) % m2_;
      coeffs(u, j) = grid[a * m2_ + b] * inv;
    }
  });
}

void HarmonicBalance::packReal(const CMat& coeffs, RVec& v) const {
  v.resize(n_ * nc_);  // rt: allow(rt-alloc) grow-once — every caller
                       // passes a persistent workspace vector
  for (std::size_t u = 0; u < n_; ++u) {
    Real* base = v.data() + u * nc_;
    base[0] = coeffs(u, 0).real();
    for (std::size_t j = 1; j < indices_.size(); ++j) {
      base[1 + 2 * (j - 1)] = coeffs(u, j).real();
      base[2 + 2 * (j - 1)] = coeffs(u, j).imag();
    }
  }
}

void HarmonicBalance::unpackReal(const RVec& v, CMat& coeffs) const {
  RFIC_REQUIRE(v.size() == n_ * nc_, "HB::unpackReal size mismatch");
  work_.need(coeffs, n_, indices_.size());
  for (std::size_t u = 0; u < n_; ++u) {
    const Real* base = v.data() + u * nc_;
    coeffs(u, 0) = Complex(base[0], 0.0);
    for (std::size_t j = 1; j < indices_.size(); ++j)
      coeffs(u, j) = Complex(base[1 + 2 * (j - 1)], base[2 + 2 * (j - 1)]);
  }
}

HBSolution HarmonicBalance::solve(const RVec& dcOp) const {
  RFIC_REQUIRE(dcOp.size() == n_, "HB::solve: DC operating point size mismatch");

  // Resilience ladder. Rung 1 runs the caller's options as-is. Rung 2
  // re-attempts with a (deeper) source-amplitude ramp — the classic cure
  // for Newton divergence at full drive. Rung 3 escalates the linear
  // solver: exact dense Jacobian for small systems (the strongest
  // "preconditioner" there is), tightened longer-restart GMRES for large
  // ones. A tripped budget stops the ladder immediately; counters and
  // iteration totals accumulate across rungs.
  const auto fold = [](HBSolution& total, HBSolution&& next,
                       const char* strategy) {
    const std::size_t newton = total.newtonIterations + next.newtonIterations;
    const std::size_t gm = total.gmresIterations + next.gmresIterations;
    perf::Snapshot perf = total.perf;
    perf += next.perf;
    const std::size_t retries = total.retries + 1;
    total = std::move(next);
    total.newtonIterations = newton;
    total.gmresIterations = gm;
    total.perf = perf;
    total.retries = retries;
    total.strategy = strategy;
  };
  const auto escalate = [] {
    perf::global().addRetry();
    perf::global().addFallback();
  };

  HBSolution sol = solveAttempt(dcOp, opts_);
  sol.strategy = "base";
  if (sol.converged || sol.status == diag::SolverStatus::BudgetExceeded ||
      opts_.maxRetries < 1)
    return sol;

  HBOptions rampOpts = opts_;
  rampOpts.continuationSteps = std::max<std::size_t>(
      4, 4 * std::max<std::size_t>(1, opts_.continuationSteps));
  escalate();
  fold(sol, solveAttempt(dcOp, rampOpts), "source-ramp");
  sol.perf.retries += 1;
  sol.perf.fallbacks += 1;
  if (sol.converged || sol.status == diag::SolverStatus::BudgetExceeded ||
      opts_.maxRetries < 2)
    return sol;

  HBOptions escOpts = rampOpts;
  const char* strategy;
  if (!escOpts.useDirectSolver &&
      numRealUnknowns() <= opts_.directFallbackMaxUnknowns) {
    escOpts.useDirectSolver = true;
    strategy = "direct";
  } else {
    escOpts.gmres.tolerance *= 1e-2;
    escOpts.gmres.maxIterations *= 4;
    escOpts.gmres.restart =
        std::min(numRealUnknowns(), 2 * escOpts.gmres.restart);
    strategy = "gmres-tight";
  }
  escalate();
  fold(sol, solveAttempt(dcOp, escOpts), strategy);
  sol.perf.retries += 1;
  sol.perf.fallbacks += 1;
  return sol;
}

HBSolution HarmonicBalance::solveAttempt(const RVec& dcOp,
                                         const HBOptions& opts) const {
  // The engine workspace (work_) is handed between this Newton loop, the
  // GMRES operator, and the preconditioner without locks; the exclusive
  // scope turns a second concurrent solve on this instance into an
  // immediate structured error instead of silent corruption.
  const diag::ExclusiveContext::Scope exclusive(workCtx_,
                                                "HarmonicBalance::solve");
  HBSolution sol;
  sol.indices = indices_;
  sol.freqs.resize(indices_.size());
  for (std::size_t j = 0; j < indices_.size(); ++j)
    sol.freqs[j] = omega(j) / kTwoPi;
  sol.realUnknowns = n_ * nc_;
  sol.f1_ = tones_[0].freq;
  sol.f2_ = dims() == 2 ? tones_[1].freq : 0.0;

  // Spectral counters restart per attempt so the ladder's fold() can
  // accumulate per-rung snapshots without double counting.
  fftCounters_.reset();

  // Initial spectrum: DC slots carry the operating point.
  CMat coeffs(n_, indices_.size());
  for (std::size_t u = 0; u < n_; ++u) coeffs(u, 0) = dcOp[u];

  // One workspace for the whole solve: every sample stamps into the same
  // cached pattern, so the per-sample Jacobians are plain value arrays.
  circuit::MnaWorkspace ws(sys_);
  // Samples are independent: fan the per-sample sweep over the process
  // pool (fixed chunking keeps results thread-count invariant).
  ws.setSweepPool(&perf::ThreadPool::global());

  // Hot-loop buffers live in the engine workspace: they grow to their
  // high-water mark on the first solve and are then reused — steady-state
  // Newton iterations (and repeat solves) perform no heap allocation.
  RMat& samples = work_.samp;
  RMat& fS = work_.fSamp;
  RMat& qS = work_.qSamp;
  RMat& bS = work_.bSamp;
  CMat& fSpec = work_.fSpec;
  CMat& qSpec = work_.qSpec;
  CMat& bSpec = work_.bSpec;
  CMat& rc = work_.resSpec;
  CMat& trial = work_.trialSpec;
  RVec xs(n_);
  RVec r, bPack, xPack, xNew, dx, dxp;
  std::vector<Real> gAvgVals, cAvgVals;
  std::vector<Real> tS1, tS2;  // per-sample (slow, fast) times, filled once

  // Evaluate the packed HB residual at `coeffs`; when gOut/cOut are given
  // also collect the per-sample Jacobian values (over ws.pattern()) and
  // their time averages.
  auto residual = [&](const CMat& x, Real lambda, RVec& rOut,
                      std::vector<std::vector<Real>>* gOut,
                      std::vector<std::vector<Real>>* cOut,
                      sparse::RTriplets* gAvg, sparse::RTriplets* cAvg) {
    spectrumToTime(x, samples);
    work_.need(fS, n_, msamp_);
    work_.need(qS, n_, msamp_);
    work_.need(bS, n_, msamp_);
    const bool wantMat = gOut != nullptr;
    const Real avgW = 1.0 / static_cast<Real>(msamp_);
    if (ws.batchedEval()) {
      // Batched path: one multi-sample sweep through the SoA engine. The
      // sweep handles pattern growth internally, so no restart loop is
      // needed; the time averages accumulate in the same (s, then p) order
      // as the scalar walk below for bitwise-identical results.
      if (tS1.size() != msamp_) {
        tS1.resize(msamp_);
        tS2.resize(msamp_);
        for (std::size_t s = 0; s < msamp_; ++s) {
          const auto [t1, t2] = sampleTimes(s);
          tS1[s] = t1;
          tS2[s] = t2;
        }
      }
      ws.evalSamples(samples, tS1.data(), tS2.data(), wantMat, fS, qS, bS,
                     gOut, cOut);
      if (wantMat) {
        gAvgVals.assign(ws.pattern().nnz(), 0.0);
        cAvgVals.assign(ws.pattern().nnz(), 0.0);
        for (std::size_t s = 0; s < msamp_; ++s) {
          const std::vector<Real>& gv = (*gOut)[s];
          const std::vector<Real>& cv = (*cOut)[s];
          for (std::size_t p = 0; p < gAvgVals.size(); ++p) {
            gAvgVals[p] += gv[p] * avgW;
            cAvgVals[p] += cv[p] * avgW;
          }
        }
      }
    } else {
      // Scalar reference path (`rficsim --no-batch-eval`): per-sample
      // evaluations through the virtual stamp walk.
      for (bool done = false; !done;) {
        // The pattern can grow mid-sweep (conditional device stamps); value
        // arrays copied before a growth are stale, so restart the sweep.
        std::size_t ver = 0;
        done = true;
        for (std::size_t s = 0; s < msamp_; ++s) {
          for (std::size_t u = 0; u < n_; ++u) xs[u] = samples(u, s);
          const auto [t1, t2] = sampleTimes(s);
          ws.evalBivariate(xs, t1, t2, wantMat);
          for (std::size_t u = 0; u < n_; ++u) {
            fS(u, s) = ws.f()[u];
            qS(u, s) = ws.q()[u];
            bS(u, s) = ws.b()[u];
          }
          if (!wantMat) continue;
          if (s == 0) {
            ver = ws.patternVersion();
            gAvgVals.assign(ws.pattern().nnz(), 0.0);
            cAvgVals.assign(ws.pattern().nnz(), 0.0);
          } else if (ws.patternVersion() != ver) {
            done = false;
            break;
          }
          (*gOut)[s] = ws.gValues();
          (*cOut)[s] = ws.cValues();
          for (std::size_t p = 0; p < gAvgVals.size(); ++p) {
            gAvgVals[p] += ws.gValues()[p] * avgW;
            cAvgVals[p] += ws.cValues()[p] * avgW;
          }
        }
      }
    }
    if (wantMat && gAvg) {
      gAvg->reset(n_, n_);
      cAvg->reset(n_, n_);
      const auto& rp = ws.pattern().rowPtr();
      const auto& ci = ws.pattern().colIdx();
      for (std::size_t row = 0; row < n_; ++row) {
        for (std::size_t p = rp[row]; p < rp[row + 1]; ++p) {
          gAvg->add(row, ci[p], gAvgVals[p]);
          cAvg->add(row, ci[p], cAvgVals[p]);
        }
      }
    }
    timeToSpectrum(fS, fSpec);
    timeToSpectrum(qS, qSpec);
    timeToSpectrum(bS, bSpec);
    work_.need(rc, n_, indices_.size());
    for (std::size_t j = 0; j < indices_.size(); ++j) {
      const Complex jw(0.0, omega(j));
      const Real lam = (j == 0) ? 1.0 : lambda;
      for (std::size_t u = 0; u < n_; ++u)
        rc(u, j) = fSpec(u, j) + jw * qSpec(u, j) - lam * bSpec(u, j);
    }
    packReal(rc, rOut);
  };

  // Drive level for the convergence scale.
  std::vector<std::vector<Real>> gS(msamp_), cS(msamp_);
  sparse::RTriplets gAvg(n_, n_), cAvg(n_, n_);
  // Persistent preconditioner: after the first Newton iteration every
  // update() is a parallel numeric refactorization of the harmonic blocks.
  HBBlockPreconditioner prec(*this);

  // Final counter merge: pipeline counters from the MNA workspace, block
  // factorization/solve counters from the preconditioner, and the
  // spectral-transform counters of this attempt.
  const auto finishPerf = [&](HBSolution& s) {
    s.perf = ws.counters();
    s.perf += prec.counters();
    s.perf += fftCounters_.snapshot();
  };

  sparse::IterativeOptions gmresOpts = opts.gmres;
  gmresOpts.budget = opts.budget;

  const std::size_t ramp = std::max<std::size_t>(1, opts.continuationSteps);
  for (std::size_t stage = 1; stage <= ramp; ++stage) {
    const Real lambda = static_cast<Real>(stage) / static_cast<Real>(ramp);
    bool stageConverged = false;
    for (std::size_t it = 0; it < opts.maxNewton; ++it) {
      ++sol.newtonIterations;
      if (opts.budget) opts.budget->chargeNewton();
      if (diag::budgetExceeded(opts.budget)) {
        sol.status = diag::SolverStatus::BudgetExceeded;
        sol.coeffs = coeffs;
        finishPerf(sol);
        return sol;
      }
      residual(coeffs, lambda, r, &gS, &cS, &gAvg, &cAvg);
      if (diag::FaultInjector::global().fire(diag::FaultPoint::NanInResidual))
        r[0] = std::numeric_limits<Real>::quiet_NaN();
      packReal(bSpec, bPack);
      const Real scale = 1e-12 + numeric::norm2(bPack);
      const Real rnorm = numeric::norm2(r);
      if (!diag::isFinite(rnorm)) {
        sol.status = diag::SolverStatus::Diverged;
        sol.coeffs = coeffs;
        finishPerf(sol);
        return sol;
      }
      if (rnorm < opts.tolerance * scale) {
        stageConverged = true;
        break;
      }

      const HBOperator jac(*this, ws.pattern(), gS, cS);
      dx.resize(n_ * nc_);
      try {
        if (diag::FaultInjector::global().fire(
                diag::FaultPoint::SingularJacobian))
          failNumerical("HB::solve: injected singular Jacobian");
        if (opts.useDirectSolver) {
          // Probe the operator column by column — exact dense Jacobian.
          const std::size_t nr = n_ * nc_;
          numeric::RMat jd(nr, nr);
          RVec e(nr), col(nr);
          for (std::size_t cidx = 0; cidx < nr; ++cidx) {
            e.setZero();
            e[cidx] = 1.0;
            jac.apply(e, col);
            for (std::size_t rr = 0; rr < nr; ++rr) jd(rr, cidx) = col[rr];
          }
          dx = numeric::solveDense(std::move(jd), r);
        } else {
          prec.update(gAvg, cAvg);
          dx.setZero();
          const auto stat =
              sparse::gmres(jac, r, dx, &prec, gmresOpts, &work_.gmres);
          sol.gmresIterations += stat.iterations;
          if (stat.status == diag::SolverStatus::BudgetExceeded) {
            sol.status = diag::SolverStatus::BudgetExceeded;
            sol.coeffs = coeffs;
            finishPerf(sol);
            return sol;
          }
          if (!stat.converged && stat.residualNorm > 0.5 * rnorm) {
            // Preconditioned GMRES stalled (status MaxIterations or
            // Stagnated, including an injected krylov-stall) — fall back
            // to a damped update with whatever direction was produced.
          }
        }
      } catch (const NumericalError&) {
        // Singular Jacobian (possibly injected): classify and hand the
        // failure to the ladder in solve() instead of unwinding further.
        sol.status = diag::SolverStatus::Breakdown;
        sol.coeffs = coeffs;
        finishPerf(sol);
        return sol;
      }

      // Damped update on the packed spectrum.
      Real alpha = 1.0;
      packReal(coeffs, xPack);
      for (int damp = 0; damp < 6; ++damp) {
        xNew = xPack;
        numeric::axpy(-alpha, dx, xNew);
        unpackReal(xNew, trial);
        residual(trial, lambda, dxp, nullptr, nullptr, nullptr, nullptr);
        if (numeric::norm2(dxp) <= rnorm || damp == 5) {
          coeffs = trial;
          break;
        }
        alpha *= 0.5;
      }
    }
    if (!stageConverged && stage == ramp) {
      sol.status = diag::SolverStatus::MaxIterations;
      sol.coeffs = coeffs;
      finishPerf(sol);
      return sol;  // converged flag stays false
    }
  }

  sol.converged = true;
  sol.status = diag::SolverStatus::Converged;
  sol.coeffs = coeffs;
  finishPerf(sol);
  return sol;
}

}  // namespace rfic::hb
