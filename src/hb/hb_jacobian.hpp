// Matrix-implicit HB Jacobian operator and its block-diagonal
// preconditioner.
//
// The Jacobian of the HB residual at the current spectrum X is
//   J = Ω·Γ C(t) Γ⁻¹ + Γ G(t) Γ⁻¹
// where Γ is the (multi-dimensional) DFT and G(t), C(t) are the per-sample
// device Jacobians along the current waveform. J is dense in the harmonic
// blocks of nonlinear circuits and is never formed; apply() computes J·y by
// inverse FFT → per-sample sparse multiplies → FFT. The preconditioner uses
// the time-averaged Ḡ, C̄, for which the same expression is exactly
// block-diagonal: one complex factorization  Ḡ + jω_κ·C̄  per retained
// harmonic κ. This pairing is the "iterative linear algebra" enabler of
// full-chip HB cited in Section 2.1 [10, 31].
#pragma once

#include <memory>
#include <vector>

#include "numeric/dense.hpp"
#include "sparse/krylov.hpp"
#include "sparse/sparse_lu.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::hb {

class HarmonicBalance;

/// Matrix-free HB Jacobian (real-vector view of the complex spectra).
class HBOperator final : public sparse::LinearOperator<Real> {
 public:
  HBOperator(const HarmonicBalance& engine,
             std::vector<sparse::RCSR> gSamples,
             std::vector<sparse::RCSR> cSamples);
  std::size_t dim() const override;
  void apply(const numeric::RVec& y, numeric::RVec& out) const override;

 private:
  const HarmonicBalance& eng_;
  std::vector<sparse::RCSR> g_, c_;
};

/// Block-diagonal preconditioner: M⁻¹ r solves (Ḡ + jω_κ C̄) z_κ = r_κ for
/// every retained harmonic independently.
class HBBlockPreconditioner final : public sparse::LinearOperator<Real> {
 public:
  HBBlockPreconditioner(const HarmonicBalance& engine,
                        const sparse::RTriplets& gAvg,
                        const sparse::RTriplets& cAvg);
  std::size_t dim() const override;
  void apply(const numeric::RVec& r, numeric::RVec& z) const override;

 private:
  const HarmonicBalance& eng_;
  std::vector<std::unique_ptr<sparse::CSparseLU>> blocks_;
};

}  // namespace rfic::hb
