// Matrix-implicit HB Jacobian operator and its block-diagonal
// preconditioner.
//
// The Jacobian of the HB residual at the current spectrum X is
//   J = Ω·Γ C(t) Γ⁻¹ + Γ G(t) Γ⁻¹
// where Γ is the (multi-dimensional) DFT and G(t), C(t) are the per-sample
// device Jacobians along the current waveform. J is dense in the harmonic
// blocks of nonlinear circuits and is never formed; apply() computes J·y by
// inverse FFT → per-sample sparse multiplies → FFT. All samples share one
// CSR sparsity pattern (the circuit topology does not change along the
// waveform), so the operator holds one pattern plus per-sample value
// arrays.
//
// The preconditioner uses the time-averaged Ḡ, C̄, for which the same
// expression is exactly block-diagonal: one complex factorization
// Ḡ + jω_κ·C̄ per retained harmonic κ. This pairing is the "iterative
// linear algebra" enabler of full-chip HB cited in Section 2.1 [10, 31].
// The blocks persist across Newton iterations: after the first build each
// update() is a numeric refactorization on the recorded pivot order, and
// the independent per-harmonic factorizations run on the process thread
// pool.
#pragma once

#include <vector>

#include "diag/thread_annotations.hpp"
#include "numeric/dense.hpp"
#include "perf/perf.hpp"
#include "sparse/krylov.hpp"
#include "sparse/sparse_matrix.hpp"
#include "sparse/symbolic_lu.hpp"

namespace rfic::hb {

class HarmonicBalance;

/// Matrix-free HB Jacobian (real-vector view of the complex spectra).
/// Holds references to the caller's shared pattern and per-sample value
/// arrays — construction is free, so a fresh operator per Newton iteration
/// costs nothing.
class HBOperator final : public sparse::LinearOperator<Real> {
 public:
  HBOperator(const HarmonicBalance& engine, const sparse::RCSR& pattern,
             const std::vector<std::vector<Real>>& gSampleVals,
             const std::vector<std::vector<Real>>& cSampleVals);
  std::size_t dim() const override;
  /// J·y — the inner loop of every HB GMRES iteration; allocation-free in
  /// steady state (engine workspace + cached plans).
  RFIC_REALTIME void apply(const numeric::RVec& y,
                           numeric::RVec& out) const override;

 private:
  const HarmonicBalance& eng_;
  const sparse::RCSR& pat_;
  const std::vector<std::vector<Real>>& g_, c_;
};

/// Block-diagonal preconditioner: M⁻¹ r solves (Ḡ + jω_κ C̄) z_κ = r_κ for
/// every retained harmonic independently.
class HBBlockPreconditioner final : public sparse::LinearOperator<Real> {
 public:
  /// Persistent form: construct once, update() every Newton iteration.
  explicit HBBlockPreconditioner(const HarmonicBalance& engine);
  /// One-shot convenience: construct and factor immediately.
  HBBlockPreconditioner(const HarmonicBalance& engine,
                        const sparse::RTriplets& gAvg,
                        const sparse::RTriplets& cAvg);

  /// (Re)factor every harmonic block from new time averages. While the
  /// union pattern of Ḡ and C̄ is unchanged, each block is a cheap numeric
  /// refactorization; the independent blocks run in parallel on
  /// perf::ThreadPool::global().
  void update(const sparse::RTriplets& gAvg, const sparse::RTriplets& cAvg);

  std::size_t dim() const override;
  /// M⁻¹·r — per-harmonic block solves; allocation-free in steady state.
  RFIC_REALTIME void apply(const numeric::RVec& r,
                           numeric::RVec& z) const override;

  /// Block (re)factorization counters accumulated across update() calls.
  perf::Snapshot counters() const { return counters_.snapshot(); }

 private:
  const HarmonicBalance& eng_;
  mutable perf::Counters counters_;  ///< apply() counts solves; it is const
  // Union pattern of Ḡ and C̄; packed.values() carries (g, c) as the real
  // and imaginary parts, so block κ's values are Complex(g_p, ω_κ·c_p).
  sparse::CCSR packed_;
  bool havePattern_ = false;
  std::vector<sparse::CSymbolicLU> blocks_;
  /// Persistent per-block value arrays: update() overwrites them in place,
  /// so refactorization sweeps after the first allocate nothing.
  std::vector<std::vector<Complex>> blockVals_;
};

}  // namespace rfic::hb
