#include "hb/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "fft/plan.hpp"

namespace rfic::hb {

Real toDb(Real a, Real ref) {
  if (a <= 0 || ref <= 0) return -400.0;
  return 20.0 * std::log10(a / ref);
}

Real lineAmplitude(const HBSolution& sol, std::size_t u, int k1, int k2) {
  const Complex c = sol.at(u, k1, k2);
  const bool dc = (k1 == 0 && k2 == 0);
  return dc ? std::abs(c.real()) : 2.0 * std::abs(c);
}

std::vector<SpectralLine> spectrumOf(const HBSolution& sol, std::size_t u) {
  std::vector<SpectralLine> lines;
  lines.reserve(sol.indices.size());
  Real carrier = 0;
  for (std::size_t j = 0; j < sol.indices.size(); ++j) {
    SpectralLine l;
    l.k1 = sol.indices[j][0];
    l.k2 = sol.indices[j][1];
    l.freq = std::abs(sol.freqs[j]);
    l.amplitude = (j == 0) ? std::abs(sol.coeffs(u, 0).real())
                           : 2.0 * std::abs(sol.coeffs(u, j));
    lines.push_back(l);
    if (j != 0) carrier = std::max(carrier, l.amplitude);
  }
  for (auto& l : lines)
    l.dbc = toDb(l.amplitude, carrier > 0 ? carrier : 1.0);
  std::sort(lines.begin(), lines.end(),
            [](const SpectralLine& a, const SpectralLine& b) {
              return a.freq < b.freq;
            });
  return lines;
}

TransientSpectrum transientSpectrum(const std::vector<Real>& samples,
                                    Real sampleRate) {
  RFIC_REQUIRE(samples.size() >= 8, "transientSpectrum: too few samples");
  RFIC_REQUIRE(sampleRate > 0, "transientSpectrum: bad sample rate");
  const std::size_t n = samples.size();
  // Window and transform through the cached plan — transient records have
  // arbitrary (usually non-power-of-two) lengths, so this is a Bluestein
  // plan whose chirp/kernel survive for every later record of equal length.
  const auto plan = fft::PlanCache::global().get(n);
  std::vector<Complex> w(n);
  std::vector<Complex> scratch(plan->scratchSize());
  // Hann window; coherent gain 0.5 compensated below.
  for (std::size_t i = 0; i < n; ++i) {
    const Real win =
        0.5 * (1.0 - std::cos(kTwoPi * static_cast<Real>(i) /
                              static_cast<Real>(n)));
    w[i] = samples[i] * win;
  }
  plan->forward(w.data(), scratch.data());
  const std::size_t half = n / 2 + 1;
  TransientSpectrum sp;
  sp.freq.resize(half);
  sp.amplitude.resize(half);
  const Real scale = 2.0 / (0.5 * static_cast<Real>(n));  // window gain 0.5
  for (std::size_t k = 0; k < half; ++k) {
    sp.freq[k] = sampleRate * static_cast<Real>(k) / static_cast<Real>(n);
    sp.amplitude[k] = std::abs(w[k]) * scale;
  }
  if (!sp.amplitude.empty()) sp.amplitude[0] *= 0.5;  // DC not doubled
  return sp;
}

Real amplitudeNear(const TransientSpectrum& sp, Real freq) {
  RFIC_REQUIRE(!sp.freq.empty(), "amplitudeNear: empty spectrum");
  std::size_t best = 0;
  Real bestd = std::abs(sp.freq[0] - freq);
  for (std::size_t k = 1; k < sp.freq.size(); ++k) {
    const Real d = std::abs(sp.freq[k] - freq);
    if (d < bestd) {
      bestd = d;
      best = k;
    }
  }
  // Local peak search (windowing spreads lines over a few bins).
  Real amp = sp.amplitude[best];
  for (std::size_t k = (best >= 2 ? best - 2 : 0);
       k < std::min(best + 3, sp.amplitude.size()); ++k)
    amp = std::max(amp, sp.amplitude[k]);
  return amp;
}

}  // namespace rfic::hb
