// Harmonic balance (Section 2.1).
//
// All circuit waveforms are represented in the frequency domain on a
// truncated harmonic set of one or two fundamental tones. The nonlinear
// system  F(X) = Ω·Q(X) + F(X) − B = 0  is solved by Newton; the key to
// RF-IC scale (the paper's central Section 2.1 point) is that the HB
// Jacobian is never formed: its action on a vector is computed with FFTs
// and per-sample device Jacobians, and preconditioned GMRES solves each
// update. A dense "direct" mode exists for small circuits and for the
// ablation bench that reproduces the paper's iterative-vs-direct argument.
//
// Two-tone analysis retains the box |k1| ≤ H1, |k2| ≤ H2 of mix products
// k1·f1 + k2·f2 and evaluates nonlinearities on an (M1 × M2) bivariate
// time grid — the same multi-time representation that underlies the MPDE
// view of Section 2.2. Sources must be tagged with the axis their tone
// lives on (TimeAxis::slow → tone 1, TimeAxis::fast → tone 2).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "circuit/mna.hpp"
#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "diag/thread_annotations.hpp"
#include "numeric/dense.hpp"
#include "perf/perf.hpp"
#include "sparse/krylov.hpp"

namespace rfic::fft {
class Plan;
}  // namespace rfic::fft

namespace rfic::hb {

using circuit::MnaSystem;
using numeric::CMat;

using numeric::RVec;

/// One fundamental tone retained in the analysis.
struct Tone {
  Real freq = 0;              ///< fundamental frequency [Hz]
  std::size_t harmonics = 0;  ///< number of harmonics retained
};

struct HBOptions {
  std::size_t oversample = 4;   ///< time samples per dim ≥ oversample·H, pow2
  std::size_t maxNewton = 80;
  Real tolerance = 1e-9;        ///< residual norm, relative to drive level
  bool useDirectSolver = false; ///< dense Jacobian via probing (ablation)
  sparse::IterativeOptions gmres{1e-10, 600, 80};
  std::size_t continuationSteps = 1;  ///< ramp of non-DC source amplitude
  /// Retry-ladder depth beyond the base attempt. A failed Newton solve is
  /// re-attempted first with a (deeper) source-amplitude ramp, then with
  /// the linear solver escalated — exact dense Jacobian for systems up to
  /// directFallbackMaxUnknowns real unknowns, tightened GMRES above that.
  /// 0 disables the ladder (single attempt, pre-ladder behaviour).
  std::size_t maxRetries = 2;
  std::size_t directFallbackMaxUnknowns = 2048;
  /// Optional cooperative budget: Newton and GMRES iterations are charged;
  /// a trip returns SolverStatus::BudgetExceeded and suppresses retries.
  diag::RunBudget* budget = nullptr;
};

/// Converged HB spectrum plus solver statistics.
struct HBSolution {
  bool converged = false;
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::size_t newtonIterations = 0;
  std::size_t gmresIterations = 0;  ///< cumulative inner iterations
  std::size_t realUnknowns = 0;     ///< size of the Newton system
  /// Which ladder rung produced this solution: "base", "source-ramp",
  /// "direct", or "gmres-tight".
  std::string strategy;
  std::size_t retries = 0;          ///< ladder rungs consumed after the base
  perf::Snapshot perf;              ///< pipeline counters for the solve

  std::vector<std::array<int, 2>> indices;  ///< retained (k1, k2), canonical
  std::vector<Real> freqs;                  ///< k1·f1 + k2·f2 per index [Hz]
  CMat coeffs;  ///< (#unknowns × #indices) complex Fourier coefficients
  Real f1_ = 0, f2_ = 0;  ///< tone fundamentals (f2_ = 0 for single tone)

  /// Coefficient of unknown `u` at harmonic (k1, k2); conjugate symmetry is
  /// applied automatically for indices stored mirrored. Returns 0 for
  /// indices outside the truncation box.
  Complex at(std::size_t u, int k1, int k2 = 0) const;

  /// Reconstruct the waveform value of unknown `u` at bivariate time
  /// (t1, t2) — the quasi-periodic signal itself is x(t) = x̂(t, t).
  Real evaluate(std::size_t u, Real t1, Real t2 = 0) const;
};

/// Harmonic-balance engine bound to a circuit.
class HarmonicBalance {
 public:
  HarmonicBalance(const MnaSystem& sys, std::vector<Tone> tones,
                  HBOptions opts = {});

  /// Solve starting from the DC operating point (pass dcOperatingPoint().x).
  /// Runs the resilience ladder: base options, then a deeper source ramp,
  /// then linear-solver escalation (see HBOptions::maxRetries). The rung
  /// that produced the returned solution is recorded in
  /// HBSolution::strategy; counters accumulate across rungs.
  HBSolution solve(const RVec& dcOperatingPoint) const;

  /// Number of real unknowns of the Newton system (for the cost benches).
  std::size_t numRealUnknowns() const { return n_ * nc_; }
  std::size_t numTimeSamples() const { return msamp_; }
  const std::vector<std::array<int, 2>>& retainedIndices() const {
    return indices_;
  }

  /// Workspace buffer-growth events since construction. Every hot-loop
  /// buffer (spectral grids, Jacobian/preconditioner scratch, GMRES state)
  /// grows to its high-water mark during the first Newton iteration and is
  /// reused verbatim afterwards, so this counter going flat across repeated
  /// operator applications is the zero-allocation steady-state contract —
  /// and what the tests assert, without allocator hooks.
  std::uint64_t workspaceGrowth() const { return work_.grows; }

 private:
  friend class HBOperator;
  friend class HBBlockPreconditioner;

  /// One Newton solve with explicit options — the ladder rungs of solve().
  HBSolution solveAttempt(const RVec& dcOperatingPoint,
                          const HBOptions& opts) const;

  // Grid bookkeeping.
  std::size_t dims() const { return tones_.size(); }
  Real omega(std::size_t idx) const;  ///< angular frequency of indices_[idx]

  // Pack/unpack between the real Newton vector and per-node complex
  // spectra, and between spectra and bivariate time samples.
  void spectrumToTime(const CMat& coeffs, numeric::RMat& samples) const;
  void timeToSpectrum(const numeric::RMat& samples, CMat& coeffs) const;
  void packReal(const CMat& coeffs, RVec& v) const;
  void unpackReal(const RVec& v, CMat& coeffs) const;
  /// Bivariate sample instants of flat sample index s = a·m2 + b.
  std::pair<Real, Real> sampleTimes(std::size_t s) const;

  const MnaSystem& sys_;
  std::vector<Tone> tones_;
  HBOptions opts_;
  std::size_t n_ = 0;      // circuit unknowns
  std::size_t nc_ = 0;     // real coefficients per unknown
  std::size_t m1_ = 1, m2_ = 1, msamp_ = 1;
  std::vector<std::array<int, 2>> indices_;  // canonical retained set

  // Spectral plans, fetched once from the process-wide fft::PlanCache at
  // construction: colPlan_ transforms the m1 (tone-1) axis, rowPlan_ the
  // m2 (tone-2) axis of the bivariate grid.
  std::shared_ptr<const fft::Plan> rowPlan_, colPlan_;

  /// Every buffer the matrix-implicit inner path touches, owned by the
  /// engine so it survives across Newton iterations and GMRES calls.
  /// Buffers grow to their high-water mark once (counted in `grows`) and
  /// are then reused without touching the allocator. Mutable because the
  /// transforms and operator applications are logically const; a
  /// consequence is that one engine instance must not run concurrent
  /// solve() calls — a contract enforced at runtime by workCtx_ (the
  /// workspace handoff between solveAttempt, HBOperator::apply, and
  /// HBBlockPreconditioner::apply all happens inside one exclusive scope).
  struct HBWorkspace {
    numeric::CVec grid;                  ///< batched n×(m1·m2) spectral grids
    numeric::CMat ySpec, gSpec, cSpec;   ///< HBOperator::apply spectra
    numeric::CMat rSpec;                 ///< HBOperator::apply result
    numeric::RMat ySamp, gy, cy;         ///< HBOperator::apply time samples
    numeric::CMat pcSpec, pzSpec;        ///< preconditioner rhs/solution
    numeric::RMat samp, fSamp, qSamp, bSamp;  ///< residual time samples
    numeric::CMat fSpec, qSpec, bSpec;   ///< residual spectra
    numeric::CMat resSpec, trialSpec;    ///< residual combine / damped trial
    sparse::GmresWorkspace<Real> gmres;  ///< Krylov basis + small solves
    std::uint64_t grows = 0;             ///< growth events (steady state: 0)

    // Each grow charges the byte delta against the owning job's memory
    // budget (diag::memCharge; no-op when no MemAccount is installed), so
    // an HB spectrum too big for the job's maxBytes trips exit 6 here
    // instead of OOMing the daemon.
    void need(numeric::CVec& v, std::size_t n) {
      if (v.size() < n) {
        diag::memCharge((n - v.size()) * sizeof(Complex));
        v.resize(n);
        ++grows;
      }
    }
    void need(numeric::RVec& v, std::size_t n) {
      if (v.size() < n) {
        diag::memCharge((n - v.size()) * sizeof(Real));
        v.resize(n);
        ++grows;
      }
    }
    void need(numeric::CMat& m, std::size_t r, std::size_t c) {
      if (m.rows() != r || m.cols() != c) {
        const std::size_t have = m.rows() * m.cols();
        if (r * c > have) diag::memCharge((r * c - have) * sizeof(Complex));
        m.resize(r, c);
        ++grows;
      }
    }
    void need(numeric::RMat& m, std::size_t r, std::size_t c) {
      if (m.rows() != r || m.cols() != c) {
        const std::size_t have = m.rows() * m.cols();
        if (r * c > have) diag::memCharge((r * c - have) * sizeof(Real));
        m.resize(r, c);
        ++grows;
      }
    }
  };
  mutable HBWorkspace work_;
  /// Runtime exclusivity for work_: solveAttempt() enters this context for
  /// its whole duration, so overlapping solves on one engine instance fail
  /// loudly instead of corrupting the shared workspace.
  mutable diag::ExclusiveContext workCtx_;
  /// Spectral-transform counters for the current solve; merged into
  /// HBSolution::perf so a result reports the FFT cost of producing it.
  mutable perf::Counters fftCounters_;
};

}  // namespace rfic::hb
