#include "hb/rf_measures.hpp"

#include <cmath>

#include "hb/spectrum.hpp"

namespace rfic::hb {

IP3Result intercept3(const HBSolution& sol, std::size_t outputUnknown,
                     Real driveAmplitude) {
  RFIC_REQUIRE(driveAmplitude > 0, "intercept3: drive amplitude required");
  IP3Result out;
  out.fundamentalAmp = lineAmplitude(sol, outputUnknown, 1, 0);
  // IM3 appears at 2f2−f1 and 2f1−f2; use the larger for robustness.
  const Real a = lineAmplitude(sol, outputUnknown, -1, 2);
  const Real b = lineAmplitude(sol, outputUnknown, 2, -1);
  out.im3Amp = std::max(a, b);
  RFIC_REQUIRE(out.im3Amp > 0 && out.fundamentalAmp > 0,
               "intercept3: solution has no fundamental/IM3 content");
  out.inputIP3 = driveAmplitude * std::sqrt(out.fundamentalAmp / out.im3Amp);
  out.im3Dbc = toDb(out.im3Amp, out.fundamentalAmp);
  return out;
}

CompressionResult compressionPoint(
    const std::function<Real(Real driveAmp)>& fundamentalOut, Real ampStart,
    Real ampStop, std::size_t points) {
  RFIC_REQUIRE(ampStart > 0 && ampStop > ampStart && points >= 3,
               "compressionPoint: bad sweep");
  CompressionResult res;
  const Real ratio = std::pow(ampStop / ampStart,
                              1.0 / static_cast<Real>(points - 1));
  Real amp = ampStart;
  for (std::size_t k = 0; k < points; ++k, amp *= ratio) {
    const Real outAmp = fundamentalOut(amp);
    res.driveAmps.push_back(amp);
    res.gains.push_back(outAmp / amp);
  }
  res.smallSignalGain = res.gains.front();
  const Real target = res.smallSignalGain * std::pow(10.0, -1.0 / 20.0);
  for (std::size_t k = 1; k < res.gains.size(); ++k) {
    if (res.gains[k] <= target && res.gains[k - 1] > target) {
      // Log-linear interpolation in drive amplitude.
      const Real g0 = 20 * std::log10(res.gains[k - 1]);
      const Real g1 = 20 * std::log10(res.gains[k]);
      const Real gt = 20 * std::log10(target);
      const Real w = (g0 - gt) / (g0 - g1);
      res.inputP1dB = res.driveAmps[k - 1] *
                      std::pow(res.driveAmps[k] / res.driveAmps[k - 1], w);
      res.found = true;
      return res;
    }
  }
  return res;
}

std::vector<Real> noiseFigureDb(const analysis::NoiseResult& noise,
                                const std::string& sourceLabelPrefix) {
  RFIC_REQUIRE(!sourceLabelPrefix.empty(),
               "noiseFigureDb: source label prefix required");
  std::vector<Real> nf;
  nf.reserve(noise.freq.size());
  for (std::size_t k = 0; k < noise.freq.size(); ++k) {
    Real fromSource = 0;
    for (const auto& cb : noise.contributions[k]) {
      if (cb.label.rfind(sourceLabelPrefix, 0) == 0) fromSource += cb.psd;
    }
    RFIC_REQUIRE(fromSource > 0,
                 "noiseFigureDb: no contribution from the source resistor — "
                 "check the label prefix");
    nf.push_back(10.0 * std::log10(noise.totalPsd[k] / fromSource));
  }
  return nf;
}

}  // namespace rfic::hb
