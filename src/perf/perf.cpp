#include "perf/perf.hpp"

#include <cstdio>

namespace rfic::perf {

Counters& global() {
  static Counters instance;
  return instance;
}

std::string format(const Snapshot& s) {
  char buf[1024];
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) * 1e-6;
  };
  std::snprintf(buf, sizeof(buf),
                "evals            %10llu  (%10.3f ms)\n"
                "factorizations   %10llu  (%10.3f ms)\n"
                "refactorizations %10llu  (%10.3f ms)\n"
                "solves           %10llu  (%10.3f ms)\n"
                "ffts             %10llu  (%10.3f ms)\n"
                "plan cache       %10llu hits / %llu misses\n"
                "matvecs          %10llu  (%10.3f ms)\n"
                "extract builds   %10llu  (%10.3f ms, %10.3f ms compress)\n"
                "retries          %10llu\n"
                "fallbacks        %10llu\n",
                static_cast<unsigned long long>(s.evals), ms(s.evalNs),
                static_cast<unsigned long long>(s.factorizations),
                ms(s.factorNs),
                static_cast<unsigned long long>(s.refactorizations),
                ms(s.refactorNs),
                static_cast<unsigned long long>(s.solves), ms(s.solveNs),
                static_cast<unsigned long long>(s.fftCount), ms(s.fftNs),
                static_cast<unsigned long long>(s.planCacheHits),
                static_cast<unsigned long long>(s.planCacheMisses),
                static_cast<unsigned long long>(s.matvecs), ms(s.matvecNs),
                static_cast<unsigned long long>(s.extractBuilds),
                ms(s.extractBuildNs), ms(s.extractCompressNs),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.fallbacks));
  return buf;
}

}  // namespace rfic::perf
