#include "perf/perf.hpp"

#include <cstdio>

namespace rfic::perf {

namespace {
// Innermost CounterScope on this thread; null = bumps go to process().
thread_local Counters* tlScope = nullptr;
}  // namespace

Counters& process() {
  static Counters instance;
  return instance;
}

Counters& global() {
  Counters* s = tlScope;
  return s != nullptr ? *s : process();
}

CounterScope::CounterScope(Counters& c) : mine_(c), prev_(tlScope) {
  tlScope = &c;
}

CounterScope::~CounterScope() {
  tlScope = prev_;
  // Fold the scope's totals into the enclosing attribution target so the
  // process-wide numbers are unchanged by scoping.
  (prev_ != nullptr ? *prev_ : process()).addSnapshot(mine_.snapshot());
}

Counters* CounterScope::current() { return tlScope; }

Counters* CounterScope::exchange(Counters* c) {
  Counters* prev = tlScope;
  tlScope = c;
  return prev;
}

std::string format(const Snapshot& s) {
  char buf[2048];
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) * 1e-6;
  };
  std::snprintf(buf, sizeof(buf),
                "evals            %10llu  (%10.3f ms)\n"
                "  batched        %10llu  (%10.3f ms)\n"
                "ordering                     (%10.3f ms)\n"
                "factorizations   %10llu  (%10.3f ms)\n"
                "  fill nnz       %10llu\n"
                "refactorizations %10llu  (%10.3f ms)\n"
                "  parallel                   (%10.3f ms)\n"
                "  levels         %10llu\n"
                "solves           %10llu  (%10.3f ms)\n"
                "ffts             %10llu  (%10.3f ms)\n"
                "plan cache       %10llu hits / %llu misses\n"
                "matvecs          %10llu  (%10.3f ms)\n"
                "extract builds   %10llu  (%10.3f ms, %10.3f ms compress)\n"
                "engine ctx cache %10llu hits / %llu misses\n"
                "mem peak bytes   %10llu\n"
                "retries          %10llu\n"
                "fallbacks        %10llu\n",
                static_cast<unsigned long long>(s.evals), ms(s.evalNs),
                static_cast<unsigned long long>(s.evalBatched),
                ms(s.evalBatchNs), ms(s.orderingNs),
                static_cast<unsigned long long>(s.factorizations),
                ms(s.factorNs),
                static_cast<unsigned long long>(s.factorFillNnz),
                static_cast<unsigned long long>(s.refactorizations),
                ms(s.refactorNs), ms(s.refactorParallelNs),
                static_cast<unsigned long long>(s.refactorLevels),
                static_cast<unsigned long long>(s.solves), ms(s.solveNs),
                static_cast<unsigned long long>(s.fftCount), ms(s.fftNs),
                static_cast<unsigned long long>(s.planCacheHits),
                static_cast<unsigned long long>(s.planCacheMisses),
                static_cast<unsigned long long>(s.matvecs), ms(s.matvecNs),
                static_cast<unsigned long long>(s.extractBuilds),
                ms(s.extractBuildNs), ms(s.extractCompressNs),
                static_cast<unsigned long long>(s.ctxHits),
                static_cast<unsigned long long>(s.ctxMisses),
                static_cast<unsigned long long>(s.memPeakBytes),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.fallbacks));
  return buf;
}

}  // namespace rfic::perf
