#include "perf/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common.hpp"
#include "diag/resilience.hpp"
#include "perf/perf.hpp"

namespace rfic::perf {

namespace {
// Set while a thread is executing chunks of some batch; a nested
// parallelFor from such a thread must run inline to avoid deadlocking on
// the pool it is itself draining.
thread_local bool tlInPool = false;

// ScopedLaneCap state for the calling thread; 0 = uncapped.
thread_local std::size_t tlLaneCap = 0;

// setGlobalThreads() override; 0 = none. The created flag makes a late
// override a visible error instead of a silent no-op.
std::atomic<std::size_t> gThreadsOverride{0};
std::atomic<bool> gGlobalCreated{false};

std::size_t defaultThreads() {
  if (const std::size_t o = gThreadsOverride.load(std::memory_order_relaxed))
    return o;
  if (const char* env = std::getenv("RFIC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}
}  // namespace

struct ThreadPool::Batch {
  std::size_t n = 0;
  std::size_t grain = 1;
  FunctionRef<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};  // next chunk index (not element index)
  /// The dispatching thread's per-job counter scope, installed on each
  /// worker for the duration of its participation so fan-out work stays
  /// attributed to the job that issued it.
  Counters* counterScope = nullptr;
  /// Likewise the dispatching thread's memory account (diag::MemScope):
  /// workspace growth inside fan-out work charges the owning job's budget.
  diag::MemAccount* memScope = nullptr;
  /// Lane budget: the caller always counts as lane 1; workers claim a lane
  /// under the pool mutex before running and stay out once the cap is hit.
  std::size_t maxLanes = 0;  // 0 = uncapped
  std::size_t lanes = 1;     // claimed lanes incl. the caller (under mu_)
  diag::Mutex errMu;
  std::exception_ptr error RFIC_GUARDED_BY(errMu);  // first exception

  explicit Batch(FunctionRef<void(std::size_t)> f) : fn(f) {}

  std::size_t chunks() const { return (n + grain - 1) / grain; }

  void run() {
    tlInPool = true;
    Counters* prevScope = CounterScope::exchange(counterScope);
    diag::MemAccount* prevMem = diag::MemScope::exchange(memScope);
    const std::size_t nChunks = chunks();
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nChunks) break;
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(n, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        // rt: allow(rt-lock) exception path only — never taken while the
        // batch is healthy
        diag::LockGuard lock(errMu);
        if (!error) error = std::current_exception();
      }
    }
    diag::MemScope::exchange(prevMem);
    CounterScope::exchange(prevScope);
    tlInPool = false;
  }

  /// The first exception captured, if any; called after the batch drained.
  std::exception_ptr takeError() RFIC_EXCLUDES(errMu) {
    // rt: allow(rt-lock) post-drain, uncontended by construction
    diag::LockGuard lock(errMu);
    return error;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = threads > 0 ? threads : defaultThreads();
  // The caller participates, so spawn total-1 workers.
  const std::size_t nWorkers = total > 1 ? total - 1 : 0;
  workers_.reserve(nWorkers);
  for (std::size_t i = 0; i < nWorkers; ++i)
    // lint: allow-detached-thread — this IS perf::ThreadPool: the one
    // place the library creates threads; all are joined in ~ThreadPool.
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    diag::LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    Batch* b = nullptr;
    {
      diag::UniqueLock lock(mu_);
      // A batch whose lane cap is exhausted looks like no batch at all: the
      // worker sleeps until a new dispatch (every parallelFor notifies).
      while (!stop_ && (batch_ == nullptr ||
                        (batch_->maxLanes != 0 &&
                         batch_->lanes >= batch_->maxLanes)))
        cv_.wait(lock.native());
      if (stop_) return;
      b = batch_;
      ++b->lanes;  // claim a lane under the lock
      ++busy_;
    }
    b->run();
    {
      diag::LockGuard lock(mu_);
      --busy_;
      if (busy_ == 0 && b->next.load(std::memory_order_relaxed) >= b->chunks())
        doneCv_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t n, FunctionRef<void(std::size_t)> fn,
                             std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Serial fast paths: batches at or below the grain (the dispatch
  // overhead would dominate), no workers, a nested call from inside a
  // worker thread, or a lane cap of 1 (the job's whole thread share is the
  // calling thread).
  if (n <= grain || workers_.empty() || tlInPool || tlLaneCap == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch b(fn);
  b.n = n;
  b.grain = grain;
  b.counterScope = CounterScope::current();
  b.memScope = diag::MemScope::current();
  b.maxLanes = tlLaneCap;
  {
    // rt: allow(rt-lock) dispatch handshake — one uncontended round-trip
    // per batch, amortized over `n` iterations; the inline fast path above
    // keeps sub-grain calls lock-free.
    diag::LockGuard lock(mu_);
    batch_ = &b;
  }
  cv_.notify_all();

  b.run();  // the caller is a lane too

  {
    // rt: allow(rt-lock) completion handshake — the caller has already run
    // its lanes; it blocks only for the stragglers' final chunks
    diag::UniqueLock lock(mu_);
    batch_ = nullptr;  // late wakers see no batch and go back to sleep
    while (busy_ != 0) doneCv_.wait(lock.native());  // rt: allow(rt-lock)
                                                     // completion handshake
  }
  if (auto err = b.takeError())
    std::rethrow_exception(err);  // rt: allow(rt-throw) propagates the user
                                  // lambda's exception; no-throw otherwise
}

ThreadPool& ThreadPool::global() {
  gGlobalCreated.store(true, std::memory_order_relaxed);
  static ThreadPool pool;
  return pool;
}

ThreadPool::ScopedLaneCap::ScopedLaneCap(std::size_t lanes) : prev_(tlLaneCap) {
  tlLaneCap = lanes;
}

ThreadPool::ScopedLaneCap::~ScopedLaneCap() { tlLaneCap = prev_; }

void ThreadPool::setGlobalThreads(std::size_t threads) {
  RFIC_REQUIRE(threads > 0, "setGlobalThreads: positive thread count");
  RFIC_REQUIRE(!gGlobalCreated.load(std::memory_order_relaxed),
               "setGlobalThreads: global pool already created — install the "
               "override at startup");
  gThreadsOverride.store(threads, std::memory_order_relaxed);
}

}  // namespace rfic::perf
