#include "perf/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common.hpp"

namespace rfic::perf {

namespace {
// Set while a thread is executing chunks of some batch; a nested
// parallelFor from such a thread must run inline to avoid deadlocking on
// the pool it is itself draining.
thread_local bool tlInPool = false;

// setGlobalThreads() override; 0 = none. The created flag makes a late
// override a visible error instead of a silent no-op.
std::atomic<std::size_t> gThreadsOverride{0};
std::atomic<bool> gGlobalCreated{false};

std::size_t defaultThreads() {
  if (const std::size_t o = gThreadsOverride.load(std::memory_order_relaxed))
    return o;
  if (const char* env = std::getenv("RFIC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}
}  // namespace

struct ThreadPool::Batch {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};  // next chunk index (not element index)
  std::exception_ptr error;          // first exception, guarded by errMu
  std::mutex errMu;

  std::size_t chunks() const { return (n + grain - 1) / grain; }

  void run() {
    tlInPool = true;
    const std::size_t nChunks = chunks();
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nChunks) break;
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(n, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMu);
        if (!error) error = std::current_exception();
      }
    }
    tlInPool = false;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = threads > 0 ? threads : defaultThreads();
  // The caller participates, so spawn total-1 workers.
  const std::size_t nWorkers = total > 1 ? total - 1 : 0;
  workers_.reserve(nWorkers);
  for (std::size_t i = 0; i < nWorkers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    Batch* b = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || batch_ != nullptr; });
      if (stop_) return;
      b = batch_;
      ++busy_;
    }
    b->run();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (busy_ == 0 && b->next.load(std::memory_order_relaxed) >= b->chunks())
        doneCv_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Serial fast paths: batches at or below the grain (the dispatch
  // overhead would dominate), no workers, or a nested call from inside a
  // worker thread.
  if (n <= grain || workers_.empty() || tlInPool) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch b;
  b.n = n;
  b.grain = grain;
  b.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &b;
  }
  cv_.notify_all();

  b.run();  // the caller is a lane too

  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = nullptr;  // late wakers see no batch and go back to sleep
    doneCv_.wait(lock, [this] { return busy_ == 0; });
  }
  if (b.error) std::rethrow_exception(b.error);
}

ThreadPool& ThreadPool::global() {
  gGlobalCreated.store(true, std::memory_order_relaxed);
  static ThreadPool pool;
  return pool;
}

void ThreadPool::setGlobalThreads(std::size_t threads) {
  RFIC_REQUIRE(threads > 0, "setGlobalThreads: positive thread count");
  RFIC_REQUIRE(!gGlobalCreated.load(std::memory_order_relaxed),
               "setGlobalThreads: global pool already created — install the "
               "override at startup");
  gThreadsOverride.store(threads, std::memory_order_relaxed);
}

}  // namespace rfic::perf
