// Lightweight performance counters for the assemble→factor→solve pipeline.
//
// The paper's Section 2 cost argument is quantitative: steady-state RF
// methods become practical only when repeated circuit evaluation and
// linearization are cheap. This layer makes that cost observable. Every
// MnaWorkspace (and the HB preconditioner) bumps a Counters instance —
// evaluations, symbolic factorizations, numeric refactorizations, solves,
// and wall nanoseconds per stage — and analyses copy a Snapshot into their
// results. A process-global instance feeds `rficsim --stats` and the bench
// JSON reporters.
//
// Counter fields are relaxed atomics so the parallel fan-out paths (HB
// block-preconditioner assembly, jitter Monte-Carlo, MoM panel fill) can
// share one instance without synchronization; totals are exact because
// each increment is atomic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rfic::perf {

/// Plain copyable totals — what analyses embed in their result structs.
struct Snapshot {
  std::uint64_t evals = 0;             ///< circuit (f, q, b[, G, C]) evaluations
  std::uint64_t factorizations = 0;    ///< full symbolic+numeric factorizations
  std::uint64_t refactorizations = 0;  ///< pattern-reusing numeric passes
  std::uint64_t solves = 0;            ///< triangular solves
  std::uint64_t retries = 0;           ///< resilience-layer retry attempts
                                       ///< (dt cuts, ladder stages, re-runs)
  std::uint64_t fallbacks = 0;         ///< strategy escalations (different
                                       ///< solver/preconditioner/ladder rung)
  std::uint64_t fftCount = 0;          ///< 1-D transforms executed (planned)
  std::uint64_t planCacheHits = 0;     ///< fft::PlanCache lookups served
  std::uint64_t planCacheMisses = 0;   ///< fft::PlanCache plan builds
  std::uint64_t matvecs = 0;           ///< compressed-operator applications
  std::uint64_t extractBuilds = 0;     ///< IES³ matrix constructions
  std::uint64_t ctxHits = 0;           ///< engine circuit-context cache hits
                                       ///< (warm SymbolicLU pattern reused
                                       ///< across jobs)
  std::uint64_t ctxMisses = 0;         ///< engine context builds (cold parse
                                       ///< + pattern discovery)
  std::uint64_t memPeakBytes = 0;      ///< largest per-job workspace peak
                                       ///< observed (diag::MemAccount);
                                       ///< merges by max, not sum
  std::uint64_t evalBatched = 0;       ///< evaluations served by the batched
                                       ///< SoA device engine (subset of evals)
  std::uint64_t factorFillNnz = 0;     ///< largest factor (fill-in included)
                                       ///< any SymbolicLU analysis produced;
                                       ///< merges by max, like memPeakBytes
  std::uint64_t refactorLevels = 0;    ///< deepest level schedule recorded
                                       ///< (parallel-replay critical path);
                                       ///< merges by max
  std::uint64_t evalNs = 0;
  std::uint64_t evalBatchNs = 0;       ///< wall time of the batched subset
                                       ///< (subset of evalNs)
  std::uint64_t orderingNs = 0;        ///< fill-reducing pre-order (AMD) time
                                       ///< (subset of factorNs' analyses)
  std::uint64_t factorNs = 0;
  std::uint64_t refactorNs = 0;
  std::uint64_t refactorParallelNs = 0;  ///< wall time inside the level-
                                         ///< scheduled parallel replay
                                         ///< (subset of refactorNs)
  std::uint64_t solveNs = 0;
  std::uint64_t fftNs = 0;             ///< wall time inside batched transforms
  std::uint64_t matvecNs = 0;          ///< wall time inside apply() calls
  std::uint64_t extractBuildNs = 0;    ///< wall time in IES³ build (tree+fill)
  std::uint64_t extractCompressNs = 0; ///< ACA+SVD time, summed over threads

  Snapshot& operator+=(const Snapshot& o) {
    evals += o.evals;
    factorizations += o.factorizations;
    refactorizations += o.refactorizations;
    solves += o.solves;
    retries += o.retries;
    fallbacks += o.fallbacks;
    fftCount += o.fftCount;
    planCacheHits += o.planCacheHits;
    planCacheMisses += o.planCacheMisses;
    matvecs += o.matvecs;
    extractBuilds += o.extractBuilds;
    ctxHits += o.ctxHits;
    ctxMisses += o.ctxMisses;
    // A peak is a high-water mark, not a flow: folding two scopes keeps
    // the larger peak rather than summing.
    if (o.memPeakBytes > memPeakBytes) memPeakBytes = o.memPeakBytes;
    evalBatched += o.evalBatched;
    if (o.factorFillNnz > factorFillNnz) factorFillNnz = o.factorFillNnz;
    if (o.refactorLevels > refactorLevels) refactorLevels = o.refactorLevels;
    evalNs += o.evalNs;
    evalBatchNs += o.evalBatchNs;
    orderingNs += o.orderingNs;
    factorNs += o.factorNs;
    refactorNs += o.refactorNs;
    refactorParallelNs += o.refactorParallelNs;
    solveNs += o.solveNs;
    fftNs += o.fftNs;
    matvecNs += o.matvecNs;
    extractBuildNs += o.extractBuildNs;
    extractCompressNs += o.extractCompressNs;
    return *this;
  }
};

/// Thread-safe accumulator. Increments use relaxed atomics — the counters
/// are statistics, not synchronization.
class Counters {
 public:
  void addEval(std::uint64_t ns) { bump(evals_, evalNs_, ns); }
  /// One sweep of `count` evaluations timed as a whole (multi-sample
  /// evalSamples passes time the sweep, not each sample).
  void addEvals(std::uint64_t count, std::uint64_t ns) {
    evals_.fetch_add(count, std::memory_order_relaxed);
    evalNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// `count` evaluations served by the batched SoA device engine. Also
  /// counted in evals/evalNs: the batched counters are a subset, so
  /// evals − evalBatched is the scalar-walk share.
  void addEvalBatch(std::uint64_t count, std::uint64_t ns) {
    addEvals(count, ns);
    evalBatched_.fetch_add(count, std::memory_order_relaxed);
    evalBatchNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  void addFactorization(std::uint64_t ns) { bump(factor_, factorNs_, ns); }
  void addRefactorization(std::uint64_t ns) { bump(refactor_, refactorNs_, ns); }
  /// Fill-reducing pre-ordering time (the AMD stage of a factorization;
  /// counted inside the enclosing factorization's factorNs too).
  void addOrdering(std::uint64_t ns) {
    orderingNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Wall time of one level-scheduled parallel replay (a subset of the
  /// enclosing refactorNs).
  void addRefactorParallel(std::uint64_t ns) {
    refactorParallelNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Record one analysis's factor size, fill-in included (CAS-max gauge,
  /// like noteMemPeak: the counter keeps the largest factor seen).
  void noteFactorFill(std::uint64_t nnz) { casMax(factorFill_, nnz); }
  /// Record one analysis's level-schedule depth (CAS-max gauge).
  void noteRefactorLevels(std::uint64_t levels) {
    casMax(refactorLevels_, levels);
  }
  void addSolve(std::uint64_t ns) { bump(solves_, solveNs_, ns); }
  void addRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void addFallback() { fallbacks_.fetch_add(1, std::memory_order_relaxed); }
  /// One bump per *batch* of 1-D transforms: the hot loops time whole
  /// column sweeps, not individual butterflies.
  void addFfts(std::uint64_t count, std::uint64_t ns) {
    ffts_.fetch_add(count, std::memory_order_relaxed);
    fftNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  void addPlanCacheHit() { planHits_.fetch_add(1, std::memory_order_relaxed); }
  void addPlanCacheMiss() {
    planMisses_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One compressed-operator matvec (IES³ apply).
  void addMatvec(std::uint64_t ns) { bump(matvecs_, matvecNs_, ns); }
  /// One IES³ matrix construction (tree + plan + parallel block fill).
  void addExtractionBuild(std::uint64_t ns) {
    bump(extractBuilds_, extractBuildNs_, ns);
  }
  /// ACA+SVD compression time for one build, summed across worker threads.
  void addExtractionCompress(std::uint64_t ns) {
    extractCompressNs_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Engine circuit-context cache outcome for one job (see engine/engine.hpp):
  /// a hit means the job reused a warm MnaWorkspace — SymbolicLU pattern and
  /// pivot order included — from an earlier job with the same topology.
  void addCtxHit() { ctxHits_.fetch_add(1, std::memory_order_relaxed); }
  void addCtxMiss() { ctxMisses_.fetch_add(1, std::memory_order_relaxed); }
  /// Record one job's workspace peak (CAS-max: the counter keeps the
  /// largest peak seen, mirroring Snapshot's max-merge for this field).
  void noteMemPeak(std::uint64_t bytes) { casMax(memPeak_, bytes); }

  /// Fold a snapshot's totals in (used by CounterScope to merge a job's
  /// counters into its parent scope / the process totals on scope exit).
  void addSnapshot(const Snapshot& s) {
    evals_.fetch_add(s.evals, std::memory_order_relaxed);
    factor_.fetch_add(s.factorizations, std::memory_order_relaxed);
    refactor_.fetch_add(s.refactorizations, std::memory_order_relaxed);
    solves_.fetch_add(s.solves, std::memory_order_relaxed);
    retries_.fetch_add(s.retries, std::memory_order_relaxed);
    fallbacks_.fetch_add(s.fallbacks, std::memory_order_relaxed);
    ffts_.fetch_add(s.fftCount, std::memory_order_relaxed);
    planHits_.fetch_add(s.planCacheHits, std::memory_order_relaxed);
    planMisses_.fetch_add(s.planCacheMisses, std::memory_order_relaxed);
    matvecs_.fetch_add(s.matvecs, std::memory_order_relaxed);
    extractBuilds_.fetch_add(s.extractBuilds, std::memory_order_relaxed);
    ctxHits_.fetch_add(s.ctxHits, std::memory_order_relaxed);
    ctxMisses_.fetch_add(s.ctxMisses, std::memory_order_relaxed);
    noteMemPeak(s.memPeakBytes);
    evalBatched_.fetch_add(s.evalBatched, std::memory_order_relaxed);
    casMax(factorFill_, s.factorFillNnz);
    casMax(refactorLevels_, s.refactorLevels);
    evalNs_.fetch_add(s.evalNs, std::memory_order_relaxed);
    evalBatchNs_.fetch_add(s.evalBatchNs, std::memory_order_relaxed);
    orderingNs_.fetch_add(s.orderingNs, std::memory_order_relaxed);
    factorNs_.fetch_add(s.factorNs, std::memory_order_relaxed);
    refactorNs_.fetch_add(s.refactorNs, std::memory_order_relaxed);
    refactorParallelNs_.fetch_add(s.refactorParallelNs,
                                  std::memory_order_relaxed);
    solveNs_.fetch_add(s.solveNs, std::memory_order_relaxed);
    fftNs_.fetch_add(s.fftNs, std::memory_order_relaxed);
    matvecNs_.fetch_add(s.matvecNs, std::memory_order_relaxed);
    extractBuildNs_.fetch_add(s.extractBuildNs, std::memory_order_relaxed);
    extractCompressNs_.fetch_add(s.extractCompressNs,
                                 std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s;
    s.evals = evals_.load(std::memory_order_relaxed);
    s.factorizations = factor_.load(std::memory_order_relaxed);
    s.refactorizations = refactor_.load(std::memory_order_relaxed);
    s.solves = solves_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    s.fftCount = ffts_.load(std::memory_order_relaxed);
    s.planCacheHits = planHits_.load(std::memory_order_relaxed);
    s.planCacheMisses = planMisses_.load(std::memory_order_relaxed);
    s.matvecs = matvecs_.load(std::memory_order_relaxed);
    s.extractBuilds = extractBuilds_.load(std::memory_order_relaxed);
    s.ctxHits = ctxHits_.load(std::memory_order_relaxed);
    s.ctxMisses = ctxMisses_.load(std::memory_order_relaxed);
    s.memPeakBytes = memPeak_.load(std::memory_order_relaxed);
    s.evalBatched = evalBatched_.load(std::memory_order_relaxed);
    s.factorFillNnz = factorFill_.load(std::memory_order_relaxed);
    s.refactorLevels = refactorLevels_.load(std::memory_order_relaxed);
    s.evalNs = evalNs_.load(std::memory_order_relaxed);
    s.evalBatchNs = evalBatchNs_.load(std::memory_order_relaxed);
    s.orderingNs = orderingNs_.load(std::memory_order_relaxed);
    s.factorNs = factorNs_.load(std::memory_order_relaxed);
    s.refactorNs = refactorNs_.load(std::memory_order_relaxed);
    s.refactorParallelNs = refactorParallelNs_.load(std::memory_order_relaxed);
    s.solveNs = solveNs_.load(std::memory_order_relaxed);
    s.fftNs = fftNs_.load(std::memory_order_relaxed);
    s.matvecNs = matvecNs_.load(std::memory_order_relaxed);
    s.extractBuildNs = extractBuildNs_.load(std::memory_order_relaxed);
    s.extractCompressNs = extractCompressNs_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    for (auto* a : {&evals_, &evalBatched_, &factor_, &refactor_, &solves_,
                    &retries_, &fallbacks_, &ffts_, &planHits_, &planMisses_,
                    &matvecs_, &extractBuilds_, &ctxHits_, &ctxMisses_,
                    &memPeak_, &factorFill_, &refactorLevels_, &evalNs_,
                    &evalBatchNs_, &orderingNs_, &factorNs_, &refactorNs_,
                    &refactorParallelNs_, &solveNs_, &fftNs_, &matvecNs_,
                    &extractBuildNs_, &extractCompressNs_})
      a->store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& count,
                   std::atomic<std::uint64_t>& ns, std::uint64_t dt) {
    count.fetch_add(1, std::memory_order_relaxed);
    ns.fetch_add(dt, std::memory_order_relaxed);
  }
  /// High-water-mark update for gauge-style counters (mem peak, fill).
  static void casMax(std::atomic<std::uint64_t>& gauge, std::uint64_t v) {
    std::uint64_t cur = gauge.load(std::memory_order_relaxed);
    while (v > cur &&
           !gauge.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> evals_{0}, evalBatched_{0}, factor_{0},
      refactor_{0}, solves_{0};
  std::atomic<std::uint64_t> retries_{0}, fallbacks_{0};
  std::atomic<std::uint64_t> ffts_{0}, planHits_{0}, planMisses_{0};
  std::atomic<std::uint64_t> matvecs_{0}, extractBuilds_{0};
  std::atomic<std::uint64_t> ctxHits_{0}, ctxMisses_{0};
  std::atomic<std::uint64_t> memPeak_{0}, factorFill_{0}, refactorLevels_{0};
  std::atomic<std::uint64_t> evalNs_{0}, evalBatchNs_{0}, orderingNs_{0},
      factorNs_{0}, refactorNs_{0}, refactorParallelNs_{0}, solveNs_{0},
      fftNs_{0}, matvecNs_{0}, extractBuildNs_{0}, extractCompressNs_{0};
};

/// The true process-wide accumulator. Scoped contributions (see
/// CounterScope) fold in here when their scope ends, so after all jobs
/// finish this holds the same totals it always did. Read by
/// `rficsim --stats`, `rficd`'s stats command, and the benches.
Counters& process();

/// The counters the pipeline bumps: the innermost CounterScope installed on
/// this thread, or process() when none is. Every call site in the library
/// goes through here, which is what makes per-job attribution work — the
/// engine installs a scope per job and parallelFor propagates it to worker
/// threads for the duration of each batch.
Counters& global();

/// RAII per-scope counter attribution. While alive on a thread, every
/// perf::global() bump on that thread (and on ThreadPool workers executing
/// its batches) lands in the given Counters instead of the process totals;
/// on destruction the scope's totals fold into the enclosing scope (or the
/// process instance), so process-wide accounting is preserved. Used by
/// engine::Engine to give each job its own perf::Snapshot even when jobs
/// run concurrently.
class CounterScope {
 public:
  explicit CounterScope(Counters& c);
  ~CounterScope();
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// The innermost scope installed on the calling thread (nullptr = none).
  static Counters* current();
  /// Install `c` (may be null) as the calling thread's scope, returning the
  /// previous one. ThreadPool uses this to propagate the dispatching
  /// thread's scope into its workers around each batch.
  static Counters* exchange(Counters* c);

 private:
  Counters& mine_;
  Counters* prev_;
};

/// Monotonic wall-clock stamp for the pipeline timers.
class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  std::uint64_t ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Multi-line human-readable rendering (used by rficsim --stats).
std::string format(const Snapshot& s);

}  // namespace rfic::perf
