// Fixed-size thread pool for the embarrassingly parallel hot loops:
// spectral column transforms, HB Jacobian sample sweeps, HB block-
// preconditioner assembly/solves, jitter Monte-Carlo sample paths, and MoM
// panel-matrix fill.
//
// Design constraints:
//  - Workers are created once and persist; parallelFor hands out chunks of
//    `grain` consecutive indices through a single atomic counter, and the
//    calling thread participates, so small trip counts cost no
//    synchronization beyond one mutex round-trip.
//  - Trip counts at or below the grain run inline on the caller — tiny
//    loops never pay the wake-up/dispatch overhead.
//  - A parallelFor issued from inside a worker (nested parallelism) runs
//    inline serially — no deadlock, no oversubscription.
//  - The first exception thrown by any chunk is captured and rethrown on
//    the calling thread.
//  - Memory ordering is conservative (acquire/release via mutex +
//    condition_variable); validated under RFIC_SANITIZE=thread.
//
// Pool size: the process-wide pool reads RFIC_THREADS (positive integer)
// and falls back to the hardware concurrency. setGlobalThreads() — wired to
// `rficsim --threads N` — overrides both, and must run before the first
// global() use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfic::perf {

class ThreadPool {
 public:
  /// threads == 0 picks a size from RFIC_THREADS, falling back to the
  /// hardware concurrency (at least 1 worker besides the caller).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes working a parallelFor: workers + the calling thread.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Run fn(i) for i in [0, n). Blocks until all iterations finish.
  /// fn must be safe to invoke concurrently from multiple threads.
  /// `grain` is the dispatch granularity: n <= grain runs inline on the
  /// calling thread (no wake-up), and workers claim `grain` consecutive
  /// indices per atomic round-trip — size it so one chunk amortizes the
  /// dispatch cost (~1 µs) against the per-index work.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 1);

  /// Process-wide pool, sized from setGlobalThreads() > RFIC_THREADS >
  /// hardware concurrency, in that precedence order.
  static ThreadPool& global();

  /// Pin the size of the process-wide pool (rficsim --threads N). Throws
  /// InvalidArgument if the global pool has already been created — the
  /// override must be installed at startup, before any parallel work.
  static void setGlobalThreads(std::size_t threads);

 private:
  struct Batch;
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers when a batch arrives
  std::condition_variable doneCv_;   ///< wakes the caller when a batch drains
  Batch* batch_ = nullptr;           ///< current batch, guarded by mu_
  std::size_t busy_ = 0;             ///< workers still inside the batch
  bool stop_ = false;
};

}  // namespace rfic::perf
