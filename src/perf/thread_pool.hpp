// Fixed-size thread pool for the embarrassingly parallel hot loops:
// HB block-diagonal preconditioner assembly, jitter Monte-Carlo sample
// paths, and MoM panel-matrix fill.
//
// Design constraints:
//  - Workers are created once and persist; parallelFor hands out chunk
//    indices through a single atomic counter, and the calling thread
//    participates, so small trip counts cost no synchronization beyond
//    one mutex round-trip.
//  - A parallelFor issued from inside a worker (nested parallelism) runs
//    inline serially — no deadlock, no oversubscription.
//  - The first exception thrown by any chunk is captured and rethrown on
//    the calling thread.
//  - Memory ordering is conservative (acquire/release via mutex +
//    condition_variable); validated under RFIC_SANITIZE=thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfic::perf {

class ThreadPool {
 public:
  /// threads == 0 picks a size from RFIC_THREADS, falling back to the
  /// hardware concurrency (at least 1 worker besides the caller).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes working a parallelFor: workers + the calling thread.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Run fn(i) for i in [0, n). Blocks until all iterations finish.
  /// fn must be safe to invoke concurrently from multiple threads.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized from RFIC_THREADS (default: hardware).
  static ThreadPool& global();

 private:
  struct Batch;
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers when a batch arrives
  std::condition_variable doneCv_;   ///< wakes the caller when a batch drains
  Batch* batch_ = nullptr;           ///< current batch, guarded by mu_
  std::size_t busy_ = 0;             ///< workers still inside the batch
  bool stop_ = false;
};

}  // namespace rfic::perf
